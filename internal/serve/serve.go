// Package serve is the overload-resilient multi-tenant estimation
// service behind cmd/mba-serve. It front-ends the estimation stack
// (core walks over the rate-limited api simulator) with an HTTP/JSON
// API executed by a bounded worker pool, organized around one
// principle: shed, don't collapse.
//
//   - Admission control: every tenant holds an api.Ledger quota and a
//     bounded FIFO queue; dispatch is smooth weighted round-robin, so a
//     hot tenant cannot starve the rest. Budget is reserved
//     all-or-nothing at admission and committed/refunded at completion,
//     so Σ charged cost per tenant can never exceed its quota.
//   - Deadline propagation: requests carry a virtual-clock deadline
//     (the clock api.VirtualOf reports); queue wait is charged against
//     it, the remainder is threaded into the walk via api.Client.
//     Deadline, and a request whose deadline lapsed while queued is
//     shed without spending a call.
//   - Load shedding: when the queue backlog crosses the degrade
//     watermark new requests are admitted at a fraction of their
//     budget (a Degraded partial answer now beats a full answer
//     never); past the shed watermark they are refused outright. A
//     per-tenant circuit breaker trips after repeated backend-fault
//     degradations and sheds that tenant's requests for a cooldown,
//     then half-opens with a single probe.
//   - Result + pilot-walk cache: completed runs are cached on
//     (normalized query, algorithm, seed, snapshot epoch, tenant
//     class, budget); partial runs cache their checkpoint, and a later
//     identical query with a larger budget resumes from the rebased
//     checkpoint — the warm response cache replays the already-paid
//     prefix free (core.Checkpoint.Rebase), so a shed query's spent
//     budget is never repaid and the resumed result is bit-identical
//     to an uninterrupted run. Identical concurrent queries are
//     coalesced single-flight.
//
// Everything is virtual-time and seed-deterministic: Play replays a
// request trace through a simulated worker pool with no goroutines at
// all, which is what experiments.ServeSweep and audit.CheckService
// drive; Run/Do execute the same admission/execution state machine on
// a real WaitGroup-joined worker pool for cmd/mba-serve.
package serve

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"time"

	"mba/internal/api"
	"mba/internal/core"
	"mba/internal/model"
	"mba/internal/platform"
	"mba/internal/query"
	"mba/internal/stats"
)

// Algorithm names accepted in Request.Algo (mba.Algorithm spellings).
const (
	AlgoTARW = "MA-TARW"
	AlgoSRW  = "MA-SRW"
	AlgoMR   = "M&R"
)

// Response statuses.
const (
	StatusOK       = "ok"       // clean completion (budget exhaustion included)
	StatusDegraded = "degraded" // partial estimate: pressure tier, deadline, or backend faults
	StatusShed     = "shed"     // refused at admission or dispatch; nothing spent
	StatusError    = "error"    // malformed request or execution failure
)

// Shed and degradation reasons.
const (
	ShedOverload    = "overload"          // global backlog past the shed watermark
	ShedTenantQueue = "tenant-queue-full" // per-tenant queue depth exceeded
	ShedQuota       = "quota-exhausted"   // ledger could not reserve the budget
	ShedBreaker     = "breaker-open"      // tenant circuit breaker cooling down
	ShedDeadline    = "deadline-lapsed"   // virtual deadline expired while queued
	ReasonPressure  = "budget-pressure"   // admitted past the degrade watermark at reduced budget
	ReasonBackend   = "backend-fault"     // unrecoverable API faults degraded the walk
	ReasonDeadline  = "deadline-exceeded" // the walk ran out of virtual deadline
	ReasonCanceled  = "canceled"          // caller context canceled
)

// TenantConfig declares one tenant of the service.
type TenantConfig struct {
	// Name identifies the tenant in requests and the ledger account.
	Name string
	// Quota is the tenant's total API-call budget (ledger account).
	Quota int
	// Weight is the tenant's fair-share weight (default 1).
	Weight int
	// Depth bounds the tenant's admission queue (default 8).
	Depth int
	// Class keys the result cache; tenants sharing a class share cached
	// results (default: the tenant's own name, i.e. no sharing).
	Class string
}

// Config configures a Service.
type Config struct {
	// Platform is the shared read-only simulated platform.
	Platform *platform.Platform
	// Preset is the API interface preset (default api.Twitter()).
	Preset api.Preset
	// Faults is the base fault profile. Like internal/fleet, each
	// request gets its own api.Server with a fault seed derived from
	// the request seed, so fault schedules are per-request deterministic
	// at any worker parallelism.
	Faults api.Faults
	// Tenants declares the tenants; at least one is required.
	Tenants []TenantConfig
	// Workers sizes the worker pool — both the real goroutine pool
	// (Run) and the virtual machine-room Play simulates (default 4).
	Workers int
	// Epoch is the platform snapshot epoch baked into cache keys; bump
	// it to invalidate every cached result (default 1).
	Epoch int64
	// Interval is the level-by-level interval T for the walks (default
	// model.Day). Serve pins it rather than pilot-selecting per request
	// so resumed replays stay bit-identical (interval re-selection
	// would draw fresh RNG per incarnation).
	Interval model.Tick
	// DefaultBudget is granted to requests that do not name one
	// (default 2000).
	DefaultBudget int
	// DegradeDepth is the total-backlog watermark past which new
	// requests are admitted at DegradeFrac of their budget (default
	// 2×Workers; negative disables the pressure tier).
	DegradeDepth int
	// ShedDepth is the total-backlog watermark past which new requests
	// are shed outright (default 4×Workers).
	ShedDepth int
	// DegradeFrac is the budget fraction granted in the pressure tier
	// (default 0.5).
	DegradeFrac float64
	// MinBudget floors the pressure-tier grant (default 200).
	MinBudget int
	// BreakerThreshold trips a tenant's circuit breaker after that many
	// consecutive backend-fault degradations (default 3).
	BreakerThreshold int
	// BreakerCooldown is how many admissions the tripped breaker sheds
	// before half-opening with a probe (default 4).
	BreakerCooldown int
	// MaxResumes bounds the automatic fault ride-out resumes per
	// request (default 3; mba.Estimate uses 100, but a service bounds
	// per-request latency).
	MaxResumes int
}

func (c Config) withDefaults() Config {
	if c.Preset.Name == "" {
		c.Preset = api.Twitter()
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Epoch == 0 {
		c.Epoch = 1
	}
	if c.Interval <= 0 {
		c.Interval = model.Day
	}
	if c.DefaultBudget <= 0 {
		c.DefaultBudget = 2000
	}
	if c.DegradeDepth == 0 {
		c.DegradeDepth = 2 * c.Workers
	}
	if c.ShedDepth <= 0 {
		c.ShedDepth = 4 * c.Workers
	}
	if c.DegradeFrac <= 0 || c.DegradeFrac > 1 {
		c.DegradeFrac = 0.5
	}
	if c.MinBudget <= 0 {
		c.MinBudget = 200
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 4
	}
	if c.MaxResumes <= 0 {
		c.MaxResumes = 3
	}
	return c
}

// Request is one aggregate estimation request.
type Request struct {
	// ID names the request in responses and audits (default: assigned
	// sequentially).
	ID string `json:"id,omitempty"`
	// Tenant names the paying tenant (required).
	Tenant string `json:"tenant"`
	// Query is the aggregate query text (see query.ParseQuery).
	Query string `json:"query"`
	// Algo selects the algorithm: MA-TARW (default), MA-SRW, or M&R.
	Algo string `json:"algo,omitempty"`
	// Budget is the API-call budget (default Config.DefaultBudget).
	Budget int `json:"budget,omitempty"`
	// Seed derandomizes the walk; 0 derives it from the normalized
	// query, so identical queries share walks, cache entries and
	// single-flight coalescing.
	Seed int64 `json:"seed,omitempty"`
	// DeadlineNs bounds the request in virtual platform time
	// (nanoseconds), queue wait included; 0 = none.
	DeadlineNs int64 `json:"deadline_ns,omitempty"`
	// ArrivalNs is the virtual arrival time for Play traces; the live
	// HTTP path ignores it.
	ArrivalNs int64 `json:"arrival_ns,omitempty"`
	// NoCache bypasses the result cache for this request.
	NoCache bool `json:"no_cache,omitempty"`
}

// Response reports the outcome of one request. All float fields use
// the NaN-safe Float codec; Estimate additionally travels as raw
// IEEE-754 bits so audits compare results exactly.
type Response struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	// Query is the normalized (canonical) query text.
	Query string `json:"query"`
	Algo  string `json:"algo"`
	Seed  int64  `json:"seed"`
	// Status is ok, degraded, shed, or error.
	Status string `json:"status"`
	// Reason qualifies degraded and shed statuses.
	Reason string `json:"reason,omitempty"`
	// Estimate is the aggregate estimate (NaN if none was formed).
	Estimate     Float  `json:"estimate"`
	EstimateBits uint64 `json:"estimate_bits"`
	// Variance is the dispersion of the trajectory tail — an
	// operational convergence signal, NaN when fewer than two
	// trajectory points exist.
	Variance Float `json:"variance"`
	// Requested and Budget are the asked-for and granted call budgets
	// (they differ in the pressure tier).
	Requested int `json:"requested"`
	Budget    int `json:"budget"`
	// Cost is the walk's cumulative spend, cache-recovered prefix
	// included; Charged is what this request newly committed against
	// its tenant's quota (0 on cache hits and coalesced responses).
	Cost    int `json:"cost"`
	Charged int `json:"charged"`
	Samples int `json:"samples"`
	// Degraded marks partial results (pressure tier, deadline, backend
	// faults) and every shed response.
	Degraded bool `json:"degraded"`
	// DeadlineLeftNs is the virtual deadline headroom at dispatch.
	DeadlineLeftNs int64 `json:"deadline_left_ns,omitempty"`
	// QueueNs, BusyNs and DoneNs are virtual-time queue wait, execution
	// time, and completion instant (Play traces only; zero on the live
	// path, which has no arrival clock).
	QueueNs int64 `json:"queue_ns,omitempty"`
	BusyNs  int64 `json:"busy_ns,omitempty"`
	DoneNs  int64 `json:"done_ns,omitempty"`
	// CacheHit: answered from the completed-result cache. Resumed:
	// continued from a cached partial checkpoint. Coalesced: shared an
	// identical in-flight execution (single-flight).
	CacheHit  bool `json:"cache_hit,omitempty"`
	Resumed   bool `json:"resumed,omitempty"`
	Coalesced bool `json:"coalesced,omitempty"`
	// Retries and RateLimitHits quantify the resilience overhead paid.
	Retries       int    `json:"retries,omitempty"`
	RateLimitHits int    `json:"rate_limit_hits,omitempty"`
	Err           string `json:"err,omitempty"`
}

// Metrics counts service outcomes.
type Metrics struct {
	Requests     int            `json:"requests"`
	Admitted     int            `json:"admitted"`
	Ok           int            `json:"ok"`
	Degraded     int            `json:"degraded"`
	Shed         int            `json:"shed"`
	Errors       int            `json:"errors"`
	ShedBy       map[string]int `json:"shed_by,omitempty"`
	CacheHits    int            `json:"cache_hits"`
	Resumed      int            `json:"resumed"`
	Coalesced    int            `json:"coalesced"`
	BreakerTrips int            `json:"breaker_trips"`
}

// breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// tenant is the per-tenant admission state.
type tenant struct {
	cfg     TenantConfig
	account int
	queue   []*task
	// credit implements smooth weighted round-robin dispatch.
	credit int
	// circuit breaker: consecutive backend-fault degradations trip it;
	// cooldownLeft admissions are shed while open; half-open admits a
	// single probe whose outcome closes or re-trips it.
	consecFaults int
	breaker      int
	cooldownLeft int
	probing      bool
}

// task is one admitted (or about-to-be-admitted) request.
type task struct {
	req     Request
	q       query.Query
	ten     *tenant
	key     string // cache key (sans budget)
	granted int    // reserved budget
	// pressure marks a degrade-watermark admission at reduced budget.
	pressure bool
	arrival  int64
	// done is closed by the live worker pool when resp is final.
	done chan struct{}
	resp Response
	// ctx is the live submitter's context (nil on Play traces).
	ctx context.Context
}

// Service is the multi-tenant estimation service. One Service holds
// one ledger epoch: construct a fresh Service to reset quotas.
type Service struct {
	cfg    Config
	preset api.Preset
	ledger *api.Ledger

	mu      sync.Mutex
	cond    *sync.Cond
	tenants map[string]*tenant
	order   []*tenant
	backlog int
	cache   *resultCache
	flights map[string]*flight
	met     Metrics
	nextID  int
	closed  bool
}

// New validates the configuration and builds a Service with every
// tenant's quota registered on a fresh ledger.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	if cfg.Platform == nil {
		return nil, fmt.Errorf("serve: Config.Platform is required")
	}
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("serve: at least one tenant is required")
	}
	total := 0
	for _, tc := range cfg.Tenants {
		if tc.Name == "" {
			return nil, fmt.Errorf("serve: tenant with empty name")
		}
		if tc.Quota <= 0 {
			return nil, fmt.Errorf("serve: tenant %q needs a positive quota", tc.Name)
		}
		total += tc.Quota
	}
	s := &Service{
		cfg:     cfg,
		preset:  cfg.Preset,
		ledger:  api.NewLedger(total),
		tenants: make(map[string]*tenant, len(cfg.Tenants)),
		cache:   newResultCache(),
		flights: make(map[string]*flight),
	}
	s.cond = sync.NewCond(&s.mu)
	s.met.ShedBy = make(map[string]int)
	for i, tc := range cfg.Tenants {
		if tc.Weight <= 0 {
			tc.Weight = 1
		}
		if tc.Depth <= 0 {
			tc.Depth = 8
		}
		if tc.Class == "" {
			tc.Class = tc.Name
		}
		if _, dup := s.tenants[tc.Name]; dup {
			return nil, fmt.Errorf("serve: duplicate tenant %q", tc.Name)
		}
		if err := s.ledger.Register(i, tc.Quota); err != nil {
			return nil, fmt.Errorf("serve: register tenant %q: %w", tc.Name, err)
		}
		t := &tenant{cfg: tc, account: i}
		s.tenants[tc.Name] = t
		s.order = append(s.order, t)
	}
	return s, nil
}

// Snapshot returns the service metrics and the ledger accounting.
func (s *Service) Snapshot() (Metrics, api.LedgerStats) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.met
	m.ShedBy = make(map[string]int, len(s.met.ShedBy))
	for k, v := range s.met.ShedBy {
		m.ShedBy[k] = v
	}
	return m, s.ledger.Snapshot()
}

// Account returns the ledger account ID backing a tenant, for audits.
func (s *Service) Account(tenantName string) (int, bool) {
	t, ok := s.tenants[tenantName]
	if !ok {
		return 0, false
	}
	return t.account, true
}

// querySeed derives a walk seed from the normalized query text, so
// requests that do not pin a seed share walks (and cache entries) for
// identical queries.
func querySeed(canonical string) int64 {
	h := fnv.New64a()
	h.Write([]byte(canonical))
	return int64(h.Sum64() &^ (1 << 63))
}

// normalize resolves request defaults into a task. The query must
// already be parsed (DecodeRequest) so this cannot fail.
func (s *Service) normalize(req Request, q query.Query) *task {
	req.Query = q.String()
	if req.Algo == "" {
		req.Algo = AlgoTARW
	}
	if req.Budget <= 0 {
		req.Budget = s.cfg.DefaultBudget
	}
	if req.Seed == 0 {
		req.Seed = querySeed(req.Query)
	}
	tk := &task{req: req, q: q, arrival: req.ArrivalNs, done: make(chan struct{})}
	if ten, ok := s.tenants[req.Tenant]; ok {
		tk.ten = ten
		tk.key = fmt.Sprintf("%s|%s|%d|%d|%s", req.Query, req.Algo, req.Seed, s.cfg.Epoch, ten.cfg.Class)
	}
	return tk
}

// baseResponse seeds a response with the request's identity fields.
func (tk *task) baseResponse() Response {
	return Response{
		ID:           tk.req.ID,
		Tenant:       tk.req.Tenant,
		Query:        tk.req.Query,
		Algo:         tk.req.Algo,
		Seed:         tk.req.Seed,
		Requested:    tk.req.Budget,
		Estimate:     Float(math.NaN()),
		EstimateBits: math.Float64bits(math.NaN()),
		Variance:     Float(math.NaN()),
	}
}

// tailVariance measures the dispersion of the trajectory's last few
// convergence points — NaN when the run produced fewer than two.
func tailVariance(traj []core.Point) float64 {
	const tail = 8
	n := len(traj)
	if n < 2 {
		return math.NaN()
	}
	lo := n - tail
	if lo < 0 {
		lo = 0
	}
	xs := make([]float64, 0, n-lo)
	for _, p := range traj[lo:] {
		xs = append(xs, p.Estimate)
	}
	return stats.Variance(xs)
}

// virtualNs converts cumulative accounting into the virtual clock.
func (s *Service) virtualNs(st api.Stats) int64 {
	return int64(api.VirtualOf(s.preset, st))
}

// deadlineLeft computes the virtual headroom remaining after waiting
// queueNs against the request's deadline; ok=false means it lapsed.
func deadlineLeft(req Request, queueNs int64) (time.Duration, bool) {
	if req.DeadlineNs <= 0 {
		return 0, true
	}
	left := req.DeadlineNs - queueNs
	if left <= 0 {
		return 0, false
	}
	return time.Duration(left), true
}
