package lint

import (
	"go/ast"
)

// waitGroupJoin is the sanctioned join primitive.
var waitGroupJoin = map[string]bool{"Wait": true}

// goSpawnPkgs are the package basenames allowed to create goroutines:
// fleet (walker orchestration), serve (the request-serving worker
// pool), and lint (the parallel analyzer pass loop). Everything else
// stays single-threaded.
var goSpawnPkgs = map[string]bool{
	"fleet": true,
	"serve": true,
	"lint":  true,
}

// GoSpawn confines goroutine creation to internal/fleet and
// internal/serve, the two packages whose job is concurrency, and
// requires every spawn there to be structurally joined. Estimators,
// the API simulator, experiment runners, and the CLIs are written
// single-threaded on purpose: their determinism argument is "no
// interleaving exists", which a stray `go` statement silently
// destroys. Inside the allowed packages, a spawned goroutine must be
// joined with sync.WaitGroup.Wait in the same function declaration —
// fire-and-forget goroutines outlive the result merge and turn the
// deterministic fold into a data race.
var GoSpawn = &Analyzer{
	Name: "gospawn",
	Doc: "confine go statements to internal/fleet and internal/serve and require " +
		"each spawn to be WaitGroup-joined in the same function",
	Run: runGoSpawn,
}

func runGoSpawn(pass *Pass) error {
	inFleet := goSpawnPkgs[pass.PkgBase(pass.Pkg.Path())]
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var spawns []*ast.GoStmt
			joined := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.GoStmt:
					spawns = append(spawns, x)
				case *ast.CallExpr:
					if _, ok := pass.MethodOn(x, "sync", "WaitGroup", waitGroupJoin); ok {
						joined = true
					}
				}
				return true
			})
			for _, g := range spawns {
				switch {
				case !inFleet:
					pass.Reportf(g.Pos(),
						"go statement outside internal/fleet or internal/serve; single-threaded packages stay deterministic by construction — orchestrate concurrency through those packages")
				case !joined:
					pass.Reportf(g.Pos(),
						"unjoined goroutine; call sync.WaitGroup.Wait in the same function so no spawn outlives the deterministic merge")
				}
			}
		}
	}
	return nil
}
