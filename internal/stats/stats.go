// Package stats provides the descriptive statistics and convergence
// diagnostics used throughout MICROBLOG-ANALYZER: means, variances,
// relative error (the paper's accuracy measure), mean squared error,
// autocorrelation, confidence intervals, and the Geweke z-score the
// paper uses as its burn-in criterion (Geweke threshold Z <= 0.1).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that need at least one observation.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return KahanSum(xs) / float64(len(xs))
}

// Sum returns the compensated sum of xs.
func Sum(xs []float64) float64 {
	return KahanSum(xs)
}

// Variance returns the unbiased (n-1) sample variance of xs.
// It returns 0 when fewer than two observations are given.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss KahanAdder
	for _, x := range xs {
		d := x - m
		ss.Add(d * d)
	}
	return ss.Sum() / float64(n-1)
}

// PopVariance returns the population (n) variance of xs.
func PopVariance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := Mean(xs)
	var ss KahanAdder
	for _, x := range xs {
		d := x - m
		ss.Add(d * d)
	}
	return ss.Sum() / float64(n)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// StdErr returns the standard error of the mean of xs.
func StdErr(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// RelativeError is the paper's accuracy measure |est-truth|/|truth|.
// When truth is zero it returns 0 if est is also zero and +Inf otherwise,
// so callers comparing against an error threshold behave sensibly.
func RelativeError(est, truth float64) float64 {
	if truth == 0 {
		if est == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(est-truth) / math.Abs(truth)
}

// MSE returns the empirical mean squared error of the estimates against
// truth. The paper decomposes MSE = bias^2 + variance; Bias and Variance
// recover the two components.
func MSE(estimates []float64, truth float64) float64 {
	if len(estimates) == 0 {
		return 0
	}
	var ss KahanAdder
	for _, e := range estimates {
		d := e - truth
		ss.Add(d * d)
	}
	return ss.Sum() / float64(len(estimates))
}

// Bias returns the empirical bias E[est] - truth.
func Bias(estimates []float64, truth float64) float64 {
	if len(estimates) == 0 {
		return 0
	}
	return Mean(estimates) - truth
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It returns an error for an
// empty sample or q outside [0,1].
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, errors.New("stats: quantile out of range")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 0.5 quantile of xs.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

// Autocorrelation returns the lag-k sample autocorrelation of the chain.
// It returns 0 when the chain is too short or has zero variance.
func Autocorrelation(chain []float64, lag int) float64 {
	n := len(chain)
	if lag < 0 || lag >= n {
		return 0
	}
	m := Mean(chain)
	var num, den KahanAdder
	for i := 0; i < n; i++ {
		d := chain[i] - m
		den.Add(d * d)
	}
	if den.Sum() == 0 {
		return 0
	}
	for i := 0; i+lag < n; i++ {
		num.Add((chain[i] - m) * (chain[i+lag] - m))
	}
	return num.Sum() / den.Sum()
}

// GewekeZ computes the Geweke convergence diagnostic for an MCMC chain:
// the z-score of the difference between the mean of the first firstFrac
// of the chain and the mean of the last lastFrac, using the standard
// errors of the two windows. Geweke's conventional choice is
// firstFrac=0.1, lastFrac=0.5; the paper declares burn-in complete when
// |Z| <= 0.1. The function returns 0 for chains too short to split.
func GewekeZ(chain []float64, firstFrac, lastFrac float64) float64 {
	n := len(chain)
	na := int(float64(n) * firstFrac)
	nb := int(float64(n) * lastFrac)
	if na < 2 || nb < 2 || na+nb > n {
		return 0
	}
	a := chain[:na]
	b := chain[n-nb:]
	va := Variance(a) / float64(na)
	vb := Variance(b) / float64(nb)
	den := math.Sqrt(va + vb)
	if den == 0 {
		return 0
	}
	return (Mean(a) - Mean(b)) / den
}

// GewekeBurnIn scans the chain for the earliest prefix cut after which
// the remaining chain passes the Geweke criterion |Z| <= threshold,
// checking at `step`-sized increments. It returns the number of initial
// samples to discard, or len(chain) if the chain never passes.
func GewekeBurnIn(chain []float64, threshold float64, step int) int {
	if step <= 0 {
		step = 1
	}
	for cut := 0; cut < len(chain); cut += step {
		rest := chain[cut:]
		if len(rest) < 20 {
			break
		}
		z := GewekeZ(rest, 0.1, 0.5)
		if math.Abs(z) <= threshold {
			return cut
		}
	}
	return len(chain)
}

// NormalCI returns a (1-alpha) normal-approximation confidence interval
// for the mean of xs. Only alpha values 0.05 and 0.01 carry exact z
// constants; other alphas fall back to 1.96.
func NormalCI(xs []float64, alpha float64) (lo, hi float64) {
	z := 1.96
	switch {
	case math.Abs(alpha-0.01) < 1e-12:
		z = 2.5758
	case math.Abs(alpha-0.05) < 1e-12:
		z = 1.96
	}
	m := Mean(xs)
	se := StdErr(xs)
	return m - z*se, m + z*se
}

// RunningMean consumes a stream of values and exposes the running mean,
// variance (Welford's algorithm) and count. The zero value is ready to use.
type RunningMean struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates x.
func (r *RunningMean) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of observations so far.
func (r *RunningMean) N() int { return r.n }

// Mean returns the running mean (0 before any observation).
func (r *RunningMean) Mean() float64 { return r.mean }

// Variance returns the unbiased running variance (0 for n < 2).
func (r *RunningMean) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the running standard deviation.
func (r *RunningMean) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Merge folds another RunningMean into r (parallel Welford merge).
func (r *RunningMean) Merge(o RunningMean) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = o
		return
	}
	n := r.n + o.n
	d := o.mean - r.mean
	mean := r.mean + d*float64(o.n)/float64(n)
	m2 := r.m2 + o.m2 + d*d*float64(r.n)*float64(o.n)/float64(n)
	r.n, r.mean, r.m2 = n, mean, m2
}
