package mba

// Ablation benchmarks for the design choices DESIGN.md §5 calls out:
// the per-node probability cache, ESTIMATE-p averaging depth, weight
// winsorization, the adjacent-only lattice, and mark-and-recapture
// thinning. Run with:
//
//	go test -bench=Ablation -benchtime 1x

import (
	"testing"

	"mba/internal/experiments"
	"mba/internal/workload"
)

// ablationExperiment runs an ablation at test scale: ablations compare
// estimator variants against each other, which the small platform
// resolves quickly; the paper-reproduction benchmarks keep the full
// bench-scale platform.
func ablationExperiment(b *testing.B, id string, fn func(experiments.Options) (experiments.Table, error)) {
	b.Helper()
	opts := experiments.Options{
		Scale:  workload.Test,
		Seed:   1,
		Trials: 3,
		Budget: 20000,
	}
	if _, err := workload.Get(opts.Scale); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := fn(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logAndPersist(b, tab)
		}
	}
}

func BenchmarkAblationProbabilityCache(b *testing.B) {
	ablationExperiment(b, "ablation-pcache", experiments.AblationProbabilityCache)
}

func BenchmarkAblationPEstimates(b *testing.B) {
	ablationExperiment(b, "ablation-pestimates", experiments.AblationPEstimates)
}

func BenchmarkAblationWeightClip(b *testing.B) {
	ablationExperiment(b, "ablation-clip", experiments.AblationWeightClip)
}

func BenchmarkAblationLattice(b *testing.B) {
	ablationExperiment(b, "ablation-lattice", experiments.AblationLattice)
}

func BenchmarkAblationThinning(b *testing.B) {
	ablationExperiment(b, "ablation-thinning", experiments.AblationThinning)
}
