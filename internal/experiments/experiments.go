// Package experiments regenerates every table and figure of the
// paper's evaluation (§4 and §6) against the simulated platforms of
// internal/workload. Each experiment is a function returning a Table
// whose rows mirror what the paper reports; the same runners back
// cmd/mba-bench and the root-level testing.B benchmarks (one per
// table/figure).
//
// Absolute query costs depend on the synthetic platform and will not
// match the authors' 2013 Twitter testbed; the shapes — which
// algorithm wins, by roughly what factor, and where the orderings fall
// — are the reproduction target (see EXPERIMENTS.md).
package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"mba/internal/api"
	"mba/internal/core"
	"mba/internal/model"
	"mba/internal/platform"
	"mba/internal/query"
	"mba/internal/stats"
	"mba/internal/workload"
)

// Options configures an experiment run.
type Options struct {
	// Ctx, when non-nil, bounds the concurrent sweeps (ParallelSweep);
	// cancelling it aborts in-flight fleets. Nil means no external
	// deadline — the sweep still terminates on budget exhaustion.
	Ctx context.Context
	// Scale picks the workload platform (default workload.Bench).
	Scale workload.Scale
	// Seed derandomizes trials.
	Seed int64
	// Trials is the number of independent runs per configuration whose
	// cost-at-error is aggregated by median (default 3).
	Trials int
	// Budget is the per-run API-call budget (default 60000).
	Budget int
	// Errors is the relative-error grid of the cost-vs-error figures
	// (default 0.05 … 0.25, the paper's x-axis).
	Errors []float64
	// Interval is the level-graph interval for MA-SRW and the subgraph
	// analyses (default 1 day, the paper's running example).
	Interval model.Tick
	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

func (o Options) withDefaults() Options {
	if o.Trials == 0 {
		o.Trials = 3
	}
	if o.Budget == 0 {
		o.Budget = 60000
	}
	if len(o.Errors) == 0 {
		o.Errors = []float64{0.05, 0.10, 0.15, 0.20, 0.25}
	}
	if o.Interval == 0 {
		o.Interval = model.Day
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

func (o Options) logf(format string, args ...interface{}) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// Table is one regenerated table or figure: a titled grid of cells.
// Figures are reported as their underlying data series.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
}

// Format renders the table as aligned text.
func (t Table) Format(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	fmt.Fprintf(w, "%s — %s\n", strings.ToUpper(t.ID), t.Title)
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], cell)
		}
		fmt.Fprintln(w)
	}
	line(t.Columns)
	total := len(t.Columns) - 1
	for _, w2 := range widths {
		total += w2 + 1
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		line(row)
	}
}

// WriteCSV emits the table as CSV (header + rows).
func (t Table) WriteCSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	rows := append([][]string{t.Columns}, t.Rows...)
	for _, row := range rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = esc(c)
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// costSustainWindow is how many consecutive trajectory checkpoints
// must stay within the error bound for the bound to count as achieved.
// A hard "never exceeds again until the end of the run" criterion
// over-penalizes estimators whose trajectories wiggle late with rare
// heavy-weight samples; a sustained window is the usual compromise.
const costSustainWindow = 10

// CostAtError extracts, from an estimate trajectory, the cost of the
// earliest checkpoint from which the estimate stays within the
// relative-error bound for costSustainWindow consecutive checkpoints
// (or through the end of the run) — the "query cost to achieve
// relative error ≤ e" of the paper's figures. It returns -1 when the
// bound is never met that way.
func CostAtError(traj []core.Point, truth, errBound float64) int {
	ok := make([]bool, len(traj))
	for i, pt := range traj {
		ok[i] = !math.IsNaN(pt.Estimate) && stats.RelativeError(pt.Estimate, truth) <= errBound
	}
	for i := range traj {
		if !ok[i] {
			continue
		}
		good := true
		for j := i; j < len(traj) && j < i+costSustainWindow; j++ {
			if !ok[j] {
				good = false
				break
			}
		}
		if good {
			return traj[i].Cost
		}
	}
	return -1
}

// CostAtErrors maps CostAtError over an error grid.
func CostAtErrors(traj []core.Point, truth float64, errs []float64) []int {
	out := make([]int, len(errs))
	for i, e := range errs {
		out[i] = CostAtError(traj, truth, e)
	}
	return out
}

// medianCost aggregates per-trial costs: the median of the achieved
// trials, or -1 if fewer than half achieved the bound.
func medianCost(costs []int) int {
	var ok []int
	for _, c := range costs {
		if c >= 0 {
			ok = append(ok, c)
		}
	}
	if len(ok)*2 < len(costs) || len(ok) == 0 {
		return -1
	}
	sort.Ints(ok)
	return ok[len(ok)/2]
}

// fmtCost renders a cost cell (-1 = bound not reached within budget).
func fmtCost(c int) string {
	if c < 0 {
		return ">budget"
	}
	return fmt.Sprintf("%d", c)
}

// Algo names an estimation algorithm for run().
type Algo string

// Algorithms the experiments compare.
const (
	MASRW     Algo = "MA-SRW"
	MATARW    Algo = "MA-TARW"
	MR        Algo = "M&R"
	SRWSocial Algo = "SRW-social"
	SRWTerm   Algo = "SRW-term"
)

// runSpec is one estimator execution.
type runSpec struct {
	algo     Algo
	q        query.Query
	preset   api.Preset
	interval model.Tick
	budget   int
	seed     int64
	// graph optionally overrides the SRW neighbor oracle (Figure 4).
	graph func(s *core.Session) func(u int64) ([]int64, error)
	// tarw tweaks (zero value = defaults).
	tarw core.TARWOptions
	// faults injects API failures (zero value = a healthy platform).
	faults api.Faults
	// policy overrides the client's retry policy (nil = default).
	policy *api.RetryPolicy
}

// run executes one estimator over a fresh client and returns the
// result. Budget exhaustion is a normal outcome.
func run(p *platform.Platform, spec runSpec) (core.Result, error) {
	if spec.preset.Name == "" {
		spec.preset = api.Twitter()
	}
	srv := api.NewServer(p, spec.preset, spec.faults)
	client := api.NewClient(srv, spec.budget)
	if spec.policy != nil {
		client.Policy = *spec.policy
	}
	s, err := core.NewSession(client, spec.q, spec.interval)
	if err != nil {
		return core.Result{}, err
	}
	switch spec.algo {
	case MATARW:
		opts := spec.tarw
		opts.Seed = spec.seed
		return core.RunTARW(s, opts)
	case MR:
		return core.RunMR(s, core.SRWOptions{View: core.LevelView, Seed: spec.seed})
	case SRWSocial:
		return core.RunSRW(s, core.SRWOptions{View: core.SocialView, Seed: spec.seed})
	case SRWTerm:
		return core.RunSRW(s, core.SRWOptions{View: core.TermView, Seed: spec.seed})
	default: // MASRW
		opts := core.SRWOptions{View: core.LevelView, Seed: spec.seed}
		if spec.graph != nil {
			opts.Graph = spec.graph(s)
		}
		return core.RunSRW(s, opts)
	}
}

// costCurve runs `trials` independent executions of spec and returns
// the per-error median cost curve against the exact ground truth.
func costCurve(p *platform.Platform, spec runSpec, truth float64, opts Options) ([]int, error) {
	perErr := make([][]int, len(opts.Errors))
	for trial := 0; trial < opts.Trials; trial++ {
		spec.seed = opts.Seed + int64(trial)*7919
		res, err := run(p, spec)
		if err != nil {
			return nil, fmt.Errorf("%s trial %d: %w", spec.algo, trial, err)
		}
		costs := CostAtErrors(res.Trajectory, truth, opts.Errors)
		for i, c := range costs {
			perErr[i] = append(perErr[i], c)
		}
	}
	out := make([]int, len(opts.Errors))
	for i := range out {
		out[i] = medianCost(perErr[i])
	}
	return out, nil
}
