package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBootstrapCICoversMean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = rng.NormFloat64()*2 + 10
	}
	lo, hi := BootstrapCI(rng, xs, 0.05, 2000)
	m := Mean(xs)
	if lo >= m || hi <= m {
		t.Errorf("CI [%v,%v] does not bracket sample mean %v", lo, hi, m)
	}
	// Width should be about 2*1.96*sd/sqrt(n).
	want := 2 * 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
	if got := hi - lo; math.Abs(got-want)/want > 0.3 {
		t.Errorf("CI width %v, want ~%v", got, want)
	}
}

func TestBootstrapCICoverage(t *testing.T) {
	// Repeated experiments: the 90% CI should cover the true mean
	// roughly 90% of the time.
	rng := rand.New(rand.NewSource(2))
	covered := 0
	const trials = 200
	for tr := 0; tr < trials; tr++ {
		xs := make([]float64, 60)
		for i := range xs {
			xs[i] = rng.ExpFloat64() // true mean 1
		}
		lo, hi := BootstrapCI(rng, xs, 0.10, 400)
		if lo <= 1 && 1 <= hi {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.8 || rate > 0.99 {
		t.Errorf("coverage = %v, want ~0.9", rate)
	}
}

func TestBootstrapCIEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if lo, hi := BootstrapCI(rng, nil, 0.05, 100); lo != 0 || hi != 0 {
		t.Error("empty sample should give (0,0)")
	}
	lo, hi := BootstrapCI(rng, []float64{5}, 0.05, 100)
	if lo != 5 || hi != 5 {
		t.Errorf("single sample CI = [%v,%v], want [5,5]", lo, hi)
	}
	// Bad alpha/b fall back to defaults rather than panicking.
	BootstrapCI(rng, []float64{1, 2, 3}, -1, -1)
}

func TestEffectiveSampleSizeIID(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	chain := make([]float64, 4000)
	for i := range chain {
		chain[i] = rng.NormFloat64()
	}
	ess := EffectiveSampleSize(chain)
	if ess < 0.5*float64(len(chain)) {
		t.Errorf("iid ESS = %v, want near n=%d", ess, len(chain))
	}
}

func TestEffectiveSampleSizeCorrelated(t *testing.T) {
	// AR(1) with rho=0.95: ESS ≈ n(1-rho)/(1+rho) ≈ n/39.
	rng := rand.New(rand.NewSource(5))
	n := 8000
	chain := make([]float64, n)
	for i := 1; i < n; i++ {
		chain[i] = 0.95*chain[i-1] + rng.NormFloat64()
	}
	ess := EffectiveSampleSize(chain)
	want := float64(n) * 0.05 / 1.95
	if ess > 3*want || ess < want/3 {
		t.Errorf("AR(1) ESS = %v, want ~%v", ess, want)
	}
}

func TestEffectiveSampleSizeEdges(t *testing.T) {
	if got := EffectiveSampleSize([]float64{1, 2}); got != 2 {
		t.Errorf("short chain ESS = %v", got)
	}
	if got := EffectiveSampleSize([]float64{3, 3, 3, 3, 3, 3}); got != 6 {
		t.Errorf("constant chain ESS = %v, want n", got)
	}
}

func TestTrimmedMean(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 100}
	if got := TrimmedMean(xs, 0.2); got != 3 {
		t.Errorf("trimmed mean = %v, want 3", got)
	}
	if got := TrimmedMean(xs, 0); got != Mean(xs) {
		t.Errorf("zero trim should equal mean")
	}
	if got := TrimmedMean(nil, 0.1); got != 0 {
		t.Errorf("empty trimmed mean = %v", got)
	}
	// frac clamped below 0.5.
	if got := TrimmedMean(xs, 0.9); math.IsNaN(got) {
		t.Error("over-trim should clamp, not NaN")
	}
	if got := TrimmedMean(xs, -1); got != Mean(xs) {
		t.Errorf("negative trim = %v", got)
	}
}

func TestMAD(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 100}
	// median 3; deviations {2,1,0,1,97}; median deviation 1.
	if got := MAD(xs); got != 1 {
		t.Errorf("MAD = %v, want 1", got)
	}
	if got := MAD([]float64{7}); got != 0 {
		t.Errorf("single MAD = %v", got)
	}
}

// Property: trimmed mean is bounded by min and max and is translation
// equivariant.
func TestTrimmedMeanProperty(t *testing.T) {
	f := func(raw []int8, shift int8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		mn, mx := math.Inf(1), math.Inf(-1)
		for i, v := range raw {
			xs[i] = float64(v)
			mn = math.Min(mn, xs[i])
			mx = math.Max(mx, xs[i])
		}
		tm := TrimmedMean(xs, 0.25)
		if tm < mn-1e-9 || tm > mx+1e-9 {
			return false
		}
		shifted := make([]float64, len(xs))
		for i := range xs {
			shifted[i] = xs[i] + float64(shift)
		}
		return math.Abs(TrimmedMean(shifted, 0.25)-(tm+float64(shift))) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ESS never exceeds n and never drops below 1.
func TestESSBoundsProperty(t *testing.T) {
	f := func(raw []int16) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		ess := EffectiveSampleSize(xs)
		return ess >= 1 && ess <= float64(len(xs))+1e-9 || len(xs) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
