package serve

import (
	"encoding/json"
	"math"
	"testing"
)

// TestFloatRoundTrip: every float64 class survives a JSON round trip,
// including the values encoding/json rejects outright (NaN, ±Inf).
func TestFloatRoundTrip(t *testing.T) {
	cases := []float64{
		0, -0.0, 1, -1, 0.5, 1e300, -1e-300,
		math.MaxFloat64, math.SmallestNonzeroFloat64,
		math.NaN(), math.Inf(1), math.Inf(-1),
	}
	for _, v := range cases {
		b, err := json.Marshal(Float(v))
		if err != nil {
			t.Fatalf("Marshal(%v): %v", v, err)
		}
		var back Float
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("Unmarshal(%s): %v", b, err)
		}
		got, want := float64(back), v
		if math.IsNaN(want) {
			if !math.IsNaN(got) {
				t.Errorf("NaN round-tripped to %v via %s", got, b)
			}
			continue
		}
		if got != want {
			t.Errorf("%v round-tripped to %v via %s", want, got, b)
		}
	}
}

// TestFloatSentinels: the wire encoding of non-finite values is the
// quoted sentinel form, so documents stay valid JSON.
func TestFloatSentinels(t *testing.T) {
	for _, tc := range []struct {
		v    float64
		want string
	}{
		{math.NaN(), `"NaN"`},
		{math.Inf(1), `"+Inf"`},
		{math.Inf(-1), `"-Inf"`},
		{2.5, `2.5`},
	} {
		b, err := json.Marshal(Float(tc.v))
		if err != nil {
			t.Fatalf("Marshal(%v): %v", tc.v, err)
		}
		if string(b) != tc.want {
			t.Errorf("Marshal(%v) = %s, want %s", tc.v, b, tc.want)
		}
	}
}

// TestFloatDecodeForms: the decoder accepts plain numbers, sentinel
// strings, and stringified finite numbers, and rejects garbage.
func TestFloatDecodeForms(t *testing.T) {
	good := map[string]float64{
		`3.25`:   3.25,
		`"3.25"`: 3.25,
		`"Inf"`:  math.Inf(1),
		`"+Inf"`: math.Inf(1),
		`"-Inf"`: math.Inf(-1),
		`"1e4"`:  1e4,
	}
	for in, want := range good {
		var f Float
		if err := json.Unmarshal([]byte(in), &f); err != nil {
			t.Errorf("Unmarshal(%s): %v", in, err)
			continue
		}
		if float64(f) != want {
			t.Errorf("Unmarshal(%s) = %v, want %v", in, float64(f), want)
		}
	}
	var f Float
	if err := json.Unmarshal([]byte(`"nan"`), &f); err != nil {
		t.Errorf(`lower-case "nan" rejected: %v`, err)
	} else if !math.IsNaN(float64(f)) {
		t.Errorf(`"nan" decoded to %v`, float64(f))
	}
	for _, in := range []string{`"pancake"`, `{}`, `[1]`, `true`, `""`} {
		var g Float
		if err := json.Unmarshal([]byte(in), &g); err == nil {
			t.Errorf("Unmarshal(%s) unexpectedly succeeded with %v", in, float64(g))
		}
	}
}
