// Package api implements the restricted data-access model of §2 of the
// paper. A Server exposes exactly the three query types real microblog
// APIs offer — SEARCH, USER CONNECTIONS, USER TIMELINE — with
// per-platform page sizes, a recency-limited search window, optional
// private users, and optional transient faults. A Client layers
// caching, call accounting (the paper's efficiency measure is the
// number of API calls), an optional hard budget, and virtual
// rate-limit timing on top.
//
// Estimators never touch internal/platform directly; everything they
// learn flows through this interface, so their reported query costs
// are faithful to the paper's cost model.
package api

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"mba/internal/model"
	"mba/internal/platform"
)

// Sentinel errors surfaced by the Server.
var (
	// ErrPrivate indicates the user hid their connections/timeline.
	ErrPrivate = errors.New("api: user is private")
	// ErrTransient models a retryable service hiccup (HTTP 5xx).
	ErrTransient = errors.New("api: transient service error")
	// ErrBudgetExhausted is returned by Client methods once the call
	// budget is spent.
	ErrBudgetExhausted = errors.New("api: query budget exhausted")
	// ErrUnknownUser indicates an out-of-range user ID.
	ErrUnknownUser = errors.New("api: unknown user")
)

// Preset captures the interface parameters of a real platform.
type Preset struct {
	Name string
	// SearchWindow is how far back SEARCH reaches (1 week on Twitter).
	SearchWindow model.Tick
	// SearchMaxResults caps the number of users SEARCH returns
	// ("other microblogs restrict search to top-k results where k could
	// be in the low thousands").
	SearchMaxResults int
	// SearchPageSize, TimelinePageSize, ConnectionsPageSize control how
	// many API calls a logical query costs. Google+'s activity search
	// returns at most 20 results per call versus 200 for Twitter's
	// timeline API — the reason Figures 12–13 show much higher absolute
	// costs on Google+.
	SearchPageSize      int
	TimelinePageSize    int
	ConnectionsPageSize int
	// RateLimitCalls per RateLimitWindow defines the virtual wall-clock
	// cost of a call (180 calls / 15 min on Twitter).
	RateLimitCalls  int
	RateLimitWindow time.Duration
}

// Twitter returns the Twitter REST API preset from §3.2.
func Twitter() Preset {
	return Preset{
		Name:                "twitter",
		SearchWindow:        model.Week,
		SearchMaxResults:    3000,
		SearchPageSize:      100,
		TimelinePageSize:    200,
		ConnectionsPageSize: 5000,
		RateLimitCalls:      180,
		RateLimitWindow:     15 * time.Minute,
	}
}

// GPlus returns the Google+ preset from §6.1 (20 results per call,
// 10,000 queries/day courtesy limit).
func GPlus() Preset {
	return Preset{
		Name:                "gplus",
		SearchWindow:        model.Week,
		SearchMaxResults:    3000,
		SearchPageSize:      20,
		TimelinePageSize:    20,
		ConnectionsPageSize: 100,
		RateLimitCalls:      10000,
		RateLimitWindow:     24 * time.Hour,
	}
}

// Tumblr returns the Tumblr preset from §6.1 (one request per 10 s).
func Tumblr() Preset {
	return Preset{
		Name:                "tumblr",
		SearchWindow:        2 * model.Week,
		SearchMaxResults:    3000,
		SearchPageSize:      20,
		TimelinePageSize:    20,
		ConnectionsPageSize: 20,
		RateLimitCalls:      1,
		RateLimitWindow:     10 * time.Second,
	}
}

// Faults configures failure injection on a Server.
type Faults struct {
	// PrivateProb makes a user permanently private.
	PrivateProb float64
	// TransientProb makes any single call fail retryably.
	TransientProb float64
	// Seed drives the deterministic fault draws.
	Seed int64
}

// Server serves the restricted interface over a generated platform.
type Server struct {
	p       *platform.Platform
	preset  Preset
	private map[int64]bool
	faults  Faults
	frng    *rand.Rand
}

// NewServer wraps a platform with a preset interface and optional
// fault injection.
func NewServer(p *platform.Platform, preset Preset, faults Faults) *Server {
	s := &Server{
		p:       p,
		preset:  preset,
		private: make(map[int64]bool),
		faults:  faults,
		frng:    rand.New(rand.NewSource(faults.Seed ^ 0x5eed)),
	}
	if faults.PrivateProb > 0 {
		for id := 0; id < p.NumUsers(); id++ {
			if s.frng.Float64() < faults.PrivateProb {
				s.private[int64(id)] = true
			}
		}
	}
	return s
}

// Preset returns the interface parameters in force.
func (s *Server) Preset() Preset { return s.preset }

func (s *Server) maybeFault() error {
	if s.faults.TransientProb > 0 && s.frng.Float64() < s.faults.TransientProb {
		return ErrTransient
	}
	return nil
}

func (s *Server) checkUser(u int64) error {
	if u < 0 || int(u) >= s.p.NumUsers() {
		return fmt.Errorf("%w: %d", ErrUnknownUser, u)
	}
	return nil
}

// pages returns the number of API calls needed to page through n items
// (minimum 1 — even an empty result consumes a call).
func pages(n, pageSize int) int {
	if pageSize <= 0 || n <= 0 {
		return 1
	}
	return (n + pageSize - 1) / pageSize
}

// Search returns users who posted the keyword within the preset's
// search window before the platform horizon, most recent first, capped
// at SearchMaxResults. The second return is the number of API calls
// the query consumed.
func (s *Server) Search(keyword string) ([]int64, int, error) {
	if err := s.maybeFault(); err != nil {
		return nil, 1, err
	}
	c := s.p.Cascade(keyword)
	if c == nil {
		return nil, 1, nil
	}
	from := s.p.Horizon - s.preset.SearchWindow
	type hit struct {
		u    int64
		last model.Tick
	}
	var hits []hit
	for u, posts := range c.Posts {
		var latest model.Tick = -1
		for _, post := range posts {
			if post.Time >= from && post.Time > latest {
				latest = post.Time
			}
		}
		if latest >= 0 {
			hits = append(hits, hit{u: u, last: latest})
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].last != hits[j].last {
			return hits[i].last > hits[j].last
		}
		return hits[i].u < hits[j].u
	})
	if s.preset.SearchMaxResults > 0 && len(hits) > s.preset.SearchMaxResults {
		hits = hits[:s.preset.SearchMaxResults]
	}
	out := make([]int64, len(hits))
	for i, h := range hits {
		out[i] = h.u
	}
	return out, pages(len(out), s.preset.SearchPageSize), nil
}

// Connections returns all of u's neighbors in the undirected social
// graph, plus the call cost (one call per ConnectionsPageSize
// neighbors, as with Twitter's follower/following APIs).
func (s *Server) Connections(u int64) ([]int64, int, error) {
	if err := s.checkUser(u); err != nil {
		return nil, 1, err
	}
	if err := s.maybeFault(); err != nil {
		return nil, 1, err
	}
	if s.private[u] {
		return nil, 1, ErrPrivate
	}
	ns := s.p.Social.Neighbors(u)
	out := append([]int64(nil), ns...)
	return out, pages(len(out), s.preset.ConnectionsPageSize), nil
}

// Timeline returns u's visible timeline (profile plus keyword posts
// under the platform's cap) and the call cost of paging through the
// user's full post history.
func (s *Server) Timeline(u int64) (model.Timeline, int, error) {
	if err := s.checkUser(u); err != nil {
		return model.Timeline{}, 1, err
	}
	if err := s.maybeFault(); err != nil {
		return model.Timeline{}, 1, err
	}
	if s.private[u] {
		return model.Timeline{}, 1, ErrPrivate
	}
	tl := s.p.Timeline(u)
	visible := tl.Profile.PostCount
	if cap := s.p.Config().TimelineCap; cap > 0 && visible > cap {
		visible = cap
	}
	return tl, pages(visible, s.preset.TimelinePageSize), nil
}

// IsPrivate reports whether fault injection marked u private (test and
// diagnostics hook; estimators learn it only via ErrPrivate).
func (s *Server) IsPrivate(u int64) bool { return s.private[u] }
