package checkedcost

import "api"

func violations(c *api.Client, u int64) {
	c.Search("privacy")     // want "result and error of charged api.Client.Search are discarded"
	_, _ = c.Connections(u) // want "error of charged api.Client.Connections assigned to _"
	tl, _ := c.Timeline(u)  // want "error of charged api.Client.Timeline assigned to _"
	_ = tl
	go c.Search("privacy") // want "charged api.Client.Search fired via go discards its error"
	defer c.Timeline(u)    // want "charged api.Client.Timeline fired via defer discards its error"
}

func idiomatic(c *api.Client, u int64) error {
	hits, err := c.Search("privacy")
	if err != nil {
		return err
	}
	_ = hits
	if _, err := c.Connections(u); err != nil {
		return err
	}
	tl, err := c.Timeline(u)
	_ = tl
	// Uncharged accessors carry no error to drop.
	_ = c.Cost()
	return err
}
