package serve

import (
	"context"
	"fmt"
	"sort"

	"mba/internal/query"
)

// Play replays a request trace through a simulated machine room: the
// same admission, execution, caching and settlement state machine the
// live worker pool runs, driven by a sequential discrete-event loop
// over Config.Workers virtual workers on the virtual clock. Requests
// are processed strictly in (ArrivalNs, input order); admission
// happens at arrival, dispatch when a worker frees up, and a worker
// stays busy for the walk's virtual duration. Because no goroutines
// are involved, Play is bit-deterministic in (Config, trace) — it is
// the harness experiments.ServeSweep and audit.CheckService drive.
//
// Responses are returned in input order, one per request, no matter
// what happens to each (the no-silent-drop invariant).
func (s *Service) Play(reqs []Request) []Response {
	type arrival struct {
		idx int
		tk  *task
	}
	arrivals := make([]arrival, 0, len(reqs))
	responses := make([]Response, len(reqs))
	for i, req := range reqs {
		if req.ID == "" {
			req.ID = fmt.Sprintf("r%04d", i)
		}
		q, err := query.ParseQuery(req.Query)
		if err != nil {
			tk := s.normalizeUnparsed(req)
			tk.resp = tk.baseResponse()
			tk.resp.Status = StatusError
			tk.resp.Err = err.Error()
			s.mu.Lock()
			s.met.Requests++
			s.met.Errors++
			s.mu.Unlock()
			responses[i] = tk.resp
			continue
		}
		arrivals = append(arrivals, arrival{idx: i, tk: s.normalize(req, q)})
	}
	sort.SliceStable(arrivals, func(a, b int) bool {
		return arrivals[a].tk.arrival < arrivals[b].tk.arrival
	})

	freeAt := make([]int64, s.cfg.Workers)
	pendingIdx := make(map[*task]int, len(arrivals))
	next := 0
	pending := 0

	admitOne := func(a arrival) {
		s.mu.Lock()
		final := s.admit(a.tk)
		s.mu.Unlock()
		if final {
			if a.tk.resp.CacheHit {
				a.tk.resp.DoneNs = a.tk.arrival
			}
			responses[a.idx] = a.tk.resp
			return
		}
		pendingIdx[a.tk] = a.idx
		pending++
	}

	for next < len(arrivals) || pending > 0 {
		if pending == 0 {
			admitOne(arrivals[next])
			next++
			continue
		}
		// Earliest free worker defines the next dispatch instant;
		// arrivals strictly before it are admitted first.
		w := 0
		for i := 1; i < len(freeAt); i++ {
			if freeAt[i] < freeAt[w] {
				w = i
			}
		}
		if next < len(arrivals) && arrivals[next].tk.arrival <= freeAt[w] {
			admitOne(arrivals[next])
			next++
			continue
		}

		s.mu.Lock()
		tk := s.nextTask()
		s.mu.Unlock()
		if tk == nil {
			continue // unreachable: pending > 0 implies a queued task
		}
		idx := pendingIdx[tk]
		delete(pendingIdx, tk)
		pending--

		start := freeAt[w]
		if tk.arrival > start {
			start = tk.arrival
		}
		queueNs := start - tk.arrival
		tk.resp.QueueNs = queueNs
		headroom, ok := deadlineLeft(tk.req, queueNs)
		if !ok {
			// The deadline lapsed in the queue: shed at dispatch, refund
			// the reservation untouched, occupy no worker time.
			s.mu.Lock()
			s.ledger.Refund(tk.ten.account, tk.granted)
			s.unprobe(tk.ten)
			s.met.Admitted-- // it never ran; reclassify as shed
			s.shed(tk, ShedDeadline)
			s.mu.Unlock()
			tk.resp.DoneNs = start
			responses[idx] = tk.resp
			continue
		}
		tk.resp.DeadlineLeftNs = int64(headroom)
		s.execute(context.Background(), tk, headroom)
		tk.resp.DoneNs = start + tk.resp.BusyNs
		freeAt[w] = tk.resp.DoneNs
		responses[idx] = tk.resp
	}
	return responses
}

// normalizeUnparsed builds a task shell for a request whose query did
// not parse, so its error response still carries the identity fields.
func (s *Service) normalizeUnparsed(req Request) *task {
	if req.Algo == "" {
		req.Algo = AlgoTARW
	}
	return &task{req: req, arrival: req.ArrivalNs}
}
