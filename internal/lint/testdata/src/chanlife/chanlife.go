// Package chanlife exercises the channel/WaitGroup lifecycle analyzer:
// close-at-most-once, no send-after-close, Add-dominates-go, and Done
// on every non-panic path.
package chanlife

import "sync"

func doubleClose(flag bool) {
	ch := make(chan int)
	close(ch)
	if flag {
		close(ch) // want "may be closed twice"
	}
}

func closeInLoop() {
	ch := make(chan int)
	for i := 0; i < 3; i++ {
		close(ch) // want "may be closed twice"
	}
}

func sendAfterClose() {
	ch := make(chan int, 1)
	close(ch)
	ch <- 1 // want "may already be closed"
}

func closeOnceClean(flag bool) {
	ch := make(chan int)
	if flag {
		close(ch)
		return
	}
	close(ch)
}

func addAfterGo() {
	var wg sync.WaitGroup
	go func() { // want "must happen before this go statement"
		defer wg.Done()
	}()
	wg.Add(1)
	wg.Wait()
}

func missingDone(flag bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want "can exit without reaching it"
		if flag {
			wg.Done()
			return
		}
	}()
	wg.Wait()
}

func deferredDoneClean() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}
