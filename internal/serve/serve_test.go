package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"mba/internal/api"
	"mba/internal/platform"
	"mba/internal/query"
	"mba/internal/workload"
)

func testPlatform(t *testing.T) *platform.Platform {
	t.Helper()
	p, err := workload.Get(workload.Test)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func twoTenants(quota int) []TenantConfig {
	return []TenantConfig{
		{Name: "gold", Quota: 2 * quota, Weight: 2, Depth: 8},
		{Name: "bronze", Quota: quota, Weight: 1, Depth: 8},
	}
}

// executed reports whether a response reflects an actual walk this
// service ran (as opposed to a shed, an error, or a cache echo).
func executed(r Response) bool {
	return (r.Status == StatusOK || r.Status == StatusDegraded) && !r.CacheHit && !r.Coalesced
}

// offlineFor reruns a served response offline with the same granted
// budget and deadline headroom.
func offlineFor(t *testing.T, p *platform.Platform, faults api.Faults, r Response) (uint64, int) {
	t.Helper()
	q, err := query.ParseQuery(r.Query)
	if err != nil {
		t.Fatalf("served response carries unparsable query %q: %v", r.Query, err)
	}
	res, err := RunOffline(OfflineSpec{
		Platform: p,
		Faults:   faults,
		Query:    q,
		Algo:     r.Algo,
		Budget:   r.Budget,
		Seed:     r.Seed,
		Deadline: time.Duration(r.DeadlineLeftNs),
	})
	if err != nil {
		t.Fatalf("offline rerun of %s: %v", r.ID, err)
	}
	return math.Float64bits(res.Estimate), res.Cost
}

// calmTrace is a small multi-tenant trace with duplicate queries so
// the cache gets exercised.
func calmTrace(gapNs int64) []Request {
	mk := func(i int, tenant, q string, arrive int64) Request {
		return Request{ID: fmt.Sprintf("t%02d", i), Tenant: tenant, Query: q, Budget: 400, ArrivalNs: arrive}
	}
	count := query.CountQuery("privacy").String()
	avg := query.AvgQuery("boston", query.Followers).String()
	return []Request{
		mk(0, "gold", count, 0),
		mk(1, "bronze", avg, gapNs),
		mk(2, "gold", count, 2*gapNs), // duplicate of t00: cache hit
		mk(3, "bronze", count, 3*gapNs),
		mk(4, "gold", avg, 4*gapNs),
		mk(5, "bronze", avg, 5*gapNs), // duplicate of t01
	}
}

// TestPlayDeterministicAndBitIdenticalToOffline is the service's core
// promise: a replayed trace is bit-deterministic, and every executed
// fault-free response equals an offline rerun of the same request.
func TestPlayDeterministicAndBitIdenticalToOffline(t *testing.T) {
	p := testPlatform(t)
	cfg := Config{Platform: p, Tenants: twoTenants(4000), Workers: 2}
	trace := calmTrace(int64(time.Hour))

	run := func() ([]Response, []byte) {
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		resps := s.Play(trace)
		b, err := json.Marshal(resps)
		if err != nil {
			t.Fatalf("responses must marshal (NaN-safe): %v", err)
		}
		return resps, b
	}
	resps, bytesA := run()
	_, bytesB := run()
	if string(bytesA) != string(bytesB) {
		t.Fatalf("two Play replays of the same trace diverged:\n%s\n%s", bytesA, bytesB)
	}

	if len(resps) != len(trace) {
		t.Fatalf("got %d responses for %d requests", len(resps), len(trace))
	}
	hits := 0
	for _, r := range resps {
		if r.CacheHit {
			hits++
			continue
		}
		if !executed(r) {
			t.Fatalf("calm trace should execute everything, got %s for %s (%s)", r.Status, r.ID, r.Err)
		}
		bits, cost := offlineFor(t, p, api.Faults{}, r)
		if r.EstimateBits != bits {
			t.Errorf("%s: served bits %#x != offline %#x", r.ID, r.EstimateBits, bits)
		}
		if r.Cost != cost {
			t.Errorf("%s: served cost %d != offline %d", r.ID, r.Cost, cost)
		}
		if r.Charged != r.Cost {
			t.Errorf("%s: fresh run charged %d != cost %d", r.ID, r.Charged, r.Cost)
		}
	}
	if hits != 2 {
		t.Errorf("expected 2 cache hits from duplicate queries, got %d", hits)
	}
}

// TestResumeNeverRepays: a small-budget run leaves a checkpoint; the
// same query at a larger budget resumes from it, is bit-identical to
// an uninterrupted large-budget run, and is charged only the delta.
func TestResumeNeverRepays(t *testing.T) {
	p := testPlatform(t)
	for _, algo := range []string{AlgoSRW, AlgoTARW} {
		t.Run(algo, func(t *testing.T) {
			// Both tenants share a cache class, so bronze's large run can
			// resume gold's cached partial.
			s, err := New(Config{Platform: p, Tenants: []TenantConfig{
				{Name: "gold", Quota: 16000, Weight: 2, Class: "std"},
				{Name: "bronze", Quota: 8000, Weight: 1, Class: "std"},
			}, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			q := query.AvgQuery("privacy", query.Followers).String()
			gap := int64(100 * time.Hour)
			resps := s.Play([]Request{
				{ID: "small", Tenant: "gold", Query: q, Algo: algo, Budget: 600, ArrivalNs: 0},
				{ID: "large", Tenant: "bronze", Query: q, Algo: algo, Budget: 1800, ArrivalNs: gap},
			})
			small, large := resps[0], resps[1]
			if large.Status == StatusShed || large.Status == StatusError {
				t.Fatalf("large run did not execute: %+v", large)
			}
			if !large.Resumed {
				t.Fatal("large run should resume from the cached small-run checkpoint")
			}
			bits, cost := offlineFor(t, p, api.Faults{}, large)
			if large.EstimateBits != bits {
				t.Errorf("resumed bits %#x != uninterrupted offline %#x", large.EstimateBits, bits)
			}
			if large.Cost != cost {
				t.Errorf("resumed cumulative cost %d != offline %d — replay repaid spent budget", large.Cost, cost)
			}
			if want := large.Cost - small.Cost; large.Charged != want {
				t.Errorf("resumed charge %d != delta %d (small already paid %d)", large.Charged, want, small.Cost)
			}
			_, ls := s.Snapshot()
			if ls.Reserved != 0 {
				t.Errorf("ledger still holds %d reserved at rest", ls.Reserved)
			}
			if ls.Committed != small.Charged+large.Charged {
				t.Errorf("ledger committed %d != charged %d+%d", ls.Committed, small.Charged, large.Charged)
			}
		})
	}
}

// TestOverloadShedsNotCollapses: a burst far past the watermarks gets
// shed (well-formed Degraded partials, nothing charged) while admitted
// requests complete; tenants cannot exceed quota.
func TestOverloadShedsNotCollapses(t *testing.T) {
	p := testPlatform(t)
	s, err := New(Config{
		Platform: p,
		Tenants: []TenantConfig{
			{Name: "gold", Quota: 4000, Weight: 2, Depth: 3},
			{Name: "bronze", Quota: 2000, Weight: 1, Depth: 3},
		},
		Workers:      1,
		ShedDepth:    4,
		DegradeDepth: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var trace []Request
	for i := 0; i < 16; i++ {
		tenant := "gold"
		if i%2 == 1 {
			tenant = "bronze"
		}
		q := query.AvgQuery("new york", query.Age)
		trace = append(trace, Request{
			ID:     fmt.Sprintf("b%02d", i),
			Tenant: tenant,
			Query:  q.String(),
			Budget: 400,
			Seed:   int64(1000 + i), // distinct walks: no cache shortcuts
		})
	}
	resps := s.Play(trace)
	met, ls := s.Snapshot()
	if met.Shed == 0 {
		t.Fatal("a 16-request burst into a depth-4 queue must shed")
	}
	if met.Ok+met.Degraded == 0 {
		t.Fatal("shedding everything is a collapse of its own")
	}
	if met.Degraded == 0 {
		t.Error("backlog past the degrade watermark should yield pressure-tier partials")
	}
	charged := map[string]int{}
	for _, r := range resps {
		if r.Status == StatusShed {
			if !r.Degraded || r.Reason == "" || r.Charged != 0 || r.Cost != 0 {
				t.Errorf("malformed shed response: %+v", r)
			}
			if !math.IsNaN(float64(r.Estimate)) {
				t.Errorf("shed response carries an estimate: %+v", r)
			}
		}
		charged[r.Tenant] += r.Charged
	}
	if charged["gold"] > 4000 || charged["bronze"] > 2000 {
		t.Errorf("quota exceeded: charged %v", charged)
	}
	if ls.Available+ls.Reserved+ls.Committed != ls.Total {
		t.Errorf("ledger leaked: %+v", ls)
	}
	// Pressure-tier responses answer with less than asked.
	for _, r := range resps {
		if r.Reason == ReasonPressure && r.Budget >= r.Requested {
			t.Errorf("pressure tier granted %d >= requested %d", r.Budget, r.Requested)
		}
	}
}

// TestDeadlineShedsInQueue: a request whose virtual deadline lapses
// while it waits is shed at dispatch without spending a call.
func TestDeadlineShedsInQueue(t *testing.T) {
	p := testPlatform(t)
	s, err := New(Config{Platform: p, Tenants: twoTenants(8000), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	count := query.CountQuery("privacy").String()
	avg := query.AvgQuery("privacy", query.Followers).String()
	resps := s.Play([]Request{
		// A long run occupies the only worker...
		{ID: "long", Tenant: "gold", Query: count, Budget: 2000, ArrivalNs: 0},
		// ...so a tight-deadline request times out in the queue.
		{ID: "tight", Tenant: "bronze", Query: avg, Budget: 400, ArrivalNs: 1, DeadlineNs: int64(time.Minute)},
	})
	tight := resps[1]
	if tight.Status != StatusShed || tight.Reason != ShedDeadline {
		t.Fatalf("want deadline shed, got %+v", tight)
	}
	if tight.Charged != 0 || tight.Cost != 0 {
		t.Errorf("deadline shed spent budget: %+v", tight)
	}
}

// TestBreakerTripsAndRecovers: repeated backend-fault degradations
// trip the tenant's breaker (subsequent requests shed), and the
// half-open probe path exists.
func TestBreakerTripsAndRecovers(t *testing.T) {
	p := testPlatform(t)
	faults := api.Faults{OutageMeanGap: 60, OutageLength: 400, Seed: 7}
	s, err := New(Config{
		Platform:         p,
		Faults:           faults,
		Tenants:          twoTenants(40000),
		Workers:          1,
		BreakerThreshold: 2,
		BreakerCooldown:  2,
		MaxResumes:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var trace []Request
	gap := int64(1000 * time.Hour)
	for i := 0; i < 10; i++ {
		trace = append(trace, Request{
			ID:        fmt.Sprintf("f%02d", i),
			Tenant:    "gold",
			Query:     query.CountQuery("privacy").String(),
			Budget:    300,
			Seed:      int64(100 + i),
			ArrivalNs: int64(i) * gap,
		})
	}
	resps := s.Play(trace)
	met, _ := s.Snapshot()
	if met.BreakerTrips == 0 {
		t.Fatalf("outage storm never tripped the breaker: %+v", met)
	}
	breakerSheds := 0
	for _, r := range resps {
		if r.Reason == ShedBreaker {
			breakerSheds++
		}
	}
	if breakerSheds == 0 {
		t.Error("tripped breaker never shed a request")
	}
	if met.BreakerTrips > 0 && breakerSheds >= len(resps)-1 {
		t.Error("breaker never let a probe through")
	}
}

// TestLiveConservationUnderRace drives the concurrent pool with many
// identical and distinct requests across tenants and verifies the
// books: every request answered, per-tenant charges within quota,
// ledger conserved, coalesced/cached requests free. Run with -race.
func TestLiveConservationUnderRace(t *testing.T) {
	p := testPlatform(t)
	s, err := New(Config{
		Platform: p,
		Tenants: []TenantConfig{
			{Name: "gold", Quota: 9000, Weight: 2, Depth: 16},
			{Name: "silver", Quota: 6000, Weight: 1, Depth: 16},
			{Name: "bronze", Quota: 3000, Weight: 1, Depth: 16},
		},
		Workers:   4,
		ShedDepth: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var pool sync.WaitGroup
	pool.Add(1)
	go func() {
		defer pool.Done()
		s.Run(ctx)
	}()

	tenants := []string{"gold", "silver", "bronze"}
	queries := []string{
		query.CountQuery("privacy").String(),
		query.AvgQuery("boston", query.Followers).String(),
		query.CountQuery("new york").String(),
	}
	const submitters = 8
	const perSubmitter = 6
	resCh := make(chan Response, submitters*perSubmitter)
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				req := Request{
					Tenant: tenants[(g+i)%len(tenants)],
					Query:  queries[i%len(queries)],
					Budget: 300,
				}
				resCh <- s.Do(context.Background(), req)
			}
		}(g)
	}
	wg.Wait()
	close(resCh)
	cancel()
	pool.Wait()

	charged := map[string]int{}
	n := 0
	for r := range resCh {
		n++
		if r.Status == StatusError {
			t.Errorf("unexpected error response: %+v", r)
		}
		if (r.CacheHit || r.Coalesced) && r.Charged != 0 {
			t.Errorf("free response was charged: %+v", r)
		}
		charged[r.Tenant] += r.Charged
	}
	if n != submitters*perSubmitter {
		t.Fatalf("silent drop: %d responses for %d requests", n, submitters*perSubmitter)
	}
	_, ls := s.Snapshot()
	if ls.Available+ls.Reserved+ls.Committed != ls.Total {
		t.Errorf("ledger not conserved: %+v", ls)
	}
	if ls.Reserved != 0 {
		t.Errorf("reservations leaked: %+v", ls)
	}
	quota := map[string]int{"gold": 9000, "silver": 6000, "bronze": 3000}
	total := 0
	for ten, c := range charged {
		if c > quota[ten] {
			t.Errorf("tenant %s charged %d over quota %d", ten, c, quota[ten])
		}
		total += c
	}
	if ls.Committed != total {
		t.Errorf("ledger committed %d != responses' charges %d", ls.Committed, total)
	}
}
