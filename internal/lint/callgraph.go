package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// This file builds the whole-program layer the interprocedural
// analyzers (ctxflow, errsentinel, lockorder, budgetflow) run on: a
// call graph over every package handed to NewProgram, with
//
//   - static calls resolved exactly through go/types (package
//     functions, concrete methods, directly invoked closures),
//   - interface dispatch resolved conservatively to every program
//     method whose receiver implements the interface at the call site,
//   - function values resolved conservatively to every address-taken
//     program function (or closure) with an identical signature —
//     class-hierarchy analysis for func pointers.
//
// A dynamic call that matches no address-taken candidate marks the
// caller Unresolved; summary propagation treats such callers honestly
// (the facts they already have stand, nothing is invented), and
// DESIGN.md §11 records the soundness caveat.

// Func is one function, method, or closure under program analysis.
type Func struct {
	// ID is the stable identity used by summaries and the fact cache:
	// types.Func.FullName for declared functions and methods,
	// "pkgpath.func@file:line:col" for closures.
	ID string
	// Pkg is the package the body lives in.
	Pkg *Package
	// Decl is the declaration (nil for closures).
	Decl *ast.FuncDecl
	// Lit is the closure literal (nil for declared functions).
	Lit *ast.FuncLit
	// Obj is the types object (nil for closures).
	Obj *types.Func
	// Sig is the function's signature.
	Sig *types.Signature
	// Body is the function body (nil for declarations without one).
	Body *ast.BlockStmt

	calls     []*callSite
	addrTaken bool
	// addrSigs are the signature keys this function was registered
	// under as an address-taken candidate (feeds the fact cache's
	// per-package dynamic-surface hash).
	addrSigs []string
}

// Name returns a human-readable name for diagnostics.
func (f *Func) Name() string {
	if f.Obj != nil {
		return f.Obj.Name()
	}
	return "func literal"
}

// Pos returns the function's declaration position.
func (f *Func) Pos() token.Pos {
	if f.Decl != nil {
		return f.Decl.Pos()
	}
	return f.Lit.Pos()
}

// callSite is one call expression inside a Func body with its resolved
// candidate callees.
type callSite struct {
	expr    *ast.CallExpr
	callees []*Func
	// dynamic marks calls through function values or interfaces.
	dynamic bool
	// unresolved marks dynamic calls with zero program candidates.
	unresolved bool
	// dynSig is the signature key a function-value call resolved
	// against ("" for static and interface calls).
	dynSig string
	// ifaceMethod is the method name an interface call dispatched on
	// ("" otherwise). Both feed the per-package dynamic-surface hash.
	ifaceMethod string
}

// Program is the whole-program view shared by every interprocedural
// analyzer: the packages, the call graph, and the converged summaries.
type Program struct {
	Fset *token.FileSet
	// Pkgs are the analyzed packages, sorted by import path.
	Pkgs []*Package
	// Funcs are all program functions, sorted by ID.
	Funcs []*Func

	byID    map[string]*Func
	byObj   map[*types.Func]*Func
	byNode  map[ast.Node]*Func
	callees map[*ast.CallExpr]*callSite

	// Summaries maps Func.ID to the function's converged facts.
	Summaries map[string]*Summary
	// sentinels maps the package-level error objects ("var ErrX =
	// errors.New...") of the program to their display names.
	sentinels map[types.Object]string
	// wrappedSentinels is the set of sentinel display names that are
	// wrapped (fmt.Errorf %w) somewhere in the program; == against a
	// wrapped sentinel is unsound anywhere.
	wrappedSentinels map[string]bool
	// lockEdges are the "held L while acquiring M" witnesses found by
	// the post-fixpoint lock walk, sorted.
	lockEdges []lockEdge
	// taintCtxs memoizes per-function taint analysis contexts (CFG +
	// syntactic source/sink facts), built lazily by taintContext.
	taintCtxs map[*Func]*taintCtx
	// taintMu guards taintCtxs: analyzer passes run concurrently in
	// RunAllProgram's worker pool and dettaint contexts build lazily.
	taintMu sync.Mutex

	// pointsTo is the whole-program points-to solution (pointsto.go).
	pointsTo *PointsTo
	// escape is the goroutine-reachability layer over pointsTo
	// (escape.go), feeding sharedguard and chanlife.
	escape *escapeInfo
	// sharedOnce/sharedDiags memoize sharedguard's whole-program
	// detection, which runs once and is filtered per package pass.
	sharedOnce  sync.Once
	sharedDiags []sharedFinding
}

// lockEdge is one "lock From held while acquiring lock To" witness.
type lockEdge struct {
	From, To string
	// Pos is the acquiring call's position; PkgPath the package whose
	// analysis run should report it.
	Pos     token.Pos
	PkgPath string
	// Via names the callee the acquisition flows through ("" when the
	// Lock call is direct).
	Via string
}

// NewProgram builds the call graph and runs summary propagation to a
// fixpoint over the given packages.
func NewProgram(pkgs []*Package) *Program {
	return newProgram(pkgs, nil)
}

func newProgram(pkgs []*Package, cache *FactCache) *Program {
	sorted := append([]*Package(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })
	p := &Program{
		Pkgs:             sorted,
		byID:             make(map[string]*Func),
		byObj:            make(map[*types.Func]*Func),
		byNode:           make(map[ast.Node]*Func),
		callees:          make(map[*ast.CallExpr]*callSite),
		Summaries:        make(map[string]*Summary),
		sentinels:        make(map[types.Object]string),
		wrappedSentinels: make(map[string]bool),
	}
	if len(sorted) > 0 {
		p.Fset = sorted[0].Fset
	}
	p.collectFuncs()
	p.collectSentinels()
	p.resolveCalls()
	p.buildPointsTo(cache)
	p.buildEscape()
	p.computeSummaries(cache)
	p.computeLockEdges()
	return p
}

// FuncOf returns the program Func for a declared function object, or
// nil if the object's body is outside the program.
func (p *Program) FuncOf(obj *types.Func) *Func { return p.byObj[obj] }

// FuncByID returns the program Func with the given ID, or nil.
func (p *Program) FuncByID(id string) *Func { return p.byID[id] }

// EnclosingFunc returns the program Func whose declaration or literal
// is node, or nil.
func (p *Program) EnclosingFunc(node ast.Node) *Func { return p.byNode[node] }

// CalleesOf returns the resolved candidate callees of a call
// expression (empty for calls leaving the program, e.g. into the
// standard library).
func (p *Program) CalleesOf(call *ast.CallExpr) []*Func {
	if cs, ok := p.callees[call]; ok {
		return cs.callees
	}
	return nil
}

// SummaryOf returns the converged summary for f (never nil for a
// program Func).
func (p *Program) SummaryOf(f *Func) *Summary {
	if s, ok := p.Summaries[f.ID]; ok {
		return s
	}
	return &Summary{}
}

// funcID derives the stable identity of a function.
func funcID(fset *token.FileSet, pkg *Package, obj *types.Func, lit *ast.FuncLit) string {
	if obj != nil {
		return obj.FullName()
	}
	pos := fset.Position(lit.Pos())
	return fmt.Sprintf("%s.func@%s:%d:%d", pkg.Path, filepath.Base(pos.Filename), pos.Line, pos.Column)
}

// collectFuncs creates a Func for every declared function/method with
// a body and for every closure literal in every package.
func (p *Program) collectFuncs() {
	for _, pkg := range p.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				f := &Func{
					ID:   funcID(pkg.Fset, pkg, obj, nil),
					Pkg:  pkg,
					Decl: fd,
					Obj:  obj,
					Sig:  obj.Type().(*types.Signature),
					Body: fd.Body,
				}
				p.addFunc(fd, f)
			}
			ast.Inspect(file, func(n ast.Node) bool {
				lit, ok := n.(*ast.FuncLit)
				if !ok {
					return true
				}
				sig, _ := pkg.Info.Types[lit].Type.(*types.Signature)
				if sig == nil {
					return true
				}
				f := &Func{
					ID:   funcID(pkg.Fset, pkg, nil, lit),
					Pkg:  pkg,
					Lit:  lit,
					Sig:  sig,
					Body: lit.Body,
				}
				p.addFunc(lit, f)
				return true
			})
		}
	}
	sort.Slice(p.Funcs, func(i, j int) bool { return p.Funcs[i].ID < p.Funcs[j].ID })
}

func (p *Program) addFunc(node ast.Node, f *Func) {
	p.Funcs = append(p.Funcs, f)
	p.byID[f.ID] = f
	p.byNode[node] = f
	if f.Obj != nil {
		p.byObj[f.Obj] = f
	}
}

// collectSentinels records every package-level `var ErrX` of type
// error as a sentinel the errsentinel analyzer protects.
func (p *Program) collectSentinels() {
	for _, pkg := range p.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			if !strings.HasPrefix(name, "Err") {
				continue
			}
			v, ok := scope.Lookup(name).(*types.Var)
			if !ok || !isErrorType(v.Type()) {
				continue
			}
			p.sentinels[v] = pkg.Types.Name() + "." + name
		}
	}
}

func isErrorType(t types.Type) bool {
	return t.String() == "error"
}

// sigKey renders a receiver-less signature identity for conservative
// function-value resolution: two functions are call-compatible when
// their parameter and result type strings match.
func sigKey(sig *types.Signature) string {
	var b strings.Builder
	b.WriteByte('(')
	for i := 0; i < sig.Params().Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(sig.Params().At(i).Type().String())
	}
	if sig.Variadic() {
		b.WriteString("...")
	}
	b.WriteString(")(")
	for i := 0; i < sig.Results().Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(sig.Results().At(i).Type().String())
	}
	b.WriteByte(')')
	return b.String()
}

// resolveCalls builds every Func's outgoing call sites: first a
// program-wide address-taken pass, then per-body resolution.
func (p *Program) resolveCalls() {
	// Pass 1: which expressions are the Fun of a call, and which
	// functions are referenced as values (address-taken)?
	callFuns := make(map[ast.Expr]bool)
	for _, pkg := range p.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					callFuns[unparen(call.Fun)] = true
				}
				return true
			})
		}
	}
	addrBySig := make(map[string][]*Func)
	markTaken := func(f *Func, valueSig *types.Signature) {
		if f == nil || f.addrTaken {
			return
		}
		f.addrTaken = true
		key := sigKey(valueSig)
		f.addrSigs = append(f.addrSigs, key)
		addrBySig[key] = append(addrBySig[key], f)
	}
	for _, pkg := range p.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.Ident:
					obj, ok := pkg.Info.Uses[e].(*types.Func)
					if !ok {
						return true
					}
					f := p.byObj[obj]
					if f == nil || callFuns[e] {
						return true
					}
					// A method name inside a selector is handled via the
					// selector expression below; a bare ident use of a
					// package function is a value reference.
					if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() == nil {
						markTaken(f, sig)
					}
				case *ast.SelectorExpr:
					obj, ok := pkg.Info.Uses[e.Sel].(*types.Func)
					if !ok || callFuns[e] {
						return true
					}
					f := p.byObj[obj]
					if f == nil {
						return true
					}
					// Method value / method expression: the value's type is
					// the receiver-less (or receiver-prefixed) signature.
					if sig, ok := pkg.Info.Types[e].Type.(*types.Signature); ok {
						markTaken(f, sig)
					}
				case *ast.FuncLit:
					if f := p.byNode[e]; f != nil && !callFuns[e] {
						markTaken(f, f.Sig)
					}
				}
				return true
			})
		}
	}
	for _, fs := range addrBySig {
		sort.Slice(fs, func(i, j int) bool { return fs[i].ID < fs[j].ID })
	}

	// Pass 2: resolve each Func's own call expressions (closures own
	// the calls inside their bodies, not their enclosing function).
	for _, f := range p.Funcs {
		body := f.Body
		if body == nil {
			continue
		}
		inspectShallow(body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			cs := p.resolveCall(f.Pkg, call, addrBySig)
			if cs == nil {
				return
			}
			f.calls = append(f.calls, cs)
			p.callees[call] = cs
		})
	}
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}

// inspectShallow walks n without descending into nested closure
// literals (whose statements belong to the closure's own Func).
func inspectShallow(body ast.Node, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok && n != body {
			fn(n)
			return false
		}
		fn(n)
		return true
	})
}

// resolveCall classifies one call expression. Calls that certainly
// leave the program (standard library, type conversions, builtins)
// return nil.
func (p *Program) resolveCall(pkg *Package, call *ast.CallExpr, addrBySig map[string][]*Func) *callSite {
	fun := unparen(call.Fun)

	// Directly invoked closure.
	if lit, ok := fun.(*ast.FuncLit); ok {
		if f := p.byNode[lit]; f != nil {
			return &callSite{expr: call, callees: []*Func{f}}
		}
		return nil
	}

	// Type conversion?
	if tv, ok := pkg.Info.Types[fun]; ok && tv.IsType() {
		return nil
	}

	switch e := fun.(type) {
	case *ast.Ident:
		switch obj := pkg.Info.Uses[e].(type) {
		case *types.Func:
			if f := p.byObj[obj]; f != nil {
				return &callSite{expr: call, callees: []*Func{f}}
			}
			return nil // external function
		case *types.Builtin, *types.TypeName, nil:
			return nil
		default:
			return p.dynamicSite(pkg, call, addrBySig)
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[e]; ok {
			switch sel.Kind() {
			case types.MethodVal:
				obj := sel.Obj().(*types.Func)
				if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
					return p.interfaceSite(call, obj.Name(), iface)
				}
				if f := p.byObj[obj]; f != nil {
					return &callSite{expr: call, callees: []*Func{f}}
				}
				return nil
			case types.FieldVal:
				return p.dynamicSite(pkg, call, addrBySig)
			}
			return nil
		}
		// Qualified call (pkg.Fn) or method on a package-level var.
		switch obj := pkg.Info.Uses[e.Sel].(type) {
		case *types.Func:
			if f := p.byObj[obj]; f != nil {
				return &callSite{expr: call, callees: []*Func{f}}
			}
			return nil
		case *types.Var:
			return p.dynamicSite(pkg, call, addrBySig)
		}
		return nil
	default:
		// Call of a call result, index expression, etc.: a function
		// value of some shape.
		return p.dynamicSite(pkg, call, addrBySig)
	}
}

// dynamicSite resolves a function-value call to every address-taken
// program function with an identical signature.
func (p *Program) dynamicSite(pkg *Package, call *ast.CallExpr, addrBySig map[string][]*Func) *callSite {
	tv, ok := pkg.Info.Types[unparen(call.Fun)]
	if !ok {
		return &callSite{expr: call, dynamic: true, unresolved: true}
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	key := sigKey(sig)
	cands := addrBySig[key]
	return &callSite{expr: call, callees: cands, dynamic: true, unresolved: len(cands) == 0, dynSig: key}
}

// interfaceSite resolves an interface method call to every program
// method of that name whose receiver type implements the interface.
func (p *Program) interfaceSite(call *ast.CallExpr, name string, iface *types.Interface) *callSite {
	var cands []*Func
	for _, f := range p.Funcs {
		if f.Obj == nil || f.Obj.Name() != name {
			continue
		}
		recv := f.Sig.Recv()
		if recv == nil {
			continue
		}
		rt := recv.Type()
		if types.Implements(rt, iface) {
			cands = append(cands, f)
			continue
		}
		if _, isPtr := rt.(*types.Pointer); !isPtr {
			if types.Implements(types.NewPointer(rt), iface) {
				cands = append(cands, f)
			}
		}
	}
	return &callSite{expr: call, callees: cands, dynamic: true, unresolved: false, ifaceMethod: name}
}
