package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one parsed and type-checked package under analysis.
type Package struct {
	// Path is the import path ("mba/internal/core", or a fixture path
	// like "core" when loaded from a testdata tree).
	Path string
	// Dir is the directory the sources were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// The standard library is type-checked from $GOROOT source exactly
// once per process and shared by every Loader: srcimporter memoizes
// internally, and a single global FileSet keeps positions coherent.
var (
	stdOnce sync.Once
	stdFset *token.FileSet
	stdImp  types.Importer
	stdMu   sync.Mutex
)

func stdImporter() (*token.FileSet, types.Importer) {
	stdOnce.Do(func() {
		stdFset = token.NewFileSet()
		stdImp = importer.ForCompiler(stdFset, "source", nil)
	})
	return stdFset, stdImp
}

// Loader parses and type-checks packages of one module (or one
// fixture tree) on demand, resolving module-internal imports from
// source and everything else through the standard-library importer.
type Loader struct {
	fset *token.FileSet
	// root is the directory import paths resolve under.
	root string
	// modPath is the module path from go.mod; "" selects fixture mode,
	// where import paths are directories directly under root.
	modPath string
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewModuleLoader returns a loader for the Go module rooted at root
// (the directory containing go.mod).
func NewModuleLoader(root string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: reading go.mod: %w", err)
	}
	mod := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			mod = strings.TrimSpace(rest)
			break
		}
	}
	if mod == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", root)
	}
	fset, _ := stdImporter()
	return &Loader{fset: fset, root: root, modPath: mod, pkgs: map[string]*Package{}, loading: map[string]bool{}}, nil
}

// NewFixtureLoader returns a loader that resolves import paths as
// directories under root (an analysistest-style testdata/src tree).
func NewFixtureLoader(root string) *Loader {
	fset, _ := stdImporter()
	return &Loader{fset: fset, root: root, pkgs: map[string]*Package{}, loading: map[string]bool{}}
}

// dirFor maps an import path to a source directory handled by this
// loader, or ok=false if the path belongs to the standard library.
func (l *Loader) dirFor(path string) (string, bool) {
	if l.modPath != "" {
		if path == l.modPath {
			return l.root, true
		}
		if rest, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
			return filepath.Join(l.root, filepath.FromSlash(rest)), true
		}
		return "", false
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		return dir, true
	}
	return "", false
}

// Import implements types.Importer so a Loader can be used directly as
// the Importer of a types.Config.
func (l *Loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg.Types, nil
	}
	if dir, ok := l.dirFor(path); ok {
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	_, imp := stdImporter()
	stdMu.Lock()
	defer stdMu.Unlock()
	//lint:ignore lockorder imp is always the srcimporter, never a Loader; the conservative interface dispatch over-approximates here
	return imp.Import(path)
}

// Load parses and type-checks the package with the given import path.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("lint: %s is not under %s", path, l.root)
	}
	return l.load(path, dir)
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Loaded returns every package this loader has type-checked so far —
// requested targets and their in-module (or in-fixture-tree)
// dependencies — sorted by import path. This is the package set a
// whole-program analysis should cover.
func (l *Loader) Loaded() []*Package {
	out := make([]*Package, 0, len(l.pkgs))
	for _, pkg := range l.pkgs {
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// goFilesIn lists the buildable non-test Go files of dir, sorted.
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// LoadModule loads every package of the module, sorted by import path.
// Directories named testdata, vendor, or starting with "." or "_" are
// skipped, matching the go tool's notion of a package tree.
func (l *Loader) LoadModule() ([]*Package, error) {
	if l.modPath == "" {
		return nil, fmt.Errorf("lint: LoadModule requires a module loader")
	}
	var paths []string
	err := filepath.WalkDir(l.root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		files, err := goFilesIn(p)
		if err != nil {
			return err
		}
		if len(files) == 0 {
			return nil
		}
		rel, err := filepath.Rel(l.root, p)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, l.modPath)
		} else {
			paths = append(paths, l.modPath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
