package api

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"mba/internal/model"
)

// Client wraps a Server with response caching, call accounting, a
// configurable retry policy, and an optional hard budget. All
// estimators in internal/core consume this type; Client.Cost() is the
// query cost the paper's experiments plot on their y-axes, and
// Client.Stats() is the full accounting snapshot including retry and
// wait overheads.
//
// Caching reflects what any sane crawler does: results for a user are
// kept locally, so revisiting a node during a random walk costs
// nothing. The paper's "single cache" optimization for ESTIMATE-p
// (§5.2) falls out of this for free.
type Client struct {
	srv *Server
	// Budget is the maximum number of API calls; 0 means unlimited.
	Budget int
	// Policy governs retries, backoff, rate-limit waits, and the
	// optional circuit breaker. NewClient installs DefaultRetryPolicy.
	Policy RetryPolicy

	stats Stats
	// Circuit-breaker state (active when Policy.BreakerThreshold > 0).
	breakerFails int
	breakerOpen  bool
	// jrng draws backoff jitter, deterministic in the server's fault
	// seed so runs replay exactly.
	jrng *rand.Rand

	connCache map[int64][]int64
	tlCache   map[int64]model.Timeline
	privCache map[int64]bool
	// goneCache records users that returned ErrUnknownUser — vanished
	// accounts under churn. Like privCache, the (negative) result is
	// cached so each vanished user is paid for at most once per probe
	// kind; platform vanishing is permanent, so the cache never lies.
	goneCache map[int64]bool
	searches  map[string][]int64
}

// NewClient returns a caching client over srv with the given budget
// (0 = unlimited) and the default retry policy.
func NewClient(srv *Server, budget int) *Client {
	return &Client{
		srv:       srv,
		Budget:    budget,
		Policy:    DefaultRetryPolicy(),
		jrng:      rand.New(rand.NewSource(srv.faults.Seed ^ 0x7e77)),
		connCache: make(map[int64][]int64),
		tlCache:   make(map[int64]model.Timeline),
		privCache: make(map[int64]bool),
		goneCache: make(map[int64]bool),
		searches:  make(map[string][]int64),
	}
}

// Cost returns the number of API calls charged so far.
func (c *Client) Cost() int { return c.stats.Calls }

// Stats returns the full accounting snapshot: charged calls, retry and
// rate-limit counters, circuit-breaker trips, and accrued virtual wait.
func (c *Client) Stats() Stats { return c.stats }

// Remaining returns the remaining budget, or -1 if unlimited.
func (c *Client) Remaining() int {
	if c.Budget <= 0 {
		return -1
	}
	r := c.Budget - c.stats.Calls
	if r < 0 {
		r = 0
	}
	return r
}

// Exhausted reports whether the budget is spent.
func (c *Client) Exhausted() bool { return c.Budget > 0 && c.stats.Calls >= c.Budget }

// ResetCost zeroes the full accounting snapshot — charged calls, retry
// and rate-limit counters, circuit-breaker state, and accrued virtual
// wait — so a harness can charge setup separately. The response caches
// are deliberately retained: a reset changes who pays, not what has
// been learned. Use a fresh Client for cold-cache accounting.
func (c *Client) ResetCost() {
	c.stats = Stats{}
	c.breakerFails = 0
	c.breakerOpen = false
}

// VirtualDuration translates the accumulated accounting into the
// wall-clock time the run would need on the real platform: the charged
// calls under the preset's rate limit (e.g., Twitter's 180 calls per
// 15 minutes) plus all virtual waits the retry policy accrued
// (backoff, rate-limit windows, breaker cooldowns, slow calls).
func (c *Client) VirtualDuration() time.Duration {
	p := c.srv.Preset()
	if p.RateLimitCalls <= 0 {
		return c.stats.Wait
	}
	windows := (c.stats.Calls + p.RateLimitCalls - 1) / p.RateLimitCalls
	return time.Duration(windows)*p.RateLimitWindow + c.stats.Wait
}

// Preset exposes the server's interface parameters.
func (c *Client) Preset() Preset { return c.srv.Preset() }

func (c *Client) charge(n int) error {
	if c.Budget > 0 && c.stats.Calls+n > c.Budget {
		c.stats.Calls = c.Budget
		return ErrBudgetExhausted
	}
	c.stats.Calls += n
	return nil
}

// backoff computes the next transient backoff (doubling, capped,
// jittered) and advances the doubling state.
func (c *Client) backoff(cur *time.Duration) time.Duration {
	p := c.Policy
	b := *cur
	if b <= 0 {
		b = DefaultRetryPolicy().BaseBackoff
	}
	next := 2 * b
	if p.MaxBackoff > 0 && next > p.MaxBackoff {
		next = p.MaxBackoff
	}
	*cur = next
	if p.Jitter > 0 {
		b += time.Duration(c.jrng.Float64() * p.Jitter * float64(b))
	}
	return b
}

// noteFailure records a post-retry logical-call failure with the
// circuit breaker and wraps the error in ErrCircuitOpen when the
// breaker trips.
func (c *Client) noteFailure(err error) error {
	if c.Policy.BreakerThreshold <= 0 {
		return err
	}
	c.breakerFails++
	if c.breakerFails >= c.Policy.BreakerThreshold {
		c.breakerOpen = true
		c.stats.CircuitTrips++
		return fmt.Errorf("%w: %w", ErrCircuitOpen, err)
	}
	return err
}

// withRetry runs fn under the client's RetryPolicy. Transient failures
// are charged (the call consumed a slot) and retried after exponential
// backoff in virtual time; rate-limit rejections are never charged and
// retried after waiting out the window; permanent errors return
// immediately. Post-retry failures feed the circuit breaker.
func (c *Client) withRetry(fn func() (int, error)) error {
	if c.Policy.BreakerThreshold > 0 && c.breakerOpen {
		// Half-open probe: wait out the cooldown in virtual time and
		// let exactly this logical call through. A failure re-trips
		// immediately; a success closes the breaker.
		c.stats.Wait += c.Policy.BreakerCooldown
		c.breakerOpen = false
		c.breakerFails = c.Policy.BreakerThreshold - 1
	}
	backoff := c.Policy.BaseBackoff
	retries := 0
	for {
		cost, err := fn()
		c.stats.Wait += c.srv.drainLatency()
		switch {
		case errors.Is(err, ErrRateLimited):
			// 429: rejected at the gate, no budget burned. Wait out
			// the window in virtual time and try again.
			c.stats.RateLimitHits++
			wait := c.Policy.RateLimitWait
			if wait <= 0 {
				wait = c.srv.preset.RateLimitWindow
			}
			c.stats.Wait += wait
			if retries >= c.Policy.MaxRetries {
				return c.noteFailure(err)
			}
			retries++
		case errors.Is(err, ErrTransient):
			// 5xx (or truncated paging): the attempt consumed a call
			// slot, charge it, then back off and retry.
			if chargeErr := c.charge(cost); chargeErr != nil {
				return chargeErr
			}
			if retries >= c.Policy.MaxRetries {
				return c.noteFailure(err)
			}
			retries++
			c.stats.Retries++
			c.stats.Wait += c.backoff(&backoff)
		default:
			// Success or a permanent error (ErrPrivate, ErrUnknownUser):
			// charge and return.
			if chargeErr := c.charge(cost); chargeErr != nil {
				return chargeErr
			}
			if err == nil {
				c.breakerFails = 0
			}
			return err
		}
	}
}

// Search returns seed users who recently posted the keyword (cached).
func (c *Client) Search(keyword string) ([]int64, error) {
	if hits, ok := c.searches[keyword]; ok {
		return hits, nil
	}
	var hits []int64
	err := c.withRetry(func() (int, error) {
		var cost int
		var err error
		hits, cost, err = c.srv.Search(keyword)
		return cost, err
	})
	if err != nil {
		return nil, err
	}
	c.searches[keyword] = hits
	return hits, nil
}

// Connections returns u's neighbors (cached). Private users return
// ErrPrivate; the (negative) result is cached too, so the probe is
// charged only once.
func (c *Client) Connections(u int64) ([]int64, error) {
	// Positive cache first: a response already paid for stays served
	// even if a *later* probe of another endpoint found the user
	// private or vanished (churn). The negative caches only answer for
	// users we never got data from.
	if ns, ok := c.connCache[u]; ok {
		return ns, nil
	}
	if c.privCache[u] {
		return nil, ErrPrivate
	}
	if c.goneCache[u] {
		return nil, fmt.Errorf("%w: %d (cached)", ErrUnknownUser, u)
	}
	var ns []int64
	err := c.withRetry(func() (int, error) {
		var cost int
		var err error
		ns, cost, err = c.srv.Connections(u)
		return cost, err
	})
	if errors.Is(err, ErrPrivate) {
		c.privCache[u] = true
		return nil, err
	}
	if errors.Is(err, ErrUnknownUser) {
		c.goneCache[u] = true
		return nil, err
	}
	if err != nil {
		return nil, err
	}
	c.connCache[u] = ns
	return ns, nil
}

// Timeline returns u's visible timeline (cached).
func (c *Client) Timeline(u int64) (model.Timeline, error) {
	// Positive cache wins over the negative ones; see Connections.
	if tl, ok := c.tlCache[u]; ok {
		return tl, nil
	}
	if c.privCache[u] {
		return model.Timeline{}, ErrPrivate
	}
	if c.goneCache[u] {
		return model.Timeline{}, fmt.Errorf("%w: %d (cached)", ErrUnknownUser, u)
	}
	var tl model.Timeline
	err := c.withRetry(func() (int, error) {
		var cost int
		var err error
		tl, cost, err = c.srv.Timeline(u)
		return cost, err
	})
	if errors.Is(err, ErrPrivate) {
		c.privCache[u] = true
		return model.Timeline{}, err
	}
	if errors.Is(err, ErrUnknownUser) {
		c.goneCache[u] = true
		return model.Timeline{}, err
	}
	if err != nil {
		return model.Timeline{}, err
	}
	c.tlCache[u] = tl
	return tl, nil
}

// BreakerState is the circuit breaker's persistent state, exported so
// checkpoints can carry it across a resume: a breaker tripped by an
// ongoing outage must stay tripped on the fresh client, otherwise a
// resume silently forgets the outage and burns budget re-probing it.
type BreakerState struct {
	Fails int
	Open  bool
}

// BreakerState snapshots the circuit breaker for checkpointing.
func (c *Client) BreakerState() BreakerState {
	return BreakerState{Fails: c.breakerFails, Open: c.breakerOpen}
}

// RestoreBreaker reinstates a checkpointed circuit-breaker state.
func (c *Client) RestoreBreaker(b BreakerState) {
	c.breakerFails = b.Fails
	c.breakerOpen = b.Open
}

// CachedConnUsers returns the users with cached Connections responses,
// sorted. Auditors use this to re-derive structures from cached data at
// zero cost.
func (c *Client) CachedConnUsers() []int64 {
	out := make([]int64, 0, len(c.connCache))
	for u := range c.connCache {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CachedTimelineUsers returns the users with cached Timeline responses,
// sorted.
func (c *Client) CachedTimelineUsers() []int64 {
	out := make([]int64, 0, len(c.tlCache))
	for u := range c.tlCache {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
