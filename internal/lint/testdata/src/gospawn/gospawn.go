// Fixture for the gospawn analyzer: this package is NOT internal/fleet,
// so every go statement is a violation regardless of joining.
package gospawn

import "sync"

func fireAndForget() {
	go leak() // want "go statement outside internal/fleet"
}

func evenJoinedSpawnsAreConfined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want "go statement outside internal/fleet"
		defer wg.Done()
	}()
	wg.Wait()
}

func noSpawnsNoDiagnostics() {
	var wg sync.WaitGroup
	wg.Wait()
}

func leak() {}
