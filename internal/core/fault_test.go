package core

import (
	"errors"
	"math"
	"testing"
	"time"

	"mba/internal/api"
	"mba/internal/model"
	"mba/internal/query"
)

// faultSession builds a session over a faulty server with the given
// retry policy.
func faultSession(t *testing.T, f api.Faults, pol api.RetryPolicy, budget int) *Session {
	t.Helper()
	p := testPlatform(t)
	client := api.NewClient(api.NewServer(p, api.Twitter(), f), budget)
	client.Policy = pol
	s, err := NewSession(client, query.AvgQuery("privacy", query.Followers), model.Day)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// shallowPolicy is a retry policy guaranteed to be defeated by the
// outage fixture below (retries shallower than the outage length).
func shallowPolicy() api.RetryPolicy {
	p := api.DefaultRetryPolicy()
	p.MaxRetries = 2
	p.Jitter = 0
	return p
}

// outageFaults schedules outages long enough to defeat shallowPolicy:
// the seed search and the first walk steps succeed, then a 60-call
// outage swallows the 2-retry policy and the run must degrade.
func outageFaults(seed int64) api.Faults {
	return api.Faults{OutageMeanGap: 120, OutageLength: 60, Seed: seed}
}

func TestSRWDegradesInsteadOfFailing(t *testing.T) {
	s := faultSession(t, outageFaults(21), shallowPolicy(), 30000)
	res, err := RunSRW(s, SRWOptions{View: LevelView, Seed: 1})
	if err != nil {
		t.Fatalf("mid-walk fault must not surface as an error: %v", err)
	}
	if !res.Degraded {
		t.Fatal("run over an outage-ridden server should be Degraded")
	}
	if !errors.Is(res.DegradedBy, api.ErrTransient) {
		t.Errorf("DegradedBy = %v, want a transient cause", res.DegradedBy)
	}
	// Cost stays truthful: exactly what the client charged.
	if res.Cost != s.Client.Cost() {
		t.Errorf("res.Cost = %d, client charged %d", res.Cost, s.Client.Cost())
	}
	if res.Cost == 0 {
		t.Error("degraded run reported zero cost")
	}
	if res.Stats.Retries == 0 {
		t.Error("no retries recorded before degrading")
	}
	if res.Checkpoint == nil {
		t.Fatal("degraded result carries no checkpoint")
	}
	if res.Checkpoint.SpentCost() != res.Cost {
		t.Errorf("checkpoint spent cost %d != result cost %d",
			res.Checkpoint.SpentCost(), res.Cost)
	}
	if res.Checkpoint.CachedResponses() == 0 {
		t.Error("checkpoint carries no cached responses")
	}
}

func TestSRWResumeDoesNotRepaySpentBudget(t *testing.T) {
	p := testPlatform(t)
	q := query.AvgQuery("privacy", query.Followers)
	truth, err := p.GroundTruth(q)
	if err != nil {
		t.Fatal(err)
	}

	s1 := faultSession(t, outageFaults(22), shallowPolicy(), 30000)
	res1, err := RunSRW(s1, SRWOptions{View: LevelView, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res1.Degraded {
		t.Fatal("fixture did not degrade; outage schedule too sparse")
	}

	// Resume on a healthy server with a FRESH client: only new calls
	// are charged there, while the result's cost stays cumulative.
	client2 := api.NewClient(api.NewServer(p, api.Twitter(), api.Faults{}), 30000-res1.Cost)
	s2, err := NewSession(client2, q, model.Day)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := RunSRW(s2, SRWOptions{View: LevelView, Seed: 1, Resume: res1.Checkpoint})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Degraded {
		t.Errorf("resume on a healthy server still degraded: %v", res2.DegradedBy)
	}
	if res2.Samples <= res1.Samples {
		t.Errorf("resume made no progress: %d -> %d samples", res1.Samples, res2.Samples)
	}
	// Truthful cumulative accounting: segment 1's spend plus segment
	// 2's fresh client, nothing double-charged.
	if res2.Cost != res1.Cost+client2.Cost() {
		t.Errorf("res2.Cost = %d, want %d (prior) + %d (new)",
			res2.Cost, res1.Cost, client2.Cost())
	}
	if res2.Stats.Calls != res2.Cost {
		t.Errorf("Stats.Calls = %d != Cost %d", res2.Stats.Calls, res2.Cost)
	}
	if res2.Checkpoint.Segments() != 2 {
		t.Errorf("segments = %d, want 2", res2.Checkpoint.Segments())
	}
	// The resumed estimate must be usable, not just present.
	rel := math.Abs(res2.Estimate-truth) / truth
	if math.IsNaN(res2.Estimate) || rel > 0.25 {
		t.Errorf("resumed estimate %.1f vs truth %.1f (relerr %.3f)", res2.Estimate, truth, rel)
	}
	// The walk region was replayed from the checkpoint cache: the new
	// client must have paid only for the continuation, not the prefix.
	if client2.Cost() >= res1.Cost {
		t.Logf("note: continuation (%d) outspent the prefix (%d); fine, but check cache import",
			client2.Cost(), res1.Cost)
	}
}

func TestResumeRejectsForeignCheckpoint(t *testing.T) {
	p := testPlatform(t)
	q := query.AvgQuery("privacy", query.Followers)
	s := newSession(t, p, q, 4000)
	res, err := RunSRW(s, SRWOptions{View: LevelView, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Checkpoint.Algo() != "srw" {
		t.Fatalf("Algo() = %q", res.Checkpoint.Algo())
	}
	s2 := newSession(t, p, q, 4000)
	if _, err := RunTARW(s2, TARWOptions{Seed: 1, Resume: res.Checkpoint}); err == nil {
		t.Error("RunTARW accepted an SRW checkpoint")
	}

	rt, err := RunTARW(newSession(t, p, q, 4000), TARWOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSRW(newSession(t, p, q, 4000), SRWOptions{View: LevelView, Seed: 1, Resume: rt.Checkpoint}); err == nil {
		t.Error("RunSRW accepted a TARW checkpoint")
	}
}

func TestTARWDegradeAndResume(t *testing.T) {
	p := testPlatform(t)
	q := query.AvgQuery("privacy", query.Followers)

	s1 := faultSession(t, outageFaults(23), shallowPolicy(), 30000)
	res1, err := RunTARW(s1, TARWOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res1.Degraded {
		t.Fatal("fixture did not degrade")
	}
	if res1.Cost != s1.Client.Cost() {
		t.Errorf("res.Cost = %d, client charged %d", res1.Cost, s1.Client.Cost())
	}
	if res1.Checkpoint == nil || res1.Checkpoint.Algo() != "tarw" {
		t.Fatal("degraded TARW result carries no tarw checkpoint")
	}

	client2 := api.NewClient(api.NewServer(p, api.Twitter(), api.Faults{}), 30000-res1.Cost)
	s2, err := NewSession(client2, q, model.Day)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := RunTARW(s2, TARWOptions{Seed: 2, Resume: res1.Checkpoint})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Degraded {
		t.Errorf("resume on a healthy server still degraded: %v", res2.DegradedBy)
	}
	if res2.Samples <= res1.Samples {
		t.Errorf("resume made no progress: %d -> %d walks", res1.Samples, res2.Samples)
	}
	if res2.Cost != res1.Cost+client2.Cost() {
		t.Errorf("res2.Cost = %d, want %d + %d", res2.Cost, res1.Cost, client2.Cost())
	}
	if math.IsNaN(res2.Estimate) {
		t.Error("resumed TARW produced no estimate")
	}
}

func TestCircuitBreakerDegradesWalk(t *testing.T) {
	// The walk degrades on its first post-retry failure, so within one
	// segment the breaker only trips at threshold 1: the trip itself is
	// then the degrading cause the checkpoint records.
	pol := shallowPolicy()
	pol.BreakerThreshold = 1
	pol.BreakerCooldown = time.Minute
	s := faultSession(t, outageFaults(24), pol, 30000)
	res, err := RunSRW(s, SRWOptions{View: LevelView, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("expected a degraded run")
	}
	if !errors.Is(res.DegradedBy, api.ErrCircuitOpen) {
		t.Errorf("DegradedBy = %v, want ErrCircuitOpen", res.DegradedBy)
	}
	if res.Stats.CircuitTrips == 0 {
		t.Error("no circuit trips recorded")
	}
}

// TestEstimatorsSurviveStorm is the acceptance scenario: every
// estimator, under simultaneous transient, rate-limit, outage, slow
// call, truncation and private-user injection, completes without a
// panic or abort, reports truthful cost, and leaves a resumable
// checkpoint.
func TestEstimatorsSurviveStorm(t *testing.T) {
	storm := api.Faults{
		TransientProb:   0.10,
		RateLimitProb:   0.05,
		OutageMeanGap:   2500,
		OutageLength:    30,
		SlowCallProb:    0.05,
		SlowCallLatency: 2 * time.Second,
		TruncateProb:    0.02,
		PrivateProb:     0.05,
		Seed:            25,
	}
	pol := api.DefaultRetryPolicy()
	pol.BreakerThreshold = 5
	pol.BreakerCooldown = time.Minute

	const budget = 12000
	algos := []struct {
		name string
		run  func(s *Session) (Result, error)
	}{
		{"MA-SRW", func(s *Session) (Result, error) {
			return RunSRW(s, SRWOptions{View: LevelView, Seed: 1})
		}},
		{"MA-TARW", func(s *Session) (Result, error) {
			return RunTARW(s, TARWOptions{Seed: 1})
		}},
		{"M&R", func(s *Session) (Result, error) {
			return RunMR(s, SRWOptions{View: LevelView, Seed: 1})
		}},
	}
	for _, a := range algos {
		t.Run(a.name, func(t *testing.T) {
			s := faultSession(t, storm, pol, budget)
			res, err := a.run(s)
			if err != nil {
				t.Fatalf("storm surfaced an error instead of degrading: %v", err)
			}
			if res.Cost > budget {
				t.Errorf("cost %d exceeds budget %d", res.Cost, budget)
			}
			if res.Cost != s.Client.Cost() {
				t.Errorf("res.Cost = %d, client charged %d", res.Cost, s.Client.Cost())
			}
			if res.Checkpoint == nil {
				t.Error("no checkpoint")
			}
			if res.Stats.Wait <= 0 {
				t.Error("storm accrued no virtual wait")
			}
			t.Logf("%s: cost=%d samples=%d degraded=%v retries=%d 429s=%d trips=%d wait=%v",
				a.name, res.Cost, res.Samples, res.Degraded,
				res.Stats.Retries, res.Stats.RateLimitHits, res.Stats.CircuitTrips, res.Stats.Wait)
		})
	}
}

// TestBudgetExhaustedMidHealDegrades is the budget-exhaustion-mid-heal
// regression: when the budget runs out in the middle of a heal (a
// backtrack scan or reseed probe after churn killed the walk's current
// node), the result must be flagged Degraded — the checkpointed
// position is a dead node, so a resume must repeat the heal — with the
// heal accounting intact and the cause classifying both as mid-heal
// and as ordinary budget exhaustion. The fixture scans budgets under
// vanish-heavy churn with the reseed heal policy (reseed probes charge
// search/timeline calls, so exhaustion can land inside one); the scan
// window brackets a known-hitting budget so walk-implementation drift
// within the window does not break the test.
func TestBudgetExhaustedMidHealDegrades(t *testing.T) {
	for budget := 1900; budget <= 2300; budget++ {
		s := churnSession(t, vanishHeavy(2.0, 11), budget)
		res, err := RunSRW(s, SRWOptions{View: LevelView, Seed: 1, Heal: HealPolicy{Mode: HealReseed}})
		if err != nil {
			t.Fatalf("budget %d: exhaustion surfaced as an error: %v", budget, err)
		}
		if !errors.Is(res.DegradedBy, ErrBudgetMidHeal) {
			continue
		}
		t.Logf("budget %d exhausted mid-heal: heal=%+v cost=%d", budget, res.Heal, res.Cost)
		if !res.Degraded {
			t.Error("mid-heal exhaustion did not set Degraded")
		}
		if !errors.Is(res.DegradedBy, api.ErrBudgetExhausted) {
			t.Errorf("DegradedBy = %v does not wrap api.ErrBudgetExhausted; "+
				"budget-aware resume loops would misclassify it", res.DegradedBy)
		}
		if res.Cost != budget || res.Stats.Calls != res.Cost {
			t.Errorf("accounting broken: cost=%d stats.Calls=%d budget=%d",
				res.Cost, res.Stats.Calls, budget)
		}
		if res.Heal.VanishedUsers == 0 {
			t.Error("heal stats lost: no vanished users recorded despite a mid-heal exhaustion")
		}
		if res.Checkpoint == nil {
			t.Fatal("mid-heal degrade carries no checkpoint")
		}
		if res.Checkpoint.SpentCost() != res.Cost {
			t.Errorf("checkpoint SpentCost=%d != cost %d", res.Checkpoint.SpentCost(), res.Cost)
		}
		return
	}
	t.Fatal("no budget in [1900,2300] exhausted mid-heal; fixture needs retuning")
}
