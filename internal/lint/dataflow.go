package lint

import "go/ast"

// This file is the generic worklist solver the CFG-based analyzers
// share. An analysis supplies a join-semilattice of states (FlowState)
// and a transfer function over statements; the solver iterates to a
// fixpoint in deterministic block order. Forward analyses compute the
// state holding at each block entry, backward analyses the state at
// each block exit. An analysis may additionally implement EdgeRefiner
// to narrow states along branch edges — the path-sensitivity hook
// unlockpath and budgetpath use to learn from `if err != nil` and its
// kin.

// FlowDirection selects how facts propagate over the CFG.
type FlowDirection int

const (
	FlowForward FlowDirection = iota
	FlowBackward
)

// FlowState is one analysis's abstract state at a program point. All
// mutation happens on private copies: the solver only mutates states
// it has Cloned.
type FlowState interface {
	// Clone returns an independent deep copy.
	Clone() FlowState
	// JoinFrom merges src into the receiver (the lattice join),
	// reporting whether the receiver changed. src must not be mutated.
	JoinFrom(src FlowState) bool
}

// FlowAnalysis is one dataflow problem over a CFG.
type FlowAnalysis interface {
	Direction() FlowDirection
	// Boundary is the state at the entry block (forward) or exit block
	// (backward).
	Boundary() FlowState
	// Transfer applies one node's effect, mutating and returning st.
	// For backward analyses the solver feeds a block's nodes in reverse
	// order.
	Transfer(n ast.Node, st FlowState) FlowState
}

// EdgeRefiner is an optional FlowAnalysis extension: RefineEdge narrows
// the state flowing along a CFG edge using the edge's branch condition.
// st is a private copy the refiner may mutate and return. Refinement
// must keep the analysis monotone: only remove or sharpen facts the
// condition contradicts, never invent new ones.
type EdgeRefiner interface {
	RefineEdge(e *Edge, st FlowState) FlowState
}

// FlowSolution holds the converged states: In[b] at block entry and
// Out[b] at block exit. Blocks unreachable in the analysis direction
// have nil states.
type FlowSolution struct {
	In, Out map[*Block]FlowState
}

// SolveDataflow runs the analysis to fixpoint. The worklist is ordered
// by block index so iteration — and therefore any tie-breaking inside
// state maps the analysis keeps — is deterministic across runs.
func SolveDataflow(cfg *CFG, a FlowAnalysis) *FlowSolution {
	sol := &FlowSolution{
		In:  make(map[*Block]FlowState, len(cfg.Blocks)),
		Out: make(map[*Block]FlowState, len(cfg.Blocks)),
	}
	backward := a.Direction() == FlowBackward
	refiner, _ := a.(EdgeRefiner)

	// start/finish are direction-relative: facts enter a block at
	// start-state and leave at finish-state.
	start, finish := sol.In, sol.Out
	boundaryBlock := cfg.Entry
	if backward {
		start, finish = sol.Out, sol.In
		boundaryBlock = cfg.Exit
	}
	start[boundaryBlock] = a.Boundary()

	// apply recomputes a block's finish-state from its start-state.
	apply := func(b *Block) {
		st := start[b].Clone()
		if backward {
			for i := len(b.Nodes) - 1; i >= 0; i-- {
				st = a.Transfer(b.Nodes[i], st)
			}
		} else {
			for _, n := range b.Nodes {
				st = a.Transfer(n, st)
			}
		}
		finish[b] = st
	}

	inEdges := func(b *Block) []*Edge {
		if backward {
			return b.Succs
		}
		return b.Preds
	}
	outEdges := func(b *Block) []*Edge {
		if backward {
			return b.Preds
		}
		return b.Succs
	}
	edgeSource := func(e *Edge) *Block {
		if backward {
			return e.To
		}
		return e.From
	}
	edgeDest := func(e *Edge) *Block {
		if backward {
			return e.From
		}
		return e.To
	}

	// Deterministic worklist: a boolean membership array drained in
	// ascending block-index order, restarting after each sweep until no
	// block is queued.
	queued := make([]bool, len(cfg.Blocks))
	for i := range cfg.Blocks {
		queued[i] = true
	}
	for {
		idx := -1
		for i, q := range queued {
			if q {
				idx = i
				break
			}
		}
		if idx < 0 {
			return sol
		}
		queued[idx] = false
		b := cfg.Blocks[idx]

		// Join the (refined) finish-states of all in-edges into the
		// block's start-state.
		changed := false
		for _, e := range inEdges(b) {
			src := finish[edgeSource(e)]
			if src == nil {
				continue // source not yet reached
			}
			st := src.Clone()
			if refiner != nil && e.Cond != nil {
				st = refiner.RefineEdge(e, st)
			}
			if cur := start[b]; cur == nil {
				start[b] = st
				changed = true
			} else if cur.JoinFrom(st) {
				changed = true
			}
		}
		if start[b] == nil {
			continue // unreachable in this direction
		}
		if finish[b] != nil && !changed {
			continue // already converged for the current start-state
		}
		apply(b)
		for _, e := range outEdges(b) {
			queued[edgeDest(e).Index] = true
		}
	}
}
