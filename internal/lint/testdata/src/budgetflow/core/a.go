// Package core is a budgetflow fixture: interprocedural cost tracking
// through helpers, discarded-error detection, and the degraded-result
// propagation channel.
package core

import "api"

// charged reaches the charged endpoint through one helper layer, so
// only the whole-program summaries can see its cost.
func charged(c *api.Client) error {
	_, err := c.Search("x")
	return err
}

// Caller drops the budget error in each of the ways the analyzer
// distinguishes.
func Caller(c *api.Client) error {
	charged(c)     // want `discards the error of charged`
	_ = charged(c) // want `assigns the error to _ of charged`
	go charged(c)  // want `go statement discards the error of charged`
	return charged(c)
}

// Silent incurs cost but has no channel to report budget exhaustion.
func Silent(c *api.Client) { // want `Silent \(transitively\) makes charged api\.Client calls but has no way to propagate the budget error`
	if err := charged(c); err != nil {
		return
	}
}

// Degraded is the fold-into-result channel (like fleet's UnitResult).
type Degraded struct {
	Estimate   float64
	DegradedBy error
}

// Folded propagates budget exhaustion through the result field: clean.
func Folded(c *api.Client) Degraded {
	var d Degraded
	d.DegradedBy = charged(c)
	return d
}
