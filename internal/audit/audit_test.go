package audit

import (
	"math"
	"strings"
	"testing"

	"mba/internal/api"
	"mba/internal/core"
	"mba/internal/model"
	"mba/internal/platform"
	"mba/internal/query"
)

func auditPlatform(t *testing.T) *platform.Platform {
	t.Helper()
	p, err := platform.New(platform.Config{
		Seed:        99,
		NumUsers:    6000,
		HorizonDays: 120,
		Keywords: []platform.KeywordConfig{
			{Name: "privacy", SeedsPerDay: 4, AffinityFrac: 0.2,
				InterestHigh: 0.8, AdoptProb: 0.3, RepeatMentionMean: 3},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func auditSession(t *testing.T, p *platform.Platform, churn platform.ChurnConfig, budget int) *core.Session {
	t.Helper()
	srv := api.NewServer(p, api.Twitter(), api.Faults{})
	srv.EnableChurn(churn)
	s, err := core.NewSession(api.NewClient(srv, budget), query.AvgQuery("privacy", query.Followers), model.Day)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestAuditGreenPath: both estimators, with and without churn, pass
// every invariant check.
func TestAuditGreenPath(t *testing.T) {
	p := auditPlatform(t)
	const budget = 8000
	a := Auditor{Budget: budget}
	configs := []struct {
		name  string
		churn platform.ChurnConfig
	}{
		{"frozen", platform.ChurnConfig{}},
		{"churning", platform.ChurnConfig{Rate: 0.2, Seed: 5}},
	}
	for _, cfg := range configs {
		t.Run(cfg.name+"/srw", func(t *testing.T) {
			s := auditSession(t, p, cfg.churn, budget)
			res, err := core.RunSRW(s, core.SRWOptions{View: core.LevelView, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			r := a.CheckRun(s, res)
			if !r.OK() {
				t.Fatalf("green-path audit failed: %v", r.Err())
			}
			if r.Checks < 10 {
				t.Errorf("audit ran only %d checks; sampling broken?", r.Checks)
			}
			t.Logf("srw/%s: %d checks, 0 violations", cfg.name, r.Checks)
		})
		t.Run(cfg.name+"/tarw", func(t *testing.T) {
			s := auditSession(t, p, cfg.churn, budget)
			res, err := core.RunTARW(s, core.TARWOptions{Seed: 2})
			if err != nil {
				t.Fatal(err)
			}
			r := a.CheckRun(s, res)
			if !r.OK() {
				t.Fatalf("green-path audit failed: %v", r.Err())
			}
			t.Logf("tarw/%s: %d checks, 0 violations", cfg.name, r.Checks)
		})
	}
}

// TestAuditSeedStability: identical runs audit as seed-stable; a run
// with a different seed is flagged.
func TestAuditSeedStability(t *testing.T) {
	p := auditPlatform(t)
	a := Auditor{}
	run := func(seed int64) core.Result {
		s := auditSession(t, p, platform.ChurnConfig{Rate: 0.2, Seed: 5}, 6000)
		res, err := core.RunSRW(s, core.SRWOptions{View: core.LevelView, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(1), run(1)
	if rep := a.CheckSeedStable(r1, r2); !rep.OK() {
		t.Fatalf("identical runs flagged unstable: %v", rep.Err())
	}
	r3 := run(3)
	if rep := a.CheckSeedStable(r1, r3); rep.OK() {
		t.Error("different-seed runs audited as identical; check is vacuous")
	}
}

// TestAuditCatchesInjectedResultViolations: hand-built results with
// broken accounting must fail, with the right invariant named.
func TestAuditCatchesInjectedResultViolations(t *testing.T) {
	a := Auditor{Budget: 100}

	// A minimal honest-looking result needs a checkpoint; steal one
	// from a tiny real run.
	p := auditPlatform(t)
	s := auditSession(t, p, platform.ChurnConfig{}, 500)
	real, err := core.RunSRW(s, core.SRWOptions{View: core.LevelView, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name      string
		mutate    func(res core.Result) core.Result
		invariant string
	}{
		{"cost-vs-stats", func(res core.Result) core.Result {
			res.Cost++
			return res
		}, "budget-conservation"},
		{"over-budget", func(res core.Result) core.Result {
			res.Cost = 101
			res.Stats.Calls = 101
			return res
		}, "budget-conservation"},
		{"trajectory-regression", func(res core.Result) core.Result {
			res.Trajectory = []core.Point{{Cost: 50, Estimate: 1}, {Cost: 40, Estimate: 1}}
			return res
		}, "budget-conservation"},
		{"infinite-estimate", func(res core.Result) core.Result {
			res.Estimate = math.Inf(1)
			return res
		}, "estimate-sanity"},
		{"negative-heal", func(res core.Result) core.Result {
			res.Heal.Backtracks = -1
			return res
		}, "heal-accounting"},
		{"silent-degrade", func(res core.Result) core.Result {
			res.Degraded = true
			res.DegradedBy = nil
			return res
		}, "degrade-accounting"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			broken := tc.mutate(real)
			// Keep checkpoint consistency out of the way unless it is
			// the point: sync is impossible from outside, so accept
			// either the targeted invariant or checkpoint drift.
			rep := a.CheckResult(broken)
			if rep.OK() {
				t.Fatal("injected violation passed the audit")
			}
			found := false
			for _, v := range rep.Violations {
				if v.Invariant == tc.invariant {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("violations %v name the wrong invariant, want %s", rep.Violations, tc.invariant)
			}
		})
	}
}

// TestAuditCatchesBrokenPMeans: corrupted ESTIMATE-p means fail the
// sanity check with estimate-p-sanity violations.
func TestAuditCatchesBrokenPMeans(t *testing.T) {
	a := Auditor{}
	bad := map[int64]float64{
		1: math.NaN(),
		2: math.Inf(1),
		3: -0.25,
		4: 1e9,
	}
	good := map[int64]float64{5: 0.12, 6: 1.0}
	rep := a.CheckPMeans(bad, good)
	if rep.OK() {
		t.Fatal("corrupted p-means passed the audit")
	}
	if len(rep.Violations) != 4 {
		t.Errorf("got %d violations, want 4: %v", len(rep.Violations), rep.Violations)
	}
	for _, v := range rep.Violations {
		if v.Invariant != "estimate-p-sanity" {
			t.Errorf("unexpected invariant %q", v.Invariant)
		}
		if !strings.Contains(v.Detail, "p-up") {
			t.Errorf("violation lost the map name: %v", v)
		}
	}
	if rep2 := a.CheckPMeans(good, good); !rep2.OK() {
		t.Errorf("sane p-means flagged: %v", rep2.Err())
	}
}

// TestReportErrAndMerge exercises the report plumbing.
func TestReportErrAndMerge(t *testing.T) {
	var r Report
	if r.Err() != nil {
		t.Error("empty report has an error")
	}
	r.check()
	r.failf("x", "boom %d", 7)
	var r2 Report
	r2.check()
	r2.failf("y", "bang")
	r.Merge(&r2)
	if r.Checks != 2 || len(r.Violations) != 2 {
		t.Fatalf("merge lost state: %+v", r)
	}
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "x: boom 7") {
		t.Errorf("Err() = %v, want first violation surfaced", r.Err())
	}
}
