package api

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func mustRegister(t *testing.T, l *Ledger, id, quota int) {
	t.Helper()
	if err := l.Register(id, quota); err != nil {
		t.Fatal(err)
	}
}

func checkConservation(t *testing.T, l *Ledger) {
	t.Helper()
	ls := l.Snapshot()
	if ls.Available+ls.Reserved+ls.Committed != ls.Total {
		t.Fatalf("conservation broken: available %d + reserved %d + committed %d != total %d",
			ls.Available, ls.Reserved, ls.Committed, ls.Total)
	}
	sr, sc := 0, 0
	for _, a := range ls.Accounts {
		sr += a.Reserved
		sc += a.Committed
	}
	if sr != ls.Reserved || sc != ls.Committed {
		t.Fatalf("per-account books (%d,%d) disagree with globals (%d,%d)", sr, sc, ls.Reserved, ls.Committed)
	}
}

func TestLedgerReserveCommitRefund(t *testing.T) {
	l := NewLedger(100)
	mustRegister(t, l, 0, 60)
	mustRegister(t, l, 1, 40)

	got, err := l.Reserve(0, 10)
	if err != nil || got != 10 {
		t.Fatalf("Reserve = (%d,%v), want (10,nil)", got, err)
	}
	checkConservation(t, l)
	if err := l.Commit(0, 7); err != nil {
		t.Fatal(err)
	}
	if err := l.Refund(0, 3); err != nil {
		t.Fatal(err)
	}
	checkConservation(t, l)
	ls := l.Snapshot()
	if ls.Committed != 7 || ls.Reserved != 0 || ls.Available != 93 {
		t.Fatalf("books = %+v, want committed 7, reserved 0, available 93", ls)
	}
	if rem, err := l.Remaining(0); err != nil || rem != 53 {
		t.Fatalf("Remaining(0) = (%d,%v), want (53,nil)", rem, err)
	}
	// Committing more than reserved must fail loudly.
	if err := l.Commit(0, 1); err == nil {
		t.Fatal("Commit beyond reservation succeeded")
	}
}

func TestLedgerFairAdmission(t *testing.T) {
	l := NewLedger(100)
	mustRegister(t, l, 0, 50)
	mustRegister(t, l, 1, 50)

	// A hot account cannot reserve past its quota, no matter how much
	// of the global pool is free.
	got, err := l.Reserve(0, 500)
	if err != nil {
		t.Fatal(err)
	}
	if got != 50 {
		t.Fatalf("Reserve(0, 500) granted %d, want the 50-credit quota", got)
	}
	// The sibling's quota is untouched.
	if got, err := l.Reserve(1, 50); err != nil || got != 50 {
		t.Fatalf("sibling starved: Reserve(1, 50) = (%d,%v)", got, err)
	}
	checkConservation(t, l)
	// Over-registration is rejected up front.
	l2 := NewLedger(10)
	mustRegister(t, l2, 0, 10)
	if err := l2.Register(1, 1); err == nil {
		t.Fatal("registering quotas beyond the total succeeded")
	}
	if err := l2.Register(0, 1); err == nil {
		t.Fatal("duplicate registration succeeded")
	}
}

func TestLedgerConcurrentConservation(t *testing.T) {
	const accounts, perAccount = 8, 1000
	l := NewLedger(accounts * perAccount)
	for i := 0; i < accounts; i++ {
		mustRegister(t, l, i, perAccount)
	}
	var wg sync.WaitGroup
	for i := 0; i < accounts; i++ {
		wg.Add(1)
		// lint:ignore gospawn test exercises the arbiter under real contention
		go func(id int) {
			defer wg.Done()
			for k := 0; k < 200; k++ {
				n, err := l.Reserve(id, 5)
				if err != nil {
					t.Error(err)
					return
				}
				commit := n / 2
				if err := l.Commit(id, commit); err != nil {
					t.Error(err)
					return
				}
				if err := l.Refund(id, n-commit); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	checkConservation(t, l)
	ls := l.Snapshot()
	if ls.Reserved != 0 {
		t.Fatalf("%d credits leaked into reservations", ls.Reserved)
	}
	if ls.Committed != accounts*200*2 {
		t.Fatalf("committed %d, want %d", ls.Committed, accounts*200*2)
	}
}

func TestClientLedgerCommitsExactlyCharged(t *testing.T) {
	p := testPlatform(t)
	srv := NewServer(p, Twitter(), Faults{})
	l := NewLedger(200)
	mustRegister(t, l, 0, 120)
	mustRegister(t, l, 1, 80)

	c := NewClient(srv, 0)
	if err := c.UseLedger(l, 0); err != nil {
		t.Fatal(err)
	}
	// Spend until the quota runs out.
	hits, err := c.Search("privacy")
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range hits {
		if _, err := c.Connections(u); errors.Is(err, ErrBudgetExhausted) {
			break
		}
		if _, err := c.Timeline(u); errors.Is(err, ErrBudgetExhausted) {
			break
		}
	}
	c.ReleaseLedger()
	ls := l.Snapshot()
	if ls.Committed != c.Cost() {
		t.Fatalf("ledger committed %d but client charged %d", ls.Committed, c.Cost())
	}
	if ls.Reserved != 0 {
		t.Fatalf("%d credits left reserved after ReleaseLedger", ls.Reserved)
	}
	if ls.Accounts[0].Committed != c.Cost() {
		t.Fatalf("account 0 committed %d, want %d", ls.Accounts[0].Committed, c.Cost())
	}
	// The sibling quota is untouched and still admissible.
	c2 := NewClient(srv, 0)
	if err := c2.UseLedger(l, 1); err != nil {
		t.Fatal(err)
	}
	if c2.Budget != 80 {
		t.Fatalf("sibling client budget %d, want its full 80-credit quota", c2.Budget)
	}
	checkConservation(t, l)
}

func TestClientContextCancellation(t *testing.T) {
	p := testPlatform(t)
	c := NewClient(NewServer(p, Twitter(), Faults{}), 1000)
	ctx, cancel := context.WithCancel(context.Background())
	c.WithContext(ctx)
	if _, err := c.Search("privacy"); err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := c.Connections(1); !errors.Is(err, ErrCanceled) {
		t.Fatalf("call after cancel returned %v, want ErrCanceled", err)
	}
	// Cost accounting stays truthful: the canceled call charged nothing.
	if c.Cost() == 0 {
		t.Fatal("search charged nothing")
	}
}

func TestClientVirtualDeadline(t *testing.T) {
	p := testPlatform(t)
	c := NewClient(NewServer(p, Twitter(), Faults{}), 100000)
	c.Deadline = 20 * time.Minute // Twitter window is 15m per 180 calls
	var lastErr error
	for i := 0; i < 1000; i++ {
		if _, err := c.Timeline(int64(i + 1)); err != nil {
			lastErr = err
			break
		}
	}
	if !errors.Is(lastErr, ErrDeadlineExceeded) {
		t.Fatalf("deadline never fired: %v (virtual %v)", lastErr, c.VirtualDuration())
	}
	if c.VirtualDuration() <= c.Deadline {
		t.Fatalf("deadline fired early: virtual %v <= deadline %v", c.VirtualDuration(), c.Deadline)
	}
}

func TestStallWatchdogTripsAndResets(t *testing.T) {
	p := testPlatform(t)
	// Every call is rate-limited: the client accrues virtual wait
	// without ever charging, exactly the no-budget-progress stall the
	// watchdog exists for.
	srv := NewServer(p, Twitter(), Faults{RateLimitProb: 1, Seed: 3})
	c := NewClient(srv, 1000)
	pol := DefaultRetryPolicy()
	pol.StallWait = time.Minute
	c.Policy = pol

	_, err := c.Connections(1)
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("wedged call returned %v, want ErrStalled", err)
	}
	st := c.Stats()
	if st.StallTrips != 1 {
		t.Fatalf("StallTrips = %d, want 1", st.StallTrips)
	}
	if st.Calls != 0 {
		t.Fatalf("stalled call charged %d calls", st.Calls)
	}
	// The trip reset the stall clock: the next call gets a full
	// StallWait of patience again rather than failing instantly.
	_, err = c.Connections(2)
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("second wedged call returned %v, want ErrStalled", err)
	}
	if got := c.Stats().StallTrips; got != 2 {
		t.Fatalf("StallTrips = %d, want 2", got)
	}

	// A healthy server resets the stall clock on every charged call:
	// no trips, however long the run.
	c2 := NewClient(NewServer(p, Twitter(), Faults{}), 1000)
	c2.Policy = pol
	for i := int64(1); i <= 50; i++ {
		if _, err := c2.Timeline(i); err != nil {
			t.Fatal(err)
		}
	}
	if got := c2.Stats().StallTrips; got != 0 {
		t.Fatalf("healthy client tripped the watchdog %d times", got)
	}
}

func TestClientConcurrentUse(t *testing.T) {
	p := testPlatform(t)
	srv := NewServer(p, Twitter(), Faults{})
	c := NewClient(srv, 100000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		// lint:ignore gospawn test exercises the documented concurrency contract
		go func(g int) {
			defer wg.Done()
			for i := int64(0); i < 50; i++ {
				u := int64(g)*50 + i + 1
				if _, err := c.Connections(u); err != nil && !errors.Is(err, ErrUnknownUser) {
					t.Errorf("Connections(%d): %v", u, err)
					return
				}
				if _, err := c.Timeline(u); err != nil && !errors.Is(err, ErrUnknownUser) {
					t.Errorf("Timeline(%d): %v", u, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Cost() != c.Stats().Calls {
		t.Fatalf("Cost %d != Stats.Calls %d after concurrent use", c.Cost(), c.Stats().Calls)
	}
}
