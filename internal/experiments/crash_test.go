package experiments

import (
	"math"
	"testing"

	"mba/internal/workload"
)

// TestCrashSweepInvariants smoke-runs the full crash-recovery sweep at
// test scale: every scenario must recover a bit-identical estimate,
// and the save-aligned clean scenarios must repay zero calls. The
// in-sweep auditor already enforces the full law set — a violation
// surfaces as the returned error.
func TestCrashSweepInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("crash sweep replays every scenario several times")
	}
	tab, records, err := CrashSweep(Options{Scale: workload.Test, Trials: 1, Budget: 6000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(crashScenarios()); len(records) != want || len(tab.Rows) != want {
		t.Fatalf("%d records, %d rows, want %d scenarios", len(records), len(tab.Rows), want)
	}
	zeroRepaidSeen, damageSeen := false, false
	for _, r := range records {
		if !r.Identical {
			t.Errorf("%s: recovered estimate not bit-identical", r.Scenario)
		}
		if len(r.Points) == 0 || len(r.Recovery.Trials) == 0 {
			t.Errorf("%s: no crashes actually executed", r.Scenario)
		}
		repaid := 0
		for _, tr := range r.Recovery.Trials {
			repaid += tr.Repaid
		}
		if r.ZeroRepaid {
			zeroRepaidSeen = true
			if repaid != 0 {
				t.Errorf("%s: save-aligned clean scenario repaid %d calls", r.Scenario, repaid)
			}
		}
		if r.Recovery.FaultsInjected > 0 {
			damageSeen = true
			if r.Recovery.LossEvents != r.Recovery.FaultsInjected {
				t.Errorf("%s: %d faults but %d loss events", r.Scenario,
					r.Recovery.FaultsInjected, r.Recovery.LossEvents)
			}
		}
		if math.IsNaN(r.Recovery.Final.Estimate) {
			t.Errorf("%s: recovered run produced no estimate", r.Scenario)
		}
	}
	if !zeroRepaidSeen || !damageSeen {
		t.Errorf("sweep lost coverage: zeroRepaid=%v damage=%v", zeroRepaidSeen, damageSeen)
	}
}
