// Package api is a fixture standing in for mba/internal/api: the
// analyzers match the Server/Client types by package and type name.
package api

// Timeline mirrors the real response shape loosely.
type Timeline struct {
	Posts int
}

// Server is the raw platform interface; calling it directly records no
// cost.
type Server struct{}

func (s *Server) Search(keyword string) ([]int64, int, error) { return nil, 0, nil }
func (s *Server) Connections(u int64) ([]int64, int, error)   { return nil, 0, nil }
func (s *Server) Timeline(u int64) (Timeline, int, error)     { return Timeline{}, 0, nil }
func (s *Server) Preset() int                                 { return 0 }

// Client is the charged accounting path.
type Client struct {
	srv *Server
}

func (c *Client) Search(keyword string) ([]int64, error) { return nil, nil }
func (c *Client) Connections(u int64) ([]int64, error)   { return nil, nil }
func (c *Client) Timeline(u int64) (Timeline, error)     { return Timeline{}, nil }
func (c *Client) Cost() int                              { return 0 }

// Ledger mirrors the shared fleet admission ledger (the real shape:
// Reserve grants an admitted amount, which must be settled by Commit,
// Refund, or Release).
type Ledger struct{}

func (l *Ledger) Reserve(id, n int) (int, error) { return n, nil }
func (l *Ledger) Commit(id, n int) error         { return nil }
func (l *Ledger) Refund(id, n int) error         { return nil }
func (l *Ledger) Release(id int) int             { return 0 }

// NewClient mirrors the real constructor fleet walkers use.
func NewClient(srv *Server, budget int) *Client { return &Client{srv: srv} }

// UseLedger binds a client to the shared ledger.
func (c *Client) UseLedger(l *Ledger, unit int) {}
