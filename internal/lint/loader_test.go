package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mba/internal/lint"
)

// writeTree materializes a file map under a temp dir.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, content := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestLoaderMissingGoMod(t *testing.T) {
	if _, err := lint.NewModuleLoader(t.TempDir()); err == nil {
		t.Fatal("NewModuleLoader on an empty dir should fail")
	}
}

func TestLoaderNoModuleDirective(t *testing.T) {
	root := writeTree(t, map[string]string{"go.mod": "go 1.22\n"})
	if _, err := lint.NewModuleLoader(root); err == nil || !strings.Contains(err.Error(), "module directive") {
		t.Fatalf("want a module-directive error, got %v", err)
	}
}

func TestLoaderUnparseableFile(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":   "module broken\n\ngo 1.22\n",
		"bad/a.go": "package bad\n\nfunc }{ nope\n",
		"ok/ok.go": "package ok\n",
	})
	loader, err := lint.NewModuleLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loader.Load("broken/bad"); err == nil {
		t.Fatal("loading a package with a syntax error should fail")
	}
	// The parse failure of one package must not poison others.
	if _, err := loader.Load("broken/ok"); err != nil {
		t.Fatalf("sibling package should still load: %v", err)
	}
}

func TestLoaderTypeCheckFailure(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":   "module broken\n\ngo 1.22\n",
		"bad/a.go": "package bad\n\nfunc f() int { return undefinedIdent }\n",
	})
	loader, err := lint.NewModuleLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	_, err = loader.Load("broken/bad")
	if err == nil || !strings.Contains(err.Error(), "type-checking") {
		t.Fatalf("want a type-checking error, got %v", err)
	}
}

func TestLoaderMissingPackage(t *testing.T) {
	root := writeTree(t, map[string]string{"go.mod": "module broken\n\ngo 1.22\n"})
	loader, err := lint.NewModuleLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loader.Load("broken/nope"); err == nil {
		t.Fatal("loading a nonexistent package should fail")
	}
	if _, err := loader.Load("othermodule/pkg"); err == nil {
		t.Fatal("loading a path outside the module should fail")
	}
}

func TestLoaderEmptyPackageDir(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":           "module broken\n\ngo 1.22\n",
		"empty/a_test.go":  "package empty\n",
		"empty/.hidden.go": "package empty\n",
	})
	loader, err := lint.NewModuleLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	_, err = loader.Load("broken/empty")
	if err == nil || !strings.Contains(err.Error(), "no non-test Go files") {
		t.Fatalf("want a no-files error, got %v", err)
	}
}

func TestLoaderLoadedCoversDependencies(t *testing.T) {
	loader := lint.NewFixtureLoader(filepath.Join("testdata", "src"))
	if _, err := loader.Load("ctxflow/core"); err != nil {
		t.Fatal(err)
	}
	paths := map[string]bool{}
	for _, pkg := range loader.Loaded() {
		paths[pkg.Path] = true
	}
	if !paths["ctxflow/core"] || !paths["api"] {
		t.Fatalf("Loaded() = %v, want the target and its fixture dependency api", paths)
	}
}
