package core

import (
	"math/rand"
	"testing"

	"mba/internal/api"
	"mba/internal/levelgraph"
	"mba/internal/model"
	"mba/internal/query"
)

func TestPilotSampleVisitsTermNodes(t *testing.T) {
	p := testPlatform(t)
	s := newSession(t, p, query.CountQuery("privacy"), 0)
	seeds, err := s.Seeds()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	visited, err := s.pilotSample(seeds, 2, 40, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(visited) < 10 {
		t.Fatalf("pilot visited only %d nodes", len(visited))
	}
	seen := make(map[int64]bool)
	for _, u := range visited {
		if seen[u] {
			t.Fatal("pilot sample contains duplicates")
		}
		seen[u] = true
		ok, err := s.Qualified(u)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("pilot visited unqualified node %d", u)
		}
	}
}

func TestBucketStatsRespondsToInterval(t *testing.T) {
	p := testPlatform(t)
	s := newSession(t, p, query.CountQuery("privacy"), 0)
	seeds, _ := s.Seeds()
	rng := rand.New(rand.NewSource(2))
	visited, err := s.pilotSample(seeds, 2, 40, rng)
	if err != nil {
		t.Fatal(err)
	}
	s.SetInterval(model.Day)
	hDay, _, err := s.bucketStats(visited)
	if err != nil {
		t.Fatal(err)
	}
	s.SetInterval(model.Month)
	hMonth, _, err := s.bucketStats(visited)
	if err != nil {
		t.Fatal(err)
	}
	if hMonth >= hDay {
		t.Errorf("coarser interval should shrink h: day=%d month=%d", hDay, hMonth)
	}
	// Re-bucketing costs nothing: the data is cached.
	cost := s.Client.Cost()
	s.SetInterval(model.Week)
	if _, _, err := s.bucketStats(visited); err != nil {
		t.Fatal(err)
	}
	if s.Client.Cost() != cost {
		t.Error("bucketStats issued API calls")
	}
}

func TestSelectIntervalDepthCap(t *testing.T) {
	p := testPlatform(t)
	s := newSession(t, p, query.CountQuery("privacy"), 0)
	// With a tiny depth cap only the coarsest candidates qualify.
	best, pilots, err := SelectIntervalOpts(s, IntervalSelection{MaxDepth: 12}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pilots) != len(levelgraph.CandidateIntervals()) {
		t.Fatalf("pilot results = %d", len(pilots))
	}
	for _, pr := range pilots {
		if pr.Interval == best && pr.H > 12 {
			t.Errorf("selected interval %v has depth %d > cap", best, pr.H)
		}
	}
}

func TestSelectIntervalFallbackWhenNothingAdmissible(t *testing.T) {
	p := testPlatform(t)
	s := newSession(t, p, query.CountQuery("privacy"), 0)
	// Depth cap 1 excludes everything; the fallback picks the
	// shallowest candidate rather than failing.
	best, pilots, err := SelectIntervalOpts(s, IntervalSelection{MaxDepth: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if best <= 0 {
		t.Fatal("no interval selected")
	}
	minH := pilots[0].H
	for _, pr := range pilots {
		if pr.H < minH {
			minH = pr.H
		}
	}
	for _, pr := range pilots {
		if pr.Interval == best && pr.H != minH {
			t.Errorf("fallback should pick the shallowest candidate (h=%d), got h=%d", minH, pr.H)
		}
	}
}

func TestSelectIntervalChargesOnePilotPhase(t *testing.T) {
	p := testPlatform(t)
	srv := api.NewServer(p, api.Twitter(), api.Faults{})
	s, _ := NewSession(api.NewClient(srv, 0), query.CountQuery("privacy"), model.Day)
	_, _, err := SelectInterval(s, nil, 50, 5)
	if err != nil {
		t.Fatal(err)
	}
	afterFirst := s.Client.Cost()
	// A second selection re-uses the cached sample region heavily.
	_, _, err = SelectInterval(s, nil, 50, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Client.Cost() > afterFirst*2 {
		t.Errorf("second selection too expensive: %d -> %d", afterFirst, s.Client.Cost())
	}
	if afterFirst == 0 {
		t.Error("pilot phase should cost something")
	}
	t.Logf("pilot phase cost: %d calls", afterFirst)
}

func TestAdjacentOraclesSubsetDirectional(t *testing.T) {
	p := testPlatform(t)
	s := newSession(t, p, query.CountQuery("privacy"), 0)
	seeds, _ := s.Seeds()
	checked := 0
	for _, u := range seeds.Hits {
		upAdj, err := s.UpAdjacent(u)
		if err != nil {
			t.Fatal(err)
		}
		upAll, err := s.UpNeighbors(u)
		if err != nil {
			t.Fatal(err)
		}
		if len(upAdj) > len(upAll) {
			t.Fatal("adjacent ups exceed all ups")
		}
		myLvl, _ := s.Level(u)
		for _, v := range upAdj {
			if lvl, _ := s.Level(v); lvl != myLvl-1 {
				t.Fatalf("UpAdjacent returned node at level %d (mine %d)", lvl, myLvl)
			}
		}
		downAdj, err := s.DownAdjacent(u)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range downAdj {
			if lvl, _ := s.Level(v); lvl != myLvl+1 {
				t.Fatalf("DownAdjacent returned node at level %d (mine %d)", lvl, myLvl)
			}
		}
		checked++
		if checked >= 10 {
			break
		}
	}
}
