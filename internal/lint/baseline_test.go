package lint_test

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mba/internal/lint"
)

func diag(analyzer, file string, line int, msg string) lint.Diagnostic {
	return lint.Diagnostic{
		Analyzer: analyzer,
		Pos:      token.Position{Filename: file, Line: line, Column: 1},
		Message:  msg,
	}
}

func fileOf(d lint.Diagnostic) string { return d.Pos.Filename }

func TestBaselineAggregation(t *testing.T) {
	b := lint.NewBaseline([]lint.Diagnostic{
		diag("ctxflow", "a.go", 10, "m1"),
		diag("ctxflow", "a.go", 20, "m1"), // same class, different line
		diag("errsentinel", "b.go", 5, "m2"),
	}, fileOf)
	if len(b.Entries) != 2 {
		t.Fatalf("got %d entries, want 2: %v", len(b.Entries), b.Entries)
	}
	if b.Entries[0].Count != 2 || b.Entries[0].Analyzer != "ctxflow" {
		t.Errorf("first entry = %+v, want ctxflow count 2", b.Entries[0])
	}
}

func TestBaselineApply(t *testing.T) {
	b := lint.NewBaseline([]lint.Diagnostic{
		diag("ctxflow", "a.go", 10, "m1"),
		diag("ctxflow", "a.go", 20, "m1"),
		diag("errsentinel", "b.go", 5, "m2"),
	}, fileOf)

	// Same findings: nothing new, nothing stale.
	kept, stale := b.Apply([]lint.Diagnostic{
		diag("ctxflow", "a.go", 11, "m1"), // lines may drift freely
		diag("ctxflow", "a.go", 21, "m1"),
		diag("errsentinel", "b.go", 6, "m2"),
	}, fileOf)
	if len(kept) != 0 || len(stale) != 0 {
		t.Fatalf("identical findings: kept=%v stale=%v, want none", kept, stale)
	}

	// A new finding class escapes the baseline; a fixed one goes stale.
	kept, stale = b.Apply([]lint.Diagnostic{
		diag("ctxflow", "a.go", 10, "m1"),
		diag("ctxflow", "a.go", 20, "m1"),
		diag("lockorder", "c.go", 1, "m3"),
	}, fileOf)
	if len(kept) != 1 || kept[0].Analyzer != "lockorder" {
		t.Fatalf("kept = %v, want the one lockorder finding", kept)
	}
	if len(stale) != 1 || stale[0].Analyzer != "errsentinel" || stale[0].Count != 1 {
		t.Fatalf("stale = %v, want the errsentinel entry", stale)
	}

	// Count ratchet: a third instance of an accepted class is new.
	kept, _ = b.Apply([]lint.Diagnostic{
		diag("ctxflow", "a.go", 10, "m1"),
		diag("ctxflow", "a.go", 20, "m1"),
		diag("ctxflow", "a.go", 30, "m1"),
	}, fileOf)
	if len(kept) != 1 {
		t.Fatalf("kept = %v, want exactly the over-budget instance", kept)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	b := lint.NewBaseline([]lint.Diagnostic{diag("ctxflow", "a.go", 1, "m")}, fileOf)
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := lint.LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != 1 || got.Entries[0] != b.Entries[0] {
		t.Fatalf("round trip = %+v, want %+v", got.Entries, b.Entries)
	}
}

// TestBaselineStaleVersionRejected: a baseline written before the
// points-to analyzers joined the suite (v1) must be regenerated, not
// silently accepted as covering the larger suite.
func TestBaselineStaleVersionRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte(`{"version": 1, "entries": []}`), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := lint.LoadBaseline(path); err == nil {
		t.Fatal("v1 baseline loaded without error; want a version mismatch")
	} else if !strings.Contains(err.Error(), "version 1") {
		t.Fatalf("error %v does not name the stale version", err)
	}
}

func TestBaselineMissingFileIsEmpty(t *testing.T) {
	b, err := lint.LoadBaseline(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Entries) != 0 {
		t.Fatalf("missing baseline should be empty, got %v", b.Entries)
	}
	kept, stale := b.Apply([]lint.Diagnostic{diag("x", "a.go", 1, "m")}, fileOf)
	if len(kept) != 1 || len(stale) != 0 {
		t.Fatalf("empty baseline must pass everything through: kept=%v stale=%v", kept, stale)
	}
}
