// Alias-sharpened cases: taint that flows through a pointer must land
// on (and be read from) the pointee variable the points-to analysis
// says it aliases.
package dettaint

import (
	"fmt"
	"sort"
)

// storeThroughAlias writes the nondet-ordered slice through *p; the
// points-to layer knows p aliases keys, so reading keys afterward is
// still tainted.
func storeThroughAlias(m map[string]int) {
	var keys []string
	p := &keys
	var tmp []string
	for k := range m {
		tmp = append(tmp, k)
	}
	*p = tmp
	fmt.Println(keys) // want `value ordered by map iteration order at b\.go:\d+ reaches fmt\.Println`
}

// readThroughAlias taints keys directly and reads it back through a
// pointer dereference; the StarExpr read folds in the aliased
// variable's taint.
func readThroughAlias(m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	p := &keys
	fmt.Println(*p) // want `value ordered by map iteration order at b\.go:\d+ reaches fmt\.Println`
}

// sortAfterAliasStore cleans the pointee after the aliased store, so
// the publish is deterministic.
func sortAfterAliasStore(m map[string]int) {
	var keys []string
	p := &keys
	var tmp []string
	for k := range m {
		tmp = append(tmp, k)
	}
	*p = tmp
	sort.Strings(keys)
	fmt.Println(keys)
}
