package lint_test

import (
	"path/filepath"
	"testing"

	"mba/internal/lint"
	"mba/internal/lint/linttest"
)

func TestNoRawRand(t *testing.T) {
	linttest.Run(t, "testdata", lint.NoRawRand, "norawrand")
}

func TestBudgetSafe(t *testing.T) {
	linttest.Run(t, "testdata", lint.BudgetSafe, "core", "audit", "outofscope")
}

func TestNoWallClock(t *testing.T) {
	linttest.Run(t, "testdata", lint.NoWallClock, "nowallclock", "apiclock")
}

func TestCheckedCost(t *testing.T) {
	linttest.Run(t, "testdata", lint.CheckedCost, "checkedcost")
}

func TestDetRange(t *testing.T) {
	linttest.Run(t, "testdata", lint.DetRange, "detrange")
}

func TestFloatSum(t *testing.T) {
	linttest.Run(t, "testdata", lint.FloatSum, "stats", "outofscope")
}

func TestGoSpawn(t *testing.T) {
	linttest.Run(t, "testdata", lint.GoSpawn, "gospawn", "gospawn/fleet")
}

// TestSuiteCleanOnRepo runs the entire mba-lint suite over this module
// and requires zero diagnostics, making `go test` itself enforce the
// determinism/accounting/virtual-time invariants the analyzers encode.
func TestSuiteCleanOnRepo(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := lint.NewModuleLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; module discovery looks broken", len(pkgs))
	}
	diags, err := lint.RunAll(lint.All(), pkgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

func TestByName(t *testing.T) {
	for _, a := range lint.All() {
		if got := lint.ByName(a.Name); got != a {
			t.Errorf("ByName(%q) = %v, want %v", a.Name, got, a)
		}
	}
	if got := lint.ByName("nope"); got != nil {
		t.Errorf("ByName(nope) = %v, want nil", got)
	}
}
