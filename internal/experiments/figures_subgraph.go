package experiments

import (
	"fmt"
	"hash/fnv"

	"mba/internal/api"
	"mba/internal/core"
	"mba/internal/levelgraph"
	"mba/internal/model"
	"mba/internal/platform"
	"mba/internal/query"
	"mba/internal/workload"
)

// Figure2 reproduces Figure 2: query cost versus relative error for
// AVG(followers) of users who mentioned `privacy`, comparing simple
// random walks over the full social graph, the term-induced subgraph,
// and the level-by-level subgraph.
func Figure2(opts Options) (Table, error) {
	return subgraphComparison(opts, "figure2",
		"AVG(followers), privacy: SRW over social vs term-induced vs level-by-level",
		query.AvgQuery("privacy", query.Followers))
}

// Figure3 reproduces Figure 3: the same subgraph comparison for
// COUNT(users who mentioned privacy); COUNT forces the walks to pair
// with mark-and-recapture size estimation.
func Figure3(opts Options) (Table, error) {
	opts = opts.withDefaults()
	opts.Budget *= 2 // COUNT needs mark-and-recapture collisions
	return subgraphComparison(opts, "figure3",
		"COUNT(users), privacy: SRW over social vs term-induced vs level-by-level",
		query.CountQuery("privacy"))
}

func subgraphComparison(opts Options, id, title string, q query.Query) (Table, error) {
	opts = opts.withDefaults()
	p, err := workload.Get(opts.Scale)
	if err != nil {
		return Table{}, err
	}
	truth, err := p.GroundTruth(q)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      id,
		Title:   title,
		Columns: []string{"RelErr", "SocialGraph", "TermInduced", "LevelByLevel"},
	}
	curves := make(map[Algo][]int)
	for _, algo := range []Algo{SRWSocial, SRWTerm, MASRW} {
		opts.logf("%s: %s", id, algo)
		costs, err := costCurve(p, runSpec{algo: algo, q: q, interval: opts.Interval, budget: opts.Budget}, truth, opts)
		if err != nil {
			return Table{}, err
		}
		curves[algo] = costs
	}
	for i, e := range opts.Errors {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", e),
			fmtCost(curves[SRWSocial][i]),
			fmtCost(curves[SRWTerm][i]),
			fmtCost(curves[MASRW][i]),
		})
	}
	return t, nil
}

// Figure4 reproduces Figure 4: the query cost to reach 5% relative
// error on AVG(followers) as a growing fraction of intra-level edges
// is removed from the term-induced subgraph, for three keywords.
func Figure4(opts Options) (Table, error) {
	opts = opts.withDefaults()
	p, err := workload.Get(opts.Scale)
	if err != nil {
		return Table{}, err
	}
	fracs := []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}
	keywords := []string{"privacy", "boston", "new york"}
	t := Table{
		ID:      "figure4",
		Title:   "Query cost (5% error, AVG(followers)) vs fraction of intra-level edges removed",
		Columns: append([]string{"FracRemoved"}, keywords...),
	}
	target := Options{
		Scale:    opts.Scale,
		Seed:     opts.Seed,
		Trials:   opts.Trials,
		Budget:   opts.Budget,
		Errors:   []float64{0.05},
		Interval: opts.Interval,
		Log:      opts.Log,
	}
	cols := make([][]string, len(fracs))
	for i := range cols {
		cols[i] = []string{fmt.Sprintf("%.1f", fracs[i])}
	}
	for _, kw := range keywords {
		q := query.AvgQuery(kw, query.Followers)
		truth, err := p.GroundTruth(q)
		if err != nil {
			return Table{}, err
		}
		for i, frac := range fracs {
			opts.logf("figure4: %s frac=%.1f", kw, frac)
			spec := runSpec{
				algo:     MASRW,
				q:        q,
				interval: opts.Interval,
				budget:   opts.Budget,
				graph:    partialLevelOracle(frac, opts.Interval, opts.Seed),
			}
			costs, err := costCurve(p, spec, truth, target)
			if err != nil {
				return Table{}, err
			}
			cols[i] = append(cols[i], fmtCost(costs[0]))
		}
	}
	t.Rows = cols
	return t, nil
}

// partialLevelOracle builds a neighbor oracle over the term-induced
// subgraph with only removeFrac of the intra-level edges removed
// (chosen by a stable per-edge hash, so both endpoints agree).
func partialLevelOracle(removeFrac float64, interval model.Tick, salt int64) func(s *core.Session) func(u int64) ([]int64, error) {
	return func(s *core.Session) func(u int64) ([]int64, error) {
		return func(u int64) ([]int64, error) {
			ns, err := s.TermNeighbors(u)
			if err != nil {
				return nil, err
			}
			myLvl, err := s.Level(u)
			if err != nil {
				return nil, nil
			}
			var out []int64
			for _, v := range ns {
				lvl, err := s.Level(v)
				if err != nil {
					return nil, err
				}
				if lvl != myLvl || edgeHash(u, v, salt) >= removeFrac {
					out = append(out, v)
				}
			}
			return out, nil
		}
	}
}

// edgeHash maps an undirected edge to a stable value in [0,1).
func edgeHash(u, v, salt int64) float64 {
	if u > v {
		u, v = v, u
	}
	h := fnv.New64a()
	var buf [24]byte
	for i, x := range []int64{u, v, salt} {
		for b := 0; b < 8; b++ {
			buf[i*8+b] = byte(uint64(x) >> (8 * b))
		}
	}
	h.Write(buf[:])
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// Figure5 reproduces Figure 5: for each keyword, the pilot-walk
// statistics and selection score of every candidate interval T
// (2H…1M), alongside the measured query cost for MA-SRW at that T to
// reach 5% error — the consistency between ranking and measured cost
// is the figure's claim.
func Figure5(opts Options) (Table, error) {
	opts = opts.withDefaults()
	p, err := workload.Get(opts.Scale)
	if err != nil {
		return Table{}, err
	}
	keywords := []string{"privacy", "boston", "new york"}
	t := Table{
		ID:      "figure5",
		Title:   "Impact of time interval T on query cost (10% error, AVG(followers))",
		Columns: []string{"Keyword", "T", "pilot h", "pilot d", "score", "cost@10%"},
	}
	// A 10% target keeps the measured costs away from both the cheap
	// floor and the budget ceiling, so the ordering is legible.
	target := opts
	target.Errors = []float64{0.10}
	for _, kw := range keywords {
		q := query.AvgQuery(kw, query.Followers)
		truth, err := p.GroundTruth(q)
		if err != nil {
			return Table{}, err
		}
		// One pilot pass reports the per-candidate statistics.
		pilots, err := pilotStats(p, q, opts)
		if err != nil {
			return Table{}, err
		}
		for _, pr := range pilots {
			opts.logf("figure5: %s T=%s", kw, levelgraph.IntervalName(pr.Interval))
			costs, err := costCurve(p, runSpec{algo: MASRW, q: q, interval: pr.Interval, budget: opts.Budget}, truth, target)
			if err != nil {
				return Table{}, err
			}
			t.Rows = append(t.Rows, []string{
				kw,
				levelgraph.IntervalName(pr.Interval),
				fmt.Sprintf("%d", pr.H),
				fmt.Sprintf("%.2f", pr.D),
				fmt.Sprintf("%.2f", pr.Score),
				fmtCost(costs[0]),
			})
		}
	}
	return t, nil
}

// pilotStats runs the §4.2.3 pilot walks once and returns the
// per-candidate measurements.
func pilotStats(p *platform.Platform, q query.Query, opts Options) ([]core.PilotResult, error) {
	srv := api.NewServer(p, api.Twitter(), api.Faults{})
	s, err := core.NewSession(api.NewClient(srv, 0), q, opts.Interval)
	if err != nil {
		return nil, err
	}
	_, pilots, err := core.SelectInterval(s, nil, 50, opts.Seed)
	return pilots, err
}
