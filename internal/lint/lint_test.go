package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"mba/internal/lint"
	"mba/internal/lint/linttest"
)

func TestNoRawRand(t *testing.T) {
	linttest.Run(t, "testdata", lint.NoRawRand, "norawrand")
}

func TestBudgetSafe(t *testing.T) {
	linttest.Run(t, "testdata", lint.BudgetSafe, "core", "audit", "outofscope")
}

func TestNoWallClock(t *testing.T) {
	linttest.Run(t, "testdata", lint.NoWallClock, "nowallclock", "apiclock")
}

func TestCheckedCost(t *testing.T) {
	linttest.Run(t, "testdata", lint.CheckedCost, "checkedcost")
}

func TestDetRange(t *testing.T) {
	linttest.Run(t, "testdata", lint.DetRange, "detrange")
}

func TestFloatSum(t *testing.T) {
	linttest.Run(t, "testdata", lint.FloatSum, "stats", "outofscope")
}

func TestGoSpawn(t *testing.T) {
	linttest.Run(t, "testdata", lint.GoSpawn, "gospawn", "gospawn/fleet", "gospawn/serve")
}

func TestCtxFlow(t *testing.T) {
	linttest.Run(t, "testdata", lint.CtxFlow, "ctxflow/core")
}

func TestErrSentinel(t *testing.T) {
	linttest.Run(t, "testdata", lint.ErrSentinel, "errsentinel", "ignorescope")
}

func TestLockOrder(t *testing.T) {
	linttest.Run(t, "testdata", lint.LockOrder, "lockorder")
}

func TestBudgetFlow(t *testing.T) {
	linttest.Run(t, "testdata", lint.BudgetFlow, "budgetflow/core", "budgetflow/fleet")
}

func TestDetTaint(t *testing.T) {
	linttest.Run(t, "testdata", lint.DetTaint, "dettaint")
}

func TestUnlockPath(t *testing.T) {
	linttest.Run(t, "testdata", lint.UnlockPath, "unlockpath")
}

func TestBudgetPath(t *testing.T) {
	linttest.Run(t, "testdata", lint.BudgetPath, "budgetpath")
}

func TestSharedGuard(t *testing.T) {
	linttest.Run(t, "testdata", lint.SharedGuard, "sharedguard")
}

func TestChanLife(t *testing.T) {
	linttest.Run(t, "testdata", lint.ChanLife, "chanlife")
}

// TestLintDirective checks rejection of malformed lint:ignore
// directives directly (the diagnostics land on the directive lines
// themselves, where a `// want` comment cannot sit).
func TestLintDirective(t *testing.T) {
	loader := lint.NewFixtureLoader(filepath.Join("testdata", "src"))
	pkg, err := loader.Load("lintdirective")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunAnalyzer(lint.LintDirective, pkg, lint.NewProgram(loader.Loaded()))
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
	if want := "missing reason"; !strings.Contains(diags[0].Message, want) {
		t.Errorf("first diagnostic %q does not mention %q", diags[0].Message, want)
	}
	if want := "does not precede a statement"; !strings.Contains(diags[1].Message, want) {
		t.Errorf("second diagnostic %q does not mention %q", diags[1].Message, want)
	}
}

// TestSuiteCleanOnRepo runs the entire mba-lint suite over this module
// and requires zero diagnostics, making `go test` itself enforce the
// determinism/accounting/virtual-time invariants the analyzers encode.
// Since All() includes the dataflow analyzers, this is also the gate
// that keeps dettaint at zero unsuppressed findings on the fleet merge
// path, every Lock matched by an Unlock on all paths, and every ledger
// reservation settled on all paths — any new //lint:ignore needs a
// written reason or lintdirective flags it here too.
func TestSuiteCleanOnRepo(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := lint.NewModuleLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; module discovery looks broken", len(pkgs))
	}
	diags, err := lint.RunAll(lint.All(), pkgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}

	// The committed baseline must carry no debt for the interprocedural
	// analyzers: they shipped clean, and the ratchet keeps them clean.
	base, err := lint.LoadBaseline(filepath.Join(root, ".mba-lint-baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range base.Entries {
		switch e.Analyzer {
		case "budgetflow", "budgetpath", "chanlife", "ctxflow", "dettaint", "errsentinel", "lockorder", "sharedguard", "unlockpath":
			t.Errorf("committed baseline carries %s debt: %+v", e.Analyzer, e)
		}
	}
}

func TestByName(t *testing.T) {
	for _, a := range lint.All() {
		if got := lint.ByName(a.Name); got != a {
			t.Errorf("ByName(%q) = %v, want %v", a.Name, got, a)
		}
	}
	if got := lint.ByName("nope"); got != nil {
		t.Errorf("ByName(nope) = %v, want nil", got)
	}
}
