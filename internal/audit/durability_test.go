package audit

import (
	"testing"

	"mba/internal/api"
	"mba/internal/core"
	"mba/internal/store"
)

// durableFixture is a self-consistent crash-recovery outcome: two
// save-aligned clean crashes, zero repaid calls, no storage faults.
func durableFixture() (core.Result, store.Recovery) {
	base := core.Result{Estimate: 42.5, Cost: 3000, Samples: 120, Stats: api.Stats{Calls: 3000}}
	rec := store.Recovery{
		Final:    base,
		Restarts: 2,
		Saves:    10,
		Trials: []store.Trial{
			{CrashClock: 1000, SavedClock: 1000, ResumeClock: 1000, Repaid: 0},
			{CrashClock: 2000, SavedClock: 2000, ResumeClock: 2000, Repaid: 0},
		},
	}
	return base, rec
}

func TestCheckDurabilityClean(t *testing.T) {
	base, rec := durableFixture()
	rep := Auditor{Budget: 3000}.CheckDurability(base, rec, true)
	if !rep.OK() {
		t.Fatalf("consistent recovery flagged: %v", rep.Violations)
	}
	if rep.Checks < 10 {
		t.Errorf("only %d checks ran", rep.Checks)
	}
}

func TestCheckDurabilityCatches(t *testing.T) {
	cases := []struct {
		name      string
		invariant string
		mutate    func(base *core.Result, rec *store.Recovery)
	}{
		{"estimate drift", "durability-bit-identity", func(base *core.Result, rec *store.Recovery) {
			rec.Final.Estimate += 1e-9
		}},
		{"cost drift", "durability-bit-identity", func(base *core.Result, rec *store.Recovery) {
			rec.Final.Cost--
		}},
		{"repaid mis-sum", "recovery-accounting", func(base *core.Result, rec *store.Recovery) {
			rec.Trials[0].Repaid = 5
		}},
		{"restart trial mismatch", "recovery-accounting", func(base *core.Result, rec *store.Recovery) {
			rec.Restarts = 3
		}},
		{"clock ordering", "recovery-accounting", func(base *core.Result, rec *store.Recovery) {
			rec.Trials[0].SavedClock = 900 // saved below resume
		}},
		{"repaid despite alignment", "zero-repaid", func(base *core.Result, rec *store.Recovery) {
			// A legal-but-lossy trial: resumed an autosave early.
			rec.Trials[1] = store.Trial{CrashClock: 2000, SavedClock: 2000, ResumeClock: 2000, Repaid: 0}
			rec.Trials[0] = store.Trial{CrashClock: 1000, SavedClock: 1000, ResumeClock: 900, Repaid: 100}
			rec.LossEvents = 1
		}},
		{"scratch restart without faults", "fault-free-lossless", func(base *core.Result, rec *store.Recovery) {
			rec.ScratchRestarts = 1
		}},
		{"fault without loss event", "fault-attribution", func(base *core.Result, rec *store.Recovery) {
			rec.FaultsInjected = 1
		}},
		{"fallback without corrupt slot", "fault-attribution", func(base *core.Result, rec *store.Recovery) {
			rec.FaultsInjected = 1
			rec.LossEvents = 1
			rec.Trials[0] = store.Trial{CrashClock: 1000, SavedClock: 1000, ResumeClock: 900, Repaid: 100}
			rec.Fallbacks = 1 // claims a checksum fallback, but CorruptSlots is 0
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base, rec := durableFixture()
			tc.mutate(&base, &rec)
			rep := Auditor{Budget: 3000}.CheckDurability(base, rec, true)
			if rep.OK() {
				t.Fatalf("tampered recovery (%s) passed the audit", tc.name)
			}
			found := false
			for _, v := range rep.Violations {
				if v.Invariant == tc.invariant {
					found = true
				}
			}
			if !found {
				t.Errorf("no %q violation; got %v", tc.invariant, rep.Violations)
			}
		})
	}
	// The zero-repaid law is only asserted when requested: the same
	// lossy-but-legal recovery passes with zeroRepaid=false once its
	// loss traces to an injected fault.
	base, rec := durableFixture()
	rec.Trials[0] = store.Trial{CrashClock: 1000, SavedClock: 1000, ResumeClock: 900, Repaid: 100, Damage: store.DamageBitFlip}
	rec.LossEvents = 1
	rec.FaultsInjected = 1
	rec.CorruptSlots = 1
	rec.Fallbacks = 1
	rep := Auditor{Budget: 3000}.CheckDurability(base, rec, false)
	if !rep.OK() {
		t.Errorf("fault-attributed lossy recovery flagged without zeroRepaid: %v", rep.Violations)
	}
	if rep2 := (Auditor{Budget: 3000}).CheckDurability(base, rec, true); rep2.OK() {
		t.Error("repaid calls slipped past zeroRepaid=true")
	}
}
