// Command mba-gen generates a synthetic microblog platform and prints
// its structural statistics: social-graph shape (degrees, clustering,
// modularity), per-keyword cascade statistics (adopters, recall, edge
// taxonomy), and the exact ground truths of the standard aggregates —
// useful for judging simulation fidelity before running experiments.
//
// Usage:
//
//	mba-gen [-scale test|bench|large | -users N] [-seed N] [-keyword K]
package main

import (
	"flag"
	"fmt"
	"os"

	"mba/internal/graph"
	"mba/internal/levelgraph"
	"mba/internal/model"
	"mba/internal/platform"
	"mba/internal/query"
	"mba/internal/workload"
)

func main() {
	scale := flag.String("scale", "", "use a workload scale: test, bench, or large")
	users := flag.Int("users", 20000, "platform size (ignored with -scale)")
	seed := flag.Int64("seed", 1, "generation seed (ignored with -scale)")
	keyword := flag.String("keyword", "", "detail one keyword (default: summary of all)")
	saveTo := flag.String("save", "", "write the generated platform snapshot to a file")
	loadFrom := flag.String("load", "", "load a platform snapshot instead of generating")
	flag.Parse()

	var p *platform.Platform
	var err error
	if *loadFrom != "" {
		f, ferr := os.Open(*loadFrom)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "mba-gen:", ferr)
			os.Exit(1)
		}
		p, err = platform.Load(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "mba-gen:", err)
			os.Exit(1)
		}
	}
	switch {
	case p != nil:
		// loaded from snapshot
	default:
		switch *scale {
		case "":
			cfg := platform.DefaultConfig()
			cfg.NumUsers = *users
			cfg.Seed = *seed
			p, err = platform.New(cfg)
		case "test":
			p, err = workload.Get(workload.Test)
		case "bench":
			p, err = workload.Get(workload.Bench)
		case "large":
			p, err = workload.Get(workload.Large)
		default:
			err = fmt.Errorf("unknown scale %q", *scale)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mba-gen:", err)
		os.Exit(1)
	}
	if *saveTo != "" {
		f, ferr := os.Create(*saveTo)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "mba-gen:", ferr)
			os.Exit(1)
		}
		if err := p.Save(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "mba-gen:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "mba-gen:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "snapshot written to %s\n", *saveTo)
	}

	printSocialStats(p)
	if *keyword != "" {
		printKeywordDetail(p, *keyword)
		return
	}
	fmt.Println("\nKeyword cascades:")
	fmt.Printf("  %-16s %9s %7s %7s %7s %8s\n", "keyword", "adopters", "recall", "%intra", "%cross", "avg-deg")
	for _, kc := range p.Config().Keywords {
		sub, err := p.TermSubgraph(kc.Name)
		if err != nil {
			continue
		}
		casc := p.Cascade(kc.Name)
		recall := 0.0
		if sub.NumNodes() > 0 {
			recall = float64(len(sub.LargestComponent())) / float64(sub.NumNodes())
		}
		st := levelgraph.Analyze(sub, casc.First, model.Day)
		fmt.Printf("  %-16s %9d %6.0f%% %6.0f%% %6.0f%% %8.1f\n",
			kc.Name, sub.NumNodes(), 100*recall, 100*st.IntraFrac(), 100*st.CrossFrac(), sub.AvgDegree())
	}
}

func printSocialStats(p *platform.Platform) {
	g := p.Social
	fmt.Printf("Platform: %d users, %d social edges (avg degree %.1f)\n",
		g.NumNodes(), g.NumEdges(), g.AvgDegree())
	labels := make(map[int64]int, p.NumUsers())
	for i, u := range p.Users {
		labels[int64(i)] = u.Community
	}
	fmt.Printf("Communities: %d planted, modularity %.3f\n",
		p.Config().NumCommunities, g.Modularity(labels))
	fmt.Printf("Connected components: %d\n", len(g.Components()))
	fmt.Printf("Clustering (sampled): %.3f\n", sampledClustering(g, 2000))
}

// sampledClustering estimates the mean local clustering coefficient
// from a deterministic sample of nodes.
func sampledClustering(g *graph.Graph, sample int) float64 {
	nodes := g.Nodes()
	if len(nodes) == 0 {
		return 0
	}
	step := len(nodes)/sample + 1
	var sum float64
	var n int
	for i := 0; i < len(nodes); i += step {
		u := nodes[i]
		ns := g.Neighbors(u)
		d := len(ns)
		if d < 2 {
			continue
		}
		links := 0
		for a := 0; a < d; a++ {
			for b := a + 1; b < d; b++ {
				if g.HasEdge(ns[a], ns[b]) {
					links++
				}
			}
		}
		sum += 2 * float64(links) / float64(d*(d-1))
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func printKeywordDetail(p *platform.Platform, kw string) {
	sub, err := p.TermSubgraph(kw)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mba-gen:", err)
		os.Exit(1)
	}
	casc := p.Cascade(kw)
	fmt.Printf("\nKeyword %q: %d adopters, %d subgraph edges\n", kw, sub.NumNodes(), sub.NumEdges())
	for _, q := range []query.Query{
		query.CountQuery(kw),
		query.AvgQuery(kw, query.Followers),
		query.AvgQuery(kw, query.DisplayNameLength),
		query.SumQuery(kw, query.KeywordPostCount),
	} {
		truth, err := p.GroundTruth(q)
		if err != nil {
			continue
		}
		fmt.Printf("  %-70s = %.2f\n", q.String(), truth)
	}
	fmt.Println("\n  Edge taxonomy per interval:")
	fmt.Printf("  %-4s %7s %7s %7s %7s\n", "T", "levels", "%intra", "%adj", "%cross")
	for _, ti := range levelgraph.CandidateIntervals() {
		st := levelgraph.Analyze(sub, casc.First, ti)
		tot := float64(st.Edges)
		if tot == 0 {
			continue
		}
		fmt.Printf("  %-4s %7d %6.0f%% %6.0f%% %6.0f%%\n",
			levelgraph.IntervalName(ti), st.Levels,
			100*st.IntraFrac(), 100*float64(st.AdjEdges)/tot, 100*st.CrossFrac())
	}
}
