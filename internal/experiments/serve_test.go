package experiments

import (
	"encoding/json"
	"reflect"
	"testing"

	"mba/internal/workload"
)

// TestServeSweep: the service sweep runs clean at test scale — every
// tier audits with zero violations — the overload tier sheds without
// collapsing, and the whole record set is byte-deterministic across
// fresh runs (the bench artifact contract).
func TestServeSweep(t *testing.T) {
	opts := Options{Scale: workload.Test, Budget: 40000, Seed: 1}
	tab, recs, err := ServeSweep(opts)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if len(tab.Rows) != len(recs) || len(recs) != 4 {
		t.Fatalf("got %d rows / %d records, want 4", len(tab.Rows), len(recs))
	}
	var overload *ServeRecord
	for i := range recs {
		r := &recs[i]
		if !r.AuditOK {
			t.Errorf("tier %s failed its audit", r.Tier)
		}
		if r.Tier == "overload" {
			overload = r
		}
		if r.TotalCharged > opts.Budget+opts.Budget/2+opts.Budget/4 {
			t.Errorf("tier %s charged %d beyond the provisioned quotas", r.Tier, r.TotalCharged)
		}
		if r.P99SojournNs > r.SojournBound {
			t.Errorf("tier %s p99 sojourn %d beyond bound %d", r.Tier, r.P99SojournNs, r.SojournBound)
		}
	}
	if overload == nil {
		t.Fatal("no overload tier")
	}
	if overload.Shed == 0 || overload.Degraded == 0 || overload.Ok == 0 {
		t.Errorf("overload tier did not shed-without-collapsing: %+v", overload)
	}

	// Byte determinism: a second sweep from a fresh service must
	// produce the identical artifact.
	_, recs2, err := ServeSweep(opts)
	if err != nil {
		t.Fatalf("second sweep: %v", err)
	}
	a, _ := json.Marshal(recs)
	b, _ := json.Marshal(recs2)
	if string(a) != string(b) {
		t.Fatalf("sweep records not deterministic:\n%s\n%s", a, b)
	}
	if !reflect.DeepEqual(recs, recs2) {
		t.Fatal("sweep records differ structurally")
	}
}
