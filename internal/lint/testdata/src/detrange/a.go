package detrange

import (
	"fmt"
	"io"
	"sort"
)

func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to keys inside map iteration"
	}
	return keys
}

func appendThenSort(m map[string]int) []string {
	// The canonical fix: collect, sort, use.
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func appendThenSortSlice(m map[int64]float64) []int64 {
	var ids []int64
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func keyedAppend(m map[string][]int) map[string][]int {
	out := make(map[string][]int, len(m))
	for k, vs := range m {
		out[k] = append(out[k], vs...) // keyed store: order cannot leak
	}
	return out
}

func emitDuringIteration(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s,%d\n", k, v) // want "fmt.Fprintf inside map iteration emits lines in nondeterministic order"
	}
}

func floatReduction(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want "float accumulation under map iteration is order-dependent"
	}
	return total
}

func intReduction(m map[string]int) int {
	// Integer addition is associative; order cannot change the result.
	var total int
	for _, v := range m {
		total += v
	}
	return total
}

func callbackEscape(m map[int64][]int64, fn func(u, v int64) bool) {
	for u, ns := range m {
		for _, v := range ns {
			if !fn(u, v) { // want "calling callback fn inside map iteration exports the nondeterministic order"
				return
			}
		}
	}
}

func sliceRangeIsFine(xs []string, w io.Writer) {
	for _, x := range xs {
		fmt.Fprintln(w, x)
	}
}
