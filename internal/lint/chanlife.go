package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ChanLife checks channel and WaitGroup lifecycle discipline on every
// CFG path:
//
//   - a channel is closed at most once (double close panics);
//   - no send can follow a close of the same channel (send on closed
//     channel panics);
//   - WaitGroup.Add happens before the go statement whose goroutine
//     calls Done on the same group (Add after go races the Wait);
//   - a spawned function that calls Done reaches it on every non-panic
//     exit path (a missed Done deadlocks the Wait forever).
//
// Channels are named by their access path rooted at a variable
// (tk.done, s.flights[…]); reassigning the root or a path prefix kills
// the close fact, so `for { tk := next(); …; close(tk.done) }` is one
// close per channel value, not a double close. Closes hidden behind
// helper calls are conservatively treated as keeping the channel open
// (a documented miss, never a false positive).
var ChanLife = &Analyzer{
	Name: "chanlife",
	Doc: "channels close at most once with no send after close; " +
		"WaitGroup Add dominates the go statement and Done is reached " +
		"on all non-panic paths",
	Run: runChanLife,
}

// chanCloseVal records the first close of one channel path.
type chanCloseVal struct {
	pos token.Pos
}

// chanState is the forward may-closed state: path key → first close.
type chanState struct {
	closed map[string]chanCloseVal
	// added is the must-Added set of WaitGroup roots (join =
	// intersection), keyed like channels.
	added map[string]bool
}

func newChanState() *chanState {
	return &chanState{closed: map[string]chanCloseVal{}, added: map[string]bool{}}
}

func (s *chanState) Clone() FlowState {
	c := newChanState()
	for k, v := range s.closed {
		c.closed[k] = v
	}
	for k := range s.added {
		c.added[k] = true
	}
	return c
}

func (s *chanState) JoinFrom(src FlowState) bool {
	o := src.(*chanState)
	changed := false
	// closed is a MAY property: union, keep earliest witness.
	for k, ov := range o.closed {
		cur, ok := s.closed[k]
		if !ok || (ov.pos != token.NoPos && ov.pos < cur.pos) {
			s.closed[k] = ov
			changed = true
		}
	}
	// added is a MUST property: intersect.
	for k := range s.added {
		if !o.added[k] {
			delete(s.added, k)
			changed = true
		}
	}
	return changed
}

// chanCtx is the per-function analysis context.
type chanCtx struct {
	prog *Program
	fn   *Func
	pkg  *Package
	// events collects reports during replay (nil while solving).
	events *[]chanEvent
}

type chanEvent struct {
	pos token.Pos
	msg string
}

func (cc *chanCtx) Direction() FlowDirection { return FlowForward }
func (cc *chanCtx) Boundary() FlowState      { return newChanState() }

func (cc *chanCtx) Transfer(n ast.Node, f FlowState) FlowState {
	st := f.(*chanState)
	cc.transferNode(n, st)
	return st
}

func (cc *chanCtx) emit(pos token.Pos, format string, args ...interface{}) {
	if cc.events != nil {
		*cc.events = append(*cc.events, chanEvent{pos: pos, msg: fmt.Sprintf(format, args...)})
	}
}

// pathKey canonicalizes a channel/WaitGroup access path rooted at a
// variable; "" when the expression has no stable name.
func (cc *chanCtx) pathKey(e ast.Expr) string {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		obj := cc.pkg.Info.ObjectOf(x)
		if obj == nil {
			return ""
		}
		return fmt.Sprintf("v%d/%s", obj.Pos(), obj.Name())
	case *ast.SelectorExpr:
		if s, ok := cc.pkg.Info.Selections[x]; !ok || s.Kind() != types.FieldVal {
			// Qualified package var.
			if obj, ok := cc.pkg.Info.Uses[x.Sel].(*types.Var); ok {
				return fmt.Sprintf("v%d/%s", obj.Pos(), obj.Name())
			}
			return ""
		}
		base := cc.pathKey(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.IndexExpr:
		base := cc.pathKey(x.X)
		if base == "" {
			return ""
		}
		return base + "[]"
	case *ast.StarExpr:
		return cc.pathKey(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return cc.pathKey(x.X)
		}
	}
	return ""
}

// killPath removes close/added facts for a reassigned path and all its
// descendants.
func killPath(st *chanState, key string) {
	if key == "" {
		return
	}
	for k := range st.closed {
		if k == key || pathHasPrefix(k, key) {
			delete(st.closed, k)
		}
	}
	for k := range st.added {
		if k == key || pathHasPrefix(k, key) {
			delete(st.added, k)
		}
	}
}

func pathHasPrefix(k, prefix string) bool {
	if len(k) <= len(prefix) || k[:len(prefix)] != prefix {
		return false
	}
	switch k[len(prefix)] {
	case '.', '[':
		return true
	}
	return false
}

func (cc *chanCtx) transferNode(n ast.Node, st *chanState) {
	switch x := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range x.Lhs {
			killPath(st, cc.pathKey(lhs))
		}
		for _, rhs := range x.Rhs {
			cc.scanExpr(rhs, st)
		}
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						killPath(st, cc.pathKey(name))
					}
					for _, v := range vs.Values {
						cc.scanExpr(v, st)
					}
				}
			}
		}
	case *ast.RangeStmt:
		killPath(st, cc.pathKey(x.Key))
		killPath(st, cc.pathKey(x.Value))
		cc.scanExpr(x.X, st)
	case *ast.SendStmt:
		key := cc.pathKey(x.Chan)
		if key != "" {
			if cv, ok := st.closed[key]; ok {
				cc.emit(x.Pos(), "send on %s which may already be closed (close at %s)",
					renderChan(cc.pkg, x.Chan), cc.prog.Fset.Position(cv.pos))
			}
		}
		cc.scanExpr(x.Value, st)
	case *ast.GoStmt:
		cc.checkGoStmt(x, st)
	case *ast.DeferStmt:
		// A deferred close runs once at exit; model it as a close at
		// the defer site (a second close on any path is still fatal).
		cc.oneCall(x.Call, st)
	case *ast.ExprStmt:
		cc.scanExpr(x.X, st)
	case ast.Expr:
		cc.scanExpr(x, st)
	case ast.Stmt:
		ast.Inspect(x, func(m ast.Node) bool {
			switch y := m.(type) {
			case *ast.FuncLit, *ast.GoStmt:
				return false
			case *ast.CallExpr:
				cc.oneCall(y, st)
			}
			return true
		})
	}
}

// scanExpr applies close/Add effects of calls inside an expression.
func (cc *chanCtx) scanExpr(e ast.Expr, st *chanState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(m ast.Node) bool {
		switch y := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			cc.oneCall(y, st)
		}
		return true
	})
}

func (cc *chanCtx) oneCall(call *ast.CallExpr, st *chanState) {
	if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" && len(call.Args) == 1 {
		if _, isBuiltin := cc.pkg.Info.ObjectOf(id).(*types.Builtin); isBuiltin {
			key := cc.pathKey(call.Args[0])
			if key == "" {
				return
			}
			if cv, ok := st.closed[key]; ok {
				cc.emit(call.Pos(), "%s may be closed twice on this path (first close at %s)",
					renderChan(cc.pkg, call.Args[0]), cc.prog.Fset.Position(cv.pos))
				return
			}
			st.closed[key] = chanCloseVal{pos: call.Pos()}
			return
		}
	}
	if isWaitGroupMethod(cc.pkg.Info, call, "Add") {
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			if key := cc.pathKey(sel.X); key != "" {
				st.added[key] = true
			}
		}
	}
}

// checkGoStmt enforces Add-dominates-go for every WaitGroup the
// spawned function Dones.
func (cc *chanCtx) checkGoStmt(g *ast.GoStmt, st *chanState) {
	// Operands of the go call still evaluate here.
	for _, a := range g.Call.Args {
		cc.scanExpr(a, st)
	}
	lit, ok := unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	for _, wg := range cc.doneGroups(lit) {
		if !st.added[wg.key] {
			cc.emit(g.Pos(), "WaitGroup.Add for %s must happen before this go statement (the spawned goroutine calls Done); Add after go races Wait",
				wg.name)
		}
	}
}

// doneGroup is one WaitGroup a spawned closure calls Done on.
type doneGroup struct {
	key  string
	name string
}

// doneGroups lists the WaitGroups lit's body calls Done on (directly
// or deferred), keyed as the spawner sees them (captured variables
// share the types.Object, so the keys line up).
func (cc *chanCtx) doneGroups(lit *ast.FuncLit) []doneGroup {
	seen := map[string]bool{}
	var out []doneGroup
	ast.Inspect(lit.Body, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok || !isWaitGroupMethod(cc.pkg.Info, call, "Done") {
			return true
		}
		sel := unparen(call.Fun).(*ast.SelectorExpr)
		key := cc.pathKey(sel.X)
		if key == "" || seen[key] {
			return true
		}
		seen[key] = true
		out = append(out, doneGroup{key: key, name: renderChan(cc.pkg, sel.X)})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// renderChan prints an expression for diagnostics.
func renderChan(pkg *Package, e ast.Expr) string {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return renderChan(pkg, x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return renderChan(pkg, x.X) + "[...]"
	case *ast.StarExpr:
		return "*" + renderChan(pkg, x.X)
	case *ast.UnaryExpr:
		return renderChan(pkg, x.X)
	}
	return "channel"
}

// ── must-Done analysis for spawned goroutine bodies ────────────────

// doneState: WaitGroup key → Done guaranteed (directly or deferred).
type doneState struct {
	done map[string]bool
}

func (s *doneState) Clone() FlowState {
	c := &doneState{done: make(map[string]bool, len(s.done))}
	for k := range s.done {
		c.done[k] = true
	}
	return c
}

func (s *doneState) JoinFrom(src FlowState) bool {
	o := src.(*doneState)
	changed := false
	for k := range s.done {
		if !o.done[k] {
			delete(s.done, k)
			changed = true
		}
	}
	return changed
}

type doneCtx struct {
	pkg *Package
}

func (dc *doneCtx) Direction() FlowDirection { return FlowForward }
func (dc *doneCtx) Boundary() FlowState      { return &doneState{done: map[string]bool{}} }

func (dc *doneCtx) Transfer(n ast.Node, f FlowState) FlowState {
	st := f.(*doneState)
	ast.Inspect(n, func(m ast.Node) bool {
		switch y := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			dc.markDone(y.Call, st)
			return false
		case *ast.CallExpr:
			dc.markDone(y, st)
		}
		return true
	})
	return st
}

func (dc *doneCtx) markDone(call *ast.CallExpr, st *doneState) {
	if !isWaitGroupMethod(dc.pkg.Info, call, "Done") {
		return
	}
	sel := unparen(call.Fun).(*ast.SelectorExpr)
	cc := &chanCtx{pkg: dc.pkg}
	if key := cc.pathKey(sel.X); key != "" {
		st.done[key] = true
	}
}

func runChanLife(pass *Pass) error {
	prog := pass.Prog
	if prog == nil || prog.escape == nil {
		return nil
	}
	for _, f := range prog.Funcs {
		if f.Pkg.Types != pass.Pkg || f.Body == nil {
			continue
		}
		cc := &chanCtx{prog: prog, fn: f, pkg: f.Pkg}
		cfg := prog.CFGOf(f)
		sol := SolveDataflow(cfg, cc)
		var events []chanEvent
		cc.events = &events
		for _, b := range cfg.Blocks {
			in := sol.In[b]
			if in == nil {
				continue
			}
			st := in.Clone().(*chanState)
			for _, n := range b.Nodes {
				cc.transferNode(n, st)
			}
		}
		cc.events = nil
		reported := map[string]bool{}
		for _, ev := range events {
			k := fmt.Sprintf("%d\x00%s", ev.pos, ev.msg)
			if reported[k] {
				continue
			}
			reported[k] = true
			pass.Reportf(ev.pos, "%s", ev.msg)
		}

		checkDoneAllPaths(pass, prog, f)
	}
	return nil
}

// checkDoneAllPaths verifies that a go-spawned closure that calls
// WaitGroup.Done reaches it on every non-panic exit path.
func checkDoneAllPaths(pass *Pass, prog *Program, f *Func) {
	if f.Lit == nil {
		return
	}
	spawned := false
	for _, s := range prog.escape.sites {
		for _, g := range s.callees {
			if g == f {
				spawned = true
				break
			}
		}
	}
	if !spawned {
		return
	}
	cc := &chanCtx{prog: prog, pkg: f.Pkg}
	groups := cc.doneGroups(f.Lit)
	if len(groups) == 0 {
		return
	}
	cfg := prog.CFGOf(f)
	if cfg == nil {
		return
	}
	sol := SolveDataflow(cfg, &doneCtx{pkg: f.Pkg})
	reported := map[string]bool{}
	for _, e := range cfg.Exit.Preds {
		if e.Panic {
			continue // Done via defer covers panics; plain misses there are unreachable-in-practice
		}
		out := sol.Out[e.From]
		if out == nil {
			continue
		}
		st := out.(*doneState)
		for _, wg := range groups {
			if st.done[wg.key] || reported[wg.key] {
				continue
			}
			reported[wg.key] = true
			pass.Reportf(f.Lit.Pos(),
				"goroutine calls %s.Done but can exit without reaching it on some path; call Done on every path or defer it",
				wg.name)
		}
	}
}
