// Command mba-serve runs the multi-tenant aggregate-estimation service
// over a simulated microblog platform: an HTTP/JSON API with
// per-tenant quota admission, weighted-fair queueing, result and
// pilot-walk caching, and shed-don't-collapse overload degradation.
//
// Usage:
//
//	mba-serve [-addr :8480] [-scale test|bench|large] [-workers 4]
//	          [-budget 2000] [-tenants name:weight:quota,...]
//
// Endpoints:
//
//	POST /v1/query   {"tenant":"gold","query":"SELECT COUNT(1) FROM users WHERE timeline CONTAINS \"privacy\""}
//	GET  /v1/stats   service metrics and per-tenant ledger books
//	GET  /healthz    liveness
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"mba/internal/serve"
	"mba/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8480", "listen address")
	scale := flag.String("scale", "test", "platform scale: test, bench, or large")
	workers := flag.Int("workers", 4, "concurrent estimation workers")
	budget := flag.Int("budget", 2000, "default per-request API-call budget")
	tenantSpec := flag.String("tenants",
		"gold:2:60000,silver:1:30000,bronze:1:15000",
		"comma-separated tenant list, each name:weight:quota")
	flag.Parse()

	var sc workload.Scale
	switch *scale {
	case "test":
		sc = workload.Test
	case "bench":
		sc = workload.Bench
	case "large":
		sc = workload.Large
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	tenants, err := parseTenants(*tenantSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	p, err := workload.Get(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	svc, err := serve.New(serve.Config{
		Platform:      p,
		Tenants:       tenants,
		Workers:       *workers,
		DefaultBudget: *budget,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "mba-serve: listening on %s (scale=%s, %d workers, %d tenants)\n",
		*addr, *scale, *workers, len(tenants))
	if err := svc.ListenAndServe(ctx, *addr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// parseTenants decodes the -tenants flag: name:weight:quota triples.
func parseTenants(spec string) ([]serve.TenantConfig, error) {
	var out []serve.TenantConfig
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("tenant %q: want name:weight:quota", part)
		}
		weight, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("tenant %q: bad weight: %w", part, err)
		}
		quota, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("tenant %q: bad quota: %w", part, err)
		}
		out = append(out, serve.TenantConfig{Name: fields[0], Weight: weight, Quota: quota})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no tenants in %q", spec)
	}
	return out, nil
}
