// Package walk provides the topology-oblivious sampling machinery the
// paper builds on and compares against: simple random walks (Lovász),
// Metropolis–Hastings random walks, and the estimators that turn walk
// samples into aggregate answers — the ratio (importance-reweighted)
// estimator for AVG, the Hansen–Hurwitz estimator for SUM/COUNT when
// selection probabilities are known (the enabler of MA-TARW, §5), and
// the Katzir-style mark-and-recapture size estimator (the paper's M&R
// baseline).
//
// Walkers see the graph only through the Graph interface, so the same
// code runs over the social graph, the term-induced subgraph, or the
// level-by-level subgraph, with API costs charged by the implementation.
package walk

import (
	"errors"
	"math/rand"
)

// Graph is the neighbor oracle walkers traverse. Implementations
// typically charge API calls per unique lookup.
type Graph interface {
	// Neighbors returns the adjacent nodes of u in the conceptual graph.
	Neighbors(u int64) ([]int64, error)
}

// GraphFunc adapts a plain neighbor function to the Graph interface.
type GraphFunc func(u int64) ([]int64, error)

// Neighbors calls f.
func (f GraphFunc) Neighbors(u int64) ([]int64, error) { return f(u) }

// ErrStuck is returned by Step when the current node has no reachable
// neighbors (dead end, or all neighbors private/unreachable). Callers
// usually restart from a fresh seed.
var ErrStuck = errors.New("walk: no reachable neighbor")

// Walker is the common stepping interface of SimpleWalk and
// MetropolisWalk.
type Walker interface {
	// Current returns the node the walk is at.
	Current() int64
	// Step advances one transition and returns the new node.
	Step() (int64, error)
}

// SimpleWalk is the simple random walk of [Lovász 1996]: each step
// moves to a neighbor chosen uniformly at random. Its stationary
// distribution assigns probability proportional to node degree.
type SimpleWalk struct {
	g   Graph
	rng *rand.Rand
	cur int64
}

// NewSimple starts a simple random walk at start.
func NewSimple(g Graph, start int64, rng *rand.Rand) *SimpleWalk {
	return &SimpleWalk{g: g, rng: rng, cur: start}
}

// Current returns the walk position.
func (w *SimpleWalk) Current() int64 { return w.cur }

// Step moves to a uniformly chosen neighbor.
func (w *SimpleWalk) Step() (int64, error) {
	ns, err := w.g.Neighbors(w.cur)
	if err != nil {
		return w.cur, err
	}
	if len(ns) == 0 {
		return w.cur, ErrStuck
	}
	w.cur = ns[w.rng.Intn(len(ns))]
	return w.cur, nil
}

// Jump teleports the walk (used when restarting from a new seed).
func (w *SimpleWalk) Jump(u int64) { w.cur = u }

// MetropolisWalk is the Metropolis–Hastings random walk whose
// stationary distribution is uniform over nodes: propose a uniform
// neighbor v, accept with probability min(1, d(u)/d(v)). Rejections
// keep the walk in place (and still count as a step, as in [Gjoka et
// al. 2010]).
type MetropolisWalk struct {
	g   Graph
	rng *rand.Rand
	cur int64
}

// NewMetropolis starts a Metropolis–Hastings walk at start.
func NewMetropolis(g Graph, start int64, rng *rand.Rand) *MetropolisWalk {
	return &MetropolisWalk{g: g, rng: rng, cur: start}
}

// Current returns the walk position.
func (w *MetropolisWalk) Current() int64 { return w.cur }

// Step performs one propose/accept transition.
func (w *MetropolisWalk) Step() (int64, error) {
	ns, err := w.g.Neighbors(w.cur)
	if err != nil {
		return w.cur, err
	}
	if len(ns) == 0 {
		return w.cur, ErrStuck
	}
	v := ns[w.rng.Intn(len(ns))]
	vs, err := w.g.Neighbors(v)
	if err != nil {
		// Treat an unreachable proposal as rejected.
		return w.cur, nil
	}
	if len(vs) == 0 {
		return w.cur, nil
	}
	if w.rng.Float64() < float64(len(ns))/float64(len(vs)) {
		w.cur = v
	}
	return w.cur, nil
}

// Jump teleports the walk.
func (w *MetropolisWalk) Jump(u int64) { w.cur = u }
