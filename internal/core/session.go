// Package core implements MICROBLOG-ANALYZER itself (§3–§5 of the
// paper): the GRAPH-BUILDER views that expose the social graph, the
// term-induced subgraph, and the level-by-level subgraph on the fly
// through the rate-limited API, and the two GRAPH-WALKER algorithms —
// MA-SRW (Algorithm 1: simple random walk over the level-by-level
// subgraph) and MA-TARW (Algorithms 2–3: topology-aware bottom-top-
// bottom walk with unbiased selection-probability estimation). The
// mark-and-recapture COUNT baseline (M&R) lives here too.
//
// Everything a walker learns flows through api.Client, so Client.Cost
// is the faithful query-cost measure the paper plots.
package core

import (
	"errors"
	"fmt"
	"math/rand"

	"mba/internal/api"
	"mba/internal/levelgraph"
	"mba/internal/model"
	"mba/internal/query"
)

// ErrNoSeeds indicates the search API returned no qualified seed user.
var ErrNoSeeds = errors.New("core: search returned no qualified seed users")

// GraphView selects which conceptual graph the walker traverses.
type GraphView int

// Graph views: the full social graph, the term-induced subgraph of
// §4.1, and the level-by-level subgraph of §4.2.
const (
	SocialView GraphView = iota
	TermView
	LevelView
)

func (v GraphView) String() string {
	switch v {
	case SocialView:
		return "social"
	case TermView:
		return "term-induced"
	case LevelView:
		return "level-by-level"
	default:
		return fmt.Sprintf("GraphView(%d)", int(v))
	}
}

// nodeInfo caches per-user facts derived from one timeline fetch.
// The raw first-mention time is kept (rather than its level bucket) so
// changing the interval T never invalidates anything.
type nodeInfo struct {
	reachable bool       // timeline accessible (not private/vanished)
	vanished  bool       // account gone from the platform (churn)
	qualified bool       // keyword appears in the visible timeline
	first     model.Tick // first visible mention (valid when qualified)
	matches   bool       // satisfies the full query condition
	value     float64
}

// permanentlyUnreachable reports whether err marks a user the walk
// must skip permanently rather than abort on: a protected account
// (api.ErrPrivate) or one that vanished from the platform entirely
// (api.ErrUnknownUser, e.g. suspended or deleted under churn). Both
// classes are terminal for the user, never for the run.
func permanentlyUnreachable(err error) bool {
	return errors.Is(err, api.ErrPrivate) || errors.Is(err, api.ErrUnknownUser)
}

// Session binds a query to an API client and exposes the on-the-fly
// graph views. It memoizes per-user qualification so the underlying
// (already cached) API calls are never re-interpreted.
type Session struct {
	Client *api.Client
	Query  query.Query
	// Interval is the level-by-level time interval T (§4.2.3); defaults
	// to one day when zero.
	Interval model.Tick

	info map[int64]*nodeInfo
	// vanishedSeen tracks the distinct users a fresh probe revealed as
	// gone (ErrUnknownUser), and pruned the distinct dangling edges
	// dropped from the partial level graph because an endpoint
	// vanished. Both feed HealStats.
	vanishedSeen map[int64]bool
	pruned       map[[2]int64]bool
}

// NewSession validates the query and returns a session with interval T.
func NewSession(client *api.Client, q query.Query, interval model.Tick) (*Session, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if interval <= 0 {
		interval = model.Day
	}
	return &Session{
		Client:       client,
		Query:        q,
		Interval:     interval,
		info:         make(map[int64]*nodeInfo),
		vanishedSeen: make(map[int64]bool),
		pruned:       make(map[[2]int64]bool),
	}, nil
}

// SetInterval changes T. Levels are derived from cached first-mention
// times on demand, so this is free.
func (s *Session) SetInterval(t model.Tick) {
	if t <= 0 {
		return
	}
	s.Interval = t
}

// markVanished records that a fresh probe revealed u as gone and
// flips any cached node facts to unreachable, so the partial level
// graph stops listing u and later filterNeighbors passes prune its
// dangling edges.
func (s *Session) markVanished(u int64) {
	s.vanishedSeen[u] = true
	if in, ok := s.info[u]; ok {
		in.reachable = false
		in.qualified = false
		in.vanished = true
	} else {
		s.info[u] = &nodeInfo{vanished: true}
	}
}

// node fetches (or recalls) user u's derived facts. Budget exhaustion
// is returned as an error; permanently unreachable users (private or
// vanished) yield reachable=false with a nil error.
func (s *Session) node(u int64) (*nodeInfo, error) {
	if in, ok := s.info[u]; ok {
		return in, nil
	}
	tl, err := s.Client.Timeline(u)
	switch {
	case permanentlyUnreachable(err):
		in := &nodeInfo{}
		if errors.Is(err, api.ErrUnknownUser) {
			in.vanished = true
			s.vanishedSeen[u] = true
		}
		s.info[u] = in
		return in, nil
	case err != nil:
		return nil, err
	}
	in := &nodeInfo{reachable: true}
	if first, ok := tl.FirstMention(s.Query.Keyword); ok {
		in.qualified = true
		in.first = first
		in.matches = s.Query.Matches(tl)
		if in.matches {
			in.value = s.Query.Value(tl)
		}
	}
	s.info[u] = in
	return in, nil
}

// levelOf buckets a node's cached first mention at the session interval.
func (s *Session) levelOf(in *nodeInfo) int {
	return levelgraph.LevelOf(in.first, s.Interval)
}

// Qualified reports whether u belongs to the term-induced subgraph.
func (s *Session) Qualified(u int64) (bool, error) {
	in, err := s.node(u)
	if err != nil {
		return false, err
	}
	return in.reachable && in.qualified, nil
}

// Level returns u's level index (first-mention bucket).
func (s *Session) Level(u int64) (int, error) {
	in, err := s.node(u)
	if err != nil {
		return 0, err
	}
	if !in.reachable || !in.qualified {
		return 0, fmt.Errorf("core: user %d is not in the term subgraph", u)
	}
	return s.levelOf(in), nil
}

// MatchValue returns (matches full condition, f(u)) for u.
func (s *Session) MatchValue(u int64) (bool, float64, error) {
	in, err := s.node(u)
	if err != nil {
		return false, 0, err
	}
	return in.matches, in.value, nil
}

// connections fetches u's neighbor list, folding both permanent
// error classes into an empty list. A fresh ErrUnknownUser also flips
// any cached node facts for u: the account vanished after we learned
// about it, so the partial graph must stop treating it as present.
func (s *Session) connections(u int64) ([]int64, error) {
	ns, err := s.Client.Connections(u)
	if permanentlyUnreachable(err) {
		if errors.Is(err, api.ErrUnknownUser) {
			s.markVanished(u)
		}
		return nil, nil
	}
	return ns, err
}

// SocialNeighbors returns u's reachable connections (the raw social
// graph view).
func (s *Session) SocialNeighbors(u int64) ([]int64, error) {
	return s.connections(u)
}

// TermNeighbors returns u's neighbors inside the term-induced
// subgraph: connections whose visible timeline mentions the keyword.
// Each candidate costs a (cached) timeline probe — exactly the cost
// the paper's on-the-fly subgraph construction pays.
func (s *Session) TermNeighbors(u int64) ([]int64, error) {
	return s.filterNeighbors(u, func(_, _ int) bool { return true })
}

// LevelNeighbors returns u's neighbors in the level-by-level subgraph:
// qualified connections in a different level (intra-level edges are
// removed per §4.2.1).
func (s *Session) LevelNeighbors(u int64) ([]int64, error) {
	return s.filterNeighbors(u, func(lvl, myLevel int) bool {
		return lvl != myLevel
	})
}

// UpNeighbors returns qualified neighbors in strictly earlier levels
// (toward the paper's "top"; the walk's bottom-top phase follows these).
func (s *Session) UpNeighbors(u int64) ([]int64, error) {
	return s.filterNeighbors(u, func(lvl, myLevel int) bool {
		return lvl < myLevel
	})
}

// DownNeighbors returns qualified neighbors in strictly later levels.
func (s *Session) DownNeighbors(u int64) ([]int64, error) {
	return s.filterNeighbors(u, func(lvl, myLevel int) bool {
		return lvl > myLevel
	})
}

// UpAdjacent returns qualified neighbors exactly one level earlier.
// MA-TARW's adjacent-only mode walks this lattice: the paper's §5
// analysis assumes adjacent-level edges (cross-level edges are under
// 1–3% of its real subgraphs, Table 2), and on a pure adjacent-level
// lattice the bottom-top walk conserves probability mass per level,
// keeping the Hansen–Hurwitz weights well conditioned.
func (s *Session) UpAdjacent(u int64) ([]int64, error) {
	return s.filterNeighbors(u, func(lvl, myLevel int) bool {
		return lvl == myLevel-1
	})
}

// DownAdjacent returns qualified neighbors exactly one level later.
func (s *Session) DownAdjacent(u int64) ([]int64, error) {
	return s.filterNeighbors(u, func(lvl, myLevel int) bool {
		return lvl == myLevel+1
	})
}

func (s *Session) filterNeighbors(u int64, keep func(lvl, myLevel int) bool) ([]int64, error) {
	me, err := s.node(u)
	if err != nil {
		return nil, err
	}
	if !me.reachable || !me.qualified {
		return nil, nil
	}
	ns, err := s.connections(u)
	if err != nil {
		return nil, err
	}
	var out []int64
	for _, v := range ns {
		in, err := s.node(v)
		if err != nil {
			return nil, err
		}
		if in.vanished {
			// Dangling edge: v died after the platform listed it as a
			// neighbor. Prune it (counted once per distinct edge).
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			s.pruned[[2]int64{a, b}] = true
			continue
		}
		if in.reachable && in.qualified && keep(s.levelOf(in), s.levelOf(me)) {
			out = append(out, v)
		}
	}
	return out, nil
}

// oracleReady reports whether u's derived node facts are answerable
// without a charged API call: either the session has already
// interpreted them, or the client's cache holds a timeline verdict
// (positive or negative) for u.
func (s *Session) oracleReady(u int64) bool {
	if _, ok := s.info[u]; ok {
		return true
	}
	return s.Client.CanTimeline(u)
}

// DrainReady reports whether the walker's next step from u under the
// given view is fully cache-satisfiable — the neighbor oracle AND the
// per-sample facts for every candidate destination can be answered
// without charging a single API call. A parked walker uses this to
// keep stepping through already-paid territory while the rate-limit
// window is shut ("walk, not wait"): every step DrainReady approves is
// free by construction, so draining never perturbs the budget books.
//
//lint:ignore budgetflow every path is a free cache probe or guarded by oracleReady, so no charged call can happen; a boolean probe has no error to propagate
func (s *Session) DrainReady(view GraphView, u int64) bool {
	if !s.oracleReady(u) {
		return false
	}
	if view != SocialView {
		in, err := s.node(u) // free: oracleReady held
		if err != nil {
			return false
		}
		if !in.reachable || !in.qualified {
			// The filtered oracles return an empty list for such a user
			// without touching connections; the step is free (it will
			// surface walk.ErrStuck, handled by the caller).
			return true
		}
	}
	if !s.Client.CanConnections(u) {
		return false
	}
	ns, ok := s.Client.CachedConnections(u)
	if !ok {
		// A cached negative verdict (private/vanished): connections()
		// folds it to an empty list for free.
		return true
	}
	for _, v := range ns {
		if !s.oracleReady(v) {
			return false
		}
	}
	return true
}

// Vanished reports whether a fresh probe has revealed u as gone from
// the platform.
func (s *Session) Vanished(u int64) bool {
	in, ok := s.info[u]
	return ok && in.vanished
}

// ChurnObserved returns the churn fallout this session has witnessed:
// distinct vanished users and distinct pruned dangling edges.
func (s *Session) ChurnObserved() (vanished, prunedEdges int) {
	return len(s.vanishedSeen), len(s.pruned)
}

// Neighbors returns the oracle for a graph view (walk.Graph adapter).
func (s *Session) Neighbors(view GraphView) func(u int64) ([]int64, error) {
	switch view {
	case SocialView:
		return s.SocialNeighbors
	case TermView:
		return s.TermNeighbors
	default:
		return s.LevelNeighbors
	}
}

// SeedSet describes the seed users found through the search API
// (§3.1: "seed users can be easily identified through the limited
// search API"). Search hits posted the keyword recently, so they are
// qualified by construction; qualification is still verified lazily
// when a seed is picked (a hit can be private, or its mention hidden
// by the timeline cap).
type SeedSet struct {
	Hits []int64
	set  map[int64]bool
}

// Contains reports whether u is one of the search-returned seeds — the
// membership test behind ESTIMATE-p's base case (p(u) = 1/s for seeds,
// 0 for other bottom nodes).
func (ss SeedSet) Contains(u int64) bool { return ss.set[u] }

// Size returns s, the number of candidate seed users.
func (ss SeedSet) Size() int { return len(ss.Hits) }

// Seeds performs the search query and returns the seed set.
func (s *Session) Seeds() (SeedSet, error) {
	hits, err := s.Client.Search(s.Query.Keyword)
	if err != nil {
		return SeedSet{}, err
	}
	if len(hits) == 0 {
		return SeedSet{}, ErrNoSeeds
	}
	set := make(map[int64]bool, len(hits))
	for _, u := range hits {
		set[u] = true
	}
	return SeedSet{Hits: hits, set: set}, nil
}

// PickSeed draws uniform seeds until one qualifies (is reachable and
// has a visible keyword mention). It fails with ErrNoSeeds if a bounded
// number of draws all fail.
func (s *Session) PickSeed(ss SeedSet, rng *rand.Rand) (int64, error) {
	attempts := 4 * len(ss.Hits)
	if attempts < 16 {
		attempts = 16
	}
	for i := 0; i < attempts; i++ {
		u := ss.Hits[rng.Intn(len(ss.Hits))]
		ok, err := s.Qualified(u)
		if err != nil {
			return 0, err
		}
		if ok {
			return u, nil
		}
	}
	return 0, ErrNoSeeds
}
