package lint_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"mba/internal/lint"
)

// TestSARIFRequiredFields unmarshals the emitted log generically and
// checks every field the SARIF 2.1.0 schema requires of a minimal
// tool+results log.
func TestSARIFRequiredFields(t *testing.T) {
	diags := []lint.Diagnostic{
		diag("ctxflow", "/repo/internal/core/a.go", 12, "severed context"),
		diag("lockorder", "/repo/internal/api/b.go", 34, "lock cycle"),
	}
	data, err := lint.SARIF(diags, lint.All(), "/repo")
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
						HelpURI string `json:"helpUri"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("emitted SARIF does not parse: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if log.Schema == "" {
		t.Error("$schema missing")
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "mba-lint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != len(lint.All()) {
		t.Errorf("rules = %d, want %d", len(run.Tool.Driver.Rules), len(lint.All()))
	}
	for _, r := range run.Tool.Driver.Rules {
		if r.ID == "" || r.ShortDescription.Text == "" {
			t.Errorf("rule %+v missing id or shortDescription", r)
		}
		if want := "DESIGN.md#lint-" + r.ID; r.HelpURI != want {
			t.Errorf("rule %s helpUri = %q, want %q", r.ID, r.HelpURI, want)
		}
	}
	if len(run.Results) != len(diags) {
		t.Fatalf("results = %d, want %d", len(run.Results), len(diags))
	}
	first := run.Results[0]
	if first.RuleID != "ctxflow" || first.Level != "error" || first.Message.Text != "severed context" {
		t.Errorf("first result = %+v", first)
	}
	if len(first.Locations) != 1 {
		t.Fatalf("first result has %d locations", len(first.Locations))
	}
	loc := first.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/core/a.go" {
		t.Errorf("uri = %q, want module-relative internal/core/a.go", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 12 {
		t.Errorf("startLine = %d, want 12", loc.Region.StartLine)
	}
}

// TestSARIFDeterministic: two emissions of the same findings are
// byte-identical.
func TestSARIFDeterministic(t *testing.T) {
	diags := []lint.Diagnostic{
		diag("ctxflow", "a.go", 1, "m1"),
		diag("errsentinel", "b.go", 2, "m2"),
	}
	d1, err := lint.SARIF(diags, lint.All(), "")
	if err != nil {
		t.Fatal(err)
	}
	d2, err := lint.SARIF(diags, lint.All(), "")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1, d2) {
		t.Error("SARIF output is not byte-identical across runs")
	}
}
