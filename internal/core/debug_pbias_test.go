package core

import (
	"math/rand"
	"sort"
	"testing"

	"mba/internal/api"
	"mba/internal/levelgraph"
	"mba/internal/model"
	"mba/internal/query"
)

// TestDebugEstimatePBias compares ESTIMATE-p against the exact p̄
// computed by dynamic programming over the true level graph: per-node,
// the estimator mean should match p̄ (unbiasedness), and the induced
// 1/p̂ weights explain any COUNT bias.
func TestDebugEstimatePBias(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	p := testPlatform(t)
	interval := 2 * model.Week
	c := p.Cascade("privacy")
	term, _ := p.TermSubgraph("privacy")
	lvl := func(u int64) int { return levelgraph.LevelOf(c.First[u], interval) }
	up := func(u int64) (out []int64) {
		for _, v := range term.Neighbors(u) {
			if lvl(v) < lvl(u) {
				out = append(out, v)
			}
		}
		return
	}
	down := func(u int64) (out []int64) {
		for _, v := range term.Neighbors(u) {
			if lvl(v) > lvl(u) {
				out = append(out, v)
			}
		}
		return
	}

	srv := api.NewServer(p, api.Twitter(), api.Faults{})
	s, _ := NewSession(api.NewClient(srv, 0), query.CountQuery("privacy"), interval)
	seeds, err := s.Seeds()
	if err != nil {
		t.Fatal(err)
	}

	// Exact DP for p̄.
	nodes := term.Nodes()
	byLevelDesc := append([]int64(nil), nodes...)
	sort.Slice(byLevelDesc, func(i, j int) bool { return lvl(byLevelDesc[i]) > lvl(byLevelDesc[j]) })
	sSize := float64(seeds.Size())
	pBar := make(map[int64]float64, len(nodes))
	for _, u := range byLevelDesc {
		var acc float64
		if seeds.Contains(u) {
			acc = 1 / sSize
		}
		for _, v := range down(u) {
			acc += pBar[v] / float64(len(up(v)))
		}
		pBar[u] = acc
	}

	// Pick supported nodes across levels and compare.
	tw := &tarw{
		s:     s,
		rng:   rand.New(rand.NewSource(1)),
		seeds: seeds,
		opts:  TARWOptions{PEstimates: 1, DisableRootCache: true}.withDefaults(),
		pUp:   make(map[int64]*pStat),
		pDown: make(map[int64]*pStat),
	}
	tw.opts.PEstimates = 1

	var supported []int64
	for _, u := range nodes {
		if pBar[u] > 0 && len(up(u)) > 0 { // skip trivial seeds
			supported = append(supported, u)
		}
	}
	sort.Slice(supported, func(i, j int) bool { return lvl(supported[i]) < lvl(supported[j]) })

	checkEvery := len(supported) / 12
	if checkEvery < 1 {
		checkEvery = 1
	}
	var ratioSum float64
	var count int
	for i := 0; i < len(supported); i += checkEvery {
		u := supported[i]
		const runs = 400
		var sum float64
		zeros := 0
		for r := 0; r < runs; r++ {
			est, err := tw.samplePUp(u)
			if err != nil {
				t.Fatal(err)
			}
			sum += est
			if est == 0 {
				zeros++
			}
		}
		mean := sum / runs
		ratio := mean / pBar[u]
		ratioSum += ratio
		count++
		t.Logf("u=%6d level=%3d exact=%.3e mean(p̂)=%.3e ratio=%.2f zeros=%d/%d",
			u, lvl(u), pBar[u], mean, ratio, zeros, runs)
	}
	t.Logf("mean ratio over %d nodes = %.3f (1.0 = unbiased)", count, ratioSum/float64(count))
}
