// Package api implements the restricted data-access model of §2 of the
// paper. A Server exposes exactly the three query types real microblog
// APIs offer — SEARCH, USER CONNECTIONS, USER TIMELINE — with
// per-platform page sizes, a recency-limited search window, optional
// private users, and optional transient faults. A Client layers
// caching, call accounting (the paper's efficiency measure is the
// number of API calls), an optional hard budget, and virtual
// rate-limit timing on top.
//
// Estimators never touch internal/platform directly; everything they
// learn flows through this interface, so their reported query costs
// are faithful to the paper's cost model.
package api

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"mba/internal/model"
	"mba/internal/platform"
)

// Sentinel errors surfaced by the Server.
var (
	// ErrPrivate indicates the user hid their connections/timeline.
	ErrPrivate = errors.New("api: user is private")
	// ErrTransient models a retryable service hiccup (HTTP 5xx).
	ErrTransient = errors.New("api: transient service error")
	// ErrRateLimited models a 429-style rejection at the rate-limit
	// gate. Unlike ErrTransient the call never reached the service, so
	// the Client does not charge it against the budget; the retry
	// policy instead waits out the window in virtual time.
	ErrRateLimited = errors.New("api: rate limited")
	// ErrBudgetExhausted is returned by Client methods once the call
	// budget is spent.
	ErrBudgetExhausted = errors.New("api: query budget exhausted")
	// ErrUnknownUser indicates an out-of-range user ID.
	ErrUnknownUser = errors.New("api: unknown user")
	// ErrCanceled is returned by Client methods once the context bound
	// via Client.WithContext is done: the run was cancelled from outside
	// and must unwind with a partial (Degraded) result.
	ErrCanceled = errors.New("api: call canceled")
	// ErrDeadlineExceeded is returned by Client methods once the
	// client's accrued VirtualDuration passes Client.Deadline — the
	// virtual-time analogue of a per-query wall-clock deadline. Like
	// cancellation it is terminal for the run segment, not resumable by
	// simply retrying.
	ErrDeadlineExceeded = errors.New("api: virtual deadline exceeded")
	// ErrStalled is returned by Client methods when the stall watchdog
	// fires (see RetryPolicy.StallWait): the client accrued too much
	// virtual wait without a single successfully charged call. Unlike
	// cancellation, a stall is recoverable — resume the walk from its
	// checkpoint to reseed it on a fresh RNG segment.
	ErrStalled = errors.New("api: walker stalled, no budget progress")
	// ErrThrottled is the sentinel inside every *ThrottledError a client
	// in yield mode (Client.YieldOnThrottle) returns instead of blocking
	// out a rate-limit window. Match with errors.Is and recover the
	// ReadyAt timestamp with errors.As; a throttled run segment is
	// resumable from its checkpoint once the window reopens.
	ErrThrottled = errors.New("api: throttled, rate-limit window exhausted")
)

// ThrottledError is the typed non-blocking answer to a 429: instead of
// silently accruing the rate-limit window as virtual wait inside the
// charged call, a client with YieldOnThrottle set hands the wait to the
// caller, who can park the walker and run other work ("walk, not
// wait"). The window wait is already on the books (Stats.ThrottleWait)
// when this error surfaces — ReadyAt is the client's virtual clock
// after that accrual, i.e. the earliest virtual timestamp at which the
// walker may charge again.
type ThrottledError struct {
	// ReadyAt is the virtual-clock timestamp (the unit's cumulative
	// VirtualDuration) at which the rate-limit window reopens.
	ReadyAt time.Duration
}

func (e *ThrottledError) Error() string {
	return fmt.Sprintf("api: throttled, window reopens at virtual %v", e.ReadyAt)
}

// Unwrap makes errors.Is(err, ErrThrottled) hold for throttled calls.
func (e *ThrottledError) Unwrap() error { return ErrThrottled }

// ErrTruncated models a multi-page fetch dying partway: the caller
// paid for a strict prefix of the pages and got nothing usable back.
// It wraps ErrTransient, so the retry policy treats it as retryable.
var ErrTruncated = fmt.Errorf("api: response truncated mid-paging: %w", ErrTransient)

// ErrCircuitOpen is surfaced by the Client when its circuit breaker
// has tripped after too many consecutive post-retry failures (see
// RetryPolicy.BreakerThreshold). It wraps the error that tripped it.
var ErrCircuitOpen = errors.New("api: circuit breaker open")

// Preset captures the interface parameters of a real platform.
type Preset struct {
	Name string
	// SearchWindow is how far back SEARCH reaches (1 week on Twitter).
	SearchWindow model.Tick
	// SearchMaxResults caps the number of users SEARCH returns
	// ("other microblogs restrict search to top-k results where k could
	// be in the low thousands").
	SearchMaxResults int
	// SearchPageSize, TimelinePageSize, ConnectionsPageSize control how
	// many API calls a logical query costs. Google+'s activity search
	// returns at most 20 results per call versus 200 for Twitter's
	// timeline API — the reason Figures 12–13 show much higher absolute
	// costs on Google+.
	SearchPageSize      int
	TimelinePageSize    int
	ConnectionsPageSize int
	// RateLimitCalls per RateLimitWindow defines the virtual wall-clock
	// cost of a call (180 calls / 15 min on Twitter).
	RateLimitCalls  int
	RateLimitWindow time.Duration
}

// Twitter returns the Twitter REST API preset from §3.2.
func Twitter() Preset {
	return Preset{
		Name:                "twitter",
		SearchWindow:        model.Week,
		SearchMaxResults:    3000,
		SearchPageSize:      100,
		TimelinePageSize:    200,
		ConnectionsPageSize: 5000,
		RateLimitCalls:      180,
		RateLimitWindow:     15 * time.Minute,
	}
}

// GPlus returns the Google+ preset from §6.1 (20 results per call,
// 10,000 queries/day courtesy limit).
func GPlus() Preset {
	return Preset{
		Name:                "gplus",
		SearchWindow:        model.Week,
		SearchMaxResults:    3000,
		SearchPageSize:      20,
		TimelinePageSize:    20,
		ConnectionsPageSize: 100,
		RateLimitCalls:      10000,
		RateLimitWindow:     24 * time.Hour,
	}
}

// Tumblr returns the Tumblr preset from §6.1 (one request per 10 s).
func Tumblr() Preset {
	return Preset{
		Name:                "tumblr",
		SearchWindow:        2 * model.Week,
		SearchMaxResults:    3000,
		SearchPageSize:      20,
		TimelinePageSize:    20,
		ConnectionsPageSize: 20,
		RateLimitCalls:      1,
		RateLimitWindow:     10 * time.Second,
	}
}

// Faults configures failure injection on a Server. All draws are
// deterministic in Seed, so a fault schedule replays exactly.
type Faults struct {
	// PrivateProb makes a user permanently private.
	PrivateProb float64
	// TransientProb makes any single call fail retryably (HTTP 5xx).
	TransientProb float64
	// RateLimitProb rejects any single call with ErrRateLimited (429).
	// Rejected calls consume no budget; the client's retry policy waits
	// out the rate-limit window in virtual time instead.
	RateLimitProb float64
	// OutageMeanGap and OutageLength inject correlated failure bursts:
	// outage starts are spaced by exponentially distributed gaps with
	// mean OutageMeanGap calls, and each outage fails OutageLength
	// consecutive calls with ErrTransient. Both must be positive for
	// outages to occur. Retries advance the call clock, so a patient
	// retry policy can ride an outage out.
	OutageMeanGap int
	OutageLength  int
	// SlowCallProb and SlowCallLatency inject per-call latency. The
	// latency is surfaced to the Client and accrued into its virtual
	// wait time (VirtualDuration), not into the call budget.
	SlowCallProb    float64
	SlowCallLatency time.Duration
	// TruncateProb aborts a multi-page fetch partway: the call returns
	// ErrTruncated after paying for a strict prefix of its pages.
	// Single-page responses are never truncated.
	TruncateProb float64
	// Seed drives the deterministic fault draws.
	Seed int64
}

// Server serves the restricted interface over a generated platform.
//
// Concurrency contract: Server is safe for concurrent use by multiple
// goroutines (and hence by multiple Clients). A single mutex serializes
// every served call, so the fault/churn clock advances atomically and a
// shared fault schedule is drawn exactly once regardless of caller
// interleaving. Note that a server SHARED between concurrent clients is
// not deterministic run-to-run — the fault RNG draws interleave in
// scheduling order. A fleet that needs seed-determinism at any
// parallelism gives each walker its own Server with a derived fault
// seed (see internal/fleet); the underlying platform is read-only and
// safely shared either way.
type Server struct {
	// mu serializes served calls: the fault clock, outage schedule,
	// churn overlay advancement, and pending-latency accumulator are all
	// guarded by it.
	mu      sync.Mutex
	p       *platform.Platform
	preset  Preset
	private map[int64]bool
	faults  Faults
	frng    *rand.Rand
	// churn, when non-nil, drifts the served platform state as a
	// deterministic function of the call clock (see EnableChurn).
	churn *platform.ChurnState

	// clock counts raw calls served; it is the time base the outage
	// schedule runs on.
	clock      int
	nextOutage int
	// pending accumulates injected slow-call latency until the Client
	// drains it into its virtual wait accounting.
	pending time.Duration
}

// NewServer wraps a platform with a preset interface and optional
// fault injection.
func NewServer(p *platform.Platform, preset Preset, faults Faults) *Server {
	s := &Server{
		p:       p,
		preset:  preset,
		private: make(map[int64]bool),
		faults:  faults,
		frng:    rand.New(rand.NewSource(faults.Seed ^ 0x5eed)),
	}
	if faults.PrivateProb > 0 {
		for id := 0; id < p.NumUsers(); id++ {
			if s.frng.Float64() < faults.PrivateProb {
				s.private[int64(id)] = true
			}
		}
	}
	if faults.OutageMeanGap > 0 && faults.OutageLength > 0 {
		s.scheduleOutage()
	}
	return s
}

// Preset returns the interface parameters in force.
func (s *Server) Preset() Preset { return s.preset }

// EnableChurn activates deterministic platform churn: server state
// (account existence, protection flags, edges, posts) mutates as a
// pure function of the call clock and cfg.Seed, modeling the drift a
// long real-world crawl observes. Call before serving queries; a zero
// rate is a no-op. The underlying platform is never mutated — churn
// lives in a per-server overlay, so servers sharing a cached platform
// drift independently.
func (s *Server) EnableChurn(cfg platform.ChurnConfig) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cfg.Enabled() {
		s.churn = platform.NewChurn(s.p, cfg)
	}
}

// Churn exposes the churn overlay for diagnostics (event counts), or
// nil when churn is disabled. Estimators must not touch it — they
// learn about drift only through API errors and responses. The overlay
// itself is not goroutine-safe; read it only after serving has
// quiesced.
func (s *Server) Churn() *platform.ChurnState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.churn
}

// scheduleOutage draws the next outage start, an exponential gap after
// the current clock.
func (s *Server) scheduleOutage() {
	s.nextOutage = s.clock + 1 + int(s.frng.ExpFloat64()*float64(s.faults.OutageMeanGap))
}

func (s *Server) maybeFault() error {
	s.clock++
	if s.churn != nil {
		s.churn.AdvanceTo(s.clock)
	}
	if s.faults.OutageMeanGap > 0 && s.faults.OutageLength > 0 && s.clock >= s.nextOutage {
		if s.clock < s.nextOutage+s.faults.OutageLength {
			return ErrTransient
		}
		s.scheduleOutage()
	}
	if p := s.faults.RateLimitProb; p > 0 && s.frng.Float64() < p {
		return ErrRateLimited
	}
	if p := s.faults.TransientProb; p > 0 && s.frng.Float64() < p {
		return ErrTransient
	}
	if p := s.faults.SlowCallProb; p > 0 && s.frng.Float64() < p {
		s.pending += s.faults.SlowCallLatency
	}
	return nil
}

// drainLatency returns and clears the injected slow-call latency
// accumulated since the last drain (consumed by Client accounting).
// With several clients sharing one server, latency is attributed to
// whichever client drains first — total virtual wait is conserved, but
// per-client attribution is approximate. Per-walker servers (the fleet
// layout) make the attribution exact.
func (s *Server) drainLatency() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.pending
	s.pending = 0
	return d
}

// maybeTruncate simulates a paging failure: with probability
// TruncateProb a multi-page fetch dies partway, and the caller pays
// for a strict prefix of totalPages with nothing usable back.
func (s *Server) maybeTruncate(totalPages int) (int, error) {
	if s.faults.TruncateProb <= 0 || totalPages <= 1 {
		return totalPages, nil
	}
	if s.frng.Float64() >= s.faults.TruncateProb {
		return totalPages, nil
	}
	return 1 + s.frng.Intn(totalPages-1), ErrTruncated
}

func (s *Server) checkUser(u int64) error {
	if u < 0 || int(u) >= s.p.NumUsers() {
		return fmt.Errorf("%w: %d", ErrUnknownUser, u)
	}
	if s.churn != nil && s.churn.Gone(u) {
		// Suspended/deleted accounts are indistinguishable from never-
		// existing ones through the real APIs.
		return fmt.Errorf("%w: %d (account vanished)", ErrUnknownUser, u)
	}
	return nil
}

// isPrivate reports whether u is inaccessible: fault-injected private
// or churn-flipped to protected.
func (s *Server) isPrivate(u int64) bool {
	return s.private[u] || (s.churn != nil && s.churn.Protected(u))
}

// pages returns the number of API calls needed to page through n items
// (minimum 1 — even an empty result consumes a call).
func pages(n, pageSize int) int {
	if pageSize <= 0 || n <= 0 {
		return 1
	}
	return (n + pageSize - 1) / pageSize
}

// Search returns users who posted the keyword within the preset's
// search window before the platform horizon, most recent first, capped
// at SearchMaxResults. The second return is the number of API calls
// the query consumed.
func (s *Server) Search(keyword string) ([]int64, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.maybeFault(); err != nil {
		return nil, 1, err
	}
	c := s.p.Cascade(keyword)
	if c == nil {
		return nil, 1, nil
	}
	from := s.p.Horizon - s.preset.SearchWindow
	type hit struct {
		u    int64
		last model.Tick
	}
	var hits []hit
	for u, posts := range c.Posts {
		if s.churn != nil {
			// Suspended accounts and protected users vanish from search,
			// and deleted posts stop matching.
			if s.churn.Gone(u) || s.churn.Protected(u) {
				continue
			}
			posts = s.churn.VisiblePosts(keyword, u, posts)
		}
		var latest model.Tick = -1
		for _, post := range posts {
			if post.Time >= from && post.Time > latest {
				latest = post.Time
			}
		}
		if latest >= 0 {
			hits = append(hits, hit{u: u, last: latest})
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].last != hits[j].last {
			return hits[i].last > hits[j].last
		}
		return hits[i].u < hits[j].u
	})
	if s.preset.SearchMaxResults > 0 && len(hits) > s.preset.SearchMaxResults {
		hits = hits[:s.preset.SearchMaxResults]
	}
	out := make([]int64, len(hits))
	for i, h := range hits {
		out[i] = h.u
	}
	cost, err := s.maybeTruncate(pages(len(out), s.preset.SearchPageSize))
	if err != nil {
		return nil, cost, err
	}
	return out, cost, nil
}

// Connections returns all of u's neighbors in the undirected social
// graph, plus the call cost (one call per ConnectionsPageSize
// neighbors, as with Twitter's follower/following APIs).
func (s *Server) Connections(u int64) ([]int64, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkUser(u); err != nil {
		return nil, 1, err
	}
	if err := s.maybeFault(); err != nil {
		return nil, 1, err
	}
	if s.isPrivate(u) {
		return nil, 1, ErrPrivate
	}
	var out []int64
	if s.churn != nil {
		out = s.churn.Neighbors(u)
	} else {
		out = append([]int64(nil), s.p.Social.Neighbors(u)...)
	}
	cost, err := s.maybeTruncate(pages(len(out), s.preset.ConnectionsPageSize))
	if err != nil {
		return nil, cost, err
	}
	return out, cost, nil
}

// Timeline returns u's visible timeline (profile plus keyword posts
// under the platform's cap) and the call cost of paging through the
// user's full post history.
func (s *Server) Timeline(u int64) (model.Timeline, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkUser(u); err != nil {
		return model.Timeline{}, 1, err
	}
	if err := s.maybeFault(); err != nil {
		return model.Timeline{}, 1, err
	}
	if s.isPrivate(u) {
		return model.Timeline{}, 1, ErrPrivate
	}
	tl := s.p.Timeline(u)
	if s.churn != nil {
		tl.Posts = s.churn.FilterTimeline(u, tl.Posts)
	}
	visible := tl.Profile.PostCount
	if cap := s.p.Config().TimelineCap; cap > 0 && visible > cap {
		visible = cap
	}
	cost, err := s.maybeTruncate(pages(visible, s.preset.TimelinePageSize))
	if err != nil {
		return model.Timeline{}, cost, err
	}
	return tl, cost, nil
}

// IsPrivate reports whether fault injection marked u private (test and
// diagnostics hook; estimators learn it only via ErrPrivate).
func (s *Server) IsPrivate(u int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.private[u]
}
