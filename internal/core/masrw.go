package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"mba/internal/api"
	"mba/internal/query"
	"mba/internal/stats"
	"mba/internal/walk"
)

// Point is one trajectory sample: the estimate available after
// spending Cost API calls.
type Point struct {
	Cost     int
	Estimate float64
}

// Result is the outcome of one estimation run.
type Result struct {
	// Estimate is the final aggregate estimate (NaN when the run never
	// produced one, e.g. M&R before its first collision).
	Estimate float64
	// Cost is the total number of API calls spent.
	Cost int
	// Samples is the number of walk samples (SRW steps or TARW walks).
	Samples int
	// DrainedSteps counts the walk steps a yield-mode throttle park
	// yielded for free, entirely from the client cache ("walk, not
	// wait"): the steps Session.DrainReady approves at the moment of
	// parking, plus — when a segment resumes from a parked checkpoint —
	// every step before that segment's first charged call, which is the
	// drained-out remainder of the park (progress a blocking walker
	// would have idled through while the window was shut). Cumulative
	// across resumed segments. Always zero in blocking mode and in
	// fault-free runs.
	DrainedSteps int
	// Trajectory records intermediate estimates for convergence plots
	// (Figure 9) and cost-at-error-threshold extraction (Figures 2–14).
	Trajectory []Point
	// ZeroProbPaths counts TARW probability estimates that came back
	// zero and were skipped (diagnostic; see ESTIMATE-p discussion).
	ZeroProbPaths int
	// Degraded is true when the run hit an unrecoverable non-budget
	// fault mid-walk (e.g. a post-retry outage or a tripped circuit
	// breaker) and returned the partial estimate collected so far —
	// with truthful cumulative cost — instead of an error. DegradedBy
	// records the fault. Resume from Checkpoint to continue the run.
	Degraded   bool
	DegradedBy error
	// Stats is the client's full accounting (charged calls, retries,
	// rate-limit waits, circuit trips, virtual wait), accumulated
	// across resumed segments.
	Stats api.Stats
	// Heal counts the self-healing work the run performed under
	// platform churn (backtracks, reseeds, skipped walks, vanished
	// users, pruned dangling edges), accumulated across segments.
	Heal HealStats
	// Checkpoint is the resumable walk state at the moment the run
	// returned. Pass it to SRWOptions.Resume / TARWOptions.Resume on a
	// session over a fresh client to continue without repaying any
	// already-spent API calls.
	Checkpoint *Checkpoint
}

// degrade marks a result as a partial, fault-interrupted outcome.
func degrade(res Result, err error) Result {
	res.Degraded = true
	res.DegradedBy = err
	return res
}

// SRWOptions configures RunSRW.
type SRWOptions struct {
	// Ctx, when non-nil, is bound to the session's client before the
	// walk starts: cancellation propagates to every charged call, and a
	// cancelled walk returns a Degraded partial result (with checkpoint)
	// instead of hanging or erroring.
	Ctx context.Context
	// View picks the conceptual graph (social, term-induced, or
	// level-by-level — the last is Algorithm 1, MA-SRW).
	View GraphView
	// Seed drives the walker's randomness.
	Seed int64
	// Thin is the spacing between samples fed to the mark-and-recapture
	// size estimator for COUNT/SUM (reduces sample correlation).
	// Default 5. NaiveMR forces 1.
	Thin int
	// EmitEvery is the trajectory granularity in steps (default 50).
	EmitEvery int
	// MaxSteps optionally bounds the number of walk steps (0 = until
	// the client budget runs out).
	MaxSteps int
	// NaiveMR disables thinning and burn-in discarding for the size
	// estimator, reproducing the paper's M&R baseline behaviour.
	NaiveMR bool
	// GewekeThreshold is the burn-in criterion (default 0.1, the
	// paper's choice).
	GewekeThreshold float64
	// Graph optionally overrides the neighbor oracle (and the degrees
	// used for reweighting). Used by the Figure 4 ablation, which walks
	// a level-by-level graph with only a fraction of intra-level edges
	// removed. When set, View is ignored.
	Graph func(u int64) ([]int64, error)
	// Heal governs recovery when platform churn kills the walk's
	// current node. The zero value backtracks along the trail (up to
	// 32 entries) with unlimited heals.
	Heal HealPolicy
	// Resume continues a run from a prior SRW-family checkpoint: the
	// collected chain, walk position, and trajectory are restored, the
	// checkpoint's cached API responses are imported into the session's
	// client (so nothing already paid for is repaid), and cost/stats
	// accounting stays cumulative across segments.
	Resume *Checkpoint
	// Autosave, when enabled, persists a cumulative checkpoint every
	// EveryCalls charged API calls so a process crash forfeits at most
	// one autosave window of budget. See AutosavePolicy.
	Autosave AutosavePolicy
}

func (o SRWOptions) withDefaults() SRWOptions {
	if o.Thin == 0 {
		o.Thin = 5
	}
	if o.NaiveMR {
		o.Thin = 1
	}
	if o.EmitEvery == 0 {
		o.EmitEvery = 50
	}
	if o.GewekeThreshold == 0 {
		o.GewekeThreshold = 0.1
	}
	if o.MaxSteps == 0 {
		// Safety cap: once the client cache covers the walk's region,
		// steps are free and a budget-only loop would never end.
		o.MaxSteps = 100000
	}
	return o
}

// srwSample is one chain entry.
type srwSample struct {
	u      int64
	degree int
	match  bool
	value  float64
}

// RunSRW estimates the session's query with a simple random walk over
// the chosen graph view. With View == LevelView this is Algorithm 1
// (MA-SRW); with TermView/SocialView it is the corresponding baseline
// of Figures 2–3. AVG uses the degree-reweighted ratio estimator;
// COUNT and SUM additionally use mark-and-recapture size estimation
// (the only option available to a topology-oblivious walk, §5.1).
//
// The walk runs until the client budget is exhausted (or MaxSteps).
// Budget exhaustion is not an error: the result carries whatever
// estimate the spent budget bought. Likewise, an unrecoverable fault
// mid-walk (a post-retry transient, an outage, a tripped circuit
// breaker) does not abort the run: the result carries the partial
// estimate, flagged Degraded, with a Checkpoint to resume from.
// Errors are reserved for failures before any walk state exists
// (invalid query, failed seed search).
func RunSRW(s *Session, opts SRWOptions) (Result, error) {
	opts = opts.withDefaults()
	if opts.Ctx != nil {
		s.Client.WithContext(opts.Ctx)
	}

	heal := opts.Heal.withDefaults()

	var (
		res          Result
		chain        []srwSample
		traj         []Point
		priorCost    int
		priorStats   api.Stats
		priorHeal    HealStats
		segHeal      HealStats
		segments     int
		priorDrained int
		segDrained   int
		parkedNow    bool
		wasParked    bool
		resumeAt     int64
		haveResume   bool
	)
	if ck := opts.Resume; ck != nil {
		if ck.algo != algoSRW {
			return res, fmt.Errorf("core: cannot resume a %s checkpoint with RunSRW", ck.algo)
		}
		ck.restore(s)
		chain = append(chain, ck.chain...)
		traj = append(traj, ck.traj...)
		priorCost, priorStats, segments = ck.priorCost, ck.priorStats, ck.segments
		priorHeal = ck.priorHeal
		priorDrained = ck.priorDrained
		wasParked = ck.parked
		resumeAt, haveResume = ck.cur, ck.haveCur
	}
	baseVanished, basePruned := s.ChurnObserved()
	// Derive the RNG from the segment index so a resumed walk explores
	// fresh randomness instead of replaying the interrupted segment.
	rng := rand.New(rand.NewSource(opts.Seed + int64(segments)*0x9e3779b9))

	// Trajectory checkpoints start EmitEvery apart and grow ~5% per
	// emission, keeping the estimate-recomputation cost (O(chain) per
	// checkpoint) near-linear over long walks.
	nextEmit := len(chain) + opts.EmitEvery
	// snapshot builds a cumulative checkpoint of the walk as it stands —
	// the same state finalize returns, also handed to the autosave sink
	// mid-run. It is declared before the seed search so a pre-walk
	// throttle park can still produce a truthful cumulative checkpoint;
	// until the walker exists it records the resume position (if any)
	// unchanged.
	var w *walk.SimpleWalk
	snapshot := func() *Checkpoint {
		v, p := s.ChurnObserved()
		sh := segHeal
		sh.VanishedUsers = v - baseVanished
		sh.PrunedEdges = p - basePruned
		ck := &Checkpoint{
			algo:         algoSRW,
			segments:     segments + 1,
			priorCost:    priorCost + s.Client.Cost(),
			priorStats:   priorStats.Add(s.Client.Stats()),
			priorHeal:    priorHeal.Add(sh),
			priorDrained: priorDrained + segDrained,
			interval:     s.Interval,
			cache:        s.Client.ExportCache(),
			breaker:      s.Client.BreakerState(),
			traj:         append([]Point(nil), traj...),
			chain:        append([]srwSample(nil), chain...),
			cur:          resumeAt,
			haveCur:      haveResume,
			parked:       parkedNow,
		}
		if w != nil {
			ck.cur = w.Current()
			ck.haveCur = true
		}
		return ck
	}
	finalize := func() Result {
		ck := snapshot()
		res.Cost = ck.priorCost
		res.Stats = ck.priorStats
		res.Heal = ck.priorHeal
		res.Samples = len(chain)
		res.DrainedSteps = ck.priorDrained
		res.Trajectory = traj
		res.Estimate = math.NaN()
		if est, ok := estimateFromChain(s.Query.Agg, chain, opts); ok {
			res.Estimate = est
		}
		res.Checkpoint = ck
		return res
	}
	// lastSave tracks the cumulative-cost clock of the last persisted
	// checkpoint; a fresh segment starts its cadence window at the
	// resume point, not at zero.
	lastSave := priorCost

	seeds, err := s.Seeds()
	if err != nil {
		if errors.Is(err, api.ErrThrottled) {
			// A yield-mode throttle during the seed fetch: park before
			// any walk state exists. The checkpoint keeps the cumulative
			// books (and the cache snapshot, so the resumed seed search
			// repays nothing) and no resume position.
			parkedNow = true
			return degrade(finalize(), err), nil
		}
		return res, err
	}
	var start int64
	if haveResume {
		start = resumeAt
	} else {
		start, err = s.PickSeed(seeds, rng)
		if err != nil {
			if errors.Is(err, api.ErrThrottled) {
				// Same park, one step later: the seed search itself
				// throttled.
				parkedNow = true
				return degrade(finalize(), err), nil
			}
			res.Cost = s.Client.Cost()
			res.Stats = s.Client.Stats()
			return res, err
		}
	}

	oracle := opts.Graph
	if oracle == nil {
		oracle = s.Neighbors(opts.View)
	}
	w = walk.NewSimple(walk.GraphFunc(oracle), start, rng)

	// A segment resumed from a throttle park works the warm cache the
	// parked segment left behind. The walk step splits into a
	// cache-satisfiable probe (DrainReady: the transition is fully
	// answerable from cache) and a charged fetch; every probe-approved
	// step that indeed charged nothing is a drained step — progress the
	// park bought for free where a blocking walker would have idled.
	for {
		if opts.MaxSteps > 0 && len(chain) >= opts.MaxSteps {
			break
		}
		if s.Client.Exhausted() {
			break
		}
		probeFree := false
		costBefore := 0
		if wasParked && opts.Graph == nil {
			probeFree = s.DrainReady(opts.View, w.Current())
			costBefore = s.Client.Cost()
		}
		u, err := w.Step()
		switch {
		case errors.Is(err, api.ErrBudgetExhausted):
			return finalize(), nil
		case errors.Is(err, walk.ErrStuck):
			// The current node is a dead end. If churn killed it (a
			// fresh probe revealed the account vanished), heal per
			// policy; a plain dead end (isolated node, private-user
			// filtering) restarts from a fresh seed as always.
			churned := s.Vanished(w.Current())
			if churned {
				if heal.Mode == HealAbort {
					return degrade(finalize(), ErrNodeVanished), nil
				}
				if heal.MaxHeals > 0 && priorHeal.Events()+segHeal.Events() >= heal.MaxHeals {
					return degrade(finalize(), ErrChurnOverwhelmed), nil
				}
				if heal.Mode == HealBacktrack {
					v, ok, berr := backtrackTarget(s, chain, heal.MaxBacktrack, oracle)
					if errors.Is(berr, api.ErrBudgetExhausted) {
						// The budget died inside the heal: the checkpoint
						// position is the dead node, so the partial result
						// must be flagged Degraded (with the heal stats
						// collected so far intact), not returned as a
						// clean exhaustion.
						return degrade(finalize(), ErrBudgetMidHeal), nil
					}
					if berr != nil {
						return degrade(finalize(), berr), nil
					}
					if ok {
						segHeal.Backtracks++
						w.Jump(v)
						continue
					}
				}
			}
			ns, serr := s.PickSeed(seeds, rng)
			if errors.Is(serr, api.ErrBudgetExhausted) {
				if churned {
					// Same stranding as above, via the reseed path.
					return degrade(finalize(), ErrBudgetMidHeal), nil
				}
				return finalize(), nil
			}
			if serr != nil {
				return degrade(finalize(), serr), nil
			}
			if churned {
				segHeal.Reseeds++
			}
			w.Jump(ns)
			continue
		case err != nil:
			// A yield-mode throttle (api.ErrThrottled) is a park, not a
			// failure: the walk sits at a cache frontier waiting for the
			// rate-limit window. Mark the checkpoint so schedulers requeue
			// the unit for the window instead of treating it as wedged.
			parkedNow = errors.Is(err, api.ErrThrottled)
			return degrade(finalize(), err), nil
		}

		deg, match, value, err := s.sampleFacts(u, oracle)
		if errors.Is(err, api.ErrBudgetExhausted) {
			return finalize(), nil
		}
		if err != nil {
			parkedNow = errors.Is(err, api.ErrThrottled)
			return degrade(finalize(), err), nil
		}
		chain = append(chain, srwSample{u: u, degree: deg, match: match, value: value})
		if probeFree && s.Client.Cost() == costBefore {
			segDrained++
		}

		if len(chain) >= nextEmit {
			if est, ok := estimateFromChain(s.Query.Agg, chain, opts); ok {
				traj = append(traj, Point{Cost: priorCost + s.Client.Cost(), Estimate: est})
			}
			growth := nextEmit / 20
			if growth < opts.EmitEvery {
				growth = opts.EmitEvery
			}
			nextEmit += growth
		}

		if opts.Autosave.enabled() {
			if cum := priorCost + s.Client.Cost(); cum-lastSave >= opts.Autosave.EveryCalls {
				if err := opts.Autosave.Save(snapshot()); err != nil {
					return degrade(finalize(), fmt.Errorf("%w: %w", ErrAutosave, err)), nil
				}
				lastSave = cum
			}
		}
	}
	return finalize(), nil
}

// backtrackTarget scans the walk's own trail newest-first (at most max
// entries) for a node that still has live neighbors to continue from.
// Trail nodes are cached, so the scan is free unless churn invalidated
// an entry; vanished trail nodes are skipped outright. Returns ok=false
// when the whole scanned trail is dead (caller falls back to a seed).
func backtrackTarget(s *Session, chain []srwSample, max int, oracle func(int64) ([]int64, error)) (int64, bool, error) {
	scanned := 0
	for i := len(chain) - 1; i >= 0 && scanned < max; i-- {
		u := chain[i].u
		scanned++
		if s.Vanished(u) {
			continue
		}
		ns, err := oracle(u)
		if err != nil {
			return 0, false, err
		}
		if len(ns) > 0 {
			return u, true, nil
		}
	}
	return 0, false, nil
}

// sampleFacts returns the oracle-degree, match flag and value of u.
// The degree must match the graph the walk transitions on, since the
// ratio estimator reweights by the stationary distribution of that
// graph.
func (s *Session) sampleFacts(u int64, oracle func(int64) ([]int64, error)) (deg int, match bool, value float64, err error) {
	ns, err := oracle(u)
	if err != nil {
		return 0, false, 0, err
	}
	m, v, err := s.MatchValue(u)
	if err != nil {
		return 0, false, 0, err
	}
	return len(ns), m, v, nil
}

// estimateFromChain turns the walk chain into an aggregate estimate.
func estimateFromChain(agg query.Aggregate, chain []srwSample, opts SRWOptions) (float64, bool) {
	if len(chain) == 0 {
		return 0, false
	}
	work := chain
	if !opts.NaiveMR {
		// Discard the Geweke burn-in prefix (threshold 0.1, the paper's
		// criterion) before estimating.
		vals := make([]float64, len(chain))
		for i, c := range chain {
			if c.match {
				vals[i] = c.value
			}
		}
		step := len(chain) / 10
		if step < 1 {
			step = 1
		}
		cut := stats.GewekeBurnIn(vals, opts.GewekeThreshold, step)
		if cut < len(chain) {
			work = chain[cut:]
		}
	}

	var sumFMd, sumMd, sumInvD float64
	size := walk.NewSizeEstimator()
	for i, c := range work {
		if c.degree <= 0 {
			continue
		}
		d := float64(c.degree)
		if c.match {
			sumFMd += c.value / d
			sumMd += 1 / d
		}
		sumInvD += 1 / d
		if i%opts.Thin == 0 {
			size.Add(c.u, c.degree)
		}
	}
	if sumInvD == 0 {
		return 0, false
	}

	switch agg {
	case query.Avg:
		if sumMd == 0 {
			return 0, false
		}
		return sumFMd / sumMd, true
	case query.Count:
		n, ok := size.Estimate()
		if !ok {
			return 0, false
		}
		return n * (sumMd / sumInvD), true
	case query.Sum:
		n, ok := size.Estimate()
		if !ok {
			return 0, false
		}
		return n * (sumFMd / sumInvD), true
	}
	return 0, false
}

// RunMR runs the paper's mark-and-recapture COUNT baseline: the same
// level-by-level walk, but with the Katzir estimator fed every
// (correlated) step and no burn-in discarding — the straightforward
// adaptation of [15] the paper compares against in Figures 10 and 13.
func RunMR(s *Session, opts SRWOptions) (Result, error) {
	opts.NaiveMR = true
	return RunSRW(s, opts)
}
