// Alias-sharpened settlement: a token reserved on one ledger variable
// is discharged by a settlement call through an alias of that same
// ledger, but NOT through an unrelated ledger.
package budgetpath

import "api"

// settleThroughAlias reserves on led and refunds through led2, a copy
// of the same pointer. Points-to proves the two receivers denote the
// same ledger object, so the token is settled on every path: clean.
func settleThroughAlias(led *api.Ledger, short bool) error {
	grant, err := led.Reserve(4, 6)
	if err != nil {
		return err
	}
	led2 := led
	if short {
		return led2.Refund(4, grant)
	}
	return led2.Commit(4, grant)
}

// settleWrongLedger settles a different ledger than it reserved on;
// the points-to sets of the two parameters are disjoint, so the grant
// on led is still outstanding.
func settleWrongLedger(led, other *api.Ledger) error {
	grant, err := led.Reserve(5, 6) // want `ledger reservation can reach a return without Commit/Refund/Release on some path`
	if err != nil {
		return err
	}
	return other.Refund(5, grant)
}
