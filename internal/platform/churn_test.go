package platform

import (
	"testing"
)

func churnTestPlatform(t *testing.T) *Platform {
	t.Helper()
	p, err := New(Config{
		Seed:        7,
		NumUsers:    2000,
		HorizonDays: 60,
		Keywords: []KeywordConfig{
			{Name: "privacy", SeedsPerDay: 3, AffinityFrac: 0.3, InterestHigh: 0.8, AdoptProb: 0.3, RepeatMentionMean: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// observableState fingerprints the overlay as seen through its public
// accessors for a sample of users.
func observableState(c *ChurnState, n int64) []interface{} {
	var out []interface{}
	for u := int64(0); u < n; u++ {
		out = append(out, c.Gone(u), c.Protected(u))
		for _, v := range c.Neighbors(u) {
			out = append(out, v)
		}
	}
	out = append(out, c.Counts())
	return out
}

func equalState(a, b []interface{}) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestChurnDeterministicAndBatchInvariant: the overlay state at clock
// t must be a pure function of (seed, t) — identical across fresh
// replays and independent of how AdvanceTo calls were batched.
func TestChurnDeterministicAndBatchInvariant(t *testing.T) {
	p := churnTestPlatform(t)
	cfg := ChurnConfig{Rate: 0.5, Seed: 42}

	a := NewChurn(p, cfg)
	a.AdvanceTo(4000)

	b := NewChurn(p, cfg)
	for clk := 1; clk <= 4000; clk++ {
		b.AdvanceTo(clk) // one tick at a time
	}

	if a.Counts() != b.Counts() {
		t.Fatalf("batched %+v != stepped %+v", a.Counts(), b.Counts())
	}
	sa, sb := observableState(a, 300), observableState(b, 300)
	if !equalState(sa, sb) {
		t.Fatal("observable overlay state differs between batched and stepped advances")
	}
	if a.Counts().Total() == 0 {
		t.Fatal("no churn events applied at rate 0.5 over 4000 calls")
	}

	// A different seed must drift differently.
	c := NewChurn(p, ChurnConfig{Rate: 0.5, Seed: 43})
	c.AdvanceTo(4000)
	if equalState(sa, observableState(c, 300)) {
		t.Error("different churn seeds produced identical drift")
	}
}

// TestChurnAdvanceMonotone: non-increasing clocks are no-ops.
func TestChurnAdvanceMonotone(t *testing.T) {
	p := churnTestPlatform(t)
	c := NewChurn(p, ChurnConfig{Rate: 1, Seed: 9})
	c.AdvanceTo(500)
	before := c.Counts()
	c.AdvanceTo(500)
	c.AdvanceTo(100)
	if c.Counts() != before {
		t.Error("re-advancing to an old clock applied new events")
	}
	if c.Clock() != 500 {
		t.Errorf("clock = %d, want 500", c.Clock())
	}
}

// TestChurnOverlaySemantics: vanished users drop out of neighbor
// lists, removed edges disappear symmetrically, added edges appear
// symmetrically, and the base platform is never mutated.
func TestChurnOverlaySemantics(t *testing.T) {
	p := churnTestPlatform(t)
	baseDeg := make(map[int64]int)
	for u := int64(0); u < int64(p.NumUsers()); u++ {
		baseDeg[u] = len(p.Social.Neighbors(u))
	}

	c := NewChurn(p, ChurnConfig{Rate: 2, Seed: 5})
	c.AdvanceTo(3000)
	counts := c.Counts()
	if counts.Vanished == 0 || counts.EdgesRemoved == 0 || counts.EdgesAdded == 0 {
		t.Fatalf("sweep too quiet to test overlay semantics: %+v", counts)
	}

	for u := int64(0); u < int64(p.NumUsers()); u++ {
		for _, v := range c.Neighbors(u) {
			if c.Gone(v) {
				t.Fatalf("vanished user %d still listed as neighbor of %d", v, u)
			}
			found := false
			for _, w := range c.Neighbors(v) {
				if w == u {
					found = true
					break
				}
			}
			if !c.Gone(u) && !found {
				t.Fatalf("overlay edge %d-%d not symmetric", u, v)
			}
		}
	}

	// Base platform untouched.
	for u := int64(0); u < int64(p.NumUsers()); u++ {
		if len(p.Social.Neighbors(u)) != baseDeg[u] {
			t.Fatalf("churn mutated the base graph at user %d", u)
		}
	}
}

// TestChurnPostDeletion: deleted posts come off the newest end and the
// source slices stay intact.
func TestChurnPostDeletion(t *testing.T) {
	p := churnTestPlatform(t)
	c := NewChurn(p, ChurnConfig{Rate: 3, Seed: 11, PostDeleteWeight: 1,
		VanishWeight: 0.001, ProtectWeight: 0.001, UnprotectWeight: 0.001,
		EdgeAddWeight: 0.001, EdgeRemoveWeight: 0.001})
	c.AdvanceTo(2000)
	if c.Counts().PostsDeleted == 0 {
		t.Fatal("no posts deleted")
	}

	casc := p.Cascade("privacy")
	checked := 0
	for _, u := range casc.Adopters() {
		orig := casc.Posts[u]
		vis := c.VisiblePosts("privacy", u, orig)
		if len(vis) > len(orig) {
			t.Fatalf("user %d gained posts under churn", u)
		}
		if len(vis) < len(orig) {
			checked++
			// Deletions take the newest tail: the kept prefix matches.
			for i := range vis {
				if vis[i] != orig[i] {
					t.Fatalf("user %d: deletion did not preserve the oldest prefix", u)
				}
			}
		}
		// FilterTimeline agrees with VisiblePosts on a single-keyword
		// timeline.
		ft := c.FilterTimeline(u, orig)
		if len(ft) != len(vis) {
			t.Fatalf("user %d: FilterTimeline kept %d posts, VisiblePosts %d", u, len(ft), len(vis))
		}
	}
	if checked == 0 {
		t.Fatal("no user observably lost posts")
	}
}

// TestChurnDisabled: a zero-rate config is inert.
func TestChurnDisabled(t *testing.T) {
	p := churnTestPlatform(t)
	c := NewChurn(p, ChurnConfig{})
	c.AdvanceTo(100000)
	if c.Counts().Total() != 0 {
		t.Error("disabled churn applied events")
	}
}
