package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// UnlockPath proves that every sync.Mutex/RWMutex Lock (and RLock)
// reaches a matching Unlock (RUnlock) on every CFG path out of the
// function. It complements lockorder: lockorder's call-graph walk finds
// cross-function ordering cycles, unlockpath finds the intra-function
// bug class it cannot see — an early return, break, or forgotten branch
// that leaves the mutex held.
//
// The dataflow is a forward may-held analysis over the CFG:
//
//	lattice per lock: absent < heldDefer < heldNoDefer
//
// A Lock gens heldNoDefer; `defer mu.Unlock()` weakens it to heldDefer
// (released on every exit, including panics); a direct Unlock kills it.
// Joins take the max, so a lock held-without-defer on ANY incoming path
// stays reportable — except that a lock absent on one side stays at the
// other side's status (no obligation is invented for paths that never
// locked). A call to an in-program function whose summary may release
// the same lock kills it too (conservative: the helper owns the
// unlock), and a *deferred* call to such a function counts as a
// deferred release. Leaks are reported per non-panic exit edge at the
// acquisition site; panic exits are exempt because a deferred unlock is
// the only sound cleanup there and poisoned-lock hygiene after a panic
// is its own problem.
var UnlockPath = &Analyzer{
	Name: "unlockpath",
	Doc: "every Lock/RLock must reach a matching Unlock/RUnlock on all " +
		"control-flow paths out of the function",
	Run: runUnlockPath,
}

const (
	lockHeldDefer   = 1 // held, deferred release registered
	lockHeldNoDefer = 2 // held, no deferred release yet
)

// lockFact is one held lock's abstract status.
type lockFact struct {
	status int
	// pos is the earliest acquisition site, for reporting.
	pos token.Pos
}

func joinLockFact(a, b lockFact) lockFact {
	f := a
	if b.status > f.status {
		f.status = b.status
	}
	if b.pos != token.NoPos && (f.pos == token.NoPos || b.pos < f.pos) {
		f.pos = b.pos
	}
	return f
}

// lockState maps lock keys (lockID, with "#r" appended for the read
// side of an RWMutex) to their status.
type lockState struct {
	held map[string]lockFact
}

func (s *lockState) Clone() FlowState {
	c := &lockState{held: make(map[string]lockFact, len(s.held))}
	for k, v := range s.held {
		c.held[k] = v
	}
	return c
}

func (s *lockState) JoinFrom(src FlowState) bool {
	o := src.(*lockState)
	changed := false
	for k, ov := range o.vars() {
		cur, ok := s.held[k]
		merged := joinLockFact(cur, ov)
		if !ok || merged != cur {
			s.held[k] = merged
			changed = true
		}
	}
	return changed
}

func (s *lockState) vars() map[string]lockFact { return s.held }

// unlockCtx is the per-function analysis: transfer interprets lock,
// unlock, and defer statements against the whole-program summaries.
type unlockCtx struct {
	prog *Program
	pkg  *Package
}

func (u *unlockCtx) Direction() FlowDirection { return FlowForward }
func (u *unlockCtx) Boundary() FlowState      { return &lockState{held: map[string]lockFact{}} }

func (u *unlockCtx) Transfer(n ast.Node, f FlowState) FlowState {
	st := f.(*lockState)
	switch x := n.(type) {
	case *ast.DeferStmt:
		u.deferCall(x.Call, st)
	default:
		if e, ok := n.(ast.Expr); ok {
			u.scanCalls(e, st)
		} else if stmt, ok := n.(ast.Stmt); ok {
			ast.Inspect(stmt, func(m ast.Node) bool {
				switch y := m.(type) {
				case *ast.FuncLit:
					return false
				case *ast.DeferStmt:
					u.deferCall(y.Call, st)
					return false
				case *ast.CallExpr:
					u.oneCall(y, st)
				}
				return true
			})
		}
	}
	return st
}

// scanCalls applies lock effects of calls inside a bare expression node
// (an if/for condition or switch tag).
func (u *unlockCtx) scanCalls(e ast.Expr, st *lockState) {
	ast.Inspect(e, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok {
			u.oneCall(call, st)
		}
		return true
	})
}

// lockKeyOf names the lock a Lock/Unlock-family call operates on,
// suffixing "#r" for the RWMutex read side, or "" if unnameable.
func (u *unlockCtx) lockKeyOf(call *ast.CallExpr, names map[string]bool) (string, bool) {
	e, ok := syncLockCall(u.pkg.Info, call, names)
	if !ok {
		return "", false
	}
	id := lockID(u.pkg, e)
	if id == "" {
		return "", false
	}
	sel := unparen(call.Fun).(*ast.SelectorExpr)
	if strings.HasPrefix(sel.Sel.Name, "R") { // RLock / RUnlock
		id += "#r"
	}
	return id, true
}

// oneCall applies a non-deferred call's lock effect.
func (u *unlockCtx) oneCall(call *ast.CallExpr, st *lockState) {
	if key, ok := u.lockKeyOf(call, lockNames); ok {
		cur, held := st.held[key]
		if !held || cur.status < lockHeldNoDefer {
			// Re-acquisition while already held is lockorder's
			// self-deadlock report; don't double up here.
			st.held[key] = lockFact{status: lockHeldNoDefer, pos: call.Pos()}
		}
		return
	}
	if key, ok := u.lockKeyOf(call, unlockNames); ok {
		delete(st.held, key)
		return
	}
	// A callee that may (transitively) release one of our held locks
	// owns that unlock: drop the obligation rather than report a leak
	// the helper discharges.
	u.calleeReleases(call, st, func(key string) { delete(st.held, key) })
}

// deferCall applies a deferred call's lock effect: the release happens
// on every exit, so the obligation weakens to heldDefer instead of
// dying at this program point.
func (u *unlockCtx) deferCall(call *ast.CallExpr, st *lockState) {
	if key, ok := u.lockKeyOf(call, unlockNames); ok {
		if cur, held := st.held[key]; held {
			st.held[key] = lockFact{status: lockHeldDefer, pos: cur.pos}
		} else {
			// defer registered before the Lock (legal, runs last): treat
			// as covering any later acquisition of the same lock.
			st.held[key] = lockFact{status: lockHeldDefer, pos: token.NoPos}
		}
		return
	}
	if key, ok := u.lockKeyOf(call, lockNames); ok {
		// defer mu.Lock() — perverse but legal; it acquires at exit and
		// certainly leaks.
		st.held[key] = lockFact{status: lockHeldNoDefer, pos: call.Pos()}
		return
	}
	u.calleeReleases(call, st, func(key string) {
		if cur, held := st.held[key]; held {
			st.held[key] = lockFact{status: lockHeldDefer, pos: cur.pos}
		}
	})
}

// calleeReleases invokes apply for every held lock key some candidate
// callee of call may release.
func (u *unlockCtx) calleeReleases(call *ast.CallExpr, st *lockState, apply func(key string)) {
	callees := u.prog.CalleesOf(call)
	if len(callees) == 0 {
		return
	}
	var releases map[string]bool
	for _, g := range callees {
		gs := u.prog.SummaryOf(g)
		for id := range gs.Releases {
			if releases == nil {
				releases = map[string]bool{}
			}
			releases[id] = true
		}
	}
	if releases == nil {
		return
	}
	for _, key := range sortedKeys(st.held2bool()) {
		id := strings.TrimSuffix(key, "#r")
		if releases[id] {
			apply(key)
		}
	}
}

func (s *lockState) held2bool() map[string]bool {
	m := make(map[string]bool, len(s.held))
	for k := range s.held {
		m[k] = true
	}
	return m
}

func runUnlockPath(pass *Pass) error {
	prog := pass.Prog
	if prog == nil {
		return nil
	}
	for _, f := range prog.Funcs {
		if f.Pkg.Types != pass.Pkg || f.Body == nil {
			continue
		}
		u := &unlockCtx{prog: prog, pkg: f.Pkg}
		cfg := prog.CFGOf(f)
		sol := SolveDataflow(cfg, u)
		reported := map[string]bool{}
		for _, e := range cfg.Exit.Preds {
			if e.Panic {
				continue // deferred unlocks are the only sound cleanup there
			}
			out := sol.Out[e.From]
			if out == nil {
				continue // path unreachable
			}
			st := out.(*lockState)
			for _, key := range sortedKeys(st.held2bool()) {
				fact := st.held[key]
				if fact.status != lockHeldNoDefer || !fact.pos.IsValid() {
					continue
				}
				rk := key + "\x00" + pass.Fset.Position(fact.pos).String()
				if reported[rk] {
					continue
				}
				reported[rk] = true
				verb := "Unlock"
				if strings.HasSuffix(key, "#r") {
					verb = "RUnlock"
				}
				pass.Reportf(fact.pos,
					"%s locked here can reach a return without %s on some path; unlock on every path or defer the unlock",
					strings.TrimSuffix(key, "#r"), verb)
			}
		}
	}
	return nil
}
