// Package store is the durable persistence layer for estimation
// checkpoints: versioned, checksummed snapshots written with the
// classic tmp + fsync + atomic-rename discipline into an A/B
// generation rotation, so a crash at any instant — even mid-write —
// leaves at least one intact generation on disk. The package also
// ships its own adversaries: a seed-deterministic storage fault
// injector (FaultFS) and a crash harness (RunWithCrashes) that kills
// runs at chosen points on the charged-call clock and proves recovery
// is lossless.
//
// Everything is keyed to the virtual call clock; the store never
// consults wall-clock time.
package store

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
)

// FS is the minimal filesystem surface the store writes through,
// abstracted so tests can interpose in-memory and fault-injecting
// implementations under the identical write discipline.
type FS interface {
	// ReadFile returns the file's contents (fs.ErrNotExist when the
	// file is absent).
	ReadFile(name string) ([]byte, error)
	// WriteFile durably creates or replaces the file: the data must be
	// flushed to stable storage before a nil return.
	WriteFile(name string, data []byte) error
	// Rename atomically replaces newname with oldname's content.
	Rename(oldname, newname string) error
	// Remove deletes the file (fs.ErrNotExist when absent).
	Remove(name string) error
}

// OSFS is the real-disk FS: WriteFile fsyncs the file, Rename fsyncs
// the parent directory so the name swap itself is durable.
type OSFS struct{}

// ReadFile implements FS.
func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// WriteFile implements FS with an fsync before close.
func (OSFS) WriteFile(name string, data []byte) error {
	f, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Rename implements FS; after the rename the parent directory is
// fsynced (best-effort — some filesystems refuse directory syncs) so
// the new directory entry survives power loss.
func (OSFS) Rename(oldname, newname string) error {
	if err := os.Rename(oldname, newname); err != nil {
		return err
	}
	dir, err := os.Open(filepath.Dir(newname))
	if err != nil {
		return nil
	}
	_ = dir.Sync()
	return dir.Close()
}

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// MemFS is an in-memory FS for tests and the crash harness: file
// contents survive across Store instances (simulated process
// restarts) for as long as the MemFS itself lives. Goroutine-safe.
type MemFS struct {
	mu    sync.Mutex
	files map[string][]byte
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string][]byte)}
}

// ReadFile implements FS.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("memfs: %s: %w", name, fs.ErrNotExist)
	}
	return append([]byte(nil), data...), nil
}

// WriteFile implements FS.
func (m *MemFS) WriteFile(name string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = append([]byte(nil), data...)
	return nil
}

// Rename implements FS.
func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[oldname]
	if !ok {
		return fmt.Errorf("memfs: %s: %w", oldname, fs.ErrNotExist)
	}
	m.files[newname] = data
	delete(m.files, oldname)
	return nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("memfs: %s: %w", name, fs.ErrNotExist)
	}
	delete(m.files, name)
	return nil
}
