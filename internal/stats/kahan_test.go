package stats

import (
	"math"
	"testing"
)

// TestKahanSumCancellation feeds the classic pathological case where
// naive summation loses everything to cancellation.
func TestKahanSumCancellation(t *testing.T) {
	xs := []float64{1e16, 1.0, -1e16}
	var naive float64
	for _, x := range xs {
		naive += x
	}
	if naive == 1.0 {
		t.Fatalf("test case is not pathological: naive sum got %v", naive)
	}
	if got := KahanSum(xs); got != 1.0 {
		t.Errorf("KahanSum(%v) = %v, want 1.0", xs, got)
	}

	// Neumaier's own stress case: the big terms cancel, the units remain.
	ys := []float64{1.0, 1e100, 1.0, -1e100}
	if got := KahanSum(ys); got != 2.0 {
		t.Errorf("KahanSum(%v) = %v, want 2.0", ys, got)
	}
}

func TestKahanAdderMatchesSum(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.3, 1e-9, -0.6, 1e9, -1e9}
	var a KahanAdder
	for _, x := range xs {
		a.Add(x)
	}
	if got, want := a.Sum(), KahanSum(xs); got != want {
		t.Errorf("KahanAdder.Sum() = %v, KahanSum = %v", got, want)
	}
}

func TestKahanSumEmptyAndSpecial(t *testing.T) {
	if got := KahanSum(nil); got != 0 {
		t.Errorf("KahanSum(nil) = %v, want 0", got)
	}
	if got := KahanSum([]float64{math.Inf(1), 1}); !math.IsInf(got, 1) {
		t.Errorf("KahanSum with +Inf = %v, want +Inf", got)
	}
}

// TestMeanUsesCompensation pins the user-visible payoff: Mean over a
// sequence that defeats naive accumulation.
func TestMeanUsesCompensation(t *testing.T) {
	xs := []float64{1e16, 1.0, -1e16, 1.0}
	if got := Mean(xs); got != 0.5 {
		t.Errorf("Mean(%v) = %v, want 0.5", xs, got)
	}
}
