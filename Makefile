# Tier-1 gate: what CI runs (.github/workflows/ci.yml) and what every
# change must keep green.
.PHONY: ci build vet lint lint-dataflow lint-pointsto fmt-check test race bench chaos churn crash fuzz parallel ratelimit serve

ci: build vet lint race

build:
	go build ./...

vet:
	go vet ./...

# Domain-invariant analyzers (determinism, budget accounting, virtual
# time, interprocedural context/error/lock flow, path-sensitive
# CFG/dataflow rules — see DESIGN.md §8, §11, and §13). Diagnostics
# are checked against the committed baseline
# (.mba-lint-baseline.json); new findings AND stale baseline entries
# both fail, so the debt only ratchets down. After fixing baselined
# findings, regenerate with:
#   go run ./cmd/mba-lint -baseline .mba-lint-baseline.json -update-baseline ./...
# Also runnable as a vet tool (single-package mode; interprocedural
# facts degrade conservatively there):
#   go build -o bin/mba-lint ./cmd/mba-lint
#   go vet -vettool=$(PWD)/bin/mba-lint ./...
# staticcheck/govulncheck run when installed (CI pins them; local runs
# skip silently if the tools are absent).
lint: fmt-check
	go run ./cmd/mba-lint -baseline .mba-lint-baseline.json -factcache .mba-lint-cache.json ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "staticcheck not installed; skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
		else echo "govulncheck not installed; skipping"; fi

# Just the CFG/dataflow analyzers (DESIGN.md §13): path-sensitive
# ordering taint, lock/unlock pairing, and ledger settlement. A fast
# focused pass for iterating on concurrency or ledger code.
lint-dataflow:
	go run ./cmd/mba-lint -only dettaint,unlockpath,budgetpath ./...

# Just the points-to-backed concurrency analyzers (DESIGN.md §16):
# consistent locksets on goroutine-shared state and channel/WaitGroup
# lifecycle. -timings shows where the whole-program solve goes.
lint-pointsto:
	go run ./cmd/mba-lint -only sharedguard,chanlife -timings ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	go test ./...

race:
	go test -race ./...

# Short fuzz sessions (CI runs the same): the query parser, the
# checkpoint decoder (every decode failure must be a typed error —
# ErrCorruptCheckpoint / ErrCheckpointMismatch — never a panic), and
# the Andersen points-to solver (termination, determinism, closed
# subset fixpoint on arbitrary constraint graphs).
fuzz:
	go test ./internal/query -run='^$$' -fuzz=FuzzParseQuery -fuzztime=10s
	go test ./internal/store -run='^$$' -fuzz=FuzzCheckpointDecode -fuzztime=10s
	go test ./internal/serve -run='^$$' -fuzz=FuzzServeRequestDecode -fuzztime=10s
	go test ./internal/lint -run='^$$' -fuzz=FuzzPointsToSolver -fuzztime=10s

# Full evaluation regeneration (bench scale; slow).
bench:
	go test -bench=. -benchmem

# Quick chaos sweep at test scale.
chaos:
	go run ./cmd/mba-bench -scale test -trials 1 -budget 8000 -only chaos

# Quick churn sweep at test scale (self-healing walks + invariant
# auditor over a mutating platform).
churn:
	go run ./cmd/mba-bench -scale test -trials 1 -budget 9000 -only churn

# Crash-recovery sweep at test scale: kills runs at deterministic
# call-clock points (some through injected storage faults), restarts
# from the durable store, and has the auditor enforce bit-identical
# recovery — zero repaid calls for the save-aligned clean scenarios.
crash:
	go run ./cmd/mba-bench -scale test -trials 1 -budget 6000 -only crash

# Fleet parallelism sweep: same logical walker plan at 1..8 goroutines;
# the auditor fails the run if the merged estimate is not bit-identical
# across parallelism levels. Writes BENCH_parallel.json (the one
# wall-clock artifact) next to the deterministic table/CSV.
parallel:
	go run ./cmd/mba-bench -scale test -trials 1 -budget 20000 -only parallel

# Cooperative scheduling sweep: blocking vs parked walkers under 429
# storms at one execution slot. The auditor enforces the schedule books
# (trace conservation, makespan replay) and bit-identical fault-free
# estimates across modes; the table shows the >= 5x makespan collapse
# in the ratelimit-10% scenario.
ratelimit:
	go run ./cmd/mba-bench -scale test -trials 1 -budget 8000 -only ratelimit

# Multi-tenant estimation service sweep: calm/busy/overload/fault load
# tiers through mba-serve's admission, caching, and shedding machinery.
# The auditor enforces the serving contract per tier (no silent drops,
# free well-formed sheds, conserved ledgers, per-tenant quotas,
# bit-identical answers vs. offline oracle runs); writes the
# deterministic BENCH_serve.json next to the table/CSV.
serve:
	go run ./cmd/mba-bench -scale test -trials 1 -budget 40000 -only serve
