module mba

go 1.22
