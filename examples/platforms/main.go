// Platform comparison: the same aggregate question asked through the
// Twitter, Google+ and Tumblr interface presets. The estimation logic
// is identical; what changes is the cost structure — Google+'s
// activity API returns at most 20 results per call versus 200 for
// Twitter's timeline API, and Tumblr allows one request per ten
// seconds — reproducing the absolute-cost differences the paper
// observes in Figures 12–14.
//
//	go run ./examples/platforms
package main

import (
	"fmt"
	"log"

	"mba"
)

func main() {
	cfg := mba.DefaultPlatformConfig()
	cfg.Seed = 7
	cfg.NumUsers = 25000
	cfg.GenderKnownProb = 0.6 // Google+-style profiles expose gender
	fmt.Println("generating platform...")
	p, err := mba.NewPlatform(cfg)
	if err != nil {
		log.Fatal(err)
	}

	q := mba.Avg("privacy", mba.DisplayNameLength)
	truth, err := p.GroundTruth(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquery: %s (truth %.2f)\n\n", q, truth)
	fmt.Printf("%-8s %10s %12s %14s\n", "preset", "estimate", "API calls", "wall-clock")

	for _, pr := range []struct {
		name   string
		preset mba.APIPreset
	}{
		{"twitter", mba.Twitter},
		{"gplus", mba.GPlus},
		{"tumblr", mba.Tumblr},
	} {
		est, err := p.Estimate(q, mba.Options{
			Algorithm: mba.MASRW,
			Preset:    pr.preset,
			Budget:    120000,
			Seed:      11,
		})
		if err != nil {
			log.Fatalf("%s: %v", pr.name, err)
		}
		fmt.Printf("%-8s %10.2f %12d %14v\n", pr.name, est.Value, est.Cost, est.VirtualDuration)
	}

	fmt.Println("\nSame estimator, same platform — the page sizes and rate limits")
	fmt.Println("of each API dictate both the call count and the (simulated)")
	fmt.Println("wall-clock time a study would take.")
}
