package experiments

import (
	"context"
	"fmt"
	"math"
	"time"

	"mba/internal/api"
	"mba/internal/audit"
	"mba/internal/core"
	"mba/internal/fleet"
	"mba/internal/query"
	"mba/internal/stats"
	"mba/internal/workload"
)

// ratelimitUnits is the fleet shape of the sweep: twelve independent
// walkers sharing the budget, replayed through ONE execution slot.
// One slot is the adversarial case for a blocking fleet — every
// rate-limit wait holds the only slot — and therefore the honest
// baseline for the cooperative scheduler's makespan claim.
const ratelimitUnits = 12

// ratelimitScenario is one fault configuration of the cooperative
// scheduling sweep: the fault-free control (where both modes must be
// bit-identical), the chaos sweep's pure 429 storm, and its layered
// storm (429s mixed with transients, outages, slow calls, and private
// profiles, breaker armed).
type ratelimitScenario struct {
	name   string
	faults api.Faults
	policy api.RetryPolicy
}

func ratelimitScenarios(seed int64) []ratelimitScenario {
	base := api.DefaultRetryPolicy()
	breaker := base
	breaker.BreakerThreshold = 5
	breaker.BreakerCooldown = time.Minute
	return []ratelimitScenario{
		{name: "baseline", faults: api.Faults{Seed: seed}, policy: base},
		{name: "ratelimit-10%", faults: api.Faults{RateLimitProb: 0.10, Seed: seed}, policy: base},
		{name: "storm", faults: api.Faults{
			TransientProb:   0.08,
			RateLimitProb:   0.04,
			OutageMeanGap:   5000,
			OutageLength:    20,
			SlowCallProb:    0.05,
			SlowCallLatency: 2 * time.Second,
			TruncateProb:    0.02,
			PrivateProb:     0.05,
			Seed:            seed,
		}, policy: breaker},
	}
}

// RateLimit is the cooperative-scheduling sweep: each fault scenario
// runs the same MA-SRW walker fleet twice — blocking mode (a throttled
// walker holds its slot through the whole rate-limit window) and
// cooperative mode (a throttled walker parks, yields the slot, and
// drains free warm-cache steps on resume) — at equal budget, and the
// table reports the virtual-makespan collapse the tentpole claims:
// under ratelimit-10% the cooperative fleet's makespan must come in at
// least 5x below blocking, while the fault-free baseline stays
// bit-identical across modes (audited, not assumed).
func RateLimit(opts Options) (Table, error) {
	opts = opts.withDefaults()
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	p, err := workload.Get(opts.Scale)
	if err != nil {
		return Table{}, err
	}

	q := query.AvgQuery("privacy", query.Followers)
	truth, err := p.GroundTruth(q)
	if err != nil {
		return Table{}, err
	}
	walk := func(ctx context.Context, s *core.Session, seed int64, ck *core.Checkpoint) (core.Result, error) {
		return core.RunSRW(s, core.SRWOptions{View: core.LevelView, Seed: seed, Resume: ck, Ctx: ctx})
	}
	preset := api.Twitter()

	t := Table{
		ID:    "ratelimit",
		Title: "Cooperative scheduling: blocking vs parked walkers under 429 storms (virtual makespan at one execution slot, equal budget)",
		Columns: []string{
			"Scenario", "Mode", "Estimate", "RelErr", "Cost", "Samples",
			"Makespan", "Speedup", "ThrottleWait", "Parks", "Drained", "Audit",
		},
	}

	aud := audit.Auditor{Budget: opts.Budget}
	var violations []string
	for _, sc := range ratelimitScenarios(opts.Seed) {
		var modeEstimates []float64
		var blockMakespan time.Duration
		for _, coop := range []bool{false, true} {
			mode := "block"
			if coop {
				mode = "coop"
			}
			opts.logf("ratelimit: %s %s", sc.name, mode)
			policy := sc.policy
			res, err := fleet.Run(ctx, fleet.Config{
				Platform:    p,
				Preset:      preset,
				Faults:      sc.faults,
				Query:       q,
				Interval:    opts.Interval,
				Walk:        walk,
				Budget:      opts.Budget,
				Seed:        opts.Seed,
				Units:       ratelimitUnits,
				Parallelism: 1,
				Cooperative: coop,
				StallWait:   4 * preset.RateLimitWindow,
				Policy:      &policy,
				MaxResumes:  chaosMaxResumes,
			})
			if err != nil {
				return Table{}, fmt.Errorf("ratelimit %s %s: %w", sc.name, mode, err)
			}

			checks := 0
			for _, rep := range []*audit.Report{aud.CheckFleet(res), aud.CheckSchedule(res, preset)} {
				checks += rep.Checks
				for _, v := range rep.Violations {
					violations = append(violations, fmt.Sprintf("%s/%s: %s", sc.name, mode, v))
				}
			}
			modeEstimates = append(modeEstimates, res.Estimate)

			speedup := "-"
			if !coop {
				blockMakespan = res.Makespan
			} else if res.Makespan > 0 {
				speedup = fmt.Sprintf("%.1fx", float64(blockMakespan)/float64(res.Makespan))
			}
			relErr := math.NaN()
			if !math.IsNaN(res.Estimate) {
				relErr = stats.RelativeError(res.Estimate, truth)
			}
			t.Rows = append(t.Rows, []string{
				sc.name,
				mode,
				fmt.Sprintf("%.4f", res.Estimate),
				fmt.Sprintf("%.4f", relErr),
				fmt.Sprintf("%d", res.Cost),
				fmt.Sprintf("%d", res.Samples),
				res.Makespan.Round(time.Second).String(),
				speedup,
				res.Stats.ThrottleWait.Round(time.Second).String(),
				fmt.Sprintf("%d", res.Parks),
				fmt.Sprintf("%d", res.DrainedSteps),
				fmt.Sprintf("ok(%d)", checks),
			})
		}
		if sc.name == "baseline" {
			// The fault-free control is the tentpole's safety half:
			// cooperative scheduling must not move the estimate by one
			// ulp when nothing throttles.
			if rep := aud.CheckParallelDeterminism(modeEstimates); !rep.OK() {
				violations = append(violations, fmt.Sprintf("baseline block-vs-coop: %v", rep.Err()))
			}
		}
	}
	if len(violations) > 0 {
		return t, fmt.Errorf("ratelimit: auditor found %d invariant violations; first: %s",
			len(violations), violations[0])
	}
	return t, nil
}
