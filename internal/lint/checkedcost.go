package lint

import (
	"go/ast"
)

// CheckedCost flags charged api.Client calls whose error result is
// discarded — a bare call statement, `_` in the error position, or a
// call fired through go/defer. Client.Search/Connections/Timeline
// return ErrBudgetExhausted and ErrCircuitOpen through that error; a
// dropped one corrupts Degraded partial-result semantics and lets a
// run keep walking on a spent budget.
var CheckedCost = &Analyzer{
	Name: "checkedcost",
	Doc: "flag discarded errors from charged api.Client methods; dropped " +
		"ErrBudget/ErrCircuitOpen corrupts Degraded/Resume semantics",
	Run: runCheckedCost,
}

func runCheckedCost(pass *Pass) error {
	charged := func(call *ast.CallExpr) (string, bool) {
		return pass.MethodOn(call, "api", "Client", chargedEndpoints)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					if m, ok := charged(call); ok {
						pass.Reportf(call.Pos(),
							"result and error of charged api.Client.%s are discarded; a dropped ErrBudget/ErrCircuitOpen breaks Degraded/Resume accounting", m)
					}
				}
			case *ast.GoStmt:
				if m, ok := charged(st.Call); ok {
					pass.Reportf(st.Call.Pos(),
						"charged api.Client.%s fired via go discards its error; budget failures must be observed", m)
				}
			case *ast.DeferStmt:
				if m, ok := charged(st.Call); ok {
					pass.Reportf(st.Call.Pos(),
						"charged api.Client.%s fired via defer discards its error; budget failures must be observed", m)
				}
			case *ast.AssignStmt:
				if len(st.Rhs) != 1 {
					return true
				}
				call, ok := st.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				m, ok := charged(call)
				if !ok {
					return true
				}
				// The error is the call's last result, assigned to the
				// last LHS position.
				last := st.Lhs[len(st.Lhs)-1]
				if id, ok := last.(*ast.Ident); ok && id.Name == "_" {
					pass.Reportf(call.Pos(),
						"error of charged api.Client.%s assigned to _; check it — ErrBudgetExhausted and ErrCircuitOpen carry Degraded/Resume state", m)
				}
			}
			return true
		})
	}
	return nil
}
