package experiments

import (
	"fmt"

	"mba/internal/api"
	"mba/internal/core"
	"mba/internal/query"
	"mba/internal/stats"
	"mba/internal/workload"
)

// tarwSpec builds the MA-TARW run spec used across the walk figures:
// Algorithm 3 with the pilot-based interval selection enabled. The
// estimator profile follows the aggregate: AVG runs on the
// adjacent-level lattice with tight weight winsorization (the ratio
// form cancels the clipping), while COUNT/SUM need the full
// cross-level lattice for support and a loose clip so the Hansen–
// Hurwitz mass is preserved (see EXPERIMENTS.md).
func tarwSpec(q query.Query, preset api.Preset, opts Options) runSpec {
	tarw := core.TARWOptions{SelectInterval: true}
	if q.Agg != query.Avg {
		tarw.AllowCrossLevel = true
		tarw.WeightClip = 100
		tarw.PEstimates = 5
	}
	return runSpec{
		algo:     MATARW,
		q:        q,
		preset:   preset,
		interval: opts.Interval,
		budget:   opts.Budget,
		tarw:     tarw,
	}
}

// headToHead builds the common "error grid × {MA-SRW, MA-TARW} for two
// keywords" layout of Figures 8, 11, 12 and 14.
func headToHead(opts Options, id, title string, preset api.Preset, mkQuery func(kw string) query.Query) (Table, error) {
	opts = opts.withDefaults()
	p, err := workload.Get(opts.Scale)
	if err != nil {
		return Table{}, err
	}
	keywords := []string{"privacy", "new york"}
	t := Table{
		ID:    id,
		Title: title,
		Columns: []string{
			"RelErr",
			"privacy MA-SRW", "privacy MA-TARW",
			"new york MA-SRW", "new york MA-TARW",
		},
	}
	type curve struct{ srw, tarw []int }
	curves := make(map[string]curve)
	for _, kw := range keywords {
		q := mkQuery(kw)
		truth, err := p.GroundTruth(q)
		if err != nil {
			return Table{}, err
		}
		opts.logf("%s: %s MA-SRW", id, kw)
		srw, err := costCurve(p, runSpec{algo: MASRW, q: q, preset: preset, interval: opts.Interval, budget: opts.Budget}, truth, opts)
		if err != nil {
			return Table{}, err
		}
		opts.logf("%s: %s MA-TARW", id, kw)
		tarw, err := costCurve(p, tarwSpec(q, preset, opts), truth, opts)
		if err != nil {
			return Table{}, err
		}
		curves[kw] = curve{srw: srw, tarw: tarw}
	}
	for i, e := range opts.Errors {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", e),
			fmtCost(curves["privacy"].srw[i]), fmtCost(curves["privacy"].tarw[i]),
			fmtCost(curves["new york"].srw[i]), fmtCost(curves["new york"].tarw[i]),
		})
	}
	return t, nil
}

// countComparison builds the "error grid × {MA-SRW, MA-TARW, M&R}"
// layout of Figures 10 and 13.
func countComparison(opts Options, id, title string, preset api.Preset, q query.Query) (Table, error) {
	opts = opts.withDefaults()
	opts.Budget *= 2 // COUNT needs mark-and-recapture collisions
	p, err := workload.Get(opts.Scale)
	if err != nil {
		return Table{}, err
	}
	truth, err := p.GroundTruth(q)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      id,
		Title:   title,
		Columns: []string{"RelErr", "MA-SRW", "MA-TARW", "M&R"},
	}
	curves := make(map[Algo][]int)
	for _, algo := range []Algo{MASRW, MATARW, MR} {
		opts.logf("%s: %s", id, algo)
		spec := runSpec{algo: algo, q: q, preset: preset, interval: opts.Interval, budget: opts.Budget}
		if algo == MATARW {
			spec = tarwSpec(q, preset, opts)
		}
		costs, err := costCurve(p, spec, truth, opts)
		if err != nil {
			return Table{}, err
		}
		curves[algo] = costs
	}
	for i, e := range opts.Errors {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", e),
			fmtCost(curves[MASRW][i]),
			fmtCost(curves[MATARW][i]),
			fmtCost(curves[MR][i]),
		})
	}
	return t, nil
}

// Figure7 reproduces Figure 7: the daily mention frequency of the
// three figure keywords over the observation window (weekly sums keep
// the text rendering compact; the CSV has the same rows).
func Figure7(opts Options) (Table, error) {
	opts = opts.withDefaults()
	p, err := workload.Get(opts.Scale)
	if err != nil {
		return Table{}, err
	}
	keywords := []string{"privacy", "boston", "new york"}
	t := Table{
		ID:      "figure7",
		Title:   "Keyword mention frequency per week",
		Columns: append([]string{"Week"}, keywords...),
	}
	series := make(map[string][]int)
	weeks := 0
	for _, kw := range keywords {
		days, err := p.MentionsPerDay(kw)
		if err != nil {
			return Table{}, err
		}
		var wk []int
		for d := 0; d < len(days); d += 7 {
			sum := 0
			for j := d; j < d+7 && j < len(days); j++ {
				sum += days[j]
			}
			wk = append(wk, sum)
		}
		series[kw] = wk
		weeks = len(wk)
	}
	for w := 0; w < weeks; w++ {
		row := []string{fmt.Sprintf("%d", w)}
		for _, kw := range keywords {
			row = append(row, fmt.Sprintf("%d", series[kw][w]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Figure8 reproduces Figure 8: query cost vs relative error for
// AVG(followers), MA-SRW against MA-TARW, on privacy and new york.
func Figure8(opts Options) (Table, error) {
	return headToHead(opts, "figure8",
		"Twitter: AVG(followers) — MA-SRW vs MA-TARW",
		api.Twitter(),
		func(kw string) query.Query { return query.AvgQuery(kw, query.Followers) })
}

// Figure9 reproduces Figure 9: the estimate trajectory (estimated
// AVG(followers) of privacy users versus query cost) for one MA-SRW
// and one MA-TARW run, against the true value.
func Figure9(opts Options) (Table, error) {
	opts = opts.withDefaults()
	p, err := workload.Get(opts.Scale)
	if err != nil {
		return Table{}, err
	}
	q := query.AvgQuery("privacy", query.Followers)
	truth, err := p.GroundTruth(q)
	if err != nil {
		return Table{}, err
	}
	budget := opts.Budget
	t := Table{
		ID:      "figure9",
		Title:   fmt.Sprintf("Twitter: estimated AVG(followers) vs query cost (truth %.1f)", truth),
		Columns: []string{"Algo", "Cost", "Estimate", "RelErr"},
	}
	for _, algo := range []Algo{MASRW, MATARW} {
		opts.logf("figure9: %s", algo)
		spec := runSpec{algo: algo, q: q, interval: opts.Interval, budget: budget, seed: opts.Seed}
		if algo == MATARW {
			spec = tarwSpec(q, api.Twitter(), opts)
			spec.budget = budget
			spec.seed = opts.Seed
		}
		res, err := run(p, spec)
		if err != nil {
			return Table{}, err
		}
		for _, pt := range res.Trajectory {
			t.Rows = append(t.Rows, []string{
				string(algo),
				fmt.Sprintf("%d", pt.Cost),
				fmt.Sprintf("%.1f", pt.Estimate),
				fmt.Sprintf("%.3f", stats.RelativeError(pt.Estimate, truth)),
			})
		}
	}
	return t, nil
}

// Figure10 reproduces Figure 10: COUNT(users who mentioned privacy) —
// MA-SRW vs MA-TARW vs the M&R baseline.
func Figure10(opts Options) (Table, error) {
	return countComparison(opts, "figure10",
		"Twitter: COUNT(users), privacy — MA-SRW vs MA-TARW vs M&R",
		api.Twitter(), query.CountQuery("privacy"))
}

// Figure11 reproduces Figure 11: AVG(display-name length) on Twitter —
// a low-variance measure, so far fewer queries are needed than for
// AVG(followers).
func Figure11(opts Options) (Table, error) {
	return headToHead(opts, "figure11",
		"Twitter: AVG(display-name length) — MA-SRW vs MA-TARW",
		api.Twitter(),
		func(kw string) query.Query { return query.AvgQuery(kw, query.DisplayNameLength) })
}
