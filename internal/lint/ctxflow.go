package lint

import (
	"go/ast"
	"go/types"
)

// ctxflowPkgs are the package basenames whose charged call paths must
// thread the caller's context.Context. These are the layers between
// the public entry points (mba.Estimate, fleet.Run, experiment sweeps)
// and the charged api.Client endpoints; a context minted or dropped in
// the middle of that path severs deadline and cancellation propagation
// from every walk the paper's cost model meters.
var ctxflowPkgs = map[string]bool{
	"mba": true, "core": true, "walk": true, "fleet": true, "experiments": true,
}

// CtxFlow is the interprocedural context-threading analyzer. Using the
// whole-program summaries it enforces two rules on every function
// whose call paths (transitively) reach a charged api.Client endpoint:
//
//  1. No context.Background()/context.TODO() below the top level. The
//     only sanctioned use is the entry-point nil-default idiom
//     `if ctx == nil { ctx = context.Background() }`, which keeps nil
//     a valid Options zero value without severing a caller-supplied
//     context.
//  2. A function that receives a context.Context and incurs charged
//     calls must actually use that context — a swallowed parameter
//     looks cancellable at the call site but is not.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "charged call paths must thread the caller's context.Context; no " +
		"context.Background()/TODO below the top level, no swallowed ctx params",
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	prog := pass.Prog
	if prog == nil || !ctxflowPkgs[pass.PkgBase(pass.Pkg.Path())] {
		return nil
	}
	if pass.Pkg.Name() == "main" {
		return nil // a main package IS the top level; Background is legal there
	}
	for _, f := range prog.Funcs {
		if f.Pkg.Types != pass.Pkg || f.Body == nil {
			continue
		}
		sum := prog.SummaryOf(f)
		if !sum.IncursCost {
			continue
		}
		if sum.ConsumesCtx && !sum.UsesCtx {
			pass.Reportf(f.Pos(),
				"%s receives a context.Context and (transitively) makes charged api.Client calls but never threads the context; cancellation and deadlines are silently severed here", f.Name())
		}
		reportFreshContexts(pass, f)
	}
	return nil
}

// reportFreshContexts flags context.Background()/context.TODO() calls
// in f's body, excepting the nil-default guard idiom. ast.Inspect
// calls the visitor with nil after a node's children, which maintains
// the ancestor stack; nested closures are skipped (they are their own
// Funcs and get their own walk).
func reportFreshContexts(pass *Pass, f *Func) {
	var stack []ast.Node
	ast.Inspect(f.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // skipped without pushing: no pop callback follows
		}
		stack = append(stack, n)
		if call, ok := n.(*ast.CallExpr); ok {
			if name, ok := freshContextCall(pass.TypesInfo, call); ok && !isNilGuardedDefault(pass.TypesInfo, call, stack) {
				pass.Reportf(call.Pos(),
					"context.%s() on a charged call path severs the caller's cancellation and deadline; thread the ctx parameter (nil-default it only behind an `if ctx == nil` guard at the entry point)", name)
			}
		}
		return true
	})
}

// freshContextCall matches context.Background() / context.TODO().
func freshContextCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if name != "Background" && name != "TODO" {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || importedPkgPath(info, id) != "context" {
		return "", false
	}
	return name, true
}

// isNilGuardedDefault recognizes the sanctioned entry-point idiom
//
//	if ctx == nil { ctx = context.Background() }
//
// i.e. the call is the sole RHS of an assignment to an existing
// context variable, and that assignment sits under an if whose
// condition tests the same variable against nil.
func isNilGuardedDefault(info *types.Info, call *ast.CallExpr, stack []ast.Node) bool {
	var target types.Object
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.AssignStmt:
			if target != nil {
				continue
			}
			if len(n.Rhs) != 1 || len(n.Lhs) != 1 || unparen(n.Rhs[0]) != call {
				return false
			}
			id, ok := n.Lhs[0].(*ast.Ident)
			if !ok {
				return false
			}
			target = info.Uses[id]
			if target == nil {
				target = info.Defs[id]
			}
			if target == nil {
				return false
			}
		case *ast.IfStmt:
			if target == nil {
				continue
			}
			if cond, ok := unparen(n.Cond).(*ast.BinaryExpr); ok && nilCheckOf(info, cond, target) {
				return true
			}
		case *ast.FuncLit:
			return false // guard must be in the same function as the call
		}
	}
	return false
}

// nilCheckOf reports whether cond is `v == nil` or `nil == v`.
func nilCheckOf(info *types.Info, cond *ast.BinaryExpr, v types.Object) bool {
	if cond.Op.String() != "==" {
		return false
	}
	matches := func(e ast.Expr) bool {
		id, ok := unparen(e).(*ast.Ident)
		return ok && info.Uses[id] == v
	}
	isNil := func(e ast.Expr) bool {
		id, ok := unparen(e).(*ast.Ident)
		return ok && id.Name == "nil" && info.Uses[id] == types.Universe.Lookup("nil")
	}
	return (matches(cond.X) && isNil(cond.Y)) || (matches(cond.Y) && isNil(cond.X))
}
