// Privacy study: the paper's §1 motivating scenario. A social
// researcher wants to know how public attention to "privacy" changed
// before and after a surveillance-leak news event — but the platform's
// search API only reaches one week back, so the historical answers
// must be estimated by sampling user timelines.
//
//	go run ./examples/privacystudy
package main

import (
	"fmt"
	"log"

	"mba"
)

func main() {
	// The simulated platform mirrors the paper's observation window
	// (Jan 1 – Oct 31, 2013). Its "privacy" cascade has a built-in
	// attention spike around day 155 (the Snowden revelations broke in
	// early June 2013).
	cfg := mba.DefaultPlatformConfig()
	cfg.Seed = 2013
	cfg.NumUsers = 30000
	fmt.Println("generating platform...")
	p, err := mba.NewPlatform(cfg)
	if err != nil {
		log.Fatal(err)
	}

	const leakDay = 155
	before := mba.TimeWindow(mba.Count("privacy"), 0, leakDay)
	after := mba.TimeWindow(mba.Count("privacy"), leakDay, 304)

	fmt.Println("\nHow many users mentioned privacy before vs after the leak?")
	for _, study := range []struct {
		label string
		q     mba.Query
	}{
		{"before (Jan-May)", before},
		{"after  (Jun-Oct)", after},
	} {
		truth, err := p.GroundTruth(study.q)
		if err != nil {
			log.Fatal(err)
		}
		est, err := p.Estimate(study.q, mba.Options{
			Algorithm: mba.MASRW,
			Budget:    25000,
			Seed:      7,
		})
		if err != nil {
			log.Fatalf("%s: %v", study.label, err)
		}
		fmt.Printf("  %s: ≈ %6.0f users (truth %6.0f, %d API calls)\n",
			study.label, est.Value, truth, est.Cost)
	}

	// Were the people who engaged after the leak better connected?
	fmt.Println("\nAverage follower count of privacy mentioners per period:")
	for _, study := range []struct {
		label string
		q     mba.Query
	}{
		{"before", mba.TimeWindow(mba.Avg("privacy", mba.Followers), 0, leakDay)},
		{"after ", mba.TimeWindow(mba.Avg("privacy", mba.Followers), leakDay, 304)},
	} {
		truth, err := p.GroundTruth(study.q)
		if err != nil {
			log.Fatal(err)
		}
		est, err := p.Estimate(study.q, mba.Options{
			Algorithm: mba.MASRW,
			Budget:    25000,
			Seed:      8,
		})
		if err != nil {
			log.Fatalf("%s: %v", study.label, err)
		}
		fmt.Printf("  %s: ≈ %.1f followers (truth %.1f)\n", study.label, est.Value, truth)
	}
}
