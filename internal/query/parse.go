package query

import (
	"fmt"
	"strconv"
	"strings"

	"mba/internal/model"
)

// measuresByName indexes the built-in measures under their report
// names, so the textual query form round-trips through ParseQuery.
var measuresByName = map[string]Measure{
	One.Name:                  One,
	Followers.Name:            Followers,
	DisplayNameLength.Name:    DisplayNameLength,
	Age.Name:                  Age,
	KeywordPostCount.Name:     KeywordPostCount,
	KeywordPostLikes.Name:     KeywordPostLikes,
	KeywordPostMeanLikes.Name: KeywordPostMeanLikes,
}

// ParseQuery parses the SQL-like form produced by Query.String:
//
//	SELECT AVG(followers) FROM users WHERE timeline CONTAINS "privacy"
//	  [IN [d0h0,d7h0)] [AND gender=male] [AND age in [18,34]] [AND followers>=100]
//
// Measures and predicates are resolved by name against the package's
// built-ins; ParseQuery(q.String()) reconstructs q for every query
// built from them. It is the entry point for CLI-supplied and
// config-file queries.
func ParseQuery(s string) (Query, error) {
	var q Query
	rest, ok := strings.CutPrefix(s, "SELECT ")
	if !ok {
		return q, fmt.Errorf("query: missing SELECT in %q", s)
	}
	open := strings.IndexByte(rest, '(')
	if open < 0 {
		return q, fmt.Errorf("query: missing aggregate argument list in %q", s)
	}
	switch rest[:open] {
	case "COUNT":
		q.Agg = Count
	case "SUM":
		q.Agg = Sum
	case "AVG":
		q.Agg = Avg
	default:
		return q, fmt.Errorf("query: unknown aggregate %q", rest[:open])
	}
	rest = rest[open+1:]
	close := strings.IndexByte(rest, ')')
	if close < 0 {
		return q, fmt.Errorf("query: unterminated aggregate argument in %q", s)
	}
	m, ok := measuresByName[rest[:close]]
	if !ok {
		return q, fmt.Errorf("query: unknown measure %q", rest[:close])
	}
	q.Measure = m

	rest, ok = strings.CutPrefix(rest[close+1:], " FROM users WHERE timeline CONTAINS ")
	if !ok {
		return q, fmt.Errorf("query: missing keyword condition in %q", s)
	}
	quoted, err := strconv.QuotedPrefix(rest)
	if err != nil {
		return q, fmt.Errorf("query: malformed keyword literal in %q: %w", s, err)
	}
	if q.Keyword, err = strconv.Unquote(quoted); err != nil {
		return q, fmt.Errorf("query: malformed keyword literal in %q: %w", s, err)
	}
	rest = rest[len(quoted):]

	if win, ok := strings.CutPrefix(rest, " IN ["); ok {
		end := strings.IndexByte(win, ')')
		comma := strings.IndexByte(win, ',')
		if end < 0 || comma < 0 || comma > end {
			return q, fmt.Errorf("query: malformed window in %q", s)
		}
		from, err := model.ParseTick(win[:comma])
		if err != nil {
			return q, err
		}
		to, err := model.ParseTick(win[comma+1 : end])
		if err != nil {
			return q, err
		}
		q.Window = model.Window{From: from, To: to}
		rest = win[end+1:]
	}

	for rest != "" {
		var cond string
		cond, ok = strings.CutPrefix(rest, " AND ")
		if !ok {
			return q, fmt.Errorf("query: trailing garbage %q", rest)
		}
		if i := strings.Index(cond, " AND "); i >= 0 {
			cond, rest = cond[:i], cond[i:]
		} else {
			rest = ""
		}
		p, err := parsePredicate(cond)
		if err != nil {
			return q, err
		}
		q.Where = append(q.Where, p)
	}
	return q, nil
}

func parsePredicate(s string) (Predicate, error) {
	switch {
	case s == MaleOnly.Name:
		return MaleOnly, nil
	case s == FemaleOnly.Name:
		return FemaleOnly, nil
	case strings.HasPrefix(s, "age in ["):
		body := strings.TrimPrefix(s, "age in [")
		body, ok := strings.CutSuffix(body, "]")
		if !ok {
			return Predicate{}, fmt.Errorf("query: malformed age predicate %q", s)
		}
		lo, hi, ok := strings.Cut(body, ",")
		if !ok {
			return Predicate{}, fmt.Errorf("query: malformed age predicate %q", s)
		}
		l, err1 := strconv.Atoi(lo)
		h, err2 := strconv.Atoi(hi)
		if err1 != nil || err2 != nil {
			return Predicate{}, fmt.Errorf("query: malformed age predicate %q", s)
		}
		return AgeBetween(l, h), nil
	case strings.HasPrefix(s, "followers>="):
		n, err := strconv.Atoi(strings.TrimPrefix(s, "followers>="))
		if err != nil {
			return Predicate{}, fmt.Errorf("query: malformed followers predicate %q", s)
		}
		return MinFollowers(n), nil
	}
	return Predicate{}, fmt.Errorf("query: unknown predicate %q", s)
}
