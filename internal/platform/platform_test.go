package platform

import (
	"math"
	"math/rand"
	"testing"

	"mba/internal/model"
	"mba/internal/query"
)

// smallConfig is a fast platform for unit tests.
func smallConfig() Config {
	return Config{
		Seed:                  42,
		NumUsers:              3000,
		NumCommunities:        20,
		IntraEdgesPerUser:     5,
		InterEdgesPerUser:     1.2,
		HorizonDays:           120,
		TimelineCap:           3200,
		BackgroundPostsPerDay: 1.0,
		GenderKnownProb:       0.5,
		Keywords: []KeywordConfig{
			{Name: "privacy", SeedsPerDay: 0.8, Spikes: []Spike{{Day: 60, DurationDays: 5, Multiplier: 12}}},
		},
	}
}

func mustPlatform(t *testing.T, cfg Config) *Platform {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{NumUsers: 1, NumCommunities: 1, Keywords: []KeywordConfig{{Name: "x", SeedsPerDay: 1}}}); err == nil {
		t.Error("NumUsers=1 should error")
	}
	cfg := smallConfig()
	cfg.NumCommunities = cfg.NumUsers + 1
	if _, err := New(cfg); err == nil {
		t.Error("too many communities should error")
	}
	cfg = smallConfig()
	cfg.Keywords = []KeywordConfig{{Name: "", SeedsPerDay: 1}}
	if _, err := New(cfg); err == nil {
		t.Error("empty keyword should error")
	}
	cfg = smallConfig()
	cfg.Keywords = []KeywordConfig{{Name: "x", SeedsPerDay: 0}}
	if _, err := New(cfg); err == nil {
		t.Error("zero seed rate should error")
	}
}

func TestDeterminism(t *testing.T) {
	p1 := mustPlatform(t, smallConfig())
	p2 := mustPlatform(t, smallConfig())
	if p1.Social.NumEdges() != p2.Social.NumEdges() {
		t.Errorf("edge counts differ: %d vs %d", p1.Social.NumEdges(), p2.Social.NumEdges())
	}
	c1, c2 := p1.Cascades["privacy"], p2.Cascades["privacy"]
	if len(c1.First) != len(c2.First) {
		t.Fatalf("adopter counts differ: %d vs %d", len(c1.First), len(c2.First))
	}
	for u, tk := range c1.First {
		if c2.First[u] != tk {
			t.Fatalf("first mention differs for user %d", u)
		}
	}
	if p1.Users[17].Profile.DisplayName != p2.Users[17].Profile.DisplayName {
		t.Error("profiles differ across identical seeds")
	}
}

func TestSocialGraphConnectedAndSized(t *testing.T) {
	p := mustPlatform(t, smallConfig())
	if p.Social.NumNodes() != p.NumUsers() {
		t.Errorf("nodes = %d, want %d", p.Social.NumNodes(), p.NumUsers())
	}
	comps := p.Social.Components()
	if len(comps) != 1 {
		t.Errorf("social graph has %d components, want 1", len(comps))
	}
	avg := p.Social.AvgDegree()
	if avg < 5 || avg > 30 {
		t.Errorf("avg degree = %v, want within [5,30]", avg)
	}
}

func TestSocialGraphCommunityStructure(t *testing.T) {
	p := mustPlatform(t, smallConfig())
	labels := make(map[int64]int, p.NumUsers())
	for i, u := range p.Users {
		labels[int64(i)] = u.Community
	}
	q := p.Social.Modularity(labels)
	if q < 0.3 {
		t.Errorf("modularity = %v, want >= 0.3 (planted communities)", q)
	}
}

func TestDegreeHeavyTail(t *testing.T) {
	p := mustPlatform(t, smallConfig())
	maxDeg := 0
	for _, u := range p.Social.Nodes() {
		if d := p.Social.Degree(u); d > maxDeg {
			maxDeg = d
		}
	}
	if float64(maxDeg) < 4*p.Social.AvgDegree() {
		t.Errorf("max degree %d not heavy-tailed vs avg %.1f", maxDeg, p.Social.AvgDegree())
	}
}

func TestCascadeBasicShape(t *testing.T) {
	p := mustPlatform(t, smallConfig())
	c := p.Cascades["privacy"]
	if c == nil {
		t.Fatal("cascade missing")
	}
	frac := float64(len(c.First)) / float64(p.NumUsers())
	if frac < 0.005 || frac > 0.5 {
		t.Errorf("adopter fraction = %.3f, want selective but nonempty", frac)
	}
	for u, first := range c.First {
		posts := c.Posts[u]
		if len(posts) == 0 {
			t.Fatalf("adopter %d has no posts", u)
		}
		if posts[0].Time != first {
			t.Fatalf("first post time %d != First %d", posts[0].Time, first)
		}
		for i := 1; i < len(posts); i++ {
			if posts[i].Time < posts[i-1].Time {
				t.Fatalf("posts out of order for user %d", u)
			}
		}
		for _, post := range posts {
			if post.Keyword != "privacy" || post.Author != u {
				t.Fatalf("bad post metadata: %+v", post)
			}
			if post.Time >= p.Horizon {
				t.Fatalf("post beyond horizon")
			}
		}
	}
}

func TestTermSubgraphRecall(t *testing.T) {
	// The paper's Table 2 reports LCC recall between 81% and 97%.
	p := mustPlatform(t, smallConfig())
	sub, err := p.TermSubgraph("privacy")
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumNodes() != len(p.Cascades["privacy"].First) {
		t.Errorf("subgraph nodes = %d, want %d", sub.NumNodes(), len(p.Cascades["privacy"].First))
	}
	lcc := sub.LargestComponent()
	recall := float64(len(lcc)) / float64(sub.NumNodes())
	if recall < 0.6 {
		t.Errorf("LCC recall = %.2f, want >= 0.6 (paper: 0.81-0.97)", recall)
	}
	t.Logf("adopters=%d recall=%.2f", sub.NumNodes(), recall)
	if _, err := p.TermSubgraph("nope"); err == nil {
		t.Error("unknown keyword should error")
	}
}

func TestMentionsPerDaySpikes(t *testing.T) {
	p := mustPlatform(t, smallConfig())
	days, err := p.MentionsPerDay("privacy")
	if err != nil {
		t.Fatal(err)
	}
	if len(days) != 120 {
		t.Fatalf("days = %d, want 120", len(days))
	}
	var before, during float64
	for d := 40; d < 60; d++ {
		before += float64(days[d])
	}
	for d := 60; d < 65; d++ {
		during += float64(days[d])
	}
	before /= 20
	during /= 5
	if during < 2*before {
		t.Errorf("spike not visible: before=%.1f during=%.1f", before, during)
	}
	if _, err := p.MentionsPerDay("nope"); err == nil {
		t.Error("unknown keyword should error")
	}
}

func TestGroundTruthCountAndAvg(t *testing.T) {
	p := mustPlatform(t, smallConfig())
	c := p.Cascades["privacy"]
	count, err := p.GroundTruth(query.CountQuery("privacy"))
	if err != nil {
		t.Fatal(err)
	}
	if int(count) != len(c.First) {
		t.Errorf("COUNT = %v, want %d", count, len(c.First))
	}
	avg, err := p.GroundTruth(query.AvgQuery("privacy", query.Followers))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for u := range c.First {
		sum += float64(p.Users[u].Profile.Followers)
	}
	want := sum / float64(len(c.First))
	if math.Abs(avg-want) > 1e-9 {
		t.Errorf("AVG followers = %v, want %v", avg, want)
	}
	// SUM of keyword post counts = total posts.
	sumPosts, err := p.GroundTruth(query.SumQuery("privacy", query.KeywordPostCount))
	if err != nil {
		t.Fatal(err)
	}
	var totalPosts int
	for _, ps := range c.Posts {
		totalPosts += len(ps)
	}
	if int(sumPosts) != totalPosts {
		t.Errorf("SUM posts = %v, want %d", sumPosts, totalPosts)
	}
}

func TestGroundTruthWindowAndPredicate(t *testing.T) {
	p := mustPlatform(t, smallConfig())
	w := model.Window{From: 0, To: 60 * model.Day}
	full, _ := p.GroundTruth(query.CountQuery("privacy"))
	q := query.CountQuery("privacy")
	q.Window = w
	windowed, err := p.GroundTruth(q)
	if err != nil {
		t.Fatal(err)
	}
	if windowed <= 0 || windowed >= full {
		t.Errorf("windowed COUNT = %v, full = %v; want 0 < windowed < full", windowed, full)
	}
	qm := query.CountQuery("privacy")
	qm.Where = []query.Predicate{query.MaleOnly}
	males, err := p.GroundTruth(qm)
	if err != nil {
		t.Fatal(err)
	}
	if males <= 0 || males >= full {
		t.Errorf("male COUNT = %v, full = %v", males, full)
	}
}

func TestGroundTruthErrors(t *testing.T) {
	p := mustPlatform(t, smallConfig())
	if _, err := p.GroundTruth(query.Query{}); err == nil {
		t.Error("invalid query should error")
	}
	// AVG over empty set.
	q := query.AvgQuery("privacy", query.Followers)
	q.Window = model.Window{From: 1, To: 2} // almost surely empty
	if _, err := p.GroundTruth(q); err == nil {
		// Could legitimately be non-empty; check emptiness first.
		cq := query.CountQuery("privacy")
		cq.Window = q.Window
		if c, _ := p.GroundTruth(cq); c == 0 {
			t.Error("AVG over empty set should error")
		}
	}
}

func TestTimelineVisibility(t *testing.T) {
	cfg := smallConfig()
	cfg.TimelineCap = 50 // aggressive cap to force truncation
	cfg.BackgroundPostsPerDay = 3
	p := mustPlatform(t, cfg)
	c := p.Cascades["privacy"]
	truncated := 0
	for u := range c.First {
		tl := p.Timeline(u)
		if tl.Profile.ID != u {
			t.Fatalf("timeline profile mismatch")
		}
		if tl.Truncated {
			truncated++
		}
		if len(tl.Posts) > len(c.Posts[u]) {
			t.Fatalf("visible posts exceed actual posts")
		}
	}
	if truncated == 0 {
		t.Error("aggressive cap should truncate some timelines")
	}
	// With no cap, nothing is truncated and all posts are visible.
	cfg.TimelineCap = 0
	p2 := mustPlatform(t, cfg)
	for u := range p2.Cascades["privacy"].First {
		tl := p2.Timeline(u)
		if tl.Truncated {
			t.Fatal("uncapped timeline reported truncated")
		}
		if len(tl.Posts) != len(p2.Cascades["privacy"].Posts[u]) {
			t.Fatal("uncapped timeline missing posts")
		}
	}
}

func TestGroundTruthVisibleCloseToFull(t *testing.T) {
	// With the realistic 3200 cap the truncation bias should be small —
	// the paper's §2 argument.
	p := mustPlatform(t, smallConfig())
	full, _ := p.GroundTruth(query.CountQuery("privacy"))
	vis, err := p.GroundTruthVisible(query.CountQuery("privacy"))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full-vis)/full > 0.05 {
		t.Errorf("visibility bias too large: full=%v visible=%v", full, vis)
	}
}

func TestIntraLevelEdgesShareNeighbors(t *testing.T) {
	// The paper's Table 2 (column 2) reports that endpoints of
	// intra-level (same-bucket) edges share significantly more common
	// neighbors than endpoints of other edges — the structural fact
	// behind the edge taxonomy of §4.2.1. Use a larger platform so the
	// statistic is stable.
	cfg := smallConfig()
	cfg.NumUsers = 8000
	cfg.NumCommunities = 40
	p := mustPlatform(t, cfg)
	c := p.Cascades["privacy"]
	sub, _ := p.TermSubgraph("privacy")
	var intraCN, intraTotal, otherCN, otherTotal float64
	sub.Edges(func(u, v int64) bool {
		cn := float64(sub.CommonNeighbors(u, v))
		if c.First[u]/model.Day == c.First[v]/model.Day {
			intraTotal++
			intraCN += cn
		} else {
			otherTotal++
			otherCN += cn
		}
		return true
	})
	if intraTotal < 20 || otherTotal < 20 {
		t.Skip("not enough edges to compare")
	}
	intraAvg := intraCN / intraTotal
	otherAvg := otherCN / otherTotal
	t.Logf("avg common neighbors: intra-level=%.2f other=%.2f (edges %d/%d)",
		intraAvg, otherAvg, int(intraTotal), int(otherTotal))
	if intraAvg <= otherAvg {
		t.Errorf("intra-level edges should share more common neighbors: %.2f vs %.2f",
			intraAvg, otherAvg)
	}
}

func TestAssignCommunitiesCoversAll(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	comm := assignCommunities(rng, 1000, 10)
	if len(comm) != 1000 {
		t.Fatalf("len = %d", len(comm))
	}
	seen := make(map[int]int)
	for _, c := range comm {
		if c < 0 || c >= 10 {
			t.Fatalf("community out of range: %d", c)
		}
		seen[c]++
	}
	if len(seen) != 10 {
		t.Errorf("only %d communities populated", len(seen))
	}
	// Zipf sizes: community 0 should be the largest.
	if seen[0] <= seen[9] {
		t.Errorf("sizes not skewed: c0=%d c9=%d", seen[0], seen[9])
	}
}

func TestPoisson(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		sum += float64(poisson(rng, 3.5))
	}
	mean := sum / float64(n)
	if math.Abs(mean-3.5) > 0.1 {
		t.Errorf("poisson mean = %v, want 3.5", mean)
	}
	if poisson(rng, 0) != 0 {
		t.Error("poisson(0) should be 0")
	}
	if poisson(rng, -1) != 0 {
		t.Error("poisson(<0) should be 0")
	}
}

func TestHashKeywordStable(t *testing.T) {
	if hashKeyword("privacy") != hashKeyword("privacy") {
		t.Error("hash not stable")
	}
	if hashKeyword("privacy") == hashKeyword("boston") {
		t.Error("hash collision between test keywords")
	}
	if hashKeyword("x") < 0 {
		t.Error("hash should be non-negative")
	}
}

func TestRandomDisplayName(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		name := randomDisplayName(rng)
		if len(name) < 2 || len(name) > 40 {
			t.Fatalf("display name %q has unreasonable length", name)
		}
	}
}
