package workload

import (
	"fmt"
	"math/rand"

	"mba/internal/query"
)

// MixConfig parameterises a deterministic multi-tenant query mix for
// service experiments. The same config always yields the same items.
type MixConfig struct {
	// Seed drives every random choice in the mix.
	Seed int64
	// N is the number of requests to generate.
	N int
	// Tenants are cycled through pseudo-randomly; must be non-empty.
	Tenants []string
	// HotFrac is the fraction of requests drawn from the three hot
	// figure keywords; the remainder walks the catalog's long tail.
	// Hot traffic concentrates on a small query space, which is what
	// gives result caches and single-flight coalescing something to do.
	HotFrac float64
	// MeanGapNs is the mean virtual inter-arrival gap in nanoseconds;
	// each gap is jittered uniformly in [gap/2, 3*gap/2).
	MeanGapNs int64
	// Budgets are the candidate per-request budgets; defaults to
	// {400, 800, 1600} when empty.
	Budgets []int
}

// MixItem is one generated request: tenant, canonical query text,
// budget, and virtual arrival time. It deliberately avoids importing
// the serving layer so the generator stays dependency-light.
type MixItem struct {
	Tenant    string
	Query     string
	Budget    int
	ArrivalNs int64
}

// hotKeywords are the three figure keywords — the head of the
// popularity distribution.
var hotKeywords = []string{"privacy", "new york", "boston"}

// Mix generates a seed-deterministic multi-tenant request stream with
// rising virtual arrival times.
func Mix(cfg MixConfig) ([]MixItem, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("workload: mix needs N > 0, got %d", cfg.N)
	}
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("workload: mix needs at least one tenant")
	}
	if cfg.HotFrac < 0 || cfg.HotFrac > 1 {
		return nil, fmt.Errorf("workload: HotFrac %v outside [0,1]", cfg.HotFrac)
	}
	if cfg.MeanGapNs < 0 {
		return nil, fmt.Errorf("workload: negative MeanGapNs %d", cfg.MeanGapNs)
	}
	budgets := cfg.Budgets
	if len(budgets) == 0 {
		budgets = []int{400, 800, 1600}
	}
	tail := append(Table2Keywords(), Table3Keywords()...)
	rng := rand.New(rand.NewSource(cfg.Seed))
	items := make([]MixItem, 0, cfg.N)
	var clock int64
	for i := 0; i < cfg.N; i++ {
		kw := tail[rng.Intn(len(tail))]
		if rng.Float64() < cfg.HotFrac {
			kw = hotKeywords[rng.Intn(len(hotKeywords))]
		}
		// Two aggregate forms keep the query space small enough that
		// hot keywords repeat exactly — COUNT of the subgraph and AVG
		// follower count, the paper's two headline aggregates.
		var q query.Query
		if rng.Intn(2) == 0 {
			q = query.CountQuery(kw)
		} else {
			q = query.AvgQuery(kw, query.Followers)
		}
		if cfg.MeanGapNs > 0 {
			clock += cfg.MeanGapNs/2 + rng.Int63n(cfg.MeanGapNs)
		}
		items = append(items, MixItem{
			Tenant:    cfg.Tenants[rng.Intn(len(cfg.Tenants))],
			Query:     q.String(),
			Budget:    budgets[rng.Intn(len(budgets))],
			ArrivalNs: clock,
		})
	}
	return items, nil
}
