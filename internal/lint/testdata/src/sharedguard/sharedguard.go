// Package sharedguard exercises the static race certifier: objects
// reachable from more than one goroutine must see a consistent lockset
// at every write.
package sharedguard

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

// badUnlocked: the spawner and its goroutine both write c.n with no
// lock while the goroutine is live.
func badUnlocked() int {
	c := &counter{}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.n++ // want "reachable from multiple goroutines"
	}()
	c.n++
	wg.Wait()
	return c.n
}

// goodLocked: both sides hold c.mu — consistent discipline, no report.
func goodLocked() int {
	c := &counter{}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}()
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	wg.Wait()
	return c.n
}

// badLoopSpawn: a multi-instance spawn site racing against itself on a
// captured variable.
func badLoopSpawn() int {
	total := 0
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			total++ // want "reachable from multiple goroutines"
		}()
	}
	wg.Wait()
	return total
}

// goodSetupThenSpawn: writes that happen strictly before the spawn (or
// after the join) are ordered, not concurrent.
func goodSetupThenSpawn() int {
	c := &counter{}
	c.n = 1 // before the go statement: ordered
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}()
	wg.Wait()
	c.n++ // after the join: ordered
	return c.n
}

// goodChannelHandoff: ownership moves over a channel; the receiver's
// writes are sanctioned.
func goodChannelHandoff() int {
	ch := make(chan *counter, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := <-ch
		c.n++
	}()
	c := &counter{}
	ch <- c
	wg.Wait()
	return 0
}
