package experiments

import (
	"fmt"
	"math"
	"sort"

	"mba/internal/api"
	"mba/internal/audit"
	"mba/internal/core"
	"mba/internal/model"
	"mba/internal/platform"
	"mba/internal/query"
	"mba/internal/stats"
	"mba/internal/store"
	"mba/internal/workload"
)

// crashScenario is one row of the crash-recovery sweep: an estimator,
// a crash schedule on the charged-call clock, an autosave cadence, and
// the storage damage injected at each kill.
type crashScenario struct {
	name     string
	algo     Algo
	schedule string // mid | thirds | dense
	// saveDiv sets the autosave cadence to budget/saveDiv calls.
	saveDiv int
	// aligned picks crash points from the base run's recorded autosave
	// clocks (the zero-repaid regime); unaligned points land between
	// saves and must repay the tail since the last save.
	aligned bool
	damage  []store.DamageKind
}

func crashScenarios() []crashScenario {
	none := []store.DamageKind(nil)
	return []crashScenario{
		{name: "srw-mid-clean", algo: MASRW, schedule: "mid", saveDiv: 12, aligned: true, damage: none},
		{name: "srw-mid-torn", algo: MASRW, schedule: "mid", saveDiv: 12, aligned: true, damage: []store.DamageKind{store.DamageTorn}},
		{name: "srw-mid-bitflip", algo: MASRW, schedule: "mid", saveDiv: 12, aligned: true, damage: []store.DamageKind{store.DamageBitFlip}},
		{name: "srw-mid-missing", algo: MASRW, schedule: "mid", saveDiv: 12, aligned: true, damage: []store.DamageKind{store.DamageRemove}},
		{name: "srw-thirds-clean", algo: MASRW, schedule: "thirds", saveDiv: 12, aligned: true, damage: none},
		{name: "srw-thirds-storm", algo: MASRW, schedule: "thirds", saveDiv: 12, aligned: true, damage: []store.DamageKind{store.DamageTorn, store.DamageBitFlip}},
		{name: "srw-dense-clean", algo: MASRW, schedule: "dense", saveDiv: 12, aligned: true, damage: none},
		{name: "srw-unaligned", algo: MASRW, schedule: "mid", saveDiv: 6, aligned: false, damage: none},
		{name: "tarw-mid-clean", algo: MATARW, schedule: "mid", saveDiv: 12, aligned: true, damage: none},
		{name: "tarw-thirds-missing", algo: MATARW, schedule: "thirds", saveDiv: 12, aligned: true, damage: []store.DamageKind{store.DamageRemove}},
	}
}

// scheduleFracs maps a schedule name onto budget fractions.
func scheduleFracs(schedule string) []float64 {
	switch schedule {
	case "thirds":
		return []float64{1.0 / 3, 2.0 / 3}
	case "dense":
		return []float64{0.2, 0.4, 0.6, 0.8}
	default: // mid
		return []float64{0.5}
	}
}

// alignedPoints picks, for each budget fraction, the recorded autosave
// clock nearest the fraction (deduplicated, strictly increasing).
func alignedPoints(clocks []int, budget int, fracs []float64) []int {
	var pts []int
	for _, f := range fracs {
		target := int(f * float64(budget))
		best := -1
		for _, c := range clocks {
			if c < 1 || c >= budget {
				continue
			}
			if best < 0 || abs(c-target) < abs(best-target) {
				best = c
			}
		}
		if best > 0 {
			pts = append(pts, best)
		}
	}
	sort.Ints(pts)
	out := pts[:0]
	prev := 0
	for _, pt := range pts {
		if pt > prev {
			out = append(out, pt)
			prev = pt
		}
	}
	return out
}

// unalignedPoints offsets each fraction by half a save interval so the
// kill lands between autosaves.
func unalignedPoints(budget, everyCalls int, fracs []float64) []int {
	var pts []int
	prev := 0
	for _, f := range fracs {
		pt := int(f*float64(budget)) + everyCalls/2
		if pt >= budget {
			pt = budget - 1
		}
		if pt > prev {
			pts = append(pts, pt)
			prev = pt
		}
	}
	return pts
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// crashRun executes one single-walker estimator on a fault-free
// server with the given resume checkpoint and autosave policy —
// exactly the workload shape the crash harness replays.
func crashRun(p *platform.Platform, algo Algo, q query.Query, interval model.Tick,
	seed int64, budget int, resume *core.Checkpoint, pol core.AutosavePolicy) (core.Result, error) {

	srv := api.NewServer(p, api.Twitter(), api.Faults{Seed: seed})
	client := api.NewClient(srv, budget)
	s, err := core.NewSession(client, q, interval)
	if err != nil {
		return core.Result{}, err
	}
	switch algo {
	case MATARW:
		// Fixed interval: interval re-selection samples fresh RNG draws
		// per incarnation and would break bit-identical replay.
		return core.RunTARW(s, core.TARWOptions{Seed: seed, Resume: resume, Autosave: pol})
	default:
		return core.RunSRW(s, core.SRWOptions{View: core.LevelView, Seed: seed, Resume: resume, Autosave: pol})
	}
}

// CrashRecord is the JSON artifact of one sweep scenario, written as
// BENCH_crash.json by cmd/mba-bench.
type CrashRecord struct {
	Scenario   string         `json:"scenario"`
	Algo       string         `json:"algo"`
	Points     []int          `json:"points"`
	EveryCalls int            `json:"autosave_every"`
	ZeroRepaid bool           `json:"zero_repaid"`
	Identical  bool           `json:"identical"`
	Recovery   store.Recovery `json:"recovery"`
}

// Crash is the crash-recovery sweep as a plain table runner.
func Crash(opts Options) (Table, error) {
	t, _, err := CrashSweep(opts)
	return t, err
}

// CrashSweep is the crash-recovery sweep: for each scenario an
// uninterrupted base run records its autosave clocks, then the crash
// harness kills the same run at the scheduled points — optionally
// corrupting or deleting the newest on-disk generation at the instant
// of the kill — and restarts it from the durable store until it
// finishes. audit.CheckDurability then enforces the tentpole claims:
// the recovered final estimate is bit-identical to the uninterrupted
// run at equal total cost; save-aligned crashes repay zero calls; and
// every injected storage fault is detected by checksum (or absence)
// and recovered by generation fallback, never silently absorbed.
func CrashSweep(opts Options) (Table, []CrashRecord, error) {
	opts = opts.withDefaults()
	p, err := workload.Get(opts.Scale)
	if err != nil {
		return Table{}, nil, err
	}
	q := query.AvgQuery("privacy", query.Followers)
	truth, err := p.GroundTruth(q)
	if err != nil {
		return Table{}, nil, err
	}

	t := Table{
		ID:    "crash",
		Title: "Crash-recovery sweep: durable checkpoints vs. kill schedules and storage faults (bit-identical recovery at zero repaid calls)",
		Columns: []string{
			"Scenario", "Algo", "Crashes", "Damage", "Restarts", "Scratch",
			"Saves", "Repaid", "Faults", "Losses", "RelErr", "Identical", "Audit",
		},
	}

	aud := audit.Auditor{Budget: opts.Budget}
	var violations []string
	var records []CrashRecord
	for i, sc := range crashScenarios() {
		seed := opts.Seed + int64(i)*7919
		everyCalls := opts.Budget / sc.saveDiv
		if everyCalls < 1 {
			everyCalls = 1
		}
		opts.logf("crash: %s (autosave every %d calls)", sc.name, everyCalls)

		// Uninterrupted base run, recording where autosaves land on the
		// charged-call clock.
		var clocks []int
		record := core.AutosavePolicy{EveryCalls: everyCalls, Save: func(ck *core.Checkpoint) error {
			clocks = append(clocks, ck.SpentCost())
			return nil
		}}
		base, err := crashRun(p, sc.algo, q, opts.Interval, seed, opts.Budget, nil, record)
		if err != nil {
			return Table{}, nil, fmt.Errorf("crash %s base: %w", sc.name, err)
		}

		var points []int
		if sc.aligned {
			points = alignedPoints(clocks, opts.Budget, scheduleFracs(sc.schedule))
		} else {
			points = unalignedPoints(opts.Budget, everyCalls, scheduleFracs(sc.schedule))
		}
		if len(points) == 0 {
			return Table{}, nil, fmt.Errorf("crash %s: no usable crash points (budget %d, %d autosaves)",
				sc.name, opts.Budget, len(clocks))
		}

		plan := store.CrashPlan{
			Plan: store.PlanKey{
				Algo:   string(sc.algo),
				Preset: api.Twitter().Name,
				Query:  q.String(),
				Seed:   seed,
			},
			Budget: opts.Budget,
			Points: points,
			Damage: sc.damage,
		}
		pol := core.AutosavePolicy{EveryCalls: everyCalls}
		rec, err := store.RunWithCrashes(store.NewMemFS(), "checkpoint", plan,
			func(budget int, resume *core.Checkpoint, save func(*core.Checkpoint) error) (core.Result, error) {
				run := pol
				run.Save = save
				return crashRun(p, sc.algo, q, opts.Interval, seed, budget, resume, run)
			})
		if err != nil {
			return Table{}, nil, fmt.Errorf("crash %s harness: %w", sc.name, err)
		}

		zeroRepaid := sc.aligned && len(sc.damage) == 0
		rep := aud.CheckDurability(base, rec, zeroRepaid)
		for _, v := range rep.Violations {
			violations = append(violations, fmt.Sprintf("%s: %s", sc.name, v))
		}

		repaid := 0
		damaged := "none"
		for _, tr := range rec.Trials {
			repaid += tr.Repaid
		}
		if len(sc.damage) > 0 {
			damaged = ""
			for j, d := range sc.damage {
				if j > 0 {
					damaged += "+"
				}
				damaged += d.String()
			}
		}
		relErr := math.NaN()
		if !math.IsNaN(rec.Final.Estimate) {
			relErr = stats.RelativeError(rec.Final.Estimate, truth)
		}
		identical := math.Float64bits(base.Estimate) == math.Float64bits(rec.Final.Estimate) ||
			(math.IsNaN(base.Estimate) && math.IsNaN(rec.Final.Estimate))
		records = append(records, CrashRecord{
			Scenario:   sc.name,
			Algo:       string(sc.algo),
			Points:     points,
			EveryCalls: everyCalls,
			ZeroRepaid: zeroRepaid,
			Identical:  identical,
			Recovery:   rec,
		})
		t.Rows = append(t.Rows, []string{
			sc.name,
			string(sc.algo),
			fmt.Sprintf("%d", len(rec.Trials)),
			damaged,
			fmt.Sprintf("%d", rec.Restarts),
			fmt.Sprintf("%d", rec.ScratchRestarts),
			fmt.Sprintf("%d", rec.Saves),
			fmt.Sprintf("%d", repaid),
			fmt.Sprintf("%d", rec.FaultsInjected),
			fmt.Sprintf("%d", rec.LossEvents),
			fmt.Sprintf("%.4f", relErr),
			fmt.Sprintf("%v", identical),
			fmt.Sprintf("ok(%d)", rep.Checks),
		})
	}
	if len(violations) > 0 {
		return t, records, fmt.Errorf("crash: auditor found %d invariant violations; first: %s",
			len(violations), violations[0])
	}
	return t, records, nil
}
