package api

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"mba/internal/model"
)

// ledgerChunk is how many credits a ledger-bound client reserves at a
// time beyond the immediate need, amortizing ledger round-trips while
// keeping at most a small slice of the pool parked per walker.
const ledgerChunk = 64

// Client wraps a Server with response caching, call accounting, a
// configurable retry policy, and an optional hard budget. All
// estimators in internal/core consume this type; Client.Cost() is the
// query cost the paper's experiments plot on their y-axes, and
// Client.Stats() is the full accounting snapshot including retry and
// wait overheads.
//
// Caching reflects what any sane crawler does: results for a user are
// kept locally, so revisiting a node during a random walk costs
// nothing. The paper's "single cache" optimization for ESTIMATE-p
// (§5.2) falls out of this for free.
//
// Concurrency contract: Client is safe for concurrent use by multiple
// goroutines — a single mutex guards the caches, accounting stats, and
// circuit-breaker state, and the Server beneath is itself goroutine-
// safe. The exported configuration fields (Budget, Policy, Deadline)
// and the binding setters (WithContext, UseLedger, ImportCache,
// RestoreBreaker) must be set before the client is shared; they are
// configuration, not runtime controls. The recommended fleet layout is
// nonetheless one Client (and one Server) per walker goroutine over a
// shared Ledger: per-walker clients keep fault schedules, virtual-time
// accounting, and cache contents deterministic per walker regardless
// of goroutine interleaving, which a shared client cannot promise.
type Client struct {
	srv *Server
	// Budget is the maximum number of API calls; 0 means unlimited.
	Budget int
	// Policy governs retries, backoff, rate-limit waits, the optional
	// circuit breaker, and the stall watchdog. NewClient installs
	// DefaultRetryPolicy.
	Policy RetryPolicy
	// Deadline, when positive, bounds the run in VIRTUAL time: once the
	// accrued VirtualDuration() exceeds it, every further charged call
	// fails with ErrDeadlineExceeded. Virtual deadlines express "this
	// query may cost at most a day of real crawling" without the
	// simulation ever reading the wall clock, so deadline hits replay
	// deterministically.
	Deadline time.Duration
	// YieldOnThrottle switches the client to non-blocking rate-limit
	// handling: a 429 still puts the window wait on the books
	// (Stats.ThrottleWait — the walker cannot charge before the window
	// reopens either way), but instead of silently retrying after the
	// wait the pending call fails fast with a *ThrottledError carrying
	// the ReadyAt virtual timestamp, so a cooperative scheduler can park
	// this walker and lend its execution slot to a runnable one. The
	// default (false) keeps the original blocking retry behavior.
	// Configuration, not a runtime control: set before sharing.
	YieldOnThrottle bool

	// mu guards everything below. Public methods lock it; unexported
	// helpers assume it is held.
	mu    sync.Mutex
	stats Stats
	// ctx, when non-nil, is checked before every charged call and after
	// every virtual wait; once done, calls fail with ErrCanceled.
	ctx context.Context
	// stallWait is the virtual wait accrued since the last successfully
	// charged call — the stall watchdog's progress meter.
	stallWait time.Duration
	// Ledger binding (nil when the client owns its budget alone).
	led       *Ledger
	acct      int
	lreserved int
	// Circuit-breaker state (active when Policy.BreakerThreshold > 0).
	breakerFails int
	breakerOpen  bool
	// jrng draws backoff jitter, deterministic in the server's fault
	// seed so runs replay exactly.
	jrng *rand.Rand

	connCache map[int64][]int64
	tlCache   map[int64]model.Timeline
	privCache map[int64]bool
	// goneCache records users that returned ErrUnknownUser — vanished
	// accounts under churn. Like privCache, the (negative) result is
	// cached so each vanished user is paid for at most once per probe
	// kind; platform vanishing is permanent, so the cache never lies.
	goneCache map[int64]bool
	searches  map[string][]int64
}

// NewClient returns a caching client over srv with the given budget
// (0 = unlimited) and the default retry policy.
func NewClient(srv *Server, budget int) *Client {
	return &Client{
		srv:       srv,
		Budget:    budget,
		Policy:    DefaultRetryPolicy(),
		jrng:      rand.New(rand.NewSource(srv.faults.Seed ^ 0x7e77)),
		connCache: make(map[int64][]int64),
		tlCache:   make(map[int64]model.Timeline),
		privCache: make(map[int64]bool),
		goneCache: make(map[int64]bool),
		searches:  make(map[string][]int64),
	}
}

// WithContext binds a context to the client: every subsequent charged
// call first checks the context and fails with ErrCanceled (wrapping
// the context's error) once it is done. Cancellation and deadline
// propagation to every charged call flows through this single point.
// Bind before sharing the client.
func (c *Client) WithContext(ctx context.Context) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ctx = ctx
}

// UseLedger binds the client to account id of a shared budget ledger.
// The client's Budget is set to the account's remaining quota, and from
// then on every charged call is committed to the ledger through a
// chunked reserve/commit cycle, so concurrent walkers settle their
// spend against one conserved pool. Call ReleaseLedger when the walk
// segment ends to return any unspent reservation. Bind before sharing
// the client.
func (c *Client) UseLedger(l *Ledger, id int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	rem, err := l.Remaining(id)
	if err != nil {
		return err
	}
	if rem <= 0 {
		return fmt.Errorf("api: ledger account %d has no remaining quota: %w", id, ErrBudgetExhausted)
	}
	c.led, c.acct, c.lreserved = l, id, 0
	c.Budget = rem
	return nil
}

// ReleaseLedger refunds the client's outstanding ledger reservation
// (credits admitted but never charged). After release the ledger is at
// rest for this account: committed equals exactly the calls charged.
func (c *Client) ReleaseLedger() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.led == nil || c.lreserved == 0 {
		return
	}
	_ = c.led.Refund(c.acct, c.lreserved)
	c.lreserved = 0
}

// Cost returns the number of API calls charged so far.
func (c *Client) Cost() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats.Calls
}

// Stats returns the full accounting snapshot: charged calls, retry and
// rate-limit counters, circuit-breaker trips, stall-watchdog trips, and
// accrued virtual wait.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Remaining returns the remaining budget, or -1 if unlimited.
func (c *Client) Remaining() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.Budget <= 0 {
		return -1
	}
	r := c.Budget - c.stats.Calls
	if r < 0 {
		r = 0
	}
	return r
}

// Exhausted reports whether the budget is spent.
func (c *Client) Exhausted() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.Budget > 0 && c.stats.Calls >= c.Budget
}

// ResetCost zeroes the full accounting snapshot — charged calls, retry
// and rate-limit counters, circuit-breaker state, stall meter, and
// accrued virtual wait — so a harness can charge setup separately. The
// response caches are deliberately retained: a reset changes who pays,
// not what has been learned. Use a fresh Client for cold-cache
// accounting. Not meaningful on a ledger-bound client (ledger
// commitments are never reset).
func (c *Client) ResetCost() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats = Stats{}
	c.breakerFails = 0
	c.breakerOpen = false
	c.stallWait = 0
}

// VirtualDuration translates the accumulated accounting into the
// wall-clock time the run would need on the real platform: the charged
// calls under the preset's rate limit (e.g., Twitter's 180 calls per
// 15 minutes) plus all virtual waits the retry policy accrued
// (backoff, rate-limit windows, breaker cooldowns, slow calls).
func (c *Client) VirtualDuration() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.virtualLocked()
}

func (c *Client) virtualLocked() time.Duration {
	return VirtualOf(c.srv.Preset(), c.stats)
}

// Preset exposes the server's interface parameters.
func (c *Client) Preset() Preset { return c.srv.Preset() }

// addWait accrues virtual wait into both the accounting snapshot and
// the stall watchdog's progress meter.
func (c *Client) addWait(d time.Duration) {
	c.stats.Wait += d
	c.stallWait += d
}

// addThrottleWait accrues a 429 rate-limit window wait, attributed so
// schedulers and sweeps can tell overlappable throttle waits from
// failure-recovery backoff.
func (c *Client) addThrottleWait(d time.Duration) {
	c.stats.ThrottleWait += d
	c.addWait(d)
}

// addBackoffWait accrues transient-retry backoff or breaker cooldown.
func (c *Client) addBackoffWait(d time.Duration) {
	c.stats.BackoffWait += d
	c.addWait(d)
}

// interrupted checks the three run-interruption sources in priority
// order: external cancellation, the virtual deadline, and the stall
// watchdog. Called before each charged call and after each virtual
// wait, so interruptions propagate to every charged call without any
// wall-clock reads.
func (c *Client) interrupted() error {
	if c.ctx != nil {
		if err := c.ctx.Err(); err != nil {
			return fmt.Errorf("%w: %w", ErrCanceled, err)
		}
	}
	if c.Deadline > 0 && c.virtualLocked() > c.Deadline {
		return ErrDeadlineExceeded
	}
	if sw := c.Policy.StallWait; sw > 0 && c.stallWait > sw {
		c.stats.StallTrips++
		c.stallWait = 0
		return ErrStalled
	}
	return nil
}

func (c *Client) charge(n int) error {
	if c.Budget > 0 && c.stats.Calls+n > c.Budget {
		// Top the cost up to exactly the budget (the partial charge was
		// consumed), mirroring the topping into the ledger so committed
		// credits stay equal to charged calls.
		if c.led != nil {
			if err := c.ledgerCommit(c.Budget - c.stats.Calls); err != nil {
				return err
			}
		}
		c.stats.Calls = c.Budget
		return ErrBudgetExhausted
	}
	if c.led != nil {
		if err := c.ledgerCommit(n); err != nil {
			return err
		}
	}
	c.stats.Calls += n
	c.stallWait = 0
	return nil
}

// ledgerCommit settles n charged calls against the bound ledger
// account, topping up the chunked reservation as needed. Admission
// failures here indicate a quota/budget mismatch — an accounting bug,
// not a normal exhaustion — and are surfaced loudly.
func (c *Client) ledgerCommit(n int) error {
	if n <= 0 {
		return nil
	}
	if c.lreserved < n {
		want := n - c.lreserved
		if want < ledgerChunk {
			want = ledgerChunk
		}
		grant, err := c.led.Reserve(c.acct, want)
		if err != nil {
			return err
		}
		c.lreserved += grant
		if c.lreserved < n {
			return fmt.Errorf("api: ledger admission short for account %d: need %d credits, hold %d", c.acct, n, c.lreserved)
		}
	}
	if err := c.led.Commit(c.acct, n); err != nil {
		return err
	}
	c.lreserved -= n
	return nil
}

// backoff computes the next transient backoff (doubling, capped,
// jittered) and advances the doubling state.
func (c *Client) backoff(cur *time.Duration) time.Duration {
	p := c.Policy
	b := *cur
	if b <= 0 {
		b = DefaultRetryPolicy().BaseBackoff
	}
	next := 2 * b
	if p.MaxBackoff > 0 && next > p.MaxBackoff {
		next = p.MaxBackoff
	}
	*cur = next
	if p.Jitter > 0 {
		b += time.Duration(c.jrng.Float64() * p.Jitter * float64(b))
	}
	return b
}

// noteFailure records a post-retry logical-call failure with the
// circuit breaker and wraps the error in ErrCircuitOpen when the
// breaker trips.
func (c *Client) noteFailure(err error) error {
	if c.Policy.BreakerThreshold <= 0 {
		return err
	}
	c.breakerFails++
	if c.breakerFails >= c.Policy.BreakerThreshold {
		c.breakerOpen = true
		c.stats.CircuitTrips++
		return fmt.Errorf("%w: %w", ErrCircuitOpen, err)
	}
	return err
}

// withRetry runs fn under the client's RetryPolicy. Transient failures
// are charged (the call consumed a slot) and retried after exponential
// backoff in virtual time; rate-limit rejections are never charged and
// retried after waiting out the window (or, under YieldOnThrottle,
// surfaced immediately as a *ThrottledError after booking the wait);
// permanent errors return immediately. Post-retry failures feed the
// circuit breaker. Before
// the first attempt and after every accrued wait, the interruption
// sources (context cancellation, virtual deadline, stall watchdog) are
// checked, so a cancelled or deadlined run unwinds at the next charged
// call instead of looping.
func (c *Client) withRetry(fn func() (int, error)) error {
	if err := c.interrupted(); err != nil {
		return err
	}
	if c.Policy.BreakerThreshold > 0 && c.breakerOpen {
		// Half-open probe: wait out the cooldown in virtual time and
		// let exactly this logical call through. A failure re-trips
		// immediately; a success closes the breaker.
		c.addBackoffWait(c.Policy.BreakerCooldown)
		c.breakerOpen = false
		c.breakerFails = c.Policy.BreakerThreshold - 1
		if err := c.interrupted(); err != nil {
			return err
		}
	}
	backoff := c.Policy.BaseBackoff
	retries := 0
	for {
		cost, err := fn()
		c.addWait(c.srv.drainLatency())
		switch {
		case errors.Is(err, ErrRateLimited):
			// 429: rejected at the gate, no budget burned. The window
			// wait goes on the books either way — the walker cannot
			// charge before the window reopens.
			c.stats.RateLimitHits++
			wait := c.Policy.RateLimitWait
			if wait <= 0 {
				wait = c.srv.preset.RateLimitWindow
			}
			c.addThrottleWait(wait)
			if c.YieldOnThrottle {
				// Non-blocking mode: hand the wait to the caller as a
				// typed ThrottledError so it can park this walker and
				// run other work. The stall watchdog still guards a
				// walker that only ever throttles — check it (and the
				// other interruption sources) before yielding. A
				// throttle is scheduling, not failure: it does not feed
				// the circuit breaker.
				if ierr := c.interrupted(); ierr != nil {
					return ierr
				}
				return &ThrottledError{ReadyAt: c.virtualLocked()}
			}
			if retries >= c.Policy.MaxRetries {
				return c.noteFailure(err)
			}
			retries++
		case errors.Is(err, ErrTransient):
			// 5xx (or truncated paging): the attempt consumed a call
			// slot, charge it, then back off and retry.
			if chargeErr := c.charge(cost); chargeErr != nil {
				return chargeErr
			}
			if retries >= c.Policy.MaxRetries {
				return c.noteFailure(err)
			}
			retries++
			c.stats.Retries++
			c.addBackoffWait(c.backoff(&backoff))
		default:
			// Success or a permanent error (ErrPrivate, ErrUnknownUser):
			// charge and return.
			if chargeErr := c.charge(cost); chargeErr != nil {
				return chargeErr
			}
			if err == nil {
				c.breakerFails = 0
			}
			return err
		}
		if err := c.interrupted(); err != nil {
			return err
		}
	}
}

// Search returns seed users who recently posted the keyword (cached).
func (c *Client) Search(keyword string) ([]int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if hits, ok := c.searches[keyword]; ok {
		return hits, nil
	}
	var hits []int64
	err := c.withRetry(func() (int, error) {
		var cost int
		var err error
		hits, cost, err = c.srv.Search(keyword)
		return cost, err
	})
	if err != nil {
		return nil, err
	}
	c.searches[keyword] = hits
	return hits, nil
}

// Connections returns u's neighbors (cached). Private users return
// ErrPrivate; the (negative) result is cached too, so the probe is
// charged only once.
func (c *Client) Connections(u int64) ([]int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Positive cache first: a response already paid for stays served
	// even if a *later* probe of another endpoint found the user
	// private or vanished (churn). The negative caches only answer for
	// users we never got data from.
	if ns, ok := c.connCache[u]; ok {
		return ns, nil
	}
	if c.privCache[u] {
		return nil, ErrPrivate
	}
	if c.goneCache[u] {
		return nil, fmt.Errorf("%w: %d (cached)", ErrUnknownUser, u)
	}
	var ns []int64
	err := c.withRetry(func() (int, error) {
		var cost int
		var err error
		ns, cost, err = c.srv.Connections(u)
		return cost, err
	})
	if errors.Is(err, ErrPrivate) {
		c.privCache[u] = true
		return nil, err
	}
	if errors.Is(err, ErrUnknownUser) {
		c.goneCache[u] = true
		return nil, err
	}
	if err != nil {
		return nil, err
	}
	c.connCache[u] = ns
	return ns, nil
}

// Timeline returns u's visible timeline (cached).
func (c *Client) Timeline(u int64) (model.Timeline, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Positive cache wins over the negative ones; see Connections.
	if tl, ok := c.tlCache[u]; ok {
		return tl, nil
	}
	if c.privCache[u] {
		return model.Timeline{}, ErrPrivate
	}
	if c.goneCache[u] {
		return model.Timeline{}, fmt.Errorf("%w: %d (cached)", ErrUnknownUser, u)
	}
	var tl model.Timeline
	err := c.withRetry(func() (int, error) {
		var cost int
		var err error
		tl, cost, err = c.srv.Timeline(u)
		return cost, err
	})
	if errors.Is(err, ErrPrivate) {
		c.privCache[u] = true
		return model.Timeline{}, err
	}
	if errors.Is(err, ErrUnknownUser) {
		c.goneCache[u] = true
		return model.Timeline{}, err
	}
	if err != nil {
		return model.Timeline{}, err
	}
	c.tlCache[u] = tl
	return tl, nil
}

// BreakerState is the circuit breaker's persistent state, exported so
// checkpoints can carry it across a resume: a breaker tripped by an
// ongoing outage must stay tripped on the fresh client, otherwise a
// resume silently forgets the outage and burns budget re-probing it.
type BreakerState struct {
	Fails int
	Open  bool
}

// BreakerState snapshots the circuit breaker for checkpointing.
func (c *Client) BreakerState() BreakerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return BreakerState{Fails: c.breakerFails, Open: c.breakerOpen}
}

// RestoreBreaker reinstates a checkpointed circuit-breaker state.
func (c *Client) RestoreBreaker(b BreakerState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.breakerFails = b.Fails
	c.breakerOpen = b.Open
}

// CachedConnUsers returns the users with cached Connections responses,
// sorted. Auditors use this to re-derive structures from cached data at
// zero cost.
func (c *Client) CachedConnUsers() []int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int64, 0, len(c.connCache))
	for u := range c.connCache {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CanConnections reports whether Connections(u) is answerable entirely
// from cache — a positive response, or a cached private/vanished
// verdict — and would therefore charge nothing. Parked walkers use the
// Can* predicates to find steps their frozen-snapshot cache can still
// answer while the rate-limit window is shut ("walk, not wait").
func (c *Client) CanConnections(u int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.connCache[u]
	return ok || c.privCache[u] || c.goneCache[u]
}

// CanTimeline reports whether Timeline(u) is answerable entirely from
// cache at zero charged cost.
func (c *Client) CanTimeline(u int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.tlCache[u]
	return ok || c.privCache[u] || c.goneCache[u]
}

// CachedConnections returns the positively cached neighbor list of u,
// and whether one exists. The slice is the cache's own (read-only by
// contract).
func (c *Client) CachedConnections(u int64) ([]int64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ns, ok := c.connCache[u]
	return ns, ok
}

// CachedTimelineUsers returns the users with cached Timeline responses,
// sorted.
func (c *Client) CachedTimelineUsers() []int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int64, 0, len(c.tlCache))
	for u := range c.tlCache {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
