package core

import (
	"errors"
	"math"
	"testing"

	"mba/internal/query"
)

// runStateAlgo runs one algorithm family for the durable-state tests.
func runStateAlgo(t *testing.T, algo string, s *Session, resume *Checkpoint) Result {
	t.Helper()
	var res Result
	var err error
	switch algo {
	case "tarw":
		// Fixed interval: interval re-selection would draw fresh RNG per
		// incarnation and break replay identity.
		res, err = RunTARW(s, TARWOptions{Seed: 1, Resume: resume})
	default:
		res, err = RunSRW(s, SRWOptions{View: LevelView, Seed: 1, Resume: resume})
	}
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCheckpointStateRoundTripResume: resuming from a checkpoint that
// went through the serializable DTO must be indistinguishable from
// resuming the original in-memory checkpoint.
func TestCheckpointStateRoundTripResume(t *testing.T) {
	p := testPlatform(t)
	q := query.AvgQuery("privacy", query.Followers)
	for _, algo := range []string{"srw", "tarw"} {
		t.Run(algo, func(t *testing.T) {
			partial := runStateAlgo(t, algo, newSession(t, p, q, 1500), nil)
			if partial.Checkpoint == nil || partial.Cost < 1500 {
				t.Fatalf("a 1500-call budget should leave a resumable exhausted run (cost %d)", partial.Cost)
			}
			ck := partial.Checkpoint
			rt, err := CheckpointFromState(ck.State())
			if err != nil {
				t.Fatal(err)
			}
			if rt.SpentCost() != ck.SpentCost() || rt.Segments() != ck.Segments() {
				t.Fatalf("books drifted through the DTO: cost %d/%d segments %d/%d",
					rt.SpentCost(), ck.SpentCost(), rt.Segments(), ck.Segments())
			}
			// The round-tripped copy is derived BEFORE either resume runs,
			// so the two resumes are independent.
			resA := runStateAlgo(t, algo, newSession(t, p, q, 1500), ck)
			resB := runStateAlgo(t, algo, newSession(t, p, q, 1500), rt)
			if math.Float64bits(resA.Estimate) != math.Float64bits(resB.Estimate) {
				t.Errorf("round-tripped resume estimate %v != in-memory resume %v", resB.Estimate, resA.Estimate)
			}
			if resA.Cost != resB.Cost || resA.Samples != resB.Samples {
				t.Errorf("round-tripped resume cost/samples %d/%d != in-memory %d/%d",
					resB.Cost, resB.Samples, resA.Cost, resA.Samples)
			}
		})
	}
}

// TestRebaseReplayBitIdentity is the core recovery law: a run
// interrupted mid-flight and replayed from a rebased checkpoint (warm
// cache, segment-0 RNG) finishes with the uninterrupted run's exact
// estimate, cost, samples, and charged calls — spent budget is never
// repaid because the cache answers the already-paid prefix free.
func TestRebaseReplayBitIdentity(t *testing.T) {
	p := testPlatform(t)
	q := query.AvgQuery("privacy", query.Followers)
	for _, algo := range []string{"srw", "tarw"} {
		t.Run(algo, func(t *testing.T) {
			base := runStateAlgo(t, algo, newSession(t, p, q, 3000), nil)
			partial := runStateAlgo(t, algo, newSession(t, p, q, 1500), nil)
			if partial.Checkpoint == nil {
				t.Fatal("partial run carries no checkpoint")
			}
			rb := partial.Checkpoint.Rebase()
			if rb.SpentCost() != partial.Cost {
				t.Fatalf("rebase lost the spent-cost books: %d vs %d", rb.SpentCost(), partial.Cost)
			}
			if rb.Segments() != 0 {
				t.Fatalf("rebase must reset to the segment-0 RNG, got segment %d", rb.Segments())
			}
			replay := runStateAlgo(t, algo, newSession(t, p, q, 3000-partial.Cost), rb)
			if math.Float64bits(replay.Estimate) != math.Float64bits(base.Estimate) {
				t.Errorf("replayed estimate %v (bits %#x) != uninterrupted %v (bits %#x)",
					replay.Estimate, math.Float64bits(replay.Estimate),
					base.Estimate, math.Float64bits(base.Estimate))
			}
			if replay.Cost != base.Cost {
				t.Errorf("replayed cumulative cost %d != uninterrupted %d — spent budget repaid", replay.Cost, base.Cost)
			}
			if replay.Samples != base.Samples {
				t.Errorf("replayed samples %d != uninterrupted %d", replay.Samples, base.Samples)
			}
			if replay.Stats.Calls != base.Stats.Calls {
				t.Errorf("replayed charged calls %d != uninterrupted %d", replay.Stats.Calls, base.Stats.Calls)
			}
		})
	}
}

// TestAutosaveCadenceAndFailure: the autosave hook fires on the
// charged-call clock at the configured cadence with strictly
// increasing clocks, and a failing sink degrades the run (typed, with
// the sink's error preserved) instead of erroring out or panicking.
func TestAutosaveCadenceAndFailure(t *testing.T) {
	p := testPlatform(t)
	q := query.AvgQuery("privacy", query.Followers)

	var clocks []int
	pol := AutosavePolicy{EveryCalls: 200, Save: func(ck *Checkpoint) error {
		clocks = append(clocks, ck.SpentCost())
		return nil
	}}
	res, err := RunSRW(newSession(t, p, q, 2000), SRWOptions{View: LevelView, Seed: 1, Autosave: pol})
	if err != nil {
		t.Fatal(err)
	}
	if len(clocks) < 2 {
		t.Fatalf("only %d autosaves over a 2000-call run at cadence 200", len(clocks))
	}
	prev := 0
	for _, c := range clocks {
		if c <= prev {
			t.Fatalf("autosave clocks not strictly increasing: %v", clocks)
		}
		prev = c
	}
	if last := clocks[len(clocks)-1]; last > res.Cost {
		t.Errorf("autosave clock %d past the run's final cost %d", last, res.Cost)
	}

	boom := errors.New("disk full")
	fail := AutosavePolicy{EveryCalls: 100, Save: func(*Checkpoint) error { return boom }}
	res2, err := RunSRW(newSession(t, p, q, 2000), SRWOptions{View: LevelView, Seed: 1, Autosave: fail})
	if err != nil {
		t.Fatalf("autosave failure must degrade, not error: %v", err)
	}
	if !res2.Degraded || !errors.Is(res2.DegradedBy, ErrAutosave) {
		t.Errorf("DegradedBy = %v, want ErrAutosave", res2.DegradedBy)
	}
	if !errors.Is(res2.DegradedBy, boom) {
		t.Errorf("autosave degrade lost the sink's error: %v", res2.DegradedBy)
	}
}
