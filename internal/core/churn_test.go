package core

import (
	"errors"
	"math"
	"testing"
	"time"

	"mba/internal/api"
	"mba/internal/model"
	"mba/internal/platform"
	"mba/internal/query"
)

// churnSession builds a session over a fault-free server with platform
// churn enabled.
func churnSession(t *testing.T, cfg platform.ChurnConfig, budget int) *Session {
	t.Helper()
	p := testPlatform(t)
	srv := api.NewServer(p, api.Twitter(), api.Faults{})
	srv.EnableChurn(cfg)
	s, err := NewSession(api.NewClient(srv, budget), query.AvgQuery("privacy", query.Followers), model.Day)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// vanishHeavy is a churn mix that only kills accounts — the event
// class that actually strands a walk mid-step.
func vanishHeavy(rate float64, seed int64) platform.ChurnConfig {
	return platform.ChurnConfig{Rate: rate, Seed: seed, VanishWeight: 1}
}

// TestSRWHealsUnderChurn: with accounts vanishing underneath the walk,
// MA-SRW must complete without aborting, report the healing work it
// did, and stay deterministic in (walk seed, churn seed).
func TestSRWHealsUnderChurn(t *testing.T) {
	run := func() Result {
		s := churnSession(t, vanishHeavy(0.3, 7), 12000)
		res, err := RunSRW(s, SRWOptions{View: LevelView, Seed: 1})
		if err != nil {
			t.Fatalf("churn surfaced as an error instead of healing: %v", err)
		}
		return res
	}
	res := run()
	if res.Degraded {
		t.Fatalf("default heal policy degraded: %v", res.DegradedBy)
	}
	if res.Heal.VanishedUsers == 0 {
		t.Fatal("fixture too quiet: no vanished users observed")
	}
	if res.Heal.Events() == 0 {
		t.Error("no heal events despite observed vanishings")
	}
	if math.IsNaN(res.Estimate) {
		t.Error("healed run produced no estimate")
	}
	if res.Cost == 0 || res.Stats.Calls != res.Cost {
		t.Errorf("accounting broken: cost=%d stats.Calls=%d", res.Cost, res.Stats.Calls)
	}

	res2 := run()
	if res2.Estimate != res.Estimate || res2.Heal != res.Heal || res2.Cost != res.Cost {
		t.Errorf("churned run not deterministic: (%v,%+v,%d) vs (%v,%+v,%d)",
			res.Estimate, res.Heal, res.Cost, res2.Estimate, res2.Heal, res2.Cost)
	}
	t.Logf("SRW under churn: heal=%+v cost=%d samples=%d", res.Heal, res.Cost, res.Samples)
}

// TestTARWHealsUnderChurn: MA-TARW absorbs vanished lattice nodes
// structurally and completes with an estimate.
func TestTARWHealsUnderChurn(t *testing.T) {
	s := churnSession(t, vanishHeavy(0.3, 7), 12000)
	res, err := RunTARW(s, TARWOptions{Seed: 2})
	if err != nil {
		t.Fatalf("churn surfaced as an error instead of healing: %v", err)
	}
	if res.Degraded {
		t.Fatalf("default heal policy degraded: %v", res.DegradedBy)
	}
	if res.Heal.VanishedUsers == 0 {
		t.Fatal("fixture too quiet: no vanished users observed")
	}
	if math.IsNaN(res.Estimate) {
		t.Error("healed run produced no estimate")
	}
	t.Logf("TARW under churn: heal=%+v zero=%d cost=%d walks=%d",
		res.Heal, res.ZeroProbPaths, res.Cost, res.Samples)
}

// TestHealAbortDegrades: the pre-heal behaviour is still reachable via
// HealAbort — the first churn-killed node degrades the run with a
// resumable checkpoint instead of healing.
func TestHealAbortDegrades(t *testing.T) {
	s := churnSession(t, vanishHeavy(0.6, 11), 20000)
	res, err := RunSRW(s, SRWOptions{View: LevelView, Seed: 1, Heal: HealPolicy{Mode: HealAbort}})
	if err != nil {
		t.Fatalf("HealAbort must degrade, not error: %v", err)
	}
	if !res.Degraded {
		t.Fatal("HealAbort under heavy churn did not degrade")
	}
	if !errors.Is(res.DegradedBy, ErrNodeVanished) {
		t.Errorf("DegradedBy = %v, want ErrNodeVanished", res.DegradedBy)
	}
	if res.Checkpoint == nil {
		t.Error("degraded result carries no checkpoint")
	}
}

// TestMaxHealsOverwhelmed: bounding MaxHeals turns relentless churn
// into a truthful ErrChurnOverwhelmed degrade.
func TestMaxHealsOverwhelmed(t *testing.T) {
	s := churnSession(t, vanishHeavy(0.6, 11), 20000)
	res, err := RunSRW(s, SRWOptions{View: LevelView, Seed: 1, Heal: HealPolicy{MaxHeals: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || !errors.Is(res.DegradedBy, ErrChurnOverwhelmed) {
		t.Fatalf("degraded=%v by %v, want ErrChurnOverwhelmed", res.Degraded, res.DegradedBy)
	}
	if res.Heal.Events() != 1 {
		t.Errorf("heal events = %d, want exactly MaxHeals=1 before degrading", res.Heal.Events())
	}
}

// TestHealReseedMode: the reseed policy recovers too, without ever
// backtracking.
func TestHealReseedMode(t *testing.T) {
	s := churnSession(t, vanishHeavy(0.3, 7), 12000)
	res, err := RunSRW(s, SRWOptions{View: LevelView, Seed: 1, Heal: HealPolicy{Mode: HealReseed}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Fatalf("reseed policy degraded: %v", res.DegradedBy)
	}
	if res.Heal.Backtracks != 0 {
		t.Errorf("reseed policy backtracked %d times", res.Heal.Backtracks)
	}
	if res.Heal.Reseeds == 0 {
		t.Error("no reseeds recorded under churn")
	}
}

// TestResumeCarriesBreakerState is the satellite-2 regression: a
// breaker tripped by an outage must still be open after resuming on a
// fresh client, forcing the half-open cooldown before the next call.
func TestResumeCarriesBreakerState(t *testing.T) {
	pol := shallowPolicy()
	pol.BreakerThreshold = 1
	pol.BreakerCooldown = time.Minute

	s1 := faultSession(t, outageFaults(24), pol, 30000)
	res1, err := RunSRW(s1, SRWOptions{View: LevelView, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res1.Degraded || !errors.Is(res1.DegradedBy, api.ErrCircuitOpen) {
		t.Fatalf("fixture did not trip the breaker: degraded=%v by %v", res1.Degraded, res1.DegradedBy)
	}
	if !res1.Checkpoint.Breaker().Open {
		t.Fatal("checkpoint lost the open breaker state")
	}

	// Resume on a healthy server: the restored breaker must charge the
	// half-open cooldown before the first fresh call goes through.
	p := testPlatform(t)
	client2 := api.NewClient(api.NewServer(p, api.Twitter(), api.Faults{}), 30000-res1.Cost)
	client2.Policy = pol
	s2, err := NewSession(client2, query.AvgQuery("privacy", query.Followers), model.Day)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := RunSRW(s2, SRWOptions{View: LevelView, Seed: 1, Resume: res1.Checkpoint})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Degraded {
		t.Errorf("resume on healthy server degraded: %v", res2.DegradedBy)
	}
	if client2.Stats().Wait < pol.BreakerCooldown {
		t.Errorf("resumed client waited %v, want at least the %v breaker cooldown — "+
			"the tripped breaker was silently closed by the resume",
			client2.Stats().Wait, pol.BreakerCooldown)
	}
}

// TestResumeUnderActiveChurn is the satellite-3 coverage: resume while
// the platform keeps churning. Cached responses are replayed at zero
// cost and are NOT invalidated by churn that happened after they were
// fetched (frozen-snapshot semantics); cumulative Cost/Stats stay
// monotone and truthful.
func TestResumeUnderActiveChurn(t *testing.T) {
	p := testPlatform(t)
	q := query.AvgQuery("privacy", query.Followers)
	cfg := vanishHeavy(0.3, 7)

	srv := api.NewServer(p, api.Twitter(), api.Faults{})
	srv.EnableChurn(cfg)
	client1 := api.NewClient(srv, 3000) // small budget: exhausts mid-walk
	s1, err := NewSession(client1, q, model.Day)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := RunSRW(s1, SRWOptions{View: LevelView, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Cost != 3000 {
		t.Fatalf("fixture did not exhaust its budget: cost=%d", res1.Cost)
	}

	// Resume against the SAME server — its churn overlay keeps moving —
	// with a fresh client and fresh budget.
	client2 := api.NewClient(srv, 6000)
	s2, err := NewSession(client2, q, model.Day)
	if err != nil {
		t.Fatal(err)
	}

	// A user whose response the checkpoint carries must replay at zero
	// cost even though the platform churned since it was fetched.
	client2.ImportCache(res1.Checkpoint.Cache())
	cached := client2.CachedConnUsers()
	if len(cached) == 0 {
		t.Fatal("checkpoint carries no cached connections")
	}
	before := client2.Cost()
	for _, u := range cached {
		if _, err := client2.Connections(u); err != nil {
			t.Fatalf("cached replay of user %d failed: %v", u, err)
		}
	}
	if client2.Cost() != before {
		t.Errorf("replaying %d cached users charged %d calls, want 0",
			len(cached), client2.Cost()-before)
	}

	res2, err := RunSRW(s2, SRWOptions{View: LevelView, Seed: 1, Resume: res1.Checkpoint})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cost < res1.Cost {
		t.Errorf("cumulative cost went backwards: %d -> %d", res1.Cost, res2.Cost)
	}
	if res2.Cost != res1.Cost+client2.Cost() {
		t.Errorf("res2.Cost = %d, want %d (prior) + %d (fresh)", res2.Cost, res1.Cost, client2.Cost())
	}
	if res2.Stats.Calls != res2.Cost {
		t.Errorf("Stats.Calls = %d != Cost %d", res2.Stats.Calls, res2.Cost)
	}
	if res2.Samples <= res1.Samples {
		t.Errorf("resume under churn made no progress: %d -> %d samples", res1.Samples, res2.Samples)
	}
	if res2.Heal.VanishedUsers < res1.Heal.VanishedUsers {
		t.Errorf("cumulative heal stats went backwards: %+v -> %+v", res1.Heal, res2.Heal)
	}
	if math.IsNaN(res2.Estimate) {
		t.Error("resumed run produced no estimate")
	}
	t.Logf("resume under churn: seg1 cost=%d seg2 cost=%d heal=%+v", res1.Cost, client2.Cost(), res2.Heal)
}
