// Command mba answers one aggregate query over a simulated microblog
// platform through the rate-limited API, reporting the estimate, the
// exact ground truth, the query cost, and the wall-clock time the run
// would need on the real platform under its rate limit.
//
// Usage:
//
//	mba -agg avg -measure followers -keyword privacy \
//	    [-algo tarw|srw|mr] [-preset twitter|gplus|tumblr] \
//	    [-budget 30000] [-users 20000] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mba"
	"mba/internal/stats"
)

func main() {
	agg := flag.String("agg", "avg", "aggregate: count, sum, or avg")
	measureName := flag.String("measure", "followers", "measure: followers, display-name, age, posts, likes, mean-likes")
	keyword := flag.String("keyword", "privacy", "keyword selection condition")
	algo := flag.String("algo", "tarw", "algorithm: tarw, srw, or mr")
	presetName := flag.String("preset", "twitter", "API preset: twitter, gplus, or tumblr")
	budget := flag.Int("budget", 30000, "API-call budget")
	users := flag.Int("users", 20000, "simulated platform size")
	seed := flag.Int64("seed", 1, "random seed (platform and walk)")
	maleOnly := flag.Bool("male-only", false, "restrict to profiles exposing male gender")
	churn := flag.Float64("churn", 0, "platform churn rate: expected churn events per API call (0 = frozen platform)")
	fromDay := flag.Int("from-day", 0, "window start day (inclusive)")
	toDay := flag.Int("to-day", 0, "window end day (exclusive; 0 = unbounded)")
	walkers := flag.Int("walkers", 0, "concurrent walkers executing the fleet plan (0 = single-walker path; the estimate is identical at any positive value)")
	deadline := flag.Duration("deadline", 0, "virtual-time deadline, e.g. 12h (0 = none; a run past it returns a degraded partial estimate)")
	coop := flag.Bool("coop", false, "cooperative scheduling: throttled walkers park and yield their slot instead of blocking (needs -walkers > 0)")
	checkpoint := flag.String("checkpoint", "", "directory for durable crash-safe checkpoints: the run autosaves there and a rerun with the same flags resumes (or returns the finished result at zero cost)")
	autosave := flag.Int("autosave", 0, "durable autosave cadence in API calls (0 = default 1000; needs -checkpoint)")
	flag.Parse()

	cfg := mba.DefaultPlatformConfig()
	cfg.NumUsers = *users
	cfg.Seed = *seed
	fmt.Fprintf(os.Stderr, "generating %d-user platform...\n", cfg.NumUsers)
	p, err := mba.NewPlatform(cfg)
	if err != nil {
		fatal(err)
	}

	measures := map[string]mba.Measure{
		"followers":    mba.Followers,
		"display-name": mba.DisplayNameLength,
		"age":          mba.Age,
		"posts":        mba.KeywordPostCount,
		"likes":        mba.KeywordPostLikes,
		"mean-likes":   mba.KeywordPostMeanLikes,
	}
	m, ok := measures[*measureName]
	if !ok {
		fatal(fmt.Errorf("unknown measure %q", *measureName))
	}

	var q mba.Query
	switch strings.ToLower(*agg) {
	case "count":
		q = mba.Count(*keyword)
	case "sum":
		q = mba.Sum(*keyword, m)
	case "avg":
		q = mba.Avg(*keyword, m)
	default:
		fatal(fmt.Errorf("unknown aggregate %q", *agg))
	}
	if *maleOnly {
		q.Where = append(q.Where, mba.MaleOnly)
	}
	if *toDay > 0 {
		q = mba.TimeWindow(q, *fromDay, *toDay)
	}

	opts := mba.Options{
		Budget: *budget, Seed: *seed, ChurnRate: *churn, Walkers: *walkers,
		Cooperative: *coop, Deadline: *deadline,
		Checkpoint: *checkpoint, AutosaveCalls: *autosave,
	}
	switch strings.ToLower(*algo) {
	case "tarw":
		opts.Algorithm = mba.MATARW
	case "srw":
		opts.Algorithm = mba.MASRW
	case "mr":
		opts.Algorithm = mba.MR
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}
	switch strings.ToLower(*presetName) {
	case "twitter":
		opts.Preset = mba.Twitter
	case "gplus":
		opts.Preset = mba.GPlus
	case "tumblr":
		opts.Preset = mba.Tumblr
	default:
		fatal(fmt.Errorf("unknown preset %q", *presetName))
	}

	truth, err := p.GroundTruth(q)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("query:      %s\n", q)
	fmt.Printf("algorithm:  %s over %s API\n", opts.Algorithm, *presetName)
	est, err := p.Estimate(q, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("estimate:   %.2f\n", est.Value)
	fmt.Printf("truth:      %.2f (relative error %.1f%%)\n", truth, 100*stats.RelativeError(est.Value, truth))
	fmt.Printf("query cost: %d API calls (%d samples)\n", est.Cost, est.Samples)
	fmt.Printf("rate-limit: would take ~%v on the real platform\n", est.VirtualDuration)
	if *churn > 0 {
		fmt.Printf("churn:      %d heal events, %d vanished accounts observed\n", est.Healed, est.VanishedSeen)
	}
	if *walkers > 0 {
		fmt.Printf("fleet:      %d logical walkers (%d shed), %d watchdog trips, %d goroutines\n",
			est.WalkersRun, est.WalkersShed, est.WatchdogTrips, *walkers)
		fmt.Printf("schedule:   makespan ~%v over %d slots", est.Makespan, *walkers)
		if *coop {
			fmt.Printf(" (cooperative: %d parks, %d steps drained free)", est.Parks, est.DrainedSteps)
		}
		fmt.Println()
	}
	if *checkpoint != "" {
		fmt.Printf("durability: %d generations saved", est.CheckpointSaves)
		if est.Restarts > 0 || est.RecoveredCost > 0 {
			fmt.Printf(", resumed %d prior run(s), %d calls recovered from disk (not repaid)",
				est.Restarts, est.RecoveredCost)
		}
		fmt.Println()
	}
	if est.Degraded {
		fmt.Printf("degraded:   partial result (deadline, cancellation, or unrecoverable faults)\n")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mba:", err)
	os.Exit(1)
}
