package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"mba/internal/lint"
)

// cfgOf parses src (one or more declarations following an implicit
// `package p`) and builds the CFG of the first function declaration.
// Fixtures call mark("label") so tests can locate blocks by label; no
// type checking happens, so mark needs no declaration.
func cfgOf(t *testing.T, src string) *lint.CFG {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
			c := lint.BuildCFG(fn.Body)
			checkWellFormed(t, c)
			return c
		}
	}
	t.Fatal("no function declaration in fixture")
	return nil
}

// checkWellFormed asserts the structural CFG invariants every analysis
// relies on: Entry/Exit placement, index order, edge symmetry, and a
// successor-free Exit.
func checkWellFormed(t *testing.T, c *lint.CFG) {
	t.Helper()
	if len(c.Blocks) < 2 || c.Entry != c.Blocks[0] || c.Exit != c.Blocks[1] {
		t.Fatalf("Entry/Exit not at Blocks[0]/Blocks[1]")
	}
	if len(c.Exit.Succs) != 0 {
		t.Errorf("Exit has %d successors, want 0", len(c.Exit.Succs))
	}
	for i, b := range c.Blocks {
		if b.Index != i {
			t.Errorf("Blocks[%d].Index = %d", i, b.Index)
		}
		for _, e := range b.Succs {
			if e.From != b {
				t.Errorf("block %d successor edge has From %d", i, e.From.Index)
			}
			found := false
			for _, p := range e.To.Preds {
				if p == e {
					found = true
				}
			}
			if !found {
				t.Errorf("edge %d->%d missing from To.Preds", e.From.Index, e.To.Index)
			}
		}
		for _, e := range b.Preds {
			if e.To != b {
				t.Errorf("block %d predecessor edge has To %d", i, e.To.Index)
			}
		}
	}
}

// blockMarked returns the block whose nodes contain a mark("label")
// call.
func blockMarked(t *testing.T, c *lint.CFG, label string) *lint.Block {
	t.Helper()
	want := `"` + label + `"`
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			// A range head node carries the whole loop subtree; only its
			// operands belong to the head block.
			if rs, ok := n.(*ast.RangeStmt); ok {
				n = rs.X
			}
			found := false
			ast.Inspect(n, func(m ast.Node) bool {
				if bl, ok := m.(*ast.BasicLit); ok && bl.Value == want {
					found = true
				}
				return true
			})
			if found {
				return b
			}
		}
	}
	t.Fatalf("no block contains mark(%q)", label)
	return nil
}

// canReach reports whether to is reachable from from over Succs edges.
func canReach(from, to *lint.Block) bool {
	seen := map[*lint.Block]bool{from: true}
	stack := []*lint.Block{from}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == to {
			return true
		}
		for _, e := range b.Succs {
			if !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return false
}

func TestCFGIfElseBranchEdges(t *testing.T) {
	c := cfgOf(t, `
func f(ok bool) {
	if ok {
		mark("then")
	} else {
		mark("else")
	}
	mark("after")
}`)
	then := blockMarked(t, c, "then")
	els := blockMarked(t, c, "else")
	after := blockMarked(t, c, "after")
	// The condition block fans out with Cond set and opposite Branch
	// values on the two edges.
	var trueEdge, falseEdge *lint.Edge
	for _, e := range then.Preds {
		trueEdge = e
	}
	for _, e := range els.Preds {
		falseEdge = e
	}
	if trueEdge.Cond == nil || !trueEdge.Branch {
		t.Errorf("then edge: Cond=%v Branch=%v, want guarded true edge", trueEdge.Cond, trueEdge.Branch)
	}
	if falseEdge.Cond == nil || falseEdge.Branch {
		t.Errorf("else edge: Cond=%v Branch=%v, want guarded false edge", falseEdge.Cond, falseEdge.Branch)
	}
	if trueEdge.From != falseEdge.From {
		t.Errorf("branch edges leave different blocks %d and %d", trueEdge.From.Index, falseEdge.From.Index)
	}
	if !canReach(then, after) || !canReach(els, after) {
		t.Error("one of the branches cannot reach the join block")
	}
}

func TestCFGLabeledBreakContinue(t *testing.T) {
	c := cfgOf(t, `
func f(xs [][]int) {
outer:
	for _, row := range xs {
		for _, v := range row {
			if v < 0 {
				mark("precont")
				continue outer
			}
			if v == 0 {
				mark("prebrk")
				break outer
			}
		}
		mark("rowdone")
	}
	mark("after")
}`)
	prebrk := blockMarked(t, c, "prebrk")
	precont := blockMarked(t, c, "precont")
	after := blockMarked(t, c, "after")
	rowdone := blockMarked(t, c, "rowdone")

	// break outer jumps straight past both loops.
	if len(prebrk.Succs) != 1 || prebrk.Succs[0].To != after {
		t.Errorf("break outer: got %d successors, want exactly the after-loop block", len(prebrk.Succs))
	}
	// continue outer re-enters the OUTER range head (the block whose
	// node is the outer *ast.RangeStmt), skipping rowdone.
	if len(precont.Succs) != 1 {
		t.Fatalf("continue outer: got %d successors, want 1", len(precont.Succs))
	}
	target := precont.Succs[0].To
	if target == rowdone {
		t.Error("continue outer flowed into the rest of the outer body")
	}
	isRangeHead := false
	for _, n := range target.Nodes {
		if _, ok := n.(*ast.RangeStmt); ok {
			isRangeHead = true
		}
	}
	if !isRangeHead {
		t.Errorf("continue outer target (block %d) is not a range head", target.Index)
	}
}

func TestCFGGotoBackEdge(t *testing.T) {
	c := cfgOf(t, `
func f(n int) {
	i := 0
loop:
	if i < n {
		mark("body")
		i++
		goto loop
	}
	mark("done")
}`)
	body := blockMarked(t, c, "body")
	done := blockMarked(t, c, "done")
	if !canReach(body, body) {
		t.Error("goto loop did not form a cycle through the body")
	}
	if !canReach(body, done) {
		t.Error("loop body cannot reach the code after the loop")
	}
	if !canReach(done, c.Exit) {
		t.Error("fall-off-the-end block cannot reach Exit")
	}
}

func TestCFGSelectWithDefault(t *testing.T) {
	c := cfgOf(t, `
func f(ch chan int) {
	select {
	case v := <-ch:
		mark("recv")
		_ = v
	default:
		mark("def")
	}
	mark("after")
}`)
	after := blockMarked(t, c, "after")
	if !canReach(blockMarked(t, c, "recv"), after) || !canReach(blockMarked(t, c, "def"), after) {
		t.Error("select clause cannot reach the statement after the select")
	}
	// The comm clause head statement must appear as a node so analyses
	// see the receive.
	recv := blockMarked(t, c, "recv")
	hasComm := false
	for _, e := range recv.Preds {
		for _, n := range e.From.Nodes {
			if _, ok := n.(*ast.AssignStmt); ok {
				hasComm = true
			}
		}
	}
	if _, ok := recv.Nodes[0].(*ast.AssignStmt); ok {
		hasComm = true
	}
	if !hasComm {
		t.Error("comm clause assignment does not appear as a CFG node")
	}
}

func TestCFGEmptySelectKillsFlow(t *testing.T) {
	c := cfgOf(t, `
func f() {
	select {}
	mark("dead")
}`)
	dead := blockMarked(t, c, "dead")
	reach := c.Reachable()
	if reach[dead.Index] {
		t.Error("code after select{} is reachable")
	}
	if !reach[c.Entry.Index] {
		t.Error("entry block unreachable")
	}
}

func TestCFGDeferInLoop(t *testing.T) {
	c := cfgOf(t, `
func f(xs []int) {
	for _, x := range xs {
		defer mark("cleanup")
		_ = x
	}
	defer mark("final")
}`)
	if len(c.Defers) != 2 {
		t.Fatalf("got %d defers, want 2", len(c.Defers))
	}
	if c.Defers[0].Pos() >= c.Defers[1].Pos() {
		t.Error("defers not collected in source order")
	}
	// The loop-body defer also stays a node of its own block.
	cleanup := blockMarked(t, c, "cleanup")
	if _, ok := cleanup.Nodes[0].(*ast.DeferStmt); !ok {
		t.Errorf("loop defer not kept in its block; first node is %T", cleanup.Nodes[0])
	}
	if !canReach(c.Entry, cleanup) {
		t.Error("loop body with defer unreachable")
	}
}

func TestCFGPanicEdge(t *testing.T) {
	c := cfgOf(t, `
func f(ok bool) {
	if !ok {
		panic("boom")
	}
	mark("fine")
}`)
	panics, plain := 0, 0
	for _, e := range c.Exit.Preds {
		if e.Panic {
			panics++
		} else {
			plain++
		}
	}
	if panics != 1 || plain != 1 {
		t.Errorf("Exit has %d panic and %d plain predecessor edges, want 1 and 1", panics, plain)
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	c := cfgOf(t, `
func f(n int) {
	switch n {
	case 0:
		mark("zero")
		fallthrough
	case 1:
		mark("one")
	default:
		mark("def")
	}
	mark("after")
}`)
	zero := blockMarked(t, c, "zero")
	one := blockMarked(t, c, "one")
	after := blockMarked(t, c, "after")
	if len(zero.Succs) != 1 || zero.Succs[0].To != one {
		t.Error("fallthrough does not flow into the next case body")
	}
	for _, b := range []*lint.Block{zero, one, blockMarked(t, c, "def")} {
		if !canReach(b, after) {
			t.Errorf("case block %d cannot reach the statement after the switch", b.Index)
		}
	}
}

func TestCFGDeadCodeAfterReturn(t *testing.T) {
	c := cfgOf(t, `
func f() int {
	return 1
	mark("dead")
}`)
	dead := blockMarked(t, c, "dead")
	if len(dead.Preds) != 0 {
		t.Errorf("dead block has %d predecessors, want 0", len(dead.Preds))
	}
	reach := c.Reachable()
	if reach[dead.Index] {
		t.Error("Reachable marks dead code reachable")
	}
	if !reach[c.Exit.Index] {
		t.Error("Reachable misses Exit")
	}
}
