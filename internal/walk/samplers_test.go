package walk

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"mba/internal/graph"
)

func TestBFSVisitsEverythingOnce(t *testing.T) {
	g := memGraph{ring(12)}
	b := NewBFS(g, 0)
	seen := make(map[int64]int)
	for {
		u, err := b.Next()
		if errors.Is(err, ErrStuck) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		seen[u]++
	}
	if len(seen) != 12 {
		t.Fatalf("BFS visited %d nodes, want 12", len(seen))
	}
	for u, c := range seen {
		if c != 1 {
			t.Fatalf("node %d emitted %d times", u, c)
		}
	}
	if b.Visited() != 12 {
		t.Errorf("Visited = %d", b.Visited())
	}
}

func TestBFSOrderIsBreadthFirst(t *testing.T) {
	// Star: center first, then all leaves before anything else (there
	// is nothing else — use a two-level tree).
	g := graph.New()
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(1, 4)
	g.AddEdge(2, 5)
	b := NewBFS(memGraph{g}, 0)
	var order []int64
	for {
		u, err := b.Next()
		if errors.Is(err, ErrStuck) {
			break
		}
		order = append(order, u)
	}
	pos := make(map[int64]int)
	for i, u := range order {
		pos[u] = i
	}
	// Level-1 nodes (1,2) must come before level-2 nodes (3,4,5).
	for _, l1 := range []int64{1, 2} {
		for _, l2 := range []int64{3, 4, 5} {
			if pos[l1] > pos[l2] {
				t.Fatalf("BFS order violated: %d after %d (%v)", l1, l2, order)
			}
		}
	}
}

func TestDFSVisitsEverythingOnce(t *testing.T) {
	g := memGraph{barbell()}
	d := NewDFS(g, 0)
	seen := make(map[int64]bool)
	for {
		u, err := d.Next()
		if errors.Is(err, ErrStuck) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if seen[u] {
			t.Fatalf("node %d emitted twice", u)
		}
		seen[u] = true
	}
	if len(seen) != barbell().NumNodes() {
		t.Fatalf("DFS visited %d nodes, want %d", len(seen), barbell().NumNodes())
	}
	if d.Visited() != len(seen) {
		t.Errorf("Visited = %d, want %d", d.Visited(), len(seen))
	}
}

func TestCrawlersSkipFailingNodes(t *testing.T) {
	fg := failingGraph{g: ring(6), fail: map[int64]bool{2: true}}
	b := NewBFS(fg, 0)
	count := 0
	for {
		_, err := b.Next()
		if errors.Is(err, ErrStuck) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		count++
	}
	// Node 2's neighbors are unreachable through it, but 2 itself is
	// still emitted and the crawl continues around the other arc.
	if count != 6 {
		t.Fatalf("BFS emitted %d nodes, want 6 (ring reachable both ways)", count)
	}
}

func TestWeightedWalkConstantWeightIsSRW(t *testing.T) {
	// With constant weights the stationary distribution matches SRW's
	// (∝ degree). Star center should get ~1/2.
	g := graph.New()
	for i := int64(1); i <= 8; i++ {
		g.AddEdge(0, i)
	}
	rng := rand.New(rand.NewSource(1))
	w := NewWeighted(memGraph{g}, 0, func(int64) float64 { return 1 }, rng)
	center := 0
	steps := 20000
	for i := 0; i < steps; i++ {
		u, err := w.Step()
		if err != nil {
			t.Fatal(err)
		}
		if u == 0 {
			center++
		}
	}
	frac := float64(center) / float64(steps)
	if math.Abs(frac-0.5) > 0.03 {
		t.Errorf("constant-weight visit frequency = %v, want ~0.5", frac)
	}
}

func TestWeightedWalkBiasesTowardHeavyNodes(t *testing.T) {
	// Ring with one heavy node: the walk should visit it far more often
	// than 1/n.
	g := ring(10)
	rng := rand.New(rand.NewSource(2))
	heavy := int64(4)
	w := NewWeighted(memGraph{g}, 0, func(u int64) float64 {
		if u == heavy {
			return 50
		}
		return 1
	}, rng)
	hits := 0
	steps := 20000
	for i := 0; i < steps; i++ {
		u, _ := w.Step()
		if u == heavy {
			hits++
		}
	}
	frac := float64(hits) / float64(steps)
	if frac < 0.2 {
		t.Errorf("heavy node visited %v of steps, want well above 0.1", frac)
	}
	// Reweighting via SumIncidentWeight must recover the plain mean of
	// a constant function (sanity of the importance weights).
	siw, err := w.SumIncidentWeight(heavy)
	if err != nil {
		t.Fatal(err)
	}
	if siw != 2 { // heavy's neighbors are two weight-1 nodes
		t.Errorf("SumIncidentWeight(heavy) = %v, want 2", siw)
	}
	siwNbr, _ := w.SumIncidentWeight(heavy - 1)
	if siwNbr != 51 { // one heavy (50) + one light (1)
		t.Errorf("SumIncidentWeight(neighbor) = %v, want 51", siwNbr)
	}
}

func TestWeightedWalkZeroWeightsFallBack(t *testing.T) {
	g := ring(5)
	rng := rand.New(rand.NewSource(3))
	w := NewWeighted(memGraph{g}, 0, func(int64) float64 { return 0 }, rng)
	if _, err := w.Step(); err != nil {
		t.Fatalf("zero weights should fall back to uniform, got %v", err)
	}
	w.Jump(3)
	if w.Current() != 3 {
		t.Error("Jump failed")
	}
}

func TestWeightedWalkStuck(t *testing.T) {
	g := graph.New()
	g.AddNode(7)
	w := NewWeighted(memGraph{g}, 7, func(int64) float64 { return 1 }, rand.New(rand.NewSource(4)))
	if _, err := w.Step(); !errors.Is(err, ErrStuck) {
		t.Errorf("want ErrStuck, got %v", err)
	}
	fg := failingGraph{g: ring(3), fail: map[int64]bool{0: true}}
	wf := NewWeighted(fg, 0, func(int64) float64 { return 1 }, rand.New(rand.NewSource(5)))
	if _, err := wf.Step(); err == nil {
		t.Error("failing oracle should propagate")
	}
	if _, err := wf.SumIncidentWeight(0); err == nil {
		t.Error("failing oracle should propagate from SumIncidentWeight")
	}
}
