// Quickstart: generate a simulated microblog platform, ask one
// aggregate question through its rate-limited API, and compare the
// estimate against the exact ground truth.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mba"
)

func main() {
	// A 20k-user platform tracking the paper's three keywords
	// (privacy, new york, boston). Generation is deterministic in the
	// seed.
	cfg := mba.DefaultPlatformConfig()
	cfg.Seed = 42
	p, err := mba.NewPlatform(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's running example: AVG(number of followers) of users
	// who mentioned "privacy".
	q := mba.Avg("privacy", mba.Followers)
	truth, err := p.GroundTruth(q)
	if err != nil {
		log.Fatal(err)
	}

	// Estimate it through the simulated Twitter API with MA-TARW,
	// spending at most 20,000 API calls.
	est, err := p.Estimate(q, mba.Options{
		Algorithm: mba.MATARW,
		Budget:    20000,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("query:     %s\n", q)
	fmt.Printf("estimate:  %.1f followers\n", est.Value)
	fmt.Printf("truth:     %.1f followers\n", truth)
	fmt.Printf("cost:      %d API calls over %d walk instances\n", est.Cost, est.Samples)
	fmt.Printf("real time: ~%v under Twitter's 180 calls / 15 min limit\n", est.VirtualDuration)

	// A COUNT with MA-SRW for comparison.
	qc := mba.Count("privacy")
	truthC, _ := p.GroundTruth(qc)
	estC, err := p.Estimate(qc, mba.Options{Algorithm: mba.MASRW, Budget: 20000, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquery:     %s\n", qc)
	fmt.Printf("estimate:  %.0f users (truth %.0f) after %d calls\n", estC.Value, truthC, estC.Cost)
}
