package api

import (
	"errors"
	"testing"
	"time"

	"mba/internal/model"
	"mba/internal/platform"
)

func testPlatform(t *testing.T) *platform.Platform {
	t.Helper()
	p, err := platform.New(platform.Config{
		Seed:                  7,
		NumUsers:              2000,
		NumCommunities:        15,
		IntraEdgesPerUser:     4,
		InterEdgesPerUser:     1,
		HorizonDays:           90,
		TimelineCap:           3200,
		BackgroundPostsPerDay: 1,
		Keywords: []platform.KeywordConfig{
			{Name: "privacy", SeedsPerDay: 1.0},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPages(t *testing.T) {
	cases := []struct{ n, ps, want int }{
		{0, 10, 1},
		{1, 10, 1},
		{10, 10, 1},
		{11, 10, 2},
		{100, 10, 10},
		{5, 0, 1},
	}
	for _, c := range cases {
		if got := pages(c.n, c.ps); got != c.want {
			t.Errorf("pages(%d,%d) = %d, want %d", c.n, c.ps, got, c.want)
		}
	}
}

func TestSearchRecencyWindow(t *testing.T) {
	p := testPlatform(t)
	srv := NewServer(p, Twitter(), Faults{})
	hits, cost, err := srv.Search("privacy")
	if err != nil {
		t.Fatal(err)
	}
	if cost < 1 {
		t.Errorf("cost = %d, want >= 1", cost)
	}
	from := p.Horizon - Twitter().SearchWindow
	c := p.Cascade("privacy")
	for _, u := range hits {
		recent := false
		for _, post := range c.Posts[u] {
			if post.Time >= from {
				recent = true
			}
		}
		if !recent {
			t.Fatalf("search returned user %d with no recent post", u)
		}
	}
	// Every recent poster should be present (below the cap).
	want := 0
	for _, posts := range c.Posts {
		for _, post := range posts {
			if post.Time >= from {
				want++
				break
			}
		}
	}
	if len(hits) != want {
		t.Errorf("search hits = %d, want %d", len(hits), want)
	}
	// Unknown keyword: empty but still costs a call.
	hits, cost, err = srv.Search("nope")
	if err != nil || len(hits) != 0 || cost != 1 {
		t.Errorf("unknown keyword: hits=%v cost=%d err=%v", hits, cost, err)
	}
}

func TestSearchOrderingAndCap(t *testing.T) {
	p := testPlatform(t)
	preset := Twitter()
	preset.SearchMaxResults = 3
	srv := NewServer(p, preset, Faults{})
	hits, _, err := srv.Search("privacy")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) > 3 {
		t.Errorf("cap not applied: %d hits", len(hits))
	}
}

func TestConnectionsMatchSocialGraph(t *testing.T) {
	p := testPlatform(t)
	srv := NewServer(p, Twitter(), Faults{})
	ns, cost, err := srv.Connections(5)
	if err != nil {
		t.Fatal(err)
	}
	want := p.Social.Neighbors(5)
	if len(ns) != len(want) {
		t.Fatalf("connections = %d, want %d", len(ns), len(want))
	}
	for i := range ns {
		if ns[i] != want[i] {
			t.Fatalf("connection mismatch at %d", i)
		}
	}
	if cost != 1 {
		t.Errorf("cost = %d, want 1 for small neighbor list", cost)
	}
	// Result must be a copy: mutating it must not corrupt the graph.
	if len(ns) > 0 {
		ns[0] = -999
		if p.Social.Neighbors(5)[0] == -999 {
			t.Error("Connections exposed internal graph storage")
		}
	}
	if _, _, err := srv.Connections(-1); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("want ErrUnknownUser, got %v", err)
	}
	if _, _, err := srv.Connections(1 << 40); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("want ErrUnknownUser, got %v", err)
	}
}

func TestConnectionsPaging(t *testing.T) {
	p := testPlatform(t)
	preset := Twitter()
	preset.ConnectionsPageSize = 2
	srv := NewServer(p, preset, Faults{})
	var hub int64 = -1
	for _, u := range p.Social.Nodes() {
		if p.Social.Degree(u) >= 5 {
			hub = u
			break
		}
	}
	if hub < 0 {
		t.Skip("no hub found")
	}
	_, cost, err := srv.Connections(hub)
	if err != nil {
		t.Fatal(err)
	}
	wantPages := (p.Social.Degree(hub) + 1) / 2
	if cost != wantPages {
		t.Errorf("cost = %d, want %d", cost, wantPages)
	}
}

func TestTimelineCost(t *testing.T) {
	p := testPlatform(t)
	srv := NewServer(p, Twitter(), Faults{})
	tl, cost, err := srv.Timeline(3)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Profile.ID != 3 {
		t.Errorf("profile ID = %d", tl.Profile.ID)
	}
	if cost < 1 {
		t.Errorf("cost = %d", cost)
	}
	// Google+ paging should cost ~10x Twitter's for the same user.
	gsrv := NewServer(p, GPlus(), Faults{})
	_, gcost, err := gsrv.Timeline(3)
	if err != nil {
		t.Fatal(err)
	}
	if gcost < cost {
		t.Errorf("gplus cost %d should be >= twitter cost %d", gcost, cost)
	}
}

func TestPrivateUsers(t *testing.T) {
	p := testPlatform(t)
	srv := NewServer(p, Twitter(), Faults{PrivateProb: 0.2, Seed: 3})
	private := 0
	for u := int64(0); u < 100; u++ {
		if srv.IsPrivate(u) {
			private++
			if _, _, err := srv.Connections(u); !errors.Is(err, ErrPrivate) {
				t.Fatalf("want ErrPrivate for connections of %d", u)
			}
			if _, _, err := srv.Timeline(u); !errors.Is(err, ErrPrivate) {
				t.Fatalf("want ErrPrivate for timeline of %d", u)
			}
		}
	}
	if private == 0 {
		t.Error("no private users with PrivateProb=0.2")
	}
}

func TestTransientFaultsAndClientRetry(t *testing.T) {
	p := testPlatform(t)
	srv := NewServer(p, Twitter(), Faults{TransientProb: 0.3, Seed: 4})
	cl := NewClient(srv, 0)
	// With retries, calls should almost always succeed.
	failures := 0
	for u := int64(0); u < 50; u++ {
		if _, err := cl.Connections(u); err != nil {
			failures++
		}
	}
	if failures > 5 {
		t.Errorf("too many failures despite retry: %d", failures)
	}
	if cl.Cost() < 50 {
		t.Errorf("cost = %d, want >= 50 (retries are charged)", cl.Cost())
	}
}

func TestClientCaching(t *testing.T) {
	p := testPlatform(t)
	srv := NewServer(p, Twitter(), Faults{})
	cl := NewClient(srv, 0)
	if _, err := cl.Connections(1); err != nil {
		t.Fatal(err)
	}
	c1 := cl.Cost()
	if _, err := cl.Connections(1); err != nil {
		t.Fatal(err)
	}
	if cl.Cost() != c1 {
		t.Error("cached connections call was charged")
	}
	if _, err := cl.Timeline(1); err != nil {
		t.Fatal(err)
	}
	c2 := cl.Cost()
	if _, err := cl.Timeline(1); err != nil {
		t.Fatal(err)
	}
	if cl.Cost() != c2 {
		t.Error("cached timeline call was charged")
	}
	if _, err := cl.Search("privacy"); err != nil {
		t.Fatal(err)
	}
	c3 := cl.Cost()
	if _, err := cl.Search("privacy"); err != nil {
		t.Fatal(err)
	}
	if cl.Cost() != c3 {
		t.Error("cached search was charged")
	}
}

func TestClientPrivateCaching(t *testing.T) {
	p := testPlatform(t)
	srv := NewServer(p, Twitter(), Faults{PrivateProb: 1, Seed: 5})
	cl := NewClient(srv, 0)
	if _, err := cl.Connections(1); !errors.Is(err, ErrPrivate) {
		t.Fatal("want ErrPrivate")
	}
	c1 := cl.Cost()
	if _, err := cl.Timeline(1); !errors.Is(err, ErrPrivate) {
		t.Fatal("want ErrPrivate")
	}
	if cl.Cost() != c1 {
		t.Error("private status should be cached across call types")
	}
}

func TestClientBudget(t *testing.T) {
	p := testPlatform(t)
	srv := NewServer(p, Twitter(), Faults{})
	cl := NewClient(srv, 3)
	var err error
	for u := int64(0); u < 10; u++ {
		if _, err = cl.Connections(u); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted, got %v", err)
	}
	if cl.Cost() > 3 {
		t.Errorf("cost %d exceeds budget 3", cl.Cost())
	}
	if !cl.Exhausted() {
		t.Error("Exhausted should report true")
	}
	if cl.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", cl.Remaining())
	}
	unlimited := NewClient(srv, 0)
	if unlimited.Remaining() != -1 {
		t.Error("unlimited Remaining should be -1")
	}
}

func TestVirtualDuration(t *testing.T) {
	p := testPlatform(t)
	srv := NewServer(p, Twitter(), Faults{})
	cl := NewClient(srv, 0)
	for u := int64(0); u < 30; u++ {
		cl.Connections(u)
	}
	if cl.Cost() == 0 {
		t.Fatal("no cost accumulated")
	}
	// 30 calls fit inside the opening 180/15min window: no refill wait.
	if d := cl.VirtualDuration(); d != 0 {
		t.Errorf("duration = %v, want 0 (30 calls need no refill)", d)
	}
	// Tumblr is 1 per 10s: every charged call past the first waits for
	// one refill (Connections paginates, so two logical calls charge
	// several page fetches).
	tsrv := NewServer(p, Tumblr(), Faults{})
	tcl := NewClient(tsrv, 0)
	tcl.Connections(1)
	tcl.Connections(2)
	if tcl.Cost() < 2 {
		t.Fatalf("tumblr cost = %d, want at least 2", tcl.Cost())
	}
	want := time.Duration(tcl.Cost()-1) * 10 * time.Second
	if d := tcl.VirtualDuration(); d != want {
		t.Errorf("tumblr duration = %v, want %v (%d charged calls, one refill each past the first)", d, want, tcl.Cost())
	}
}

// TestVirtualOfWindowBoundaries is the regression for the window
// accounting at exact multiples of RateLimitCalls: the last call of a
// full quota lands inside the window that quota opened, so it must not
// be charged an extra refill. The old ceiling division overstated the
// clock by one full window per walker exactly at these boundaries.
func TestVirtualOfWindowBoundaries(t *testing.T) {
	tw := Twitter() // 180 calls / 15 minutes
	w := tw.RateLimitWindow
	cases := []struct {
		calls int
		want  time.Duration
	}{
		{0, 0},
		{1, 0},
		{179, 0},
		{180, 0}, // exact multiple: still inside the opening window
		{181, w}, // first call past the quota waits one refill
		{359, w},
		{360, w}, // exact multiple again
		{361, 2 * w},
	}
	for _, c := range cases {
		if got := VirtualOf(tw, Stats{Calls: c.calls}); got != c.want {
			t.Errorf("VirtualOf(%d calls) = %v, want %v", c.calls, got, c.want)
		}
	}
	// Waits ride on top of the pacing term.
	if got := VirtualOf(tw, Stats{Calls: 181, Wait: time.Minute}); got != w+time.Minute {
		t.Errorf("VirtualOf with wait = %v, want %v", got, w+time.Minute)
	}
	// No rate limit: virtual time is the accrued waits alone.
	if got := VirtualOf(Preset{}, Stats{Calls: 500, Wait: time.Second}); got != time.Second {
		t.Errorf("VirtualOf without rate limit = %v, want 1s", got)
	}
}

func TestResetCostKeepsCache(t *testing.T) {
	p := testPlatform(t)
	srv := NewServer(p, Twitter(), Faults{})
	cl := NewClient(srv, 0)
	cl.Connections(1)
	cl.ResetCost()
	if cl.Cost() != 0 {
		t.Error("ResetCost failed")
	}
	cl.Connections(1)
	if cl.Cost() != 0 {
		t.Error("cache lost after ResetCost")
	}
}

func TestTimelineMatchesPlatformVisibility(t *testing.T) {
	p := testPlatform(t)
	srv := NewServer(p, Twitter(), Faults{})
	c := p.Cascade("privacy")
	for u := range c.First {
		tl, _, err := srv.Timeline(u)
		if err != nil {
			t.Fatal(err)
		}
		want := p.Timeline(u)
		if len(tl.Posts) != len(want.Posts) {
			t.Fatalf("timeline posts differ for %d", u)
		}
		if _, ok := tl.FirstMention("privacy"); !ok {
			t.Fatalf("adopter %d has no visible mention", u)
		}
		break
	}
}

func TestWindowHelpers(t *testing.T) {
	w := model.Window{}
	if !w.Contains(0) || !w.Contains(1e6) {
		t.Error("zero window should contain everything")
	}
	w = model.Window{From: 10, To: 20}
	if w.Contains(9) || !w.Contains(10) || !w.Contains(19) || w.Contains(20) {
		t.Error("half-open window semantics broken")
	}
}
