package mba

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"
)

var (
	facadeOnce sync.Once
	facadePlat *Platform
	facadeErr  error
)

// facadePlatform builds one small platform shared by the facade tests.
func facadePlatform(t *testing.T) *Platform {
	t.Helper()
	facadeOnce.Do(func() {
		cfg := DefaultPlatformConfig()
		cfg.Seed = 5
		cfg.NumUsers = 8000
		cfg.NumCommunities = 40
		cfg.GenderKnownProb = 0.6
		facadePlat, facadeErr = NewPlatform(cfg)
	})
	if facadeErr != nil {
		t.Fatal(facadeErr)
	}
	return facadePlat
}

func TestNewPlatformValidates(t *testing.T) {
	cfg := DefaultPlatformConfig()
	cfg.NumUsers = 1
	if _, err := NewPlatform(cfg); err == nil {
		t.Error("degenerate platform accepted")
	}
}

func TestQueryBuilders(t *testing.T) {
	if q := Count("x"); q.Keyword != "x" || q.Measure.Name != "1" {
		t.Errorf("Count builder: %+v", q)
	}
	if q := Avg("x", Followers); q.Measure.Name != "followers" {
		t.Errorf("Avg builder: %+v", q)
	}
	if q := Sum("x", KeywordPostCount); q.Measure.Name != "keyword-posts" {
		t.Errorf("Sum builder: %+v", q)
	}
}

func TestEstimateAllAlgorithms(t *testing.T) {
	p := facadePlatform(t)
	q := Avg("privacy", Followers)
	truth, err := p.GroundTruth(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{MASRW, MATARW} {
		est, err := p.Estimate(q, Options{Algorithm: algo, Budget: 15000, Seed: 2})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		rel := abs(est.Value-truth) / truth
		t.Logf("%v: est=%.1f truth=%.1f relerr=%.3f cost=%d", algo, est.Value, truth, rel, est.Cost)
		if rel > 0.6 {
			t.Errorf("%v relative error %.3f beyond sanity", algo, rel)
		}
		if est.Cost <= 0 || est.Cost > 15000 {
			t.Errorf("%v cost = %d", algo, est.Cost)
		}
	}
	// MR answers COUNT.
	qc := Count("privacy")
	truthC, _ := p.GroundTruth(qc)
	est, err := p.Estimate(qc, Options{Algorithm: MR, Budget: 25000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("MR COUNT: est=%.0f truth=%.0f cost=%d", est.Value, truthC, est.Cost)
	if est.Value <= 0 {
		t.Error("MR produced non-positive count")
	}
}

func TestEstimateWithWindowAndPredicate(t *testing.T) {
	p := facadePlatform(t)
	q := TimeWindow(Count("privacy"), 0, 150)
	q.Where = append(q.Where, MaleOnly)
	truth, err := p.GroundTruth(q)
	if err != nil {
		t.Fatal(err)
	}
	if truth <= 0 {
		t.Skip("no matching users in fixture")
	}
	est, err := p.Estimate(q, Options{Algorithm: MASRW, Budget: 20000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(est.Value) || est.Value < 0 {
		t.Errorf("estimate = %v", est.Value)
	}
	t.Logf("windowed male COUNT: est=%.0f truth=%.0f", est.Value, truth)
}

func TestEstimateWithFaultInjection(t *testing.T) {
	p := facadePlatform(t)
	q := Avg("privacy", DisplayNameLength)
	est, err := p.Estimate(q, Options{
		Algorithm:           MASRW,
		Budget:              15000,
		Seed:                5,
		PrivateUserFraction: 0.05,
		TransientErrorRate:  0.02,
	})
	if err != nil {
		t.Fatalf("faulted estimate errored: %v", err)
	}
	if math.IsNaN(est.Value) {
		t.Error("no estimate despite faults")
	}
}

func TestEstimateTinyBudget(t *testing.T) {
	p := facadePlatform(t)
	q := Avg("privacy", Followers)
	est, err := p.Estimate(q, Options{Algorithm: MASRW, Budget: 30, Seed: 6})
	// Either a (rough) estimate or ErrNoEstimate — never a panic or a
	// budget overrun.
	if err != nil && !errors.Is(err, ErrNoEstimate) {
		t.Fatalf("unexpected error: %v", err)
	}
	if est.Cost > 30 {
		t.Errorf("cost %d exceeds budget", est.Cost)
	}
}

func TestEstimateFixedInterval(t *testing.T) {
	p := facadePlatform(t)
	q := Avg("privacy", Followers)
	est, err := p.Estimate(q, Options{
		Algorithm:     MATARW,
		Budget:        15000,
		Seed:          7,
		IntervalHours: 14 * 24, // fixed two-week lattice, no pilot spend
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(est.Value) {
		t.Error("no estimate with fixed interval")
	}
}

func TestPresetsChangeCostStructure(t *testing.T) {
	p := facadePlatform(t)
	q := Avg("privacy", DisplayNameLength)
	tw, err := p.Estimate(q, Options{Algorithm: MASRW, Preset: Twitter, Budget: 100000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	gp, err := p.Estimate(q, Options{Algorithm: MASRW, Preset: GPlus, Budget: 100000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if gp.Cost <= tw.Cost {
		t.Errorf("Google+ paging should cost more: twitter=%d gplus=%d", tw.Cost, gp.Cost)
	}
	tb, err := p.Estimate(q, Options{Algorithm: MASRW, Preset: Tumblr, Budget: 100000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if tb.VirtualDuration <= tw.VirtualDuration {
		t.Error("Tumblr's 1-per-10s limit should dominate virtual duration")
	}
}

func TestGroundTruthVisibleExposed(t *testing.T) {
	p := facadePlatform(t)
	full, err := p.GroundTruth(Count("privacy"))
	if err != nil {
		t.Fatal(err)
	}
	if full <= 0 {
		t.Fatal("no adopters")
	}
	// Sim() exposes the underlying simulator for advanced checks.
	vis, err := p.Sim().GroundTruthVisible(Count("privacy"))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full-vis)/full > 0.05 {
		t.Errorf("timeline-cap bias too large: %v vs %v", full, vis)
	}
}

// TestEstimateWalkersParallelismInvariant is the facade-level tentpole
// regression: with a fixed seed and budget, Options.Walkers only
// changes how many goroutines execute the fixed eight-walker logical
// plan, so the estimate must be bit-identical at walkers 1, 2, and 8.
func TestEstimateWalkersParallelismInvariant(t *testing.T) {
	p := facadePlatform(t)
	q := Avg("privacy", Followers)
	var values []uint64
	for _, w := range []int{1, 2, 8} {
		est, err := p.Estimate(q, Options{Algorithm: MASRW, Budget: 16000, Seed: 3, Walkers: w})
		if err != nil {
			t.Fatalf("walkers=%d: %v", w, err)
		}
		if est.WalkersRun != 8 {
			t.Fatalf("walkers=%d ran %d logical walkers, want the fixed plan of 8", w, est.WalkersRun)
		}
		values = append(values, math.Float64bits(est.Value))
	}
	for i, v := range values[1:] {
		if v != values[0] {
			t.Errorf("estimate at walkers=%d (bits %#x) differs from walkers=1 (bits %#x)",
				[]int{2, 8}[i], v, values[0])
		}
	}
}

// TestEstimateDeadlineDegrades: a virtual deadline shorter than the
// run yields a Degraded partial result — never a hang — on both the
// fleet path and the single-walker path.
func TestEstimateDeadlineDegrades(t *testing.T) {
	p := facadePlatform(t)
	q := Avg("privacy", Followers)
	for _, walkers := range []int{0, 4} {
		est, err := p.Estimate(q, Options{
			Algorithm: MASRW, Budget: 16000, Seed: 3,
			Walkers: walkers, Deadline: 2 * time.Hour,
		})
		if err != nil && !errors.Is(err, ErrNoEstimate) {
			t.Fatalf("walkers=%d: %v", walkers, err)
		}
		if !est.Degraded {
			t.Errorf("walkers=%d: run past its deadline not Degraded", walkers)
		}
		if est.Cost >= 16000 {
			t.Errorf("walkers=%d: deadline-cut run still spent the whole budget (%d)", walkers, est.Cost)
		}
		if est.Cost == 0 {
			t.Errorf("walkers=%d: no progress before the deadline", walkers)
		}
	}
}

// TestEstimateDurableCheckpointLifecycle: a completed run stores its
// final summary; a rerun with the same options answers from disk at
// zero API cost, and any option drift is rejected with the typed
// mismatch error.
func TestEstimateDurableCheckpointLifecycle(t *testing.T) {
	p := facadePlatform(t)
	q := Avg("privacy", Followers)
	dir := t.TempDir()
	opts := Options{Algorithm: MASRW, Budget: 6000, Seed: 11, Checkpoint: dir, AutosaveCalls: 500}

	est1, err := p.Estimate(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if est1.CheckpointSaves == 0 {
		t.Error("no durable generations written")
	}
	if est1.Restarts != 0 || est1.RecoveredCost != 0 {
		t.Errorf("fresh run claims recovery: restarts=%d recovered=%d", est1.Restarts, est1.RecoveredCost)
	}

	est2, err := p.Estimate(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(est2.Value) != math.Float64bits(est1.Value) {
		t.Errorf("stored result %v != original %v", est2.Value, est1.Value)
	}
	if est2.Cost != est1.Cost || est2.Samples != est1.Samples {
		t.Errorf("stored cost/samples %d/%d != original %d/%d", est2.Cost, est2.Samples, est1.Cost, est1.Samples)
	}
	if est2.RecoveredCost != est1.Cost {
		t.Errorf("rerun recovered %d calls from disk, want the full %d (zero repaid)", est2.RecoveredCost, est1.Cost)
	}
	if est2.CheckpointSaves != 0 {
		t.Errorf("stored-result fast path wrote %d generations", est2.CheckpointSaves)
	}

	drift := opts
	drift.Seed = 12
	if _, err := p.Estimate(q, drift); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("resume under a different seed = %v, want ErrCheckpointMismatch", err)
	}
}

// TestEstimateDurableCheckpointResumesInterrupted: a deadline-cut run
// leaves a resumable walk checkpoint on disk; the next call picks it
// up, inherits the spent calls without repaying them, and finishes.
func TestEstimateDurableCheckpointResumesInterrupted(t *testing.T) {
	p := facadePlatform(t)
	q := Avg("privacy", Followers)
	dir := t.TempDir()
	interrupted := Options{
		Algorithm: MASRW, Budget: 16000, Seed: 3,
		Deadline: 2 * time.Hour, Checkpoint: dir, AutosaveCalls: 400,
	}
	est1, err := p.Estimate(q, interrupted)
	if err != nil && !errors.Is(err, ErrNoEstimate) {
		t.Fatal(err)
	}
	if !est1.Degraded || est1.Cost == 0 || est1.Cost >= 16000 {
		t.Fatalf("deadline fixture did not interrupt mid-run: degraded=%v cost=%d", est1.Degraded, est1.Cost)
	}

	resumed := interrupted
	resumed.Deadline = 0
	est2, err := p.Estimate(q, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if est2.Restarts != 1 {
		t.Errorf("Restarts = %d, want 1 (one interrupted run in the lineage)", est2.Restarts)
	}
	if est2.RecoveredCost != est1.Cost {
		t.Errorf("recovered %d calls from disk, interrupted run had spent %d", est2.RecoveredCost, est1.Cost)
	}
	if est2.Degraded {
		t.Error("resumed run without a deadline still degraded")
	}
	if est2.Cost <= est1.Cost {
		t.Errorf("resume made no progress: %d after %d", est2.Cost, est1.Cost)
	}
	if math.IsNaN(est2.Value) {
		t.Error("resumed run produced no estimate")
	}
}

// TestEstimateDurableCheckpointFleet: the fleet path persists every
// unit after every scheduler turn; a completed flight answers reruns
// from disk, and an interrupted one resumes unit-by-unit.
func TestEstimateDurableCheckpointFleet(t *testing.T) {
	p := facadePlatform(t)
	q := Avg("privacy", Followers)

	dir := t.TempDir()
	opts := Options{Algorithm: MASRW, Budget: 16000, Seed: 3, Walkers: 4, Checkpoint: dir}
	est1, err := p.Estimate(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if est1.CheckpointSaves == 0 {
		t.Error("fleet run wrote no durable generations")
	}
	est2, err := p.Estimate(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(est2.Value) != math.Float64bits(est1.Value) {
		t.Errorf("stored fleet result %v != original %v", est2.Value, est1.Value)
	}
	if est2.RecoveredCost != est1.Cost || est2.CheckpointSaves != 0 {
		t.Errorf("fleet fast path recovered=%d saves=%d, want %d/0", est2.RecoveredCost, est2.CheckpointSaves, est1.Cost)
	}
	if est2.WalkersRun != est1.WalkersRun {
		t.Errorf("stored flight reports %d walkers, original ran %d", est2.WalkersRun, est1.WalkersRun)
	}

	// Interrupted flight: deadline cuts it, the rerun resumes it.
	dir2 := t.TempDir()
	cut := opts
	cut.Checkpoint = dir2
	cut.Deadline = 2 * time.Hour
	e1, err := p.Estimate(q, cut)
	if err != nil && !errors.Is(err, ErrNoEstimate) {
		t.Fatal(err)
	}
	if !e1.Degraded {
		t.Fatal("fleet deadline fixture did not interrupt the flight")
	}
	resume := opts
	resume.Checkpoint = dir2
	e2, err := p.Estimate(q, resume)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Restarts != 1 {
		t.Errorf("fleet Restarts = %d, want 1", e2.Restarts)
	}
	if e2.RecoveredCost == 0 {
		t.Error("fleet resume inherited no spent calls from disk")
	}
	if e2.Degraded {
		t.Error("resumed flight still degraded")
	}
	if math.IsNaN(e2.Value) {
		t.Error("resumed flight produced no estimate")
	}
}
