package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"mba/internal/query"
)

// maxRequestBody bounds how much of a request body the decoder reads;
// a query request is a few hundred bytes, so 1 MiB is generous.
const maxRequestBody = 1 << 20

// DecodeRequest parses one JSON estimation request from r. It is the
// single entry point for untrusted bytes: a malformed body — invalid
// JSON, an unparsable query, an unknown algorithm, negative budgets or
// clocks — returns an error, never a panic, and never reads more than
// maxRequestBody bytes. On success the request's query text is
// normalized to its canonical form.
func DecodeRequest(r io.Reader) (Request, query.Query, error) {
	var req Request
	dec := json.NewDecoder(io.LimitReader(r, maxRequestBody))
	if err := dec.Decode(&req); err != nil {
		return req, query.Query{}, fmt.Errorf("serve: malformed request body: %w", err)
	}
	if req.Tenant == "" {
		return req, query.Query{}, fmt.Errorf("serve: request names no tenant")
	}
	q, err := parseFor(req)
	if err != nil {
		return req, query.Query{}, err
	}
	req.Query = q.String()
	return req, q, nil
}

// parseFor validates the request's query and scalar fields.
func parseFor(req Request) (query.Query, error) {
	q, err := query.ParseQuery(req.Query)
	if err != nil {
		return query.Query{}, err
	}
	if err := q.Validate(); err != nil {
		return query.Query{}, err
	}
	switch req.Algo {
	case "", AlgoTARW, AlgoSRW, AlgoMR:
	default:
		return query.Query{}, fmt.Errorf("serve: unknown algorithm %q", req.Algo)
	}
	if req.Budget < 0 {
		return query.Query{}, fmt.Errorf("serve: negative budget %d", req.Budget)
	}
	if req.Seed < 0 {
		return query.Query{}, fmt.Errorf("serve: negative seed %d", req.Seed)
	}
	if req.DeadlineNs < 0 || req.ArrivalNs < 0 {
		return query.Query{}, fmt.Errorf("serve: negative virtual clock")
	}
	return q, nil
}

// Handler returns the service's HTTP API:
//
//	POST /v1/query   — submit a request, block for its Response
//	GET  /v1/stats   — service metrics and ledger accounting
//	GET  /healthz    — liveness
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		req, _, err := DecodeRequest(r.Body)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		resp := s.Do(r.Context(), req)
		status := http.StatusOK
		switch resp.Status {
		case StatusShed:
			status = http.StatusTooManyRequests
		case StatusError:
			status = http.StatusUnprocessableEntity
		}
		writeJSON(w, status, resp)
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		met, led := s.Snapshot()
		writeJSON(w, http.StatusOK, struct {
			Metrics Metrics     `json:"metrics"`
			Ledger  interface{} `json:"ledger"`
		}{met, led})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}
