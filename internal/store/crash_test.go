// External tests: the crash harness and durable round-trips exercised
// against real (small) estimation runs, with audit.CheckDurability as
// the referee — which needs the external package, since audit imports
// store.
package store_test

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"mba/internal/api"
	"mba/internal/audit"
	"mba/internal/core"
	"mba/internal/fleet"
	"mba/internal/model"
	"mba/internal/platform"
	"mba/internal/query"
	"mba/internal/store"
)

var (
	crashOnce sync.Once
	crashPlat *platform.Platform
	crashErr  error
)

// crashPlatform mirrors the core test fixture (same config, so the
// breaker-tripping outage fixture behaves identically here).
func crashPlatform(t *testing.T) *platform.Platform {
	t.Helper()
	crashOnce.Do(func() {
		crashPlat, crashErr = platform.New(platform.Config{
			Seed:                  99,
			NumUsers:              12000,
			NumCommunities:        50,
			IntraEdgesPerUser:     7,
			InterEdgesPerUser:     1.2,
			HorizonDays:           180,
			TimelineCap:           3200,
			BackgroundPostsPerDay: 1.0,
			GenderKnownProb:       0.6,
			Keywords: []platform.KeywordConfig{
				{Name: "privacy", SeedsPerDay: 4.0,
					AffinityFrac: 0.15, InterestHigh: 0.8, AdoptProb: 0.3,
					RepeatMentionMean: 3,
					Spikes:            []platform.Spike{{Day: 90, DurationDays: 8, Multiplier: 5}}},
			},
		})
	})
	if crashErr != nil {
		t.Fatal(crashErr)
	}
	return crashPlat
}

// srwRun is the workload under crash test: one MA-SRW run on a
// fault-free server — the shape the harness's Runner replays.
func srwRun(p *platform.Platform, seed int64, budget int, resume *core.Checkpoint, pol core.AutosavePolicy) (core.Result, error) {
	client := api.NewClient(api.NewServer(p, api.Twitter(), api.Faults{Seed: seed}), budget)
	s, err := core.NewSession(client, query.AvgQuery("privacy", query.Followers), model.Day)
	if err != nil {
		return core.Result{}, err
	}
	return core.RunSRW(s, core.SRWOptions{View: core.LevelView, Seed: seed, Resume: resume, Autosave: pol})
}

// nearestClock picks the recorded autosave clock closest to target.
func nearestClock(clocks []int, target, budget int) int {
	best := -1
	for _, c := range clocks {
		if c < 1 || c >= budget {
			continue
		}
		if best < 0 || absInt(c-target) < absInt(best-target) {
			best = c
		}
	}
	return best
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// TestRunWithCrashesBitIdentical is the tentpole claim in miniature: a
// run killed at an autosave boundary and restarted from the durable
// store finishes with the bit-identical estimate at identical cost,
// repaying zero API calls.
func TestRunWithCrashesBitIdentical(t *testing.T) {
	p := crashPlatform(t)
	const budget, every, seed = 3000, 250, 5

	var clocks []int
	base, err := srwRun(p, seed, budget, nil, core.AutosavePolicy{EveryCalls: every, Save: func(ck *core.Checkpoint) error {
		clocks = append(clocks, ck.SpentCost())
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	mid := nearestClock(clocks, budget/2, budget)
	if mid < 1 {
		t.Fatalf("base run recorded no usable autosave clocks: %v", clocks)
	}

	plan := store.CrashPlan{
		Plan:   store.PlanKey{Algo: "srw", Seed: seed},
		Budget: budget,
		Points: []int{mid},
	}
	rec, err := store.RunWithCrashes(store.NewMemFS(), "ck", plan,
		func(b int, resume *core.Checkpoint, save func(*core.Checkpoint) error) (core.Result, error) {
			return srwRun(p, seed, b, resume, core.AutosavePolicy{EveryCalls: every, Save: save})
		})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(rec.Final.Estimate) != math.Float64bits(base.Estimate) {
		t.Errorf("recovered estimate %v != uninterrupted %v", rec.Final.Estimate, base.Estimate)
	}
	if rec.Final.Cost != base.Cost {
		t.Errorf("recovered cost %d != uninterrupted %d", rec.Final.Cost, base.Cost)
	}
	if rec.Restarts != 1 || len(rec.Trials) != 1 {
		t.Fatalf("restarts=%d trials=%d, want exactly one crash round", rec.Restarts, len(rec.Trials))
	}
	if tr := rec.Trials[0]; tr.Repaid != 0 || tr.CrashClock != mid || tr.ResumeClock != mid {
		t.Errorf("save-aligned crash repaid calls: %+v", tr)
	}
	if rec.LossEvents != 0 || rec.ScratchRestarts != 0 || rec.CorruptSlots != 0 {
		t.Errorf("fault-free recovery lost data: %+v", rec)
	}
	rep := (audit.Auditor{Budget: budget}).CheckDurability(base, rec, true)
	if len(rep.Violations) > 0 {
		t.Errorf("durability audit: %v", rep.Violations)
	}
}

// TestRunWithCrashesDamageFallsBack: every injected storage fault is
// detected and recovered via generation fallback; the final estimate
// is still bit-identical — the damaged trials just repay the calls
// since the surviving generation.
func TestRunWithCrashesDamageFallsBack(t *testing.T) {
	p := crashPlatform(t)
	const budget, every, seed = 3000, 250, 5

	var clocks []int
	base, err := srwRun(p, seed, budget, nil, core.AutosavePolicy{EveryCalls: every, Save: func(ck *core.Checkpoint) error {
		clocks = append(clocks, ck.SpentCost())
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	p1 := nearestClock(clocks, budget/3, budget)
	p2 := nearestClock(clocks, 2*budget/3, budget)
	if p1 < 1 || p2 <= p1 {
		t.Fatalf("no usable crash points in autosave clocks %v", clocks)
	}

	plan := store.CrashPlan{
		Plan:   store.PlanKey{Algo: "srw", Seed: seed},
		Budget: budget,
		Points: []int{p1, p2},
		Damage: []store.DamageKind{store.DamageBitFlip, store.DamageRemove},
	}
	rec, err := store.RunWithCrashes(store.NewMemFS(), "ck", plan,
		func(b int, resume *core.Checkpoint, save func(*core.Checkpoint) error) (core.Result, error) {
			return srwRun(p, seed, b, resume, core.AutosavePolicy{EveryCalls: every, Save: save})
		})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(rec.Final.Estimate) != math.Float64bits(base.Estimate) {
		t.Errorf("recovered estimate %v != uninterrupted %v despite fallbacks", rec.Final.Estimate, base.Estimate)
	}
	if rec.FaultsInjected != 2 {
		t.Fatalf("FaultsInjected = %d, want 2", rec.FaultsInjected)
	}
	if rec.LossEvents != 2 {
		t.Errorf("LossEvents = %d, want one per injected fault", rec.LossEvents)
	}
	if rec.CorruptSlots < 1 || rec.Fallbacks < 1 {
		t.Errorf("bit flip not detected by checksum: %+v", rec)
	}
	for i, tr := range rec.Trials {
		if tr.Repaid <= 0 {
			t.Errorf("trial %d: damaged crash repaid %d calls, want > 0 (fell back to an older generation)", i, tr.Repaid)
		}
	}
	rep := (audit.Auditor{Budget: budget}).CheckDurability(base, rec, false)
	if len(rep.Violations) > 0 {
		t.Errorf("durability audit: %v", rep.Violations)
	}
}

// TestDurableCheckpointCarriesBreakerState extends the in-memory
// breaker-resume regression (core.TestResumeCarriesBreakerState) to
// the store path: an open circuit breaker must survive the disk
// round-trip and still charge its half-open cooldown after resuming.
func TestDurableCheckpointCarriesBreakerState(t *testing.T) {
	pol := api.DefaultRetryPolicy()
	pol.MaxRetries = 2
	pol.Jitter = 0
	pol.BreakerThreshold = 1
	pol.BreakerCooldown = time.Minute

	p := crashPlatform(t)
	outage := api.Faults{OutageMeanGap: 120, OutageLength: 60, Seed: 24}
	client1 := api.NewClient(api.NewServer(p, api.Twitter(), outage), 30000)
	client1.Policy = pol
	s1, err := core.NewSession(client1, query.AvgQuery("privacy", query.Followers), model.Day)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := core.RunSRW(s1, core.SRWOptions{View: core.LevelView, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res1.Degraded || !errors.Is(res1.DegradedBy, api.ErrCircuitOpen) {
		t.Fatalf("fixture did not trip the breaker: degraded=%v by %v", res1.Degraded, res1.DegradedBy)
	}
	if !res1.Checkpoint.Breaker().Open {
		t.Fatal("checkpoint lost the open breaker state before it even hit disk")
	}

	// Durable round-trip: State → Save → reboot → Load → FromState.
	mem := store.NewMemFS()
	st, err := store.OpenFS(mem, "ck")
	if err != nil {
		t.Fatal(err)
	}
	ws := res1.Checkpoint.State()
	if err := st.Save(&store.Snapshot{Plan: store.PlanKey{Algo: "srw", Seed: 1}, Walk: &ws}); err != nil {
		t.Fatal(err)
	}
	st2, err := store.OpenFS(mem, "ck")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := st2.Load()
	if err != nil {
		t.Fatal(err)
	}
	ck2, err := core.CheckpointFromState(*snap.Walk)
	if err != nil {
		t.Fatal(err)
	}
	if !ck2.Breaker().Open {
		t.Fatal("open breaker silently closed by the disk round-trip")
	}
	if ck2.SpentCost() != res1.Cost {
		t.Fatalf("spent cost drifted on disk: %d vs %d", ck2.SpentCost(), res1.Cost)
	}

	// Resume on a healthy server: the restored breaker must charge the
	// half-open cooldown before the first fresh call goes through.
	client2 := api.NewClient(api.NewServer(p, api.Twitter(), api.Faults{}), 30000-res1.Cost)
	client2.Policy = pol
	s2, err := core.NewSession(client2, query.AvgQuery("privacy", query.Followers), model.Day)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := core.RunSRW(s2, core.SRWOptions{View: core.LevelView, Seed: 1, Resume: ck2})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Degraded {
		t.Errorf("resume on healthy server degraded: %v", res2.DegradedBy)
	}
	if client2.Stats().Wait < pol.BreakerCooldown {
		t.Errorf("resumed client waited %v, want at least the %v breaker cooldown — "+
			"the disk round-trip silently closed the tripped breaker",
			client2.Stats().Wait, pol.BreakerCooldown)
	}
}

// TestFleetSaverSeedsPlaceholders: units that never reported must land
// on disk as degraded placeholders, so a resume re-runs them instead
// of trusting a unit that never ran.
func TestFleetSaverSeedsPlaceholders(t *testing.T) {
	mem := store.NewMemFS()
	st, err := store.OpenFS(mem, "ck")
	if err != nil {
		t.Fatal(err)
	}
	plan := store.PlanKey{Algo: "MA-SRW", Units: 3}
	saver := store.NewFleetSaver(st, plan, 3)
	saver.Save(fleet.UnitResult{Unit: 1, Seed: 42, Estimate: 12.5, Cost: 100, Samples: 9})
	if err := saver.Err(); err != nil {
		t.Fatal(err)
	}
	snap, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Fleet == nil || len(snap.Fleet.Units) != 3 {
		t.Fatalf("durable flight shape: %+v", snap.Fleet)
	}
	if u := snap.Fleet.Units[1]; u.EstimateBits != math.Float64bits(12.5) || u.Cost != 100 || u.Degraded {
		t.Errorf("reported unit mangled: %+v", u)
	}
	for _, i := range []int{0, 2} {
		u := snap.Fleet.Units[i]
		if !u.Degraded || u.DegradedCode != "interrupted" || !math.IsNaN(math.Float64frombits(u.EstimateBits)) {
			t.Errorf("unit %d not a degraded placeholder: %+v", i, u)
		}
	}
	// A unit index outside the planned flight is a saver bug, retained
	// for Err rather than silently dropped.
	saver.Save(fleet.UnitResult{Unit: 7})
	if saver.Err() == nil {
		t.Error("out-of-plan unit index not reported")
	}
}

// TestFleetResumeFromDiskMatchesMemory: resuming an interrupted fleet
// from the disk round-tripped checkpoint must be bit-identical to
// resuming from the in-memory one — the DTO loses nothing that the
// merge depends on.
func TestFleetResumeFromDiskMatchesMemory(t *testing.T) {
	p := crashPlatform(t)
	q := query.AvgQuery("privacy", query.Followers)
	walk := func(ctx context.Context, s *core.Session, seed int64, ck *core.Checkpoint) (core.Result, error) {
		return core.RunSRW(s, core.SRWOptions{View: core.LevelView, Seed: seed, Resume: ck, Ctx: ctx})
	}
	cfg := fleet.Config{
		Platform: p, Preset: api.Twitter(), Query: q, Interval: model.Day,
		Walk: walk, Budget: 12000, Seed: 3, Parallelism: 2,
		Deadline: 20 * time.Minute,
	}
	res1, err := fleet.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res1.Degraded || res1.Checkpoint == nil {
		t.Fatalf("deadline fixture did not interrupt the flight (degraded=%v)", res1.Degraded)
	}

	// Path A: resume from the in-memory checkpoint.
	cfgA := cfg
	cfgA.Deadline = 0
	cfgA.Resume = res1.Checkpoint
	resA, err := fleet.Run(context.Background(), cfgA)
	if err != nil {
		t.Fatal(err)
	}

	// Path B: resume from the checkpoint after a full disk round-trip.
	mem := store.NewMemFS()
	st, err := store.OpenFS(mem, "ck")
	if err != nil {
		t.Fatal(err)
	}
	fs := res1.Checkpoint.State()
	if err := st.Save(&store.Snapshot{Plan: store.PlanKey{Algo: "srw", Seed: 3}, Fleet: &fs}); err != nil {
		t.Fatal(err)
	}
	st2, err := store.OpenFS(mem, "ck")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := st2.Load()
	if err != nil {
		t.Fatal(err)
	}
	ckB, err := fleet.CheckpointFromState(*snap.Fleet)
	if err != nil {
		t.Fatal(err)
	}
	cfgB := cfg
	cfgB.Deadline = 0
	cfgB.Resume = ckB
	resB, err := fleet.Run(context.Background(), cfgB)
	if err != nil {
		t.Fatal(err)
	}

	if math.Float64bits(resA.Estimate) != math.Float64bits(resB.Estimate) {
		t.Errorf("disk resume estimate %v != memory resume %v", resB.Estimate, resA.Estimate)
	}
	if resA.Cost != resB.Cost || resA.Samples != resB.Samples {
		t.Errorf("disk resume cost/samples %d/%d != memory %d/%d",
			resB.Cost, resB.Samples, resA.Cost, resA.Samples)
	}
}
