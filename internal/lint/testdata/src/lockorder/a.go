// Package lockorder exercises the whole-program lock-order analysis:
// conflicting acquisition orders, interprocedural acquisition through
// callee summaries, re-acquisition, and a clean consistently-ordered
// pair.
package lockorder

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }
type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }

// ab and ba acquire A.mu and B.mu in opposite orders: a lock-order
// cycle, i.e. a potential deadlock under concurrency.
func ab(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `acquires lockorder\.B\.mu while holding lockorder\.A\.mu, but another path`
	b.mu.Unlock()
}

func ba(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock() // want `acquires lockorder\.A\.mu while holding lockorder\.B\.mu, but another path`
	a.mu.Unlock()
}

// lockB acquires B.mu; cThenB reaches it only through this helper, so
// the edge C.mu -> B.mu exists only in the callee's summary.
func lockB(b *B) {
	b.mu.Lock()
	b.mu.Unlock()
}

func cThenB(c *C, b *B) {
	c.mu.Lock()
	defer c.mu.Unlock()
	lockB(b) // want `acquires lockorder\.B\.mu while holding lockorder\.C\.mu via`
}

func bThenC(c *C, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	c.mu.Lock() // want `acquires lockorder\.C\.mu while holding lockorder\.B\.mu, but another path`
	c.mu.Unlock()
}

// dd re-acquires a held mutex: guaranteed self-deadlock.
func dd(d *D) {
	d.mu.Lock()
	d.mu.Lock() // want `acquires lockorder\.D\.mu while already holding it`
	d.mu.Unlock()
	d.mu.Unlock()
}

// E.mu and F.mu are always taken in the same order: clean.
type E struct{ mu sync.Mutex }
type F struct{ mu sync.Mutex }

func ef1(e *E, f *F) {
	e.mu.Lock()
	defer e.mu.Unlock()
	f.mu.Lock()
	f.mu.Unlock()
}

func ef2(e *E, f *F) {
	e.mu.Lock()
	f.mu.Lock()
	f.mu.Unlock()
	e.mu.Unlock()
}
