package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"math/bits"
	"sort"
	"sync"
)

// This file is the goroutine-escape layer over the points-to analysis:
// which goroutines can a function (and so an access site in it) run
// on, and which locks are provably held at each program point. The
// sharedguard analyzer combines the two: an object reachable from two
// concurrent contexts must see a consistent lockset at every mutable
// access.
//
// Contexts are bitsets: bit 0 is the main context (everything
// reachable from program roots without crossing a `go`), bit i+1 is
// spawn site i (one per `go` statement, in sorted source order). A
// spawn site lexically inside a loop — or one whose spawner itself
// runs multi-instance — is "multi": two instances of its spawned
// function can run concurrently with each other.

// spawnSite is one `go` statement.
type spawnSite struct {
	index   int // bit index+1 in context bitsets
	fn      *Func
	stmt    *ast.GoStmt
	callees []*Func
	inLoop  bool
	multi   bool
}

// ctxBits is a goroutine-context bitset.
type ctxBits []uint64

func newCtxBits(n int) ctxBits { return make(ctxBits, (n+63)/64) }

func (c ctxBits) set(i int) bool {
	w, b := i/64, uint(i%64)
	if c[w]&(1<<b) != 0 {
		return false
	}
	c[w] |= 1 << b
	return true
}

func (c ctxBits) has(i int) bool { return c[i/64]&(1<<uint(i%64)) != 0 }

func (c ctxBits) orFrom(o ctxBits) bool {
	changed := false
	for i, w := range o {
		if c[i]|w != c[i] {
			c[i] |= w
			changed = true
		}
	}
	return changed
}

func (c ctxBits) count() int {
	n := 0
	for _, w := range c {
		n += bits.OnesCount64(w)
	}
	return n
}

// union returns a fresh bitset c ∪ o.
func (c ctxBits) union(o ctxBits) ctxBits {
	u := make(ctxBits, len(c))
	copy(u, c)
	u.orFrom(o)
	return u
}

// spawn-status lattice: where is a spawn site relative to a program
// point in its spawner?
const (
	spawnNotYet = iota // the go statement has not executed
	spawnLive          // launched (or unknown): the goroutine may run
	spawnJoined        // a WaitGroup.Wait joined it
)

// escapeInfo is the program-wide escape/lockset layer.
type escapeInfo struct {
	prog    *Program
	sites   []*spawnSite
	goCalls map[*ast.CallExpr]bool
	// ctxs maps every Func to the contexts it may run on.
	ctxs map[*Func]ctxBits
	// entryLocks maps every reached Func to the lock keys provably
	// held at its entry on every static call path (nil = ⊤, never
	// constrained — treated as empty).
	entryLocks map[*Func]map[string]bool
	// mu guards nodeLocks and spawnStatus: the replay memos fill
	// lazily from analyzer passes, which run on worker goroutines.
	mu sync.Mutex
	// nodeLocks / spawnStatus memoize per-function replays.
	nodeLocks   map[*Func]map[ast.Node]map[string]bool
	spawnStatus map[*Func]map[ast.Node]map[*spawnSite]int
	// onceFns marks closures passed to (*sync.Once).Do: their bodies
	// execute at most once per Once value, so two accesses inside the
	// same Once'd function cannot be concurrent.
	onceFns map[*Func]bool
	// sharedObj[i] reports whether abstract object i is reachable from
	// more than one goroutine (see computeSharedObjects).
	sharedObj []bool
}

// buildEscape computes spawn sites, contexts, and entry locksets.
func (p *Program) buildEscape() {
	esc := &escapeInfo{
		prog:        p,
		goCalls:     map[*ast.CallExpr]bool{},
		ctxs:        map[*Func]ctxBits{},
		entryLocks:  map[*Func]map[string]bool{},
		nodeLocks:   map[*Func]map[ast.Node]map[string]bool{},
		spawnStatus: map[*Func]map[ast.Node]map[*spawnSite]int{},
		onceFns:     map[*Func]bool{},
	}
	esc.collectSites()
	esc.computeContexts()
	esc.computeEntryLocks()
	esc.computeSharedObjects()
	esc.collectOnceFns()
	p.escape = esc
}

// collectOnceFns records every closure passed directly to
// (*sync.Once).Do.
func (esc *escapeInfo) collectOnceFns() {
	for _, f := range esc.prog.Funcs {
		if f.Body == nil {
			continue
		}
		info := f.Pkg.Info
		inspectShallow(f.Body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return
			}
			sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Do" {
				return
			}
			s := info.Selections[sel]
			if s == nil || s.Kind() != types.MethodVal {
				return
			}
			n2 := namedRecv(s.Recv())
			if n2 == nil || n2.Obj().Pkg() == nil ||
				n2.Obj().Pkg().Path() != "sync" || n2.Obj().Name() != "Once" {
				return
			}
			if lit, ok := unparen(call.Args[0]).(*ast.FuncLit); ok {
				if g := esc.prog.byNode[lit]; g != nil {
					esc.onceFns[g] = true
				}
			}
		})
	}
}

// ── object escape ───────────────────────────────────────────────────

// computeSharedObjects marks every abstract object reachable from more
// than one goroutine. The roots of sharing are:
//
//   - package-level objects (any goroutine can name a global);
//   - variables referenced inside a spawned closure but declared
//     outside it (captures cross the goroutine boundary);
//   - everything a spawned function's parameters and receiver point to
//     (the spawner handed those objects over at the go statement).
//
// Sharing then propagates through field and element cells: whatever a
// shared object's cells point to is reachable from the same goroutines.
// Channel element cells are deliberately NOT propagated through: an
// object that moves between goroutines only inside a channel is
// ownership transfer, the sanctioned alternative to locking
// (DESIGN.md §16 records the assumption).
//
// Everything else — locals, per-invocation allocations, objects passed
// only down synchronous calls — stays private: the points-to
// abstraction merges all invocations of a function into one object, but
// each invocation owns a fresh instance, so a helper running on two
// goroutines does not by itself share its callers' data.
func (esc *escapeInfo) computeSharedObjects() {
	pt := esc.prog.pointsTo
	if pt == nil {
		return
	}
	s := pt.Solver
	shared := make([]bool, len(s.objects))
	esc.sharedObj = shared
	if len(esc.sites) == 0 {
		return
	}
	var work []int
	mark := func(o int) {
		if o >= 0 && o < len(shared) && !shared[o] {
			shared[o] = true
			work = append(work, o)
		}
	}

	for i, o := range s.objects {
		if o.Fn == nil && o.Kind != "param" {
			mark(i)
		}
	}
	for _, site := range esc.sites {
		for _, g := range site.callees {
			esc.markSpawnRoots(g, mark)
		}
	}

	// cells[o] lists the nodes of o's field/element cells, minus the
	// element cell of channels (ownership transfer).
	cells := map[int][]int{}
	for k, n := range s.fields {
		if k.field == ptElemField && isChanObject(s.objects[k.obj]) {
			continue
		}
		cells[k.obj] = append(cells[k.obj], n)
	}
	for o, n := range s.elemOf {
		if isChanObject(s.objects[o]) {
			continue
		}
		cells[o] = append(cells[o], n)
	}

	for len(work) > 0 {
		o := work[len(work)-1]
		work = work[:len(work)-1]
		for _, n := range cells[o] {
			for _, x := range s.PointsTo(n) {
				mark(x)
			}
		}
	}
}

// markSpawnRoots marks the sharing roots contributed by one spawned
// function: captured outer variables and parameter/receiver pointees.
func (esc *escapeInfo) markSpawnRoots(g *Func, mark func(int)) {
	pt := esc.prog.pointsTo
	if g.Sig != nil {
		var params []*types.Var
		if r := g.Sig.Recv(); r != nil {
			params = append(params, r)
		}
		tup := g.Sig.Params()
		for i := 0; i < tup.Len(); i++ {
			params = append(params, tup.At(i))
		}
		for _, v := range params {
			if n, ok := pt.varNodes[v]; ok {
				for _, o := range pt.Solver.PointsTo(n) {
					mark(o)
				}
			}
		}
	}
	if g.Lit == nil {
		return
	}
	lo, hi := g.Lit.Pos(), g.Lit.End()
	ast.Inspect(g.Lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := g.Pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= lo && v.Pos() <= hi {
			return true // declared inside the goroutine: private to it
		}
		if o, ok := pt.varObjs[v]; ok {
			mark(o)
		}
		return true
	})
}

// isChanObject reports whether the object is a channel (or pointer to
// one).
func isChanObject(o *PTObject) bool {
	if o.Type == nil {
		return false
	}
	t := o.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// collectSites finds every `go` statement, in deterministic order.
func (esc *escapeInfo) collectSites() {
	for _, f := range esc.prog.Funcs {
		if f.Body == nil {
			continue
		}
		esc.walkSites(f, f.Body, false)
	}
	sort.Slice(esc.sites, func(i, j int) bool { return esc.sites[i].stmt.Pos() < esc.sites[j].stmt.Pos() })
	for i, s := range esc.sites {
		s.index = i
	}
}

// walkSites walks one function body tracking lexical loop depth,
// without descending into nested closures (their go statements belong
// to the closure Func).
func (esc *escapeInfo) walkSites(f *Func, n ast.Node, inLoop bool) {
	switch x := n.(type) {
	case nil:
		return
	case *ast.FuncLit:
		// Nested closure: its go statements belong to the closure Func.
		return
	case *ast.GoStmt:
		esc.goCalls[x.Call] = true
		esc.sites = append(esc.sites, &spawnSite{
			fn:      f,
			stmt:    x,
			callees: esc.prog.CalleesOf(x.Call),
			inLoop:  inLoop,
		})
		// The call's operands still evaluate in the spawner.
		for _, a := range x.Call.Args {
			esc.walkSites(f, a, inLoop)
		}
		return
	case *ast.ForStmt:
		esc.walkSites(f, x.Init, inLoop)
		esc.walkSites(f, x.Cond, inLoop)
		esc.walkSites(f, x.Post, inLoop)
		esc.walkSites(f, x.Body, true)
		return
	case *ast.RangeStmt:
		esc.walkSites(f, x.X, inLoop)
		esc.walkSites(f, x.Body, true)
		return
	}
	children(n, func(c ast.Node) { esc.walkSites(f, c, inLoop) })
}

// children invokes fn once per direct-ish child; implemented with a
// depth-guarded Inspect.
func children(n ast.Node, fn func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c == nil {
			return false
		}
		fn(c)
		return false
	})
}

// computeContexts assigns every Func its context bitset: main from the
// roots, one bit per spawn site, propagated along non-go call edges to
// a fixpoint. A site is multi when it sits in a loop or its spawner
// already runs multi-instance.
func (esc *escapeInfo) computeContexts() {
	nbits := len(esc.sites) + 1
	for _, f := range esc.prog.Funcs {
		esc.ctxs[f] = newCtxBits(nbits)
	}

	// Roots: functions no in-program call (static or go) targets.
	called := map[*Func]bool{}
	for _, f := range esc.prog.Funcs {
		for _, cs := range f.calls {
			for _, g := range cs.callees {
				called[g] = true
			}
		}
	}
	var seed []*Func
	for _, f := range esc.prog.Funcs {
		if !called[f] {
			esc.ctxs[f].set(0)
			seed = append(seed, f)
		}
	}
	for _, s := range esc.sites {
		for _, g := range s.callees {
			esc.ctxs[g].set(s.index + 1)
		}
	}
	if len(seed) == 0 && len(esc.prog.Funcs) > 0 {
		// Pure call cycles with no external entry: treat everything as
		// main-reachable rather than invisible.
		for _, f := range esc.prog.Funcs {
			esc.ctxs[f].set(0)
		}
	}

	// Propagate along non-go edges until stable (deterministic sweep
	// over the sorted Funcs slice).
	for changed := true; changed; {
		changed = false
		for _, f := range esc.prog.Funcs {
			src := esc.ctxs[f]
			for _, cs := range f.calls {
				if esc.goCalls[cs.expr] {
					continue
				}
				for _, g := range cs.callees {
					if esc.ctxs[g].orFrom(src) {
						changed = true
					}
				}
			}
		}
	}

	// Multi refinement: spawner runs on ≥2 contexts, or on a multi
	// site, or the go sits in a loop.
	for changed := true; changed; {
		changed = false
		for _, s := range esc.sites {
			if s.multi {
				continue
			}
			m := s.inLoop
			sc := esc.ctxs[s.fn]
			if !m && sc.count() >= 2 {
				m = true
			}
			if !m {
				for _, o := range esc.sites {
					if o.multi && sc.has(o.index+1) {
						m = true
						break
					}
				}
			}
			if m {
				s.multi = true
				changed = true
			}
		}
	}
}

// contextOf returns f's context bitset (empty slice if unknown).
func (esc *escapeInfo) contextOf(f *Func) ctxBits {
	if f == nil {
		// Package-level initializers run in the main context.
		c := newCtxBits(len(esc.sites) + 1)
		c.set(0)
		return c
	}
	return esc.ctxs[f]
}

// ── must-held lockset analysis ──────────────────────────────────────

// mustLockState is a must-held set of lock keys; joins intersect.
type mustLockState struct {
	held map[string]bool
}

func (s *mustLockState) Clone() FlowState {
	c := &mustLockState{held: make(map[string]bool, len(s.held))}
	for k := range s.held {
		c.held[k] = true
	}
	return c
}

func (s *mustLockState) JoinFrom(src FlowState) bool {
	o := src.(*mustLockState)
	changed := false
	for k := range s.held {
		if !o.held[k] {
			delete(s.held, k)
			changed = true
		}
	}
	return changed
}

// mustLockCtx runs the must-held analysis for one function given its
// converged entry lockset.
type mustLockCtx struct {
	prog  *Program
	pkg   *Package
	entry map[string]bool
}

func (u *mustLockCtx) Direction() FlowDirection { return FlowForward }

func (u *mustLockCtx) Boundary() FlowState {
	st := &mustLockState{held: map[string]bool{}}
	for k := range u.entry {
		st.held[k] = true
	}
	return st
}

func (u *mustLockCtx) Transfer(n ast.Node, f FlowState) FlowState {
	st := f.(*mustLockState)
	u.applyNode(n, st)
	return st
}

// applyNode applies one node's lock effects in source order.
func (u *mustLockCtx) applyNode(n ast.Node, st *mustLockState) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch y := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			// A deferred unlock releases at exit only: the lock stays
			// held at every later node. A deferred helper call keeps
			// must-held sound the same way.
			return false
		case *ast.GoStmt:
			return false
		case *ast.CallExpr:
			u.oneCall(y, st)
		}
		return true
	})
}

func (u *mustLockCtx) lockKeyOf(call *ast.CallExpr, names map[string]bool) (string, bool) {
	e, ok := syncLockCall(u.pkg.Info, call, names)
	if !ok {
		return "", false
	}
	id := lockID(u.pkg, e)
	if id == "" {
		return "", false
	}
	sel := unparen(call.Fun).(*ast.SelectorExpr)
	if len(sel.Sel.Name) > 0 && sel.Sel.Name[0] == 'R' {
		id += "#r"
	}
	return id, true
}

func (u *mustLockCtx) oneCall(call *ast.CallExpr, st *mustLockState) {
	if key, ok := u.lockKeyOf(call, lockNames); ok {
		st.held[key] = true
		return
	}
	if key, ok := u.lockKeyOf(call, unlockNames); ok {
		delete(st.held, key)
		return
	}
	// A callee that may release one of our held locks voids the
	// must-held claim from this point on.
	callees := u.prog.CalleesOf(call)
	if len(callees) == 0 {
		return
	}
	for _, g := range callees {
		gs := u.prog.SummaryOf(g)
		for id := range gs.Releases {
			delete(st.held, id)
			delete(st.held, id+"#r")
		}
	}
}

// computeEntryLocks converges entry locksets over the call graph:
// entry(f) = ∩ over static call sites of the caller's must-held set at
// the site; roots and go-spawned functions start with ∅ (a goroutine
// inherits no locks). The iteration only shrinks sets, so it
// terminates; unreached functions keep ⊤ and read as ∅.
func (esc *escapeInfo) computeEntryLocks() {
	p := esc.prog
	goTargets := map[*Func]bool{}
	for _, s := range esc.sites {
		for _, g := range s.callees {
			goTargets[g] = true
		}
	}
	called := map[*Func]bool{}
	for _, f := range p.Funcs {
		for _, cs := range f.calls {
			for _, g := range cs.callees {
				called[g] = true
			}
		}
	}
	for _, f := range p.Funcs {
		if !called[f] || goTargets[f] {
			esc.entryLocks[f] = map[string]bool{}
		}
	}

	for changed := true; changed; {
		changed = false
		for _, f := range p.Funcs {
			entry, known := esc.entryLocks[f]
			if !known || f.Body == nil {
				continue
			}
			callLocks := esc.callSiteLocks(f, entry)
			for _, cs := range f.calls {
				if esc.goCalls[cs.expr] {
					continue
				}
				siteSet := callLocks[cs.expr]
				for _, g := range cs.callees {
					cur, ok := esc.entryLocks[g]
					if !ok {
						esc.entryLocks[g] = copyLockSet(siteSet)
						changed = true
						continue
					}
					for k := range cur {
						if !siteSet[k] {
							delete(cur, k)
							changed = true
						}
					}
				}
			}
		}
	}
}

func copyLockSet(s map[string]bool) map[string]bool {
	c := make(map[string]bool, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

// callSiteLocks solves f's must-held analysis under entry and returns
// the held set in force at each call expression.
func (esc *escapeInfo) callSiteLocks(f *Func, entry map[string]bool) map[*ast.CallExpr]map[string]bool {
	out := map[*ast.CallExpr]map[string]bool{}
	u := &mustLockCtx{prog: esc.prog, pkg: f.Pkg, entry: entry}
	cfg := esc.prog.CFGOf(f)
	if cfg == nil {
		return out
	}
	sol := SolveDataflow(cfg, u)
	for _, b := range cfg.Blocks {
		in := sol.In[b]
		if in == nil {
			continue
		}
		st := in.Clone().(*mustLockState)
		for _, n := range b.Nodes {
			snap := copyLockSet(st.held)
			ast.Inspect(n, func(m ast.Node) bool {
				switch y := m.(type) {
				case *ast.FuncLit, *ast.GoStmt:
					return false
				case *ast.CallExpr:
					out[y] = snap
				}
				return true
			})
			u.applyNode(n, st)
		}
	}
	return out
}

// locksHeldAt returns the sorted lock keys provably held at pos inside
// f (entry lockset plus locally held locks at the containing node).
func (esc *escapeInfo) locksHeldAt(f *Func, pos token.Pos) []string {
	if f == nil {
		return nil
	}
	esc.mu.Lock()
	nodes, ok := esc.nodeLocks[f]
	esc.mu.Unlock()
	if !ok {
		// Replay outside the lock: it re-solves a dataflow problem, and
		// two workers replaying the same function race only on who
		// installs the (identical, deterministic) result.
		nodes = esc.replayLocks(f)
		esc.mu.Lock()
		if old, ok := esc.nodeLocks[f]; ok {
			nodes = old
		} else {
			esc.nodeLocks[f] = nodes
		}
		esc.mu.Unlock()
	}
	var best ast.Node
	for n := range nodes {
		if n.Pos() <= pos && pos <= n.End() {
			if best == nil || (n.Pos() >= best.Pos() && n.End() <= best.End()) {
				best = n
			}
		}
	}
	var held map[string]bool
	if best != nil {
		held = nodes[best]
	} else {
		held = esc.entryLocks[f]
	}
	return sortedKeys(held)
}

// replayLocks solves and replays the must-held analysis of f, keeping
// the pre-state of every CFG node.
func (esc *escapeInfo) replayLocks(f *Func) map[ast.Node]map[string]bool {
	out := map[ast.Node]map[string]bool{}
	cfg := esc.prog.CFGOf(f)
	if cfg == nil {
		return out
	}
	u := &mustLockCtx{prog: esc.prog, pkg: f.Pkg, entry: esc.entryLocks[f]}
	sol := SolveDataflow(cfg, u)
	for _, b := range cfg.Blocks {
		in := sol.In[b]
		if in == nil {
			continue
		}
		st := in.Clone().(*mustLockState)
		for _, n := range b.Nodes {
			out[n] = copyLockSet(st.held)
			u.applyNode(n, st)
		}
	}
	return out
}

// ── spawn-status analysis ───────────────────────────────────────────

// spawnState tracks, per spawn site of the function under analysis,
// whether the go statement has run and whether a Wait joined it.
type spawnState struct {
	status map[*spawnSite]int
}

func (s *spawnState) Clone() FlowState {
	c := &spawnState{status: make(map[*spawnSite]int, len(s.status))}
	for k, v := range s.status {
		c.status[k] = v
	}
	return c
}

func (s *spawnState) JoinFrom(src FlowState) bool {
	o := src.(*spawnState)
	changed := false
	for k, ov := range o.status {
		cur, ok := s.status[k]
		merged := cur
		if !ok {
			merged = ov
		} else if cur != ov {
			// Disagreeing paths: the goroutine may be running.
			merged = spawnLive
		}
		if !ok || merged != cur {
			s.status[k] = merged
			changed = true
		}
	}
	return changed
}

// spawnCtx is the per-spawner analysis.
type spawnCtx struct {
	esc   *escapeInfo
	pkg   *Package
	sites []*spawnSite // sites whose stmt lives in this function
}

func (sc *spawnCtx) Direction() FlowDirection { return FlowForward }

func (sc *spawnCtx) Boundary() FlowState {
	st := &spawnState{status: map[*spawnSite]int{}}
	for _, s := range sc.sites {
		st.status[s] = spawnNotYet
	}
	return st
}

func (sc *spawnCtx) Transfer(n ast.Node, f FlowState) FlowState {
	st := f.(*spawnState)
	ast.Inspect(n, func(m ast.Node) bool {
		switch y := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			for _, s := range sc.sites {
				if s.stmt == y {
					st.status[s] = spawnLive
				}
			}
			return false
		case *ast.CallExpr:
			if isWaitGroupMethod(sc.pkg.Info, y, "Wait") {
				// Joining the WaitGroup joins every goroutine launched
				// so far in this function (the repo's spawn pattern:
				// Add/go/.../Wait on one group).
				for s, v := range st.status {
					if v == spawnLive {
						st.status[s] = spawnJoined
					}
				}
			}
		}
		return true
	})
	return st
}

// isWaitGroupMethod reports whether call is wg.<name>() on a
// sync.WaitGroup receiver.
func isWaitGroupMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	n := namedRecv(s.Recv())
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync" && n.Obj().Name() == "WaitGroup"
}

// statusAt returns site's spawn status at pos inside its spawner
// (spawnLive when the position cannot be resolved).
func (esc *escapeInfo) statusAt(site *spawnSite, pos token.Pos) int {
	f := site.fn
	esc.mu.Lock()
	nodes, ok := esc.spawnStatus[f]
	esc.mu.Unlock()
	if !ok {
		nodes = esc.replaySpawn(f)
		esc.mu.Lock()
		if old, ok := esc.spawnStatus[f]; ok {
			nodes = old
		} else {
			esc.spawnStatus[f] = nodes
		}
		esc.mu.Unlock()
	}
	var best ast.Node
	for n := range nodes {
		if n.Pos() <= pos && pos <= n.End() {
			if best == nil || (n.Pos() >= best.Pos() && n.End() <= best.End()) {
				best = n
			}
		}
	}
	if best == nil {
		return spawnLive
	}
	st, ok := nodes[best][site]
	if !ok {
		return spawnLive
	}
	return st
}

func (esc *escapeInfo) replaySpawn(f *Func) map[ast.Node]map[*spawnSite]int {
	out := map[ast.Node]map[*spawnSite]int{}
	cfg := esc.prog.CFGOf(f)
	if cfg == nil {
		return out
	}
	var own []*spawnSite
	for _, s := range esc.sites {
		if s.fn == f {
			own = append(own, s)
		}
	}
	sc := &spawnCtx{esc: esc, pkg: f.Pkg, sites: own}
	sol := SolveDataflow(cfg, sc)
	for _, b := range cfg.Blocks {
		in := sol.In[b]
		if in == nil {
			continue
		}
		st := in.Clone().(*spawnState)
		for _, n := range b.Nodes {
			snap := make(map[*spawnSite]int, len(st.status))
			for k, v := range st.status {
				snap[k] = v
			}
			out[n] = snap
			sc.Transfer(n, st)
		}
	}
	return out
}
