// Package query models the aggregate queries of §2 of the paper:
//
//	SELECT AGGR(f(u)) FROM U WHERE CONDITION
//
// where AGGR is COUNT, SUM, or AVG; f(u) is a numeric measure over a
// user's profile and keyword posts; and CONDITION combines a keyword
// predicate (mandatory here, as in the paper), an optional time
// window, and optional profile predicates (e.g., gender).
package query

import (
	"errors"
	"fmt"

	"mba/internal/model"
)

// Aggregate is the aggregation operator.
type Aggregate int

// Aggregation operators supported by the paper's framework.
const (
	Count Aggregate = iota
	Sum
	Avg
)

func (a Aggregate) String() string {
	switch a {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Avg:
		return "AVG"
	default:
		return fmt.Sprintf("Aggregate(%d)", int(a))
	}
}

// Measure computes f(u) for a user from the profile and the user's
// keyword posts that fall inside the query window (oldest first).
type Measure struct {
	// Name identifies the measure in reports.
	Name string
	// F computes the numeric value.
	F func(p model.Profile, keywordPosts []model.Post) float64
}

// Built-in measures covering every aggregate the paper evaluates.
var (
	// One is the constant-1 measure; COUNT(users) == SUM(One).
	One = Measure{Name: "1", F: func(model.Profile, []model.Post) float64 { return 1 }}

	// Followers is the follower count (Figures 2, 8, 9).
	Followers = Measure{Name: "followers", F: func(p model.Profile, _ []model.Post) float64 {
		return float64(p.Followers)
	}}

	// DisplayNameLength is the display-name length (Figures 11, 12).
	DisplayNameLength = Measure{Name: "display-name-length", F: func(p model.Profile, _ []model.Post) float64 {
		return float64(p.DisplayNameLength())
	}}

	// Age is the profile age attribute.
	Age = Measure{Name: "age", F: func(p model.Profile, _ []model.Post) float64 {
		return float64(p.Age)
	}}

	// KeywordPostCount counts the user's matching posts; SUM of it is the
	// paper's "COUNT of posts containing keyword" example (§2).
	KeywordPostCount = Measure{Name: "keyword-posts", F: func(_ model.Profile, ps []model.Post) float64 {
		return float64(len(ps))
	}}

	// KeywordPostLikes sums likes over the user's matching posts; with
	// SUM(KeywordPostLikes)/SUM(KeywordPostCount) it yields the paper's
	// Tumblr "AVG likes per post containing keyword" (Figure 14).
	KeywordPostLikes = Measure{Name: "keyword-post-likes", F: func(_ model.Profile, ps []model.Post) float64 {
		var s float64
		for _, p := range ps {
			s += float64(p.Likes)
		}
		return s
	}}

	// KeywordPostMeanLikes is the user's mean likes per matching post —
	// the per-user form of the Figure 14 Tumblr aggregate that a single
	// AVG query can estimate.
	KeywordPostMeanLikes = Measure{Name: "keyword-post-mean-likes", F: func(_ model.Profile, ps []model.Post) float64 {
		if len(ps) == 0 {
			return 0
		}
		var s float64
		for _, p := range ps {
			s += float64(p.Likes)
		}
		return s / float64(len(ps))
	}}
)

// Predicate is an optional profile filter, e.g. gender or an age range.
type Predicate struct {
	Name string
	Pass func(model.Profile) bool
}

// MaleOnly is the Figure 13 predicate.
var MaleOnly = Predicate{Name: "gender=male", Pass: func(p model.Profile) bool {
	return p.Gender == model.GenderMale
}}

// FemaleOnly restricts to profiles exposing female gender.
var FemaleOnly = Predicate{Name: "gender=female", Pass: func(p model.Profile) bool {
	return p.Gender == model.GenderFemale
}}

// AgeBetween restricts to profiles with lo <= age <= hi (the paper's
// §2 mentions age-range predicates on user profiles).
func AgeBetween(lo, hi int) Predicate {
	return Predicate{
		Name: fmt.Sprintf("age in [%d,%d]", lo, hi),
		Pass: func(p model.Profile) bool { return p.Age >= lo && p.Age <= hi },
	}
}

// MinFollowers restricts to profiles with at least n followers (the
// "#connections" profile predicate of §2).
func MinFollowers(n int) Predicate {
	return Predicate{
		Name: fmt.Sprintf("followers>=%d", n),
		Pass: func(p model.Profile) bool { return p.Followers >= n },
	}
}

// Query is one aggregate estimation request.
type Query struct {
	Agg     Aggregate
	Measure Measure
	// Keyword is the mandatory keyword selection condition.
	Keyword string
	// Window optionally restricts the keyword mentions considered; the
	// zero window means "any time".
	Window model.Window
	// Where optionally filters users on profile attributes.
	Where []Predicate
}

// Validate reports whether the query is well formed.
func (q Query) Validate() error {
	if q.Keyword == "" {
		return errors.New("query: keyword predicate is required")
	}
	if q.Measure.F == nil {
		return errors.New("query: measure function is nil")
	}
	switch q.Agg {
	case Count, Sum, Avg:
	default:
		return fmt.Errorf("query: unknown aggregate %d", int(q.Agg))
	}
	return nil
}

// String renders the query in the paper's SQL-like form.
func (q Query) String() string {
	s := fmt.Sprintf("SELECT %s(%s) FROM users WHERE timeline CONTAINS %q", q.Agg, q.Measure.Name, q.Keyword)
	if !q.Window.IsZero() {
		s += fmt.Sprintf(" IN [%s,%s)", model.FormatTick(q.Window.From), model.FormatTick(q.Window.To))
	}
	for _, p := range q.Where {
		s += " AND " + p.Name
	}
	return s
}

// Matches reports whether a user with the given timeline satisfies the
// query condition: at least one keyword mention inside the window and
// every profile predicate passing.
func (q Query) Matches(t model.Timeline) bool {
	if len(t.KeywordPosts(q.Keyword, q.Window)) == 0 {
		return false
	}
	for _, p := range q.Where {
		if !p.Pass(t.Profile) {
			return false
		}
	}
	return true
}

// Value returns f(u) for a matching user: the measure applied to the
// profile and the in-window keyword posts. Callers should check
// Matches first; Value on a non-matching user returns the measure of
// an empty post set, which is usually not meaningful.
func (q Query) Value(t model.Timeline) float64 {
	return q.Measure.F(t.Profile, t.KeywordPosts(q.Keyword, q.Window))
}

// CountQuery is shorthand for COUNT(users) with the given keyword.
func CountQuery(keyword string) Query {
	return Query{Agg: Count, Measure: One, Keyword: keyword}
}

// AvgQuery is shorthand for AVG(measure) with the given keyword.
func AvgQuery(keyword string, m Measure) Query {
	return Query{Agg: Avg, Measure: m, Keyword: keyword}
}

// SumQuery is shorthand for SUM(measure) with the given keyword.
func SumQuery(keyword string, m Measure) Query {
	return Query{Agg: Sum, Measure: m, Keyword: keyword}
}
