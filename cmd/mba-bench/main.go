// Command mba-bench regenerates the paper's tables and figures against
// the simulated workload platforms and writes them as aligned text and
// CSV.
//
// Usage:
//
//	mba-bench [-scale test|bench|large] [-trials N] [-budget N]
//	          [-out DIR] [-only table2,figure8,...]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mba/internal/experiments"
	"mba/internal/workload"
)

func main() {
	scale := flag.String("scale", "bench", "platform scale: test, bench, or large")
	trials := flag.Int("trials", 2, "trials per configuration (median aggregated)")
	budget := flag.Int("budget", 60000, "per-run API-call budget")
	out := flag.String("out", "bench_results", "output directory")
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	opts := experiments.Options{
		Seed:   *seed,
		Trials: *trials,
		Budget: *budget,
		Log:    os.Stderr,
	}
	switch *scale {
	case "test":
		opts.Scale = workload.Test
	case "bench":
		opts.Scale = workload.Bench
	case "large":
		opts.Scale = workload.Large
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	runners := map[string]func(experiments.Options) (experiments.Table, error){
		"table2": experiments.Table2, "table3": experiments.Table3,
		"figure2": experiments.Figure2, "figure3": experiments.Figure3,
		"figure4": experiments.Figure4, "figure5": experiments.Figure5,
		"figure7": experiments.Figure7, "figure8": experiments.Figure8,
		"figure9": experiments.Figure9, "figure10": experiments.Figure10,
		"figure11": experiments.Figure11, "figure12": experiments.Figure12,
		"figure13": experiments.Figure13, "figure14": experiments.Figure14,
		"chaos": experiments.Chaos, "churn": experiments.Churn,
		"parallel": runParallel(*out), "ratelimit": experiments.RateLimit,
		"crash": runCrash(*out), "serve": runServe(*out),
	}
	order := []string{
		"table2", "table3", "figure2", "figure3", "figure4", "figure5", "figure7",
		"figure8", "figure9", "figure10", "figure11", "figure12", "figure13", "figure14",
		"chaos", "churn", "parallel", "ratelimit", "crash", "serve",
	}
	selected := order
	if *only != "" {
		selected = nil
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			if _, ok := runners[id]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
				os.Exit(2)
			}
			selected = append(selected, id)
		}
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, id := range selected {
		fmt.Fprintf(os.Stderr, "=== %s (scale=%s)\n", id, *scale)
		tab, err := runners[id](opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		tab.Format(os.Stdout)
		fmt.Println()
		if err := writeOutputs(*out, tab); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
	}
}

// runParallel adapts the fleet parallelism sweep to the runner
// signature, injecting the wall clock — package main is the only
// wall-clock-capable package, so the nanosecond source lives here —
// and writing the walkers-vs-wall-clock-vs-error points as
// BENCH_parallel.json next to the deterministic table artifacts.
func runParallel(dir string) func(experiments.Options) (experiments.Table, error) {
	return func(opts experiments.Options) (experiments.Table, error) {
		clock := func() int64 { return time.Now().UnixNano() }
		tab, points, err := experiments.ParallelSweep(opts, clock)
		if err != nil {
			return tab, err
		}
		data, err := json.MarshalIndent(points, "", "  ")
		if err != nil {
			return tab, err
		}
		data = append(data, '\n')
		if err := os.WriteFile(filepath.Join(dir, "BENCH_parallel.json"), data, 0o644); err != nil {
			return tab, err
		}
		return tab, nil
	}
}

// runCrash adapts the crash-recovery sweep to the runner signature,
// writing the per-scenario recovery records (crash points, repaid
// calls, fault and fallback counters) as BENCH_crash.json next to the
// table artifacts.
func runCrash(dir string) func(experiments.Options) (experiments.Table, error) {
	return func(opts experiments.Options) (experiments.Table, error) {
		tab, records, err := experiments.CrashSweep(opts)
		if err != nil {
			return tab, err
		}
		data, err := json.MarshalIndent(records, "", "  ")
		if err != nil {
			return tab, err
		}
		data = append(data, '\n')
		if err := os.WriteFile(filepath.Join(dir, "BENCH_crash.json"), data, 0o644); err != nil {
			return tab, err
		}
		return tab, nil
	}
}

// runServe adapts the multi-tenant service sweep to the runner
// signature, writing the per-tier load/shed/audit records as
// BENCH_serve.json next to the table artifacts. The records are
// seed-deterministic: two runs at the same scale, seed, and budget
// produce byte-identical files.
func runServe(dir string) func(experiments.Options) (experiments.Table, error) {
	return func(opts experiments.Options) (experiments.Table, error) {
		tab, records, err := experiments.ServeSweep(opts)
		if err != nil {
			return tab, err
		}
		data, err := json.MarshalIndent(records, "", "  ")
		if err != nil {
			return tab, err
		}
		data = append(data, '\n')
		if err := os.WriteFile(filepath.Join(dir, "BENCH_serve.json"), data, 0o644); err != nil {
			return tab, err
		}
		return tab, nil
	}
}

func writeOutputs(dir string, tab experiments.Table) error {
	txt, err := os.Create(filepath.Join(dir, tab.ID+".txt"))
	if err != nil {
		return err
	}
	tab.Format(txt)
	if err := txt.Close(); err != nil {
		return err
	}
	csv, err := os.Create(filepath.Join(dir, tab.ID+".csv"))
	if err != nil {
		return err
	}
	if err := tab.WriteCSV(csv); err != nil {
		csv.Close()
		return err
	}
	return csv.Close()
}
