package experiments

import (
	"fmt"

	"mba/internal/api"
	"mba/internal/core"
	"mba/internal/query"
	"mba/internal/stats"
	"mba/internal/workload"
)

// The ablations quantify the design choices DESIGN.md §5 calls out.
// Each returns a Table like the paper experiments and is exposed as a
// benchmark in bench_ablation_test.go.

// ablationRun executes MA-TARW with the given options and reports
// (relative error, cost) medians over opts.Trials runs.
func ablationRun(o Options, q query.Query, truth float64, tarw core.TARWOptions) (relErr float64, cost int, err error) {
	p, err := workload.Get(o.Scale)
	if err != nil {
		return 0, 0, err
	}
	var errs []float64
	var costs []float64
	for trial := 0; trial < o.Trials; trial++ {
		tarw.Seed = o.Seed + int64(trial)*104729
		res, err := run(p, runSpec{algo: MATARW, q: q, interval: o.Interval, budget: o.Budget, tarw: tarw})
		if err != nil {
			return 0, 0, err
		}
		errs = append(errs, stats.RelativeError(res.Estimate, truth))
		costs = append(costs, float64(res.Cost))
	}
	me, _ := stats.Median(errs)
	mc, _ := stats.Median(costs)
	return me, int(mc), nil
}

// AblationProbabilityCache compares MA-TARW with the per-node
// probability cache (the §5.2 generalization) against the literal
// Algorithm 2 (fresh recursive draws every time).
func AblationProbabilityCache(opts Options) (Table, error) {
	opts = opts.withDefaults()
	p, err := workload.Get(opts.Scale)
	if err != nil {
		return Table{}, err
	}
	q := query.AvgQuery("privacy", query.Followers)
	truth, err := p.GroundTruth(q)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "ablation-pcache",
		Title:   "MA-TARW probability cache on/off (AVG(followers), privacy)",
		Columns: []string{"Variant", "MedianRelErr", "MedianCost"},
	}
	for _, v := range []struct {
		name    string
		disable bool
	}{{"cache on (default)", false}, {"cache off (literal Alg. 2)", true}} {
		opts.logf("ablation-pcache: %s", v.name)
		re, cost, err := ablationRun(opts, q, truth, core.TARWOptions{DisableRootCache: v.disable})
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{v.name, fmt.Sprintf("%.3f", re), fmt.Sprintf("%d", cost)})
	}
	return t, nil
}

// AblationPEstimates sweeps the per-node ESTIMATE-p averaging count.
func AblationPEstimates(opts Options) (Table, error) {
	opts = opts.withDefaults()
	p, err := workload.Get(opts.Scale)
	if err != nil {
		return Table{}, err
	}
	q := query.AvgQuery("privacy", query.Followers)
	truth, err := p.GroundTruth(q)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "ablation-pestimates",
		Title:   "MA-TARW ESTIMATE-p averaging count (AVG(followers), privacy)",
		Columns: []string{"PEstimates", "MedianRelErr", "MedianCost"},
	}
	for _, pe := range []int{1, 3, 10, 30} {
		opts.logf("ablation-pestimates: %d", pe)
		re, cost, err := ablationRun(opts, q, truth, core.TARWOptions{PEstimates: pe})
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", pe), fmt.Sprintf("%.3f", re), fmt.Sprintf("%d", cost)})
	}
	return t, nil
}

// AblationWeightClip sweeps the Hansen–Hurwitz winsorization bound for
// COUNT, where the bias/variance trade is sharpest.
func AblationWeightClip(opts Options) (Table, error) {
	opts = opts.withDefaults()
	p, err := workload.Get(opts.Scale)
	if err != nil {
		return Table{}, err
	}
	q := query.CountQuery("privacy")
	truth, err := p.GroundTruth(q)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "ablation-clip",
		Title:   "MA-TARW weight winsorization (COUNT, privacy; calibrated)",
		Columns: []string{"Clip (×s)", "MedianRelErr", "MedianCost"},
	}
	for _, clip := range []float64{-1, 5, 20, 100, 500} {
		name := fmt.Sprintf("%.0f", clip)
		if clip < 0 {
			name = "off"
		}
		opts.logf("ablation-clip: %s", name)
		re, cost, err := ablationRun(opts, q, truth, core.TARWOptions{
			WeightClip: clip, AllowCrossLevel: true, PEstimates: 5,
		})
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{name, fmt.Sprintf("%.3f", re), fmt.Sprintf("%d", cost)})
	}
	return t, nil
}

// AblationLattice compares the adjacent-only lattice against the full
// cross-level lattice for both AVG and COUNT.
func AblationLattice(opts Options) (Table, error) {
	opts = opts.withDefaults()
	p, err := workload.Get(opts.Scale)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "ablation-lattice",
		Title:   "MA-TARW adjacent-only vs cross-level lattice (privacy)",
		Columns: []string{"Aggregate", "Lattice", "MedianRelErr", "MedianCost"},
	}
	for _, agg := range []struct {
		name string
		q    query.Query
	}{
		{"AVG(followers)", query.AvgQuery("privacy", query.Followers)},
		{"COUNT", query.CountQuery("privacy")},
	} {
		truth, err := p.GroundTruth(agg.q)
		if err != nil {
			return Table{}, err
		}
		for _, lat := range []struct {
			name  string
			cross bool
		}{{"adjacent-only", false}, {"cross-level", true}} {
			opts.logf("ablation-lattice: %s %s", agg.name, lat.name)
			re, cost, err := ablationRun(opts, agg.q, truth, core.TARWOptions{AllowCrossLevel: lat.cross})
			if err != nil {
				return Table{}, err
			}
			t.Rows = append(t.Rows, []string{agg.name, lat.name, fmt.Sprintf("%.3f", re), fmt.Sprintf("%d", cost)})
		}
	}
	return t, nil
}

// AblationThinning sweeps the sample spacing fed to the Katzir size
// estimator in MA-SRW's COUNT path (the difference between our MA-SRW
// COUNT and the naive M&R baseline).
func AblationThinning(opts Options) (Table, error) {
	opts = opts.withDefaults()
	p, err := workload.Get(opts.Scale)
	if err != nil {
		return Table{}, err
	}
	q := query.CountQuery("privacy")
	truth, err := p.GroundTruth(q)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "ablation-thinning",
		Title:   "MA-SRW mark-and-recapture thinning (COUNT, privacy)",
		Columns: []string{"Thin", "MedianRelErr", "MedianCost"},
	}
	for _, thin := range []int{1, 2, 5, 10, 20} {
		opts.logf("ablation-thinning: %d", thin)
		var errs, costs []float64
		for trial := 0; trial < opts.Trials; trial++ {
			srv := api.NewServer(p, api.Twitter(), api.Faults{})
			s, err := core.NewSession(api.NewClient(srv, opts.Budget), q, opts.Interval)
			if err != nil {
				return Table{}, fmt.Errorf("thinning setup: %w", err)
			}
			r, err := core.RunSRW(s, core.SRWOptions{View: core.LevelView, Seed: opts.Seed + int64(trial)*31, Thin: thin})
			if err != nil {
				return Table{}, err
			}
			errs = append(errs, stats.RelativeError(r.Estimate, truth))
			costs = append(costs, float64(r.Cost))
		}
		me, _ := stats.Median(errs)
		mc, _ := stats.Median(costs)
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", thin), fmt.Sprintf("%.3f", me), fmt.Sprintf("%d", int(mc))})
	}
	return t, nil
}
