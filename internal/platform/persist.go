package platform

import (
	"encoding/gob"
	"fmt"
	"io"

	"mba/internal/graph"
	"mba/internal/model"
)

// Snapshot is the serializable form of a generated platform. Saving a
// platform freezes the exact dataset an experiment ran against, so
// results can be reproduced or shared without re-running generation
// (and independently of future generator changes).
type snapshot struct {
	Version  int
	Cfg      Config
	Users    []User
	Edges    [][2]int64
	Cascades map[string]*Cascade
	Horizon  model.Tick
}

const snapshotVersion = 1

// Save writes the platform to w in gob encoding.
func (p *Platform) Save(w io.Writer) error {
	snap := snapshot{
		Version:  snapshotVersion,
		Cfg:      p.cfg,
		Users:    p.Users,
		Cascades: p.Cascades,
		Horizon:  p.Horizon,
	}
	snap.Edges = make([][2]int64, 0, p.Social.NumEdges())
	p.Social.Edges(func(u, v int64) bool {
		snap.Edges = append(snap.Edges, [2]int64{u, v})
		return true
	})
	return gob.NewEncoder(w).Encode(snap)
}

// Load reads a platform previously written with Save.
func Load(r io.Reader) (*Platform, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("platform: decoding snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("platform: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	if len(snap.Users) == 0 {
		return nil, fmt.Errorf("platform: snapshot has no users")
	}
	g := graph.NewWithCapacity(len(snap.Users))
	for i := range snap.Users {
		g.AddNode(int64(i))
	}
	for _, e := range snap.Edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("platform: snapshot edge %v: %w", e, err)
		}
	}
	return &Platform{
		cfg:      snap.Cfg,
		Users:    snap.Users,
		Social:   g,
		Cascades: snap.Cascades,
		Horizon:  snap.Horizon,
	}, nil
}

// encodeSnapshotForTest exposes raw snapshot encoding to the version
// test without widening the public API.
func encodeSnapshotForTest(w io.Writer, snap snapshot) error {
	return gob.NewEncoder(w).Encode(snap)
}
