package query

import (
	"strings"
	"testing"

	"mba/internal/model"
)

func timelineWith(posts ...model.Post) model.Timeline {
	return model.Timeline{
		Profile: model.Profile{ID: 1, DisplayName: "Ana Belle", Gender: model.GenderMale, Age: 30, Followers: 120},
		Posts:   posts,
	}
}

func TestValidate(t *testing.T) {
	if err := CountQuery("privacy").Validate(); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
	if err := (Query{Agg: Count, Measure: One}).Validate(); err == nil {
		t.Error("missing keyword accepted")
	}
	if err := (Query{Agg: Count, Keyword: "x"}).Validate(); err == nil {
		t.Error("nil measure accepted")
	}
	if err := (Query{Agg: Aggregate(99), Keyword: "x", Measure: One}).Validate(); err == nil {
		t.Error("bad aggregate accepted")
	}
}

func TestAggregateString(t *testing.T) {
	if Count.String() != "COUNT" || Sum.String() != "SUM" || Avg.String() != "AVG" {
		t.Error("aggregate names wrong")
	}
	if !strings.Contains(Aggregate(42).String(), "42") {
		t.Error("unknown aggregate should include its value")
	}
}

func TestQueryString(t *testing.T) {
	q := AvgQuery("privacy", Followers)
	q.Window = model.Window{From: 0, To: 24}
	q.Where = []Predicate{MaleOnly}
	s := q.String()
	for _, want := range []string{"AVG", "followers", "privacy", "gender=male"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestMatches(t *testing.T) {
	tl := timelineWith(
		model.Post{Keyword: "privacy", Time: 10},
		model.Post{Keyword: "boston", Time: 20},
	)
	if !CountQuery("privacy").Matches(tl) {
		t.Error("keyword match failed")
	}
	if CountQuery("nope").Matches(tl) {
		t.Error("absent keyword matched")
	}
	q := CountQuery("privacy")
	q.Window = model.Window{From: 11, To: 30}
	if q.Matches(tl) {
		t.Error("out-of-window mention matched")
	}
	q.Window = model.Window{From: 5, To: 11}
	if !q.Matches(tl) {
		t.Error("in-window mention failed")
	}
	q = CountQuery("privacy")
	q.Where = []Predicate{MaleOnly}
	if !q.Matches(tl) {
		t.Error("male predicate failed on male profile")
	}
	female := tl
	female.Profile.Gender = model.GenderFemale
	if q.Matches(female) {
		t.Error("male predicate matched female profile")
	}
}

func TestMeasures(t *testing.T) {
	tl := timelineWith(
		model.Post{Keyword: "privacy", Time: 10, Likes: 3},
		model.Post{Keyword: "privacy", Time: 20, Likes: 7},
		model.Post{Keyword: "boston", Time: 30, Likes: 100},
	)
	q := SumQuery("privacy", KeywordPostCount)
	if got := q.Value(tl); got != 2 {
		t.Errorf("KeywordPostCount = %v, want 2", got)
	}
	q = SumQuery("privacy", KeywordPostLikes)
	if got := q.Value(tl); got != 10 {
		t.Errorf("KeywordPostLikes = %v, want 10", got)
	}
	q = AvgQuery("privacy", Followers)
	if got := q.Value(tl); got != 120 {
		t.Errorf("Followers = %v, want 120", got)
	}
	q = AvgQuery("privacy", DisplayNameLength)
	if got := q.Value(tl); got != 9 { // "Ana Belle"
		t.Errorf("DisplayNameLength = %v, want 9", got)
	}
	q = AvgQuery("privacy", Age)
	if got := q.Value(tl); got != 30 {
		t.Errorf("Age = %v, want 30", got)
	}
	q = CountQuery("privacy")
	if got := q.Value(tl); got != 1 {
		t.Errorf("One = %v, want 1", got)
	}
}

func TestValueRespectsWindow(t *testing.T) {
	tl := timelineWith(
		model.Post{Keyword: "privacy", Time: 10, Likes: 3},
		model.Post{Keyword: "privacy", Time: 50, Likes: 7},
	)
	q := SumQuery("privacy", KeywordPostLikes)
	q.Window = model.Window{From: 40, To: 60}
	if got := q.Value(tl); got != 7 {
		t.Errorf("windowed likes = %v, want 7", got)
	}
}

func TestTimelineHelpers(t *testing.T) {
	tl := timelineWith(
		model.Post{Keyword: "privacy", Time: 10},
		model.Post{Keyword: "privacy", Time: 20},
	)
	first, ok := tl.FirstMention("privacy")
	if !ok || first != 10 {
		t.Errorf("FirstMention = %v,%v", first, ok)
	}
	if _, ok := tl.FirstMention("x"); ok {
		t.Error("FirstMention of absent keyword")
	}
	times := tl.MentionTimes("privacy")
	if len(times) != 2 || times[0] != 10 || times[1] != 20 {
		t.Errorf("MentionTimes = %v", times)
	}
}

func TestFormatTick(t *testing.T) {
	if got := model.FormatTick(25); got != "d1h1" {
		t.Errorf("FormatTick(25) = %q", got)
	}
}

func TestExtraPredicates(t *testing.T) {
	tl := timelineWith(model.Post{Keyword: "privacy", Time: 10})
	q := CountQuery("privacy")
	q.Where = []Predicate{AgeBetween(25, 35)}
	if !q.Matches(tl) { // profile age is 30
		t.Error("AgeBetween(25,35) should match age 30")
	}
	q.Where = []Predicate{AgeBetween(40, 50)}
	if q.Matches(tl) {
		t.Error("AgeBetween(40,50) should not match age 30")
	}
	q.Where = []Predicate{MinFollowers(100)}
	if !q.Matches(tl) { // 120 followers
		t.Error("MinFollowers(100) should match 120")
	}
	q.Where = []Predicate{MinFollowers(121)}
	if q.Matches(tl) {
		t.Error("MinFollowers(121) should not match 120")
	}
	q.Where = []Predicate{FemaleOnly}
	if q.Matches(tl) { // male profile
		t.Error("FemaleOnly should not match male profile")
	}
	for _, p := range []Predicate{AgeBetween(1, 2), MinFollowers(3), FemaleOnly} {
		if p.Name == "" {
			t.Error("predicate missing a name")
		}
	}
}
