// Package platform implements the simulated microblogging service that
// stands in for the paper's live Twitter/Google+/Tumblr targets (see
// DESIGN.md §2 for the substitution rationale). It generates:
//
//   - a scale-free social graph with planted communities (preferential
//     attachment inside communities plus sparse inter-community links),
//     reproducing the heavy-tailed degrees and the tightly connected
//     communities that make the raw graph "unfriendly" for random walks
//     (§4.1 of the paper);
//   - user profiles (display name, gender, age, follower count, likes,
//     background posting rate);
//   - keyword cascades: exogenous mentions arriving per a keyword
//     frequency profile (Fig. 7) plus contagion along social edges where
//     ~90% of follower adoptions happen within one hour (the paper cites
//     Sysomos: 92% of retweets occur within 1 hour of the original).
//
// The package also computes exact ground-truth aggregates, playing the
// role of the paper's streaming-API ground truth.
package platform

import (
	"fmt"
	"math/rand"
	"sort"

	"mba/internal/graph"
	"mba/internal/model"
	"mba/internal/query"
)

// Config parameterizes platform generation. Zero fields are filled with
// the defaults of DefaultConfig.
type Config struct {
	// Seed drives all randomness; the same Config generates the same
	// platform.
	Seed int64
	// NumUsers is the total user population.
	NumUsers int
	// NumCommunities is the number of planted communities.
	NumCommunities int
	// IntraEdgesPerUser is the preferential-attachment edge count each
	// user creates inside its community.
	IntraEdgesPerUser int
	// TriadicClosure is the probability that each preferential-
	// attachment edge is followed by a triad-closing edge to a random
	// neighbor of the new contact (Holme–Kim). Real social graphs have
	// clustering coefficients around 0.1–0.3 — far above pure BA — and
	// the paper's central premise (tightly connected communities that
	// trap random walks, §4.1) depends on it.
	TriadicClosure float64
	// InterEdgesPerUser is the expected number of cross-community edges
	// per user.
	InterEdgesPerUser float64
	// HorizonDays is the length of the observation window (the paper
	// uses Jan 1 – Oct 31 2013 ≈ 304 days).
	HorizonDays int
	// TimelineCap limits how many most-recent posts a timeline query can
	// see (3200 on Twitter); 0 means unlimited.
	TimelineCap int
	// BackgroundPostsPerDay is the mean background posting rate.
	BackgroundPostsPerDay float64
	// GenderKnownProb is the probability a profile exposes gender
	// (generally missing on Twitter, usually present on Google+).
	GenderKnownProb float64
	// Keywords configures the cascades to simulate.
	Keywords []KeywordConfig
}

// DefaultConfig returns a mid-sized platform with the paper's three
// headline keywords.
func DefaultConfig() Config {
	return Config{
		Seed:                  1,
		NumUsers:              20000,
		NumCommunities:        80,
		IntraEdgesPerUser:     6,
		InterEdgesPerUser:     1.5,
		HorizonDays:           304,
		TimelineCap:           3200,
		BackgroundPostsPerDay: 1.2,
		GenderKnownProb:       0.2,
		Keywords: []KeywordConfig{
			KeywordPrivacy(),
			KeywordNewYork(),
			KeywordBoston(),
		},
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.NumUsers == 0 {
		c.NumUsers = d.NumUsers
	}
	if c.NumCommunities == 0 {
		c.NumCommunities = d.NumCommunities
	}
	if c.IntraEdgesPerUser == 0 {
		c.IntraEdgesPerUser = d.IntraEdgesPerUser
	}
	if c.TriadicClosure == 0 {
		c.TriadicClosure = 0.5
	}
	if c.InterEdgesPerUser == 0 {
		c.InterEdgesPerUser = d.InterEdgesPerUser
	}
	if c.HorizonDays == 0 {
		c.HorizonDays = d.HorizonDays
	}
	if c.BackgroundPostsPerDay == 0 {
		c.BackgroundPostsPerDay = d.BackgroundPostsPerDay
	}
	if c.Keywords == nil {
		c.Keywords = d.Keywords
	}
	return c
}

// User is the platform's internal per-user record.
type User struct {
	Profile   model.Profile
	Community int
	// PostRate is the background posting rate in posts/hour.
	PostRate float64
}

// Platform is a fully generated microblog service.
type Platform struct {
	cfg   Config
	Users []User
	// Social is the undirected social graph (follower/followee collapsed
	// to undirected, as §3.2 of the paper does).
	Social *graph.Graph
	// Cascades maps keyword -> simulated cascade.
	Cascades map[string]*Cascade
	// Horizon is the end of the observation window.
	Horizon model.Tick
}

// Cascade is the outcome of simulating one keyword's spread.
type Cascade struct {
	Keyword string
	// First maps user -> time of the user's first mention.
	First map[int64]model.Tick
	// Posts maps user -> that user's keyword posts, oldest first.
	Posts map[int64][]model.Post
}

// Adopters returns the IDs of users who mentioned the keyword, sorted.
func (c *Cascade) Adopters() []int64 {
	out := make([]int64, 0, len(c.First))
	for u := range c.First {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// New generates a platform from cfg. Generation is deterministic in
// cfg (including Seed).
func New(cfg Config) (*Platform, error) {
	cfg = cfg.withDefaults()
	if cfg.NumUsers < 2 {
		return nil, fmt.Errorf("platform: NumUsers = %d, need >= 2", cfg.NumUsers)
	}
	if cfg.NumCommunities < 1 || cfg.NumCommunities > cfg.NumUsers {
		return nil, fmt.Errorf("platform: NumCommunities = %d out of range", cfg.NumCommunities)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	p := &Platform{
		cfg:      cfg,
		Cascades: make(map[string]*Cascade, len(cfg.Keywords)),
		Horizon:  model.Tick(cfg.HorizonDays) * model.Day,
	}
	communities := assignCommunities(rng, cfg.NumUsers, cfg.NumCommunities)
	p.Social = generateSocialGraph(rng, communities, cfg.IntraEdgesPerUser, cfg.InterEdgesPerUser, cfg.TriadicClosure)
	p.Users = generateUsers(rng, communities, p.Social, cfg, p.Horizon)

	for _, kc := range cfg.Keywords {
		kc = kc.withDefaults(cfg.HorizonDays)
		if err := kc.validate(); err != nil {
			return nil, err
		}
		casc := simulateCascade(rand.New(rand.NewSource(cfg.Seed^hashKeyword(kc.Name))), p, kc)
		p.Cascades[kc.Name] = casc
		// Fold keyword posts into the profile post counts so timeline
		// paging cost reflects them.
		for u, posts := range casc.Posts {
			p.Users[u].Profile.PostCount += len(posts)
		}
	}
	return p, nil
}

// hashKeyword derives a stable per-keyword seed perturbation (FNV-1a).
func hashKeyword(s string) int64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return int64(h & 0x7fffffffffffffff)
}

// Config returns the generating configuration.
func (p *Platform) Config() Config { return p.cfg }

// NumUsers returns the population size.
func (p *Platform) NumUsers() int { return len(p.Users) }

// Cascade returns the cascade for a keyword, or nil if untracked.
func (p *Platform) Cascade(keyword string) *Cascade { return p.Cascades[keyword] }

// fullTimeline assembles user u's complete (uncapped) keyword-post
// timeline across all cascades, oldest first.
func (p *Platform) fullTimeline(u int64) []model.Post {
	var posts []model.Post
	for _, c := range p.Cascades {
		posts = append(posts, c.Posts[u]...)
	}
	sort.Slice(posts, func(i, j int) bool { return posts[i].Time < posts[j].Time })
	return posts
}

// Timeline returns what a USER TIMELINE query observes for user u:
// profile plus the keyword posts still visible under the timeline cap.
// A keyword post is hidden when more than TimelineCap posts (background
// plus keyword) were published after it — the Twitter 3200-post effect
// discussed in §2 of the paper.
func (p *Platform) Timeline(u int64) model.Timeline {
	user := p.Users[u]
	posts := p.fullTimeline(u)
	t := model.Timeline{Profile: user.Profile}
	cap := p.cfg.TimelineCap
	if cap <= 0 || user.Profile.PostCount <= cap {
		t.Posts = posts
		return t
	}
	// Background posts arrive uniformly at user.PostRate per hour;
	// estimate how many land after each keyword post to decide
	// visibility of that post.
	for i, post := range posts {
		bgAfter := int(user.PostRate * float64(p.Horizon-post.Time))
		kwAfter := len(posts) - i - 1
		if bgAfter+kwAfter < cap {
			t.Posts = posts[i:]
			t.Truncated = i > 0
			return t
		}
	}
	t.Truncated = len(posts) > 0
	return t
}

// GroundTruth computes the exact aggregate answer from the full store
// (no timeline cap), playing the role of the paper's streaming-API
// ground truth. It returns an error for malformed queries or AVG over
// an empty matching set.
func (p *Platform) GroundTruth(q query.Query) (float64, error) {
	return p.groundTruth(q, false)
}

// GroundTruthVisible is GroundTruth computed over capped timelines —
// what a perfect crawler of the TIMELINE interface could reconstruct.
// Comparing it with GroundTruth quantifies the truncation bias the
// paper argues is negligible.
func (p *Platform) GroundTruthVisible(q query.Query) (float64, error) {
	return p.groundTruth(q, true)
}

func (p *Platform) groundTruth(q query.Query, visibleOnly bool) (float64, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	var count, sum float64
	for id := range p.Users {
		u := int64(id)
		var t model.Timeline
		if visibleOnly {
			t = p.Timeline(u)
		} else {
			t = model.Timeline{Profile: p.Users[u].Profile, Posts: p.fullTimeline(u)}
		}
		if !q.Matches(t) {
			continue
		}
		count++
		sum += q.Value(t)
	}
	switch q.Agg {
	case query.Count:
		return count, nil
	case query.Sum:
		return sum, nil
	case query.Avg:
		if count == 0 {
			return 0, fmt.Errorf("platform: AVG over empty matching set for %s", q)
		}
		return sum / count, nil
	}
	return 0, fmt.Errorf("platform: unknown aggregate %v", q.Agg)
}

// TermSubgraph returns the term-induced subgraph for a keyword: the
// social subgraph induced by users whose full timelines mention the
// keyword (§4.1). It is used for ground-truth subgraph statistics
// (Table 2); estimators discover it on the fly through the API instead.
func (p *Platform) TermSubgraph(keyword string) (*graph.Graph, error) {
	c := p.Cascades[keyword]
	if c == nil {
		return nil, fmt.Errorf("platform: keyword %q not simulated", keyword)
	}
	keep := make(map[int64]bool, len(c.First))
	for u := range c.First {
		keep[u] = true
	}
	return p.Social.Subgraph(keep), nil
}

// MentionsPerDay returns a histogram of keyword mentions per day over
// the horizon — the data behind Fig. 7.
func (p *Platform) MentionsPerDay(keyword string) ([]int, error) {
	c := p.Cascades[keyword]
	if c == nil {
		return nil, fmt.Errorf("platform: keyword %q not simulated", keyword)
	}
	days := make([]int, p.cfg.HorizonDays)
	for _, posts := range c.Posts {
		for _, post := range posts {
			d := int(post.Time / model.Day)
			if d >= 0 && d < len(days) {
				days[d]++
			}
		}
	}
	return days, nil
}
