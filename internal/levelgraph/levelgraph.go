// Package levelgraph implements the level-by-level subgraph design of
// §4 of the paper: organizing the term-induced subgraph into levels by
// the time each user first mentioned the keyword (bucketed at interval
// T), classifying edges as intra-level / adjacent-level / cross-level,
// removing the intra-level edges that trap random walks inside tight
// communities, and the conductance model of Theorem 4.1 that guides
// the choice of T (§4.2.3).
//
// Levels are indexed by time bucket: level 0 holds the earliest
// mentioners ("top" in the paper's Figure 6), and larger indices are
// later ("bottom", where the search API seeds live).
package levelgraph

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mba/internal/graph"
	"mba/internal/model"
)

// LevelOf buckets a first-mention time into a level index for interval T.
func LevelOf(first model.Tick, t model.Tick) int {
	if t <= 0 {
		return 0
	}
	return int(first / t)
}

// EdgeClass is the ternary edge taxonomy of §4.2.1.
type EdgeClass int

// Edge classes. Intra-level edges connect same-bucket users and are
// detrimental to sampling; adjacent- and cross-level edges are
// beneficial.
const (
	Intra EdgeClass = iota
	Adjacent
	Cross
)

func (c EdgeClass) String() string {
	switch c {
	case Intra:
		return "intra-level"
	case Adjacent:
		return "adjacent-level"
	case Cross:
		return "cross-level"
	default:
		return fmt.Sprintf("EdgeClass(%d)", int(c))
	}
}

// Classify returns the taxonomy class of an edge between users at the
// given levels.
func Classify(levelU, levelV int) EdgeClass {
	d := levelU - levelV
	if d < 0 {
		d = -d
	}
	switch d {
	case 0:
		return Intra
	case 1:
		return Adjacent
	default:
		return Cross
	}
}

// Stats summarizes a term-induced subgraph's edge taxonomy for a given
// interval (Table 2 reports the intra and cross fractions).
type Stats struct {
	Interval                         model.Tick
	Nodes, Edges                     int
	IntraEdges, AdjEdges, CrossEdges int
	// Levels is the number of non-empty levels.
	Levels int
	// AvgAdjDegree is the mean number of adjacent-level neighbors per
	// node — the model's d.
	AvgAdjDegree float64
	// AvgIntraDegree is the mean number of intra-level neighbors per
	// node — the model's k.
	AvgIntraDegree float64
}

// IntraFrac returns the fraction of intra-level edges.
func (s Stats) IntraFrac() float64 {
	if s.Edges == 0 {
		return 0
	}
	return float64(s.IntraEdges) / float64(s.Edges)
}

// CrossFrac returns the fraction of cross-level edges.
func (s Stats) CrossFrac() float64 {
	if s.Edges == 0 {
		return 0
	}
	return float64(s.CrossEdges) / float64(s.Edges)
}

// Analyze computes the edge taxonomy of the term-induced subgraph term
// under first-mention times first and interval t.
func Analyze(term *graph.Graph, first map[int64]model.Tick, t model.Tick) Stats {
	s := Stats{Interval: t, Nodes: term.NumNodes(), Edges: term.NumEdges()}
	levels := make(map[int]bool)
	for _, ft := range first {
		levels[LevelOf(ft, t)] = true
	}
	s.Levels = len(levels)
	term.Edges(func(u, v int64) bool {
		switch Classify(LevelOf(first[u], t), LevelOf(first[v], t)) {
		case Intra:
			s.IntraEdges++
		case Adjacent:
			s.AdjEdges++
		default:
			s.CrossEdges++
		}
		return true
	})
	if s.Nodes > 0 {
		s.AvgAdjDegree = 2 * float64(s.AdjEdges+s.CrossEdges) / float64(s.Nodes)
		s.AvgIntraDegree = 2 * float64(s.IntraEdges) / float64(s.Nodes)
	}
	return s
}

// Build returns the level-by-level subgraph: term with every
// intra-level edge removed (§4.2.1's key idea). All nodes are kept,
// including any left isolated.
func Build(term *graph.Graph, first map[int64]model.Tick, t model.Tick) *graph.Graph {
	return BuildPartial(term, first, t, 1, nil)
}

// BuildPartial removes only the given fraction of intra-level edges,
// chosen uniformly at random — the ablation of Figure 4. frac is
// clamped to [0,1]; rng may be nil when frac is 0 or 1.
func BuildPartial(term *graph.Graph, first map[int64]model.Tick, t model.Tick, frac float64, rng *rand.Rand) *graph.Graph {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	out := term.Clone()
	if frac == 0 {
		return out
	}
	type edge struct{ u, v int64 }
	var intra []edge
	term.Edges(func(u, v int64) bool {
		if Classify(LevelOf(first[u], t), LevelOf(first[v], t)) == Intra {
			intra = append(intra, edge{u, v})
		}
		return true
	})
	sort.Slice(intra, func(i, j int) bool {
		if intra[i].u != intra[j].u {
			return intra[i].u < intra[j].u
		}
		return intra[i].v < intra[j].v
	})
	remove := int(math.Round(frac * float64(len(intra))))
	if remove < len(intra) && rng != nil {
		rng.Shuffle(len(intra), func(i, j int) { intra[i], intra[j] = intra[j], intra[i] })
	}
	if remove > len(intra) {
		remove = len(intra)
	}
	for _, e := range intra[:remove] {
		out.RemoveEdge(e.u, e.v)
	}
	return out
}

// CandidateIntervals is the paper's Figure 5 grid: 2 hours … 1 month.
func CandidateIntervals() []model.Tick {
	return []model.Tick{
		2 * model.Hour,
		4 * model.Hour,
		12 * model.Hour,
		model.Day,
		2 * model.Day,
		model.Week,
		model.Month,
	}
}

// IntervalName renders a candidate interval in the paper's notation
// (2H, 4H, 12H, 1D, 2D, 1W, 1M).
func IntervalName(t model.Tick) string {
	switch {
	case t%model.Month == 0:
		return fmt.Sprintf("%dM", t/model.Month)
	case t%model.Week == 0:
		return fmt.Sprintf("%dW", t/model.Week)
	case t%model.Day == 0:
		return fmt.Sprintf("%dD", t/model.Day)
	default:
		return fmt.Sprintf("%dH", t)
	}
}
