package store

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"mba/internal/core"
	"mba/internal/fleet"
)

// CrashPlan is a deterministic kill schedule on the charged-call
// clock: the harness runs the workload, crashes it the moment its
// cumulative cost reaches each point (in order), optionally damages
// the newest on-disk generation, then boots a fresh incarnation that
// must recover from the durable store. After the last point the run
// is allowed to finish.
type CrashPlan struct {
	// Plan pins every durable generation to the logical run.
	Plan PlanKey
	// Budget is the total call budget of the uninterrupted run.
	Budget int
	// Points are the crash clocks: strictly increasing, each at least
	// 1 and below Budget.
	Points []int
	// Damage optionally pairs each crash point with a storage fault
	// applied to the newest generation at the instant of the crash.
	// Shorter than Points means the remaining crashes are clean.
	Damage []DamageKind
}

func (p CrashPlan) validate() error {
	if p.Budget <= 0 {
		return fmt.Errorf("store: crash plan needs a positive budget, got %d", p.Budget)
	}
	if len(p.Points) == 0 {
		return errors.New("store: crash plan needs at least one crash point")
	}
	if len(p.Damage) > len(p.Points) {
		return fmt.Errorf("store: %d damage entries for %d crash points", len(p.Damage), len(p.Points))
	}
	prev := 0
	for i, pt := range p.Points {
		if pt < 1 || pt >= p.Budget {
			return fmt.Errorf("store: crash point %d (=%d) outside [1, budget)", i, pt)
		}
		if pt <= prev {
			return fmt.Errorf("store: crash points must be strictly increasing, point %d (=%d) after %d", i, pt, prev)
		}
		prev = pt
	}
	return nil
}

// Trial records one crash → recovery round, observed at the boot that
// recovered from it.
type Trial struct {
	// CrashClock is the charged-call clock at which the run was killed.
	CrashClock int `json:"crash_clock"`
	// SavedClock is the highest clock the harness knew to be durably
	// saved when the crash hit.
	SavedClock int `json:"saved_clock"`
	// ResumeClock is the clock actually recovered from disk at the
	// next boot (lower than SavedClock only when the crash damaged the
	// newest generation and recovery fell back).
	ResumeClock int `json:"resume_clock"`
	// Repaid is CrashClock − ResumeClock: the calls the recovered run
	// re-charges because they postdate the recovered generation. Zero
	// when crashes align with autosave boundaries.
	Repaid int `json:"repaid"`
	// Damage is the storage fault injected at this crash.
	Damage DamageKind `json:"damage"`
	// Scratch is true when nothing on disk survived and the boot
	// restarted the run from zero.
	Scratch bool `json:"scratch"`
}

// Recovery is the harness verdict: the final result plus every
// reliability counter the durability audit checks.
type Recovery struct {
	// Final is the result of the incarnation that finished the run.
	Final core.Result `json:"-"`
	// Restarts is the number of crash → reboot rounds.
	Restarts int `json:"restarts"`
	// ScratchRestarts counts boots that found nothing usable on disk.
	ScratchRestarts int `json:"scratch_restarts"`
	// Saves is the number of durable generations written.
	Saves int `json:"saves"`
	// FaultsInjected counts crash points whose damage actually
	// mutated or removed an on-disk generation.
	FaultsInjected int `json:"faults_injected"`
	// LossEvents counts recoveries that resumed from an older clock
	// than the last known save — each must trace to an injected fault.
	LossEvents int `json:"loss_events"`
	// CorruptSlots / Fallbacks aggregate the per-boot store counters.
	CorruptSlots int `json:"corrupt_slots"`
	Fallbacks    int `json:"fallbacks"`
	// Trials records every crash → recovery round.
	Trials []Trial `json:"trials"`
}

// Runner is the workload under test: run with the given incarnation
// call budget, resuming from the (already rebased) checkpoint when
// non-nil, wiring save as the autosave sink. The returned Result must
// carry cumulative cost (the checkpoint's spent cost plus this
// incarnation's charges), which the built-in algorithms do.
type Runner func(budget int, resume *core.Checkpoint, save func(*core.Checkpoint) error) (core.Result, error)

// RunWithCrashes drives the workload through the crash plan. Each
// boot opens a fresh Store over the same FS (simulating a process
// restart), loads the newest intact generation, rebases it for
// bit-identical replay, and runs until the next crash point; at the
// crash it applies the scheduled damage and reboots. The final
// incarnation's Result — which the caller asserts bit-identical to an
// uninterrupted run via audit.CheckDurability — is returned alongside
// full recovery accounting.
func RunWithCrashes(fsys FS, base string, plan CrashPlan, run Runner) (Recovery, error) {
	var rec Recovery
	if err := plan.validate(); err != nil {
		return rec, err
	}
	var (
		idx           int        // next crash point
		observedSaved int        // highest clock known durably saved
		pendingCrash  = -1       // crash clock being recovered from (-1: first boot)
		pendingDamage DamageKind // damage injected at that crash
		recovered     int        // cumulative clock inherited from disk
		maxBoots      = len(plan.Points) + 4
	)
	for boot := 0; boot < maxBoots; boot++ {
		st, err := OpenFS(fsys, base)
		if err != nil {
			return rec, err
		}
		var resume *core.Checkpoint
		resumeClock := 0
		scratch := false
		snap, lerr := st.Load()
		switch {
		case lerr == nil:
			if err := snap.Plan.Check(plan.Plan); err != nil {
				return rec, err
			}
			if snap.Walk != nil {
				ck, err := core.CheckpointFromState(*snap.Walk)
				if err != nil {
					return rec, err
				}
				resume = ck
				resumeClock = ck.SpentCost()
			}
		case errors.Is(lerr, ErrNoCheckpoint):
			scratch = boot > 0
		case errors.Is(lerr, ErrCorruptCheckpoint):
			scratch = true
		default:
			return rec, lerr
		}
		if scratch {
			rec.ScratchRestarts++
		}
		if pendingCrash >= 0 {
			if resumeClock < observedSaved {
				rec.LossEvents++
			}
			rec.Trials = append(rec.Trials, Trial{
				CrashClock:  pendingCrash,
				SavedClock:  observedSaved,
				ResumeClock: resumeClock,
				Repaid:      pendingCrash - resumeClock,
				Damage:      pendingDamage,
				Scratch:     scratch,
			})
		}
		observedSaved = resumeClock
		recovered += resumeClock

		crashAt := plan.Budget
		if idx < len(plan.Points) {
			crashAt = plan.Points[idx]
		}
		incBudget := crashAt - resumeClock
		if incBudget <= 0 {
			return rec, fmt.Errorf("store: crash point %d is not past the recovered clock %d", crashAt, resumeClock)
		}

		saveFn := func(ck *core.Checkpoint) error {
			ws := ck.State()
			s := &Snapshot{
				Plan:          plan.Plan,
				Restarts:      rec.Restarts,
				RecoveredCost: recovered,
				Walk:          &ws,
			}
			if err := st.Save(s); err != nil {
				return err
			}
			rec.Saves++
			observedSaved = ck.SpentCost()
			return nil
		}

		var rebased *core.Checkpoint
		if resume != nil {
			rebased = resume.Rebase()
		}
		res, err := run(incBudget, rebased, saveFn)
		if err != nil {
			return rec, err
		}
		s := st.Stats()
		rec.CorruptSlots += s.CorruptSlots
		rec.Fallbacks += s.Fallbacks

		if idx < len(plan.Points) && res.Cost >= crashAt {
			dmg := DamageNone
			if idx < len(plan.Damage) {
				dmg = plan.Damage[idx]
			}
			damaged, err := st.DamageNewest(dmg)
			if err != nil {
				return rec, err
			}
			if damaged {
				rec.FaultsInjected++
			}
			pendingCrash = crashAt
			pendingDamage = dmg
			idx++
			rec.Restarts++
			continue
		}

		// The run finished before the next crash point (or there were
		// no points left): seal the lineage with its final summary.
		sum := SummaryOf(res)
		final := &Snapshot{
			Plan:          plan.Plan,
			Restarts:      rec.Restarts,
			RecoveredCost: recovered,
			Final:         &sum,
		}
		if res.Checkpoint != nil {
			ws := res.Checkpoint.State()
			final.Walk = &ws
		}
		if err := st.Save(final); err != nil {
			return rec, err
		}
		rec.Saves++
		rec.Final = res
		return rec, nil
	}
	return rec, fmt.Errorf("store: crash harness did not finish within %d boots", maxBoots)
}

// FleetSaver adapts the durable store to the fleet's per-unit
// autosave hook. It keeps an in-memory mirror of every planned unit's
// latest state and writes the whole flight on each update, so the
// durable generation is always a complete, resumable fleet
// checkpoint. Units that have not reported yet are seeded as degraded
// placeholders — on resume the fleet re-runs them from scratch rather
// than trusting a unit that never ran. Goroutine-safe: the fleet
// calls Save from its worker goroutines.
type FleetSaver struct {
	mu    sync.Mutex
	st    *Store
	plan  PlanKey
	units []fleet.UnitState
	err   error
}

// NewFleetSaver prepares a saver for a flight of planned units.
func NewFleetSaver(st *Store, plan PlanKey, planned int) *FleetSaver {
	fs := &FleetSaver{st: st, plan: plan, units: make([]fleet.UnitState, planned)}
	for i := range fs.units {
		fs.units[i] = fleet.UnitState{
			Unit:         i,
			EstimateBits: math.Float64bits(math.NaN()),
			Degraded:     true,
			DegradedCode: "interrupted",
			DegradedMsg:  "unit never ran in the crashed flight",
		}
	}
	return fs
}

// Save records the unit's latest state and durably writes the full
// flight. Matches the fleet.Config.Autosave signature; write failures
// are retained for Err rather than interrupting the flight.
func (f *FleetSaver) Save(u fleet.UnitResult) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if u.Unit < 0 || u.Unit >= len(f.units) {
		f.err = fmt.Errorf("store: fleet saver got unit %d of %d planned", u.Unit, len(f.units))
		return
	}
	f.units[u.Unit] = u.State()
	snap := &Snapshot{
		Plan:  f.plan,
		Fleet: &fleet.CheckpointState{Units: append([]fleet.UnitState(nil), f.units...)},
	}
	if err := f.st.Save(snap); err != nil {
		f.err = err
	}
}

// Err returns the first persistent write failure, if any.
func (f *FleetSaver) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}
