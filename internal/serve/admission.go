package serve

import "math"

// admit runs the admission state machine for a normalized task. It
// must be called with s.mu held. The outcome is one of:
//
//   - final == true: tk.resp is complete (shed, error, or served from
//     the completed-result cache) and the task never queues;
//   - final == false: the task was admitted — its budget reservation
//     is held on the ledger and it sits in its tenant's queue.
//
// Admission order: unknown tenant → cache fast path → circuit breaker
// → global shed watermark → per-tenant depth → pressure tier sizing →
// all-or-nothing quota reservation. The cache is consulted before the
// watermarks on purpose: answering a hot query from cache costs
// nothing, so overload and even an open breaker are no reason to
// refuse it.
func (s *Service) admit(tk *task) (final bool) {
	s.met.Requests++
	tk.resp = tk.baseResponse()
	if tk.ten == nil {
		tk.resp.Status = StatusError
		tk.resp.Err = "unknown tenant"
		s.met.Errors++
		return true
	}
	ten := tk.ten

	// Cache fast path: a completed identical run at the same budget.
	if !tk.req.NoCache {
		if e := s.cache.completed(tk.key, tk.req.Budget, tk.req.DeadlineNs); e != nil {
			s.met.Admitted++
			s.fillFromCache(tk, e)
			return true
		}
	}

	// Circuit breaker: open sheds and burns cooldown; half-open admits
	// a single probe at a time.
	switch ten.breaker {
	case breakerOpen:
		ten.cooldownLeft--
		if ten.cooldownLeft <= 0 {
			ten.breaker = breakerHalfOpen
		}
		s.shed(tk, ShedBreaker)
		return true
	case breakerHalfOpen:
		if ten.probing {
			s.shed(tk, ShedBreaker)
			return true
		}
		ten.probing = true
	}

	// Watermarks: shed outright past ShedDepth, degrade past
	// DegradeDepth.
	if s.backlog >= s.cfg.ShedDepth {
		s.unprobe(ten)
		s.shed(tk, ShedOverload)
		return true
	}
	if len(ten.queue) >= ten.cfg.Depth {
		s.unprobe(ten)
		s.shed(tk, ShedTenantQueue)
		return true
	}
	tk.granted = tk.req.Budget
	if s.cfg.DegradeDepth >= 0 && s.backlog >= s.cfg.DegradeDepth {
		tk.pressure = true
		tk.granted = int(math.Ceil(float64(tk.req.Budget) * s.cfg.DegradeFrac))
		if tk.granted < s.cfg.MinBudget {
			tk.granted = s.cfg.MinBudget
		}
		if tk.granted > tk.req.Budget {
			tk.granted = tk.req.Budget
		}
	}

	// All-or-nothing quota reservation: a partial grant would make the
	// effective budget depend on scheduling order, so refuse instead.
	grant, err := s.ledger.Reserve(ten.account, tk.granted)
	if err != nil || grant < tk.granted {
		s.ledger.Refund(ten.account, grant)
		s.unprobe(ten)
		s.shed(tk, ShedQuota)
		return true
	}
	// The task now owns the reservation; execute settles it (commit
	// what the walk spent, refund the rest) when the task completes.
	tk.granted = grant

	s.met.Admitted++
	ten.queue = append(ten.queue, tk)
	s.backlog++
	return false
}

// unprobe releases a half-open probe slot the task claimed but will
// not use (it was shed for an unrelated reason).
func (s *Service) unprobe(ten *tenant) {
	if ten.breaker == breakerHalfOpen && ten.probing {
		ten.probing = false
	}
}

// shed finalizes a task as refused: a well-formed Degraded partial
// with nothing spent and nothing charged.
func (s *Service) shed(tk *task, reason string) {
	tk.resp.Status = StatusShed
	tk.resp.Reason = reason
	tk.resp.Degraded = true
	s.met.Shed++
	s.met.ShedBy[reason]++
}

// fillFromCache completes a task from a cached finished run. Nothing
// is charged: the run that populated the entry already paid.
func (s *Service) fillFromCache(tk *task, e *cacheEntry) {
	tk.resp.Status = e.status
	tk.resp.Reason = e.reason
	tk.resp.Estimate = Float(math.Float64frombits(e.bits))
	tk.resp.EstimateBits = e.bits
	tk.resp.Variance = Float(e.variance)
	tk.resp.Budget = e.budget
	tk.resp.Cost = e.cost
	tk.resp.Samples = e.samples
	tk.resp.Degraded = e.degraded
	tk.resp.Retries = e.retries
	tk.resp.RateLimitHits = e.rateLimitHits
	tk.resp.CacheHit = true
	tk.resp.Charged = 0
	if e.degraded {
		s.met.Degraded++
	} else {
		s.met.Ok++
	}
	s.met.CacheHits++
}

// nextTask picks the next queued task by smooth weighted round-robin
// over tenants with backlog: each contender earns its weight, the
// richest credit wins (ties break in registration order) and pays the
// contenders' total weight. Must be called with s.mu held; returns nil
// when every queue is empty.
func (s *Service) nextTask() *task {
	var pick *tenant
	totalWeight := 0
	for _, ten := range s.order {
		if len(ten.queue) == 0 {
			continue
		}
		totalWeight += ten.cfg.Weight
		ten.credit += ten.cfg.Weight
		if pick == nil || ten.credit > pick.credit {
			pick = ten
		}
	}
	if pick == nil {
		return nil
	}
	pick.credit -= totalWeight
	tk := pick.queue[0]
	pick.queue = pick.queue[1:]
	s.backlog--
	return tk
}

// dropQueued removes a still-queued task (live-path cancellation),
// refunding its reservation. Returns false if the task already left
// the queue. Must be called with s.mu held.
func (s *Service) dropQueued(tk *task) bool {
	ten := tk.ten
	for i, q := range ten.queue {
		if q == tk {
			ten.queue = append(ten.queue[:i], ten.queue[i+1:]...)
			s.backlog--
			s.ledger.Refund(ten.account, tk.granted)
			return true
		}
	}
	return false
}

// breakerNote records a completed execution's backend health for the
// tenant's circuit breaker. Deadline, cancellation and budget-bounded
// outcomes say nothing about the backend and leave the breaker alone.
// Must be called with s.mu held.
func (s *Service) breakerNote(ten *tenant, backendFault bool) {
	if backendFault {
		ten.consecFaults++
		if ten.breaker == breakerHalfOpen || ten.consecFaults >= s.cfg.BreakerThreshold {
			if ten.breaker != breakerOpen {
				s.met.BreakerTrips++
			}
			ten.breaker = breakerOpen
			ten.cooldownLeft = s.cfg.BreakerCooldown
			ten.probing = false
			ten.consecFaults = 0
		}
		return
	}
	ten.consecFaults = 0
	if ten.breaker == breakerHalfOpen {
		ten.breaker = breakerClosed
		ten.probing = false
	}
}
