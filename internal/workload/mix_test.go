package workload

import (
	"reflect"
	"strings"
	"testing"

	"mba/internal/query"
)

func TestMixDeterministic(t *testing.T) {
	cfg := MixConfig{Seed: 42, N: 200, Tenants: []string{"gold", "silver", "bronze"},
		HotFrac: 0.7, MeanGapNs: 1e9}
	a, err := Mix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Mix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config produced different mixes")
	}
	cfg.Seed = 43
	c, err := Mix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical mixes")
	}
}

func TestMixShape(t *testing.T) {
	cfg := MixConfig{Seed: 7, N: 500, Tenants: []string{"gold", "bronze"},
		HotFrac: 0.8, MeanGapNs: 1e9}
	items, err := Mix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != cfg.N {
		t.Fatalf("got %d items, want %d", len(items), cfg.N)
	}
	hot := 0
	var prev int64
	tenants := map[string]int{}
	uniq := map[string]bool{}
	for _, it := range items {
		if it.ArrivalNs < prev {
			t.Fatalf("arrivals not monotone: %d after %d", it.ArrivalNs, prev)
		}
		prev = it.ArrivalNs
		q, err := query.ParseQuery(it.Query)
		if err != nil {
			t.Fatalf("generated unparsable query %q: %v", it.Query, err)
		}
		if q.String() != it.Query {
			t.Fatalf("generated non-canonical query %q", it.Query)
		}
		for _, kw := range []string{"privacy", "new york", "boston"} {
			if strings.Contains(it.Query, `"`+kw+`"`) {
				hot++
				break
			}
		}
		if it.Budget <= 0 {
			t.Fatalf("non-positive budget %d", it.Budget)
		}
		tenants[it.Tenant]++
		uniq[it.Query] = true
	}
	// 80% hot traffic over 500 draws: allow generous slack but make
	// sure the head/tail split is real. "new york" also appears in the
	// tail tables, so hot can exceed the nominal fraction.
	if hot < 300 {
		t.Errorf("hot keywords on %d/%d requests, want >= 300", hot, len(items))
	}
	for _, tn := range cfg.Tenants {
		if tenants[tn] == 0 {
			t.Errorf("tenant %s never drawn", tn)
		}
	}
	// The point of hot traffic: far fewer unique queries than requests,
	// so caches and coalescing see repeats.
	if len(uniq) >= len(items)/2 {
		t.Errorf("%d unique queries out of %d requests — no repeats to cache", len(uniq), len(items))
	}
}

func TestMixRejectsBadConfig(t *testing.T) {
	for _, cfg := range []MixConfig{
		{N: 0, Tenants: []string{"a"}},
		{N: 5},
		{N: 5, Tenants: []string{"a"}, HotFrac: 1.5},
		{N: 5, Tenants: []string{"a"}, MeanGapNs: -1},
	} {
		if _, err := Mix(cfg); err == nil {
			t.Errorf("Mix(%+v) unexpectedly succeeded", cfg)
		}
	}
}
