package lint_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"mba/internal/lint"
)

// cachedFixtureProgram builds the fixture program through the given
// fact cache, using a fresh loader each time so nothing is shared
// between builds except the cache file.
func cachedFixtureProgram(t *testing.T, cache *lint.FactCache, paths ...string) *lint.Program {
	t.Helper()
	loader := lint.NewFixtureLoader(filepath.Join("testdata", "src"))
	for _, p := range paths {
		if _, err := loader.Load(p); err != nil {
			t.Fatalf("loading %s: %v", p, err)
		}
	}
	return lint.NewProgramCached(loader.Loaded(), cache)
}

// TestFactCacheRoundTrip builds the same program twice through a
// shared cache file: the first build must miss and populate, the
// second must hit for every package — and both must converge to the
// same summaries.
func TestFactCacheRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "factcache.json")
	targets := []string{"ctxflow/core", "lockorder", "recursion", "dettaint", "unlockpath"}

	cold := lint.OpenFactCache(path)
	prog1 := cachedFixtureProgram(t, cold, targets...)
	if cold.Misses == 0 {
		t.Error("cold cache reported no misses")
	}
	if cold.Hits != 0 {
		t.Errorf("cold cache reported %d hits", cold.Hits)
	}
	if err := cold.Save(); err != nil {
		t.Fatal(err)
	}

	warm := lint.OpenFactCache(path)
	prog2 := cachedFixtureProgram(t, warm, targets...)
	if warm.Hits == 0 {
		t.Error("warm cache reported no hits")
	}
	if warm.Misses != 0 {
		t.Errorf("warm cache reported %d misses on unchanged sources", warm.Misses)
	}

	// Cached facts must be indistinguishable from recomputed ones —
	// including the v2 taint and release facts.
	for _, id := range []string{
		"ctxflow/core.BadFresh", "ctxflow/core.threaded", "ctxflow/core.Free",
		"lockorder.cThenB", "recursion.even", "(*api.Client).Search",
		"dettaint.unsortedKeys", "dettaint.emit", "(*unlockpath.counter).release",
	} {
		f1, f2 := prog1.FuncByID(id), prog2.FuncByID(id)
		if f1 == nil || f2 == nil {
			t.Fatalf("Func %q missing from one of the builds", id)
		}
		s1, s2 := prog1.SummaryOf(f1), prog2.SummaryOf(f2)
		if s1.IncursCost != s2.IncursCost || s1.ConsumesCtx != s2.ConsumesCtx ||
			s1.UsesCtx != s2.UsesCtx || s1.ReturnsError != s2.ReturnsError {
			t.Errorf("%s: cached summary diverges: cold=%+v warm=%+v", id, s1, s2)
		}
		if s1.TaintsReturn != s2.TaintsReturn || s1.ParamTaintToReturn != s2.ParamTaintToReturn ||
			s1.ParamTaintToSink != s2.ParamTaintToSink {
			t.Errorf("%s: cached taint facts diverge: cold=%+v warm=%+v", id, s1, s2)
		}
		a1, a2 := s1.AcquiresSorted(), s2.AcquiresSorted()
		if len(a1) != len(a2) {
			t.Errorf("%s: acquires diverge: cold=%v warm=%v", id, a1, a2)
		}
		if len(s1.Releases) != len(s2.Releases) {
			t.Errorf("%s: releases diverge: cold=%v warm=%v", id, s1.Releases, s2.Releases)
		}
	}

	// The helper-returns-unsorted-keys fact must actually be present —
	// otherwise this round-trip proves nothing about the new fields.
	if f := prog2.FuncByID("dettaint.unsortedKeys"); !prog2.SummaryOf(f).TaintsReturn {
		t.Error("warm cache lost TaintsReturn for dettaint.unsortedKeys")
	}
	if f := prog2.FuncByID("(*unlockpath.counter).release"); len(prog2.SummaryOf(f).Releases) == 0 {
		t.Error("warm cache lost Releases for (*unlockpath.counter).release")
	}
}

// copyFixtureTree copies the named fixture packages from testdata/src
// into a fresh src root so a test can edit sources without touching
// the committed fixtures.
func copyFixtureTree(t *testing.T, root string, pkgs ...string) {
	t.Helper()
	for _, p := range pkgs {
		srcDir := filepath.Join("testdata", "src", p)
		dstDir := filepath.Join(root, p)
		if err := os.MkdirAll(dstDir, 0o777); err != nil {
			t.Fatal(err)
		}
		names, err := os.ReadDir(srcDir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range names {
			data, err := os.ReadFile(filepath.Join(srcDir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dstDir, e.Name()), data, 0o666); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestFactCacheGranularity: editing one package invalidates exactly
// that package's entry; every other package still hits. This is the
// regression test for the per-package key (content hash + per-package
// dynamic surface) — a program-wide key component would make every
// entry miss after any edit.
func TestFactCacheGranularity(t *testing.T) {
	srcRoot := t.TempDir()
	copyFixtureTree(t, srcRoot, "api", "recursion", "lockorder")
	cachePath := filepath.Join(t.TempDir(), "factcache.json")

	build := func(cache *lint.FactCache) {
		loader := lint.NewFixtureLoader(srcRoot)
		for _, p := range []string{"recursion", "lockorder"} {
			if _, err := loader.Load(p); err != nil {
				t.Fatalf("loading %s: %v", p, err)
			}
		}
		lint.NewProgramCached(loader.Loaded(), cache)
	}

	cold := lint.OpenFactCache(cachePath)
	build(cold)
	if err := cold.Save(); err != nil {
		t.Fatal(err)
	}

	// Edit only the recursion package: append a new function.
	edited := filepath.Join(srcRoot, "recursion", "a.go")
	data, err := os.ReadFile(edited)
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, []byte("\nfunc granularityProbe() int { return 1 }\n")...)
	if err := os.WriteFile(edited, data, 0o666); err != nil {
		t.Fatal(err)
	}

	warm := lint.OpenFactCache(cachePath)
	build(warm)
	if warm.Misses != 1 {
		t.Errorf("after editing one package: misses=%d, want exactly 1 (only the edited package)", warm.Misses)
	}
	if warm.Hits < 2 {
		t.Errorf("after editing one package: hits=%d, want >=2 (api and lockorder must survive)", warm.Hits)
	}

	// The edited package's refreshed entry must be persisted under its
	// new key, so a third build hits everywhere.
	if err := warm.Save(); err != nil {
		t.Fatal(err)
	}
	third := lint.OpenFactCache(cachePath)
	build(third)
	if third.Misses != 0 {
		t.Errorf("third build after re-save: misses=%d, want 0", third.Misses)
	}
}

// TestFactCacheVersionInvalidates: a cache written by another schema
// version must be ignored wholesale, not half-trusted.
func TestFactCacheVersionInvalidates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "factcache.json")
	cache := lint.OpenFactCache(path)
	cachedFixtureProgram(t, cache, "recursion")
	if err := cache.Save(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	stale := bytes.Replace(data, []byte(`"version": 3`), []byte(`"version": 2`), 1)
	if bytes.Equal(stale, data) {
		t.Fatal("could not rewrite cache version; schema changed?")
	}
	if err := os.WriteFile(path, stale, 0o666); err != nil {
		t.Fatal(err)
	}
	reopened := lint.OpenFactCache(path)
	cachedFixtureProgram(t, reopened, "recursion")
	if reopened.Hits != 0 || reopened.Misses == 0 {
		t.Errorf("stale-version cache should behave as empty: hits=%d misses=%d", reopened.Hits, reopened.Misses)
	}
}

// TestFactCacheCorruptFileIsEmpty: a corrupt cache file degrades to an
// empty cache instead of failing the run.
func TestFactCacheCorruptFileIsEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "factcache.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o666); err != nil {
		t.Fatal(err)
	}
	cache := lint.OpenFactCache(path)
	cachedFixtureProgram(t, cache, "recursion")
	if cache.Hits != 0 || cache.Misses == 0 {
		t.Errorf("corrupt cache should behave as empty: hits=%d misses=%d", cache.Hits, cache.Misses)
	}
}
