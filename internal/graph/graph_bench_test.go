package graph

import (
	"math/rand"
	"testing"
)

// Micro-benchmarks for the adjacency store that every walk step and
// qualification probe touches. Run with:
//
//	go test ./internal/graph -bench=. -benchmem

func randomGraph(n, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := NewWithCapacity(n)
	for i := 0; i < n; i++ {
		g.AddNode(int64(i))
	}
	for i := 0; i < m; i++ {
		u, v := rng.Int63n(int64(n)), rng.Int63n(int64(n))
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

func BenchmarkAddEdge(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := NewWithCapacity(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, v := rng.Int63n(1<<16), rng.Int63n(1<<16)
		if u != v {
			g.AddEdge(u, v)
		}
	}
}

func BenchmarkHasEdge(b *testing.B) {
	g := randomGraph(10000, 100000, 2)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.HasEdge(rng.Int63n(10000), rng.Int63n(10000))
	}
}

func BenchmarkCommonNeighbors(b *testing.B) {
	g := randomGraph(10000, 200000, 4)
	rng := rand.New(rand.NewSource(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.CommonNeighbors(rng.Int63n(10000), rng.Int63n(10000))
	}
}

func BenchmarkComponents(b *testing.B) {
	g := randomGraph(20000, 100000, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Components()
	}
}

func BenchmarkSubgraph(b *testing.B) {
	g := randomGraph(20000, 200000, 7)
	keep := make(map[int64]bool, 5000)
	rng := rand.New(rand.NewSource(8))
	for len(keep) < 5000 {
		keep[rng.Int63n(20000)] = true
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Subgraph(keep)
	}
}

func BenchmarkCutConductance(b *testing.B) {
	g := randomGraph(20000, 200000, 9)
	s := make(map[int64]bool, 10000)
	rng := rand.New(rand.NewSource(10))
	for len(s) < 10000 {
		s[rng.Int63n(20000)] = true
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.CutConductance(s)
	}
}
