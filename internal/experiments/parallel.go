package experiments

import (
	"context"
	"fmt"
	"time"

	"mba/internal/audit"
	"mba/internal/core"
	"mba/internal/fleet"
	"mba/internal/query"
	"mba/internal/stats"
	"mba/internal/workload"
)

// parallelWalkers is the sweep grid: goroutine counts executing the
// same fixed logical fleet plan.
var parallelWalkers = []int{1, 2, 4, 8}

// ParallelPoint is one sweep measurement, the unit BENCH_parallel.json
// serializes. Every field except WallNanos is deterministic in
// (Scale, Seed, Budget); WallNanos is the one wall-clock measurement
// in the repository and is only populated when the caller injects a
// clock (cmd/mba-bench does; tests and the CSV artifact never see it).
type ParallelPoint struct {
	Walkers       int           `json:"walkers"`
	Estimate      float64       `json:"estimate"`
	RelErr        float64       `json:"rel_err"`
	Cost          int           `json:"cost"`
	Samples       int           `json:"samples"`
	Virtual       time.Duration `json:"virtual_ns"`
	WatchdogTrips int           `json:"watchdog_trips"`
	Shed          int           `json:"shed"`
	WallNanos     int64         `json:"wall_ns,omitempty"`
}

// Parallel is the deterministic face of the sweep (no wall clock),
// used by the benchmark table/CSV artifacts and the tests.
func Parallel(opts Options) (Table, error) {
	t, _, err := ParallelSweep(opts, nil)
	return t, err
}

// ParallelSweep runs the same logical walker fleet — eight independent
// walkers sharing opts.Budget through the ledger — at 1, 2, 4, and 8
// goroutines, and audits the tentpole invariant: the merged estimate
// is bit-identical at every parallelism level, so concurrency buys
// wall-clock speedup without touching the statistics. clock, when
// non-nil, is a monotonic nanosecond source (injected by package main,
// the only wall-clock-capable package) used to fill WallNanos.
func ParallelSweep(opts Options, clock func() int64) (Table, []ParallelPoint, error) {
	opts = opts.withDefaults()
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	p, err := workload.Get(opts.Scale)
	if err != nil {
		return Table{}, nil, err
	}

	q := query.AvgQuery("privacy", query.Followers)
	truth, err := p.GroundTruth(q)
	if err != nil {
		return Table{}, nil, err
	}
	walk := func(ctx context.Context, s *core.Session, seed int64, ck *core.Checkpoint) (core.Result, error) {
		return core.RunTARW(s, core.TARWOptions{Seed: seed, Resume: ck, Ctx: ctx})
	}

	t := Table{
		ID:    "parallel",
		Title: "Concurrent walker fleet: same logical plan at 1..8 goroutines (estimate must be bit-identical)",
		Columns: []string{
			"Walkers", "Estimate", "RelErr", "Cost", "Samples", "Virtual", "Watchdog", "Shed", "Audit",
		},
	}

	aud := audit.Auditor{Budget: opts.Budget}
	var (
		points    []ParallelPoint
		estimates []float64
		checks    int
		firstViol string
		nviol     int
	)
	for _, w := range parallelWalkers {
		opts.logf("parallel: walkers=%d", w)
		var t0 int64
		if clock != nil {
			t0 = clock()
		}
		res, err := fleet.Run(ctx, fleet.Config{
			Platform:    p,
			Query:       q,
			Interval:    opts.Interval,
			Walk:        walk,
			Budget:      opts.Budget,
			Seed:        opts.Seed,
			Parallelism: w,
		})
		if err != nil {
			return Table{}, nil, fmt.Errorf("parallel walkers=%d: %w", w, err)
		}
		pt := ParallelPoint{
			Walkers:       w,
			Estimate:      res.Estimate,
			RelErr:        stats.RelativeError(res.Estimate, truth),
			Cost:          res.Cost,
			Samples:       res.Samples,
			Virtual:       res.VirtualDuration,
			WatchdogTrips: res.WatchdogTrips,
			Shed:          res.Shed,
		}
		if clock != nil {
			pt.WallNanos = clock() - t0
		}
		points = append(points, pt)
		estimates = append(estimates, res.Estimate)

		rep := aud.CheckFleet(res)
		checks += rep.Checks
		nviol += len(rep.Violations)
		if firstViol == "" && len(rep.Violations) > 0 {
			firstViol = fmt.Sprintf("walkers=%d: %s", w, rep.Violations[0])
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", w),
			fmt.Sprintf("%.4f", pt.Estimate),
			fmt.Sprintf("%.4f", pt.RelErr),
			fmt.Sprintf("%d", pt.Cost),
			fmt.Sprintf("%d", pt.Samples),
			pt.Virtual.String(),
			fmt.Sprintf("%d", pt.WatchdogTrips),
			fmt.Sprintf("%d", pt.Shed),
			fmt.Sprintf("ok(%d)", rep.Checks),
		})
	}

	det := aud.CheckParallelDeterminism(estimates)
	checks += det.Checks
	nviol += len(det.Violations)
	if firstViol == "" && len(det.Violations) > 0 {
		firstViol = det.Violations[0].String()
	}
	if nviol > 0 {
		return t, points, fmt.Errorf("parallel: auditor found %d invariant violations in %d checks; first: %s",
			nviol, checks, firstViol)
	}
	return t, points, nil
}
