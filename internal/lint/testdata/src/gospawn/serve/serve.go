// Fixture for the gospawn analyzer: the package basename is "serve",
// the request-serving worker pool, so go statements are allowed — but
// the WaitGroup-join invariant applies exactly as in fleet.
package serve

import "sync"

func joinedWorkerPool(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func unjoinedWorker() {
	go handle() // want "unjoined goroutine"
}

func unjoinedDespiteWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	go handle() // want "unjoined goroutine"
	_ = wg
}

func handle() {}
