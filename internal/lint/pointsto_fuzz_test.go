package lint

// Fuzz and unit coverage for the Andersen solver in isolation: the
// PTSolver is AST-agnostic, so synthetic constraint graphs can probe
// the three properties every consumer relies on — termination,
// run-to-run determinism, and subset-closure soundness of the solved
// fixpoint — without building any Go program.

import (
	"fmt"
	"testing"
)

// fuzzFields is the cell vocabulary for synthetic graphs: the two
// pseudo-fields plus a named field.
var fuzzFields = []string{ptElemField, ptIndexField, "f"}

// buildFuzzSolver decodes data into a constraint graph over a fixed
// node/object population. Every 3-byte word is one constraint; the
// decoder is total (any byte string is a valid graph).
func buildFuzzSolver(data []byte) *PTSolver {
	const nNodes, nObjs = 12, 5
	s := NewPTSolver()
	for i := 0; i < nNodes; i++ {
		s.NewNode(fmt.Sprintf("n%d", i))
	}
	for i := 0; i < nObjs; i++ {
		s.NewObject(&PTObject{ID: fmt.Sprintf("o%d", i), Kind: "new"})
	}
	for len(data) >= 3 {
		op, a, b := data[0], int(data[1]), int(data[2])
		data = data[3:]
		field := fuzzFields[int(op/5)%len(fuzzFields)]
		switch op % 5 {
		case 0:
			s.AddAlloc(a%nNodes, b%nObjs)
		case 1:
			s.AddCopy(a%nNodes, b%nNodes)
		case 2:
			s.AddLoad(a%nNodes, b%nNodes, field)
		case 3:
			s.AddStore(a%nNodes, field, b%nNodes)
		case 4:
			// Alias an object's element cell to an existing node, the
			// way variable storage objects are wired.
			s.SetElem(a%nObjs, b%nNodes)
		}
	}
	return s
}

// checkClosure fails the test unless the solved sets are a closed
// fixpoint: every copy edge is a subset edge, and every load/store has
// been expanded against every object of its base.
func checkClosure(t *testing.T, s *PTSolver) {
	t.Helper()
	for i, n := range s.nodes {
		for d := range n.succs {
			for o := range n.pts {
				if !s.nodes[d].pts[o] {
					t.Errorf("copy edge %d->%d not closed: object %d missing from dst", i, d, o)
				}
			}
		}
		for o := range n.pts {
			for _, ld := range n.loads {
				fn, ok := s.fieldNodeIfExists(o, ld.field)
				if !ok {
					t.Errorf("load on node %d: cell (%d,%q) never materialized", i, o, ld.field)
					continue
				}
				for x := range s.nodes[fn].pts {
					if !s.nodes[ld.other].pts[x] {
						t.Errorf("load not closed: pts(n%d) missing %d from cell (%d,%q)", ld.other, x, o, ld.field)
					}
				}
			}
			for _, st := range n.stores {
				fn, ok := s.fieldNodeIfExists(o, st.field)
				if !ok {
					t.Errorf("store on node %d: cell (%d,%q) never materialized", i, o, st.field)
					continue
				}
				for x := range s.nodes[st.other].pts {
					if !s.nodes[fn].pts[x] {
						t.Errorf("store not closed: cell (%d,%q) missing %d from pts(n%d)", o, st.field, x, st.other)
					}
				}
			}
		}
	}
}

// FuzzPointsToSolver checks, on arbitrary constraint graphs, that the
// solver terminates (the driver's timeout is the only clock), that two
// independent solves of the same graph are bit-identical (node count,
// node IDs, and every solved set), and that the result is a closed
// subset fixpoint that still contains every alloc seed.
func FuzzPointsToSolver(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 1, 0})                              // alloc + copy
	f.Add([]byte{0, 0, 0, 2, 1, 0, 3, 0, 2})                     // load/store mix
	f.Add([]byte{0, 0, 1, 4, 1, 3, 2, 5, 0, 3, 0, 6})            // SetElem aliasing
	f.Add([]byte{1, 0, 1, 1, 1, 2, 1, 2, 0, 0, 0, 0})            // copy cycle
	f.Add([]byte{0, 2, 2, 7, 3, 2, 8, 4, 3, 12, 5, 4, 13, 6, 5}) // field fan-out
	f.Fuzz(func(t *testing.T, data []byte) {
		s1 := buildFuzzSolver(data)
		seeds := make([][]int, s1.NumNodes())
		for i := range s1.nodes {
			seeds[i] = sortedIntKeys(s1.nodes[i].pts)
		}
		s1.Solve()
		if !s1.solved {
			t.Fatal("Solve returned without marking the system solved")
		}

		// Determinism: an independent build+solve of the same bytes must
		// agree on every node index, ID, and solved set.
		s2 := buildFuzzSolver(data)
		s2.Solve()
		if s1.NumNodes() != s2.NumNodes() || s1.NumObjects() != s2.NumObjects() {
			t.Fatalf("nondeterministic graph size: %d/%d nodes, %d/%d objects",
				s1.NumNodes(), s2.NumNodes(), s1.NumObjects(), s2.NumObjects())
		}
		for i := range s1.nodes {
			if s1.nodes[i].id != s2.nodes[i].id {
				t.Fatalf("node %d id diverges: %q vs %q", i, s1.nodes[i].id, s2.nodes[i].id)
			}
			p1, p2 := s1.PointsTo(i), s2.PointsTo(i)
			if len(p1) != len(p2) {
				t.Fatalf("node %d set diverges: %v vs %v", i, p1, p2)
			}
			for j := range p1 {
				if p1[j] != p2[j] {
					t.Fatalf("node %d set diverges: %v vs %v", i, p1, p2)
				}
			}
		}

		// Soundness: the solution is a closed subset fixpoint...
		checkClosure(t, s1)
		// ...that kept every alloc seed (solving only ever grows sets).
		for i, set := range seeds {
			for _, o := range set {
				if !s1.nodes[i].pts[o] {
					t.Errorf("node %d lost alloc seed %d", i, o)
				}
			}
		}

		// The cache-replay verifier must accept the genuine solution
		// after a field-log replay on a fresh pre-solve system...
		s3 := buildFuzzSolver(data)
		for _, fc := range s1.fieldLog {
			s3.fieldNode(fc.Obj, fc.Field)
		}
		sets := make([][]int, s1.NumNodes())
		for i := range s1.nodes {
			sets[i] = s1.PointsTo(i)
		}
		if !s3.installVerified(sets) {
			t.Error("installVerified rejected the solver's own fixpoint")
		}
		// ...and reject it once a seeded object is dropped.
		for i, set := range seeds {
			if len(set) == 0 {
				continue
			}
			s4 := buildFuzzSolver(data)
			for _, fc := range s1.fieldLog {
				s4.fieldNode(fc.Obj, fc.Field)
			}
			broken := make([][]int, len(sets))
			copy(broken, sets)
			broken[i] = broken[i][:0]
			if s4.installVerified(broken) {
				t.Errorf("installVerified accepted a solution missing node %d's seeds", i)
			}
			break
		}
	})
}

// TestPTSolverBasics pins the four constraint kinds on a hand-built
// graph: alloc seeds, transitive copies, and load/store through a
// field cell.
func TestPTSolverBasics(t *testing.T) {
	s := NewPTSolver()
	a, b, c := s.NewNode("a"), s.NewNode("b"), s.NewNode("c")
	o1 := s.NewObject(&PTObject{ID: "o1", Kind: "new"})
	o2 := s.NewObject(&PTObject{ID: "o2", Kind: "new"})
	s.AddAlloc(a, o1)
	s.AddCopy(b, a) // b ⊇ a
	ptr := s.NewNode("ptr")
	s.AddAlloc(ptr, o2)
	s.AddStore(ptr, "f", b) // o2.f ⊇ b
	s.AddLoad(c, ptr, "f")  // c ⊇ o2.f
	s.Solve()

	want := func(node int, objs ...int) {
		t.Helper()
		got := s.PointsTo(node)
		if len(got) != len(objs) {
			t.Fatalf("node %d: pts = %v, want %v", node, got, objs)
		}
		for i := range objs {
			if got[i] != objs[i] {
				t.Fatalf("node %d: pts = %v, want %v", node, got, objs)
			}
		}
	}
	want(a, o1)
	want(b, o1)
	want(c, o1) // flowed a -> b -> o2.f -> c
}

// TestPTSolverSetElem pins the element-cell override: dereferencing a
// pointer to a variable's storage object must read the variable's own
// node, not a fresh cell.
func TestPTSolverSetElem(t *testing.T) {
	s := NewPTSolver()
	x := s.NewNode("x") // the variable's value node
	ov := s.NewObject(&PTObject{ID: "var:x", Kind: "var"})
	s.SetElem(ov, x)
	heap := s.NewObject(&PTObject{ID: "heap", Kind: "new"})
	s.AddAlloc(x, heap)

	p := s.NewNode("p") // p = &x
	s.AddAlloc(p, ov)
	got := s.NewNode("got") // got = *p
	s.AddLoad(got, p, ptElemField)
	s.Solve()

	pts := s.PointsTo(got)
	if len(pts) != 1 || pts[0] != heap {
		t.Fatalf("*p = %v, want [%d] (x's own contents)", pts, heap)
	}
}

// TestPTSolverCycleConverges pins termination and the least fixpoint
// on a copy cycle feeding a store/load pair.
func TestPTSolverCycleConverges(t *testing.T) {
	s := NewPTSolver()
	n := []int{s.NewNode("0"), s.NewNode("1"), s.NewNode("2")}
	o := s.NewObject(&PTObject{ID: "o", Kind: "new"})
	s.AddCopy(n[1], n[0])
	s.AddCopy(n[2], n[1])
	s.AddCopy(n[0], n[2])
	s.AddAlloc(n[0], o)
	base := s.NewNode("base")
	s.AddAlloc(base, o)
	s.AddStore(base, ptElemField, n[2])
	back := s.NewNode("back")
	s.AddLoad(back, base, ptElemField)
	s.Solve()
	for _, i := range n {
		if pts := s.PointsTo(i); len(pts) != 1 || pts[0] != o {
			t.Fatalf("cycle node %d: pts = %v, want [%d]", i, pts, o)
		}
	}
	if pts := s.PointsTo(back); len(pts) != 1 || pts[0] != o {
		t.Fatalf("load through cell: pts = %v, want [%d]", pts, o)
	}
	checkClosure(t, s)
}
