// Package stats is a floatsum fixture: its basename puts it in the
// analyzer's patrolled set, like the real mba/internal/stats.
package stats

type adder struct{ sum, c float64 }

func (a *adder) Add(x float64)  { a.sum += x }
func (a *adder) Total() float64 { return a.sum + a.c }

func naiveRangeSum(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x // want "naive float accumulation over a float64 slice"
	}
	return sum
}

func naiveIndexSum(xs []float64) float64 {
	var sum float64
	for i := 0; i < len(xs); i++ {
		sum += xs[i] // want "naive indexed float accumulation"
	}
	return sum
}

func naiveNestedProduct(xs []float64) float64 {
	var ss float64
	for i := range xs {
		d := xs[i] * xs[i]
		_ = d
		ss += xs[i] * xs[i] // want "naive float accumulation over a float64 slice"
	}
	return ss
}

func compensated(xs []float64) float64 {
	var a adder
	for _, x := range xs {
		a.Add(x)
	}
	return a.Total()
}

func intSum(ns []int) int {
	var sum int
	for _, n := range ns {
		sum += n
	}
	return sum
}

func perElementStore(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x * 2 // element store, no accumulation
	}
	return out
}

func acknowledged(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		//lint:ignore floatsum fixture exercises the suppression directive
		sum += x
	}
	return sum
}
