package api

import "mba/internal/model"

// CacheSnapshot is a portable copy of a Client's response caches. A
// walk checkpoint carries one so the run can resume on a fresh Client
// (new budget, new accounting) without repaying API calls already
// spent: every response the interrupted run fetched is replayed from
// the snapshot at zero cost.
//
// Cached slices and timelines are shared, not deep-copied — Client
// responses are read-only by contract.
type CacheSnapshot struct {
	conns    map[int64][]int64
	tls      map[int64]model.Timeline
	priv     map[int64]bool
	gone     map[int64]bool
	searches map[string][]int64
}

// Entries returns the number of cached responses in the snapshot.
func (cs *CacheSnapshot) Entries() int {
	if cs == nil {
		return 0
	}
	return len(cs.conns) + len(cs.tls) + len(cs.priv) + len(cs.gone) + len(cs.searches)
}

// ExportCache copies the client's response caches into a snapshot.
func (c *Client) ExportCache() *CacheSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	cs := &CacheSnapshot{
		conns:    make(map[int64][]int64, len(c.connCache)),
		tls:      make(map[int64]model.Timeline, len(c.tlCache)),
		priv:     make(map[int64]bool, len(c.privCache)),
		gone:     make(map[int64]bool, len(c.goneCache)),
		searches: make(map[string][]int64, len(c.searches)),
	}
	for k, v := range c.connCache {
		cs.conns[k] = v
	}
	for k, v := range c.tlCache {
		cs.tls[k] = v
	}
	for k, v := range c.privCache {
		cs.priv[k] = v
	}
	for k, v := range c.goneCache {
		cs.gone[k] = v
	}
	for k, v := range c.searches {
		cs.searches[k] = v
	}
	return cs
}

// ImportCache merges a snapshot into the client's caches (snapshot
// entries win on conflict). Costs already spent populating the
// snapshot are not re-charged — that is the point.
func (c *Client) ImportCache(cs *CacheSnapshot) {
	if cs == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, v := range cs.conns {
		c.connCache[k] = v
	}
	for k, v := range cs.tls {
		c.tlCache[k] = v
	}
	for k, v := range cs.priv {
		c.privCache[k] = v
	}
	for k, v := range cs.gone {
		c.goneCache[k] = v
	}
	for k, v := range cs.searches {
		c.searches[k] = v
	}
}
