// Package ignorescope proves lint:ignore scoping: a directive
// suppresses exactly the next statement (or its own statement when
// trailing), and a reasonless directive suppresses nothing.
package ignorescope

import "errors"

var ErrX = errors.New("x")

func scopedToNextStatement(err error) bool {
	//lint:ignore errsentinel demo: the directive covers only the next statement
	if err == ErrX {
		return true
	}
	return err == ErrX // want `ErrX compared with ==/!=`
}

func trailingForm(err error) bool {
	return err == ErrX //lint:ignore errsentinel demo: trailing directives cover their own statement
}

func reasonlessSuppressesNothing(err error) bool {
	//lint:ignore errsentinel
	return err == ErrX // want `ErrX compared with ==/!=`
}
