package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"mba/internal/lint"
)

// vetConfig is the subset of the `go vet` unit-checker config file the
// tool needs: the package's sources plus the compiled export data of
// its dependencies, so type-checking needs neither the network nor a
// source walk.
type vetConfig struct {
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	// VetxOnly marks a dependency package being visited only so the
	// tool can compute facts for downstream packages; diagnostics must
	// not be reported for it. VetxOutput is the facts file go vet
	// expects the tool to produce (we keep no facts, so it is empty).
	VetxOnly   bool
	VetxOutput string
}

// runVet analyzes the single package described by a vet .cfg file and
// prints diagnostics in the file:line:col form go vet relays.
func runVet(analyzers []*lint.Analyzer, cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mba-lint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "mba-lint: parsing vet config:", err)
		return 2
	}
	// go vet caches per-package results keyed on the facts file, so the
	// tool must always produce it — even for packages it skips.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "mba-lint:", err)
			return 2
		}
	}
	// Dependencies are visited facts-only; the invariants are about this
	// module's code, not the standard library's relationship to it.
	if cfg.VetxOnly {
		return 0
	}
	// Test variants ("pkg [pkg.test]", "pkg.test") re-analyze the same
	// sources plus _test.go files; the invariants target non-test code.
	if strings.Contains(cfg.ImportPath, " [") || strings.HasSuffix(cfg.ImportPath, ".test") {
		return 0
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mba-lint:", err)
			return 2
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return 0
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mba-lint: type-checking:", err)
		return 2
	}
	pkg := &lint.Package{Path: cfg.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info}
	// The whole-program view here spans exactly one package: callees in
	// other packages have no bodies, so interprocedural summaries stay at
	// bottom and ctxflow/errsentinel/lockorder/budgetflow under-report.
	// The standalone run (make lint) is the authoritative gate.
	diags, err := lint.RunAll(analyzers, []*lint.Package{pkg})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mba-lint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s (%s)\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
