package sharedguard

import "sync"

type condBox struct {
	mu   sync.Mutex
	hits int
}

// condDefer: a defer mu.Unlock() sitting inside a conditional. The
// must-held analysis keeps the lock held after the DeferStmt (release
// happens at exit), so both the early-return arm and the fall-through
// write stay guarded — no findings.
func condDefer(flag bool) int {
	b := &condBox{}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		b.mu.Lock()
		defer b.mu.Unlock()
		b.hits++
	}()
	b.mu.Lock()
	if flag {
		defer b.mu.Unlock()
		b.hits++
		wg.Wait()
		return b.hits
	}
	b.hits++
	b.mu.Unlock()
	wg.Wait()
	return 0
}

// condDeferMissed: the lock is acquired only inside the conditional;
// the write after the merge point is unguarded on the other arm.
func condDeferMissed(flag bool) int {
	b := &condBox{}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if flag {
			b.mu.Lock()
			defer b.mu.Unlock()
		}
		b.hits++ // want "reachable from multiple goroutines"
	}()
	b.mu.Lock()
	b.hits++
	b.mu.Unlock()
	wg.Wait()
	return b.hits
}
