// Package outofscope verifies analyzer scoping: floatsum patrols only
// stats/core/walk basenames and budgetsafe only core/walk/experiments,
// so neither fires here.
package outofscope

import "api"

func naiveSumElsewhere(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum
}

func rawServerElsewhere(srv *api.Server) error {
	// Setup/tooling code outside the estimator packages may touch the
	// Server directly (e.g. ground-truth harnesses).
	_, _, err := srv.Search("privacy")
	return err
}
