package lint

import (
	"go/ast"
)

// chargedEndpoints are the Server interface calls that cost budget.
var chargedEndpoints = map[string]bool{
	"Search": true, "Connections": true, "Timeline": true,
}

// budgetsafePkgs are the package basenames where raw Server access is
// forbidden: estimators and experiment runners must pay for every call
// through api.Client so Stats/Checkpoint cost accounting stays
// truthful. The auditor is held to the same bar for the opposite
// reason — its checks must be budget-FREE, replaying only cached
// Client responses, so a raw Server call would let an audit observe
// fresher state than the estimator ever paid for.
var budgetsafePkgs = map[string]bool{
	"core": true, "walk": true, "experiments": true, "audit": true, "fleet": true,
	"store": true, "serve": true,
}

// BudgetSafe forbids estimator and experiment packages from invoking
// api.Server.Search/Connections/Timeline directly. A direct Server
// call returns real data at zero recorded cost, silently deflating the
// query-cost axis of every figure; api.Client is the single accounting
// path (charging, caching, retries, budget, checkpoint snapshots).
var BudgetSafe = &Analyzer{
	Name: "budgetsafe",
	Doc: "forbid direct api.Server access from estimator/experiment packages; " +
		"all charged calls go through api.Client",
	Run: runBudgetSafe,
}

func runBudgetSafe(pass *Pass) error {
	if !budgetsafePkgs[pass.PkgBase(pass.Pkg.Path())] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if m, ok := pass.MethodOn(call, "api", "Server", chargedEndpoints); ok {
				pass.Reportf(call.Pos(),
					"direct api.Server.%s bypasses Client cost accounting; route the call through api.Client", m)
			}
			return true
		})
	}
	return nil
}
