package levelgraph

import (
	"math"
	"sort"

	"mba/internal/model"
)

// ModelParams describes the idealized level-by-level graph of Theorem
// 4.1: n nodes spread evenly over h levels, each node with d
// adjacent-level edges and k intra-level edges.
type ModelParams struct {
	N int     // total nodes
	H int     // levels
	D float64 // adjacent-level degree
	K float64 // intra-level degree
}

// horizontalCut is the conductance of the cut separating two adjacent
// levels, from the proof sketch of Theorem 4.1:
// φ_h = 2d / (2d(h−1) + hk), which reduces to 1/(h−1) when k = 0.
func (m ModelParams) horizontalCut() float64 {
	if m.H < 2 || m.D <= 0 {
		return 0
	}
	return 2 * m.D / (2*m.D*float64(m.H-1) + float64(m.H)*m.K)
}

// Conductance evaluates the model conductance φ(G) of Theorem 4.1
// (Eq. 2). The piecewise form follows the paper's four regimes in d and
// k relative to n/2h and n/h.
func (m ModelParams) Conductance() float64 {
	if m.H < 1 || m.N <= 0 || m.D <= 0 {
		return 0
	}
	if m.H == 1 {
		// Degenerate single level: only intra edges exist; treat the
		// model as a k-regular graph whose conductance we bound by 1.
		if m.K > 0 {
			return 1
		}
		return 0
	}
	n := float64(m.N)
	h := float64(m.H)
	d, k := m.D, m.K
	half := n / (2 * h)
	full := n / h
	hc := m.horizontalCut()

	var phi float64
	switch {
	case d <= half && k <= half:
		phi = h / ((k + d) * (h - 1) * n)
	case d <= half && k > half && k < full:
		phi = math.Min((2*k*h-n)/(k*h+d*n), hc)
	case d > half && d < full && k <= half:
		phi = math.Min((2*d*h-n)/(k*h+d*n), hc)
	default:
		phi = math.Min((k-half)*(2*d*h-n)/(k*h+d*n), hc)
	}
	// The closed forms are only meaningful for d, k < n/h (a node cannot
	// have more same/adjacent-level neighbors than a level holds);
	// clamp so out-of-domain parameters still rank sanely.
	return math.Max(0, math.Min(1, phi))
}

// ConductanceNoIntra evaluates φ(G') of Theorem 4.1 (Eq. 3): the model
// conductance after removing all intra-level edges. It equals
// Conductance with K = 0.
func (m ModelParams) ConductanceNoIntra() float64 {
	m2 := m
	m2.K = 0
	return m2.Conductance()
}

// OptimalDegree returns the conductance-maximizing adjacent-level
// degree d*(h) of Corollary 4.1: d = (2h−1)(2h−2) / (h(2h−9)).
// It is meaningful only for h ≥ 5 (the denominator changes sign at
// h = 4.5); smaller h returns +Inf to signal "more levels needed".
func OptimalDegree(h int) float64 {
	den := float64(h) * float64(2*h-9)
	if den <= 0 {
		return math.Inf(1)
	}
	return float64(2*h-1) * float64(2*h-2) / den
}

// IntervalStats carries the pilot-walk measurements for one candidate
// interval T: the observed level count and the mean down-degree — the
// paper's "average number of followers who pick up the hashtag after
// the current time interval" (§4.2.3).
type IntervalStats struct {
	Interval model.Tick
	H        int
	D        float64
	// N is a (rough) node-count estimate; only its consistency across
	// candidates matters for the conductance ranking.
	N int
}

// Conductance scores the candidate via Eq. 3 (the level-by-level graph
// has no intra edges by construction).
func (s IntervalStats) Conductance() float64 {
	return ModelParams{N: s.N, H: s.H, D: s.D}.ConductanceNoIntra()
}

// PickupDistance scores how far the measured pick-up degree d is from
// the conductance-optimal d*(h) of Corollary 4.1, on a log scale
// (|log(d/d*)|, so halving and doubling are equally bad). Candidates
// with no optimum (h < 5, where Eq. 5's denominator is non-positive)
// or no measured pick-ups score +Inf.
//
// This is the selection rule §4.2.3's "Practical Design" paragraph
// motivates: "the average number of followers who 'pick up' the
// hashtag after the current time interval should be close to its
// optimal value d as shown in (5)". We use it (rather than ranking the
// Eq. 3 values directly) because Eq. 3, evaluated as printed,
// increases monotonically as d shrinks and therefore always prefers
// the finest interval — see EXPERIMENTS.md for the discussion.
func (s IntervalStats) PickupDistance() float64 {
	opt := OptimalDegree(s.H)
	if math.IsInf(opt, 1) || s.D <= 0 {
		return math.Inf(1)
	}
	return math.Abs(math.Log(s.D / opt))
}

// RankIntervals orders candidates by increasing pick-up distance (best
// first). Ties break toward longer intervals — shallower lattices mean
// shorter walks and lower-variance ESTIMATE-p products.
func RankIntervals(stats []IntervalStats) []IntervalStats {
	out := append([]IntervalStats(nil), stats...)
	sort.SliceStable(out, func(i, j int) bool {
		di, dj := out[i].PickupDistance(), out[j].PickupDistance()
		if di != dj {
			return di < dj
		}
		return out[i].Interval > out[j].Interval
	})
	return out
}

// SelectInterval returns the best candidate under the pick-up rule, or
// false if stats is empty or no candidate has a finite score.
func SelectInterval(stats []IntervalStats) (IntervalStats, bool) {
	if len(stats) == 0 {
		return IntervalStats{}, false
	}
	best := RankIntervals(stats)[0]
	if math.IsInf(best.PickupDistance(), 1) {
		return best, false
	}
	return best, true
}
