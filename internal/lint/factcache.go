package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// factCacheVersion invalidates every cached entry when the summary
// lattice or extraction semantics change.
//
// v2: the CFG/dataflow layer added taint facts (TaintsReturn,
// ParamTaintToReturn, ParamTaintToSink) and Releases to the Summary;
// v1 entries lack them and must not be silently reused.
const factCacheVersion = 2

// FactCache memoizes per-package function summaries keyed by a content
// hash, so a repo-wide mba-lint run only recomputes the interprocedural
// fixpoint for packages whose sources (or whose dependencies' sources)
// changed.
//
// Soundness of the key: a package's hash covers its own file contents,
// the hashes of its in-program imports (recursively), and — for
// packages that make dynamic calls (function values, interface
// dispatch) — the program's whole "dynamic surface": the IDs and
// defining-package hashes of every address-taken function. Dynamic
// callees need not be imported by the caller, so without that last
// component a cached caller could keep facts from a deleted callee.
type FactCache struct {
	path    string
	entries map[string]*factCacheEntry
	hashes  map[string]string // pkg path -> content hash, memoized
	dynHash string
	// Hits and Misses count lookups, for tests and -v reporting.
	Hits, Misses int
}

type factCacheEntry struct {
	Hash  string                    `json:"hash"`
	Funcs map[string]*cachedSummary `json:"funcs"`
}

type cachedSummary struct {
	IncursCost   bool     `json:"cost,omitempty"`
	ConsumesCtx  bool     `json:"ctx,omitempty"`
	UsesCtx      bool     `json:"ctxUsed,omitempty"`
	Spawns       bool     `json:"spawns,omitempty"`
	DrawsRand    bool     `json:"rand,omitempty"`
	ReturnsError bool     `json:"err,omitempty"`
	Unresolved   bool     `json:"unresolved,omitempty"`
	Acquires     []string `json:"acquires,omitempty"`
	Releases     []string `json:"releases,omitempty"`
	Sentinels    []string `json:"sentinels,omitempty"`

	TaintsReturn       bool   `json:"taintRet,omitempty"`
	ParamTaintToReturn uint64 `json:"taintP2R,omitempty"`
	ParamTaintToSink   uint64 `json:"taintP2S,omitempty"`
}

type factCacheFile struct {
	Version  int                        `json:"version"`
	Packages map[string]*factCacheEntry `json:"packages"`
}

// OpenFactCache loads the cache at path (a missing or corrupt file
// yields an empty cache; the cache is an accelerator, never a gate).
func OpenFactCache(path string) *FactCache {
	c := &FactCache{path: path, entries: map[string]*factCacheEntry{}, hashes: map[string]string{}}
	data, err := os.ReadFile(path)
	if err != nil {
		return c
	}
	var f factCacheFile
	if err := json.Unmarshal(data, &f); err != nil || f.Version != factCacheVersion {
		return c
	}
	if f.Packages != nil {
		c.entries = f.Packages
	}
	return c
}

// Save writes the cache back to its path.
func (c *FactCache) Save() error {
	if c.path == "" {
		return nil
	}
	if err := os.MkdirAll(filepath.Dir(c.path), 0o777); err != nil {
		return err
	}
	data, err := json.MarshalIndent(factCacheFile{Version: factCacheVersion, Packages: c.entries}, "", "\t")
	if err != nil {
		return err
	}
	return os.WriteFile(c.path, append(data, '\n'), 0o666)
}

// pkgHash computes (and memoizes) the content hash of one program
// package: its own sources plus its in-program imports' hashes.
func (c *FactCache) pkgHash(p *Program, pkg *Package) string {
	if h, ok := c.hashes[pkg.Path]; ok {
		return h
	}
	c.hashes[pkg.Path] = "" // cycle guard; Go packages cannot cycle, but stay safe
	h := sha256.New()
	fmt.Fprintf(h, "v%d\n%s\n", factCacheVersion, pkg.Path)
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		fmt.Fprintf(h, "file %s\n", filepath.Base(name))
		data, err := os.ReadFile(name)
		if err != nil {
			fmt.Fprintf(h, "unreadable %v\n", err)
			continue
		}
		h.Write(data)
	}
	// Imports that are themselves under analysis.
	byPath := map[string]*Package{}
	for _, q := range p.Pkgs {
		byPath[q.Path] = q
	}
	var deps []string
	for _, imp := range pkg.Types.Imports() {
		if _, ok := byPath[imp.Path()]; ok {
			deps = append(deps, imp.Path())
		}
	}
	sort.Strings(deps)
	for _, d := range deps {
		fmt.Fprintf(h, "dep %s %s\n", d, c.pkgHash(p, byPath[d]))
	}
	sum := hex.EncodeToString(h.Sum(nil))
	c.hashes[pkg.Path] = sum
	return sum
}

// dynamicHash hashes the program's address-taken surface.
func (c *FactCache) dynamicHash(p *Program) string {
	if c.dynHash != "" {
		return c.dynHash
	}
	h := sha256.New()
	for _, f := range p.Funcs {
		if f.addrTaken {
			fmt.Fprintf(h, "%s %s\n", f.ID, c.pkgHash(p, f.Pkg))
		}
	}
	c.dynHash = hex.EncodeToString(h.Sum(nil))
	return c.dynHash
}

// key is the full cache key of a package within a program.
func (c *FactCache) key(p *Program, pkg *Package) string {
	k := c.pkgHash(p, pkg)
	if pkgMakesDynamicCalls(p, pkg) {
		k += ":" + c.dynamicHash(p)
	}
	return k
}

func pkgMakesDynamicCalls(p *Program, pkg *Package) bool {
	for _, f := range p.Funcs {
		if f.Pkg != pkg {
			continue
		}
		for _, cs := range f.calls {
			if cs.dynamic {
				return true
			}
		}
	}
	return false
}

// lookup returns the cached summaries for pkg if its key matches.
func (c *FactCache) lookup(p *Program, pkg *Package) (map[string]*Summary, bool) {
	e, ok := c.entries[pkg.Path]
	if !ok || e.Hash != c.key(p, pkg) {
		c.Misses++
		return nil, false
	}
	c.Hits++
	out := make(map[string]*Summary, len(e.Funcs))
	for id, cs := range e.Funcs {
		s := newSummary()
		s.IncursCost = cs.IncursCost
		s.ConsumesCtx = cs.ConsumesCtx
		s.UsesCtx = cs.UsesCtx
		s.Spawns = cs.Spawns
		s.DrawsRand = cs.DrawsRand
		s.ReturnsError = cs.ReturnsError
		s.Unresolved = cs.Unresolved
		for _, a := range cs.Acquires {
			s.Acquires[a] = true
		}
		for _, a := range cs.Releases {
			s.Releases[a] = true
		}
		for _, a := range cs.Sentinels {
			s.Sentinels[a] = true
		}
		s.TaintsReturn = cs.TaintsReturn
		s.ParamTaintToReturn = cs.ParamTaintToReturn
		s.ParamTaintToSink = cs.ParamTaintToSink
		out[id] = s
	}
	return out, true
}

// store records pkg's converged summaries under its current key.
func (c *FactCache) store(p *Program, pkg *Package) {
	e := &factCacheEntry{Hash: c.key(p, pkg), Funcs: map[string]*cachedSummary{}}
	for _, f := range p.Funcs {
		if f.Pkg != pkg {
			continue
		}
		s, ok := p.Summaries[f.ID]
		if !ok {
			continue
		}
		e.Funcs[f.ID] = &cachedSummary{
			IncursCost:   s.IncursCost,
			ConsumesCtx:  s.ConsumesCtx,
			UsesCtx:      s.UsesCtx,
			Spawns:       s.Spawns,
			DrawsRand:    s.DrawsRand,
			ReturnsError: s.ReturnsError,
			Unresolved:   s.Unresolved,
			Acquires:     s.AcquiresSorted(),
			Releases:     sortedKeys(s.Releases),
			Sentinels:    s.SentinelsSorted(),

			TaintsReturn:       s.TaintsReturn,
			ParamTaintToReturn: s.ParamTaintToReturn,
			ParamTaintToSink:   s.ParamTaintToSink,
		}
	}
	c.entries[pkg.Path] = e
}

// NewProgramCached builds a Program reusing summaries from the cache
// for unchanged packages, then stores the refreshed entries (call
// Save to persist them).
func NewProgramCached(pkgs []*Package, cache *FactCache) *Program {
	return newProgram(pkgs, cache)
}
