package platform

import (
	"math/rand"

	"mba/internal/graph"
)

// assignCommunities partitions users 0..n-1 into c communities with
// Zipf-distributed sizes (exponent 1), returning the community index
// per user. Every community receives at least one user.
func assignCommunities(rng *rand.Rand, n, c int) []int {
	weights := make([]float64, c)
	var total float64
	for i := range weights {
		weights[i] = 1 / float64(i+1)
		total += weights[i]
	}
	sizes := make([]int, c)
	assigned := 0
	for i := range sizes {
		sizes[i] = 1
		assigned++
	}
	// Distribute the remainder proportionally with randomized rounding.
	for assigned < n {
		x := rng.Float64() * total
		for i, w := range weights {
			x -= w
			if x <= 0 {
				sizes[i]++
				assigned++
				break
			}
		}
	}
	comm := make([]int, 0, n)
	for i, s := range sizes {
		for j := 0; j < s; j++ {
			comm = append(comm, i)
		}
	}
	return comm
}

// generateSocialGraph builds the undirected social graph: Barabási–
// Albert preferential attachment inside each community (mIntra edges
// per arriving node) with Holme–Kim triadic closure (each PA edge is
// followed, with probability triadic, by an edge to a random neighbor
// of the new contact, giving realistic clustering), plus
// Poisson(interPerUser/2 * n) random cross-community edges with
// degree-biased endpoints. Finally, stray components are stitched to
// the giant component so the graph is connected, matching the paper's
// observation that "the vast majority of users in a microblogging
// service are linked in a connected graph".
func generateSocialGraph(rng *rand.Rand, communities []int, mIntra int, interPerUser, triadic float64) *graph.Graph {
	n := len(communities)
	g := graph.NewWithCapacity(n)
	for u := 0; u < n; u++ {
		g.AddNode(int64(u))
	}

	numComm := 0
	for _, c := range communities {
		if c+1 > numComm {
			numComm = c + 1
		}
	}
	members := make([][]int64, numComm)
	for u, c := range communities {
		members[c] = append(members[c], int64(u))
	}

	// Degree-biased endpoint pool per community (repeated-endpoint
	// trick: every edge endpoint appears once, so uniform draws are
	// degree-proportional). Iteration is by community index so the
	// whole construction is deterministic in the RNG seed.
	globalPool := make([]int64, 0, 2*n*mIntra)
	for _, ms := range members {
		pool := make([]int64, 0, 2*len(ms)*mIntra)
		for i, u := range ms {
			m := mIntra
			if i < m {
				m = i
			}
			targets := make([]int64, 0, m)
			for attempts := 0; len(targets) < m && attempts < 50*m; attempts++ {
				var v int64
				if len(pool) == 0 || rng.Float64() < 0.1 {
					v = ms[rng.Intn(i)]
				} else {
					v = pool[rng.Intn(len(pool))]
				}
				if v == u {
					continue
				}
				dup := false
				for _, w := range targets {
					if w == v {
						dup = true
						break
					}
				}
				if !dup {
					targets = append(targets, v)
				}
			}
			for _, v := range targets {
				if err := g.AddEdge(u, v); err == nil {
					pool = append(pool, u, v)
				}
				// Triadic closure: also befriend a friend of the new
				// contact (Holme–Kim), densifying local neighborhoods.
				if rng.Float64() < triadic {
					ns := g.Neighbors(v)
					if len(ns) > 0 {
						w := ns[rng.Intn(len(ns))]
						if w != u && !g.HasEdge(u, w) {
							if err := g.AddEdge(u, w); err == nil {
								pool = append(pool, u, w)
							}
						}
					}
				}
			}
			if i == 0 {
				pool = append(pool, u)
			}
		}
		globalPool = append(globalPool, pool...)
	}

	// Cross-community edges.
	interEdges := int(float64(n) * interPerUser / 2)
	for i := 0; i < interEdges; i++ {
		u := int64(rng.Intn(n))
		var v int64
		found := false
		for attempt := 0; attempt < 20; attempt++ {
			if len(globalPool) > 0 && rng.Float64() < 0.7 {
				v = globalPool[rng.Intn(len(globalPool))]
			} else {
				v = int64(rng.Intn(n))
			}
			if v != u && communities[u] != communities[v] && !g.HasEdge(u, v) {
				found = true
				break
			}
		}
		if found {
			if err := g.AddEdge(u, v); err == nil {
				globalPool = append(globalPool, u, v)
			}
		}
	}

	// Stitch any leftover components to the giant one.
	comps := g.Components()
	if len(comps) > 1 {
		giant := comps[0]
		for _, comp := range comps[1:] {
			u := comp[rng.Intn(len(comp))]
			v := giant[rng.Intn(len(giant))]
			g.AddEdge(u, v) //nolint:errcheck // distinct components, u != v
		}
	}
	return g
}
