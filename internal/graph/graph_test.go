package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func path(n int) *Graph {
	g := New()
	for i := 0; i < n-1; i++ {
		if err := g.AddEdge(int64(i), int64(i+1)); err != nil {
			panic(err)
		}
	}
	return g
}

func complete(n int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if err := g.AddEdge(int64(i), int64(j)); err != nil {
				panic(err)
			}
		}
	}
	return g
}

func TestAddEdgeBasics(t *testing.T) {
	g := New()
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(2, 1); err != nil { // duplicate, reversed
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
	if g.NumNodes() != 2 {
		t.Errorf("NumNodes = %d, want 2", g.NumNodes())
	}
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Error("edge should exist in both directions")
	}
	if g.HasEdge(1, 3) {
		t.Error("phantom edge")
	}
	if err := g.AddEdge(5, 5); err == nil {
		t.Error("self loop should error")
	}
	g.AddNode(9)
	if !g.HasNode(9) || g.Degree(9) != 0 {
		t.Error("AddNode failed")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := New()
	for _, v := range []int64{5, 3, 9, 1, 7} {
		g.AddEdge(0, v)
	}
	ns := g.Neighbors(0)
	for i := 1; i < len(ns); i++ {
		if ns[i-1] >= ns[i] {
			t.Fatalf("neighbors not sorted: %v", ns)
		}
	}
	if g.Degree(0) != 5 {
		t.Errorf("degree = %d, want 5", g.Degree(0))
	}
}

func TestRemoveEdge(t *testing.T) {
	g := complete(4)
	if !g.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge should report true")
	}
	if g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Error("edge still present after removal")
	}
	if g.NumEdges() != 5 {
		t.Errorf("NumEdges = %d, want 5", g.NumEdges())
	}
	if g.RemoveEdge(0, 1) {
		t.Error("double removal should report false")
	}
}

func TestEdgesIteration(t *testing.T) {
	g := complete(5)
	count := 0
	g.Edges(func(u, v int64) bool {
		if u >= v {
			t.Errorf("Edges emitted u >= v: %d %d", u, v)
		}
		count++
		return true
	})
	if count != 10 {
		t.Errorf("edge count = %d, want 10", count)
	}
	// Early stop.
	count = 0
	g.Edges(func(u, v int64) bool { count++; return count < 3 })
	if count != 3 {
		t.Errorf("early stop count = %d, want 3", count)
	}
}

func TestCommonNeighbors(t *testing.T) {
	g := New()
	// Triangle 0-1-2 plus pendant 3 on 0.
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	if got := g.CommonNeighbors(0, 1); got != 1 { // node 2
		t.Errorf("CommonNeighbors(0,1) = %d, want 1", got)
	}
	if got := g.CommonNeighbors(1, 3); got != 1 { // node 0
		t.Errorf("CommonNeighbors(1,3) = %d, want 1", got)
	}
	if got := g.CommonNeighbors(2, 3); got != 1 {
		t.Errorf("CommonNeighbors(2,3) = %d, want 1", got)
	}
	if got := g.CommonNeighbors(0, 99); got != 0 {
		t.Errorf("CommonNeighbors with absent node = %d, want 0", got)
	}
	kn := complete(6)
	if got := kn.CommonNeighbors(0, 1); got != 4 {
		t.Errorf("K6 CommonNeighbors = %d, want 4", got)
	}
}

func TestComponents(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(10, 11)
	g.AddNode(100)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	if len(comps[0]) != 3 {
		t.Errorf("largest size = %d, want 3", len(comps[0]))
	}
	lcc := g.LargestComponent()
	if len(lcc) != 3 || !lcc[1] || !lcc[2] || !lcc[3] {
		t.Errorf("largest component = %v", lcc)
	}
}

func TestComponentsEmpty(t *testing.T) {
	g := New()
	if comps := g.Components(); len(comps) != 0 {
		t.Errorf("empty graph components = %v", comps)
	}
	if lcc := g.LargestComponent(); len(lcc) != 0 {
		t.Errorf("empty graph LCC = %v", lcc)
	}
}

func TestSubgraph(t *testing.T) {
	g := complete(5)
	keep := map[int64]bool{0: true, 1: true, 2: true}
	sub := g.Subgraph(keep)
	if sub.NumNodes() != 3 || sub.NumEdges() != 3 {
		t.Errorf("subgraph n=%d m=%d, want 3/3", sub.NumNodes(), sub.NumEdges())
	}
	if sub.HasNode(4) {
		t.Error("subgraph contains excluded node")
	}
	// Keep set with node not in g.
	sub2 := g.Subgraph(map[int64]bool{0: true, 777: true})
	if sub2.NumNodes() != 1 || sub2.NumEdges() != 0 {
		t.Errorf("subgraph with foreign node n=%d m=%d", sub2.NumNodes(), sub2.NumEdges())
	}
}

func TestClone(t *testing.T) {
	g := complete(4)
	c := g.Clone()
	c.RemoveEdge(0, 1)
	if !g.HasEdge(0, 1) {
		t.Error("Clone shares state with original")
	}
	if c.NumEdges() != g.NumEdges()-1 {
		t.Error("clone edge count wrong")
	}
}

func TestCutConductance(t *testing.T) {
	// Two triangles joined by one bridge edge: the natural cut has
	// conductance 1/7 (1 crossing edge, min volume = 7).
	g := New()
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(3, 5)
	g.AddEdge(2, 3) // bridge
	s := map[int64]bool{0: true, 1: true, 2: true}
	if phi := g.CutConductance(s); math.Abs(phi-1.0/7.0) > 1e-12 {
		t.Errorf("cut conductance = %v, want 1/7", phi)
	}
	// Empty side.
	if phi := g.CutConductance(map[int64]bool{}); phi != 0 {
		t.Errorf("empty cut = %v, want 0", phi)
	}
}

func TestExactConductance(t *testing.T) {
	// Two triangles + bridge: minimum conductance cut is the bridge cut.
	g := New()
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(3, 5)
	g.AddEdge(2, 3)
	phi, err := g.ExactConductance(10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(phi-1.0/7.0) > 1e-12 {
		t.Errorf("exact conductance = %v, want 1/7", phi)
	}
	// Complete graph K4: conductance is minimized by the balanced cut:
	// crossing=4, min volume=6 -> 2/3.
	k4 := complete(4)
	phi, err = k4.ExactConductance(10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(phi-2.0/3.0) > 1e-12 {
		t.Errorf("K4 conductance = %v, want 2/3", phi)
	}
	// Limit enforcement.
	if _, err := complete(12).ExactConductance(10); err == nil {
		t.Error("expected limit error")
	}
	// Undefined cases.
	if _, err := New().ExactConductance(10); err == nil {
		t.Error("expected error for empty graph")
	}
}

func TestModularity(t *testing.T) {
	// Two triangles + bridge, communities = the two triangles.
	g := New()
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(3, 5)
	g.AddEdge(2, 3)
	labels := map[int64]int{0: 0, 1: 0, 2: 0, 3: 1, 4: 1, 5: 1}
	q := g.Modularity(labels)
	// Q = sum_c (in_c/2m - (deg_c/2m)^2) = (6/14 - (7/14)^2)*2 = 6/7 - 1/2.
	want := 6.0/7.0 - 0.5
	if math.Abs(q-want) > 1e-12 {
		t.Errorf("modularity = %v, want %v", q, want)
	}
	// Random-ish split should have lower modularity than the planted one.
	bad := map[int64]int{0: 0, 3: 0, 1: 1, 4: 1, 2: 0, 5: 1}
	if g.Modularity(bad) >= q {
		t.Error("shuffled partition should have lower modularity")
	}
	if New().Modularity(labels) != 0 {
		t.Error("empty graph modularity should be 0")
	}
}

func TestAvgDegreeAndHistogram(t *testing.T) {
	g := path(4) // degrees 1,2,2,1
	if got := g.AvgDegree(); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("AvgDegree = %v, want 1.5", got)
	}
	h := g.DegreeHistogram()
	if h[1] != 2 || h[2] != 2 {
		t.Errorf("histogram = %v", h)
	}
	if New().AvgDegree() != 0 {
		t.Error("empty AvgDegree should be 0")
	}
}

// Property: adjacency is always symmetric and degree sum = 2m.
func TestSymmetryProperty(t *testing.T) {
	f := func(pairs [][2]uint8) bool {
		g := New()
		for _, p := range pairs {
			u, v := int64(p[0]), int64(p[1])
			if u != v {
				g.AddEdge(u, v)
			}
		}
		degSum := 0
		for _, u := range g.Nodes() {
			degSum += g.Degree(u)
			for _, v := range g.Neighbors(u) {
				if !g.HasEdge(v, u) {
					return false
				}
			}
		}
		return degSum == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: components partition the node set.
func TestComponentsPartitionProperty(t *testing.T) {
	f := func(pairs [][2]uint8, extra []uint8) bool {
		g := New()
		for _, p := range pairs {
			if p[0] != p[1] {
				g.AddEdge(int64(p[0]), int64(p[1]))
			}
		}
		for _, x := range extra {
			g.AddNode(int64(x))
		}
		seen := make(map[int64]bool)
		total := 0
		for _, comp := range g.Components() {
			for _, u := range comp {
				if seen[u] {
					return false // overlap
				}
				seen[u] = true
			}
			total += len(comp)
		}
		return total == g.NumNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: cut conductance lies in [0,1] for any subset.
func TestConductanceRangeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := New()
	for i := 0; i < 200; i++ {
		u, v := rng.Int63n(40), rng.Int63n(40)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	for trial := 0; trial < 100; trial++ {
		s := make(map[int64]bool)
		for _, u := range g.Nodes() {
			if rng.Intn(2) == 0 {
				s[u] = true
			}
		}
		phi := g.CutConductance(s)
		if phi < 0 || phi > 1 {
			t.Fatalf("conductance out of range: %v", phi)
		}
	}
}

func TestExactConductanceMatchesCutScan(t *testing.T) {
	// Cross-check brute force against scanning cuts manually on a random
	// small graph.
	rng := rand.New(rand.NewSource(11))
	g := New()
	for i := 0; i < 14; i++ {
		u, v := rng.Int63n(7), rng.Int63n(7)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	if g.NumEdges() == 0 || len(g.Components()) != 1 {
		t.Skip("degenerate random graph")
	}
	phi, err := g.ExactConductance(8)
	if err != nil {
		t.Fatal(err)
	}
	nodes := g.Nodes()
	best := math.Inf(1)
	for mask := 1; mask < 1<<len(nodes)-1; mask++ {
		s := make(map[int64]bool)
		for b := range nodes {
			if mask&(1<<b) != 0 {
				s[nodes[b]] = true
			}
		}
		if p := g.CutConductance(s); p > 0 && p < best {
			best = p
		}
	}
	if math.Abs(phi-best) > 1e-12 {
		t.Errorf("ExactConductance = %v, scan = %v", phi, best)
	}
}
