package core

import (
	"testing"

	"mba/internal/api"
	"mba/internal/levelgraph"
	"mba/internal/model"
	"mba/internal/platform"
	"mba/internal/query"
	"mba/internal/stats"
)

// TestDebugTARWByInterval measures MA-TARW accuracy as a function of
// the level interval T — the practical trade-off behind §4.2.3: finer
// T gives better subgraph support but deeper lattices (noisier
// ESTIMATE-p); coarser T gives shallow lattices but can fragment the
// level DAG.
func TestDebugTARWByInterval(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	p := testPlatform(t)
	qc := query.CountQuery("privacy")
	qa := query.AvgQuery("privacy", query.Followers)
	truthC, _ := p.GroundTruth(qc)
	truthA, _ := p.GroundTruth(qa)
	for _, pe := range []int{20} {
		for _, interval := range []model.Tick{2 * model.Day, model.Week, 2 * model.Week, model.Month} {
			for trial := int64(0); trial < 2; trial++ {
				srv := api.NewServer(p, api.Twitter(), api.Faults{})
				s, _ := NewSession(api.NewClient(srv, 40000), qc, interval)
				res, err := RunTARW(s, TARWOptions{Seed: 100 + trial, MaxWalks: 800, PEstimates: pe})
				if err != nil {
					t.Fatalf("T=%v: %v", interval, err)
				}
				srv2 := api.NewServer(p, api.Twitter(), api.Faults{})
				s2, _ := NewSession(api.NewClient(srv2, 40000), qa, interval)
				res2, err := RunTARW(s2, TARWOptions{Seed: 200 + trial, MaxWalks: 800, PEstimates: pe})
				if err != nil {
					t.Fatalf("T=%v: %v", interval, err)
				}
				t.Logf("pe=%-2d T=%-3s trial=%d COUNT est=%8.0f (truth %.0f, relerr %5.2f) cost=%d | AVG relerr %5.3f zero=%d",
					pe, levelgraph.IntervalName(interval), trial,
					res.Estimate, truthC, stats.RelativeError(res.Estimate, truthC), res.Cost,
					stats.RelativeError(res2.Estimate, truthA), res.ZeroProbPaths)
			}
		}
	}
}

var _ = platform.Config{}
