package mba

// The benchmark harness regenerates every table and figure of the
// paper's evaluation at workload.Bench scale (250k simulated users,
// the full keyword catalog, Jan 1 – Oct 31 window):
//
//	go test -bench=. -benchmem
//
// One benchmark iteration runs the full experiment; the regenerated
// table is logged (use -v) and written under bench_results/ as both
// text and CSV. Set MBA_BENCH_SCALE=test for a quick pass or =large
// for the stress platform.

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"mba/internal/experiments"
	"mba/internal/workload"
)

// benchOptions resolves the experiment options for the bench run.
func benchOptions(b *testing.B) experiments.Options {
	scale := workload.Bench
	switch os.Getenv("MBA_BENCH_SCALE") {
	case "test":
		scale = workload.Test
	case "large":
		scale = workload.Large
	}
	opts := experiments.Options{
		Scale:  scale,
		Seed:   1,
		Trials: 3,
		Budget: 60000,
	}
	if v := os.Getenv("MBA_BENCH_TRIALS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			opts.Trials = n
		}
	}
	_ = b
	return opts
}

// benchExperiment runs one experiment per iteration and persists the
// regenerated table on the first.
func benchExperiment(b *testing.B, id string, fn func(experiments.Options) (experiments.Table, error)) {
	b.Helper()
	opts := benchOptions(b)
	// Force platform generation outside the timed region.
	if _, err := workload.Get(opts.Scale); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := fn(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logAndPersist(b, tab)
		}
	}
}

// logAndPersist logs a regenerated table and writes it to
// bench_results/.
func logAndPersist(b *testing.B, tab experiments.Table) {
	b.Helper()
	var buf bytes.Buffer
	tab.Format(&buf)
	b.Log("\n" + buf.String())
	if err := persist(tab); err != nil {
		b.Logf("persist %s: %v", tab.ID, err)
	}
}

// persist writes the table under bench_results/ as text and CSV.
func persist(tab experiments.Table) error {
	dir := "bench_results"
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var txt bytes.Buffer
	tab.Format(&txt)
	if err := os.WriteFile(filepath.Join(dir, tab.ID+".txt"), txt.Bytes(), 0o644); err != nil {
		return err
	}
	var csv bytes.Buffer
	if err := tab.WriteCSV(&csv); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, tab.ID+".csv"), csv.Bytes(), 0o644)
}

// One benchmark per table/figure of the paper's evaluation.

func BenchmarkTable2SubgraphStats(b *testing.B) { benchExperiment(b, "table2", experiments.Table2) }
func BenchmarkTable3Improvement(b *testing.B)   { benchExperiment(b, "table3", experiments.Table3) }
func BenchmarkFigure2AvgFollowersSubgraphs(b *testing.B) {
	benchExperiment(b, "figure2", experiments.Figure2)
}
func BenchmarkFigure3CountSubgraphs(b *testing.B) { benchExperiment(b, "figure3", experiments.Figure3) }
func BenchmarkFigure4IntraEdgeRemoval(b *testing.B) {
	benchExperiment(b, "figure4", experiments.Figure4)
}
func BenchmarkFigure5TimeInterval(b *testing.B) { benchExperiment(b, "figure5", experiments.Figure5) }
func BenchmarkFigure7KeywordFrequencies(b *testing.B) {
	benchExperiment(b, "figure7", experiments.Figure7)
}
func BenchmarkFigure8AvgFollowers(b *testing.B) { benchExperiment(b, "figure8", experiments.Figure8) }
func BenchmarkFigure9Convergence(b *testing.B)  { benchExperiment(b, "figure9", experiments.Figure9) }
func BenchmarkFigure10Count(b *testing.B)       { benchExperiment(b, "figure10", experiments.Figure10) }
func BenchmarkFigure11DisplayName(b *testing.B) {
	benchExperiment(b, "figure11", experiments.Figure11)
}
func BenchmarkFigure12GPlusDisplayName(b *testing.B) {
	benchExperiment(b, "figure12", experiments.Figure12)
}
func BenchmarkFigure13GPlusCountMale(b *testing.B) {
	benchExperiment(b, "figure13", experiments.Figure13)
}
func BenchmarkFigure14TumblrLikes(b *testing.B) {
	benchExperiment(b, "figure14", experiments.Figure14)
}
func BenchmarkChaosSweep(b *testing.B) { benchExperiment(b, "chaos", experiments.Chaos) }

// Example of the headline result, runnable as a test for CI-style
// verification at test scale: MA-TARW answers AVG(followers) within a
// reasonable error at a fraction of the crawl cost.
func TestQuickstartFacade(t *testing.T) {
	p, err := workload.Get(workload.Test)
	if err != nil {
		t.Fatal(err)
	}
	plat := WrapPlatform(p)
	q := Avg("privacy", Followers)
	truth, err := plat.GroundTruth(q)
	if err != nil {
		t.Fatal(err)
	}
	est, err := plat.Estimate(q, Options{Algorithm: MASRW, Budget: 20000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if est.Cost == 0 || est.Cost > 20000 {
		t.Errorf("cost = %d", est.Cost)
	}
	rel := abs(est.Value-truth) / truth
	t.Logf("facade MA-SRW: est=%.1f truth=%.1f relerr=%.3f cost=%d virtual=%v",
		est.Value, truth, rel, est.Cost, est.VirtualDuration)
	if rel > 0.2 {
		t.Errorf("relative error %.3f too high", rel)
	}
	if est.VirtualDuration <= 0 {
		t.Error("virtual duration not computed")
	}
	if len(est.Trajectory) == 0 {
		t.Error("no trajectory")
	}
}

// The facade surfaces the fault-tolerance accounting: a run under 429
// injection reports its rate-limit hits and the waits land in
// VirtualDuration, while the budget cost stays unchanged in kind.
func TestFacadeFaultAccounting(t *testing.T) {
	p, err := workload.Get(workload.Test)
	if err != nil {
		t.Fatal(err)
	}
	plat := WrapPlatform(p)
	est, err := plat.Estimate(Avg("privacy", Followers), Options{
		Algorithm:          MASRW,
		Budget:             5000,
		Seed:               3,
		RateLimitErrorRate: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.RateLimitHits == 0 {
		t.Error("no rate-limit hits recorded under 10% 429 injection")
	}
	if est.Cost == 0 || est.Cost > 5000 {
		t.Errorf("cost = %d", est.Cost)
	}
	clean, err := plat.Estimate(Avg("privacy", Followers), Options{
		Algorithm: MASRW, Budget: 5000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.VirtualDuration <= clean.VirtualDuration {
		t.Errorf("429 waits missing from VirtualDuration: %v vs clean %v",
			est.VirtualDuration, clean.VirtualDuration)
	}
}

func TestFacadeValidation(t *testing.T) {
	p, err := workload.Get(workload.Test)
	if err != nil {
		t.Fatal(err)
	}
	plat := WrapPlatform(p)
	if _, err := plat.Estimate(Query{}, Options{}); err == nil {
		t.Error("invalid query accepted")
	}
	if _, err := plat.Estimate(Count("no-such-keyword"), Options{Budget: 100}); err == nil {
		t.Error("unknown keyword should fail to find seeds")
	}
	for _, a := range []Algorithm{MATARW, MASRW, MR} {
		if a.String() == "" {
			t.Error("empty algorithm name")
		}
	}
	q := TimeWindow(Count("privacy"), 10, 50)
	if q.Window.From != 240 || q.Window.To != 1200 {
		t.Errorf("TimeWindow = %+v", q.Window)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
