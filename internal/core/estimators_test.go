package core

import (
	"math"
	"testing"

	"mba/internal/query"
)

func TestEstimateFromChainAvg(t *testing.T) {
	// Hand-built chain: nodes with degree d and value v; the
	// degree-reweighted AVG is Σ(v·m/d)/Σ(m/d).
	chain := []srwSample{
		{u: 1, degree: 2, match: true, value: 10},
		{u: 2, degree: 4, match: true, value: 20},
		{u: 3, degree: 1, match: false, value: 99}, // non-matching excluded
	}
	opts := SRWOptions{NaiveMR: true}.withDefaults() // skip burn-in trimming
	got, ok := estimateFromChain(query.Avg, chain, opts)
	if !ok {
		t.Fatal("no estimate")
	}
	want := (10.0/2 + 20.0/4) / (1.0/2 + 1.0/4)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("AVG = %v, want %v", got, want)
	}
}

func TestEstimateFromChainCountNeedsCollision(t *testing.T) {
	opts := SRWOptions{NaiveMR: true}.withDefaults()
	chain := []srwSample{
		{u: 1, degree: 2, match: true, value: 1},
		{u: 2, degree: 2, match: true, value: 1},
	}
	if _, ok := estimateFromChain(query.Count, chain, opts); ok {
		t.Error("COUNT without collisions should not be ok")
	}
	chain = append(chain, srwSample{u: 1, degree: 2, match: true, value: 1})
	if _, ok := estimateFromChain(query.Count, chain, opts); !ok {
		t.Error("COUNT with a collision should be ok")
	}
}

func TestEstimateFromChainSumScalesWithCount(t *testing.T) {
	opts := SRWOptions{NaiveMR: true}.withDefaults()
	var chain []srwSample
	// Uniform-degree population of 3 distinct nodes visited repeatedly:
	// SUM should come out near n̂ × mean(value).
	vals := map[int64]float64{1: 10, 2: 20, 3: 30}
	seq := []int64{1, 2, 3, 1, 2, 3, 2, 1, 3, 2}
	for _, u := range seq {
		chain = append(chain, srwSample{u: u, degree: 2, match: true, value: vals[u]})
	}
	sum, ok := estimateFromChain(query.Sum, chain, opts)
	if !ok {
		t.Fatal("no SUM estimate")
	}
	cnt, _ := estimateFromChain(query.Count, chain, opts)
	avg, _ := estimateFromChain(query.Avg, chain, opts)
	if math.Abs(sum-cnt*avg) > 1e-9 {
		t.Errorf("SUM %v != COUNT %v × AVG %v", sum, cnt, avg)
	}
}

func TestEstimateFromChainEmpty(t *testing.T) {
	opts := SRWOptions{}.withDefaults()
	if _, ok := estimateFromChain(query.Avg, nil, opts); ok {
		t.Error("empty chain should not be ok")
	}
	// Chain with only zero-degree entries carries no mass.
	chain := []srwSample{{u: 1, degree: 0, match: true, value: 5}}
	if _, ok := estimateFromChain(query.Avg, chain, opts); ok {
		t.Error("zero-degree-only chain should not be ok")
	}
}

func TestTarwEstimateCalibration(t *testing.T) {
	// The calibration scales SUM/COUNT by seedTotal / mean(seedEsts).
	sums := []float64{100, 140}
	cnts := []float64{10, 14}
	seeds := []float64{4, 6} // mean 5; true seed total 10 -> calib ×2
	got, ok := tarwEstimate(query.Count, 10, sums, cnts, seeds)
	if !ok {
		t.Fatal("no estimate")
	}
	if math.Abs(got-24) > 1e-12 { // mean(cnts)=12 × 2
		t.Errorf("calibrated COUNT = %v, want 24", got)
	}
	got, _ = tarwEstimate(query.Sum, 10, sums, cnts, seeds)
	if math.Abs(got-240) > 1e-12 {
		t.Errorf("calibrated SUM = %v, want 240", got)
	}
	// AVG is a pure ratio: calibration must cancel.
	got, _ = tarwEstimate(query.Avg, 10, sums, cnts, seeds)
	if math.Abs(got-10) > 1e-12 {
		t.Errorf("AVG = %v, want 10", got)
	}
}

func TestTarwEstimateWithoutSeedMass(t *testing.T) {
	// Walks that never weighed a seed: raw means are used.
	got, ok := tarwEstimate(query.Count, 10, []float64{50}, []float64{5}, []float64{0})
	if !ok || got != 5 {
		t.Errorf("uncalibrated COUNT = %v ok=%v, want 5", got, ok)
	}
	if _, ok := tarwEstimate(query.Count, 10, nil, nil, nil); ok {
		t.Error("no walks should not be ok")
	}
	if _, ok := tarwEstimate(query.Avg, 10, []float64{5}, []float64{0}, []float64{1}); ok {
		t.Error("AVG with zero count mass should not be ok")
	}
}

func TestRunSRWCustomGraphOverride(t *testing.T) {
	// A custom oracle that yields only the term view must change the
	// walk's behaviour (here: identical to TermView by construction).
	p := testPlatform(t)
	q := query.AvgQuery("privacy", query.Followers)
	s := newSession(t, p, q, 8000)
	res, err := RunSRW(s, SRWOptions{
		Seed:  21,
		Graph: s.TermNeighbors,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Estimate) {
		t.Error("custom-graph run produced no estimate")
	}
	if res.Cost > 8000 {
		t.Errorf("budget exceeded: %d", res.Cost)
	}
}

func TestSRWOptionsDefaults(t *testing.T) {
	o := SRWOptions{}.withDefaults()
	if o.Thin != 5 || o.EmitEvery != 50 || o.GewekeThreshold != 0.1 || o.MaxSteps != 100000 {
		t.Errorf("defaults: %+v", o)
	}
	n := SRWOptions{NaiveMR: true}.withDefaults()
	if n.Thin != 1 {
		t.Errorf("NaiveMR should force thin=1, got %d", n.Thin)
	}
}

func TestTARWOptionsDefaults(t *testing.T) {
	o := TARWOptions{}.withDefaults()
	if o.PEstimates != 3 || o.EmitEvery != 1 || o.MaxWalks != 4000 ||
		o.MaxLatticeDepth != 40 || o.WeightClip != 10 || o.PilotSteps != 50 {
		t.Errorf("defaults: %+v", o)
	}
}
