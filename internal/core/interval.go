package core

import (
	"errors"
	"math/rand"

	"mba/internal/api"
	"mba/internal/levelgraph"
	"mba/internal/model"
	"mba/internal/walk"
)

// PilotResult records what a pilot walk measured for one candidate
// interval (§4.2.3): the estimated level count h, the mean down-degree
// d ("pick-ups after the current interval"), the Eq. 3 model
// conductance, and the pick-up-rule score used for selection.
type PilotResult struct {
	Interval    model.Tick
	H           int
	D           float64
	Conductance float64
	Score       float64
}

// IntervalSelection configures SelectIntervalOpts.
type IntervalSelection struct {
	// Candidates defaults to the Figure 5 grid (2H … 1M).
	Candidates []model.Tick
	// PilotSteps is the walk length per pilot (default 50, the paper's
	// "smaller budget (e.g., 50 samples)").
	PilotSteps int
	// PilotWalks averages several pilot walks per candidate (default 3)
	// to stabilize the h and d estimates.
	PilotWalks int
	// MaxDepth, when positive, excludes candidates whose observed level
	// count exceeds it. MA-TARW uses this: ESTIMATE-p multiplies one
	// branching ratio per level, so very deep lattices make the
	// probability estimates numerically wild (see EXPERIMENTS.md).
	MaxDepth int
}

func (sel IntervalSelection) withDefaults() IntervalSelection {
	if len(sel.Candidates) == 0 {
		sel.Candidates = levelgraph.CandidateIntervals()
	}
	if sel.PilotSteps <= 0 {
		sel.PilotSteps = 50
	}
	if sel.PilotWalks <= 0 {
		sel.PilotWalks = 3
	}
	return sel
}

// SelectInterval implements the practical design of §4.2.3 with
// default selection parameters; see SelectIntervalOpts.
func SelectInterval(s *Session, candidates []model.Tick, pilotSteps int, seed int64) (model.Tick, []PilotResult, error) {
	return SelectIntervalOpts(s, IntervalSelection{Candidates: candidates, PilotSteps: pilotSteps}, seed)
}

// SelectIntervalOpts implements the practical design of §4.2.3: for
// each candidate T it performs small pilot random walks over the
// level-by-level subgraph, computes h and d from the partial topology
// the walks reveal, scores the candidate by how close d lands to the
// conductance-optimal d*(h) of Corollary 4.1, and selects the best
// (see levelgraph.IntervalStats.PickupDistance for why this rule
// stands in for ranking the raw Eq. 3 values). The pilot results for
// all candidates are returned for reporting (Figure 5 plots measured
// cost against this ranking).
//
// Pilot API calls are charged to the session's client like any others.
func SelectIntervalOpts(s *Session, sel IntervalSelection, seed int64) (model.Tick, []PilotResult, error) {
	sel = sel.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	seeds, err := s.Seeds()
	if err != nil {
		return 0, nil, err
	}
	original := s.Interval

	// One pilot phase over the term-induced subgraph reveals a sample
	// of nodes (with their first-mention times and the first-mention
	// times of all their neighbors). Every candidate T is then scored
	// by re-bucketing that same sample — the API cost of the pilots is
	// paid once, not once per candidate.
	visited, err := s.pilotSample(seeds, sel.PilotWalks, sel.PilotSteps, rng)
	if err != nil {
		return 0, nil, err
	}

	var results []PilotResult
	var stats []levelgraph.IntervalStats
	for _, t := range sel.Candidates {
		s.SetInterval(t)
		h, d, err := s.bucketStats(visited)
		if err != nil {
			s.SetInterval(original)
			return 0, results, err
		}
		st := levelgraph.IntervalStats{Interval: t, H: h, D: d, N: pilotN}
		if sel.MaxDepth <= 0 || h <= sel.MaxDepth {
			stats = append(stats, st)
		}
		results = append(results, PilotResult{
			Interval:    t,
			H:           h,
			D:           d,
			Conductance: st.Conductance(),
			Score:       st.PickupDistance(),
		})
	}
	best, ok := levelgraph.SelectInterval(stats)
	if !ok {
		// No admissible candidate under the depth cap (or all scores
		// infinite): fall back to the shallowest candidate observed.
		shallowest := results[0]
		for _, pr := range results[1:] {
			if pr.H < shallowest.H {
				shallowest = pr
			}
		}
		s.SetInterval(shallowest.Interval)
		return shallowest.Interval, results, nil
	}
	s.SetInterval(best.Interval)
	return best.Interval, results, nil
}

// pilotN is the node-count placeholder fed to the conductance model.
// The true subgraph size is unknown during the pilot (estimating it is
// exactly the expensive M&R problem the paper avoids); since every
// candidate shares the same subgraph, any common constant preserves
// the ranking within a regime.
const pilotN = 100000

// pilotSample walks the term-induced subgraph and returns the distinct
// nodes visited (their neighborhoods get expanded and cached along the
// way). The walk restarts from a fresh seed when stuck; budget
// exhaustion returns the partial sample.
func (s *Session) pilotSample(seeds SeedSet, walks, steps int, rng *rand.Rand) ([]int64, error) {
	seen := make(map[int64]bool)
	var visited []int64
	note := func(u int64) {
		if !seen[u] {
			seen[u] = true
			visited = append(visited, u)
		}
	}
	for wk := 0; wk < walks; wk++ {
		start, err := s.PickSeed(seeds, rng)
		if errors.Is(err, api.ErrBudgetExhausted) {
			return visited, nil
		}
		if err != nil {
			return visited, err
		}
		w := walk.NewSimple(walk.GraphFunc(s.TermNeighbors), start, rng)
		note(start)
		for i := 0; i < steps; i++ {
			u, err := w.Step()
			switch {
			case errors.Is(err, walk.ErrStuck):
				ns, serr := s.PickSeed(seeds, rng)
				if serr != nil {
					return visited, nil
				}
				w.Jump(ns)
				continue
			case errors.Is(err, api.ErrBudgetExhausted):
				return visited, nil
			case err != nil:
				return visited, err
			}
			note(u)
		}
	}
	return visited, nil
}

// bucketStats re-buckets the pilot sample at the session's current
// interval and returns the revealed (h, d): h from the span of
// observed first-mention levels, d as the mean down-degree — the
// "pick-ups after the current time interval" of §4.2.3. All data comes
// from the client cache, so this costs no API calls.
func (s *Session) bucketStats(visited []int64) (h int, d float64, err error) {
	minLvl, maxLvl := int(^uint(0)>>1), -1
	var degSum float64
	var degN int
	for _, u := range visited {
		lvl, err := s.Level(u)
		if err != nil {
			continue // node dropped from the subgraph view; skip
		}
		if lvl < minLvl {
			minLvl = lvl
		}
		if lvl > maxLvl {
			maxLvl = lvl
		}
		downs, err := s.DownNeighbors(u)
		if err != nil {
			return 1, 0, err
		}
		degSum += float64(len(downs))
		degN++
	}
	if degN == 0 || maxLvl < minLvl {
		return 1, 0, nil
	}
	return maxLvl - minLvl + 1, degSum / float64(degN), nil
}

// selectInterval is the Algorithm 3 line-1 hook used by RunTARW. The
// depth cap keeps the selected lattice shallow enough for stable
// ESTIMATE-p products.
func (t *tarw) selectInterval() error {
	_, _, err := SelectIntervalOpts(t.s, IntervalSelection{
		PilotSteps: t.opts.PilotSteps,
		MaxDepth:   t.opts.MaxLatticeDepth,
	}, t.rng.Int63())
	return err
}
