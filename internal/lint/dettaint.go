package lint

import (
	"fmt"
	"path/filepath"
)

// DetTaint is the flow-sensitive, interprocedural big sibling of
// detrange. Where detrange pattern-matches suspicious statements inside
// a map range, dettaint tracks nondeterministic ordering as a taint
// through the CFG (taint.go): sources are map iteration order, select
// completion order, and calls to functions whose summaries say they
// return nondet-ordered values; sort.*/slices.* calls kill the taint;
// sinks are the artifact surface — Result/UnitResult/Estimate/
// Checkpoint fields and literals, external writers (csv.Writer.Write,
// fmt printers, json.Marshal, os.WriteFile), and in-program calls whose
// parameters transitively reach such a sink. Because the analysis is
// flow-sensitive, the collect→sort→emit idiom passes while
// collect→emit→sort — which detrange's "sorted anywhere later"
// heuristic accepts — is caught; and because taint crosses function
// boundaries through the SCC summaries, a helper that returns unsorted
// map keys taints its callers' artifacts too.
var DetTaint = &Analyzer{
	Name: "dettaint",
	Doc: "dataflow taint from nondeterministic ordering sources (map iteration, " +
		"select completion) into result fields, checkpoints, and writers",
	Run: runDetTaint,
}

func runDetTaint(pass *Pass) error {
	prog := pass.Prog
	if prog == nil {
		return nil
	}
	for _, f := range prog.Funcs {
		if f.Pkg.Types != pass.Pkg || f.Body == nil {
			continue
		}
		seen := map[string]bool{}
		for _, ev := range prog.taintEvents(f) {
			if ev.kind != "sink" || ev.val.mask&taintNondet == 0 {
				continue
			}
			src := ev.val.src
			if src == "" {
				src = "a nondeterministic source"
			}
			where := ""
			if ev.val.pos.IsValid() {
				p := pass.Fset.Position(ev.val.pos)
				where = fmt.Sprintf(" at %s:%d", filepath.Base(p.Filename), p.Line)
			}
			key := fmt.Sprintf("%d\x00%s\x00%s", ev.pos, ev.what, src)
			if seen[key] {
				continue
			}
			seen[key] = true
			pass.Reportf(ev.pos,
				"value ordered by %s%s reaches %s; sort it (sort.*/slices.*) before it escapes into a run artifact",
				src, where, ev.what)
		}
	}
	return nil
}
