package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floatsumPkgs are the package basenames floatsum patrols: the stats
// helpers and the estimator hot paths whose reductions land directly
// in reported estimates.
var floatsumPkgs = map[string]bool{
	"stats": true, "core": true, "walk": true, "fleet": true, "store": true,
	"serve": true,
}

// FloatSum flags naive `sum += x` accumulation over float64 slices in
// estimator hot paths. Naive summation loses low-order bits to
// cancellation and makes the result depend on accumulation order;
// stats.KahanSum / stats.KahanAdder (compensated summation) are the
// sanctioned replacements, keeping estimates stable as code is
// refactored and sample counts grow toward production scale.
var FloatSum = &Analyzer{
	Name: "floatsum",
	Doc: "flag naive float64 accumulation over slices in stats/estimator hot " +
		"paths; use stats.KahanSum or stats.KahanAdder",
	Run: runFloatSum,
}

func runFloatSum(pass *Pass) error {
	if !floatsumPkgs[pass.PkgBase(pass.Pkg.Path())] {
		return nil
	}
	seen := make(map[token.Pos]bool)
	for _, f := range pass.Files {
		var loops []ast.Node // enclosing for/range statements, outermost first
		var visit func(n ast.Node)
		visit = func(n ast.Node) {
			switch x := n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loops = append(loops, n)
				ast.Inspect(loopBody(n), func(c ast.Node) bool {
					if c == nil || c == loopBody(x) {
						return true
					}
					switch c.(type) {
					case *ast.ForStmt, *ast.RangeStmt:
						visit(c)
						return false
					case *ast.AssignStmt:
						checkFloatAssign(pass, seen, loops, c.(*ast.AssignStmt))
					}
					return true
				})
				loops = loops[:len(loops)-1]
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				visit(n)
				return false
			}
			return true
		})
	}
	return nil
}

func loopBody(n ast.Node) *ast.BlockStmt {
	switch l := n.(type) {
	case *ast.ForStmt:
		return l.Body
	case *ast.RangeStmt:
		return l.Body
	}
	return nil
}

func checkFloatAssign(pass *Pass, seen map[token.Pos]bool, loops []ast.Node, st *ast.AssignStmt) {
	// Only += accumulation: subtraction in loops is typically an
	// inverse-CDF scan or remainder split, not a sum whose error
	// compounds with sample count.
	if st.Tok != token.ADD_ASSIGN {
		return
	}
	if seen[st.Pos()] {
		return
	}
	lhs := st.Lhs[0]
	tv, ok := pass.TypesInfo.Types[lhs]
	if !ok || !isFloat(tv.Type) {
		return
	}
	obj := rootObj(pass, lhs)
	if obj == nil {
		return
	}
	// Trigger A: some enclosing loop ranges over a float slice, and the
	// accumulator lives outside that loop.
	for _, l := range loops {
		rs, ok := l.(*ast.RangeStmt)
		if !ok || !isFloatSliceRange(pass, rs) {
			continue
		}
		if declaredOutside(obj, rs) {
			seen[st.Pos()] = true
			pass.Reportf(st.Pos(),
				"naive float accumulation over a float64 slice loses precision to cancellation; use stats.KahanSum or a stats.KahanAdder")
			return
		}
	}
	// Trigger B: the addend indexes a float slice inside any loop the
	// accumulator outlives (`sum += xs[i]` style index loops).
	if !rhsIndexesFloatSlice(pass, st.Rhs[0]) {
		return
	}
	for _, l := range loops {
		if declaredOutside(obj, l) {
			seen[st.Pos()] = true
			pass.Reportf(st.Pos(),
				"naive indexed float accumulation loses precision to cancellation; use stats.KahanSum or a stats.KahanAdder")
			return
		}
	}
}

func isFloatSliceRange(pass *Pass, rs *ast.RangeStmt) bool {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	sl, ok := tv.Type.Underlying().(*types.Slice)
	return ok && isFloat(sl.Elem())
}

func rhsIndexesFloatSlice(pass *Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		ix, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		if tv, ok := pass.TypesInfo.Types[ix.X]; ok && tv.Type != nil {
			if sl, ok := tv.Type.Underlying().(*types.Slice); ok && isFloat(sl.Elem()) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
