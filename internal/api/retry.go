package api

import "time"

// RetryPolicy governs how the Client handles failed calls, by error
// class:
//
//   - ErrTransient (5xx, including ErrTruncated): the attempt consumed
//     a call slot and is charged; the client backs off exponentially
//     (with jitter) in virtual time and retries up to MaxRetries times.
//   - ErrRateLimited (429): the call was rejected at the gate and is
//     NOT charged; the client waits out the rate-limit window in
//     virtual time and retries.
//   - ErrPrivate / ErrUnknownUser: permanent, returned immediately.
//
// All waits are virtual: nothing sleeps, the durations accrue into
// Client.Stats().Wait and hence VirtualDuration() — the wall-clock
// cost a real crawl would pay, kept separate from the API-call budget
// the paper's figures plot.
type RetryPolicy struct {
	// MaxRetries bounds retry attempts per logical call (beyond the
	// first attempt). Zero means fail on the first error.
	MaxRetries int
	// BaseBackoff is the first transient-error backoff; it doubles per
	// retry up to MaxBackoff.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Jitter adds up to Jitter×backoff of seed-deterministic random
	// extra wait per backoff (0 disables, 1 doubles the worst case).
	Jitter float64
	// RateLimitWait is the virtual wait after an ErrRateLimited
	// rejection; zero uses the preset's full RateLimitWindow.
	RateLimitWait time.Duration
	// BreakerThreshold, when positive, trips a circuit breaker after
	// that many consecutive post-retry logical-call failures; the
	// failing call surfaces ErrCircuitOpen. The next call waits out
	// BreakerCooldown (virtual) and probes half-open: a success closes
	// the breaker, a failure re-trips it immediately.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// StallWait, when positive, arms the stall watchdog: once the
	// client has accrued more than StallWait of virtual wait without a
	// single successfully charged call in between (a rate-limit storm,
	// back-to-back breaker cooldowns), the pending call fails with
	// ErrStalled and Stats.StallTrips increments. The watchdog is
	// virtual-time based — it never reads the wall clock — so stall
	// detection replays deterministically. A fleet orchestrator treats
	// ErrStalled as a resumable degrade: the walker is cancelled and
	// reseeded from its checkpoint on a fresh RNG segment.
	StallWait time.Duration
}

// DefaultRetryPolicy mirrors what a production crawler ships with:
// three retries under exponential backoff with 50% jitter, full-window
// rate-limit waits, and no circuit breaker.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxRetries:  3,
		BaseBackoff: 500 * time.Millisecond,
		MaxBackoff:  time.Minute,
		Jitter:      0.5,
	}
}

// Stats is the Client's full accounting snapshot. Calls is the paper's
// query-cost measure; the remaining fields quantify the price of
// resilience — what retrying, waiting, and breaker trips added on top.
type Stats struct {
	// Calls is the number of charged API calls (== Client.Cost()).
	Calls int
	// Retries counts failed attempts that were retried (transient or
	// truncated responses; each was also charged).
	Retries int
	// RateLimitHits counts 429 rejections absorbed by waiting (never
	// charged).
	RateLimitHits int
	// CircuitTrips counts times the circuit breaker opened.
	CircuitTrips int
	// StallTrips counts times the stall watchdog fired (accrued virtual
	// wait exceeded RetryPolicy.StallWait with no budget progress).
	StallTrips int
	// Wait is the accumulated virtual wait: retry backoff, rate-limit
	// windows, breaker cooldowns, and injected slow-call latency.
	Wait time.Duration
	// ThrottleWait is the portion of Wait spent on 429 rate-limit
	// windows — the waits a cooperative scheduler can overlap with other
	// walkers' work. BackoffWait is the portion spent on transient-error
	// backoff and breaker cooldowns — failure recovery that holds the
	// walker regardless of scheduling. The remainder
	// (Wait - ThrottleWait - BackoffWait) is injected slow-call latency.
	ThrottleWait time.Duration
	BackoffWait  time.Duration
}

// Add returns the field-wise sum of two snapshots (used to accumulate
// accounting across resumed run segments).
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Calls:         s.Calls + o.Calls,
		Retries:       s.Retries + o.Retries,
		RateLimitHits: s.RateLimitHits + o.RateLimitHits,
		CircuitTrips:  s.CircuitTrips + o.CircuitTrips,
		StallTrips:    s.StallTrips + o.StallTrips,
		Wait:          s.Wait + o.Wait,
		ThrottleWait:  s.ThrottleWait + o.ThrottleWait,
		BackoffWait:   s.BackoffWait + o.BackoffWait,
	}
}

// VirtualOf translates an accounting snapshot into the virtual
// wall-clock a run with those books would need on the real platform:
// the refill windows the charged calls force under the preset's rate
// limit, plus every virtual wait the retry policy accrued.
//
// The window term counts REFILL waits, not windows touched: the first
// RateLimitCalls calls fit inside the opening window and cost no
// pacing wait at all; each further full quota of calls forces one
// window-length wait for the quota to refill. At exact multiples of
// RateLimitCalls the run ends the moment its last call lands — the
// naive ceiling division (Calls+RateLimitCalls-1)/RateLimitCalls would
// charge the window that call merely opened, overstating the clock by
// one full window per walker.
func VirtualOf(p Preset, st Stats) time.Duration {
	if p.RateLimitCalls <= 0 || st.Calls <= 0 {
		return st.Wait
	}
	refills := (st.Calls - 1) / p.RateLimitCalls
	return time.Duration(refills)*p.RateLimitWindow + st.Wait
}
