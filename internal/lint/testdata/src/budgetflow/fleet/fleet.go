// Package fleet exercises the ledger-admission rule: every client a
// fleet creates must be bound to the shared Ledger before it charges.
package fleet

import "api"

// runUnitGood pairs NewClient with UseLedger: every charged call will
// pass Ledger.Reserve admission.
func runUnitGood(srv *api.Server, led *api.Ledger) *api.Client {
	c := api.NewClient(srv, 0)
	c.UseLedger(led, 1)
	return c
}

// runUnitBad creates an unledgered client.
func runUnitBad(srv *api.Server) *api.Client {
	c := api.NewClient(srv, 0) // want `creates an api\.Client without binding it to the shared Ledger`
	return c
}
