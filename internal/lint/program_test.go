package lint_test

import (
	"path/filepath"
	"testing"

	"mba/internal/lint"
)

// fixtureProgram loads the given fixture packages and builds the
// whole-program view over them and their dependencies.
func fixtureProgram(t *testing.T, paths ...string) *lint.Program {
	t.Helper()
	loader := lint.NewFixtureLoader(filepath.Join("testdata", "src"))
	for _, p := range paths {
		if _, err := loader.Load(p); err != nil {
			t.Fatalf("loading %s: %v", p, err)
		}
	}
	return lint.NewProgram(loader.Loaded())
}

// TestSummaryFacts checks the bottom-up facts on the ctxflow fixture:
// cost roots, transitive cost, and context signature facts.
func TestSummaryFacts(t *testing.T) {
	prog := fixtureProgram(t, "ctxflow/core")
	sum := func(id string) *lint.Summary {
		t.Helper()
		f := prog.FuncByID(id)
		if f == nil {
			t.Fatalf("no program Func %q", id)
		}
		return prog.SummaryOf(f)
	}

	if s := sum("(*api.Client).Search"); !s.IncursCost {
		t.Error("api.Client.Search is the cost root; IncursCost should be true")
	}
	if s := sum("ctxflow/core.costly"); !s.IncursCost || !s.ReturnsError {
		t.Errorf("costly: IncursCost=%v ReturnsError=%v, want true/true", s.IncursCost, s.ReturnsError)
	}
	if s := sum("ctxflow/core.BadFresh"); !s.IncursCost {
		t.Error("BadFresh reaches cost only transitively; IncursCost should propagate")
	}
	if s := sum("ctxflow/core.threaded"); !s.ConsumesCtx || !s.UsesCtx {
		t.Errorf("threaded: ConsumesCtx=%v UsesCtx=%v, want true/true", s.ConsumesCtx, s.UsesCtx)
	}
	if s := sum("ctxflow/core.DropsCtx"); !s.ConsumesCtx || s.UsesCtx {
		t.Errorf("DropsCtx: ConsumesCtx=%v UsesCtx=%v, want true/false", s.ConsumesCtx, s.UsesCtx)
	}
	if s := sum("ctxflow/core.Free"); s.IncursCost {
		t.Error("Free never reaches a charged endpoint; IncursCost should be false")
	}
}

// TestFixpointTerminatesOnMutualRecursion drives the SCC fixpoint over
// a mutually recursive pair (and a self-recursive function) whose cost
// fact must propagate around the cycle — and the propagation must
// converge rather than loop.
func TestFixpointTerminatesOnMutualRecursion(t *testing.T) {
	prog := fixtureProgram(t, "recursion")
	for _, id := range []string{"recursion.even", "recursion.odd", "recursion.self"} {
		f := prog.FuncByID(id)
		if f == nil {
			t.Fatalf("no program Func %q", id)
		}
		if !prog.SummaryOf(f).IncursCost {
			t.Errorf("%s: IncursCost should be true through the recursive cycle", id)
		}
	}
}

// TestLockSummaryFacts checks interprocedural lock-acquisition
// summaries on the lockorder fixture.
func TestLockSummaryFacts(t *testing.T) {
	prog := fixtureProgram(t, "lockorder")
	f := prog.FuncByID("lockorder.cThenB")
	if f == nil {
		t.Fatal("no program Func lockorder.cThenB")
	}
	got := prog.SummaryOf(f).AcquiresSorted()
	want := []string{"lockorder.B.mu", "lockorder.C.mu"}
	if len(got) != len(want) {
		t.Fatalf("cThenB acquires %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cThenB acquires %v, want %v", got, want)
		}
	}
}
