package stats

import (
	"math"
	"math/rand"
	"sort"
)

// BootstrapCI returns a percentile bootstrap confidence interval for
// the mean of xs at confidence level 1-alpha, using b resamples. It is
// the distribution-free companion to NormalCI, appropriate for the
// heavy-tailed per-walk estimates MA-TARW produces. An empty sample
// yields (0,0).
func BootstrapCI(rng *rand.Rand, xs []float64, alpha float64, b int) (lo, hi float64) {
	n := len(xs)
	if n == 0 {
		return 0, 0
	}
	if b <= 0 {
		b = 1000
	}
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.05
	}
	means := make([]float64, b)
	for i := 0; i < b; i++ {
		var sum KahanAdder
		for j := 0; j < n; j++ {
			sum.Add(xs[rng.Intn(n)])
		}
		means[i] = sum.Sum() / float64(n)
	}
	sort.Float64s(means)
	loIdx := int(alpha / 2 * float64(b))
	hiIdx := int((1 - alpha/2) * float64(b))
	if hiIdx >= b {
		hiIdx = b - 1
	}
	return means[loIdx], means[hiIdx]
}

// EffectiveSampleSize estimates the effective number of independent
// samples in an autocorrelated chain using the initial-positive-
// sequence estimator: ESS = n / (1 + 2·Σ ρ_k), summing lag
// autocorrelations while consecutive-lag pairs stay positive (Geyer).
// A chain of random-walk samples with strong correlation (the burn-in
// problem of §4.1) has ESS ≪ n; a well-mixed chain has ESS ≈ n.
func EffectiveSampleSize(chain []float64) float64 {
	n := len(chain)
	if n < 4 {
		return float64(n)
	}
	if Variance(chain) == 0 {
		return float64(n)
	}
	var rhoSum float64
	for k := 1; k+1 < n/2; k += 2 {
		pair := Autocorrelation(chain, k) + Autocorrelation(chain, k+1)
		if pair <= 0 {
			break
		}
		rhoSum += pair
	}
	ess := float64(n) / (1 + 2*rhoSum)
	if ess > float64(n) {
		ess = float64(n)
	}
	if ess < 1 {
		ess = 1
	}
	return ess
}

// TrimmedMean returns the mean of xs after removing the frac smallest
// and frac largest observations (frac in [0, 0.5)) — a robust location
// estimate for heavy-tailed per-walk aggregates.
func TrimmedMean(xs []float64, frac float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	if frac < 0 {
		frac = 0
	}
	if frac >= 0.5 {
		frac = 0.49
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	cut := int(math.Floor(frac * float64(n)))
	trimmed := sorted[cut : n-cut]
	return Mean(trimmed)
}

// MAD returns the median absolute deviation from the median, a robust
// scale estimate. It returns 0 for samples smaller than two.
func MAD(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	med, err := Median(xs)
	if err != nil {
		return 0
	}
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - med)
	}
	m, err := Median(dev)
	if err != nil {
		return 0
	}
	return m
}
