package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the whole-program points-to analysis (PR 10): an
// inclusion-based (Andersen-style) constraint system solved once per
// Program with a deterministic worklist. The escape layer (escape.go)
// and the sharedguard/chanlife analyzers consume its solution, and the
// dettaint/budgetpath analyzers use it to sharpen facts across pointer
// aliases.
//
// The model:
//
//   - Abstract objects live at allocation sites (&T{}, new(T), make,
//     composite literals, append growth, closures) plus one storage
//     object per variable whose address is taken or that is accessed
//     as an aggregate, and one synthetic object per pointer-ish
//     parameter (standing for whatever unknown callers pass).
//   - Nodes hold points-to sets: one per variable (keyed by its
//     types.Object, which makes closure captures alias for free), one
//     per intermediate expression, one per function result, and one
//     per (object, field) pair, created on demand during solving.
//   - Constraints are the classic four: alloc (o ∈ pts(n)), copy
//     (pts(dst) ⊇ pts(src)), load (∀o ∈ pts(base): pts(dst) ⊇
//     pts(fld(o,f))) and store (∀o ∈ pts(base): pts(fld(o,f)) ⊇
//     pts(src)). Channel element transfer is a load/store on the
//     pseudo-field "*"; map/slice elements use "[]".
//   - Calls ride the existing call graph: arguments copy into
//     parameter nodes of every resolved candidate (including closure
//     and interface candidates), results copy back. Calls that leave
//     the program neither produce nor consume points-to information.
//
// Soundness caveats (documented in DESIGN.md §16): reflection and
// unsafe are out of scope; aggregate values are approximated by
// reference (a struct copy aliases its source); pointers into external
// libraries return empty sets; &x.f aliases x rather than a distinct
// field cell.

// ptElemField is the pseudo-field for pointer/channel element cells.
const ptElemField = "*"

// ptIndexField is the pseudo-field for map/slice/array element cells.
const ptIndexField = "[]"

// PTObject is one abstract memory object.
type PTObject struct {
	// ID is the stable identity used by the fact cache:
	// "kind@file:line:col" (plus a field path for sub-objects).
	ID string
	// Kind is "lit", "new", "make", "closure", "append", "var",
	// "param", or "field" (an aggregate sub-object).
	Kind string
	// Type is the allocated type (nil when unknown, e.g. fuzz graphs).
	Type types.Type
	// Pos is the allocation site (or declaration for var/param kinds).
	Pos token.Pos
	// Fn is the function the allocation site lives in; nil for
	// package-level allocations and parameter summaries.
	Fn *Func
	// Var is the variable this object is the storage of (var kind).
	Var types.Object
}

// ptDeref is one pending load/store constraint hanging off a base node.
type ptDeref struct {
	other int // dst for loads, src for stores
	field string
}

// ptNode is one points-to set with its outgoing constraints.
type ptNode struct {
	id     string
	pts    map[int]bool
	succs  map[int]bool // copy edges: pts(succ) ⊇ pts(this)
	loads  []ptDeref
	stores []ptDeref
}

// PTSolver is the constraint system. It is AST-agnostic — the fuzz
// target builds synthetic graphs directly against this API.
type PTSolver struct {
	nodes   []*ptNode
	objects []*PTObject
	// fields maps (object, field) to the node holding that cell.
	fields map[ptFieldKey]int
	// elemOf overrides the "*" cell of variable objects: dereferencing
	// a pointer to variable x must read/write x's own node.
	elemOf map[int]int
	// fieldSeed, when set, may seed a freshly created field cell (the
	// AST layer plants sub-objects for aggregate-typed fields there).
	fieldSeed func(obj int, field string, node int)
	// fieldLog records field-node creations in order, so a memoized
	// solution can replay them and line node indices up (factcache.go).
	fieldLog []ptFieldCache
	queued   []bool
	solved   bool
}

type ptFieldKey struct {
	obj   int
	field string
}

// NewPTSolver returns an empty constraint system.
func NewPTSolver() *PTSolver {
	return &PTSolver{fields: map[ptFieldKey]int{}, elemOf: map[int]int{}}
}

// NewNode creates a node and returns its index.
func (s *PTSolver) NewNode(id string) int {
	s.nodes = append(s.nodes, &ptNode{id: id, pts: map[int]bool{}, succs: map[int]bool{}})
	if s.queued != nil {
		s.queued = append(s.queued, true)
	}
	return len(s.nodes) - 1
}

// NewObject registers an abstract object and returns its index.
func (s *PTSolver) NewObject(o *PTObject) int {
	s.objects = append(s.objects, o)
	return len(s.objects) - 1
}

// AddAlloc seeds obj into pts(node).
func (s *PTSolver) AddAlloc(node, obj int) {
	if !s.nodes[node].pts[obj] {
		s.nodes[node].pts[obj] = true
		if s.queued != nil {
			s.queued[node] = true
		}
	}
}

// AddCopy adds the subset edge pts(dst) ⊇ pts(src).
func (s *PTSolver) AddCopy(dst, src int) {
	if dst == src || s.nodes[src].succs[dst] {
		return
	}
	s.nodes[src].succs[dst] = true
	if s.queued != nil {
		s.queued[src] = true
	}
}

// AddLoad adds pts(dst) ⊇ pts(fld(o, field)) for every o ∈ pts(base).
func (s *PTSolver) AddLoad(dst, base int, field string) {
	s.nodes[base].loads = append(s.nodes[base].loads, ptDeref{other: dst, field: field})
	if s.queued != nil {
		s.queued[base] = true
	}
}

// AddStore adds pts(fld(o, field)) ⊇ pts(src) for every o ∈ pts(base).
func (s *PTSolver) AddStore(base int, field string, src int) {
	s.nodes[base].stores = append(s.nodes[base].stores, ptDeref{other: src, field: field})
	if s.queued != nil {
		s.queued[base] = true
	}
}

// SetElem declares that the "*" cell of obj IS the given node (used
// for variable objects, whose contents already live in the variable's
// own node).
func (s *PTSolver) SetElem(obj, node int) { s.elemOf[obj] = node }

// fieldNode returns (creating on demand) the node of one object cell.
func (s *PTSolver) fieldNode(obj int, field string) int {
	if field == ptElemField {
		if n, ok := s.elemOf[obj]; ok {
			return n
		}
	}
	key := ptFieldKey{obj: obj, field: field}
	if n, ok := s.fields[key]; ok {
		return n
	}
	n := s.NewNode("f@" + s.objects[obj].ID + "." + field)
	s.fields[key] = n
	s.fieldLog = append(s.fieldLog, ptFieldCache{Obj: obj, Field: field})
	if s.fieldSeed != nil {
		s.fieldSeed(obj, field, n)
	}
	return n
}

// fieldNodeIfExists looks a cell node up without creating it.
func (s *PTSolver) fieldNodeIfExists(obj int, field string) (int, bool) {
	if field == ptElemField {
		if n, ok := s.elemOf[obj]; ok {
			return n, true
		}
	}
	n, ok := s.fields[ptFieldKey{obj: obj, field: field}]
	return n, ok
}

// installVerified installs candidate per-node sets if and only if they
// form a closed fixpoint of the constraint system that contains every
// generated alloc seed. Returns false (leaving the solver untouched)
// otherwise.
func (s *PTSolver) installVerified(sets [][]int) bool {
	if len(sets) != len(s.nodes) {
		return false
	}
	cand := make([]map[int]bool, len(sets))
	for i, set := range sets {
		m := make(map[int]bool, len(set))
		for _, o := range set {
			if o < 0 || o >= len(s.objects) {
				return false
			}
			m[o] = true
		}
		cand[i] = m
	}
	for i, n := range s.nodes {
		for o := range n.pts { // generated seeds must survive
			if !cand[i][o] {
				return false
			}
		}
		for d := range n.succs {
			for o := range cand[i] {
				if !cand[d][o] {
					return false
				}
			}
		}
		for o := range cand[i] {
			for _, ld := range n.loads {
				fn, ok := s.fieldNodeIfExists(o, ld.field)
				if !ok {
					return false
				}
				for x := range cand[fn] {
					if !cand[ld.other][x] {
						return false
					}
				}
			}
			for _, st := range n.stores {
				fn, ok := s.fieldNodeIfExists(o, st.field)
				if !ok {
					return false
				}
				for x := range cand[st.other] {
					if !cand[fn][x] {
						return false
					}
				}
			}
		}
	}
	for i := range s.nodes {
		s.nodes[i].pts = cand[i]
	}
	s.solved = true
	return true
}

// Solve runs the inclusion constraints to their least fixpoint. The
// worklist drains in ascending node order, so cell-node creation order
// — and with it every node index and ID — is deterministic across
// runs; the solution itself is the unique least fixpoint regardless.
func (s *PTSolver) Solve() {
	s.queued = make([]bool, len(s.nodes))
	for i := range s.queued {
		s.queued[i] = true
	}
	for {
		idx := -1
		for i, q := range s.queued {
			if q {
				idx = i
				break
			}
		}
		if idx < 0 {
			break
		}
		s.queued[idx] = false
		n := s.nodes[idx]

		if len(n.loads) > 0 || len(n.stores) > 0 {
			for _, o := range sortedIntKeys(n.pts) {
				for _, ld := range n.loads {
					s.AddCopy(ld.other, s.fieldNode(o, ld.field))
				}
				for _, st := range n.stores {
					s.AddCopy(s.fieldNode(o, st.field), st.other)
				}
			}
		}
		for _, d := range sortedIntKeys(n.succs) {
			dst := s.nodes[d]
			changed := false
			for o := range n.pts {
				if !dst.pts[o] {
					dst.pts[o] = true
					changed = true
				}
			}
			if changed {
				s.queued[d] = true
			}
		}
	}
	s.queued = nil
	s.solved = true
}

// PointsTo returns the sorted object indices of one node's solution.
func (s *PTSolver) PointsTo(node int) []int {
	if node < 0 || node >= len(s.nodes) {
		return nil
	}
	return sortedIntKeys(s.nodes[node].pts)
}

// NumNodes and NumObjects expose graph sizes (tests, fuzzing).
func (s *PTSolver) NumNodes() int   { return len(s.nodes) }
func (s *PTSolver) NumObjects() int { return len(s.objects) }

func sortedIntKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// ptAccessKind classifies how an access site touches memory.
type ptAccessKind int

const (
	ptRead ptAccessKind = iota
	ptWrite
	// ptChanOp marks channel sends/receives — ownership transfer, not
	// shared-state access; sharedguard exempts them.
	ptChanOp
)

// ptAccess is one recorded memory access: the base node whose objects
// are touched, the cell within them, and where/by whom.
type ptAccess struct {
	node  int
	field string
	kind  ptAccessKind
	pos   token.Pos
	// fn is the accessing function (nil: package-level initializer).
	fn *Func
	// pkg is the package the access site lives in.
	pkg *Package
}

// PointsTo is the Program-level analysis result.
type PointsTo struct {
	Solver *PTSolver
	// varNodes maps variables to their value nodes.
	varNodes map[types.Object]int
	// varAddrs maps variables to address nodes (pts = {storage obj}).
	varAddrs map[types.Object]int
	// varAccs maps aggregate variables to pure access-recording nodes
	// (pts = {storage obj} only, never merged with copied-in objects).
	varAccs map[types.Object]int
	// varObjs maps variables to their storage object index.
	varObjs  map[types.Object]int
	accesses []ptAccess
	// objEnclosing[i] is the Func whose body allocates object i.
	prog *Program
}

// Objects returns the abstract object table.
func (pt *PointsTo) Objects() []*PTObject { return pt.Solver.objects }

// VarPointsTo returns the objects a variable may point to.
func (pt *PointsTo) VarPointsTo(v types.Object) []int {
	n, ok := pt.varNodes[v]
	if !ok {
		return nil
	}
	return pt.Solver.PointsTo(n)
}

// MayAliasVars reports whether two pointer variables may point to a
// common object.
func (pt *PointsTo) MayAliasVars(a, b types.Object) bool {
	if a == nil || b == nil {
		return false
	}
	pa, pb := pt.VarPointsTo(a), pt.VarPointsTo(b)
	if len(pa) == 0 || len(pb) == 0 {
		return false
	}
	i, j := 0, 0
	for i < len(pa) && j < len(pb) {
		switch {
		case pa[i] == pb[j]:
			return true
		case pa[i] < pb[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// AliasedVars returns, in declaration-position order, the variables
// whose storage object is in pts(v) — the set an indirect store
// through v may write. v's own storage (if it has one) is excluded.
func (pt *PointsTo) AliasedVars(v types.Object) []types.Object {
	var out []types.Object
	for _, o := range pt.VarPointsTo(v) {
		obj := pt.Solver.objects[o]
		if obj.Var != nil && obj.Var != v {
			out = append(out, obj.Var)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// buildPointsTo generates constraints for every function and
// package-level initializer, then solves (or reloads a memoized
// solution from the fact cache).
func (p *Program) buildPointsTo(cache *FactCache) {
	b := &ptBuilder{
		prog: p,
		pt: &PointsTo{
			Solver:   NewPTSolver(),
			varNodes: map[types.Object]int{},
			varAddrs: map[types.Object]int{},
			varAccs:  map[types.Object]int{},
			varObjs:  map[types.Object]int{},
			prog:     p,
		},
		tmps:         map[ast.Node]int{},
		rets:         map[string][]int{},
		callTmpExtra: map[*ast.CallExpr][]int{},
	}
	b.pt.Solver.fieldSeed = b.seedField
	b.generate()
	if cache == nil || !cache.loadPointsTo(p, b.pt.Solver) {
		b.pt.Solver.Solve()
	}
	p.pointsTo = b.pt
	if cache != nil {
		cache.storePointsTo(p, b.pt.Solver)
	}
}

// PointsToInfo returns the program's solved points-to analysis.
func (p *Program) PointsToInfo() *PointsTo { return p.pointsTo }

// ptBuilder walks every body once, generating constraints and
// recording accesses.
type ptBuilder struct {
	prog *Program
	pt   *PointsTo
	// tmps memoizes expression nodes so a single walk cannot generate
	// a constraint twice.
	tmps map[ast.Node]int
	// rets maps Func.ID to its result nodes.
	rets map[string][]int
	// callTmpExtra remembers the full result-node list of multi-result
	// call sites (tmps only keeps the first).
	callTmpExtra map[*ast.CallExpr][]int
	// cur is the function being generated (nil at package level).
	cur *Func
	pkg *Package
}

func (b *ptBuilder) posID(pos token.Pos) string {
	p := b.prog.Fset.Position(pos)
	return fmt.Sprintf("%s:%d:%d", p.Filename, p.Line, p.Column)
}

// isAggregate reports whether values of t are structs/arrays — the
// types whose storage we model by reference.
func isAggregate(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Struct, *types.Array:
		return true
	}
	return false
}

// varNode returns the value node of a variable.
func (b *ptBuilder) varNode(v types.Object) int {
	if n, ok := b.pt.varNodes[v]; ok {
		return n
	}
	n := b.pt.Solver.NewNode("v@" + b.posID(v.Pos()) + "/" + v.Name())
	b.pt.varNodes[v] = n
	if isAggregate(v.Type()) {
		// Aggregate variables are their own storage: the value node
		// holds the storage object, so x.f, (&x).f and p.f (p = &x)
		// all resolve to the same cells.
		b.pt.Solver.AddAlloc(n, b.varObj(v))
	}
	return n
}

// varObj returns (creating on demand) the storage object of v.
func (b *ptBuilder) varObj(v types.Object) int {
	if o, ok := b.pt.varObjs[v]; ok {
		return o
	}
	o := b.pt.Solver.NewObject(&PTObject{
		ID:   "var@" + b.posID(v.Pos()) + "/" + v.Name(),
		Kind: "var",
		Type: v.Type(),
		Pos:  v.Pos(),
		Fn:   b.enclosingFuncOfVar(v),
		Var:  v,
	})
	b.pt.varObjs[v] = o
	if !isAggregate(v.Type()) {
		// Dereferencing a pointer to a scalar-ish variable reads and
		// writes the variable's own node.
		b.pt.Solver.SetElem(o, b.varNode(v))
	}
	return o
}

// enclosingFuncOfVar finds the Func whose body declares v (nil for
// package-level variables). Used by the ownership exemption.
func (b *ptBuilder) enclosingFuncOfVar(v types.Object) *Func {
	if v.Pkg() == nil {
		return nil
	}
	if v.Parent() != nil && v.Pkg().Scope() == v.Parent() {
		return nil
	}
	// The builder only ever creates storage while generating some
	// function; a local var's storage is first touched from its own
	// function (or a closure, which still pins ownership correctly
	// for the alloc-site exemption: closures are separate Funcs).
	return b.cur
}

// varAddr returns a node whose solution is exactly {storage of v}.
func (b *ptBuilder) varAddr(v types.Object) int {
	if isAggregate(v.Type()) {
		return b.varNode(v)
	}
	if n, ok := b.pt.varAddrs[v]; ok {
		return n
	}
	n := b.pt.Solver.NewNode("a@" + b.posID(v.Pos()) + "/" + v.Name())
	b.pt.varAddrs[v] = n
	b.pt.Solver.AddAlloc(n, b.varObj(v))
	return n
}

// varAccess returns a node holding exactly v's storage object, used
// only for recording accesses. For aggregate variables varAddr aliases
// the value node, which accumulates every object copied in — but Go
// struct assignment copies, so writing the variable (or one of its
// fields through the value, not through a pointer) touches only the
// variable's own storage. Recording on the merged node would smear the
// write onto other functions' objects and defeat sharedguard's
// ownership reasoning.
func (b *ptBuilder) varAccess(v types.Object) int {
	if !isAggregate(v.Type()) {
		return b.varAddr(v)
	}
	if n, ok := b.pt.varAccs[v]; ok {
		return n
	}
	n := b.pt.Solver.NewNode("w@" + b.posID(v.Pos()) + "/" + v.Name())
	b.pt.varAccs[v] = n
	b.pt.Solver.AddAlloc(n, b.varObj(v))
	return n
}

// accessBase returns the node to record an access against for a
// selector/index base expression: an aggregate value variable resolves
// to its own storage only (value semantics), anything else to the full
// points-to expansion of the expression.
func (b *ptBuilder) accessBase(x ast.Expr, full int) int {
	if id, ok := unparen(x).(*ast.Ident); ok {
		if v, ok := b.pkg.Info.Uses[id].(*types.Var); ok && isAggregate(v.Type()) {
			return b.varAccess(v)
		}
	}
	return full
}

// newTmp returns the memoized temp node of an expression.
func (b *ptBuilder) newTmp(e ast.Node, tag string) (int, bool) {
	if n, ok := b.tmps[e]; ok {
		return n, false
	}
	n := b.pt.Solver.NewNode(tag + "@" + b.posID(e.Pos()))
	b.tmps[e] = n
	return n, true
}

// allocObj creates an allocation-site object.
func (b *ptBuilder) allocObj(kind string, e ast.Node, t types.Type) int {
	return b.pt.Solver.NewObject(&PTObject{
		ID:   kind + "@" + b.posID(e.Pos()),
		Kind: kind,
		Type: t,
		Pos:  e.Pos(),
		Fn:   b.cur,
	})
}

// seedField plants a sub-object into aggregate-typed field cells so
// chained selections (s.met.Requests) resolve to stable cells.
func (b *ptBuilder) seedField(obj int, field string, node int) {
	parent := b.pt.Solver.objects[obj]
	ft := fieldTypeOf(parent.Type, field)
	if !isAggregate(ft) && !(parent.Kind == "param" && pointerLike(ft)) {
		// Under a parameter summary, pointer-carrying sub-cells also
		// get summaries: loading cache[u] from a parameter map must
		// yield a caller-owned stand-in, not only the concrete objects
		// other functions happened to store into aliased maps.
		return
	}
	id := parent.ID + "." + field
	kind := "field"
	if parent.Kind == "param" {
		// Sub-objects of parameter summaries are summaries themselves:
		// they stand for unknown caller state and carry the same
		// caller-ownership treatment (see sharedguard). The "~" chain
		// separator doubles as a depth counter: recursive types
		// (p = p.next loops) would otherwise grow summary chains
		// without bound once a chain object flows back into its own
		// base node.
		if strings.Count(parent.ID, "~") >= 4 {
			return
		}
		id = parent.ID + "~" + field
		kind = "param"
	}
	sub := b.pt.Solver.NewObject(&PTObject{
		ID:   id,
		Kind: kind,
		Type: ft,
		Pos:  parent.Pos,
		Fn:   parent.Fn,
	})
	b.pt.Solver.AddAlloc(node, sub)
}

// pointerLike reports whether t can carry object identity across a
// call boundary (the types parameter summaries are seeded for).
func pointerLike(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Slice, *types.Interface:
		return true
	}
	return false
}

// fieldTypeOf resolves a named field's type on t (nil if unknown).
func fieldTypeOf(t types.Type, field string) types.Type {
	if t == nil || field == ptElemField || field == ptIndexField {
		return elemTypeOf(t, field)
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == field {
			return st.Field(i).Type()
		}
		if st.Field(i).Embedded() {
			if ft := fieldTypeOf(st.Field(i).Type(), field); ft != nil {
				return ft
			}
		}
	}
	return nil
}

func elemTypeOf(t types.Type, field string) types.Type {
	if t == nil {
		return nil
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		if field == ptElemField {
			return u.Elem()
		}
	case *types.Chan:
		if field == ptElemField {
			return u.Elem()
		}
	case *types.Slice:
		if field == ptIndexField {
			return u.Elem()
		}
	case *types.Array:
		if field == ptIndexField {
			return u.Elem()
		}
	case *types.Map:
		if field == ptIndexField {
			return u.Elem()
		}
	}
	return nil
}

// access records one memory access site.
func (b *ptBuilder) access(node int, field string, kind ptAccessKind, pos token.Pos) {
	b.pt.accesses = append(b.pt.accesses, ptAccess{node: node, field: field, kind: kind, pos: pos, fn: b.cur, pkg: b.pkg})
}

// generate walks every package-level initializer and function body.
func (b *ptBuilder) generate() {
	// Result nodes first, so returns and call results can meet: named
	// results alias their variable node directly.
	for _, f := range b.prog.Funcs {
		rs := f.Sig.Results()
		nodes := make([]int, rs.Len())
		for i := 0; i < rs.Len(); i++ {
			if v := rs.At(i); v.Name() != "" && v.Name() != "_" {
				nodes[i] = b.varNode(v)
			} else {
				nodes[i] = b.pt.Solver.NewNode(fmt.Sprintf("r@%s#%d", f.ID, i))
			}
		}
		b.rets[f.ID] = nodes
		// Parameter summary objects: stand-ins for whatever unknown
		// callers pass, so alias queries work without whole-world
		// knowledge. Excluded from sharedguard grouping (Kind param).
		b.seedParams(f)
	}
	for _, pkg := range b.prog.Pkgs {
		b.pkg = pkg
		b.cur = nil
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						b.valueSpec(vs)
					}
				}
			}
		}
	}
	for _, f := range b.prog.Funcs {
		if f.Body == nil {
			continue
		}
		b.pkg = f.Pkg
		b.cur = f
		b.funcBody(f)
	}
}

// seedParams gives every pointer-carrying parameter (and receiver) a
// synthetic summary object.
func (b *ptBuilder) seedParams(f *Func) {
	seed := func(v *types.Var, i int) {
		if v == nil || isAggregate(v.Type()) {
			return
		}
		switch v.Type().Underlying().(type) {
		case *types.Pointer, *types.Chan, *types.Map, *types.Slice, *types.Interface, *types.Signature:
		default:
			return
		}
		o := b.pt.Solver.NewObject(&PTObject{
			ID:   fmt.Sprintf("param@%s#%d", f.ID, i),
			Kind: "param",
			Type: v.Type(),
			Pos:  v.Pos(),
			Fn:   f,
		})
		b.pt.Solver.AddAlloc(b.varNode(v), o)
	}
	if recv := f.Sig.Recv(); recv != nil {
		seed(recv, -1)
	}
	for i := 0; i < f.Sig.Params().Len(); i++ {
		seed(f.Sig.Params().At(i), i)
	}
}

// funcBody generates constraints for one function body (shallow: a
// nested closure's statements belong to the closure's own Func).
func (b *ptBuilder) funcBody(f *Func) {
	inspectShallow(f.Body, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.AssignStmt:
			b.assign(x)
		case *ast.DeclStmt:
			if gd, ok := x.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						b.valueSpec(vs)
					}
				}
			}
		case *ast.SendStmt:
			ch := b.expr(x.Chan)
			b.pt.Solver.AddStore(ch, ptElemField, b.expr(x.Value))
			b.access(ch, ptElemField, ptChanOp, x.Pos())
		case *ast.IncDecStmt:
			b.lvalue(x.X, -1, x.Pos())
		case *ast.ReturnStmt:
			b.returnStmt(f, x)
		case *ast.RangeStmt:
			b.rangeStmt(x)
		case *ast.TypeSwitchStmt:
			b.typeSwitch(x)
		case *ast.CallExpr:
			b.expr(x)
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				b.expr(x)
			}
		}
	})
}

// valueSpec handles `var a, b T = e1, e2` and tuple forms.
func (b *ptBuilder) valueSpec(vs *ast.ValueSpec) {
	if len(vs.Values) == 1 && len(vs.Names) > 1 {
		// var a, b = f()
		if call, ok := unparen(vs.Values[0]).(*ast.CallExpr); ok {
			results := b.callResults(call)
			for i, name := range vs.Names {
				if obj := b.pkg.Info.Defs[name]; obj != nil && i < len(results) {
					b.pt.Solver.AddCopy(b.varNode(obj), results[i])
					b.access(b.varAccess(obj), ptElemField, ptWrite, name.Pos())
				}
			}
			return
		}
	}
	for i, name := range vs.Names {
		obj := b.pkg.Info.Defs[name]
		if obj == nil || name.Name == "_" {
			continue
		}
		if i < len(vs.Values) {
			b.pt.Solver.AddCopy(b.varNode(obj), b.expr(vs.Values[i]))
			b.access(b.varAccess(obj), ptElemField, ptWrite, name.Pos())
		}
	}
}

// assign handles every assignment form.
func (b *ptBuilder) assign(as *ast.AssignStmt) {
	// Tuple: x, y := f()  /  v, ok := m[k]  /  v, ok := <-ch  /  x.(T)
	if len(as.Lhs) > 1 && len(as.Rhs) == 1 {
		rhs := unparen(as.Rhs[0])
		var results []int
		switch r := rhs.(type) {
		case *ast.CallExpr:
			results = b.callResults(r)
		case *ast.IndexExpr, *ast.UnaryExpr, *ast.TypeAssertExpr:
			results = []int{b.expr(rhs)}
		default:
			results = []int{b.expr(rhs)}
		}
		for i, lhs := range as.Lhs {
			src := -1
			if i < len(results) {
				src = results[i]
			}
			b.lvalue(lhs, src, as.Pos())
		}
		return
	}
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		b.lvalue(lhs, b.expr(as.Rhs[i]), as.Pos())
	}
}

// lvalue stores src (a node, or -1 for a value-less effect like ++)
// into the location lhs denotes, recording the write access.
func (b *ptBuilder) lvalue(lhs ast.Expr, src int, pos token.Pos) {
	switch x := unparen(lhs).(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return
		}
		obj := b.pkg.Info.Defs[x]
		if obj == nil {
			obj = b.pkg.Info.Uses[x]
		}
		if obj == nil {
			return
		}
		if src >= 0 {
			b.pt.Solver.AddCopy(b.varNode(obj), src)
		}
		b.access(b.varAccess(obj), ptElemField, ptWrite, pos)
	case *ast.SelectorExpr:
		if sel, ok := b.pkg.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			base := b.expr(x.X)
			if src >= 0 {
				b.pt.Solver.AddStore(base, x.Sel.Name, src)
			}
			b.access(b.accessBase(x.X, base), x.Sel.Name, ptWrite, pos)
			return
		}
		// Qualified package-level var (otherpkg.V = e).
		if obj, ok := b.pkg.Info.Uses[x.Sel].(*types.Var); ok {
			if src >= 0 {
				b.pt.Solver.AddCopy(b.varNode(obj), src)
			}
			b.access(b.varAccess(obj), ptElemField, ptWrite, pos)
		}
	case *ast.StarExpr:
		base := b.expr(x.X)
		if src >= 0 {
			b.pt.Solver.AddStore(base, ptElemField, src)
		}
		b.access(base, ptElemField, ptWrite, pos)
	case *ast.IndexExpr:
		base := b.expr(x.X)
		b.expr(x.Index)
		if src >= 0 {
			b.pt.Solver.AddStore(base, ptIndexField, src)
		}
		b.access(b.accessBase(x.X, base), ptIndexField, ptWrite, pos)
	}
}

// returnStmt copies results into the function's result nodes.
func (b *ptBuilder) returnStmt(f *Func, rs *ast.ReturnStmt) {
	nodes := b.rets[f.ID]
	if len(rs.Results) == 1 && len(nodes) > 1 {
		if call, ok := unparen(rs.Results[0]).(*ast.CallExpr); ok {
			for i, r := range b.callResults(call) {
				if i < len(nodes) {
					b.pt.Solver.AddCopy(nodes[i], r)
				}
			}
			return
		}
	}
	for i, res := range rs.Results {
		if i < len(nodes) {
			b.pt.Solver.AddCopy(nodes[i], b.expr(res))
		}
	}
}

// rangeStmt binds the iteration variables.
func (b *ptBuilder) rangeStmt(rs *ast.RangeStmt) {
	x := b.expr(rs.X)
	tv, _ := b.pkg.Info.Types[rs.X]
	var elemField string
	kind := ptRead
	switch tv.Type.Underlying().(type) {
	case *types.Slice, *types.Array, *types.Map:
		elemField = ptIndexField
	case *types.Pointer: // *[N]T
		elemField = ptIndexField
	case *types.Chan:
		elemField = ptElemField
		kind = ptChanOp
	default:
		return
	}
	bind := func(e ast.Expr) {
		if e == nil {
			return
		}
		tmp, fresh := b.newTmp(e, "t")
		if fresh {
			b.pt.Solver.AddLoad(tmp, x, elemField)
		}
		b.lvalue(e, tmp, e.Pos())
	}
	b.access(x, elemField, kind, rs.Pos())
	if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
		bind(rs.Key)
		return
	}
	// Keys of maps/slices carry no tracked pointers here (documented
	// approximation); values do.
	if rs.Key != nil {
		b.lvalue(rs.Key, -1, rs.Key.Pos())
	}
	bind(rs.Value)
}

// typeSwitch binds the per-clause implicit variables of
// `switch v := x.(type)`.
func (b *ptBuilder) typeSwitch(ts *ast.TypeSwitchStmt) {
	var x ast.Expr
	switch a := ts.Assign.(type) {
	case *ast.AssignStmt:
		if len(a.Rhs) == 1 {
			if ta, ok := unparen(a.Rhs[0]).(*ast.TypeAssertExpr); ok {
				x = ta.X
			}
		}
	case *ast.ExprStmt:
		if ta, ok := unparen(a.X).(*ast.TypeAssertExpr); ok {
			x = ta.X
		}
	}
	if x == nil {
		return
	}
	src := b.expr(x)
	for _, cl := range ts.Body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if obj := b.pkg.Info.Implicits[cc]; obj != nil {
			b.pt.Solver.AddCopy(b.varNode(obj), src)
		}
	}
}

// expr returns the node holding e's value, generating constraints on
// first visit (memoized per AST node).
func (b *ptBuilder) expr(e ast.Expr) int {
	e2 := unparen(e)
	if n, ok := b.tmps[e2]; ok {
		return n
	}
	n := b.exprFresh(e2)
	b.tmps[e2] = n
	return n
}

func (b *ptBuilder) exprFresh(e ast.Expr) int {
	switch x := e.(type) {
	case *ast.Ident:
		obj := b.pkg.Info.Uses[x]
		if obj == nil {
			obj = b.pkg.Info.Defs[x]
		}
		if v, ok := obj.(*types.Var); ok {
			n := b.varNode(v)
			b.access(b.varAddr(v), ptElemField, ptRead, x.Pos())
			return n
		}
		return b.pt.Solver.NewNode("x@" + b.posID(x.Pos()))
	case *ast.SelectorExpr:
		if sel, ok := b.pkg.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			base := b.expr(x.X)
			tmp, fresh := b.newTmp(x, "t")
			if fresh {
				b.pt.Solver.AddLoad(tmp, base, x.Sel.Name)
				b.access(base, x.Sel.Name, ptRead, x.Pos())
			}
			return tmp
		}
		if v, ok := b.pkg.Info.Uses[x.Sel].(*types.Var); ok {
			// Qualified package-level var.
			n := b.varNode(v)
			b.access(b.varAddr(v), ptElemField, ptRead, x.Pos())
			return n
		}
		return b.pt.Solver.NewNode("x@" + b.posID(x.Pos()))
	case *ast.StarExpr:
		base := b.expr(x.X)
		tv, _ := b.pkg.Info.Types[x]
		if isAggregate(tv.Type) {
			// Dereferencing to an aggregate VALUE keeps reference
			// semantics: *p aliases p's target.
			return base
		}
		tmp, fresh := b.newTmp(x, "t")
		if fresh {
			b.pt.Solver.AddLoad(tmp, base, ptElemField)
			b.access(base, ptElemField, ptRead, x.Pos())
		}
		return tmp
	case *ast.UnaryExpr:
		switch x.Op {
		case token.AND:
			return b.addressOf(x.X)
		case token.ARROW:
			base := b.expr(x.X)
			tmp, fresh := b.newTmp(x, "t")
			if fresh {
				b.pt.Solver.AddLoad(tmp, base, ptElemField)
				b.access(base, ptElemField, ptChanOp, x.Pos())
			}
			return tmp
		default:
			return b.expr(x.X)
		}
	case *ast.IndexExpr:
		base := b.expr(x.X)
		b.expr(x.Index)
		tmp, fresh := b.newTmp(x, "t")
		if fresh {
			b.pt.Solver.AddLoad(tmp, base, ptIndexField)
			b.access(base, ptIndexField, ptRead, x.Pos())
		}
		return tmp
	case *ast.SliceExpr:
		return b.expr(x.X)
	case *ast.TypeAssertExpr:
		if x.Type == nil {
			return b.expr(x.X)
		}
		return b.expr(x.X)
	case *ast.BinaryExpr:
		l, r := b.expr(x.X), b.expr(x.Y)
		tmp, fresh := b.newTmp(x, "t")
		if fresh {
			b.pt.Solver.AddCopy(tmp, l)
			b.pt.Solver.AddCopy(tmp, r)
		}
		return tmp
	case *ast.CompositeLit:
		return b.compositeLit(x)
	case *ast.FuncLit:
		tmp, fresh := b.newTmp(x, "t")
		if fresh {
			b.pt.Solver.AddAlloc(tmp, b.allocObj("closure", x, nil))
		}
		return tmp
	case *ast.CallExpr:
		results := b.callResults(x)
		if len(results) > 0 {
			return results[0]
		}
		tmp, _ := b.newTmp(x, "t")
		return tmp
	}
	return b.pt.Solver.NewNode("x@" + b.posID(e.Pos()))
}

// addressOf models &e.
func (b *ptBuilder) addressOf(e ast.Expr) int {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		if v, ok := b.objectOfIdent(x).(*types.Var); ok {
			return b.varAddr(v)
		}
	case *ast.CompositeLit:
		return b.expr(x)
	case *ast.SelectorExpr:
		// &x.f: approximate as a pointer to x's object (the field cell
		// has no address identity of its own; DESIGN.md §16 caveat).
		if sel, ok := b.pkg.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			return b.expr(x.X)
		}
		if v, ok := b.pkg.Info.Uses[x.Sel].(*types.Var); ok {
			return b.varAddr(v)
		}
	case *ast.IndexExpr:
		// &a[i]: points into a's backing object.
		return b.expr(x.X)
	case *ast.StarExpr:
		return b.expr(x.X)
	}
	return b.pt.Solver.NewNode("x@" + b.posID(e.Pos()))
}

func (b *ptBuilder) objectOfIdent(id *ast.Ident) types.Object {
	if obj := b.pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return b.pkg.Info.Defs[id]
}

// compositeLit allocates the literal's object and stores its elements.
func (b *ptBuilder) compositeLit(cl *ast.CompositeLit) int {
	tmp, fresh := b.newTmp(cl, "t")
	if !fresh {
		return tmp
	}
	tv, _ := b.pkg.Info.Types[cl]
	obj := b.allocObj("lit", cl, tv.Type)
	b.pt.Solver.AddAlloc(tmp, obj)
	lt := tv.Type
	if lt != nil {
		if ptr, ok := lt.Underlying().(*types.Pointer); ok {
			lt = ptr.Elem()
		}
	}
	_, isStruct := underlyingStruct(lt)
	for i, el := range cl.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			field := ptIndexField
			if isStruct {
				if id, ok := kv.Key.(*ast.Ident); ok {
					field = id.Name
				}
			} else {
				b.expr(kv.Key)
			}
			b.pt.Solver.AddStore(tmp, field, b.expr(kv.Value))
			continue
		}
		field := ptIndexField
		if isStruct {
			if st, ok := underlyingStruct(lt); ok && i < st.NumFields() {
				field = st.Field(i).Name()
			}
		}
		b.pt.Solver.AddStore(tmp, field, b.expr(el))
	}
	return tmp
}

func underlyingStruct(t types.Type) (*types.Struct, bool) {
	if t == nil {
		return nil, false
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}

// callResults generates a call's constraints (argument/parameter and
// result binding, builtins, conversions) and returns its result nodes.
func (b *ptBuilder) callResults(call *ast.CallExpr) []int {
	if n, ok := b.tmps[call]; ok {
		// Memoized: result nodes were registered on first visit.
		return b.callTmpResults(call, n)
	}

	fun := unparen(call.Fun)

	// Conversion: T(x) aliases x.
	if tv, ok := b.pkg.Info.Types[fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			n := b.expr(call.Args[0])
			b.tmps[call] = n
			return []int{n}
		}
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := b.pkg.Info.ObjectOf(id).(*types.Builtin); isBuiltin {
			return b.builtinCall(id.Name, call)
		}
	}
	if id, ok := fun.(*ast.SelectorExpr); ok {
		_ = id // method values etc. handled below via call graph
	}

	// Evaluate operands.
	var argNodes []int
	for _, a := range call.Args {
		argNodes = append(argNodes, b.expr(a))
	}
	var recvNode = -1
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if s, ok := b.pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			recvNode = b.expr(sel.X)
		}
	}
	if _, ok := fun.(*ast.FuncLit); ok {
		b.expr(fun)
	}

	// Result nodes.
	tmp, _ := b.newTmp(call, "c")
	var results []int
	nres := 0
	if tv, ok := b.pkg.Info.Types[call]; ok && tv.Type != nil {
		if tup, ok := tv.Type.(*types.Tuple); ok {
			nres = tup.Len()
		} else {
			nres = 1
		}
	}
	if nres <= 1 {
		results = []int{tmp}
	} else {
		results = make([]int, nres)
		results[0] = tmp
		for i := 1; i < nres; i++ {
			results[i] = b.pt.Solver.NewNode(fmt.Sprintf("c@%s#%d", b.posID(call.Pos()), i))
		}
	}
	b.callTmpExtra[call] = results

	// Bind candidates through the call graph.
	for _, g := range b.prog.CalleesOf(call) {
		if recvNode >= 0 {
			if rv := g.Sig.Recv(); rv != nil {
				b.pt.Solver.AddCopy(b.varNode(rv), recvNode)
			}
		}
		np := g.Sig.Params().Len()
		for i, an := range argNodes {
			pi := i
			if pi >= np {
				if np == 0 {
					break
				}
				pi = np - 1
			}
			b.pt.Solver.AddCopy(b.varNode(g.Sig.Params().At(pi)), an)
		}
		for i, rn := range b.rets[g.ID] {
			if i < len(results) {
				b.pt.Solver.AddCopy(results[i], rn)
			}
		}
	}
	return results
}

// builtinCall models append/copy/new/make; other builtins are inert.
func (b *ptBuilder) builtinCall(name string, call *ast.CallExpr) []int {
	switch name {
	case "new":
		tmp, fresh := b.newTmp(call, "c")
		if fresh {
			var et types.Type
			if tv, ok := b.pkg.Info.Types[call]; ok && tv.Type != nil {
				if ptr, ok := tv.Type.Underlying().(*types.Pointer); ok {
					et = ptr.Elem()
				}
			}
			b.pt.Solver.AddAlloc(tmp, b.allocObj("new", call, et))
		}
		return []int{tmp}
	case "make":
		tmp, fresh := b.newTmp(call, "c")
		if fresh {
			var t types.Type
			if tv, ok := b.pkg.Info.Types[call]; ok {
				t = tv.Type
			}
			b.pt.Solver.AddAlloc(tmp, b.allocObj("make", call, t))
		}
		return []int{tmp}
	case "append":
		tmp, fresh := b.newTmp(call, "c")
		if !fresh {
			return []int{tmp}
		}
		var t types.Type
		if tv, ok := b.pkg.Info.Types[call]; ok {
			t = tv.Type
		}
		b.pt.Solver.AddAlloc(tmp, b.allocObj("append", call, t))
		if len(call.Args) > 0 {
			b.pt.Solver.AddCopy(tmp, b.expr(call.Args[0]))
		}
		for _, a := range call.Args[1:] {
			b.pt.Solver.AddStore(tmp, ptIndexField, b.expr(a))
		}
		return []int{tmp}
	case "copy":
		if len(call.Args) == 2 {
			dst, src := b.expr(call.Args[0]), b.expr(call.Args[1])
			tmp, fresh := b.newTmp(call, "c")
			if fresh {
				b.pt.Solver.AddLoad(tmp, src, ptIndexField)
				b.pt.Solver.AddStore(dst, ptIndexField, tmp)
			}
			return []int{tmp}
		}
	case "delete", "len", "cap", "close", "min", "max", "clear", "print", "println", "panic", "recover":
		for _, a := range call.Args {
			b.expr(a)
		}
	}
	tmp, _ := b.newTmp(call, "c")
	return []int{tmp}
}

// callTmpResults reconstructs a memoized call's result node list.
func (b *ptBuilder) callTmpResults(call *ast.CallExpr, first int) []int {
	if extra, ok := b.callTmpExtra[call]; ok {
		return extra
	}
	return []int{first}
}

// syncTypeName reports whether t (or its pointer elem) is a sync /
// sync/atomic primitive — those objects synchronize, they are not data.
func syncTypeName(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	p := n.Obj().Pkg().Path()
	return p == "sync" || p == "sync/atomic"
}
