package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// factCacheVersion invalidates every cached entry when the summary
// lattice or extraction semantics change.
//
// v2: the CFG/dataflow layer added taint facts (TaintsReturn,
// ParamTaintToReturn, ParamTaintToSink) and Releases to the Summary;
// v1 entries lack them and must not be silently reused.
//
// v3: the points-to layer added a memoized whole-program solution, and
// the dynamic-surface key component became per-package (a package's
// key now covers only the address-taken functions its own dynamic
// calls can reach, so edits elsewhere no longer invalidate it).
const factCacheVersion = 3

// FactCache memoizes per-package function summaries keyed by a content
// hash, so a repo-wide mba-lint run only recomputes the interprocedural
// fixpoint for packages whose sources (or whose dependencies' sources)
// changed.
//
// Soundness of the key: a package's hash covers its own file contents,
// the hashes of its in-program imports (recursively), and — for
// packages that make dynamic calls (function values, interface
// dispatch) — the package's "dynamic surface": the IDs and
// defining-package hashes of every address-taken function whose
// signature one of the package's own function-value calls resolves
// against, plus every method whose name one of its interface calls
// dispatches on. Dynamic callees need not be imported by the caller,
// so without that component a cached caller could keep facts from a
// deleted callee; keeping it per-package (rather than program-wide)
// means editing one package does not invalidate the others.
type FactCache struct {
	path      string
	entries   map[string]*factCacheEntry
	hashes    map[string]string // pkg path -> content hash, memoized
	dynHashes map[string]string // pkg path -> dynamic-surface hash
	pointsTo  *ptCacheEntry
	// Hits and Misses count lookups, for tests and -v reporting.
	Hits, Misses int
	// PointsToHit reports whether the last program build reused the
	// memoized points-to solution.
	PointsToHit bool
}

type factCacheEntry struct {
	Hash  string                    `json:"hash"`
	Funcs map[string]*cachedSummary `json:"funcs"`
}

type cachedSummary struct {
	IncursCost   bool     `json:"cost,omitempty"`
	ConsumesCtx  bool     `json:"ctx,omitempty"`
	UsesCtx      bool     `json:"ctxUsed,omitempty"`
	Spawns       bool     `json:"spawns,omitempty"`
	DrawsRand    bool     `json:"rand,omitempty"`
	ReturnsError bool     `json:"err,omitempty"`
	Unresolved   bool     `json:"unresolved,omitempty"`
	Acquires     []string `json:"acquires,omitempty"`
	Releases     []string `json:"releases,omitempty"`
	Sentinels    []string `json:"sentinels,omitempty"`

	TaintsReturn       bool   `json:"taintRet,omitempty"`
	ParamTaintToReturn uint64 `json:"taintP2R,omitempty"`
	ParamTaintToSink   uint64 `json:"taintP2S,omitempty"`
}

// ptFieldCache is one field-node creation during the points-to solve,
// replayed in order on a cache hit so node indices line up.
type ptFieldCache struct {
	Obj   int    `json:"obj"`
	Field string `json:"field"`
}

// ptCacheEntry memoizes the whole-program points-to solution: the
// abstract-object table, the field-node creation log, and every
// node's solved set, all in deterministic index order. Hash covers
// every package hash, so any source edit invalidates it.
type ptCacheEntry struct {
	Hash    string         `json:"hash"`
	Objects []string       `json:"objects"`
	Fields  []ptFieldCache `json:"fields"`
	Sets    [][]int        `json:"sets"`
}

type factCacheFile struct {
	Version  int                        `json:"version"`
	Packages map[string]*factCacheEntry `json:"packages"`
	PointsTo *ptCacheEntry              `json:"pointsTo,omitempty"`
}

// OpenFactCache loads the cache at path (a missing or corrupt file
// yields an empty cache; the cache is an accelerator, never a gate).
func OpenFactCache(path string) *FactCache {
	c := &FactCache{path: path, entries: map[string]*factCacheEntry{}, hashes: map[string]string{}, dynHashes: map[string]string{}}
	data, err := os.ReadFile(path)
	if err != nil {
		return c
	}
	var f factCacheFile
	if err := json.Unmarshal(data, &f); err != nil || f.Version != factCacheVersion {
		return c
	}
	if f.Packages != nil {
		c.entries = f.Packages
	}
	c.pointsTo = f.PointsTo
	return c
}

// Save writes the cache back to its path.
func (c *FactCache) Save() error {
	if c.path == "" {
		return nil
	}
	if err := os.MkdirAll(filepath.Dir(c.path), 0o777); err != nil {
		return err
	}
	data, err := json.MarshalIndent(factCacheFile{Version: factCacheVersion, Packages: c.entries, PointsTo: c.pointsTo}, "", "\t")
	if err != nil {
		return err
	}
	return os.WriteFile(c.path, append(data, '\n'), 0o666)
}

// pkgHash computes (and memoizes) the content hash of one program
// package: its own sources plus its in-program imports' hashes.
func (c *FactCache) pkgHash(p *Program, pkg *Package) string {
	if h, ok := c.hashes[pkg.Path]; ok {
		return h
	}
	c.hashes[pkg.Path] = "" // cycle guard; Go packages cannot cycle, but stay safe
	h := sha256.New()
	fmt.Fprintf(h, "v%d\n%s\n", factCacheVersion, pkg.Path)
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		fmt.Fprintf(h, "file %s\n", filepath.Base(name))
		data, err := os.ReadFile(name)
		if err != nil {
			fmt.Fprintf(h, "unreadable %v\n", err)
			continue
		}
		h.Write(data)
	}
	// Imports that are themselves under analysis.
	byPath := map[string]*Package{}
	for _, q := range p.Pkgs {
		byPath[q.Path] = q
	}
	var deps []string
	for _, imp := range pkg.Types.Imports() {
		if _, ok := byPath[imp.Path()]; ok {
			deps = append(deps, imp.Path())
		}
	}
	sort.Strings(deps)
	for _, d := range deps {
		fmt.Fprintf(h, "dep %s %s\n", d, c.pkgHash(p, byPath[d]))
	}
	sum := hex.EncodeToString(h.Sum(nil))
	c.hashes[pkg.Path] = sum
	return sum
}

// dynSurfaceHash hashes the slice of the program's address-taken
// surface that pkg's own dynamic calls can actually reach: functions
// registered under a signature key one of pkg's function-value calls
// uses, and methods named like one of pkg's interface dispatches.
// Returns "" for packages with no dynamic calls.
func (c *FactCache) dynSurfaceHash(p *Program, pkg *Package) string {
	if h, ok := c.dynHashes[pkg.Path]; ok {
		return h
	}
	sigs := map[string]bool{}
	names := map[string]bool{}
	hasDyn := false
	for _, f := range p.Funcs {
		if f.Pkg != pkg {
			continue
		}
		for _, cs := range f.calls {
			if !cs.dynamic {
				continue
			}
			hasDyn = true
			if cs.dynSig != "" {
				sigs[cs.dynSig] = true
			}
			if cs.ifaceMethod != "" {
				names[cs.ifaceMethod] = true
			}
		}
	}
	if !hasDyn {
		c.dynHashes[pkg.Path] = ""
		return ""
	}
	h := sha256.New()
	for _, f := range p.Funcs {
		match := false
		for _, k := range f.addrSigs {
			if sigs[k] {
				match = true
				break
			}
		}
		if !match && f.Obj != nil && f.Sig.Recv() != nil && names[f.Obj.Name()] {
			match = true
		}
		if match {
			fmt.Fprintf(h, "%s %s\n", f.ID, c.pkgHash(p, f.Pkg))
		}
	}
	sum := hex.EncodeToString(h.Sum(nil))
	c.dynHashes[pkg.Path] = sum
	return sum
}

// key is the full cache key of a package within a program.
func (c *FactCache) key(p *Program, pkg *Package) string {
	k := c.pkgHash(p, pkg)
	if dh := c.dynSurfaceHash(p, pkg); dh != "" {
		k += ":" + dh
	}
	return k
}

// programHash covers every analyzed package (the points-to solution is
// whole-program: any edit anywhere invalidates it).
func (c *FactCache) programHash(p *Program) string {
	h := sha256.New()
	fmt.Fprintf(h, "v%d\n", factCacheVersion)
	for _, pkg := range p.Pkgs {
		fmt.Fprintf(h, "%s %s\n", pkg.Path, c.pkgHash(p, pkg))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// storePointsTo memoizes the solved constraint system.
func (c *FactCache) storePointsTo(p *Program, s *PTSolver) {
	if !s.solved {
		return
	}
	e := &ptCacheEntry{Hash: c.programHash(p)}
	for _, o := range s.objects {
		e.Objects = append(e.Objects, o.ID)
	}
	e.Fields = append(e.Fields, s.fieldLog...)
	e.Sets = make([][]int, len(s.nodes))
	for i := range s.nodes {
		e.Sets[i] = sortedIntKeys(s.nodes[i].pts)
	}
	c.pointsTo = e
}

// loadPointsTo tries to reuse a memoized solution for a solver whose
// constraints have just been generated (but not solved). On a hit it
// replays the field-node creation log, fills every node's set, and
// verifies the result is a closed fixpoint; any mismatch falls back to
// a full solve. Returns true when the solution was installed.
func (c *FactCache) loadPointsTo(p *Program, s *PTSolver) bool {
	c.PointsToHit = false
	e := c.pointsTo
	if e == nil || e.Hash != c.programHash(p) {
		return false
	}
	// The generated (pre-solve) object table must be a prefix of the
	// cached one; the rest is created by the field-log replay.
	if len(e.Objects) < len(s.objects) {
		return false
	}
	for i, o := range s.objects {
		if e.Objects[i] != o.ID {
			return false
		}
	}
	n0 := len(s.nodes)
	if len(e.Sets) < n0 {
		return false
	}
	for i, fc := range e.Fields {
		if fc.Obj < 0 || fc.Obj >= len(s.objects) {
			return false
		}
		if got := s.fieldNode(fc.Obj, fc.Field); got != n0+i {
			return false
		}
	}
	if len(s.nodes) != len(e.Sets) || len(s.objects) != len(e.Objects) {
		return false
	}
	for i, o := range s.objects {
		if e.Objects[i] != o.ID {
			return false
		}
	}
	// Verify the candidate is a closed fixpoint containing the freshly
	// generated seeds BEFORE installing it; a corrupt or hand-edited
	// cache then falls back to the normal solve untouched.
	if !s.installVerified(e.Sets) {
		return false
	}
	c.PointsToHit = true
	return true
}

// lookup returns the cached summaries for pkg if its key matches.
func (c *FactCache) lookup(p *Program, pkg *Package) (map[string]*Summary, bool) {
	e, ok := c.entries[pkg.Path]
	if !ok || e.Hash != c.key(p, pkg) {
		c.Misses++
		return nil, false
	}
	c.Hits++
	out := make(map[string]*Summary, len(e.Funcs))
	for id, cs := range e.Funcs {
		s := newSummary()
		s.IncursCost = cs.IncursCost
		s.ConsumesCtx = cs.ConsumesCtx
		s.UsesCtx = cs.UsesCtx
		s.Spawns = cs.Spawns
		s.DrawsRand = cs.DrawsRand
		s.ReturnsError = cs.ReturnsError
		s.Unresolved = cs.Unresolved
		for _, a := range cs.Acquires {
			s.Acquires[a] = true
		}
		for _, a := range cs.Releases {
			s.Releases[a] = true
		}
		for _, a := range cs.Sentinels {
			s.Sentinels[a] = true
		}
		s.TaintsReturn = cs.TaintsReturn
		s.ParamTaintToReturn = cs.ParamTaintToReturn
		s.ParamTaintToSink = cs.ParamTaintToSink
		out[id] = s
	}
	return out, true
}

// store records pkg's converged summaries under its current key.
func (c *FactCache) store(p *Program, pkg *Package) {
	e := &factCacheEntry{Hash: c.key(p, pkg), Funcs: map[string]*cachedSummary{}}
	for _, f := range p.Funcs {
		if f.Pkg != pkg {
			continue
		}
		s, ok := p.Summaries[f.ID]
		if !ok {
			continue
		}
		e.Funcs[f.ID] = &cachedSummary{
			IncursCost:   s.IncursCost,
			ConsumesCtx:  s.ConsumesCtx,
			UsesCtx:      s.UsesCtx,
			Spawns:       s.Spawns,
			DrawsRand:    s.DrawsRand,
			ReturnsError: s.ReturnsError,
			Unresolved:   s.Unresolved,
			Acquires:     s.AcquiresSorted(),
			Releases:     sortedKeys(s.Releases),
			Sentinels:    s.SentinelsSorted(),

			TaintsReturn:       s.TaintsReturn,
			ParamTaintToReturn: s.ParamTaintToReturn,
			ParamTaintToSink:   s.ParamTaintToSink,
		}
	}
	c.entries[pkg.Path] = e
}

// NewProgramCached builds a Program reusing summaries from the cache
// for unchanged packages, then stores the refreshed entries (call
// Save to persist them).
func NewProgramCached(pkgs []*Package, cache *FactCache) *Program {
	return newProgram(pkgs, cache)
}
