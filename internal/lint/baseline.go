package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// baselineVersion guards the on-disk format.
//
// v2: the points-to-backed analyzers (sharedguard, chanlife) joined
// the suite. The entry schema is unchanged, but a v1 baseline predates
// those analyzers and so cannot promise their findings were triaged;
// it must be regenerated (with -update-baseline) rather than silently
// accepted as covering the larger suite.
const baselineVersion = 2

// BaselineEntry is one accepted finding class: an (analyzer, file,
// message) triple with its multiplicity. Line numbers are deliberately
// absent so unrelated edits to a file do not churn the baseline; a
// finding only counts as new when its exact message appears more times
// than the baseline accepts.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

func (e BaselineEntry) key() string {
	return e.Analyzer + "\x00" + e.File + "\x00" + e.Message
}

// Baseline is a committed snapshot of accepted findings. CI enforces a
// ratchet against it: new findings fail the build, and so do stale
// entries (findings the code no longer produces), forcing the baseline
// to only ever shrink through explicit -update-baseline commits.
type Baseline struct {
	Entries []BaselineEntry
}

type baselineFile struct {
	Version int             `json:"version"`
	Entries []BaselineEntry `json:"entries"`
}

// LoadBaseline reads a baseline file; a missing file is an empty
// baseline (the ratchet's fixed point).
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, err
	}
	var f baselineFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("lint: parsing baseline %s: %w", path, err)
	}
	if f.Version != baselineVersion {
		return nil, fmt.Errorf("lint: baseline %s has version %d, want %d", path, f.Version, baselineVersion)
	}
	return &Baseline{Entries: f.Entries}, nil
}

// Save writes the baseline in canonical (sorted, indented) form.
func (b *Baseline) Save(path string) error {
	b.sort()
	data, err := json.MarshalIndent(baselineFile{Version: baselineVersion, Entries: b.Entries}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o666)
}

func (b *Baseline) sort() {
	if b.Entries == nil {
		b.Entries = []BaselineEntry{}
	}
	sort.Slice(b.Entries, func(i, j int) bool { return b.Entries[i].key() < b.Entries[j].key() })
}

// NewBaseline aggregates diagnostics into baseline entries. files maps
// each diagnostic to the path recorded in the baseline (normally
// module-root-relative, so the file is machine-independent).
func NewBaseline(diags []Diagnostic, file func(Diagnostic) string) *Baseline {
	counts := map[string]*BaselineEntry{}
	for _, d := range diags {
		e := BaselineEntry{Analyzer: d.Analyzer, File: file(d), Message: d.Message}
		if prev, ok := counts[e.key()]; ok {
			prev.Count++
			continue
		}
		e.Count = 1
		counts[e.key()] = &e
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b := &Baseline{}
	for _, k := range keys {
		b.Entries = append(b.Entries, *counts[k])
	}
	b.sort()
	return b
}

// Apply splits current findings against the baseline: kept are the
// diagnostics not covered by the baseline (new findings, in input
// order), and stale are baseline entries the current run no longer
// fully produces (the ratchet violation: the baseline must be
// regenerated to shrink).
func (b *Baseline) Apply(diags []Diagnostic, file func(Diagnostic) string) (kept []Diagnostic, stale []BaselineEntry) {
	budget := map[string]int{}
	for _, e := range b.Entries {
		budget[e.key()] += e.Count
	}
	for _, d := range diags {
		k := BaselineEntry{Analyzer: d.Analyzer, File: file(d), Message: d.Message}.key()
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		kept = append(kept, d)
	}
	for _, e := range b.Entries {
		if left := budget[e.key()]; left > 0 {
			s := e
			s.Count = left
			stale = append(stale, s)
			budget[e.key()] = 0
		}
	}
	sort.Slice(stale, func(i, j int) bool { return stale[i].key() < stale[j].key() })
	return kept, stale
}
