package audit

import (
	"math"
	"time"

	"mba/internal/api"
	"mba/internal/fleet"
)

// CheckLedger verifies the budget arbiter's conservation laws on a
// final ledger snapshot: credits are never created or destroyed
// (available + reserved + committed == total), the global reserved and
// committed pools equal the per-account sums, no account overruns its
// quota, nothing is left reserved at rest (every admission was either
// committed or refunded), and — the law that makes cost axes truthful —
// the committed pool equals exactly the calls the walkers charged.
// chargedByUnit[i] is unit i's reported Cost; pass nil to skip the
// charge cross-check.
func (a Auditor) CheckLedger(ls api.LedgerStats, chargedByUnit []int) *Report {
	r := &Report{}

	r.check()
	if ls.Available+ls.Reserved+ls.Committed != ls.Total {
		r.failf("ledger-conservation", "available %d + reserved %d + committed %d != total %d",
			ls.Available, ls.Reserved, ls.Committed, ls.Total)
	}
	sumReserved, sumCommitted := 0, 0
	for _, acct := range ls.Accounts {
		sumReserved += acct.Reserved
		sumCommitted += acct.Committed
		r.check()
		if acct.Reserved < 0 || acct.Committed < 0 || acct.Quota < 0 {
			r.failf("ledger-conservation", "account %d has negative books: %+v", acct.ID, acct)
		}
		r.check()
		if acct.Reserved+acct.Committed > acct.Quota {
			r.failf("ledger-fairness", "account %d holds %d reserved + %d committed beyond quota %d",
				acct.ID, acct.Reserved, acct.Committed, acct.Quota)
		}
	}
	r.check()
	if sumReserved != ls.Reserved {
		r.failf("ledger-conservation", "account reservations sum to %d, global reserved is %d", sumReserved, ls.Reserved)
	}
	r.check()
	if sumCommitted != ls.Committed {
		r.failf("ledger-conservation", "account commitments sum to %d, global committed is %d", sumCommitted, ls.Committed)
	}
	r.check()
	if ls.Reserved != 0 {
		r.failf("ledger-release", "%d credits still reserved at rest; every reservation must be committed or refunded", ls.Reserved)
	}
	if chargedByUnit != nil {
		charged := 0
		for _, c := range chargedByUnit {
			charged += c
		}
		r.check()
		if ls.Committed != charged {
			r.failf("ledger-charge", "ledger committed %d credits but walkers charged %d calls", ls.Committed, charged)
		}
		r.check()
		if len(chargedByUnit) != len(ls.Accounts) {
			r.failf("ledger-charge", "%d units reported charges but ledger holds %d accounts",
				len(chargedByUnit), len(ls.Accounts))
		} else {
			for i, acct := range ls.Accounts {
				if acct.Committed != chargedByUnit[i] {
					r.failf("ledger-charge", "account %d committed %d but its unit charged %d",
						acct.ID, acct.Committed, chargedByUnit[i])
					break
				}
			}
		}
	}
	return r
}

// CheckFleet verifies a merged fleet result: unit costs and samples
// sum to the fleet totals, the ledger balances against exactly the
// per-unit charges, degrade accounting is coherent, and no unit's
// virtual duration exceeds the fleet's (walkers wait concurrently, so
// the fleet clock is the max, never less).
func (a Auditor) CheckFleet(res fleet.Result) *Report {
	r := &Report{}

	cost, samples, parks, drained := 0, 0, 0, 0
	charged := make([]int, len(res.Units))
	anyDegraded := false
	for i := range res.Units {
		u := &res.Units[i]
		cost += u.Cost
		samples += u.Samples
		parks += u.Parks
		drained += u.Drained
		charged[i] = u.Cost
		anyDegraded = anyDegraded || u.Degraded
		r.check()
		if u.Cost != u.Stats.Calls {
			r.failf("budget-conservation", "unit %d Cost=%d but Stats.Calls=%d", u.Unit, u.Cost, u.Stats.Calls)
		}
		r.check()
		if u.Cost > u.Quota {
			r.failf("ledger-fairness", "unit %d charged %d calls beyond its quota %d", u.Unit, u.Cost, u.Quota)
		}
		r.check()
		if u.Degraded && u.DegradedBy == nil {
			r.failf("degrade-accounting", "unit %d Degraded with nil DegradedBy", u.Unit)
		}
	}
	r.check()
	if cost != res.Cost {
		r.failf("budget-conservation", "unit costs sum to %d, fleet Cost is %d", cost, res.Cost)
	}
	r.check()
	if samples != res.Samples {
		r.failf("budget-conservation", "unit samples sum to %d, fleet Samples is %d", samples, res.Samples)
	}
	r.check()
	if parks != res.Parks {
		r.failf("schedule-accounting", "unit parks sum to %d, fleet Parks is %d", parks, res.Parks)
	}
	r.check()
	if drained != res.DrainedSteps {
		r.failf("schedule-accounting", "unit drained steps sum to %d, fleet DrainedSteps is %d", drained, res.DrainedSteps)
	}
	r.check()
	if res.Degraded != anyDegraded {
		r.failf("degrade-accounting", "fleet Degraded=%v but units say %v", res.Degraded, anyDegraded)
	}
	r.check()
	if res.UnitsRun != len(res.Units) || res.UnitsRun+res.Shed != res.UnitsPlanned {
		r.failf("shed-accounting", "UnitsRun=%d Shed=%d UnitsPlanned=%d len(Units)=%d do not reconcile",
			res.UnitsRun, res.Shed, res.UnitsPlanned, len(res.Units))
	}
	r.Merge(a.CheckLedger(res.Ledger, charged))
	return r
}

// CheckSchedule verifies the cooperative scheduler's virtual-time
// books against a merged fleet result: every unit's trace conserves
// its virtual clock (Σ(Busy+Park) == api.VirtualOf(preset, stats)),
// parked segments are counted exactly once each, and the reported
// makespan is exactly the deterministic replay of the traces at the
// reported slot count — and is bounded below by the two trivial
// schedules (no slot can finish before the busiest unit, and slots
// times makespan must cover the total busy time).
func (a Auditor) CheckSchedule(res fleet.Result, preset api.Preset) *Report {
	r := &Report{}

	traces := make([][]fleet.Segment, len(res.Units))
	var maxBusy, totalBusy time.Duration
	for i := range res.Units {
		u := &res.Units[i]
		var busy, park time.Duration
		parked := 0
		for _, seg := range u.Trace {
			busy += seg.Busy
			park += seg.Park
			if seg.Park > 0 {
				parked++
			}
			r.check()
			if seg.Busy < 0 || seg.Park < 0 {
				r.failf("schedule-conservation", "unit %d has a negative trace segment %+v", u.Unit, seg)
			}
		}
		r.check()
		if len(u.Trace) > 0 && busy+park != api.VirtualOf(preset, u.Stats) {
			r.failf("schedule-conservation", "unit %d trace sums to %v busy + %v park, virtual clock says %v",
				u.Unit, busy, park, api.VirtualOf(preset, u.Stats))
		}
		r.check()
		if len(u.Trace) > 0 && parked != u.Parks {
			r.failf("schedule-accounting", "unit %d trace holds %d parked segments but Parks=%d", u.Unit, parked, u.Parks)
		}
		traces[i] = u.Trace
		if len(traces[i]) == 0 {
			// merge synthesizes a single blocking segment for units
			// carried verbatim from a prior flight; mirror it so the
			// replay cross-check sees the same input.
			if v := api.VirtualOf(preset, u.Stats); v > 0 {
				traces[i] = []fleet.Segment{{Busy: v}}
			}
		}
		if busy == 0 && len(u.Trace) == 0 {
			busy = api.VirtualOf(preset, u.Stats)
		}
		totalBusy += busy
		if busy > maxBusy {
			maxBusy = busy
		}
	}
	slots := res.Slots
	if slots < 1 {
		slots = 1
	}
	r.check()
	if replay := fleet.ReplayMakespan(traces, slots); replay != res.Makespan {
		r.failf("schedule-replay", "reported makespan %v != deterministic replay %v at %d slots",
			res.Makespan, replay, slots)
	}
	r.check()
	if res.Makespan < maxBusy {
		r.failf("schedule-bound", "makespan %v beats the busiest unit's %v of slot time", res.Makespan, maxBusy)
	}
	r.check()
	if lower := totalBusy / time.Duration(slots); res.Makespan < lower {
		r.failf("schedule-bound", "makespan %v beats total busy %v over %d slots (%v)",
			res.Makespan, totalBusy, slots, lower)
	}
	return r
}

// CheckParallelDeterminism verifies the fleet's headline invariant:
// the same logical plan executed at different parallelism levels must
// produce bit-identical estimates. estimates[i] is the merged fleet
// estimate of the i-th run (all with identical seed, budget, and unit
// plan; only goroutine counts differ).
func (a Auditor) CheckParallelDeterminism(estimates []float64) *Report {
	r := &Report{}
	if len(estimates) == 0 {
		return r
	}
	first := estimates[0]
	for i, e := range estimates[1:] {
		r.check()
		if math.Float64bits(e) != math.Float64bits(first) {
			r.failf("parallel-determinism",
				"estimate %d (%v, bits %#x) differs from estimate 0 (%v, bits %#x); parallelism leaked into the merge",
				i+1, e, math.Float64bits(e), first, math.Float64bits(first))
		}
	}
	return r
}
