// Package workload defines the evaluation workloads of §6 of the
// paper: the keyword catalog with its three frequency archetypes
// (Figure 7 — `privacy` is low-frequency with occasional spikes,
// `new york` perpetually popular, `boston` medium with one singular
// spike on the Marathon-bombing day), the additional Table 2/Table 3
// keywords, and the platform configurations the benchmark harness
// runs against.
//
// The simulated observation window follows the paper: Jan 1 – Oct 31,
// 2013 (304 days), with day indices matching 2013 dates (the Boston
// spike at day 104 = Apr 15, the Snowden leak around day 155 = early
// June).
package workload

import (
	"fmt"
	"sync"

	"mba/internal/platform"
)

// HorizonDays is the paper's observation window: Jan 1 – Oct 31, 2013.
const HorizonDays = 304

// Keywords returns the full catalog: the three figure keywords plus
// the Table 2/Table 3 keywords. Rates are scaled for the ~60k-user
// bench platform; adoption parameters lean on the platform defaults.
func Keywords() []platform.KeywordConfig {
	return []platform.KeywordConfig{
		{
			// Low frequency, occasional spikes (Snowden leaks). The
			// paper's privacy subgraph covers 0.4% of active users but
			// still counts ~894k users — large relative to any sampling
			// budget — so the figure keywords get generous reach here.
			Name:        "privacy",
			SeedsPerDay: 5.0,
			Spikes: []platform.Spike{
				{Day: 155, DurationDays: 10, Multiplier: 8},
				{Day: 240, DurationDays: 5, Multiplier: 4},
			},
			AffinityFrac: 0.25,
			InterestHigh: 0.6,
		},
		{
			// Perpetually popular and high frequency.
			Name:         "new york",
			SeedsPerDay:  12,
			AffinityFrac: 0.35,
			InterestHigh: 0.6,
		},
		{
			// Medium frequency, singular spike on Apr 15 (day 104).
			Name:        "boston",
			SeedsPerDay: 4,
			Spikes: []platform.Spike{
				{Day: 104, DurationDays: 7, Multiplier: 25},
			},
			AffinityFrac: 0.25,
			InterestHigh: 0.55,
		},
		{
			// Popular around the new-year fiscal-cliff deadline.
			Name:        "fiscalcliff",
			SeedsPerDay: 1.5,
			Spikes: []platform.Spike{
				{Day: 0, DurationDays: 15, Multiplier: 12},
			},
			AffinityFrac: 0.1,
		},
		{
			// Early-February spike.
			Name:        "super bowl",
			SeedsPerDay: 2.0,
			Spikes: []platform.Spike{
				{Day: 28, DurationDays: 10, Multiplier: 15},
			},
			AffinityFrac: 0.2,
		},
		{
			Name:         "obamacare",
			SeedsPerDay:  2.2,
			AffinityFrac: 0.12,
			Spikes: []platform.Spike{
				{Day: 270, DurationDays: 20, Multiplier: 6}, // Oct rollout
			},
		},
		{
			Name:         "tunisia",
			SeedsPerDay:  2.0,
			AffinityFrac: 0.12,
			InterestHigh: 0.55,
		},
		{
			// Obscure pharmaceutical keyword — the smallest subgraph in
			// the catalog, yet still thousands of users at bench scale
			// (the paper's obscure keywords also have large absolute
			// subgraphs on Twitter).
			Name:         "simvastatin",
			SeedsPerDay:  1.5,
			AffinityFrac: 0.10,
			InterestHigh: 0.55,
		},
		{
			Name:         "oprah winfrey",
			SeedsPerDay:  2.5,
			AffinityFrac: 0.15,
			InterestHigh: 0.55,
		},
		{
			// Stock ticker.
			Name:         "$wmt",
			SeedsPerDay:  1.5,
			AffinityFrac: 0.10,
			InterestHigh: 0.55,
		},
		{
			Name:         "lipitor",
			SeedsPerDay:  1.5,
			AffinityFrac: 0.10,
			InterestHigh: 0.55,
		},
		{
			Name:        "tahrir",
			SeedsPerDay: 1.8,
			Spikes: []platform.Spike{
				{Day: 180, DurationDays: 12, Multiplier: 10}, // July events
			},
			AffinityFrac: 0.11,
			InterestHigh: 0.55,
		},
	}
}

// Table2Keywords are the seven keywords of the paper's Table 2.
func Table2Keywords() []string {
	return []string{"fiscalcliff", "new york", "super bowl", "obamacare", "tunisia", "simvastatin", "oprah winfrey"}
}

// Table3Keywords are the seven keywords of the paper's Table 3.
func Table3Keywords() []string {
	return []string{"boston", "oprah winfrey", "simvastatin", "$wmt", "lipitor", "tunisia", "tahrir"}
}

// Scale selects a benchmark platform size.
type Scale int

// Platform scales. Test is for unit/integration tests; Bench is the
// default for regenerating the paper's tables and figures; Large
// stresses the regime where sampling budgets are far below crawl cost.
const (
	Test Scale = iota
	Bench
	Large
)

func (s Scale) String() string {
	switch s {
	case Test:
		return "test"
	case Bench:
		return "bench"
	case Large:
		return "large"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// Config returns the platform configuration for a scale. All scales
// simulate the same keyword catalog over the same 304-day window.
func Config(s Scale) platform.Config {
	cfg := platform.Config{
		Seed:                  2013,
		HorizonDays:           HorizonDays,
		TimelineCap:           3200,
		BackgroundPostsPerDay: 1.2,
		GenderKnownProb:       0.35,
		Keywords:              Keywords(),
	}
	switch s {
	case Test:
		cfg.NumUsers = 12000
		cfg.NumCommunities = 50
		cfg.IntraEdgesPerUser = 6
		cfg.InterEdgesPerUser = 1.2
	case Large:
		cfg.NumUsers = 500000
		cfg.NumCommunities = 1100
		cfg.IntraEdgesPerUser = 7
		cfg.InterEdgesPerUser = 1.5
	default: // Bench
		cfg.NumUsers = 250000
		cfg.NumCommunities = 550
		cfg.IntraEdgesPerUser = 7
		cfg.InterEdgesPerUser = 1.5
	}
	// Keyword reach is calibrated for a 100k population; scale the
	// community-affinity fractions down as the platform grows so the
	// keywords keep roughly constant *absolute* subgraph sizes while
	// their population *fraction* shrinks toward the paper's regime
	// (privacy matches only 0.4% of active Twitter users).
	if cfg.NumUsers > 100000 {
		f := 100000.0 / float64(cfg.NumUsers)
		for i := range cfg.Keywords {
			cfg.Keywords[i].AffinityFrac *= f
		}
	}
	return cfg
}

var (
	cacheMu sync.Mutex
	cache   = make(map[Scale]*platform.Platform)
)

// Get returns the (process-cached) generated platform for a scale.
// Generation is deterministic, so every caller observes the same
// platform and its exact ground truths.
func Get(s Scale) (*platform.Platform, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if p, ok := cache[s]; ok {
		return p, nil
	}
	p, err := platform.New(Config(s))
	if err != nil {
		return nil, err
	}
	cache[s] = p
	return p, nil
}
