package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrSentinel enforces the sentinel-error discipline the retry,
// checkpoint, and fleet layers depend on. The program's sentinels
// (every package-level `var ErrX` of type error) cross many wrapping
// layers — fmt.Errorf("%w", ...) at each hop — so:
//
//  1. wrapping must use %w, never %v/%s (a %v flattens the chain and
//     errors.Is stops matching downstream);
//  2. tests must use errors.Is, never == or != (identity comparison
//     can never match a wrapped chain) or switch-on-error;
//  3. never string matching on err.Error() — messages are not API.
//
// The whole-program summaries tell the analyzer which sentinels are
// wrapped somewhere in the program, making the == diagnosis concrete:
// the comparison is not merely in poor taste, it is dead code on every
// wrapped path.
var ErrSentinel = &Analyzer{
	Name: "errsentinel",
	Doc: "sentinel errors must be wrapped with %w and tested with errors.Is; " +
		"==/!=, switch-on-error, and string matching cannot see wrapped chains",
	Run: runErrSentinel,
}

func runErrSentinel(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				checkErrCompare(pass, x)
			case *ast.SwitchStmt:
				checkErrSwitch(pass, x)
			case *ast.CallExpr:
				checkErrWrap(pass, x)
				checkErrStringMatch(pass, x)
			}
			return true
		})
	}
	return nil
}

// errAssignTarget is the universe error type, the assignability target
// for "is this expression an error".
var errAssignTarget = types.Universe.Lookup("error").Type()

// isErrorExpr reports whether e has a static type assignable to error
// and is not the nil literal (err == nil is the one legitimate
// identity test).
func isErrorExpr(info *types.Info, e ast.Expr) bool {
	if id, ok := unparen(e).(*ast.Ident); ok && id.Name == "nil" && info.Uses[id] == types.Universe.Lookup("nil") {
		return false
	}
	tv, ok := info.Types[unparen(e)]
	if !ok || tv.Type == nil {
		return false
	}
	if b, ok := tv.Type.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return types.AssignableTo(tv.Type, errAssignTarget)
}

// errorCallOn matches `x.Error()` on an error-typed x, the
// string-matching escape hatch.
func errorCallOn(info *types.Info, e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	return isErrorExpr(info, sel.X)
}

// checkErrCompare flags ==/!= between two non-nil errors, and string
// comparison against err.Error().
func checkErrCompare(pass *Pass, x *ast.BinaryExpr) {
	if x.Op != token.EQL && x.Op != token.NEQ {
		return
	}
	if errorCallOn(pass.TypesInfo, x.X) || errorCallOn(pass.TypesInfo, x.Y) {
		pass.Reportf(x.OpPos,
			"error matched by comparing Error() strings; messages are not API — use errors.Is against the sentinel")
		return
	}
	if !isErrorExpr(pass.TypesInfo, x.X) || !isErrorExpr(pass.TypesInfo, x.Y) {
		return
	}
	pass.Reportf(x.OpPos, "%s", identityCompareMessage(pass, x.X, x.Y))
}

// identityCompareMessage names the sentinel when one side is one, and
// strengthens the message when that sentinel is wrapped somewhere in
// the program (the comparison is then provably dead on wrapped paths).
func identityCompareMessage(pass *Pass, lhs, rhs ast.Expr) string {
	name := sentinelNameOfEither(pass, lhs, rhs)
	if name == "" {
		return "errors compared with ==/!=; identity can never match a wrapped chain — use errors.Is"
	}
	if pass.Prog != nil && pass.Prog.SentinelWrapped(name) {
		return name + " is wrapped with %w elsewhere in the program, so this ==/!= can never match the wrapped chain; use errors.Is"
	}
	return name + " compared with ==/!=; sentinels must be tested with errors.Is so wrapping stays transparent"
}

func sentinelNameOfEither(pass *Pass, exprs ...ast.Expr) string {
	if pass.Prog == nil {
		return ""
	}
	pkg := pass.progPackage()
	if pkg == nil {
		return ""
	}
	for _, e := range exprs {
		if name, ok := pass.Prog.SentinelName(pkg, e); ok {
			return name
		}
	}
	return ""
}

// progPackage finds the Program's Package for the pass's types package.
func (p *Pass) progPackage() *Package {
	if p.Prog == nil {
		return nil
	}
	for _, pkg := range p.Prog.Pkgs {
		if pkg.Types == p.Pkg {
			return pkg
		}
	}
	return nil
}

// checkErrSwitch flags `switch err { case ErrX: ... }`.
func checkErrSwitch(pass *Pass, x *ast.SwitchStmt) {
	if x.Tag == nil || !isErrorExpr(pass.TypesInfo, x.Tag) {
		return
	}
	for _, stmt := range x.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if isErrorExpr(pass.TypesInfo, e) {
				pass.Reportf(e.Pos(),
					"switch on error identity can never match a wrapped chain; use if/else with errors.Is")
			}
		}
	}
}

// checkErrWrap flags fmt.Errorf formatting an error argument with a
// verb other than %w.
func checkErrWrap(pass *Pass, call *ast.CallExpr) {
	format, args, ok := errorfCall(pass.TypesInfo, call)
	if !ok {
		return
	}
	verbs := fmtVerbs(format)
	for i, arg := range args {
		if i >= len(verbs) || verbs[i] == 'w' || verbs[i] == '*' {
			continue
		}
		if !isErrorExpr(pass.TypesInfo, arg) {
			continue
		}
		pass.Reportf(arg.Pos(),
			"error %s formatted with %%%c flattens the chain; wrap with %%w so callers can errors.Is the sentinel", types.ExprString(arg), verbs[i])
	}
}

// stringMatchFuncs are the strings-package predicates that must not be
// applied to err.Error().
var stringMatchFuncs = map[string]bool{
	"Contains": true, "HasPrefix": true, "HasSuffix": true,
	"EqualFold": true, "Index": true, "Count": true,
}

// checkErrStringMatch flags strings.Contains(err.Error(), ...) and
// friends.
func checkErrStringMatch(pass *Pass, call *ast.CallExpr) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !stringMatchFuncs[sel.Sel.Name] {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || importedPkgPath(pass.TypesInfo, id) != "strings" {
		return
	}
	for _, arg := range call.Args {
		if errorCallOn(pass.TypesInfo, arg) {
			pass.Reportf(call.Pos(),
				"error matched with strings.%s on Error() output; messages are not API — use errors.Is against the sentinel", sel.Sel.Name)
			return
		}
	}
}
