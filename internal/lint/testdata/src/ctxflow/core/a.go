// Package core is a ctxflow fixture: the package basename puts it in
// the analyzer's scope, and the charged api.Client stubs give its
// functions IncursCost summaries.
package core

import (
	"context"

	"api"
)

// costly reaches a charged endpoint; every caller below is therefore
// on a charged call path.
func costly(c *api.Client) error {
	_, err := c.Search("x")
	return err
}

// threaded uses its context properly.
func threaded(ctx context.Context, c *api.Client) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return costly(c)
}

// BadFresh mints a context below the top level.
func BadFresh(c *api.Client) error {
	ctx := context.Background() // want `context\.Background\(\) on a charged call path`
	return threaded(ctx, c)
}

// BadTODO is just as severed.
func BadTODO(c *api.Client) error {
	return threaded(context.TODO(), c) // want `context\.TODO\(\) on a charged call path`
}

// DropsCtx receives a context but never threads it into the charged
// calls it makes.
func DropsCtx(ctx context.Context, c *api.Client) error { // want `receives a context\.Context and \(transitively\) makes charged api\.Client calls but never threads`
	return costly(c)
}

// Entry shows the one sanctioned Background: the nil-default guard at
// an entry point.
func Entry(ctx context.Context, c *api.Client) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return threaded(ctx, c)
}

// Free never reaches a charged call, so a fresh context is fine.
func Free() context.Context {
	return context.Background()
}
