// Package fleet orchestrates a fleet of concurrent MA-SRW/MA-TARW
// walkers over one platform and one shared API-call budget — the
// paper's repeated-independent-walk averaging (§6) run in parallel, the
// way a production estimation service would.
//
// The design separates two knobs that look similar but must not be:
//
//   - Units is the STATISTICAL plan: how many independent logical
//     walkers the budget is split across. Each unit gets a derived
//     seed, a deterministic quota of the budget (arbitrated by an
//     api.Ledger), and its own api.Server with derived fault/churn
//     seeds, so a unit's entire run is a pure function of the fleet
//     seed and configuration.
//   - Parallelism is the EXECUTION plan: how many goroutines drain the
//     unit run queue. It affects wall-clock time and nothing else.
//
// Because no unit shares mutable state with another (the read-only
// platform is shared; servers, clients, sessions, and RNGs are
// per-unit) and the merge folds unit results in unit order with
// compensated summation, the fleet estimate is bit-identical at any
// parallelism — the determinism invariant internal/audit checks and
// the regression tests assert for walkers ∈ {1, 2, 8}.
//
// Scheduling: units advance one SEGMENT (one walker run between
// interruptions) per scheduler turn, drawn from a run queue ordered by
// (virtual ready time, unit index). In cooperative mode (Cooperative:
// true) each unit's client yields on 429 instead of blocking
// (api.Client.YieldOnThrottle): the throttled segment PARKS — its
// window wait is booked, the unit re-enters the queue at the virtual
// time the window reopens, and the execution slot is immediately free
// for a sibling. Parks are scheduling events, not failures: they do
// not count against MaxResumes, do not feed the no-progress cutoff,
// and a park-resumed walker first drains the free warm-cache steps the
// park left behind (core.Result.DrainedSteps). Each unit also records
// a per-segment trace of busy versus parked virtual time; the merge
// replays the traces through a deterministic list scheduler
// (ReplayMakespan) to report the fleet's virtual makespan — where the
// cooperative win over blocking waiters shows up — without the
// estimate depending on Cooperative at all in fault-free runs.
//
// Robustness: each unit runs the degrade→checkpoint→resume loop from
// PR 1/3 against its own quota; a stall-watchdog trip (no budget
// progress in virtual time) cancels and reseeds the walker on a fresh
// RNG segment — in cooperative mode the fleet applies the same
// watchdog across consecutive zero-progress parks, so a wedged walker
// still trips instead of parking forever; a panicking walker is
// isolated into a Degraded unit result; context cancellation and
// virtual deadlines propagate through api.Client to every charged call
// and surface as Degraded partial results, never hangs. The whole
// fleet can checkpoint mid-flight and resume later, unit by unit.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"mba/internal/api"
	"mba/internal/core"
	"mba/internal/model"
	"mba/internal/platform"
	"mba/internal/query"
	"mba/internal/stats"
)

// ErrWalkerPanic marks a unit whose walker goroutine panicked; the
// panic was isolated into a Degraded unit result instead of crashing
// the fleet.
var ErrWalkerPanic = errors.New("fleet: walker panicked")

// Seed-derivation strides. Each per-unit stream (walk RNG, fault
// schedule, churn schedule) uses its own large prime stride so unit
// streams never collide with each other or with the per-segment
// derivation inside core (opts.Seed + segments*0x9e3779b9).
const (
	walkSeedStride  = 15485863
	faultSeedStride = 32452843
	churnSeedStride = 49979687
)

// WalkFn runs one walker segment: a full estimation run for the given
// derived seed over the session, optionally resuming a prior segment's
// checkpoint. Implementations build the algorithm options (including
// Ctx, so cancellation threads into the walk) and call core.RunSRW,
// core.RunMR, or core.RunTARW.
type WalkFn func(ctx context.Context, s *core.Session, seed int64, resume *core.Checkpoint) (core.Result, error)

// Config configures a fleet run.
type Config struct {
	// Platform is the (read-only, safely shared) simulated platform.
	Platform *platform.Platform
	// Preset is the API interface preset (default Twitter).
	Preset api.Preset
	// Faults configures per-unit fault injection; each unit's server
	// derives its own fault seed from Faults.Seed, Seed, and the unit
	// index, so fault schedules are independent across units and
	// deterministic regardless of goroutine interleaving.
	Faults api.Faults
	// Churn, when its rate is positive, enables per-unit platform churn
	// overlays (again with derived per-unit seeds).
	Churn platform.ChurnConfig
	// Query is the aggregate query under estimation.
	Query query.Query
	// Interval is the level-graph interval T (0 = one day).
	Interval model.Tick
	// Walk runs one walker segment. Required.
	Walk WalkFn
	// Budget is the fleet's total API-call budget, partitioned across
	// units by the ledger. Required (a fleet cannot arbitrate an
	// unlimited budget).
	Budget int
	// Seed derives every per-unit seed.
	Seed int64
	// Units is the number of logical walkers the budget is split across
	// (default 8). This is the statistical plan: changing it changes
	// the estimate; changing Parallelism does not.
	Units int
	// Parallelism is the number of worker goroutines executing units
	// (default Units; capped at Units).
	Parallelism int
	// Cooperative switches throttled walkers from blocking to parking:
	// each unit's client yields on 429 (api.ErrThrottled) and the unit
	// re-enters the run queue at the window's virtual reopen time,
	// freeing its slot for siblings. Fault-free runs are bit-identical
	// to blocking mode (no 429 → no park → identical segments); under
	// rate-limit faults the estimate may differ (parks resegment the
	// walk) but the virtual makespan collapses — see Result.Makespan.
	Cooperative bool
	// MinUnitBudget is the load-shedding floor (default 250): when the
	// budget cannot give every unit at least this many calls, the fleet
	// deterministically sheds units down to Budget/MinUnitBudget
	// (minimum 1) instead of starving all of them.
	MinUnitBudget int
	// Deadline, when positive, bounds each unit in virtual time
	// (cumulative across its resume segments); a unit past it degrades
	// with api.ErrDeadlineExceeded. Virtual deadlines are deterministic,
	// so deadline hits do not break the parallelism invariance.
	Deadline time.Duration
	// StallWait arms the per-unit stall watchdog (see
	// api.RetryPolicy.StallWait); 0 leaves it off. In cooperative mode
	// the fleet additionally applies it across segments: consecutive
	// zero-progress parks accruing more than StallWait of throttle wait
	// count as a watchdog trip (and against MaxResumes), so a wedged
	// walker cannot hide behind parking.
	StallWait time.Duration
	// Policy overrides the per-unit retry policy (nil = default).
	Policy *api.RetryPolicy
	// MaxResumes bounds the per-unit degrade→resume loop (default 100).
	// Throttle parks are exempt: a 10%-429 storm parks a unit far more
	// often than any sensible resume bound, and parking is scheduling,
	// not failure. Parks are instead bounded by a generous backstop
	// (8×quota+1024) so even a fully wedged unit terminates.
	MaxResumes int
	// Resume continues a prior fleet run from its checkpoint: finished
	// units keep their results, interrupted units resume from their
	// per-unit checkpoints, and prior spend is carried forward in the
	// ledger so quotas keep binding.
	Resume *Checkpoint
	// Autosave, when non-nil, receives a copy of a unit's cumulative
	// result after every scheduler turn (including parks and degrades),
	// so a durable store can persist per-unit checkpoints as the fleet
	// runs. Called from worker goroutines — implementations must be
	// goroutine-safe. Save failures are the sink's problem: the fleet
	// never blocks or degrades on its autosave sink.
	Autosave func(u UnitResult)
}

// PlannedUnits returns the number of logical walkers Run will actually
// launch after deterministic load shedding: min(Units, max(1,
// Budget/MinUnitBudget)). A pure function of the configuration —
// durable stores use it to size per-unit checkpoint mirrors and to
// validate that a resumed plan matches the saved one.
func (c Config) PlannedUnits() int {
	c = c.withDefaults()
	units := c.Units
	if m := c.Budget / c.MinUnitBudget; m < units {
		units = m
		if units < 1 {
			units = 1
		}
	}
	return units
}

func (c Config) withDefaults() Config {
	if c.Preset.Name == "" {
		c.Preset = api.Twitter()
	}
	if c.Interval <= 0 {
		c.Interval = model.Day
	}
	if c.Units <= 0 {
		c.Units = 8
	}
	if c.Parallelism <= 0 {
		c.Parallelism = c.Units
	}
	if c.MinUnitBudget <= 0 {
		c.MinUnitBudget = 250
	}
	if c.MaxResumes <= 0 {
		c.MaxResumes = 100
	}
	return c
}

// Segment is one scheduler turn of a unit's virtual time, split into
// the part that held an execution slot (Busy) and the part the unit
// spent parked on a yielded throttle wait with its slot handed back
// (Park). In blocking mode Park is always zero — waits hold the slot
// and are folded into Busy. Per unit, Σ(Busy+Park) over the trace
// equals api.VirtualOf(preset, unit.Stats) exactly (audited by
// audit.CheckSchedule).
type Segment struct {
	Busy time.Duration
	Park time.Duration
}

// UnitResult is one logical walker's final outcome.
type UnitResult struct {
	// Unit is the unit index (0-based; merge order).
	Unit int
	// Seed is the unit's derived walk seed.
	Seed int64
	// Quota is the unit's budget share fixed by the ledger.
	Quota int
	// Estimate is the unit's final estimate (NaN when its quota bought
	// none).
	Estimate float64
	// Cost, Samples, Stats, and Heal are cumulative across the unit's
	// resume segments.
	Cost    int
	Samples int
	Stats   api.Stats
	Heal    core.HealStats
	// Resumes counts fault-driven checkpoint resumes (throttle parks are
	// counted separately in Parks).
	Resumes int
	// Parks counts cooperative throttle parks: segments that ended on a
	// yielded 429, booked the window wait, and re-entered the run queue.
	Parks int
	// Drained counts the free warm-cache steps park-resumed segments
	// recovered (cumulative core.Result.DrainedSteps).
	Drained int
	// WatchdogTrips counts stall-watchdog firings (each one reseeded
	// the walker on a fresh RNG segment via resume).
	WatchdogTrips int
	// Degraded is true when the unit ended in a degraded state;
	// DegradedBy records the final cause. Panicked additionally marks
	// walker panics isolated by the orchestrator.
	Degraded   bool
	DegradedBy error
	Panicked   bool
	// Trace is the unit's per-segment virtual-time ledger (busy vs
	// parked), in execution order; ReplayMakespan schedules these.
	Trace []Segment
	// Checkpoint is the unit's resumable state (nil if the unit
	// panicked before its first checkpoint).
	Checkpoint *core.Checkpoint
}

// Result is the merged fleet outcome.
type Result struct {
	// Estimate is the deterministic sample-weighted Hansen–Hurwitz
	// combination of the unit estimates, folded in unit order with
	// compensated summation (NaN when no unit produced an estimate).
	Estimate float64
	// Cost and Samples sum over units; Stats and Heal are field-wise
	// sums.
	Cost    int
	Samples int
	Stats   api.Stats
	Heal    core.HealStats
	// VirtualDuration is the per-walker virtual wall-clock: the maximum
	// over units (each walker pays its own waits on its own API key).
	// Deliberately independent of Parallelism so reported numbers stay
	// deterministic.
	VirtualDuration time.Duration
	// Makespan is the fleet's end-to-end virtual wall-clock when the
	// unit traces are replayed through Slots execution slots by the
	// deterministic list scheduler (ReplayMakespan). In blocking mode
	// every wait holds its slot, so the makespan stacks; in cooperative
	// mode parked waits overlap and the makespan collapses toward
	// max(Σbusy/Slots, slowest unit). Same-config comparisons of this
	// number are the tentpole metric of the cooperative scheduler.
	Makespan time.Duration
	// Slots is the slot count Makespan was replayed at:
	// min(Parallelism, UnitsRun).
	Slots int
	// Parks and DrainedSteps sum the cooperative-scheduling counters
	// over units (both zero in blocking mode).
	Parks        int
	DrainedSteps int
	// Degraded is true when at least one unit ended degraded;
	// DegradedBy is the lowest-indexed degraded unit's cause.
	Degraded   bool
	DegradedBy error
	// WatchdogTrips sums the stall-watchdog firings across units.
	WatchdogTrips int
	// UnitsPlanned/UnitsRun record deterministic load-shedding:
	// UnitsRun = UnitsPlanned - Shed units actually received quotas.
	UnitsPlanned int
	UnitsRun     int
	Shed         int
	// Units holds the per-unit results in unit order.
	Units []UnitResult
	// Ledger is the budget arbiter's final books (conservation is
	// audited: available + reserved + committed == total, committed ==
	// exactly the calls charged).
	Ledger api.LedgerStats
	// Checkpoint resumes the whole fleet mid-flight.
	Checkpoint *Checkpoint
}

// Checkpoint is a resumable fleet snapshot: every unit's final result
// (finished units are kept as-is on resume, interrupted units resume
// from their per-unit core checkpoints).
type Checkpoint struct {
	units []UnitResult
}

// Units returns the number of checkpointed units.
func (c *Checkpoint) Units() int {
	if c == nil {
		return 0
	}
	return len(c.units)
}

// unitSeed derives the walk seed of a unit.
func unitSeed(base int64, unit int) int64 {
	return base + int64(unit+1)*walkSeedStride
}

// terminalDegrade reports whether a degrade cause must not be resumed:
// cancellation and deadline exceedance end the unit (resuming would
// fail the same way or overrun the caller's bound), while faults,
// churn overwhelm, watchdog stalls, and throttle parks are ridden out
// via resume.
func terminalDegrade(err error) bool {
	return errors.Is(err, api.ErrCanceled) || errors.Is(err, api.ErrDeadlineExceeded)
}

// runQueue is the fleet's deterministic run queue: pending units
// ordered by (virtual ready time, unit index). Workers pop the
// smallest pending item and run one segment; a parked or resumed unit
// re-enters with an updated ready time. Virtual ready times order the
// queue but never make a worker sleep — virtual time is simulated, so
// a "future" ready time is simply the lowest available priority.
type runQueue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	items    []schedItem
	inFlight int
}

type schedItem struct {
	readyAt time.Duration
	unit    int
}

func newRunQueue(units int) *runQueue {
	q := &runQueue{items: make([]schedItem, 0, units)}
	q.cond = sync.NewCond(&q.mu)
	for u := 0; u < units; u++ {
		q.items = append(q.items, schedItem{unit: u})
	}
	return q
}

// pop blocks until a unit is pending (or all work is finished) and
// returns the pending unit with the smallest (readyAt, unit).
func (q *runQueue) pop() (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if len(q.items) == 0 {
			if q.inFlight == 0 {
				return 0, false
			}
			// An in-flight unit may park and re-enter the queue; wait for
			// it rather than exiting with work still possible.
			q.cond.Wait()
			continue
		}
		best := 0
		for i := 1; i < len(q.items); i++ {
			it, b := q.items[i], q.items[best]
			if it.readyAt < b.readyAt || (it.readyAt == b.readyAt && it.unit < b.unit) {
				best = i
			}
		}
		unit := q.items[best].unit
		q.items = append(q.items[:best], q.items[best+1:]...)
		q.inFlight++
		return unit, true
	}
}

// requeue returns a still-unfinished unit to the queue at readyAt.
func (q *runQueue) requeue(unit int, readyAt time.Duration) {
	q.mu.Lock()
	q.inFlight--
	q.items = append(q.items, schedItem{readyAt: readyAt, unit: unit})
	q.cond.Signal()
	q.mu.Unlock()
}

// finish retires a completed unit; the last finish wakes every waiting
// worker so they can observe the empty queue and exit.
func (q *runQueue) finish() {
	q.mu.Lock()
	q.inFlight--
	if q.inFlight == 0 && len(q.items) == 0 {
		q.cond.Broadcast()
	}
	q.mu.Unlock()
}

// Run executes the fleet and merges the unit results. It returns an
// error only for configuration mistakes (missing Walk, non-positive
// budget, resume shape mismatch); every runtime failure — faults,
// churn, stalls, panics, cancellation — is folded into Degraded unit
// results and a Degraded fleet result instead.
func Run(ctx context.Context, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Walk == nil {
		return Result{}, errors.New("fleet: Config.Walk is required")
	}
	if cfg.Budget <= 0 {
		return Result{}, errors.New("fleet: Config.Budget must be positive (a fleet arbitrates a finite budget)")
	}
	if ctx == nil {
		ctx = context.Background()
	}

	// Deterministic load-shedding: fewer walkers when credits run low.
	// The decision depends only on (Budget, Units, MinUnitBudget) —
	// never on runtime contention — so a shed fleet is still a pure
	// function of its configuration.
	units := cfg.PlannedUnits()
	if cfg.Resume != nil && cfg.Resume.Units() != units {
		return Result{}, fmt.Errorf("fleet: resume checkpoint has %d units, config yields %d (budget/units/min-unit-budget must match the original run)",
			cfg.Resume.Units(), units)
	}

	// Quota partition: Budget/units each, the remainder spread over the
	// first units. Fixed before any walker starts — fair admission by
	// construction, and the reason a hot walker cannot starve the rest.
	led := api.NewLedger(cfg.Budget)
	quotas := make([]int, units)
	share, rem := cfg.Budget/units, cfg.Budget%units
	for i := range quotas {
		quotas[i] = share
		if i < rem {
			quotas[i]++
		}
		if err := led.Register(i, quotas[i]); err != nil {
			return Result{}, err
		}
	}

	// Carry a resumed fleet's prior spend onto the books so quotas keep
	// binding across the whole logical run.
	if cfg.Resume != nil {
		for i, prior := range cfg.Resume.units {
			if err := led.CarryForward(i, prior.Cost); err != nil {
				return Result{}, err
			}
		}
	}

	// Per-unit runners persist across scheduler turns: each owns its
	// derived-seed server (fault/churn RNG streams must not restart per
	// segment) and the unit's accumulating result. Results are pure
	// functions of (cfg, unit), so the pop order never leaks into them —
	// only into wall-clock.
	runners := make([]*unitRunner, units)
	for u := 0; u < units; u++ {
		var prior *UnitResult
		if cfg.Resume != nil {
			prior = &cfg.Resume.units[u]
		}
		runners[u] = newUnitRunner(cfg, u, quotas[u], prior)
	}

	queue := newRunQueue(units)
	var wg sync.WaitGroup
	par := cfg.Parallelism
	if par > units {
		par = units
	}
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				u, ok := queue.pop()
				if !ok {
					return
				}
				done, readyAt := runners[u].runSegment(ctx, led)
				if cfg.Autosave != nil {
					// Persist the unit's cumulative state after every
					// turn: a crash between turns then forfeits at most
					// one segment of walk state, and parks/degrades hit
					// the store the moment they happen.
					cfg.Autosave(runners[u].out)
				}
				if done {
					queue.finish()
				} else {
					queue.requeue(u, readyAt)
				}
			}
		}()
	}
	wg.Wait()

	results := make([]UnitResult, units)
	for u, rn := range runners {
		results[u] = rn.out
	}
	return merge(cfg, units, results, led), nil
}

// unitRunner drives one logical walker across scheduler turns: its own
// server (derived fault/churn seeds), a ledger-bound client per
// segment, and the degrade→checkpoint→resume loop, with panics
// isolated into a Degraded result. Only one worker touches a runner at
// a time (a unit is either pending in the queue or in-flight on one
// worker, never both).
type unitRunner struct {
	cfg    Config
	quota  int
	srv    *api.Server
	policy api.RetryPolicy
	out    UnitResult

	// keep marks a unit that already finished cleanly in a prior flight:
	// its result is merged verbatim without running any segment.
	keep     bool
	resume   *core.Checkpoint
	attempt  int
	prevCost int
	prevSamp int
	// parkStall accrues throttle wait across consecutive zero-progress
	// parks — the fleet-level arm of the stall watchdog (a per-client
	// watchdog resets every segment, so a wedged cooperative unit would
	// otherwise never trip).
	parkStall time.Duration
}

func newUnitRunner(cfg Config, unit, quota int, prior *UnitResult) *unitRunner {
	rn := &unitRunner{
		cfg:      cfg,
		quota:    quota,
		out:      UnitResult{Unit: unit, Seed: unitSeed(cfg.Seed, unit), Quota: quota},
		prevCost: -1,
		prevSamp: -1,
	}
	faults := cfg.Faults
	faults.Seed = faults.Seed + cfg.Seed + int64(unit+1)*faultSeedStride
	rn.srv = api.NewServer(cfg.Platform, cfg.Preset, faults)
	if cfg.Churn.Rate > 0 {
		churn := cfg.Churn
		churn.Seed = churn.Seed + cfg.Seed + int64(unit+1)*churnSeedStride
		rn.srv.EnableChurn(churn)
	}
	rn.policy = api.DefaultRetryPolicy()
	if cfg.Policy != nil {
		rn.policy = *cfg.Policy
	}
	rn.policy.StallWait = cfg.StallWait

	if prior != nil {
		// Resuming: a unit that finished cleanly in the prior flight is
		// kept verbatim; an interrupted one continues from its
		// checkpoint (nil checkpoint — a pre-checkpoint panic —
		// restarts fresh on the remaining quota).
		rn.keep = !prior.Degraded
		rn.resume = prior.Checkpoint
		rn.out.Resumes = prior.Resumes
		rn.out.Parks = prior.Parks
		rn.out.Drained = prior.Drained
		rn.out.WatchdogTrips = prior.WatchdogTrips
		rn.out.Cost, rn.out.Samples = prior.Cost, prior.Samples
		rn.out.Stats, rn.out.Heal = prior.Stats, prior.Heal
		rn.out.Estimate, rn.out.Degraded, rn.out.DegradedBy = prior.Estimate, prior.Degraded, prior.DegradedBy
		rn.out.Panicked = prior.Panicked
		rn.out.Trace = append(rn.out.Trace, prior.Trace...)
		rn.out.Checkpoint = prior.Checkpoint
	} else {
		rn.out.Estimate = math.NaN()
	}
	return rn
}

// maxParks is the termination backstop for throttle parks: generous
// enough that a 100%-throttled walker still books several windows per
// quota credit before the fleet gives up on it.
func (rn *unitRunner) maxParks() int {
	return 8*rn.quota + 1024
}

// runSegment advances the unit by one scheduler turn. It returns done
// when the unit needs no further turns; otherwise readyAt is the
// virtual time at which the unit should re-enter the run queue (the
// window-reopen time after a park, or its current elapsed time after
// an ordinary resume).
//
//lint:ignore budgetflow every failure (budget exhaustion included) is folded into rn.out.Degraded/DegradedBy, the unit's degraded-result channel; the scheduler return carries only requeue timing
func (rn *unitRunner) runSegment(ctx context.Context, led *api.Ledger) (done bool, readyAt time.Duration) {
	// Panic isolation: a crashing walker becomes a Degraded unit
	// result; the fleet and its sibling walkers keep going.
	defer func() {
		if r := recover(); r != nil {
			rn.out.Degraded = true
			rn.out.Panicked = true
			rn.out.DegradedBy = fmt.Errorf("%w: %v", ErrWalkerPanic, r)
			done, readyAt = true, 0
		}
	}()

	cfg := rn.cfg
	if rn.keep {
		// Prior flight finished cleanly: keep its result untouched.
		return true, 0
	}

	out := &rn.out
	client := api.NewClient(rn.srv, 0)
	client.Policy = rn.policy
	client.YieldOnThrottle = cfg.Cooperative
	if err := client.UseLedger(led, out.Unit); err != nil {
		// Quota spent (or config bug): the unit ends in whatever
		// state the last segment left it.
		return true, 0
	}
	client.WithContext(ctx)
	if cfg.Deadline > 0 {
		already := api.VirtualOf(cfg.Preset, out.Stats)
		left := cfg.Deadline - already
		if left <= 0 {
			out.Degraded = true
			out.DegradedBy = api.ErrDeadlineExceeded
			client.ReleaseLedger()
			return true, 0
		}
		client.Deadline = left
	}

	statsBefore := out.Stats
	costBefore := out.Cost

	sess, err := core.NewSession(client, cfg.Query, cfg.Interval)
	if err != nil {
		client.ReleaseLedger()
		// Whatever the failed session setup charged is real spend:
		// fold it in so the unit's books match the ledger's.
		out.Cost += client.Cost()
		out.Stats = out.Stats.Add(client.Stats())
		out.Degraded = true
		out.DegradedBy = err
		return true, 0
	}
	res, err := cfg.Walk(ctx, sess, out.Seed, rn.resume)
	client.ReleaseLedger()
	if err != nil {
		// Pre-walk failure (cancelled, past deadline, exhausted — or,
		// in cooperative mode, throttled before any walk state existed,
		// e.g. in the seed search): fold this segment's charges in — the
		// ledger committed them, so the unit must report them.
		out.Cost += client.Cost()
		out.Stats = out.Stats.Add(client.Stats())
		if errors.Is(err, api.ErrThrottled) {
			// A pre-walk throttle is a park like any other: the resume
			// state is simply unchanged.
			out.Degraded = true
			out.DegradedBy = err
			return rn.park(statsBefore, costBefore)
		}
		out.Degraded = true
		out.DegradedBy = err
		return true, 0
	}
	out.Estimate = res.Estimate
	out.Cost, out.Samples = res.Cost, res.Samples
	out.Stats, out.Heal = res.Stats, res.Heal
	out.Drained = res.DrainedSteps
	out.Degraded, out.DegradedBy = res.Degraded, res.DegradedBy
	out.Checkpoint = res.Checkpoint
	rn.resume = res.Checkpoint

	if res.Degraded && errors.Is(res.DegradedBy, api.ErrThrottled) {
		return rn.park(statsBefore, costBefore)
	}

	// Not a park: the whole segment held its slot.
	rn.parkStall = 0
	rn.traceSegment(statsBefore, 0)

	if errors.Is(res.DegradedBy, api.ErrStalled) {
		out.WatchdogTrips++
	}
	if !res.Degraded || terminalDegrade(res.DegradedBy) {
		return true, 0
	}
	if res.Cost >= rn.quota || rn.attempt >= cfg.MaxResumes {
		return true, 0
	}
	if res.Cost <= rn.prevCost && res.Samples <= rn.prevSamp {
		return true, 0 // resuming stopped making progress
	}
	rn.prevCost, rn.prevSamp = res.Cost, res.Samples
	rn.attempt++
	out.Resumes++
	return false, api.VirtualOf(cfg.Preset, out.Stats)
}

// park books a throttle park: the segment's trace entry splits off the
// yielded tail wait, the park counters and the fleet-level watchdog
// advance, and the unit re-enters the queue at the window-reopen time.
func (rn *unitRunner) park(statsBefore api.Stats, costBefore int) (bool, time.Duration) {
	out := &rn.out
	parkWait := out.Stats.ThrottleWait - statsBefore.ThrottleWait
	if parkWait < 0 {
		parkWait = 0
	}
	rn.traceSegment(statsBefore, parkWait)
	out.Parks++

	if out.Parks > rn.maxParks() {
		// Backstop: a unit parking this often against its quota is not
		// making the window work; end it in its degraded state.
		return true, 0
	}
	if out.Cost > costBefore {
		rn.parkStall = 0
	} else {
		rn.parkStall += parkWait
		if rn.cfg.StallWait > 0 && rn.parkStall > rn.cfg.StallWait {
			// Fleet-level stall watchdog: consecutive parks with zero
			// budget progress accrued past StallWait. Count the trip and
			// charge this park against MaxResumes so a wedged walker
			// terminates like its blocking-mode twin.
			out.WatchdogTrips++
			rn.parkStall = 0
			rn.attempt++
			if rn.attempt >= rn.cfg.MaxResumes {
				return true, 0
			}
		}
	}
	if out.Cost >= rn.quota {
		return true, 0
	}
	return false, api.VirtualOf(rn.cfg.Preset, out.Stats)
}

// traceSegment appends this segment's virtual-time delta to the unit
// trace, attributing park of it to the yielded wait and the rest to
// slot-holding busy time. Deltas of the cumulative elapsed clock sum
// exactly to api.VirtualOf(preset, final stats).
func (rn *unitRunner) traceSegment(statsBefore api.Stats, park time.Duration) {
	elapsed := api.VirtualOf(rn.cfg.Preset, rn.out.Stats) - api.VirtualOf(rn.cfg.Preset, statsBefore)
	if elapsed < 0 {
		elapsed = 0
	}
	if park > elapsed {
		park = elapsed
	}
	rn.out.Trace = append(rn.out.Trace, Segment{Busy: elapsed - park, Park: park})
}

// ReplayMakespan replays per-unit segment traces through a
// deterministic greedy list scheduler with the given number of
// execution slots and returns the virtual makespan: at each step the
// unit with the smallest (ready time, index) claims the earliest-free
// slot, runs its next segment's Busy time, then waits out the
// segment's Park with the slot released. Blocking traces (Park folded
// into Busy) therefore hold slots through their waits, cooperative
// traces overlap them — replaying both at the same slot count is the
// scheduler's apples-to-apples comparison.
func ReplayMakespan(traces [][]Segment, slots int) time.Duration {
	if slots < 1 {
		slots = 1
	}
	type unitState struct {
		next  int
		ready time.Duration
	}
	us := make([]unitState, len(traces))
	free := make([]time.Duration, slots)
	var makespan time.Duration
	for {
		pick := -1
		for i := range us {
			if us[i].next >= len(traces[i]) {
				continue
			}
			if pick < 0 || us[i].ready < us[pick].ready {
				pick = i
			}
		}
		if pick < 0 {
			return makespan
		}
		slot := 0
		for s := 1; s < slots; s++ {
			if free[s] < free[slot] {
				slot = s
			}
		}
		seg := traces[pick][us[pick].next]
		start := us[pick].ready
		if free[slot] > start {
			start = free[slot]
		}
		end := start + seg.Busy
		free[slot] = end
		us[pick].next++
		us[pick].ready = end + seg.Park
		if end > makespan {
			makespan = end
		}
	}
}

// merge folds the unit results, in unit order, into the fleet result.
// The estimate is the sample-weighted mean of the unit Hansen–Hurwitz
// estimates — pooling the fleet's walks as if one walker had taken
// them all — accumulated with compensated summation so the fold is
// exact in practice and, crucially, independent of which goroutine
// finished first.
func merge(cfg Config, units int, results []UnitResult, led *api.Ledger) Result {
	out := Result{
		UnitsPlanned: cfg.Units,
		UnitsRun:     units,
		Shed:         cfg.Units - units,
		Units:        results,
	}
	out.Slots = cfg.Parallelism
	if out.Slots > units {
		out.Slots = units
	}
	var weighted, weights []float64
	traces := make([][]Segment, len(results))
	for i := range results {
		r := &results[i]
		out.Cost += r.Cost
		out.Samples += r.Samples
		out.Stats = out.Stats.Add(r.Stats)
		out.Heal = out.Heal.Add(r.Heal)
		out.WatchdogTrips += r.WatchdogTrips
		out.Parks += r.Parks
		out.DrainedSteps += r.Drained
		if v := api.VirtualOf(cfg.Preset, r.Stats); v > out.VirtualDuration {
			out.VirtualDuration = v
		}
		traces[i] = r.Trace
		if len(traces[i]) == 0 {
			// A unit kept verbatim from a prior flight carries no trace
			// from this one: replay it as a single blocking segment of
			// its whole elapsed time.
			if v := api.VirtualOf(cfg.Preset, r.Stats); v > 0 {
				traces[i] = []Segment{{Busy: v}}
			}
		}
		if r.Degraded && !out.Degraded {
			out.Degraded = true
			out.DegradedBy = r.DegradedBy
		}
		if r.Samples > 0 && !math.IsNaN(r.Estimate) {
			weighted = append(weighted, r.Estimate*float64(r.Samples))
			weights = append(weights, float64(r.Samples))
		}
	}
	out.Makespan = ReplayMakespan(traces, out.Slots)
	out.Estimate = math.NaN()
	if den := stats.KahanSum(weights); den > 0 {
		out.Estimate = stats.KahanSum(weighted) / den
	}
	out.Ledger = led.Snapshot()
	out.Checkpoint = &Checkpoint{units: append([]UnitResult(nil), results...)}
	return out
}
