// Package errsentinel exercises the sentinel-error discipline: %w
// wrapping, errors.Is testing, and no string matching.
package errsentinel

import (
	"errors"
	"fmt"
	"strings"
)

var ErrBudget = errors.New("budget exhausted")
var ErrStalled = errors.New("stalled")

// wrapOK wraps with %w; this is what makes ==/!= against ErrBudget
// provably dead below.
func wrapOK() error {
	return fmt.Errorf("walk: %w", ErrBudget)
}

func badWrapVar(err error) error {
	return fmt.Errorf("walk: %v", err) // want `error err formatted with %v flattens the chain`
}

func badWrapSentinel() error {
	return fmt.Errorf("walk: %s", ErrStalled) // want `error ErrStalled formatted with %s flattens the chain`
}

func okIs(err error) bool {
	return errors.Is(err, ErrBudget)
}

func okNilCheck(err error) bool {
	return err == nil
}

func badEqWrapped(err error) bool {
	return err == ErrBudget // want `ErrBudget is wrapped with %w elsewhere in the program`
}

func badNeq(err error) bool {
	return err != ErrStalled // want `ErrStalled compared with ==/!=`
}

func badEqGeneric(a, b error) bool {
	return a == b // want `errors compared with ==/!=`
}

func badSwitch(err error) string {
	switch err {
	case ErrBudget: // want `switch on error identity`
		return "budget"
	case nil:
		return ""
	}
	return "other"
}

func badStringContains(err error) bool {
	return strings.Contains(err.Error(), "budget") // want `strings\.Contains on Error\(\) output`
}

func badStringEq(err error) bool {
	return err.Error() == "stalled" // want `comparing Error\(\) strings`
}
