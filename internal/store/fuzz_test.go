package store

import (
	"errors"
	"testing"
)

// FuzzCheckpointDecode fuzzes the on-disk decoder: on arbitrary input
// it must either decode a snapshot or return one of the two typed
// errors — never panic, never surface an untyped failure. The corpus
// seeds cover the interesting structural boundaries (intact file,
// header-only, truncations, foreign bytes, future schema version).
func FuzzCheckpointDecode(f *testing.F) {
	valid, err := EncodeSnapshot(testSnap(2), 3)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), valid...))
	f.Add(append([]byte(nil), valid[:headerLen]...))
	f.Add(append([]byte(nil), valid[:len(valid)-1]...))
	f.Add([]byte{})
	f.Add([]byte(storeMagic))
	f.Add([]byte("not a checkpoint at all, just some bytes"))
	f.Add(withVersion(valid, 99))

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, _, err := DecodeSnapshot(data)
		switch {
		case err == nil:
			if snap == nil {
				t.Fatal("nil snapshot with nil error")
			}
		case errors.Is(err, ErrCorruptCheckpoint), errors.Is(err, ErrCheckpointMismatch):
			// The two contracted failure modes.
		default:
			t.Fatalf("untyped decode error: %v", err)
		}
	})
}
