package lint

import (
	"go/ast"
	"go/token"
)

// This file builds per-function control-flow graphs from go/ast alone —
// no types required — so the dataflow layer (dataflow.go) can run flow-
// and path-sensitive analyses (dettaint, unlockpath, budgetpath) over
// any parsed function body. The builder models every Go control
// construct that changes successor structure: if/else chains, all
// three for-loop forms, range loops, (type) switches with fallthrough,
// select with and without default, goto, labeled break/continue, panic
// exits, and returns. Defer statements stay in the block where they
// are registered and are additionally collected on the CFG in source
// order, since their calls execute on every function exit; analyses
// that care (unlockpath) model that themselves.

// CFG is one function body's control-flow graph. Entry is Blocks[0]
// and Exit is Blocks[1]; Exit has no successors and collects every
// return, panic, and fall-off-the-end edge.
type CFG struct {
	Entry, Exit *Block
	Blocks      []*Block
	// Defers are the defer statements of the body in source order (the
	// registration-order approximation the analyses use), excluding
	// defers inside nested function literals.
	Defers []*ast.DeferStmt
}

// Block is a straight-line sequence of statements (and branch
// condition expressions) with no internal control transfer.
type Block struct {
	// Index is the block's position in CFG.Blocks — the deterministic
	// iteration order every solver and report uses.
	Index int
	// Nodes are the block's statements in execution order. Branch
	// conditions (if/for) appear as their bare ast.Expr after the
	// construct's Init statement; range and select heads appear as the
	// *ast.RangeStmt / comm-clause statement so analyses can see the
	// iterated operand and the channel operations.
	Nodes []ast.Node
	Succs []*Edge
	Preds []*Edge
}

// Edge is one control-flow edge, optionally carrying the branch
// condition it is guarded by — the hook path-sensitive analyses refine
// states on.
type Edge struct {
	From, To *Block
	// Cond is the controlling condition expression for two-way branch
	// edges (if, for), nil otherwise.
	Cond ast.Expr
	// Branch is Cond's truth value along this edge.
	Branch bool
	// Panic marks an edge into Exit taken only when the block ends in a
	// panic call; leak-style analyses usually skip these exits.
	Panic bool
}

// BuildCFG constructs the control-flow graph of one function body.
// Nested function literals are opaque statements here — each closure
// gets its own CFG when its own Func is analyzed.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.collectLabels(body)
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.edge(b.cur, b.cfg.Exit, nil, false, false)
	}
	return b.cfg
}

// Reachable reports whether block index i is reachable from Entry.
func (c *CFG) Reachable() []bool {
	seen := make([]bool, len(c.Blocks))
	stack := []*Block{c.Entry}
	seen[c.Entry.Index] = true
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range blk.Succs {
			if !seen[e.To.Index] {
				seen[e.To.Index] = true
				stack = append(stack, e.To)
			}
		}
	}
	return seen
}

type cfgBuilder struct {
	cfg *CFG
	// cur is the block under construction; nil after a terminating
	// statement (return, goto, panic) until new flow begins.
	cur *Block
	// breakTo/continueTo are the innermost-last stacks of unlabeled
	// break/continue targets.
	breakTo    []*Block
	continueTo []*Block
	// labels maps label names to their pre-created target blocks and,
	// once the labeled construct is being built, its break/continue
	// targets.
	labels map[string]*labelTargets
}

type labelTargets struct {
	// start is the block control enters at the label (goto target).
	start *Block
	// brk/cont are the targets of labeled break/continue, filled in
	// while the labeled loop/switch/select is under construction.
	brk, cont *Block
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block, cond ast.Expr, branch, panics bool) {
	e := &Edge{From: from, To: to, Cond: cond, Branch: branch, Panic: panics}
	from.Succs = append(from.Succs, e)
	to.Preds = append(to.Preds, e)
}

// collectLabels pre-creates a start block per label so forward gotos
// have a target before the label is reached. Labels inside nested
// closures belong to the closure's own CFG and are skipped.
func (b *cfgBuilder) collectLabels(body *ast.BlockStmt) {
	b.labels = map[string]*labelTargets{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if ls, ok := n.(*ast.LabeledStmt); ok {
			b.labels[ls.Label.Name] = &labelTargets{start: b.newBlock()}
		}
		return true
	})
}

// append adds a node to the current block, starting a fresh
// (unreachable) block if flow was terminated — dead code still gets
// blocks, it just has no predecessors.
func (b *cfgBuilder) append(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(st.List)
	case *ast.IfStmt:
		b.ifStmt(st)
	case *ast.ForStmt:
		b.forStmt(st, nil)
	case *ast.RangeStmt:
		b.rangeStmt(st, nil)
	case *ast.SwitchStmt:
		b.switchStmt(st, nil)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(st, nil)
	case *ast.SelectStmt:
		b.selectStmt(st, nil)
	case *ast.LabeledStmt:
		b.labeledStmt(st)
	case *ast.BranchStmt:
		b.branchStmt(st)
	case *ast.ReturnStmt:
		b.append(st)
		b.terminate(b.cfg.Exit, false)
	case *ast.DeferStmt:
		b.append(st)
		b.cfg.Defers = append(b.cfg.Defers, st)
	case *ast.ExprStmt:
		b.append(st)
		if isPanicCall(st.X) {
			b.terminate(b.cfg.Exit, true)
		}
	case *ast.EmptyStmt:
		// no flow effect
	default:
		// Assign, Decl, Go, Send, IncDec, and anything future: straight
		// flow through the current block.
		b.append(st)
	}
}

// terminate ends the current block with an edge to target (to Exit for
// return/panic) and marks flow dead until the next label or statement.
func (b *cfgBuilder) terminate(target *Block, panics bool) {
	if b.cur != nil {
		b.edge(b.cur, target, nil, false, panics)
	}
	b.cur = nil
}

func isPanicCall(e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

func (b *cfgBuilder) ifStmt(st *ast.IfStmt) {
	if st.Init != nil {
		b.append(st.Init)
	}
	b.append(st.Cond)
	cond := b.cur
	after := b.newBlock()

	then := b.newBlock()
	b.edge(cond, then, st.Cond, true, false)
	b.cur = then
	b.stmtList(st.Body.List)
	if b.cur != nil {
		b.edge(b.cur, after, nil, false, false)
	}

	if st.Else != nil {
		els := b.newBlock()
		b.edge(cond, els, st.Cond, false, false)
		b.cur = els
		b.stmt(st.Else)
		if b.cur != nil {
			b.edge(b.cur, after, nil, false, false)
		}
	} else {
		b.edge(cond, after, st.Cond, false, false)
	}
	b.cur = after
}

// pushLoop establishes break/continue targets (and the label's, when
// the loop is labeled) and returns the pop function.
func (b *cfgBuilder) pushLoop(label *labelTargets, brk, cont *Block) func() {
	b.breakTo = append(b.breakTo, brk)
	b.continueTo = append(b.continueTo, cont)
	if label != nil {
		label.brk, label.cont = brk, cont
	}
	return func() {
		b.breakTo = b.breakTo[:len(b.breakTo)-1]
		b.continueTo = b.continueTo[:len(b.continueTo)-1]
	}
}

func (b *cfgBuilder) forStmt(st *ast.ForStmt, label *labelTargets) {
	if st.Init != nil {
		b.append(st.Init)
	}
	head := b.newBlock()
	if b.cur != nil {
		b.edge(b.cur, head, nil, false, false)
	}
	after := b.newBlock()

	// continue re-runs Post (when present) before re-testing the
	// condition.
	cont := head
	if st.Post != nil {
		cont = b.newBlock()
		b.cur = cont
		b.append(st.Post)
		b.edge(b.cur, head, nil, false, false)
	}

	body := b.newBlock()
	if st.Cond != nil {
		head.Nodes = append(head.Nodes, st.Cond)
		b.edge(head, body, st.Cond, true, false)
		b.edge(head, after, st.Cond, false, false)
	} else {
		b.edge(head, body, nil, false, false)
	}

	pop := b.pushLoop(label, after, cont)
	b.cur = body
	b.stmtList(st.Body.List)
	pop()
	if b.cur != nil {
		b.edge(b.cur, cont, nil, false, false)
	}
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(st *ast.RangeStmt, label *labelTargets) {
	head := b.newBlock()
	head.Nodes = append(head.Nodes, st)
	if b.cur != nil {
		b.edge(b.cur, head, nil, false, false)
	}
	after := b.newBlock()
	body := b.newBlock()
	b.edge(head, body, nil, false, false)  // another element
	b.edge(head, after, nil, false, false) // exhausted (or empty)

	pop := b.pushLoop(label, after, head)
	b.cur = body
	b.stmtList(st.Body.List)
	pop()
	if b.cur != nil {
		b.edge(b.cur, head, nil, false, false)
	}
	b.cur = after
}

// switchBody wires the shared clause structure of switch / type switch
// / select: head fans out to each clause block; clause bodies flow to
// after (or, for switch fallthrough, into the next clause body).
func (b *cfgBuilder) switchClauses(head *Block, label *labelTargets, clauses []ast.Stmt, isSelect bool) {
	after := b.newBlock()

	// A switch/select without a default can complete without running
	// any clause (no case matches; for select: treat as "some case
	// eventually fires" — but an empty select blocks forever).
	hasDefault := false
	for _, c := range clauses {
		switch cc := c.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			}
		}
	}
	if !hasDefault && !isSelect {
		b.edge(head, after, nil, false, false)
	}

	// Build every clause body block first so fallthrough can link
	// forward.
	bodies := make([]*Block, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock()
		b.edge(head, bodies[i], nil, false, false)
	}

	brkTargets := b.breakTo
	b.breakTo = append(b.breakTo, after)
	if label != nil {
		label.brk = after
	}
	for i, c := range clauses {
		var list []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				bodies[i].Nodes = append(bodies[i].Nodes, e)
			}
			list = cc.Body
		case *ast.CommClause:
			if cc.Comm != nil {
				bodies[i].Nodes = append(bodies[i].Nodes, cc.Comm)
			}
			list = cc.Body
		}
		b.cur = bodies[i]
		// fallthrough must be the final statement of a case body.
		ft := false
		if n := len(list); n > 0 {
			if br, ok := list[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				ft = true
				list = list[:n-1]
			}
		}
		b.stmtList(list)
		if b.cur != nil {
			if ft && i+1 < len(bodies) {
				b.edge(b.cur, bodies[i+1], nil, false, false)
			} else {
				b.edge(b.cur, after, nil, false, false)
			}
		}
	}
	b.breakTo = brkTargets
	b.cur = after
}

func (b *cfgBuilder) switchStmt(st *ast.SwitchStmt, label *labelTargets) {
	if st.Init != nil {
		b.append(st.Init)
	}
	if st.Tag != nil {
		b.append(st.Tag)
	}
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.switchClauses(b.cur, label, st.Body.List, false)
}

func (b *cfgBuilder) typeSwitchStmt(st *ast.TypeSwitchStmt, label *labelTargets) {
	if st.Init != nil {
		b.append(st.Init)
	}
	b.append(st.Assign)
	b.switchClauses(b.cur, label, st.Body.List, false)
}

func (b *cfgBuilder) selectStmt(st *ast.SelectStmt, label *labelTargets) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	head := b.cur
	if len(st.Body.List) == 0 {
		// select {} blocks forever: flow ends here, deliberately with no
		// exit edge (the code after it is unreachable).
		b.cur = nil
		return
	}
	b.switchClauses(head, label, st.Body.List, true)
}

func (b *cfgBuilder) labeledStmt(st *ast.LabeledStmt) {
	lt := b.labels[st.Label.Name]
	if lt == nil { // label inside a closure pre-scan missed; be safe
		lt = &labelTargets{start: b.newBlock()}
		b.labels[st.Label.Name] = lt
	}
	if b.cur != nil {
		b.edge(b.cur, lt.start, nil, false, false)
	}
	b.cur = lt.start
	switch inner := st.Stmt.(type) {
	case *ast.ForStmt:
		b.forStmt(inner, lt)
	case *ast.RangeStmt:
		b.rangeStmt(inner, lt)
	case *ast.SwitchStmt:
		b.switchStmt(inner, lt)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(inner, lt)
	case *ast.SelectStmt:
		b.selectStmt(inner, lt)
	default:
		b.stmt(st.Stmt)
	}
}

func (b *cfgBuilder) branchStmt(st *ast.BranchStmt) {
	switch st.Tok {
	case token.BREAK:
		if st.Label != nil {
			if lt := b.labels[st.Label.Name]; lt != nil && lt.brk != nil {
				b.terminate(lt.brk, false)
				return
			}
		} else if n := len(b.breakTo); n > 0 {
			b.terminate(b.breakTo[n-1], false)
			return
		}
		b.cur = nil // malformed break: kill flow rather than mis-edge
	case token.CONTINUE:
		if st.Label != nil {
			if lt := b.labels[st.Label.Name]; lt != nil && lt.cont != nil {
				b.terminate(lt.cont, false)
				return
			}
		} else if n := len(b.continueTo); n > 0 {
			b.terminate(b.continueTo[n-1], false)
			return
		}
		b.cur = nil
	case token.GOTO:
		if lt := b.labels[st.Label.Name]; lt != nil {
			b.terminate(lt.start, false)
			return
		}
		b.cur = nil
	case token.FALLTHROUGH:
		// Handled by switchClauses; a stray one (invalid Go) kills flow.
		b.cur = nil
	}
}
