// Package audit is a runtime invariant auditor for estimation runs: an
// optional layer that cross-checks what a finished (or checkpointed)
// run claims against what the client, session, and level graph actually
// hold, and fails fast with a structured violation report.
//
// The auditor exists because the estimators' correctness rests on a
// handful of conservation laws that silent bugs — especially under
// platform churn and fault injection — would otherwise erode unnoticed:
//
//   - budget conservation: every charged call is accounted in Stats,
//     results never claim more or less cost than the client charged;
//   - cache stability: a cached response replays at zero cost and is
//     never invalidated behind the run's back, even while the platform
//     churns (frozen-snapshot semantics);
//   - level-graph structure: levels derive from cached first mentions
//     exactly, no intra-level edge survives pruning, up/down neighbor
//     lists point strictly up/down;
//   - ESTIMATE-p sanity: settled visit-probability means are finite,
//     positive, and plausibly bounded;
//   - determinism: identical (seed, config) runs agree exactly.
//
// Every check is read-only with respect to the API budget: checks only
// touch responses the client has already cached, and each one verifies
// afterwards that auditing charged nothing.
package audit

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"mba/internal/api"
	"mba/internal/core"
	"mba/internal/levelgraph"
)

// Violation is one failed invariant.
type Violation struct {
	// Invariant names the broken law (e.g. "budget-conservation").
	Invariant string
	// Detail is a human-readable account of the mismatch.
	Detail string
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// Report is the structured outcome of an audit: how many invariant
// checks ran and which ones failed.
type Report struct {
	Checks     int
	Violations []Violation
}

// OK reports whether every check passed.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Err returns nil when the audit passed, or an error summarizing the
// first violation (and the total count) when it did not.
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	return fmt.Errorf("audit: %d of %d checks failed; first: %s",
		len(r.Violations), r.Checks, r.Violations[0])
}

// Merge folds another report into r.
func (r *Report) Merge(o *Report) {
	r.Checks += o.Checks
	r.Violations = append(r.Violations, o.Violations...)
}

// check counts one executed check.
func (r *Report) check() { r.Checks++ }

// failf records a violation.
func (r *Report) failf(invariant, format string, args ...interface{}) {
	r.Violations = append(r.Violations, Violation{
		Invariant: invariant,
		Detail:    fmt.Sprintf(format, args...),
	})
}

// Auditor holds the audit configuration. The zero value is usable:
// sampling caps default to SampleCap=128 users per replay check and
// PCeil=16 as the plausibility ceiling for settled ESTIMATE-p means.
type Auditor struct {
	// Budget is the run's call budget (0 = unlimited); CheckResult
	// verifies the reported cost never exceeds it.
	Budget int
	// SampleCap bounds how many cached users the replay and
	// level-graph checks visit (0 = default 128).
	SampleCap int
	// PCeil is the sanity ceiling for settled probability means. True
	// visit probabilities are ≤ 1, but an unbiased ESTIMATE-p draw of
	// a small-support node can legitimately overshoot, so the ceiling
	// is generous (0 = default 16); anything beyond it indicates a
	// broken recursion, not an unlucky draw.
	PCeil float64
}

func (a Auditor) sampleCap() int {
	if a.SampleCap <= 0 {
		return 128
	}
	return a.SampleCap
}

func (a Auditor) pCeil() float64 {
	if a.PCeil <= 0 {
		return 16
	}
	return a.PCeil
}

// CheckResult verifies a run result's accounting invariants: cost
// equals charged calls, cost respects the budget, trajectory costs are
// nondecreasing and bounded by the final cost, the checkpoint agrees
// with the result, the estimate is finite (or NaN for "no estimate
// yet"), and heal counters are nonnegative.
func (a Auditor) CheckResult(res core.Result) *Report {
	r := &Report{}

	r.check()
	if res.Cost != res.Stats.Calls {
		r.failf("budget-conservation", "result Cost=%d but Stats.Calls=%d", res.Cost, res.Stats.Calls)
	}
	r.check()
	if a.Budget > 0 && res.Cost > a.Budget {
		r.failf("budget-conservation", "result Cost=%d exceeds budget %d", res.Cost, a.Budget)
	}
	r.check()
	prev := 0
	for i, pt := range res.Trajectory {
		if pt.Cost < prev {
			r.failf("budget-conservation", "trajectory[%d] cost %d < previous %d", i, pt.Cost, prev)
			break
		}
		if pt.Cost > res.Cost {
			r.failf("budget-conservation", "trajectory[%d] cost %d exceeds final cost %d", i, pt.Cost, res.Cost)
			break
		}
		prev = pt.Cost
	}
	r.check()
	if res.Checkpoint == nil {
		r.failf("checkpoint", "result carries no checkpoint")
	} else if res.Checkpoint.SpentCost() != res.Cost {
		r.failf("checkpoint", "checkpoint SpentCost=%d != result Cost=%d",
			res.Checkpoint.SpentCost(), res.Cost)
	}
	r.check()
	if math.IsInf(res.Estimate, 0) {
		r.failf("estimate-sanity", "estimate is infinite")
	}
	r.check()
	h := res.Heal
	if h.Backtracks < 0 || h.Reseeds < 0 || h.SkippedWalks < 0 || h.VanishedUsers < 0 || h.PrunedEdges < 0 {
		r.failf("heal-accounting", "negative heal counter: %+v", h)
	}
	r.check()
	if res.Degraded && res.DegradedBy == nil {
		r.failf("degrade-accounting", "Degraded set with nil DegradedBy")
	}
	return r
}

// CheckClientReplay verifies cache stability: re-requesting a sample of
// already-cached responses charges nothing and returns identical data,
// even when the platform has churned since they were fetched. A cached
// response that silently refetches (cost delta) or mutates (content
// delta) would corrupt resumed runs and the paper's cost axes.
func (a Auditor) CheckClientReplay(c *api.Client) *Report {
	r := &Report{}
	limit := a.sampleCap()

	conns := c.CachedConnUsers()
	if len(conns) > limit {
		conns = conns[:limit]
	}
	for _, u := range conns {
		r.check()
		first, err1 := c.Connections(u)
		before := c.Cost()
		second, err2 := c.Connections(u)
		if c.Cost() != before {
			r.failf("cache-stability", "replaying cached Connections(%d) charged %d calls", u, c.Cost()-before)
			continue
		}
		if (err1 == nil) != (err2 == nil) {
			r.failf("cache-stability", "cached Connections(%d) flapped between error and success", u)
			continue
		}
		if len(first) != len(second) {
			r.failf("cache-stability", "cached Connections(%d) changed length %d -> %d", u, len(first), len(second))
			continue
		}
		for i := range first {
			if first[i] != second[i] {
				r.failf("cache-stability", "cached Connections(%d)[%d] changed %d -> %d", u, i, first[i], second[i])
				break
			}
		}
	}

	tls := c.CachedTimelineUsers()
	if len(tls) > limit {
		tls = tls[:limit]
	}
	for _, u := range tls {
		r.check()
		first, err1 := c.Timeline(u)
		before := c.Cost()
		second, err := c.Timeline(u)
		if c.Cost() != before {
			r.failf("cache-stability", "replaying cached Timeline(%d) charged %d calls", u, c.Cost()-before)
			continue
		}
		if err1 != nil || err != nil {
			r.failf("cache-stability", "cached Timeline(%d) replay failed: %v", u, errors.Join(err1, err))
			continue
		}
		if len(first.Posts) != len(second.Posts) {
			r.failf("cache-stability", "cached Timeline(%d) changed length %d -> %d",
				u, len(first.Posts), len(second.Posts))
		}
	}
	return r
}

// CheckLevelGraph independently recomputes the partial level graph
// from the client's cached raw responses and cross-checks the
// session's derived views: levels must equal the first-mention bucket,
// no intra-level edge may survive in LevelNeighbors, and Up/Down
// neighbor lists must point strictly up/down. Only users whose
// connections AND all listed neighbors' timelines are already cached
// are audited, so the check is free; a final cost comparison enforces
// that.
func (a Auditor) CheckLevelGraph(s *core.Session) *Report {
	r := &Report{}
	c := s.Client
	costBefore := c.Cost()

	// Level oracle from raw cached timelines only.
	tlSet := make(map[int64]bool)
	for _, u := range c.CachedTimelineUsers() {
		tlSet[u] = true
	}
	levelOf := func(u int64) (int, bool) {
		tl, err := c.Timeline(u)
		if err != nil {
			return 0, false
		}
		first, ok := tl.FirstMention(s.Query.Keyword)
		if !ok {
			return 0, false
		}
		return levelgraph.LevelOf(first, s.Interval), true
	}

	audited := 0
	for _, u := range c.CachedConnUsers() {
		if audited >= a.sampleCap() {
			break
		}
		if !tlSet[u] {
			continue
		}
		ns, err := c.Connections(u)
		if err != nil {
			continue
		}
		allCached := true
		for _, v := range ns {
			if !tlSet[v] {
				allCached = false
				break
			}
		}
		if !allCached {
			continue
		}
		myLevel, qualified := levelOf(u)
		if !qualified {
			continue
		}
		audited++

		r.check()
		if lvl, err := s.Level(u); err != nil || lvl != myLevel {
			r.failf("level-derivation", "session Level(%d)=(%d,%v), recomputed %d", u, lvl, err, myLevel)
			continue
		}

		neighborSet := make(map[int64]bool, len(ns))
		for _, v := range ns {
			neighborSet[v] = true
		}
		ln, err := s.LevelNeighbors(u)
		if err != nil {
			r.failf("level-graph", "LevelNeighbors(%d) failed on cached data: %v", u, err)
			continue
		}
		r.check()
		for _, v := range ln {
			if !neighborSet[v] {
				r.failf("level-graph", "LevelNeighbors(%d) lists %d, not a platform neighbor", u, v)
				break
			}
			lv, ok := levelOf(v)
			if !ok {
				r.failf("level-graph", "LevelNeighbors(%d) lists unqualified user %d", u, v)
				break
			}
			if lv == myLevel {
				r.failf("intra-level-edge", "edge %d-%d connects two level-%d nodes", u, v, myLevel)
				break
			}
		}

		ups, err1 := s.UpNeighbors(u)
		downs, err2 := s.DownNeighbors(u)
		r.check()
		if err1 != nil || err2 != nil {
			r.failf("level-graph", "Up/DownNeighbors(%d) failed on cached data: %v %v", u, err1, err2)
			continue
		}
		for _, v := range ups {
			if lv, ok := levelOf(v); !ok || lv >= myLevel {
				r.failf("level-graph", "UpNeighbors(%d) lists %d at level >= %d", u, v, myLevel)
				break
			}
		}
		for _, v := range downs {
			if lv, ok := levelOf(v); !ok || lv <= myLevel {
				r.failf("level-graph", "DownNeighbors(%d) lists %d at level <= %d", u, v, myLevel)
				break
			}
		}
	}

	r.check()
	if c.Cost() != costBefore {
		r.failf("audit-free", "level-graph audit charged %d calls; audits must be free", c.Cost()-costBefore)
	}
	return r
}

// CheckPMeans verifies settled ESTIMATE-p means: each must be finite,
// strictly positive (a settled mean of zero would produce an infinite
// Hansen–Hurwitz weight), and below the plausibility ceiling.
func (a Auditor) CheckPMeans(up, down map[int64]float64) *Report {
	r := &Report{}
	ceil := a.pCeil()
	scan := func(name string, m map[int64]float64) {
		users := make([]int64, 0, len(m))
		for u := range m {
			users = append(users, u)
		}
		sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
		for _, u := range users {
			p := m[u]
			r.check()
			switch {
			case math.IsNaN(p) || math.IsInf(p, 0):
				r.failf("estimate-p-sanity", "%s mean for user %d is %v", name, u, p)
			case p < 0:
				r.failf("estimate-p-sanity", "%s mean for user %d is negative: %g", name, u, p)
			case p > ceil:
				r.failf("estimate-p-sanity", "%s mean for user %d is %g, beyond plausibility ceiling %g", name, u, p, ceil)
			}
		}
	}
	scan("p-up", up)
	scan("p-down", down)
	return r
}

// CheckPEstimates audits the ESTIMATE-p means carried by a MA-TARW
// checkpoint. SRW-family checkpoints pass trivially (no means).
func (a Auditor) CheckPEstimates(ck *core.Checkpoint) *Report {
	if ck == nil {
		return &Report{}
	}
	up, down := ck.PMeans()
	return a.CheckPMeans(up, down)
}

// CheckSeedStable verifies determinism: two runs with identical seeds
// and configuration must agree exactly on estimate, cost, samples, and
// heal accounting.
func (a Auditor) CheckSeedStable(r1, r2 core.Result) *Report {
	r := &Report{}
	r.check()
	same := r1.Estimate == r2.Estimate ||
		(math.IsNaN(r1.Estimate) && math.IsNaN(r2.Estimate))
	if !same {
		r.failf("determinism", "estimates differ across identical runs: %v vs %v", r1.Estimate, r2.Estimate)
	}
	r.check()
	if r1.Cost != r2.Cost {
		r.failf("determinism", "costs differ across identical runs: %d vs %d", r1.Cost, r2.Cost)
	}
	r.check()
	if r1.Samples != r2.Samples {
		r.failf("determinism", "sample counts differ across identical runs: %d vs %d", r1.Samples, r2.Samples)
	}
	r.check()
	if r1.Heal != r2.Heal {
		r.failf("determinism", "heal stats differ across identical runs: %+v vs %+v", r1.Heal, r2.Heal)
	}
	return r
}

// CheckRun bundles the per-run checks — result accounting, cache
// stability, level-graph structure, and ESTIMATE-p sanity — into one
// report.
func (a Auditor) CheckRun(s *core.Session, res core.Result) *Report {
	r := a.CheckResult(res)
	r.Merge(a.CheckClientReplay(s.Client))
	r.Merge(a.CheckLevelGraph(s))
	r.Merge(a.CheckPEstimates(res.Checkpoint))
	return r
}
