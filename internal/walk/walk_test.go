package walk

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mba/internal/graph"
)

// memGraph adapts graph.Graph to the walk.Graph interface with no cost.
type memGraph struct{ g *graph.Graph }

func (m memGraph) Neighbors(u int64) ([]int64, error) { return m.g.Neighbors(u), nil }

// failingGraph errors on specific nodes.
type failingGraph struct {
	g    *graph.Graph
	fail map[int64]bool
}

func (f failingGraph) Neighbors(u int64) ([]int64, error) {
	if f.fail[u] {
		return nil, errors.New("boom")
	}
	return f.g.Neighbors(u), nil
}

func ring(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddEdge(int64(i), int64((i+1)%n))
	}
	return g
}

// barbell: two K5s joined by a path, degree-heterogeneous.
func barbell() *graph.Graph {
	g := graph.New()
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			g.AddEdge(int64(i), int64(j))
			g.AddEdge(int64(10+i), int64(10+j))
		}
	}
	g.AddEdge(4, 7)
	g.AddEdge(7, 10)
	return g
}

func TestSimpleWalkVisitsAll(t *testing.T) {
	g := memGraph{ring(10)}
	rng := rand.New(rand.NewSource(1))
	w := NewSimple(g, 0, rng)
	seen := map[int64]bool{0: true}
	for i := 0; i < 2000; i++ {
		u, err := w.Step()
		if err != nil {
			t.Fatal(err)
		}
		seen[u] = true
	}
	if len(seen) != 10 {
		t.Errorf("visited %d nodes, want 10", len(seen))
	}
}

func TestSimpleWalkStationaryProportionalToDegree(t *testing.T) {
	// Star graph: center degree n-1, leaves degree 1. SRW alternates
	// center/leaf, so center frequency ~= 1/2 = d(center)/2m.
	g := graph.New()
	for i := int64(1); i <= 8; i++ {
		g.AddEdge(0, i)
	}
	rng := rand.New(rand.NewSource(2))
	w := NewSimple(memGraph{g}, 0, rng)
	center := 0
	steps := 20000
	for i := 0; i < steps; i++ {
		u, _ := w.Step()
		if u == 0 {
			center++
		}
	}
	frac := float64(center) / float64(steps)
	if math.Abs(frac-0.5) > 0.03 {
		t.Errorf("center visit frequency = %v, want ~0.5", frac)
	}
}

func TestSimpleWalkStuckAndErrors(t *testing.T) {
	g := graph.New()
	g.AddNode(42)
	w := NewSimple(memGraph{g}, 42, rand.New(rand.NewSource(3)))
	if _, err := w.Step(); !errors.Is(err, ErrStuck) {
		t.Errorf("want ErrStuck, got %v", err)
	}
	fg := failingGraph{g: ring(5), fail: map[int64]bool{0: true}}
	w2 := NewSimple(fg, 0, rand.New(rand.NewSource(3)))
	if _, err := w2.Step(); err == nil {
		t.Error("want error from failing graph")
	}
	w2.Jump(1)
	if w2.Current() != 1 {
		t.Error("Jump failed")
	}
	if _, err := w2.Step(); err != nil {
		t.Errorf("step after jump: %v", err)
	}
}

func TestMetropolisUniformStationary(t *testing.T) {
	// On the star graph MHRW should visit the center far less than SRW:
	// near-uniform over 9 nodes => ~1/9.
	g := graph.New()
	for i := int64(1); i <= 8; i++ {
		g.AddEdge(0, i)
	}
	rng := rand.New(rand.NewSource(4))
	w := NewMetropolis(memGraph{g}, 0, rng)
	center := 0
	steps := 30000
	for i := 0; i < steps; i++ {
		u, _ := w.Step()
		if u == 0 {
			center++
		}
	}
	frac := float64(center) / float64(steps)
	if frac > 0.25 {
		t.Errorf("MH center frequency = %v, want near uniform (~0.11)", frac)
	}
}

func TestMetropolisStuckAndRejectedProposal(t *testing.T) {
	g := graph.New()
	g.AddNode(1)
	w := NewMetropolis(memGraph{g}, 1, rand.New(rand.NewSource(5)))
	if _, err := w.Step(); !errors.Is(err, ErrStuck) {
		t.Errorf("want ErrStuck, got %v", err)
	}
	// Proposal into a failing node is treated as a rejection.
	fg := failingGraph{g: ring(3), fail: map[int64]bool{1: true, 2: true}}
	w2 := NewMetropolis(fg, 0, rand.New(rand.NewSource(6)))
	u, err := w2.Step()
	if err != nil {
		t.Fatalf("rejected proposal errored: %v", err)
	}
	if u != 0 {
		t.Errorf("walk moved into failing node: %d", u)
	}
	w2.Jump(0)
	if w2.Current() != 0 {
		t.Error("Jump failed")
	}
}

func TestRatioEstimatorOnDegreeBiasedSamples(t *testing.T) {
	// Feed exact degree-biased samples of a known population; the ratio
	// estimator must recover the plain mean.
	g := barbell()
	f := func(u int64) float64 { return float64(u) } // value = node id
	var truthSum, truthN float64
	for _, u := range g.Nodes() {
		truthSum += f(u)
		truthN++
	}
	truth := truthSum / truthN

	rng := rand.New(rand.NewSource(7))
	w := NewSimple(memGraph{g}, 0, rng)
	var est RatioEstimator
	// Burn in, then sample every step.
	for i := 0; i < 500; i++ {
		w.Step()
	}
	for i := 0; i < 60000; i++ {
		u, _ := w.Step()
		est.Add(f(u), g.Degree(u))
	}
	got, ok := est.Estimate()
	if !ok {
		t.Fatal("no estimate")
	}
	if math.Abs(got-truth)/truth > 0.05 {
		t.Errorf("ratio estimate = %v, truth %v", got, truth)
	}
	if est.N() != 60000 {
		t.Errorf("N = %d", est.N())
	}
}

func TestRatioEstimatorEdgeCases(t *testing.T) {
	var est RatioEstimator
	if _, ok := est.Estimate(); ok {
		t.Error("empty estimator should not report ok")
	}
	est.Add(5, 0) // ignored
	if _, ok := est.Estimate(); ok {
		t.Error("zero-degree sample should be ignored")
	}
	est.Add(5, 1)
	got, ok := est.Estimate()
	if !ok || got != 5 {
		t.Errorf("single sample estimate = %v ok=%v", got, ok)
	}
}

func TestMeanEstimator(t *testing.T) {
	var m MeanEstimator
	if _, ok := m.Estimate(); ok {
		t.Error("empty mean should not be ok")
	}
	m.Add(2)
	m.Add(4)
	got, ok := m.Estimate()
	if !ok || got != 3 {
		t.Errorf("mean = %v ok=%v", got, ok)
	}
	if m.N() != 2 {
		t.Errorf("N = %d", m.N())
	}
}

func TestHansenHurwitzUnbiased(t *testing.T) {
	// Population {1..5} with f(u)=u, SUM=15. Draw with p proportional
	// to u (p_u = u/15); HH must recover 15.
	rng := rand.New(rand.NewSource(8))
	var hh HansenHurwitz
	for i := 0; i < 50000; i++ {
		x := rng.Float64() * 15
		var u float64
		for v := 1.0; v <= 5; v++ {
			x -= v
			if x <= 0 {
				u = v
				break
			}
		}
		hh.Add(u, u/15)
	}
	got, ok := hh.Estimate()
	if !ok {
		t.Fatal("no estimate")
	}
	if math.Abs(got-15)/15 > 0.02 {
		t.Errorf("HH estimate = %v, want 15", got)
	}
}

func TestHansenHurwitzEdgeCases(t *testing.T) {
	var hh HansenHurwitz
	if _, ok := hh.Estimate(); ok {
		t.Error("empty HH should not be ok")
	}
	hh.Add(3, 0) // skipped
	if hh.N() != 0 {
		t.Error("zero-probability sample counted")
	}
	hh.Add(3, 0.5)
	got, ok := hh.Estimate()
	if !ok || got != 6 {
		t.Errorf("HH = %v ok=%v", got, ok)
	}
}

func TestSizeEstimatorRecoversN(t *testing.T) {
	// Uniform-degree graph (ring): degree-biased = uniform sampling.
	n := 400
	rng := rand.New(rand.NewSource(9))
	est := NewSizeEstimator()
	for i := 0; i < 300; i++ {
		est.Add(int64(rng.Intn(n)), 2)
	}
	got, ok := est.Estimate()
	if !ok {
		t.Fatalf("no collisions after 300 draws over %d nodes", n)
	}
	if math.Abs(got-float64(n))/float64(n) > 0.5 {
		t.Errorf("size estimate = %v, want ~%d", got, n)
	}
}

func TestSizeEstimatorAveragedAccuracy(t *testing.T) {
	// Averaged over many runs the estimator should be close to n.
	n := 300
	rng := rand.New(rand.NewSource(10))
	var sum float64
	runs := 200
	for r := 0; r < runs; r++ {
		est := NewSizeEstimator()
		for est.Collisions() < 5 {
			est.Add(int64(rng.Intn(n)), 2)
		}
		v, ok := est.Estimate()
		if !ok {
			t.Fatal("estimate should be available with collisions")
		}
		sum += v
	}
	mean := sum / float64(runs)
	if math.Abs(mean-float64(n))/float64(n) > 0.15 {
		t.Errorf("mean size estimate = %v, want ~%d", mean, n)
	}
}

func TestSizeEstimatorNeedsCollision(t *testing.T) {
	est := NewSizeEstimator()
	est.Add(1, 3)
	est.Add(2, 3)
	if _, ok := est.Estimate(); ok {
		t.Error("estimate without collision should not be ok")
	}
	est.Add(1, 3)
	if est.Collisions() != 1 {
		t.Errorf("collisions = %d, want 1", est.Collisions())
	}
	if _, ok := est.Estimate(); !ok {
		t.Error("estimate with collision should be ok")
	}
	est.Add(0, 0) // ignored
	if est.N() != 3 {
		t.Errorf("N = %d, want 3", est.N())
	}
}

// Property: HH estimate is invariant under scaling f and p jointly in
// the sense SUM(c*f) = c*SUM(f).
func TestHansenHurwitzScaleProperty(t *testing.T) {
	f := func(vals []uint8, c uint8) bool {
		if c == 0 {
			return true
		}
		var a, b HansenHurwitz
		for _, v := range vals {
			p := (float64(v%7) + 1) / 10
			a.Add(float64(v), p)
			b.Add(float64(v)*float64(c), p)
		}
		ea, oka := a.Estimate()
		eb, okb := b.Estimate()
		if oka != okb {
			return false
		}
		if !oka {
			return true
		}
		return math.Abs(eb-float64(c)*ea) < 1e-6*math.Max(1, math.Abs(eb))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ratio estimator of a constant function is that constant.
func TestRatioEstimatorConstantProperty(t *testing.T) {
	f := func(degrees []uint8, cRaw uint8) bool {
		c := float64(cRaw)
		var est RatioEstimator
		any := false
		for _, d := range degrees {
			if d > 0 {
				est.Add(c, int(d))
				any = true
			}
		}
		got, ok := est.Estimate()
		if !any {
			return !ok
		}
		return ok && math.Abs(got-c) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
