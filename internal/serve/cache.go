package serve

import (
	"math"

	"mba/internal/api"
	"mba/internal/core"
)

// cacheEntry is one completed run, stored under (key, budget).
type cacheEntry struct {
	budget        int
	bits          uint64
	variance      float64
	cost          int
	samples       int
	degraded      bool
	status        string
	reason        string
	retries       int
	rateLimitHits int
	// virtualNs is the run's total virtual duration: a cached answer is
	// only valid for a request whose deadline headroom covers it (the
	// offline-equivalent run would have completed in time).
	virtualNs int64
	// deadlined marks runs cut short by their own deadline; they are
	// never served as exact hits (a different headroom would have cut
	// elsewhere) but still contribute their checkpoint as a partial.
	deadlined bool
}

// partialEntry is the pilot-walk half of the cache: the deepest
// checkpoint seen for a key. A later identical query with a larger
// budget resumes from Rebase()d state — the warm response cache
// replays the paid prefix free, so the resumed run is bit-identical
// to an uninterrupted one and never repays spent budget.
type partialEntry struct {
	ck    *core.Checkpoint
	cost  int
	stats api.Stats
}

// resultCache is the result + pilot-walk cache. Keys already encode
// (normalized query, algorithm, seed, snapshot epoch, tenant class);
// the completed map adds the granted budget. It is not safe for
// concurrent use — callers hold Service.mu.
type resultCache struct {
	done     map[string]map[int]*cacheEntry
	partials map[string]*partialEntry
}

func newResultCache() *resultCache {
	return &resultCache{
		done:     make(map[string]map[int]*cacheEntry),
		partials: make(map[string]*partialEntry),
	}
}

// completed returns the cached finished run for (key, budget) if one
// exists and the request's virtual-deadline headroom (0 = none) covers
// its duration.
func (c *resultCache) completed(key string, budget int, headroomNs int64) *cacheEntry {
	e := c.done[key][budget]
	if e == nil || e.deadlined {
		return nil
	}
	if headroomNs > 0 && e.virtualNs > headroomNs {
		return nil
	}
	return e
}

// bestPartial returns the deepest cached checkpoint strictly cheaper
// than the budget about to run, or nil. The caller Rebase()s it.
func (c *resultCache) bestPartial(key string, budget int) *partialEntry {
	p := c.partials[key]
	if p == nil || p.cost <= 0 || p.cost >= budget {
		return nil
	}
	return p
}

// store records a finished execution: the completed entry under its
// granted budget, and — when the run left a checkpoint deeper than
// what is already cached — the partial for future resumes.
func (c *resultCache) store(key string, budget int, res core.Result, virtualNs int64, deadlined bool, status, reason string) {
	byBudget := c.done[key]
	if byBudget == nil {
		byBudget = make(map[int]*cacheEntry)
		c.done[key] = byBudget
	}
	if byBudget[budget] == nil {
		byBudget[budget] = &cacheEntry{
			budget:        budget,
			bits:          math.Float64bits(res.Estimate),
			variance:      tailVariance(res.Trajectory),
			cost:          res.Cost,
			samples:       res.Samples,
			degraded:      res.Degraded,
			status:        status,
			reason:        reason,
			retries:       res.Stats.Retries,
			rateLimitHits: res.Stats.RateLimitHits,
			virtualNs:     virtualNs,
			deadlined:     deadlined,
		}
	}
	if res.Checkpoint != nil {
		p := c.partials[key]
		if p == nil || res.Cost > p.cost {
			c.partials[key] = &partialEntry{ck: res.Checkpoint, cost: res.Cost, stats: res.Stats}
		}
	}
}

// flight is one in-flight execution identical concurrent requests
// coalesce onto (live path only): followers wait on done and copy the
// leader's outcome with nothing charged.
type flight struct {
	done chan struct{}
	resp Response
}
