package platform

import (
	"math/rand"
	"sort"

	"mba/internal/model"
)

// ChurnConfig parameterizes deterministic platform churn: the state a
// long crawl observes is not frozen — accounts get suspended or
// deleted, users flip to protected (and back), edges appear and
// disappear, posts are deleted. Events are drawn as a pure function of
// (Seed, call clock), so a churn schedule replays exactly: two runs
// issuing the same call sequence observe byte-identical drift.
//
// The event *count* per clock tick is fully deterministic (a
// fractional-rate accumulator, no random draw), and only the event
// *content* consumes seed-derived randomness — the churn state after
// serving N calls depends on nothing but Seed and N.
type ChurnConfig struct {
	// Rate is the expected number of churn events per API call served.
	// Zero disables churn.
	Rate float64
	// Seed drives the deterministic event draws.
	Seed int64
	// Event-class weights (relative; zero values take the defaults
	// below, which sum to 1 but need not).
	VanishWeight     float64 // account suspended/deleted → unknown user
	ProtectWeight    float64 // public → protected flip
	UnprotectWeight  float64 // churn-protected → public flip
	EdgeAddWeight    float64 // new follow edge between live users
	EdgeRemoveWeight float64 // unfollow: existing edge removed
	PostDeleteWeight float64 // a user deletes their newest keyword post
}

// Enabled reports whether the configuration produces any churn.
func (c ChurnConfig) Enabled() bool { return c.Rate > 0 }

func (c ChurnConfig) withDefaults() ChurnConfig {
	if c.VanishWeight == 0 && c.ProtectWeight == 0 && c.UnprotectWeight == 0 &&
		c.EdgeAddWeight == 0 && c.EdgeRemoveWeight == 0 && c.PostDeleteWeight == 0 {
		c.VanishWeight = 0.15
		c.ProtectWeight = 0.15
		c.UnprotectWeight = 0.10
		c.EdgeAddWeight = 0.20
		c.EdgeRemoveWeight = 0.25
		c.PostDeleteWeight = 0.15
	}
	return c
}

// ChurnCounts tallies the events a ChurnState has applied so far
// (diagnostics; estimators learn about churn only through the API).
type ChurnCounts struct {
	Vanished     int
	Protected    int
	Unprotected  int
	EdgesAdded   int
	EdgesRemoved int
	PostsDeleted int
}

// Total returns the number of applied events.
func (c ChurnCounts) Total() int {
	return c.Vanished + c.Protected + c.Unprotected + c.EdgesAdded + c.EdgesRemoved + c.PostsDeleted
}

// ChurnState is a mutation overlay over an immutable Platform. The
// base platform is shared (workload caches it process-wide) and never
// touched; all drift lives in the overlay, so independent servers over
// the same platform churn independently.
type ChurnState struct {
	cfg ChurnConfig
	p   *Platform
	rng *rand.Rand

	clock int
	carry float64 // fractional-rate event accumulator

	gone      map[int64]bool
	protected map[int64]bool
	protOrder []int64 // churn-protected users, insertion order (for deterministic unprotect picks)
	added     map[int64][]int64
	removed   map[int64]map[int64]bool
	// postsDeleted maps keyword → user → number of newest posts deleted.
	postsDeleted map[string]map[int64]int

	// keywords and adopters are precomputed deterministic pick pools.
	keywords []string
	adopters map[string][]int64

	counts ChurnCounts
}

// NewChurn builds a churn overlay for p. The overlay starts empty;
// AdvanceTo applies events as the server's call clock moves.
func NewChurn(p *Platform, cfg ChurnConfig) *ChurnState {
	cfg = cfg.withDefaults()
	c := &ChurnState{
		cfg:          cfg,
		p:            p,
		rng:          rand.New(rand.NewSource(cfg.Seed ^ 0xc4a21)),
		gone:         make(map[int64]bool),
		protected:    make(map[int64]bool),
		added:        make(map[int64][]int64),
		removed:      make(map[int64]map[int64]bool),
		postsDeleted: make(map[string]map[int64]int),
		adopters:     make(map[string][]int64),
	}
	for kw := range p.Cascades {
		c.keywords = append(c.keywords, kw)
	}
	sort.Strings(c.keywords)
	for _, kw := range c.keywords {
		c.adopters[kw] = p.Cascades[kw].Adopters()
	}
	return c
}

// Clock returns the last clock tick the overlay has advanced to.
func (c *ChurnState) Clock() int { return c.clock }

// Counts returns the applied-event tallies.
func (c *ChurnState) Counts() ChurnCounts { return c.counts }

// AdvanceTo applies all churn events scheduled up to clock. Calls with
// a non-increasing clock are no-ops, so the state at tick t is a pure
// function of (Seed, t) regardless of how the advances were batched.
func (c *ChurnState) AdvanceTo(clock int) {
	if !c.cfg.Enabled() {
		return
	}
	for c.clock < clock {
		c.clock++
		c.carry += c.cfg.Rate
		for c.carry >= 1 {
			c.carry--
			c.event()
		}
	}
}

// event draws and applies one churn event.
func (c *ChurnState) event() {
	w := c.cfg
	total := w.VanishWeight + w.ProtectWeight + w.UnprotectWeight +
		w.EdgeAddWeight + w.EdgeRemoveWeight + w.PostDeleteWeight
	x := c.rng.Float64() * total
	switch {
	case x < w.VanishWeight:
		c.vanishEvent()
	case x < w.VanishWeight+w.ProtectWeight:
		c.protectEvent()
	case x < w.VanishWeight+w.ProtectWeight+w.UnprotectWeight:
		c.unprotectEvent()
	case x < w.VanishWeight+w.ProtectWeight+w.UnprotectWeight+w.EdgeAddWeight:
		c.edgeAddEvent()
	case x < w.VanishWeight+w.ProtectWeight+w.UnprotectWeight+w.EdgeAddWeight+w.EdgeRemoveWeight:
		c.edgeRemoveEvent()
	default:
		c.postDeleteEvent()
	}
}

// pickAlive draws a uniform non-vanished user, or -1 if the draws keep
// hitting vanished accounts (pathological churn; the event is dropped).
func (c *ChurnState) pickAlive() int64 {
	n := c.p.NumUsers()
	for i := 0; i < 32; i++ {
		u := int64(c.rng.Intn(n))
		if !c.gone[u] {
			return u
		}
	}
	return -1
}

func (c *ChurnState) vanishEvent() {
	u := c.pickAlive()
	if u < 0 {
		return
	}
	c.gone[u] = true
	c.counts.Vanished++
}

func (c *ChurnState) protectEvent() {
	u := c.pickAlive()
	if u < 0 || c.protected[u] {
		return
	}
	c.protected[u] = true
	c.protOrder = append(c.protOrder, u)
	c.counts.Protected++
}

func (c *ChurnState) unprotectEvent() {
	// Compact stale entries (already unprotected or vanished) lazily.
	for len(c.protOrder) > 0 {
		i := c.rng.Intn(len(c.protOrder))
		u := c.protOrder[i]
		c.protOrder[i] = c.protOrder[len(c.protOrder)-1]
		c.protOrder = c.protOrder[:len(c.protOrder)-1]
		if c.protected[u] && !c.gone[u] {
			delete(c.protected, u)
			c.counts.Unprotected++
			return
		}
	}
}

// adjacent reports whether u and v are currently connected (base edge
// not removed, or churn-added edge).
func (c *ChurnState) adjacent(u, v int64) bool {
	for _, x := range c.added[u] {
		if x == v {
			return true
		}
	}
	if c.removed[u][v] {
		return false
	}
	for _, x := range c.p.Social.Neighbors(u) {
		if x == v {
			return true
		}
	}
	return false
}

func (c *ChurnState) edgeAddEvent() {
	u := c.pickAlive()
	v := c.pickAlive()
	if u < 0 || v < 0 || u == v || c.adjacent(u, v) {
		return
	}
	c.added[u] = append(c.added[u], v)
	c.added[v] = append(c.added[v], u)
	c.counts.EdgesAdded++
}

func (c *ChurnState) edgeRemoveEvent() {
	u := c.pickAlive()
	if u < 0 {
		return
	}
	ns := c.Neighbors(u)
	if len(ns) == 0 {
		return
	}
	v := ns[c.rng.Intn(len(ns))]
	if c.removed[u] == nil {
		c.removed[u] = make(map[int64]bool)
	}
	if c.removed[v] == nil {
		c.removed[v] = make(map[int64]bool)
	}
	c.removed[u][v] = true
	c.removed[v][u] = true
	c.counts.EdgesRemoved++
}

func (c *ChurnState) postDeleteEvent() {
	if len(c.keywords) == 0 {
		return
	}
	kw := c.keywords[c.rng.Intn(len(c.keywords))]
	pool := c.adopters[kw]
	if len(pool) == 0 {
		return
	}
	u := pool[c.rng.Intn(len(pool))]
	if c.gone[u] {
		return
	}
	have := len(c.p.Cascades[kw].Posts[u])
	m := c.postsDeleted[kw]
	if m == nil {
		m = make(map[int64]int)
		c.postsDeleted[kw] = m
	}
	if m[u] >= have {
		return // everything already deleted
	}
	m[u]++
	c.counts.PostsDeleted++
}

// Gone reports whether u's account has been suspended or deleted.
func (c *ChurnState) Gone(u int64) bool { return c.gone[u] }

// Protected reports whether churn flipped u to protected. (Fault-
// injected private users are tracked separately by the API layer.)
func (c *ChurnState) Protected(u int64) bool { return c.protected[u] }

// Neighbors returns u's neighbor list under the overlay: base edges
// minus removed ones plus churn-added ones, with vanished endpoints
// dropped (a suspended account disappears from follower lists).
func (c *ChurnState) Neighbors(u int64) []int64 {
	base := c.p.Social.Neighbors(u)
	out := make([]int64, 0, len(base)+len(c.added[u]))
	rm := c.removed[u]
	for _, v := range base {
		if rm[v] || c.gone[v] {
			continue
		}
		out = append(out, v)
	}
	for _, v := range c.added[u] {
		if c.gone[v] {
			continue
		}
		out = append(out, v)
	}
	return out
}

// VisiblePosts filters one cascade's posts for u: the newest n deleted
// posts are dropped (posts arrive oldest-first, deletions take the
// tail). The input slice is never mutated.
func (c *ChurnState) VisiblePosts(keyword string, u int64, posts []model.Post) []model.Post {
	n := c.postsDeleted[keyword][u]
	if n <= 0 {
		return posts
	}
	if n >= len(posts) {
		return nil
	}
	return posts[:len(posts)-n]
}

// FilterTimeline applies per-keyword post deletions to an assembled
// (multi-keyword) timeline slice, dropping the newest deleted posts of
// each keyword. Keywords are visited in sorted order so the output is
// deterministic.
func (c *ChurnState) FilterTimeline(u int64, posts []model.Post) []model.Post {
	var toDrop int
	drop := make(map[string]int)
	for _, kw := range c.keywords {
		if n := c.postsDeleted[kw][u]; n > 0 {
			drop[kw] = n
			toDrop += n
		}
	}
	if toDrop == 0 {
		return posts
	}
	// Walk newest→oldest, skipping the first drop[kw] posts of each
	// keyword, then restore oldest-first order.
	kept := make([]model.Post, 0, len(posts))
	for i := len(posts) - 1; i >= 0; i-- {
		p := posts[i]
		if drop[p.Keyword] > 0 {
			drop[p.Keyword]--
			continue
		}
		kept = append(kept, p)
	}
	for i, j := 0, len(kept)-1; i < j; i, j = i+1, j-1 {
		kept[i], kept[j] = kept[j], kept[i]
	}
	return kept
}
