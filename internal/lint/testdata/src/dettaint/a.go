// Package dettaint exercises the flow-sensitive ordering taint: map
// iteration and select completion are sources, sort.*/slices.* kills,
// and the artifact surface (Result fields/literals, fmt printers,
// in-program writers) sinks.
package dettaint

import (
	"fmt"
	"sort"
)

// Result mirrors the run artifact surface: stores into its fields are
// taint sinks.
type Result struct {
	Keys []string
}

func storeUnsorted(m map[string]int) Result {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	var r Result
	r.Keys = keys // want `value ordered by map iteration order at a\.go:\d+ reaches Result\.Keys field`
	return r
}

func storeSorted(m map[string]int) Result {
	// The canonical fix: collect, sort, then publish.
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return Result{Keys: keys}
}

func sortTooLate(m map[string]int, r *Result) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	// Sorting AFTER the store does not clean the stored value: the
	// analysis is flow-sensitive where detrange's heuristic is not.
	r.Keys = keys // want `value ordered by map iteration order at a\.go:\d+ reaches Result\.Keys field`
	sort.Strings(keys)
}

func selectOrder(a, b chan string) {
	var lines []string
	for i := 0; i < 2; i++ {
		select {
		case s := <-a:
			lines = append(lines, s)
		case s := <-b:
			lines = append(lines, s)
		}
	}
	fmt.Println(lines) // want `value ordered by select completion order at a\.go:\d+ reaches fmt\.Println`
}

// unsortedKeys leaks map order through its return value; the taint
// follows the function summary into every caller.
func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func storeFromHelper(m map[string]int) Result {
	keys := unsortedKeys(m)
	var r Result
	r.Keys = keys // want `value ordered by call to unsortedKeys \(returns nondet-ordered value\) at a\.go:\d+ reaches Result\.Keys field`
	return r
}

func sortHelperResult(m map[string]int) Result {
	keys := unsortedKeys(m)
	sort.Strings(keys)
	return Result{Keys: keys}
}

// emit writes rows straight into the run log; a nondet-ordered
// argument becomes a nondet artifact, so callers inherit the sink.
func emit(rows []string) {
	for _, r := range rows {
		fmt.Println(r)
	}
}

func passToEmit(m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	emit(keys) // want `value ordered by map iteration order at a\.go:\d+ reaches parameter of emit that reaches an artifact writer`
}

func sortedBeforeEmit(m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	emit(keys)
}
