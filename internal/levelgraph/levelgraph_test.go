package levelgraph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mba/internal/graph"
	"mba/internal/model"
)

func TestLevelOf(t *testing.T) {
	cases := []struct {
		first model.Tick
		intv  model.Tick
		want  int
	}{
		{0, model.Day, 0},
		{23, model.Day, 0},
		{24, model.Day, 1},
		{49, model.Day, 2},
		{100 * model.Day, model.Week, 14},
		{5, 0, 0}, // degenerate interval
	}
	for _, c := range cases {
		if got := LevelOf(c.first, c.intv); got != c.want {
			t.Errorf("LevelOf(%d,%d) = %d, want %d", c.first, c.intv, got, c.want)
		}
	}
}

func TestClassify(t *testing.T) {
	if Classify(3, 3) != Intra {
		t.Error("same level should be Intra")
	}
	if Classify(3, 4) != Adjacent || Classify(4, 3) != Adjacent {
		t.Error("adjacent levels should be Adjacent")
	}
	if Classify(1, 5) != Cross || Classify(5, 1) != Cross {
		t.Error("distant levels should be Cross")
	}
	for _, c := range []EdgeClass{Intra, Adjacent, Cross, EdgeClass(9)} {
		if c.String() == "" {
			t.Error("empty String()")
		}
	}
}

// testTermGraph builds a small term subgraph with known taxonomy:
// levels by day; nodes 0,1 on day 0; 2,3 on day 1; 4 on day 3.
func testTermGraph() (*graph.Graph, map[int64]model.Tick) {
	g := graph.New()
	first := map[int64]model.Tick{
		0: 1, 1: 2, // level 0
		2: 25, 3: 30, // level 1
		4: 3 * model.Day, // level 3
	}
	g.AddEdge(0, 1) // intra
	g.AddEdge(2, 3) // intra
	g.AddEdge(0, 2) // adjacent
	g.AddEdge(1, 3) // adjacent
	g.AddEdge(0, 4) // cross (0->3)
	return g, first
}

func TestAnalyze(t *testing.T) {
	g, first := testTermGraph()
	s := Analyze(g, first, model.Day)
	if s.Nodes != 5 || s.Edges != 5 {
		t.Fatalf("nodes/edges = %d/%d", s.Nodes, s.Edges)
	}
	if s.IntraEdges != 2 || s.AdjEdges != 2 || s.CrossEdges != 1 {
		t.Errorf("taxonomy = %d/%d/%d, want 2/2/1", s.IntraEdges, s.AdjEdges, s.CrossEdges)
	}
	if s.Levels != 3 {
		t.Errorf("levels = %d, want 3", s.Levels)
	}
	if math.Abs(s.IntraFrac()-0.4) > 1e-12 {
		t.Errorf("IntraFrac = %v, want 0.4", s.IntraFrac())
	}
	if math.Abs(s.CrossFrac()-0.2) > 1e-12 {
		t.Errorf("CrossFrac = %v, want 0.2", s.CrossFrac())
	}
	// d = 2*(adj+cross)/n = 6/5; k = 2*intra/n = 4/5.
	if math.Abs(s.AvgAdjDegree-1.2) > 1e-12 {
		t.Errorf("AvgAdjDegree = %v", s.AvgAdjDegree)
	}
	if math.Abs(s.AvgIntraDegree-0.8) > 1e-12 {
		t.Errorf("AvgIntraDegree = %v", s.AvgIntraDegree)
	}
	if (Stats{}).IntraFrac() != 0 || (Stats{}).CrossFrac() != 0 {
		t.Error("empty stats fractions should be 0")
	}
}

func TestBuildRemovesExactlyIntraEdges(t *testing.T) {
	g, first := testTermGraph()
	lvl := Build(g, first, model.Day)
	if lvl.NumEdges() != 3 {
		t.Fatalf("level graph edges = %d, want 3", lvl.NumEdges())
	}
	if lvl.HasEdge(0, 1) || lvl.HasEdge(2, 3) {
		t.Error("intra edges survived")
	}
	if !lvl.HasEdge(0, 2) || !lvl.HasEdge(1, 3) || !lvl.HasEdge(0, 4) {
		t.Error("non-intra edges removed")
	}
	if lvl.NumNodes() != g.NumNodes() {
		t.Error("nodes dropped")
	}
	// Original untouched.
	if g.NumEdges() != 5 {
		t.Error("Build mutated input graph")
	}
}

func TestBuildPartial(t *testing.T) {
	g, first := testTermGraph()
	rng := rand.New(rand.NewSource(1))
	half := BuildPartial(g, first, model.Day, 0.5, rng)
	if half.NumEdges() != 4 { // 5 - round(0.5*2) = 4
		t.Errorf("half removal edges = %d, want 4", half.NumEdges())
	}
	none := BuildPartial(g, first, model.Day, 0, nil)
	if none.NumEdges() != 5 {
		t.Errorf("zero removal edges = %d, want 5", none.NumEdges())
	}
	all := BuildPartial(g, first, model.Day, 1.5, nil) // clamped
	if all.NumEdges() != 3 {
		t.Errorf("full removal edges = %d, want 3", all.NumEdges())
	}
	neg := BuildPartial(g, first, model.Day, -1, nil)
	if neg.NumEdges() != 5 {
		t.Errorf("negative frac edges = %d, want 5", neg.NumEdges())
	}
}

func TestIntervalNames(t *testing.T) {
	cases := map[model.Tick]string{
		2 * model.Hour:  "2H",
		12 * model.Hour: "12H",
		model.Day:       "1D",
		2 * model.Day:   "2D",
		model.Week:      "1W",
		model.Month:     "1M",
	}
	for tick, want := range cases {
		if got := IntervalName(tick); got != want {
			t.Errorf("IntervalName(%d) = %q, want %q", tick, got, want)
		}
	}
	if len(CandidateIntervals()) != 7 {
		t.Errorf("candidate grid size = %d, want 7 (Fig. 5)", len(CandidateIntervals()))
	}
}

func TestHorizontalCutReducesWithIntra(t *testing.T) {
	base := ModelParams{N: 10000, H: 20, D: 4, K: 0}
	if got := base.horizontalCut(); math.Abs(got-1.0/19.0) > 1e-12 {
		t.Errorf("k=0 horizontal cut = %v, want 1/(h-1)", got)
	}
	withK := base
	withK.K = 6
	if withK.horizontalCut() >= base.horizontalCut() {
		t.Error("intra edges should reduce the horizontal-cut conductance")
	}
}

func TestConductanceConsistency(t *testing.T) {
	// Eq. 2 with K=0 must equal Eq. 3.
	for _, m := range []ModelParams{
		{N: 10000, H: 50, D: 2},
		{N: 10000, H: 10, D: 600}, // d in (n/2h, n/h) regime
		{N: 1000, H: 5, D: 10},
	} {
		m.K = 0
		if a, b := m.Conductance(), m.ConductanceNoIntra(); math.Abs(a-b) > 1e-15 {
			t.Errorf("Eq2(k=0)=%v != Eq3=%v for %+v", a, b, m)
		}
	}
}

func TestConductanceDecreasesWithIntraEdges(t *testing.T) {
	// Theorem 4.1's message: adding intra-level edges reduces model
	// conductance across regimes.
	for _, m := range []ModelParams{
		{N: 10000, H: 50, D: 2},
		{N: 10000, H: 20, D: 5},
		{N: 2000, H: 10, D: 3},
	} {
		prev := m.ConductanceNoIntra()
		if prev <= 0 {
			t.Fatalf("zero baseline conductance for %+v", m)
		}
		for _, k := range []float64{1, 5, 20} {
			mk := m
			mk.K = k
			cur := mk.Conductance()
			if cur > prev+1e-15 {
				t.Errorf("conductance increased with k=%v for %+v: %v > %v", k, m, cur, prev)
			}
			prev = cur
		}
	}
}

func TestConductanceDegenerate(t *testing.T) {
	if (ModelParams{N: 100, H: 0, D: 2}).Conductance() != 0 {
		t.Error("h=0 should be 0")
	}
	if (ModelParams{N: 100, H: 5, D: 0}).Conductance() != 0 {
		t.Error("d=0 should be 0")
	}
	if (ModelParams{N: 0, H: 5, D: 2}).Conductance() != 0 {
		t.Error("n=0 should be 0")
	}
	if (ModelParams{N: 100, H: 1, D: 2, K: 3}).Conductance() != 1 {
		t.Error("h=1 with intra edges should return 1")
	}
	if (ModelParams{N: 100, H: 1, D: 2}).Conductance() != 0 {
		t.Error("h=1 without intra edges should return 0")
	}
}

func TestOptimalDegree(t *testing.T) {
	// Corollary 4.1's worked example: h=5 -> d = 9*8/(5*1) = 14.4.
	if got := OptimalDegree(5); math.Abs(got-14.4) > 1e-12 {
		t.Errorf("OptimalDegree(5) = %v, want 14.4", got)
	}
	// Paper: d = 2.13 at h = 50, 2.06 at h = 100 (2 decimals).
	if got := OptimalDegree(50); math.Abs(got-2.13) > 0.005 {
		t.Errorf("OptimalDegree(50) = %v, want ~2.13", got)
	}
	if got := OptimalDegree(100); math.Abs(got-2.06) > 0.005 {
		t.Errorf("OptimalDegree(100) = %v, want ~2.06", got)
	}
	// Limit d -> 2 as h -> inf.
	if got := OptimalDegree(100000); math.Abs(got-2) > 0.001 {
		t.Errorf("OptimalDegree(1e5) = %v, want ~2", got)
	}
	// h < 5: undefined, +Inf.
	if !math.IsInf(OptimalDegree(4), 1) {
		t.Error("OptimalDegree(4) should be +Inf")
	}
}

func TestPickupDistance(t *testing.T) {
	// d exactly at the optimum scores 0.
	s := IntervalStats{H: 5, D: 14.4}
	if got := s.PickupDistance(); math.Abs(got) > 1e-12 {
		t.Errorf("distance at optimum = %v, want 0", got)
	}
	// Halving and doubling are symmetric.
	lo := IntervalStats{H: 5, D: 7.2}.PickupDistance()
	hi := IntervalStats{H: 5, D: 28.8}.PickupDistance()
	if math.Abs(lo-hi) > 1e-12 {
		t.Errorf("log distance not symmetric: %v vs %v", lo, hi)
	}
	// h < 5 (no optimum) and d = 0 score +Inf.
	if !math.IsInf(IntervalStats{H: 3, D: 2}.PickupDistance(), 1) {
		t.Error("h<5 should score +Inf")
	}
	if !math.IsInf(IntervalStats{H: 50, D: 0}.PickupDistance(), 1) {
		t.Error("d=0 should score +Inf")
	}
}

func TestRankAndSelectIntervals(t *testing.T) {
	stats := []IntervalStats{
		{Interval: model.Day, H: 300, D: 0.3, N: 100000},   // far below d*≈2
		{Interval: model.Week, H: 43, D: 2.1, N: 100000},   // near optimal
		{Interval: model.Month, H: 10, D: 20, N: 100000},   // far above d*≈3.1
		{Interval: 2 * model.Month, H: 4, D: 9, N: 100000}, // no optimum
	}
	ranked := RankIntervals(stats)
	for i := 1; i < len(ranked); i++ {
		if ranked[i-1].PickupDistance() > ranked[i].PickupDistance() {
			t.Fatal("ranking not in increasing pick-up distance order")
		}
	}
	best, ok := SelectInterval(stats)
	if !ok {
		t.Fatal("SelectInterval failed")
	}
	if best.Interval != model.Week {
		t.Errorf("selected %v, want the near-optimal week", best.Interval)
	}
	if _, ok := SelectInterval(nil); ok {
		t.Error("empty candidates should not select")
	}
	// All-infinite candidates cannot be selected.
	if _, ok := SelectInterval([]IntervalStats{{Interval: model.Day, H: 2, D: 1}}); ok {
		t.Error("all-inf candidates should not select")
	}
	// Ties break toward longer intervals.
	tied := []IntervalStats{
		{Interval: model.Day, H: 50, D: 2.13},
		{Interval: model.Week, H: 50, D: 2.13},
	}
	if best, _ := SelectInterval(tied); best.Interval != model.Week {
		t.Error("tie should prefer the longer interval")
	}
	// Input slice must not be reordered.
	if stats[0].Interval != model.Day {
		t.Error("RankIntervals mutated input")
	}
}

// Property: Build output never contains an intra-level edge and always
// preserves all non-intra edges.
func TestBuildTaxonomyProperty(t *testing.T) {
	f := func(pairs [][2]uint8, days []uint8) bool {
		g := graph.New()
		first := make(map[int64]model.Tick)
		for i, d := range days {
			first[int64(i)] = model.Tick(d) * model.Day
			g.AddNode(int64(i))
		}
		n := len(days)
		if n == 0 {
			return true
		}
		for _, p := range pairs {
			u, v := int64(p[0])%int64(n), int64(p[1])%int64(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		lvl := Build(g, first, model.Day)
		okAll := true
		lvl.Edges(func(u, v int64) bool {
			if Classify(LevelOf(first[u], model.Day), LevelOf(first[v], model.Day)) == Intra {
				okAll = false
				return false
			}
			return true
		})
		if !okAll {
			return false
		}
		// Count non-intra edges in the original.
		nonIntra := 0
		g.Edges(func(u, v int64) bool {
			if Classify(LevelOf(first[u], model.Day), LevelOf(first[v], model.Day)) != Intra {
				nonIntra++
			}
			return true
		})
		return lvl.NumEdges() == nonIntra
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: model conductance is always in [0, 1] for sane parameters.
func TestModelConductanceRangeProperty(t *testing.T) {
	f := func(nRaw uint16, hRaw, dRaw, kRaw uint8) bool {
		n := int(nRaw)%50000 + 100
		h := int(hRaw)%200 + 2
		d := float64(dRaw%50) + 0.5
		k := float64(kRaw % 50)
		phi := ModelParams{N: n, H: h, D: d, K: k}.Conductance()
		return phi >= 0 && phi <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
