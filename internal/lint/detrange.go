package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DetRange flags `range` over a map where the nondeterministic
// iteration order can escape into an ordered artifact: appending to a
// slice declared outside the loop (unless that slice is sorted later
// in the same function), emitting output (fmt printers, Write*
// methods) mid-iteration, accumulating into a float (float addition is
// not associative, so the reduced value depends on iteration order),
// or invoking a caller-supplied callback (which exports the order
// wholesale). Benchmark tables, CSV artifacts, and persisted snapshots
// must be byte-identical across runs of the same seed; the idiomatic
// fix is collect keys → sort → range over the sorted slice.
var DetRange = &Analyzer{
	Name: "detrange",
	Doc: "flag map iteration whose order leaks into slices, emitted output, " +
		"float reductions, or callbacks without an intervening sort",
	Run: runDetRange,
}

func runDetRange(pass *Pass) error {
	for _, f := range pass.Files {
		var bodies []*ast.BlockStmt
		var ranges []*ast.RangeStmt
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				if x.Body != nil {
					bodies = append(bodies, x.Body)
				}
			case *ast.FuncLit:
				bodies = append(bodies, x.Body)
			case *ast.RangeStmt:
				if isMapRange(pass, x) {
					ranges = append(ranges, x)
				}
			}
			return true
		})
		for _, rs := range ranges {
			checkMapRange(pass, rs, enclosingBody(bodies, rs))
		}
	}
	return nil
}

// enclosingBody returns the innermost function body containing n — the
// scope the sorted-later exemption scans past the range statement.
func enclosingBody(bodies []*ast.BlockStmt, n ast.Node) *ast.BlockStmt {
	var best *ast.BlockStmt
	for _, b := range bodies {
		if b.Pos() <= n.Pos() && n.End() <= b.End() {
			if best == nil || b.End()-b.Pos() < best.End()-best.Pos() {
				best = b
			}
		}
	}
	return best
}

func isMapRange(pass *Pass, rs *ast.RangeStmt) bool {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// rootObj resolves the variable a (possibly nested) assignable
// expression ultimately stores into: sum, st.sum, xs[i] -> sum, st, xs.
func rootObj(pass *Pass, e ast.Expr) types.Object {
	return rootObjInfo(pass.TypesInfo, e)
}

func declaredOutside(obj types.Object, node ast.Node) bool {
	return obj != nil && (obj.Pos() < node.Pos() || obj.Pos() > node.End())
}

func checkMapRange(pass *Pass, rs *ast.RangeStmt, enclosing *ast.BlockStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		// Nested map ranges are reported on their own visit.
		if inner, ok := n.(*ast.RangeStmt); ok && inner != rs && isMapRange(pass, inner) {
			return false
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			checkRangeAssign(pass, rs, enclosing, st)
		case *ast.CallExpr:
			checkRangeCall(pass, rs, st)
		}
		return true
	})
}

func checkRangeAssign(pass *Pass, rs *ast.RangeStmt, enclosing *ast.BlockStmt, st *ast.AssignStmt) {
	switch st.Tok {
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range st.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || i >= len(st.Lhs) {
				continue
			}
			fid, ok := call.Fun.(*ast.Ident)
			if !ok || fid.Name != "append" {
				continue
			}
			if _, isBuiltin := pass.TypesInfo.ObjectOf(fid).(*types.Builtin); !isBuiltin {
				continue
			}
			// A keyed store (m2[k] = append(...)) lands each iteration's
			// result under its own key; only appends that grow one shared
			// slice are order-sensitive.
			if _, keyed := st.Lhs[i].(*ast.IndexExpr); keyed {
				continue
			}
			obj := rootObj(pass, st.Lhs[i])
			if !declaredOutside(obj, rs) {
				continue
			}
			if sortedLaterIn(pass, enclosing, rs, obj) {
				continue
			}
			pass.Reportf(st.Pos(),
				"append to %s inside map iteration makes its element order nondeterministic; collect keys, sort, then range over the sorted slice (or sort %s afterwards)",
				obj.Name(), obj.Name())
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		lhs := st.Lhs[0]
		tv, ok := pass.TypesInfo.Types[lhs]
		if !ok || !isFloat(tv.Type) {
			return
		}
		obj := rootObj(pass, lhs)
		if !declaredOutside(obj, rs) {
			return
		}
		pass.Reportf(st.Pos(),
			"float accumulation under map iteration is order-dependent (float addition is not associative); iterate sorted keys for a reproducible reduction")
	}
}

func checkRangeCall(pass *Pass, rs *ast.RangeStmt, call *ast.CallExpr) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		// A caller-supplied callback exports the iteration order.
		if v, ok := pass.TypesInfo.ObjectOf(fun).(*types.Var); ok {
			if _, isFunc := v.Type().Underlying().(*types.Signature); isFunc && declaredOutside(v, rs) {
				pass.Reportf(call.Pos(),
					"calling callback %s inside map iteration exports the nondeterministic order to the caller; iterate sorted keys", fun.Name)
			}
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok && pass.ImportedPkgPath(id) == "fmt" {
			name := fun.Sel.Name
			if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") {
				pass.Reportf(call.Pos(),
					"fmt.%s inside map iteration emits lines in nondeterministic order; iterate sorted keys", name)
			}
			return
		}
		switch fun.Sel.Name {
		case "Write", "WriteString", "WriteByte", "WriteRune", "WriteAll":
			pass.Reportf(call.Pos(),
				"%s inside map iteration emits records in nondeterministic order; iterate sorted keys", fun.Sel.Name)
		}
	}
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// sortedLaterIn reports whether obj is passed to a sort.* or slices.*
// call after the range statement in the enclosing function body — the
// collect-then-sort idiom, which is deterministic.
func sortedLaterIn(pass *Pass, enclosing *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	if enclosing == nil {
		return false
	}
	sorted := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if p := pass.ImportedPkgPath(id); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if aid, ok := a.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(aid) == obj {
					sorted = true
					return false
				}
				return true
			})
		}
		return true
	})
	return sorted
}
