// Package api (fixture dir apiclock) verifies the nowallclock
// allowlist: the real api package measures latency plumbing with the
// wall clock and is exempt.
package api

import "time"

func latencyProbe() time.Duration {
	t0 := time.Now()
	return time.Since(t0)
}
