package fleet_test

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"mba/internal/api"
	"mba/internal/audit"
	"mba/internal/fleet"
)

// faultFreeBits pins the fault-free fleet estimate for the shared
// fixture (testPlatform, baseConfig(p, 8000)) as an exact bit pattern.
// Cooperative scheduling must not move this by even one ulp: with no
// faults there are no 429s, no parks, and no drains, so blocking and
// cooperative fleets run byte-identical segments.
const faultFreeBits = 0x4044f4d49d7037ba

// TestCoopFaultFreeBitIdentical is the tentpole's safety half: turning
// the cooperative scheduler on changes NOTHING about a fault-free run —
// same pinned estimate bits, same fingerprint, same makespan, zero
// parks, zero drained steps — and the schedule books balance under
// audit in both modes.
func TestCoopFaultFreeBitIdentical(t *testing.T) {
	p := testPlatform(t)
	aud := audit.Auditor{Budget: 8000}
	var prints []string
	var makespans []time.Duration
	for _, coop := range []bool{false, true} {
		cfg := baseConfig(p, 8000)
		cfg.Parallelism = 1
		cfg.Cooperative = coop
		res, err := fleet.Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("coop=%v: %v", coop, err)
		}
		if res.Degraded {
			t.Fatalf("coop=%v degraded on a healthy platform: %v", coop, res.DegradedBy)
		}
		if bits := math.Float64bits(res.Estimate); bits != faultFreeBits {
			t.Errorf("coop=%v estimate bits %#x, want pinned %#x (value %v)",
				coop, bits, uint64(faultFreeBits), res.Estimate)
		}
		if res.Parks != 0 || res.DrainedSteps != 0 {
			t.Errorf("coop=%v fault-free run parked %d times and drained %d steps; want zero both",
				coop, res.Parks, res.DrainedSteps)
		}
		if rep := aud.CheckFleet(res); !rep.OK() {
			t.Errorf("coop=%v fleet audit: %v", coop, rep.Err())
		}
		if rep := aud.CheckSchedule(res, api.Twitter()); !rep.OK() {
			t.Errorf("coop=%v schedule audit: %v", coop, rep.Err())
		}
		prints = append(prints, fingerprint(res))
		makespans = append(makespans, res.Makespan)
	}
	if prints[1] != prints[0] {
		t.Errorf("cooperative mode changed a fault-free run:\n--- blocking\n%s--- cooperative\n%s", prints[0], prints[1])
	}
	if makespans[1] != makespans[0] {
		t.Errorf("fault-free makespan differs: blocking %v, cooperative %v", makespans[0], makespans[1])
	}
}

// TestCoopDeterministicAcrossParallelism extends the fleet's headline
// invariant to the cooperative scheduler under rate-limit faults: unit
// results are pure functions of the configuration, so the run-queue pop
// order (which varies with goroutine count) must not leak into any
// statistical output — estimates, parks, or drained steps.
func TestCoopDeterministicAcrossParallelism(t *testing.T) {
	p := testPlatform(t)
	aud := audit.Auditor{Budget: 8000}
	var prints []string
	var estimates []float64
	firstParks, firstDrained := -1, -1
	for _, par := range []int{1, 2, 8} {
		cfg := baseConfig(p, 8000)
		cfg.Parallelism = par
		cfg.Cooperative = true
		cfg.Faults = api.Faults{RateLimitProb: 0.10}
		cfg.StallWait = 4 * api.Twitter().RateLimitWindow
		res, err := fleet.Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if res.Parks == 0 {
			t.Fatalf("parallelism %d: a 10%% 429 storm parked no walker; cooperative mode is inert", par)
		}
		if rep := aud.CheckFleet(res); !rep.OK() {
			t.Fatalf("parallelism %d fleet audit: %v", par, rep.Err())
		}
		if rep := aud.CheckSchedule(res, api.Twitter()); !rep.OK() {
			t.Fatalf("parallelism %d schedule audit: %v", par, rep.Err())
		}
		if firstParks < 0 {
			firstParks, firstDrained = res.Parks, res.DrainedSteps
		} else if res.Parks != firstParks || res.DrainedSteps != firstDrained {
			t.Errorf("parallelism %d: parks/drained %d/%d differ from parallelism 1's %d/%d",
				par, res.Parks, res.DrainedSteps, firstParks, firstDrained)
		}
		prints = append(prints, fingerprint(res))
		estimates = append(estimates, res.Estimate)
	}
	for i, fp := range prints[1:] {
		if fp != prints[0] {
			t.Errorf("fingerprint of run %d differs from run 0:\n--- run 0\n%s--- run %d\n%s", i+1, prints[0], i+1, fp)
		}
	}
	if rep := (audit.Auditor{}).CheckParallelDeterminism(estimates); !rep.OK() {
		t.Error(rep.Err())
	}
}

// TestCoopMakespanCollapse is the tentpole's payoff half: under a 10%
// 429 storm at one execution slot, parked windows overlap instead of
// stacking, so the cooperative fleet's virtual makespan must come in at
// least 5x below the blocking fleet's at the same budget — while each
// walker's own virtual elapsed time (VirtualDuration) stays within the
// same order, because parking saves slot time, not walker time. The
// fleet shape mirrors the mba-bench ratelimit sweep's ratelimit-10%
// scenario (twelve walkers, one slot).
func TestCoopMakespanCollapse(t *testing.T) {
	p := testPlatform(t)
	run := func(coop bool) fleet.Result {
		cfg := baseConfig(p, 8000)
		cfg.Units = 12
		cfg.Parallelism = 1
		cfg.Cooperative = coop
		cfg.Faults = api.Faults{RateLimitProb: 0.10}
		cfg.StallWait = 4 * api.Twitter().RateLimitWindow
		res, err := fleet.Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("coop=%v: %v", coop, err)
		}
		if rep := (audit.Auditor{Budget: 8000}).CheckSchedule(res, api.Twitter()); !rep.OK() {
			t.Fatalf("coop=%v schedule audit: %v", coop, rep.Err())
		}
		return res
	}
	block := run(false)
	coop := run(true)

	if coop.Parks == 0 {
		t.Fatal("cooperative run parked no walker under a 10% 429 storm")
	}
	if block.Parks != 0 {
		t.Fatalf("blocking run reported %d parks; blocking walkers never park", block.Parks)
	}
	if coop.Makespan <= 0 || block.Makespan <= 0 {
		t.Fatalf("degenerate makespans: blocking %v, cooperative %v", block.Makespan, coop.Makespan)
	}
	if ratio := float64(block.Makespan) / float64(coop.Makespan); ratio < 5 {
		t.Errorf("cooperative makespan %v is only %.1fx below blocking %v; tentpole requires >= 5x",
			coop.Makespan, ratio, block.Makespan)
	}
	// Parking rearranges slot time, not walker time: the cooperative
	// fleet still books every rate-limit window in per-walker elapsed.
	if coop.VirtualDuration < block.VirtualDuration/2 {
		t.Errorf("cooperative per-walker elapsed %v implausibly below blocking %v: windows went unbooked",
			coop.VirtualDuration, block.VirtualDuration)
	}
	t.Logf("makespan: blocking %v -> cooperative %v (%.1fx) with %d parks, %d steps drained free",
		block.Makespan, coop.Makespan, float64(block.Makespan)/float64(coop.Makespan),
		coop.Parks, coop.DrainedSteps)
}

// TestCoopWatchdogParking pins the watchdog x parking interaction from
// both sides: a parking-but-progressing fleet must never trip the stall
// watchdog (parks are scheduling, not stalls), while a wedged walker —
// every charged call 429s, forever — must still trip it and terminate
// instead of parking in an infinite loop.
func TestCoopWatchdogParking(t *testing.T) {
	p := testPlatform(t)

	// Progressing: parks happen, trips must not.
	cfg := baseConfig(p, 8000)
	cfg.Parallelism = 8
	cfg.Cooperative = true
	cfg.Faults = api.Faults{RateLimitProb: 0.10}
	cfg.StallWait = 4 * api.Twitter().RateLimitWindow
	res, err := fleet.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Parks == 0 {
		t.Fatal("progressing fleet never parked; fixture is inert")
	}
	if res.WatchdogTrips != 0 {
		t.Errorf("progressing fleet tripped the stall watchdog %d times; parks must not count as stalls",
			res.WatchdogTrips)
	}

	// Wedged: every charged call 429s, so no park ever buys progress.
	// The fleet-level watchdog must convert the park stream into trips
	// and the resume bound must end the unit — termination of this Run
	// is itself the property under test.
	wedged := baseConfig(p, 1000)
	wedged.Units = 2
	wedged.Parallelism = 2
	wedged.Cooperative = true
	wedged.Faults = api.Faults{RateLimitProb: 1}
	wedged.StallWait = 2 * api.Twitter().RateLimitWindow
	wedged.MaxResumes = 5
	wres, err := fleet.Run(context.Background(), wedged)
	if err != nil {
		t.Fatal(err)
	}
	if !wres.Degraded || !errors.Is(wres.DegradedBy, api.ErrThrottled) {
		t.Errorf("wedged fleet degraded=%v by %v; want a throttle degrade", wres.Degraded, wres.DegradedBy)
	}
	if wres.WatchdogTrips == 0 {
		t.Error("wedged cooperative fleet never tripped the stall watchdog; a 100% 429 walker parked forever for free")
	}
	if wres.Cost != 0 {
		t.Errorf("fully throttled fleet charged %d calls; 429s must never charge", wres.Cost)
	}
	if rep := (audit.Auditor{Budget: 1000}).CheckFleet(wres); !rep.OK() {
		t.Errorf("wedged fleet audit: %v", rep.Err())
	}
}

// TestReplayMakespan pins the deterministic list scheduler on a
// hand-checked instance: one slot, unit A = 1h busy, 1h park, 1h busy;
// unit B = 2h busy. Cooperative replay overlaps A's park with B's work
// (finish at 4h); folding the park into busy time — the blocking
// schedule — holds the slot through it (finish at 5h).
func TestReplayMakespan(t *testing.T) {
	coop := [][]fleet.Segment{
		{{Busy: time.Hour, Park: time.Hour}, {Busy: time.Hour}},
		{{Busy: 2 * time.Hour}},
	}
	if got := fleet.ReplayMakespan(coop, 1); got != 4*time.Hour {
		t.Errorf("cooperative replay: got %v, want 4h", got)
	}
	blocking := [][]fleet.Segment{
		{{Busy: 3 * time.Hour}},
		{{Busy: 2 * time.Hour}},
	}
	if got := fleet.ReplayMakespan(blocking, 1); got != 5*time.Hour {
		t.Errorf("blocking replay: got %v, want 5h", got)
	}
	// Two slots: nothing queues, so each unit finishes on its own
	// elapsed time (A's second hour starts when its park ends at 2h).
	if got := fleet.ReplayMakespan(coop, 2); got != 3*time.Hour {
		t.Errorf("cooperative replay at 2 slots: got %v, want 3h", got)
	}
	if got := fleet.ReplayMakespan(blocking, 2); got != 3*time.Hour {
		t.Errorf("blocking replay at 2 slots: got %v, want 3h", got)
	}
}
