package experiments

import (
	"fmt"
	"math"

	"mba/internal/api"
	"mba/internal/audit"
	"mba/internal/core"
	"mba/internal/model"
	"mba/internal/platform"
	"mba/internal/query"
	"mba/internal/stats"
	"mba/internal/workload"
)

// churnRates is the sweep grid: expected churn events per API call
// served. At Twitter's historical 180 calls / 15 min this spans "a few
// account changes per hour in the walk's region" (0.005) up to a
// platform in upheaval (0.4, where a noticeable slice of the graph
// mutates within one run). Rate 0 is the frozen-platform control — it
// must reproduce the baseline exactly.
var churnRates = []float64{0, 0.005, 0.02, 0.1, 0.4}

// churnRun executes one estimator over a churning platform through
// resumeLoop, with the default self-healing policy.
func churnRun(p *platform.Platform, algo Algo, q query.Query, cfg platform.ChurnConfig,
	budget int, interval model.Tick, seed int64) (core.Result, int, *core.Session, error) {

	srv := api.NewServer(p, api.Twitter(), api.Faults{Seed: seed})
	srv.EnableChurn(cfg)
	newSession := func(b int) (*core.Session, error) {
		return core.NewSession(api.NewClient(srv, b), q, interval)
	}
	runOnce := func(s *core.Session, ck *core.Checkpoint) (core.Result, error) {
		switch algo {
		case MATARW:
			opts := core.TARWOptions{Seed: seed, Resume: ck}
			if q.Agg != query.Avg {
				opts.AllowCrossLevel = true
				opts.WeightClip = 100
				opts.PEstimates = 5
			}
			return core.RunTARW(s, opts)
		case MR:
			return core.RunMR(s, core.SRWOptions{View: core.LevelView, Seed: seed, Resume: ck})
		default:
			return core.RunSRW(s, core.SRWOptions{View: core.LevelView, Seed: seed, Resume: ck})
		}
	}
	return resumeLoop(newSession, runOnce, budget)
}

// Churn is the churn-sweep harness: relative error versus platform
// churn rate for MA-SRW, MA-TARW (AVG(followers) of privacy users) and
// the M&R baseline (COUNT), with self-healing walks and the runtime
// invariant auditor checking every final run. Ground truth is computed
// on the frozen platform — under churn the estimators chase a moving
// target from a frozen-snapshot cache, so the reported error folds
// both sampling noise and genuine drift; the reproduction claim is the
// shape, not the absolute numbers: error grows gently with the churn
// rate (healing keeps walks alive instead of aborting them), while the
// heal counters grow roughly linearly with it.
func Churn(opts Options) (Table, error) {
	opts = opts.withDefaults()
	p, err := workload.Get(opts.Scale)
	if err != nil {
		return Table{}, err
	}

	avgQ := query.AvgQuery("privacy", query.Followers)
	cntQ := query.CountQuery("privacy")
	truthAvg, err := p.GroundTruth(avgQ)
	if err != nil {
		return Table{}, err
	}
	truthCnt, err := p.GroundTruth(cntQ)
	if err != nil {
		return Table{}, err
	}

	type cell struct {
		algo  Algo
		q     query.Query
		truth float64
	}
	cells := []cell{
		{MASRW, avgQ, truthAvg},
		{MATARW, avgQ, truthAvg},
		{MR, cntQ, truthCnt},
	}

	t := Table{
		ID:    "churn",
		Title: "Churn sweep: relative error vs. platform churn rate with self-healing walks",
		Columns: []string{
			"Rate", "Algo", "RelErr", "Cost", "Healed", "Vanished", "Pruned",
			"Resumes", "Degraded", "Audit",
		},
	}

	aud := audit.Auditor{Budget: opts.Budget}
	var violations []string
	for _, rate := range churnRates {
		for _, c := range cells {
			opts.logf("churn: rate=%g %s", rate, c.algo)
			var (
				relErrs  []float64
				cost     int
				heal     core.HealStats
				resumes  int
				degraded int
				checks   int
			)
			for trial := 0; trial < opts.Trials; trial++ {
				// The event mix leans on the classes walks must heal
				// from (account deletion, unfollows); profile flips and
				// post deletions only perturb responses, they never
				// strand a walk, so the default mix would leave the
				// Healed column near zero at sweep budgets.
				cfg := platform.ChurnConfig{
					Rate:             rate,
					Seed:             opts.Seed + int64(trial)*104729,
					VanishWeight:     0.50,
					ProtectWeight:    0.10,
					EdgeRemoveWeight: 0.25,
					EdgeAddWeight:    0.05,
					PostDeleteWeight: 0.10,
				}
				res, r, sess, err := churnRun(p, c.algo, c.q, cfg,
					opts.Budget, opts.Interval, opts.Seed+int64(trial)*7919)
				if err != nil {
					return Table{}, fmt.Errorf("churn rate=%g %s trial %d: %w", rate, c.algo, trial, err)
				}
				rep := aud.CheckRun(sess, res)
				checks += rep.Checks
				for _, v := range rep.Violations {
					violations = append(violations,
						fmt.Sprintf("rate=%g/%s trial %d: %s", rate, c.algo, trial, v))
				}
				if !math.IsNaN(res.Estimate) {
					relErrs = append(relErrs, stats.RelativeError(res.Estimate, c.truth))
				}
				cost += res.Cost
				heal = heal.Add(res.Heal)
				resumes += r
				if res.Degraded {
					degraded++
				}
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%g", rate),
				string(c.algo),
				fmtMedian(relErrs),
				fmt.Sprintf("%d", cost/opts.Trials),
				fmt.Sprintf("%d", heal.Events()),
				fmt.Sprintf("%d", heal.VanishedUsers),
				fmt.Sprintf("%d", heal.PrunedEdges),
				fmt.Sprintf("%d", resumes),
				fmt.Sprintf("%d/%d", degraded, opts.Trials),
				fmt.Sprintf("ok(%d)", checks),
			})
		}
	}
	if len(violations) > 0 {
		return t, fmt.Errorf("churn: auditor found %d invariant violations; first: %s",
			len(violations), violations[0])
	}
	return t, nil
}
