package lint

import (
	"go/ast"
	"go/types"
)

// budgetflowPkgs are the package basenames where charged cost must
// flow through accountable channels: every cost-incurring call path
// either returns an error (so api.ErrBudgetExhausted propagates) or
// folds failures into a degraded-result field, and under the fleet
// every client is bound to the shared Ledger before it can charge.
var budgetflowPkgs = map[string]bool{
	"mba": true, "core": true, "walk": true, "experiments": true, "fleet": true,
}

// BudgetFlow is the interprocedural companion of checkedcost. Where
// checkedcost sees only direct api.Client calls, budgetflow uses the
// whole-program summaries to follow cost through arbitrarily many
// layers of helpers and closures:
//
//  1. a call to any function that (transitively) incurs charged API
//     cost must not discard that function's error result — the budget
//     sentinel travels in it;
//  2. a declared function that (transitively) incurs cost must be able
//     to propagate the budget error: an error result, or a result
//     struct with an error field (the Degraded/DegradedBy channel);
//  3. in the fleet, api.NewClient must be paired with UseLedger in the
//     same function, so every charged call passes Ledger.Reserve
//     admission before it reaches the shared Server.
var BudgetFlow = &Analyzer{
	Name: "budgetflow",
	Doc: "interprocedural budget accounting: cost-incurring call chains must " +
		"propagate the budget error, and fleet clients must be ledger-bound",
	Run: runBudgetFlow,
}

func runBudgetFlow(pass *Pass) error {
	prog := pass.Prog
	if prog == nil || !budgetflowPkgs[pass.PkgBase(pass.Pkg.Path())] {
		return nil
	}
	if pass.Pkg.Name() == "main" {
		return nil // entry points surface errors to the user, not a caller
	}
	isFleet := pass.PkgBase(pass.Pkg.Path()) == "fleet"
	for _, f := range prog.Funcs {
		if f.Pkg.Types != pass.Pkg || f.Body == nil {
			continue
		}
		checkDiscardedCostErrors(pass, f)
		checkCostPropagation(pass, f)
		if isFleet {
			checkLedgerBinding(pass, f)
		}
	}
	return nil
}

// costCallee returns the first callee of call that (transitively)
// incurs charged cost, or nil. Direct charged api.Client calls are
// excluded — checkedcost owns those diagnostics.
func costCallee(pass *Pass, call *ast.CallExpr) *Func {
	if _, ok := chargedClientCall(pass.TypesInfo, call); ok {
		return nil
	}
	for _, g := range pass.Prog.CalleesOf(call) {
		if pass.Prog.SummaryOf(g).IncursCost {
			return g
		}
	}
	return nil
}

// callReturnsError reports whether call's last result is an error.
func callReturnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len() > 0 && isErrorType(t.At(t.Len()-1).Type())
	default:
		return isErrorType(t)
	}
}

// checkDiscardedCostErrors flags statements that drop the error of a
// transitively cost-incurring call.
func checkDiscardedCostErrors(pass *Pass, f *Func) {
	report := func(call *ast.CallExpr, g *Func, how string) {
		pass.Reportf(call.Pos(),
			"%s of %s, which (transitively) makes charged api.Client calls; api.ErrBudgetExhausted travels in that error and must propagate", how, g.Name())
	}
	inspectShallow(f.Body, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok && callReturnsError(pass.TypesInfo, call) {
				if g := costCallee(pass, call); g != nil {
					report(call, g, "discards the error")
				}
			}
		case *ast.GoStmt:
			if callReturnsError(pass.TypesInfo, st.Call) {
				if g := costCallee(pass, st.Call); g != nil {
					report(st.Call, g, "go statement discards the error")
				}
			}
		case *ast.DeferStmt:
			if callReturnsError(pass.TypesInfo, st.Call) {
				if g := costCallee(pass, st.Call); g != nil {
					report(st.Call, g, "defer discards the error")
				}
			}
		case *ast.AssignStmt:
			if len(st.Rhs) != 1 {
				return
			}
			call, ok := st.Rhs[0].(*ast.CallExpr)
			if !ok || !callReturnsError(pass.TypesInfo, call) {
				return
			}
			last, ok := st.Lhs[len(st.Lhs)-1].(*ast.Ident)
			if !ok || last.Name != "_" {
				return
			}
			if g := costCallee(pass, call); g != nil {
				report(call, g, "assigns the error to _")
			}
		}
	})
}

// checkCostPropagation flags declared functions that incur cost but
// have no channel to report budget exhaustion.
func checkCostPropagation(pass *Pass, f *Func) {
	if f.Obj == nil {
		return // closures surface through their cost-checked callers
	}
	sum := pass.Prog.SummaryOf(f)
	if !sum.IncursCost || sum.ReturnsError {
		return
	}
	rs := f.Sig.Results()
	for i := 0; i < rs.Len(); i++ {
		if hasErrorField(rs.At(i).Type()) {
			return // degraded-result channel (e.g. UnitResult.DegradedBy)
		}
	}
	pass.Reportf(f.Pos(),
		"%s (transitively) makes charged api.Client calls but has no way to propagate the budget error: add an error result or a degraded-result field", f.Name())
}

// hasErrorField reports whether t (or *t) is a struct with an
// error-typed field — the degraded-result propagation channel.
func hasErrorField(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isErrorType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

// checkLedgerBinding flags api.NewClient calls in fleet functions that
// never bind the client to the shared Ledger.
func checkLedgerBinding(pass *Pass, f *Func) {
	var newClientCalls []*ast.CallExpr
	usesLedger := false
	inspectShallow(f.Body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if isAPINewClient(pass.TypesInfo, call) {
			newClientCalls = append(newClientCalls, call)
		}
		if _, ok := methodOnInfo(pass.TypesInfo, call, "api", "Client", map[string]bool{"UseLedger": true}); ok {
			usesLedger = true
		}
	})
	if usesLedger {
		return
	}
	for _, call := range newClientCalls {
		pass.Reportf(call.Pos(),
			"fleet creates an api.Client without binding it to the shared Ledger (UseLedger); its charged calls would bypass Ledger.Reserve admission")
	}
}

// isAPINewClient matches a call to api.NewClient (by package name, so
// fixtures can stand in for internal/api).
func isAPINewClient(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "NewClient" {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Name() == "api"
}
