package platform

import (
	"bytes"
	"testing"

	"mba/internal/query"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	p := mustPlatform(t, smallConfig())
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	p2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if p2.NumUsers() != p.NumUsers() {
		t.Fatalf("users %d != %d", p2.NumUsers(), p.NumUsers())
	}
	if p2.Social.NumEdges() != p.Social.NumEdges() {
		t.Fatalf("edges %d != %d", p2.Social.NumEdges(), p.Social.NumEdges())
	}
	if p2.Horizon != p.Horizon {
		t.Fatal("horizon differs")
	}
	// Ground truths must be identical — the whole point of snapshots.
	for _, q := range []query.Query{
		query.CountQuery("privacy"),
		query.AvgQuery("privacy", query.Followers),
		query.SumQuery("privacy", query.KeywordPostCount),
	} {
		a, err := p.GroundTruth(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := p2.GroundTruth(q)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("%s: %v != %v after round trip", q, a, b)
		}
	}
	// Timelines (including cap behaviour) must survive.
	c := p.Cascade("privacy")
	for u := range c.First {
		tl1 := p.Timeline(u)
		tl2 := p2.Timeline(u)
		if len(tl1.Posts) != len(tl2.Posts) || tl1.Profile.DisplayName != tl2.Profile.DisplayName {
			t.Fatalf("timeline mismatch for %d", u)
		}
		break
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	p := mustPlatform(t, smallConfig())
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Re-encode with a bumped version by poking the snapshot directly.
	var snap snapshot
	snap.Version = 99
	snap.Users = p.Users
	var buf2 bytes.Buffer
	if err := encodeSnapshotForTest(&buf2, snap); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf2); err == nil {
		t.Error("wrong version accepted")
	}
}
