package serve

import (
	"encoding/json"
	"strings"
	"testing"

	"mba/internal/model"
	"mba/internal/query"
)

// fuzzSeedQueries mirrors the FuzzParseQuery corpus (every aggregate,
// measure and predicate constructor) so the decoder fuzzer starts from
// the same well-formed inputs the parser fuzzer does.
var fuzzSeedQueries = []query.Query{
	{Agg: query.Count, Measure: query.One, Keyword: "privacy"},
	{Agg: query.Sum, Measure: query.KeywordPostCount, Keyword: "obama"},
	{Agg: query.Avg, Measure: query.Followers, Keyword: "privacy",
		Where: []query.Predicate{query.MaleOnly}},
	{Agg: query.Avg, Measure: query.DisplayNameLength, Keyword: "nba",
		Window: model.Window{From: 0, To: 7 * model.Day}},
	{Agg: query.Avg, Measure: query.Age, Keyword: "election",
		Window: model.Window{From: 2 * model.Day, To: 30 * model.Day},
		Where:  []query.Predicate{query.FemaleOnly, query.AgeBetween(18, 34), query.MinFollowers(100)}},
	{Agg: query.Sum, Measure: query.KeywordPostLikes, Keyword: "with \"quotes\" and \t escapes"},
	{Agg: query.Avg, Measure: query.KeywordPostMeanLikes, Keyword: ""},
}

// FuzzServeRequestDecode asserts the HTTP request decoder never panics
// on arbitrary bodies, and that any body it accepts normalizes to a
// canonical query that re-decodes to the identical request — the same
// idempotence contract FuzzParseQuery enforces one layer down.
func FuzzServeRequestDecode(f *testing.F) {
	wrap := func(q string) string {
		b, _ := json.Marshal(Request{Tenant: "gold", Query: q, Budget: 100})
		return string(b)
	}
	for _, q := range fuzzSeedQueries {
		f.Add(wrap(q.String()))
	}
	f.Add(wrap("SELECT COUNT(1) FROM users WHERE timeline CONTAINS \"\\u00e9\""))
	f.Add(wrap("SELECT AVG(age) FROM users WHERE timeline CONTAINS \"x\" IN [d-1h-3,d304h0)"))
	f.Add(wrap("SELECT SUM(keyword-posts) FROM users WHERE timeline CONTAINS \"x\" AND followers>=007"))
	f.Add(`{"tenant":"gold","query":"SELECT COUNT(1) FROM users WHERE timeline CONTAINS \"privacy\"","algo":"MA-SRW","budget":50,"seed":3,"deadline_ns":100,"arrival_ns":7,"no_cache":true}`)
	f.Add(`{"tenant":""}`)
	f.Add(`{`)
	f.Add(`[]`)
	f.Add(`{"tenant":"gold","query":"SELECT COUNT(1) FROM users WHERE timeline CONTAINS \"x\"","budget":-1}`)
	f.Add(`{"tenant":"gold","query":"DROP TABLE users"}`)
	f.Fuzz(func(t *testing.T, body string) {
		req, q, err := DecodeRequest(strings.NewReader(body))
		if err != nil {
			return
		}
		if req.Query != q.String() {
			t.Fatalf("accepted request not normalized: %q vs %q", req.Query, q.String())
		}
		// Re-encoding the normalized request must decode to the same
		// normalized query.
		again, _ := json.Marshal(req)
		req2, q2, err := DecodeRequest(strings.NewReader(string(again)))
		if err != nil {
			t.Fatalf("normalized request %s does not re-decode: %v", again, err)
		}
		if req2.Query != req.Query || q2.String() != q.String() {
			t.Fatalf("normalization not idempotent: %q -> %q", req.Query, req2.Query)
		}
	})
}
