package model

import (
	"testing"
	"testing/quick"
)

func TestTickUnits(t *testing.T) {
	if Day != 24*Hour || Week != 7*Day || Month != 30*Day {
		t.Error("tick unit relations broken")
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[Tick]string{
		0:           "d0h0",
		23:          "d0h23",
		24:          "d1h0",
		49:          "d2h1",
		304 * Day:   "d304h0",
		Week + Hour: "d7h1",
	}
	for tick, want := range cases {
		if got := FormatTick(tick); got != want {
			t.Errorf("FormatTick(%d) = %q, want %q", tick, got, want)
		}
	}
}

func TestParseTick(t *testing.T) {
	inverts := func(tick Tick) bool {
		got, err := ParseTick(FormatTick(tick))
		return err == nil && got == tick
	}
	if err := quick.Check(inverts, nil); err != nil {
		t.Error(err)
	}
	for _, tick := range []Tick{0, 23, 24, -1, -25, 304 * Day} {
		if !inverts(tick) {
			t.Errorf("ParseTick does not invert FormatTick(%d) = %q", tick, FormatTick(tick))
		}
	}
	for _, bad := range []string{"", "d1", "h3", "1h3", "dxh3", "d1h"} {
		if _, err := ParseTick(bad); err == nil {
			t.Errorf("ParseTick(%q) unexpectedly succeeded", bad)
		}
	}
}

func TestWindowSemantics(t *testing.T) {
	var zero Window
	if !zero.IsZero() {
		t.Error("zero window should report IsZero")
	}
	for _, tick := range []Tick{0, 1, 1e6} {
		if !zero.Contains(tick) {
			t.Errorf("zero window should contain %d", tick)
		}
	}
	w := Window{From: 10, To: 20}
	if w.IsZero() {
		t.Error("non-zero window reported zero")
	}
	for tick, want := range map[Tick]bool{9: false, 10: true, 15: true, 19: true, 20: false} {
		if got := w.Contains(tick); got != want {
			t.Errorf("Contains(%d) = %v, want %v", tick, got, want)
		}
	}
}

func TestProfileDisplayNameLength(t *testing.T) {
	cases := map[string]int{
		"":          0,
		"Ana":       3,
		"Ana Belle": 9,
		"héllo":     5, // rune length, not byte length
	}
	for name, want := range cases {
		p := Profile{DisplayName: name}
		if got := p.DisplayNameLength(); got != want {
			t.Errorf("DisplayNameLength(%q) = %d, want %d", name, got, want)
		}
	}
}

func TestGenderString(t *testing.T) {
	if GenderMale.String() != "male" || GenderFemale.String() != "female" || GenderUnknown.String() != "unknown" {
		t.Error("gender names wrong")
	}
	if Gender(42).String() != "unknown" {
		t.Error("invalid gender should render unknown")
	}
}

func TestTimelineQueries(t *testing.T) {
	tl := Timeline{
		Posts: []Post{
			{Keyword: "a", Time: 5, Likes: 1},
			{Keyword: "b", Time: 7, Likes: 2},
			{Keyword: "a", Time: 9, Likes: 3},
		},
	}
	first, ok := tl.FirstMention("a")
	if !ok || first != 5 {
		t.Errorf("FirstMention = %d,%v", first, ok)
	}
	if _, ok := tl.FirstMention("z"); ok {
		t.Error("FirstMention of absent keyword")
	}
	if times := tl.MentionTimes("a"); len(times) != 2 || times[0] != 5 || times[1] != 9 {
		t.Errorf("MentionTimes = %v", times)
	}
	ps := tl.KeywordPosts("a", Window{})
	if len(ps) != 2 {
		t.Errorf("KeywordPosts unbounded = %d", len(ps))
	}
	ps = tl.KeywordPosts("a", Window{From: 6, To: 10})
	if len(ps) != 1 || ps[0].Time != 9 {
		t.Errorf("KeywordPosts windowed = %v", ps)
	}
	if ps := tl.KeywordPosts("z", Window{}); ps != nil {
		t.Errorf("absent keyword posts = %v", ps)
	}
}

// Property: window containment is consistent with its bounds.
func TestWindowProperty(t *testing.T) {
	f := func(from, length uint16, probe uint32) bool {
		w := Window{From: Tick(from), To: Tick(from) + Tick(length)}
		tick := Tick(probe)
		want := tick >= w.From && tick < w.To
		if w.IsZero() {
			want = true
		}
		return w.Contains(tick) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
