// Command mba-lint runs the mba-lint analyzer suite (internal/lint):
// domain-invariant checkers that keep the paper-level claims
// mechanically true — seed-determinism, single-path budget accounting,
// virtual time, checked budget errors, deterministic map iteration,
// compensated float summation — plus the whole-program layer: context
// threading (ctxflow), sentinel wrapping discipline (errsentinel),
// global lock order (lockorder), and interprocedural budget
// propagation (budgetflow).
//
// Standalone (lints the whole module, from any directory inside it):
//
//	mba-lint ./...
//	mba-lint -only norawrand,floatsum ./...
//	mba-lint -json ./...                       # one JSON diagnostic per line
//	mba-lint -sarif ./...                      # SARIF 2.1.0 on stdout
//	mba-lint -baseline .mba-lint-baseline.json ./...
//	mba-lint -baseline .mba-lint-baseline.json -update-baseline ./...
//	mba-lint -factcache .mba-lint-cache.json ./...
//	mba-lint -list
//
// The baseline is a ratchet: with -baseline, both new findings AND
// stale baseline entries (accepted findings the code no longer
// produces) fail the run, so the committed baseline can only shrink
// through an explicit -update-baseline commit.
//
// As a go vet backend (per-package, types from export data):
//
//	go build -o bin/mba-lint ./cmd/mba-lint
//	go vet -vettool=$PWD/bin/mba-lint ./...
//
// In vet mode the whole-program view is limited to one package at a
// time, so the interprocedural analyzers see fewer facts than a
// standalone run; standalone (or `make lint`) is authoritative.
//
// Exit status is 1 when diagnostics are reported, 2 on usage or load
// errors. Diagnostics can be suppressed with
// `//lint:ignore <analyzer> <reason>` attached to a single statement;
// the reason is mandatory and the directive never covers more than
// that statement.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"mba/internal/lint"
)

func main() {
	// go vet probes its tool with -V=full (version stamp) and -flags
	// (JSON list of tool flags it may forward) before handing it
	// package config files; answer both protocol calls before flag
	// parsing. We expose no vet-forwardable flags.
	if len(os.Args) == 2 && strings.HasPrefix(os.Args[1], "-V") {
		fmt.Printf("mba-lint version 1 (suite: %s)\n", strings.Join(analyzerNames(), ","))
		return
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	var (
		only      = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		list      = flag.Bool("list", false, "list analyzers and exit")
		jsonOut   = flag.Bool("json", false, "emit one JSON diagnostic per line (machine-readable, byte-stable)")
		sarifOut  = flag.Bool("sarif", false, "emit a SARIF 2.1.0 log on stdout")
		baseline  = flag.String("baseline", "", "baseline file; new findings AND stale entries fail the run")
		updateBl  = flag.Bool("update-baseline", false, "rewrite the -baseline file from the current findings and exit")
		factCache = flag.String("factcache", "", "content-hash fact cache file (accelerator; safe to delete)")
		timings   = flag.Bool("timings", false, "print per-analyzer wall-clock totals to stderr after the run")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mba-lint [-only a,b] [-json|-sarif] [-baseline file [-update-baseline]] [-factcache file] [-timings] [-list] [./...]\n       (as vet tool) go vet -vettool=$(command -v mba-lint) ./...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *updateBl && *baseline == "" {
		fmt.Fprintln(os.Stderr, "mba-lint: -update-baseline requires -baseline")
		os.Exit(2)
	}
	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mba-lint:", err)
		os.Exit(2)
	}

	// vet protocol: a single *.cfg argument describes one package.
	if args := flag.Args(); len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVet(analyzers, args[0]))
	}
	os.Exit(runStandalone(analyzers, standaloneOptions{
		json:           *jsonOut,
		sarif:          *sarifOut,
		baselinePath:   *baseline,
		updateBaseline: *updateBl,
		factCachePath:  *factCache,
		timings:        *timings,
	}))
}

func analyzerNames() []string {
	var names []string
	for _, a := range lint.All() {
		names = append(names, a.Name)
	}
	return names
}

func selectAnalyzers(only string) ([]*lint.Analyzer, error) {
	if only == "" {
		return lint.All(), nil
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a := lint.ByName(name)
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q (use -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// standaloneOptions carries the output/baseline/cache flags.
type standaloneOptions struct {
	json           bool
	sarif          bool
	baselinePath   string
	updateBaseline bool
	factCachePath  string
	timings        bool
}

// jsonDiagnostic is the -json line format: stable field order, module-
// root-relative path, one object per line.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// runStandalone lints every package of the enclosing module.
func runStandalone(analyzers []*lint.Analyzer, opts standaloneOptions) int {
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mba-lint:", err)
		return 2
	}
	loader, err := lint.NewModuleLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mba-lint:", err)
		return 2
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mba-lint:", err)
		return 2
	}
	var cache *lint.FactCache
	prog := (*lint.Program)(nil)
	if opts.factCachePath != "" {
		cache = lint.OpenFactCache(opts.factCachePath)
		prog = lint.NewProgramCached(pkgs, cache)
	} else {
		prog = lint.NewProgram(pkgs)
	}
	// The lint package never reads the wall clock itself (nowallclock
	// applies to it too); timings inject a monotonic reading from this
	// allowlisted main package.
	var clock func() time.Duration
	if opts.timings {
		start := time.Now()
		clock = func() time.Duration { return time.Since(start) }
	}
	diags, perAnalyzer, err := lint.RunAllProgramTimed(analyzers, pkgs, prog, clock)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mba-lint:", err)
		return 2
	}
	if opts.timings {
		sorted := append([]lint.AnalyzerTiming(nil), perAnalyzer...)
		sort.Slice(sorted, func(i, j int) bool {
			if sorted[i].Elapsed != sorted[j].Elapsed {
				return sorted[i].Elapsed > sorted[j].Elapsed
			}
			return sorted[i].Name < sorted[j].Name
		})
		var total time.Duration
		for _, tm := range sorted {
			total += tm.Elapsed
		}
		fmt.Fprintf(os.Stderr, "mba-lint: per-analyzer wall clock (%d packages, cumulative %v):\n", len(pkgs), total.Round(time.Millisecond))
		for _, tm := range sorted {
			fmt.Fprintf(os.Stderr, "  %-14s %8v\n", tm.Name, tm.Elapsed.Round(time.Microsecond*100))
		}
	}
	if cache != nil {
		if err := cache.Save(); err != nil {
			fmt.Fprintln(os.Stderr, "mba-lint: saving fact cache:", err)
		}
	}

	// Baseline paths are module-root-relative so the committed file is
	// machine-independent.
	relFile := func(d lint.Diagnostic) string {
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
		return filepath.ToSlash(d.Pos.Filename)
	}

	if opts.updateBaseline {
		if err := lint.NewBaseline(diags, relFile).Save(opts.baselinePath); err != nil {
			fmt.Fprintln(os.Stderr, "mba-lint:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "mba-lint: baseline %s updated (%d finding(s) accepted)\n", opts.baselinePath, len(diags))
		return 0
	}

	var stale []lint.BaselineEntry
	if opts.baselinePath != "" {
		bl, err := lint.LoadBaseline(opts.baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mba-lint:", err)
			return 2
		}
		diags, stale = bl.Apply(diags, relFile)
	}

	switch {
	case opts.sarif:
		data, err := lint.SARIF(diags, analyzers, root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mba-lint:", err)
			return 2
		}
		os.Stdout.Write(data)
	case opts.json:
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			if err := enc.Encode(jsonDiagnostic{
				Analyzer: d.Analyzer,
				File:     relFile(d),
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Message:  d.Message,
			}); err != nil {
				fmt.Fprintln(os.Stderr, "mba-lint:", err)
				return 2
			}
		}
	default:
		cwd, _ := os.Getwd()
		for _, d := range diags {
			name := d.Pos.Filename
			if cwd != "" {
				if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
					name = rel
				}
			}
			fmt.Printf("%s:%d:%d: %s (%s)\n", name, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
		}
	}
	for _, e := range stale {
		fmt.Fprintf(os.Stderr, "mba-lint: stale baseline entry (no longer triggered x%d): %s: %s (%s)\n",
			e.Count, e.File, e.Message, e.Analyzer)
	}
	if len(stale) > 0 {
		fmt.Fprintf(os.Stderr, "mba-lint: the baseline has shrunk; commit a -update-baseline run to ratchet it down\n")
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "mba-lint: %d violation(s)\n", len(diags))
	}
	if len(diags) > 0 || len(stale) > 0 {
		return 1
	}
	return 0
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}
