package walk

import (
	"math/rand"
)

// Additional baseline samplers from the graph-sampling literature the
// paper's related work cites ([13,19]): breadth-first and depth-first
// crawlers (known to be biased toward high-degree regions, useful as
// baselines) and a weighted random walk (the stratified-sampling
// flavor of [17], where transition probabilities are reweighted by a
// caller-provided node weight).

// BFSSampler crawls breadth-first from a start node, emitting nodes in
// visit order. It is *not* a stationary sampler — its bias is the
// point of including it as a baseline.
type BFSSampler struct {
	g       Graph
	queue   []int64
	visited map[int64]bool
}

// NewBFS starts a breadth-first crawl at start.
func NewBFS(g Graph, start int64) *BFSSampler {
	return &BFSSampler{
		g:       g,
		queue:   []int64{start},
		visited: map[int64]bool{start: true},
	}
}

// Next returns the next crawled node, or ErrStuck when the frontier is
// exhausted. Neighbor errors skip the offending node.
func (b *BFSSampler) Next() (int64, error) {
	if len(b.queue) == 0 {
		return 0, ErrStuck
	}
	u := b.queue[0]
	b.queue = b.queue[1:]
	ns, err := b.g.Neighbors(u)
	if err == nil {
		for _, v := range ns {
			if !b.visited[v] {
				b.visited[v] = true
				b.queue = append(b.queue, v)
			}
		}
	}
	return u, nil
}

// Visited returns the number of distinct nodes seen so far.
func (b *BFSSampler) Visited() int { return len(b.visited) }

// DFSSampler crawls depth-first from a start node.
type DFSSampler struct {
	g       Graph
	stack   []int64
	visited map[int64]bool
}

// NewDFS starts a depth-first crawl at start.
func NewDFS(g Graph, start int64) *DFSSampler {
	return &DFSSampler{
		g:       g,
		stack:   []int64{start},
		visited: map[int64]bool{start: true},
	}
}

// Next returns the next crawled node, or ErrStuck when exhausted.
func (d *DFSSampler) Next() (int64, error) {
	if len(d.stack) == 0 {
		return 0, ErrStuck
	}
	u := d.stack[len(d.stack)-1]
	d.stack = d.stack[:len(d.stack)-1]
	ns, err := d.g.Neighbors(u)
	if err == nil {
		for _, v := range ns {
			if !d.visited[v] {
				d.visited[v] = true
				d.stack = append(d.stack, v)
			}
		}
	}
	return u, nil
}

// Visited returns the number of distinct nodes seen so far.
func (d *DFSSampler) Visited() int { return len(d.visited) }

// WeightFunc assigns a positive sampling weight to a node; the
// weighted walk's stationary probability of u becomes proportional to
// w(u)·d(u) adjusted by the transition scheme below.
type WeightFunc func(u int64) float64

// WeightedWalk is a random walk whose next hop is chosen among the
// neighbors with probability proportional to their weights — the
// "walking on a graph with a magnifying glass" idea of stratified
// weighted random walks [17]. With a constant weight it degenerates to
// the simple random walk. Its stationary distribution is proportional
// to each node's total incident weight; SumIncidentWeight reweights
// samples accordingly.
type WeightedWalk struct {
	g      Graph
	weight WeightFunc
	rng    *rand.Rand
	cur    int64
}

// NewWeighted starts a weighted walk at start.
func NewWeighted(g Graph, start int64, weight WeightFunc, rng *rand.Rand) *WeightedWalk {
	return &WeightedWalk{g: g, weight: weight, rng: rng, cur: start}
}

// Current returns the walk position.
func (w *WeightedWalk) Current() int64 { return w.cur }

// Step moves to a weight-proportionally chosen neighbor.
func (w *WeightedWalk) Step() (int64, error) {
	ns, err := w.g.Neighbors(w.cur)
	if err != nil {
		return w.cur, err
	}
	if len(ns) == 0 {
		return w.cur, ErrStuck
	}
	var total float64
	weights := make([]float64, len(ns))
	for i, v := range ns {
		wt := w.weight(v)
		if wt < 0 {
			wt = 0
		}
		weights[i] = wt
		total += wt
	}
	if total == 0 {
		// All-zero neighborhood weights: fall back to uniform so the
		// walk does not strand.
		w.cur = ns[w.rng.Intn(len(ns))]
		return w.cur, nil
	}
	x := w.rng.Float64() * total
	for i, wt := range weights {
		x -= wt
		if x <= 0 {
			w.cur = ns[i]
			break
		}
	}
	return w.cur, nil
}

// Jump teleports the walk.
func (w *WeightedWalk) Jump(u int64) { w.cur = u }

// SumIncidentWeight computes Σ_{v∈N(u)} w(v), the quantity proportional
// to the weighted walk's stationary probability at u; use it as the
// importance weight when reweighting samples.
func (w *WeightedWalk) SumIncidentWeight(u int64) (float64, error) {
	ns, err := w.g.Neighbors(u)
	if err != nil {
		return 0, err
	}
	var total float64
	for _, v := range ns {
		if wt := w.weight(v); wt > 0 {
			total += wt
		}
	}
	return total, nil
}
