package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file implements order-nondeterminism taint: a forward dataflow
// over the per-function CFG tracking which values carry an ordering
// that depends on map iteration order or select completion order. The
// same transfer function serves two masters:
//
//   - summary computation (summary.go): run inside the call-graph SCC
//     fixpoint to converge each function's TaintsReturn /
//     ParamTaintToReturn / ParamTaintToSink facts, so taint crosses
//     function boundaries;
//   - the dettaint analyzer (dettaint.go): replay the converged
//     solution block by block and report every nondet-tainted value
//     that reaches an artifact sink.
//
// The taint mask is a bitset: bit 0 is "nondeterministic order", bit
// i+1 is "derived from parameter i" (provenance for interprocedural
// propagation; functions past 62 parameters lose precision, not
// soundness). Sorting a value (sort.*/slices.* on it) kills its taint
// — the fix the analyzers suggest is exactly that sort, so the
// analysis must see it discharge the obligation, and flow-sensitively:
// a sort on one path does not clean the other.

// taintNondet is the "order is nondeterministic" taint bit.
const taintNondet uint64 = 1

// rootObjInfo resolves the variable a (possibly nested) assignable
// expression ultimately stores into: sum, st.sum, xs[i] → sum, st, xs.
func rootObjInfo(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// taintParamBit returns the provenance bit of parameter i (0 when i
// overflows the mask; such params are tracked imprecisely).
func taintParamBit(i int) uint64 {
	if i >= 63 {
		return 0
	}
	return 1 << (uint(i) + 1)
}

// taintVal is one variable's taint: the mask plus the earliest
// nondeterminism source witness for diagnostics.
type taintVal struct {
	mask uint64
	// pos/src describe the earliest nondet source ("map iteration
	// order at …"); zero when mask has no nondet bit.
	pos token.Pos
	src string
}

func (v taintVal) withSource(o taintVal) taintVal {
	v.mask |= o.mask
	if o.pos != token.NoPos && (v.pos == token.NoPos || o.pos < v.pos) {
		v.pos, v.src = o.pos, o.src
	}
	return v
}

// taintState maps variables to their taint at a program point.
type taintState struct {
	vars map[types.Object]taintVal
}

func newTaintState() *taintState { return &taintState{vars: map[types.Object]taintVal{}} }

func (s *taintState) Clone() FlowState {
	c := newTaintState()
	for k, v := range s.vars {
		c.vars[k] = v
	}
	return c
}

func (s *taintState) JoinFrom(src FlowState) bool {
	o := src.(*taintState)
	changed := false
	for k, ov := range o.vars {
		cur, ok := s.vars[k]
		merged := cur.withSource(ov)
		if !ok || merged != cur {
			s.vars[k] = merged
			changed = true
		}
	}
	return changed
}

func (s *taintState) get(obj types.Object) taintVal {
	if obj == nil {
		return taintVal{}
	}
	return s.vars[obj]
}

func (s *taintState) set(obj types.Object, v taintVal) {
	if obj == nil {
		return
	}
	if v.mask == 0 {
		delete(s.vars, obj)
		return
	}
	s.vars[obj] = v
}

// taintEvent is one observation the replay pass cares about: a tainted
// value reaching a sink, or a tainted value being returned.
type taintEvent struct {
	kind string // "sink" or "return"
	pos  token.Pos
	val  taintVal
	// what names the sink for diagnostics ("Result.Rows field",
	// "fmt.Fprintf", "merge parameter 2 of fleet merge", ...).
	what string
}

// sinkTypeNames are the artifact struct types whose field stores are
// taint sinks: what lands in them becomes the run's externally visible
// result/checkpoint surface and must be reproducible byte for byte.
var sinkTypeNames = map[string]bool{
	"Result": true, "UnitResult": true, "Estimate": true, "Checkpoint": true,
}

// writerSinkMethods are method names that emit records to an external
// writer (csv.Writer, bufio.Writer, strings.Builder, os.File, ...).
// Only methods on types OUTSIDE the analyzed program count — an
// in-program method gets precise ParamTaintToSink facts instead.
var writerSinkMethods = map[string]bool{
	"Write": true, "WriteAll": true, "WriteString": true,
	"WriteByte": true, "WriteRune": true, "Encode": true,
}

// taintCtx is the per-function analysis context: the CFG plus the
// precomputed syntactic facts the transfer function needs.
type taintCtx struct {
	prog *Program
	fn   *Func
	pkg  *Package
	cfg  *CFG
	// mapRanges are the function's own range-over-map statements.
	mapRanges []*ast.RangeStmt
	// selectComms marks comm-clause statements of selects with two or
	// more comm cases — their received values depend on goroutine
	// completion order.
	selectComms map[ast.Stmt]bool
	// paramBits maps parameter objects to their provenance bits.
	paramBits map[types.Object]uint64
	// resultObjs are named result parameters (for naked returns).
	resultObjs []types.Object
	// events is the sink/return collection hook; nil during plain
	// solving, set during replay.
	events *[]taintEvent
}

// taintContext builds (and memoizes on the Program) the analysis
// context of f, or nil when f has no body.
func (p *Program) taintContext(f *Func) *taintCtx {
	if f.Body == nil {
		return nil
	}
	p.taintMu.Lock()
	if p.taintCtxs == nil {
		p.taintCtxs = map[*Func]*taintCtx{}
	}
	if tc, ok := p.taintCtxs[f]; ok {
		p.taintMu.Unlock()
		return tc
	}
	p.taintMu.Unlock()
	// Build outside the lock: context construction is pure and two
	// workers building the same context race only on who installs it.
	tc := &taintCtx{prog: p, fn: f, pkg: f.Pkg, cfg: BuildCFG(f.Body)}
	info := f.Pkg.Info
	inspectShallow(f.Body, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.RangeStmt:
			if tv, ok := info.Types[x.X]; ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					tc.mapRanges = append(tc.mapRanges, x)
				}
			}
		case *ast.SelectStmt:
			comms := 0
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					comms++
				}
			}
			if comms >= 2 {
				if tc.selectComms == nil {
					tc.selectComms = map[ast.Stmt]bool{}
				}
				for _, c := range x.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
						tc.selectComms[cc.Comm] = true
					}
				}
			}
		}
	})
	tc.paramBits = map[types.Object]uint64{}
	for i := 0; i < f.Sig.Params().Len(); i++ {
		tc.paramBits[f.Sig.Params().At(i)] = taintParamBit(i)
	}
	if rs := f.Sig.Results(); rs != nil {
		for i := 0; i < rs.Len(); i++ {
			if v := rs.At(i); v.Name() != "" {
				tc.resultObjs = append(tc.resultObjs, v)
			}
		}
	}
	p.taintMu.Lock()
	defer p.taintMu.Unlock()
	if old, ok := p.taintCtxs[f]; ok {
		return old
	}
	p.taintCtxs[f] = tc
	return tc
}

// CFGOf returns the memoized control-flow graph of f's body, or nil
// when f has no body. The CFG is shared by every dataflow analyzer.
func (p *Program) CFGOf(f *Func) *CFG {
	if tc := p.taintContext(f); tc != nil {
		return tc.cfg
	}
	return nil
}

func (tc *taintCtx) Direction() FlowDirection { return FlowForward }

// Boundary seeds every parameter with its provenance bit.
func (tc *taintCtx) Boundary() FlowState {
	st := newTaintState()
	for obj, bit := range tc.paramBits {
		if bit != 0 {
			st.vars[obj] = taintVal{mask: bit}
		}
	}
	return st
}

func (tc *taintCtx) Transfer(n ast.Node, f FlowState) FlowState {
	st := f.(*taintState)
	tc.transferNode(n, st)
	return st
}

// emit records an event during replay; a no-op while solving.
func (tc *taintCtx) emit(ev taintEvent) {
	if tc.events != nil {
		*tc.events = append(*tc.events, ev)
	}
}

// transferNode applies one statement's taint effect to st and, when
// replaying, emits sink/return events.
func (tc *taintCtx) transferNode(n ast.Node, st *taintState) {
	switch x := n.(type) {
	case *ast.AssignStmt:
		tc.transferAssign(x, st)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var v taintVal
					if i < len(vs.Values) {
						v = tc.taintOf(vs.Values[i], st)
					}
					st.set(tc.pkg.Info.Defs[name], v)
				}
			}
		}
	case *ast.RangeStmt:
		tc.transferRangeHead(x, st)
	case *ast.ReturnStmt:
		if len(x.Results) == 0 {
			for _, obj := range tc.resultObjs {
				if v := st.get(obj); v.mask != 0 {
					tc.emit(taintEvent{kind: "return", pos: x.Pos(), val: v})
				}
			}
		}
		for _, res := range x.Results {
			if v := tc.taintOf(res, st); v.mask != 0 {
				tc.emit(taintEvent{kind: "return", pos: x.Pos(), val: v})
			}
		}
	case ast.Stmt:
		// select comm statements are delivered as the clause head node.
		if as, ok := x.(*ast.ExprStmt); ok {
			tc.checkCalls(as.X, st)
		} else {
			tc.checkCallsInStmt(x, st)
		}
	case ast.Expr:
		// if/for conditions and switch tags: calls inside them can sink.
		tc.checkCalls(x, st)
	}
}

// transferAssign handles gen (sources), kill (overwrites, sorts) and
// propagation for one assignment.
func (tc *taintCtx) transferAssign(as *ast.AssignStmt, st *taintState) {
	if tc.selectComms != nil && tc.selectComms[ast.Stmt(as)] {
		// v, ok := <-ch inside a multi-case select: completion order.
		for _, lhs := range as.Lhs {
			if obj := tc.lhsObj(lhs); obj != nil {
				st.set(obj, taintVal{mask: taintNondet, pos: as.Pos(), src: "select completion order"})
			}
		}
		return
	}

	// Evaluate RHS taint before any kill.
	var vals []taintVal
	tuple := len(as.Lhs) > 1 && len(as.Rhs) == 1
	if tuple {
		v := tc.taintOf(as.Rhs[0], st)
		for range as.Lhs {
			vals = append(vals, v)
		}
	} else {
		for _, rhs := range as.Rhs {
			vals = append(vals, tc.taintOf(rhs, st))
		}
	}
	for _, rhs := range as.Rhs {
		tc.checkCalls(rhs, st)
	}

	for i, lhs := range as.Lhs {
		if i >= len(vals) {
			break
		}
		v := vals[i]

		// Source: append to a slice declared outside an enclosing
		// map-range loop — the canonical "collect keys in random order".
		if !tuple && i < len(as.Rhs) {
			if call, ok := unparen(as.Rhs[i]).(*ast.CallExpr); ok && tc.isAppend(call) {
				if rs := tc.enclosingMapRange(as.Pos()); rs != nil {
					if obj := rootObjInfo(tc.pkg.Info, lhs); obj != nil && declaredOutside(obj, rs) {
						v = v.withSource(taintVal{mask: taintNondet, pos: as.Pos(), src: "map iteration order"})
					}
				}
			}
		}

		obj := tc.lhsObj(lhs)
		root := rootObjInfo(tc.pkg.Info, lhs)

		// Sink: a store into a field of an artifact struct.
		if sel, ok := unparen(lhs).(*ast.SelectorExpr); ok {
			if name, ok := tc.sinkFieldOf(sel); ok && v.mask != 0 {
				tc.emit(taintEvent{kind: "sink", pos: as.Pos(), val: v, what: name + " field"})
			}
		}

		switch {
		case obj != nil && (as.Tok == token.ASSIGN || as.Tok == token.DEFINE):
			// Whole-variable overwrite replaces the taint.
			st.set(obj, v)
		case root != nil:
			// Field/element store or op-assign: taint accumulates on the
			// root variable.
			st.set(root, st.get(root).withSource(v))
			// Alias sharpening (points-to): a store through a pointer
			// also taints every variable the pointer may point to, so a
			// later direct read of the pointee sees the taint.
			if v.mask != 0 && root.Type() != nil {
				if _, isPtr := root.Type().Underlying().(*types.Pointer); isPtr {
					if pt := tc.prog.PointsToInfo(); pt != nil {
						for _, av := range pt.AliasedVars(root) {
							st.set(av, st.get(av).withSource(v))
						}
					}
				}
			}
		}
	}
}

// transferRangeHead models entering a range loop: iterating a
// nondet-ordered slice hands the element variable (and, for
// positional stores, the index) the collection's taint.
func (tc *taintCtx) transferRangeHead(rs *ast.RangeStmt, st *taintState) {
	v := tc.taintOf(rs.X, st)
	if v.mask == 0 {
		return
	}
	if tv, ok := tc.pkg.Info.Types[rs.X]; ok && tv.Type != nil {
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			return // map ranges source via appends, not via loop vars
		}
	}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if e == nil {
			continue
		}
		if obj := tc.lhsObj(e); obj != nil {
			st.set(obj, st.get(obj).withSource(v))
		}
	}
}

// lhsObj resolves a plain identifier assignment target to its object.
func (tc *taintCtx) lhsObj(e ast.Expr) types.Object {
	id, ok := unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := tc.pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return tc.pkg.Info.Uses[id]
}

func (tc *taintCtx) isAppend(call *ast.CallExpr) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := tc.pkg.Info.ObjectOf(id).(*types.Builtin)
	return isBuiltin
}

func (tc *taintCtx) enclosingMapRange(pos token.Pos) *ast.RangeStmt {
	for _, rs := range tc.mapRanges {
		if rs.Body.Pos() <= pos && pos <= rs.Body.End() {
			return rs
		}
	}
	return nil
}

// sinkFieldOf reports whether sel is a field selection on one of the
// artifact sink types, returning "Type.Field".
func (tc *taintCtx) sinkFieldOf(sel *ast.SelectorExpr) (string, bool) {
	s, ok := tc.pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", false
	}
	n := namedRecv(s.Recv())
	if n == nil || !sinkTypeNames[n.Obj().Name()] {
		return "", false
	}
	return n.Obj().Name() + "." + sel.Sel.Name, true
}

// taintOf computes the taint of an expression under st.
func (tc *taintCtx) taintOf(e ast.Expr, st *taintState) taintVal {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		return st.get(tc.pkg.Info.ObjectOf(x))
	case *ast.SelectorExpr:
		if _, ok := tc.pkg.Info.Uses[x.Sel].(*types.PkgName); ok {
			return taintVal{}
		}
		if s, ok := tc.pkg.Info.Selections[x]; ok && s.Kind() == types.FieldVal {
			return tc.taintOf(x.X, st)
		}
		return taintVal{}
	case *ast.IndexExpr:
		return tc.taintOf(x.X, st)
	case *ast.SliceExpr:
		return tc.taintOf(x.X, st)
	case *ast.StarExpr:
		// Alias sharpening (points-to): reading through a pointer reads
		// the pointees — fold in the taint of every variable it may
		// point to.
		v := tc.taintOf(x.X, st)
		if id, ok := unparen(x.X).(*ast.Ident); ok {
			if pt := tc.prog.PointsToInfo(); pt != nil {
				for _, av := range pt.AliasedVars(tc.pkg.Info.ObjectOf(id)) {
					v = v.withSource(st.get(av))
				}
			}
		}
		return v
	case *ast.UnaryExpr:
		return tc.taintOf(x.X, st)
	case *ast.BinaryExpr:
		return tc.taintOf(x.X, st).withSource(tc.taintOf(x.Y, st))
	case *ast.TypeAssertExpr:
		return tc.taintOf(x.X, st)
	case *ast.CompositeLit:
		var v taintVal
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			v = v.withSource(tc.taintOf(el, st))
		}
		// Building an artifact struct from tainted parts is itself a
		// sink: the literal IS the result surface.
		if v.mask != 0 {
			if tv, ok := tc.pkg.Info.Types[x]; ok {
				if n := namedOf(tv.Type); n != nil && sinkTypeNames[n.Obj().Name()] {
					tc.emit(taintEvent{kind: "sink", pos: x.Pos(), val: v, what: n.Obj().Name() + " literal"})
				}
			}
		}
		return v
	case *ast.CallExpr:
		return tc.taintOfCall(x, st)
	}
	return taintVal{}
}

func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// taintOfCall computes a call result's taint: conversions and append
// propagate their operands; in-program callees contribute their
// converged summary facts; fmt.Sprint* propagates; everything else
// external returns clean.
func (tc *taintCtx) taintOfCall(call *ast.CallExpr, st *taintState) taintVal {
	// Type conversion: T(x) keeps x's taint.
	if tv, ok := tc.pkg.Info.Types[unparen(call.Fun)]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return tc.taintOf(call.Args[0], st)
		}
		return taintVal{}
	}
	if tc.isAppend(call) {
		var v taintVal
		for _, a := range call.Args {
			v = v.withSource(tc.taintOf(a, st))
		}
		return v
	}
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok && importedPkgPath(tc.pkg.Info, id) == "fmt" &&
			strings.HasPrefix(sel.Sel.Name, "Sprint") {
			var v taintVal
			for _, a := range call.Args {
				v = v.withSource(tc.taintOf(a, st))
			}
			return v
		}
	}
	callees := tc.prog.CalleesOf(call)
	if len(callees) == 0 {
		return taintVal{}
	}
	var v taintVal
	for _, g := range callees {
		gs := tc.prog.SummaryOf(g)
		if gs.TaintsReturn {
			v = v.withSource(taintVal{mask: taintNondet, pos: call.Pos(), src: "call to " + g.Name() + " (returns nondet-ordered value)"})
		}
		if gs.ParamTaintToReturn != 0 {
			for i, a := range call.Args {
				av := tc.taintOf(a, st)
				if av.mask != 0 && gs.ParamTaintToReturn&taintParamBit(paramIndexFor(g, i, len(call.Args))) != 0 {
					v = v.withSource(av)
				}
			}
		}
	}
	return v
}

// paramIndexFor maps argument position i to the callee's parameter
// index, folding variadic overflow onto the last parameter.
func paramIndexFor(g *Func, i, nargs int) int {
	np := g.Sig.Params().Len()
	if np == 0 {
		return 63 // no params: bit 0 of nothing, out of mask range
	}
	if i >= np {
		return np - 1
	}
	return i
}

// checkCallsInStmt walks a statement's immediate expressions for calls
// (sink checks + sort kills) without descending into nested statements
// — those arrive as their own CFG nodes.
func (tc *taintCtx) checkCallsInStmt(s ast.Stmt, st *taintState) {
	switch x := s.(type) {
	case *ast.GoStmt:
		tc.checkCalls(x.Call, st)
	case *ast.DeferStmt:
		tc.checkCalls(x.Call, st)
	case *ast.SendStmt:
		tc.checkCalls(x.Chan, st)
		tc.checkCalls(x.Value, st)
	case *ast.IncDecStmt:
		tc.checkCalls(x.X, st)
	}
}

// checkCalls scans an expression tree for call sinks and sort kills,
// skipping nested function literals.
func (tc *taintCtx) checkCalls(e ast.Expr, st *taintState) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		tc.checkOneCall(call, st)
		return true
	})
}

func (tc *taintCtx) checkOneCall(call *ast.CallExpr, st *taintState) {
	fun := unparen(call.Fun)
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			switch importedPkgPath(tc.pkg.Info, id) {
			case "sort", "slices":
				// Kill: sorting determinizes the collection's order.
				for _, a := range call.Args {
					if obj := rootObjInfo(tc.pkg.Info, a); obj != nil {
						st.set(obj, taintVal{})
					}
				}
				return
			case "fmt":
				if strings.HasPrefix(sel.Sel.Name, "Print") || strings.HasPrefix(sel.Sel.Name, "Fprint") {
					tc.sinkArgs(call, st, "fmt."+sel.Sel.Name)
				}
				return
			case "os":
				if sel.Sel.Name == "WriteFile" {
					tc.sinkArgs(call, st, "os.WriteFile")
				}
				return
			case "encoding/json":
				if strings.HasPrefix(sel.Sel.Name, "Marshal") {
					tc.sinkArgs(call, st, "json."+sel.Sel.Name)
				}
				return
			}
		}
		// External writer methods: w.Write(record) and friends on types
		// outside the program.
		if writerSinkMethods[sel.Sel.Name] {
			if s, ok := tc.pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
				if n := namedRecv(s.Recv()); n != nil && n.Obj().Pkg() != nil && !tc.prog.hasPkg(n.Obj().Pkg().Path()) {
					tc.sinkArgs(call, st, n.Obj().Pkg().Name()+"."+n.Obj().Name()+"."+sel.Sel.Name)
				}
			}
			return
		}
	}
	// In-program callees whose parameters (transitively) reach a sink.
	for _, g := range tc.prog.CalleesOf(call) {
		gs := tc.prog.SummaryOf(g)
		if gs.ParamTaintToSink == 0 {
			continue
		}
		for i, a := range call.Args {
			av := tc.taintOf(a, st)
			if av.mask == 0 {
				continue
			}
			if gs.ParamTaintToSink&taintParamBit(paramIndexFor(g, i, len(call.Args))) != 0 {
				tc.emit(taintEvent{kind: "sink", pos: a.Pos(), val: av,
					what: "parameter of " + g.Name() + " that reaches an artifact writer"})
			}
		}
	}
}

func (tc *taintCtx) sinkArgs(call *ast.CallExpr, st *taintState, what string) {
	for _, a := range call.Args {
		if v := tc.taintOf(a, st); v.mask != 0 {
			tc.emit(taintEvent{kind: "sink", pos: a.Pos(), val: v, what: what})
		}
	}
}

// hasPkg reports whether the program analyzes the package at path.
func (p *Program) hasPkg(path string) bool {
	for _, pkg := range p.Pkgs {
		if pkg.Path == path {
			return true
		}
	}
	return false
}

// taintEvents solves the taint dataflow for f and replays it, returning
// every sink and return event in deterministic block order.
func (p *Program) taintEvents(f *Func) []taintEvent {
	tc := p.taintContext(f)
	if tc == nil {
		return nil
	}
	sol := SolveDataflow(tc.cfg, tc)
	var events []taintEvent
	tc.events = &events
	defer func() { tc.events = nil }()
	for _, b := range tc.cfg.Blocks {
		in := sol.In[b]
		if in == nil {
			continue
		}
		st := in.Clone().(*taintState)
		for _, n := range b.Nodes {
			tc.transferNode(n, st)
		}
	}
	return events
}

// updateTaintSummary recomputes f's interprocedural taint facts from
// the current callee summaries, merging them into sum and reporting
// change. Facts are monotone (bits only get set), so the SCC fixpoint
// in computeSummaries converges.
func (p *Program) updateTaintSummary(f *Func, sum *Summary) bool {
	changed := false
	for _, ev := range p.taintEvents(f) {
		switch ev.kind {
		case "return":
			if ev.val.mask&taintNondet != 0 && !sum.TaintsReturn {
				sum.TaintsReturn = true
				changed = true
			}
			if bits := ev.val.mask &^ taintNondet; bits&^sum.ParamTaintToReturn != 0 {
				sum.ParamTaintToReturn |= bits
				changed = true
			}
		case "sink":
			if bits := ev.val.mask &^ taintNondet; bits&^sum.ParamTaintToSink != 0 {
				sum.ParamTaintToSink |= bits
				changed = true
			}
		}
	}
	return changed
}
