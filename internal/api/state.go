package api

import (
	"sort"

	"mba/internal/model"
)

// CacheSnapshotState is the serializable form of a CacheSnapshot. The
// in-memory snapshot is map-keyed; this DTO flattens every map into a
// slice sorted by key so encoding the same snapshot always yields the
// same bytes (the durable store checksums them) and decoding rebuilds
// an identical snapshot.
type CacheSnapshotState struct {
	Conns    []ConnsEntry    `json:"conns,omitempty"`
	Tls      []TimelineEntry `json:"tls,omitempty"`
	Priv     []FlagEntry     `json:"priv,omitempty"`
	Gone     []FlagEntry     `json:"gone,omitempty"`
	Searches []SearchEntry   `json:"searches,omitempty"`
}

// ConnsEntry is one cached CONNECTIONS response.
type ConnsEntry struct {
	ID    int64   `json:"id"`
	Conns []int64 `json:"conns"`
}

// TimelineEntry is one cached USER TIMELINE response.
type TimelineEntry struct {
	ID       int64          `json:"id"`
	Timeline model.Timeline `json:"timeline"`
}

// FlagEntry is one cached boolean response (private / gone probes).
type FlagEntry struct {
	ID   int64 `json:"id"`
	Flag bool  `json:"flag"`
}

// SearchEntry is one cached KEYWORD SEARCH response.
type SearchEntry struct {
	Keyword string  `json:"keyword"`
	Hits    []int64 `json:"hits"`
}

// State converts the snapshot into its deterministic serializable
// form. Nil-safe; slices and timelines are shared, not deep-copied
// (Client responses are read-only by contract).
func (cs *CacheSnapshot) State() CacheSnapshotState {
	var st CacheSnapshotState
	if cs == nil {
		return st
	}
	for _, id := range sortedKeys(cs.conns) {
		st.Conns = append(st.Conns, ConnsEntry{ID: id, Conns: cs.conns[id]})
	}
	for _, id := range sortedKeys(cs.tls) {
		st.Tls = append(st.Tls, TimelineEntry{ID: id, Timeline: cs.tls[id]})
	}
	for _, id := range sortedKeys(cs.priv) {
		st.Priv = append(st.Priv, FlagEntry{ID: id, Flag: cs.priv[id]})
	}
	for _, id := range sortedKeys(cs.gone) {
		st.Gone = append(st.Gone, FlagEntry{ID: id, Flag: cs.gone[id]})
	}
	kws := make([]string, 0, len(cs.searches))
	for kw := range cs.searches {
		kws = append(kws, kw)
	}
	sort.Strings(kws)
	for _, kw := range kws {
		st.Searches = append(st.Searches, SearchEntry{Keyword: kw, Hits: cs.searches[kw]})
	}
	return st
}

// CacheSnapshotFromState rebuilds a snapshot from its serialized form.
func CacheSnapshotFromState(st CacheSnapshotState) *CacheSnapshot {
	cs := &CacheSnapshot{
		conns:    make(map[int64][]int64, len(st.Conns)),
		tls:      make(map[int64]model.Timeline, len(st.Tls)),
		priv:     make(map[int64]bool, len(st.Priv)),
		gone:     make(map[int64]bool, len(st.Gone)),
		searches: make(map[string][]int64, len(st.Searches)),
	}
	for _, e := range st.Conns {
		cs.conns[e.ID] = e.Conns
	}
	for _, e := range st.Tls {
		cs.tls[e.ID] = e.Timeline
	}
	for _, e := range st.Priv {
		cs.priv[e.ID] = e.Flag
	}
	for _, e := range st.Gone {
		cs.gone[e.ID] = e.Flag
	}
	for _, e := range st.Searches {
		cs.searches[e.Keyword] = e.Hits
	}
	return cs
}

// sortedKeys returns m's keys in ascending order.
func sortedKeys[V any](m map[int64]V) []int64 {
	ks := make([]int64, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}
