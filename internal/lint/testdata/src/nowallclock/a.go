package nowallclock

import "time"

func violations() {
	_ = time.Now()          // want "time.Now reads the wall clock"
	time.Sleep(time.Second) // want "time.Sleep reads the wall clock"
	t0 := time.Time{}
	_ = time.Since(t0)        // want "time.Since reads the wall clock"
	<-time.After(time.Second) // want "time.After reads the wall clock"
}

func idiomatic(wait time.Duration) time.Duration {
	// Virtual-time arithmetic on time.Duration values is fine; only
	// reading or blocking on the process clock is forbidden.
	total := 3 * time.Minute
	return total + wait
}
