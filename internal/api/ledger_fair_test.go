package api

import (
	"math/rand"
	"sync"
	"testing"
)

// TestLedgerFairAdmissionRace hammers one ledger from many goroutines
// posing as competing tenants, with aggregate demand far beyond every
// quota, and then checks the fair-admission laws on the settled books:
// credits are conserved, nothing stays reserved at rest, no tenant
// ever commits beyond its quota, and — no starvation — every tenant
// drives its committed pool to exactly its quota, its fair share,
// regardless of how aggressively the others raced. Run under -race
// this doubles as the ledger's concurrency-safety certificate.
func TestLedgerFairAdmissionRace(t *testing.T) {
	const (
		tenants  = 4
		quota    = 240
		workers  = 8 // concurrent submitters racing across all tenants
		chunk    = 5 // credits per reservation attempt
		attempts = 200
	)
	led := NewLedger(tenants * quota)
	for id := 0; id < tenants; id++ {
		if err := led.Register(id, quota); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; i < attempts; i++ {
				id := rng.Intn(tenants)
				grant, err := led.Reserve(id, chunk)
				if err != nil {
					t.Errorf("worker %d: reserve: %v", w, err)
					return
				}
				if grant == 0 {
					continue
				}
				// Mix full commits, partial commit+refund, and full
				// refunds so every settlement path races.
				switch rng.Intn(3) {
				case 0:
					if err := led.Commit(id, grant); err != nil {
						t.Errorf("worker %d: commit: %v", w, err)
						return
					}
				case 1:
					half := grant / 2
					if err := led.Commit(id, half); err != nil {
						t.Errorf("worker %d: commit: %v", w, err)
						return
					}
					if err := led.Refund(id, grant-half); err != nil {
						t.Errorf("worker %d: refund: %v", w, err)
						return
					}
				default:
					if err := led.Refund(id, grant); err != nil {
						t.Errorf("worker %d: refund: %v", w, err)
						return
					}
				}
			}
			// Demand phase over: drain whatever quota is left so the
			// no-starvation check below is about admission, not about
			// a tenant that simply stopped asking.
			for {
				grant, err := led.Reserve(w%tenants, chunk)
				if err != nil {
					t.Errorf("worker %d: drain reserve: %v", w, err)
					return
				}
				if grant == 0 {
					return
				}
				if err := led.Commit(w%tenants, grant); err != nil {
					t.Errorf("worker %d: drain commit: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	ls := led.Snapshot()
	if ls.Reserved != 0 {
		t.Errorf("%d credits still reserved at rest", ls.Reserved)
	}
	if ls.Available+ls.Reserved+ls.Committed != ls.Total {
		t.Errorf("conservation broken: %d + %d + %d != %d",
			ls.Available, ls.Reserved, ls.Committed, ls.Total)
	}
	sum := 0
	for _, acct := range ls.Accounts {
		sum += acct.Committed
		if acct.Committed > acct.Quota {
			t.Errorf("account %d committed %d beyond quota %d", acct.ID, acct.Committed, acct.Quota)
		}
		// No starvation: with every worker draining residual quota at
		// the end, a fair ledger leaves each tenant at exactly its
		// share. Any shortfall means another tenant's pressure was
		// allowed to eat this tenant's quota.
		if acct.Committed != quota {
			t.Errorf("account %d settled at %d committed, fair share is %d", acct.ID, acct.Committed, quota)
		}
	}
	if sum != ls.Committed {
		t.Errorf("account commitments sum to %d, global committed %d", sum, ls.Committed)
	}
}
