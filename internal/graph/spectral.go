package graph

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// Spectral machinery for mixing-time analysis. A simple random walk on
// a connected non-bipartite graph mixes at a rate governed by the
// spectral gap 1 − λ₂ of its (lazy) transition matrix, and Cheeger's
// inequality ties the gap to conductance:
//
//	φ²/2 ≤ 1 − λ₂ ≤ 2φ
//
// The paper reasons about burn-in through conductance (Theorem 4.1);
// these estimates let the experiments cross-check the model against
// the actual spectrum of generated subgraphs.

// ErrSpectral is returned when a spectral estimate cannot be computed
// (empty graph, no edges, or a disconnected graph).
var ErrSpectral = errors.New("graph: spectral estimate undefined")

// LazySecondEigenvalue estimates λ₂ of the lazy random-walk transition
// matrix P' = (I + D⁻¹A)/2 by power iteration with deflation of the
// known principal eigenvector (the degree distribution). The lazy walk
// makes the chain aperiodic so λ₂ is real and non-negative. iters
// controls the iteration count (≥ 30 recommended).
func (g *Graph) LazySecondEigenvalue(rng *rand.Rand, iters int) (float64, error) {
	nodes := g.Nodes()
	n := len(nodes)
	if n < 2 || g.edges == 0 {
		return 0, ErrSpectral
	}
	if len(g.Components()) != 1 {
		return 0, ErrSpectral
	}
	if iters < 1 {
		iters = 30
	}
	idx := make(map[int64]int, n)
	for i, u := range nodes {
		idx[u] = i
	}
	// Stationary distribution of the (lazy) SRW: π(u) ∝ d(u).
	pi := make([]float64, n)
	m2 := float64(2 * g.edges)
	for i, u := range nodes {
		pi[i] = float64(g.Degree(u)) / m2
	}

	// Random start vector, deflated against the principal left
	// eigenvector via the π-weighted inner product (P is self-adjoint
	// under <x,y>_π = Σ π x y for reversible chains).
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	deflate := func(v []float64) {
		// Remove the component along the constant (right) eigenvector:
		// <v,1>_π = Σ π v.
		var dot float64
		for i := range v {
			dot += pi[i] * v[i]
		}
		for i := range v {
			v[i] -= dot
		}
	}
	norm := func(v []float64) float64 {
		var s float64
		for i := range v {
			s += pi[i] * v[i] * v[i]
		}
		return math.Sqrt(s)
	}
	applyLazy := func(v []float64) []float64 {
		out := make([]float64, n)
		for i, u := range nodes {
			ns := g.Neighbors(u)
			var acc float64
			for _, w := range ns {
				acc += v[idx[w]]
			}
			out[i] = 0.5*v[i] + 0.5*acc/float64(len(ns))
		}
		return out
	}

	deflate(x)
	if norm(x) == 0 {
		return 0, ErrSpectral
	}
	var lambda float64
	for it := 0; it < iters; it++ {
		y := applyLazy(x)
		deflate(y)
		ny := norm(y)
		if ny == 0 {
			return 0, nil // x was in the kernel: gap is maximal
		}
		lambda = ny / norm(x)
		for i := range y {
			y[i] /= ny
		}
		x = y
	}
	if lambda > 1 {
		lambda = 1
	}
	return lambda, nil
}

// SpectralGap estimates 1 − λ₂ of the lazy walk.
func (g *Graph) SpectralGap(rng *rand.Rand, iters int) (float64, error) {
	l2, err := g.LazySecondEigenvalue(rng, iters)
	if err != nil {
		return 0, err
	}
	return 1 - l2, nil
}

// MixingTimeUpper returns the standard upper bound on the ε-mixing
// time of the lazy walk: t ≤ log(1/(ε·π_min)) / (1 − λ₂).
func (g *Graph) MixingTimeUpper(rng *rand.Rand, iters int, eps float64) (float64, error) {
	gap, err := g.SpectralGap(rng, iters)
	if err != nil {
		return 0, err
	}
	if gap <= 0 {
		return math.Inf(1), nil
	}
	if eps <= 0 || eps >= 1 {
		eps = 0.25
	}
	minDeg := math.Inf(1)
	for _, u := range g.Nodes() {
		if d := float64(g.Degree(u)); d < minDeg {
			minDeg = d
		}
	}
	piMin := minDeg / float64(2*g.edges)
	return math.Log(1/(eps*piMin)) / gap, nil
}

// SweepConductance runs the standard spectral sweep: order nodes by
// the (approximate) second eigenvector and return the best conductance
// among the n−1 prefix cuts. It upper-bounds the true conductance and
// is usually close on community-structured graphs — a scalable
// complement to ExactConductance.
func (g *Graph) SweepConductance(rng *rand.Rand, iters int) (float64, error) {
	nodes := g.Nodes()
	n := len(nodes)
	if n < 2 || g.edges == 0 {
		return 0, ErrSpectral
	}
	if len(g.Components()) != 1 {
		return 0, ErrSpectral
	}
	if iters < 1 {
		iters = 50
	}
	idx := make(map[int64]int, n)
	for i, u := range nodes {
		idx[u] = i
	}
	pi := make([]float64, n)
	m2 := float64(2 * g.edges)
	for i, u := range nodes {
		pi[i] = float64(g.Degree(u)) / m2
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for it := 0; it < iters; it++ {
		// One lazy-walk application plus deflation.
		y := make([]float64, n)
		for i, u := range nodes {
			ns := g.Neighbors(u)
			var acc float64
			for _, w := range ns {
				acc += x[idx[w]]
			}
			y[i] = 0.5*x[i] + 0.5*acc/float64(len(ns))
		}
		var dot, nrm float64
		for i := range y {
			dot += pi[i] * y[i]
		}
		for i := range y {
			y[i] -= dot
			nrm += pi[i] * y[i] * y[i]
		}
		nrm = math.Sqrt(nrm)
		if nrm == 0 {
			break
		}
		for i := range y {
			y[i] /= nrm
		}
		x = y
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return x[order[a]] < x[order[b]] })

	// Sweep the prefix cuts, maintaining volume and crossing count
	// incrementally.
	inS := make([]bool, n)
	var volS float64
	var crossing float64
	best := math.Inf(1)
	for k := 0; k < n-1; k++ {
		i := order[k]
		u := nodes[i]
		d := float64(g.Degree(u))
		// Every edge from u to a node already in S stops crossing; every
		// other edge starts crossing.
		var toS float64
		for _, w := range g.Neighbors(u) {
			if inS[idx[w]] {
				toS++
			}
		}
		crossing += d - 2*toS
		volS += d
		inS[i] = true
		den := math.Min(volS, m2-volS)
		if den > 0 {
			if phi := crossing / den; phi < best {
				best = phi
			}
		}
	}
	if math.IsInf(best, 1) {
		return 0, ErrSpectral
	}
	return best, nil
}
