// Package budgetpath exercises the path-sensitive ledger rules: every
// Reserve grant is settled (Commit/Refund/Release) on every path, and
// a path where the reservation itself failed never charges.
package budgetpath

import "api"

// leakOnEarlyReturn settles only one branch; the other returns with
// the grant outstanding.
func leakOnEarlyReturn(led *api.Ledger, hot bool) error {
	grant, err := led.Reserve(1, 10) // want `ledger reservation can reach a return without Commit/Refund/Release on some path`
	if err != nil {
		return err
	}
	if hot {
		return nil
	}
	return led.Commit(1, grant)
}

// carryBalanced mirrors api.CarryForward: the error path owes nothing
// (no credits granted), short grants refund, full grants commit.
func carryBalanced(led *api.Ledger, want int) (int, error) {
	grant, err := led.Reserve(7, want)
	if err != nil {
		return 0, err
	}
	if grant < want {
		if rerr := led.Refund(7, grant); rerr != nil {
			return 0, rerr
		}
		return 0, nil
	}
	if cerr := led.Commit(7, grant); cerr != nil {
		return 0, cerr
	}
	return grant, nil
}

// deferRelease is the idiomatic always-settled shape.
func deferRelease(led *api.Ledger, c *api.Client) ([]int64, error) {
	_, err := led.Reserve(2, 5)
	if err != nil {
		return nil, err
	}
	defer led.Release(2)
	return c.Search("q")
}

// chargeOnFailedPath spends on the branch where Reserve failed: a
// failed reservation grants zero credits, so the spend bypasses
// admission.
func chargeOnFailedPath(led *api.Ledger, c *api.Client) ([]int64, error) {
	grant, err := led.Reserve(3, 5)
	if err != nil {
		ids, _ := c.Search("q") // want `charged api\.Client call on a path where the ledger reservation at a\.go:\d+ failed`
		return ids, nil
	}
	defer led.Refund(3, grant)
	return c.Search("q")
}

type pool struct {
	reserved int
}

// absorb mirrors api.Client.ledgerCommit: the grant folds into a
// field whose owner settles later, so this function owes nothing.
func (p *pool) absorb(led *api.Ledger) error {
	grant, err := led.Reserve(9, 4)
	if err != nil {
		return err
	}
	p.reserved += grant
	return nil
}

func leakInsideRange(led *api.Ledger, xs []int) error {
	grant, err := led.Reserve(9, 10) // want `ledger reservation can reach a return without Commit/Refund/Release on some path`
	if err != nil {
		return err
	}
	for _, x := range xs {
		if x < 0 {
			return led.Refund(9, grant)
		}
	}
	return nil
}
