// Package fleet orchestrates a fleet of concurrent MA-SRW/MA-TARW
// walkers over one platform and one shared API-call budget — the
// paper's repeated-independent-walk averaging (§6) run in parallel, the
// way a production estimation service would.
//
// The design separates two knobs that look similar but must not be:
//
//   - Units is the STATISTICAL plan: how many independent logical
//     walkers the budget is split across. Each unit gets a derived
//     seed, a deterministic quota of the budget (arbitrated by an
//     api.Ledger), and its own api.Server with derived fault/churn
//     seeds, so a unit's entire run is a pure function of the fleet
//     seed and configuration.
//   - Parallelism is the EXECUTION plan: how many goroutines drain the
//     unit queue. It affects wall-clock time and nothing else.
//
// Because no unit shares mutable state with another (the read-only
// platform is shared; servers, clients, sessions, and RNGs are
// per-unit) and the merge folds unit results in unit order with
// compensated summation, the fleet estimate is bit-identical at any
// parallelism — the determinism invariant internal/audit checks and
// the regression tests assert for walkers ∈ {1, 2, 8}.
//
// Robustness: each unit runs the degrade→checkpoint→resume loop from
// PR 1/3 against its own quota; a stall-watchdog trip (no budget
// progress in virtual time) cancels and reseeds the walker on a fresh
// RNG segment; a panicking walker is isolated into a Degraded unit
// result; context cancellation and virtual deadlines propagate through
// api.Client to every charged call and surface as Degraded partial
// results, never hangs. The whole fleet can checkpoint mid-flight and
// resume later, unit by unit.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"mba/internal/api"
	"mba/internal/core"
	"mba/internal/model"
	"mba/internal/platform"
	"mba/internal/query"
	"mba/internal/stats"
)

// ErrWalkerPanic marks a unit whose walker goroutine panicked; the
// panic was isolated into a Degraded unit result instead of crashing
// the fleet.
var ErrWalkerPanic = errors.New("fleet: walker panicked")

// Seed-derivation strides. Each per-unit stream (walk RNG, fault
// schedule, churn schedule) uses its own large prime stride so unit
// streams never collide with each other or with the per-segment
// derivation inside core (opts.Seed + segments*0x9e3779b9).
const (
	walkSeedStride  = 15485863
	faultSeedStride = 32452843
	churnSeedStride = 49979687
)

// WalkFn runs one walker segment: a full estimation run for the given
// derived seed over the session, optionally resuming a prior segment's
// checkpoint. Implementations build the algorithm options (including
// Ctx, so cancellation threads into the walk) and call core.RunSRW,
// core.RunMR, or core.RunTARW.
type WalkFn func(ctx context.Context, s *core.Session, seed int64, resume *core.Checkpoint) (core.Result, error)

// Config configures a fleet run.
type Config struct {
	// Platform is the (read-only, safely shared) simulated platform.
	Platform *platform.Platform
	// Preset is the API interface preset (default Twitter).
	Preset api.Preset
	// Faults configures per-unit fault injection; each unit's server
	// derives its own fault seed from Faults.Seed, Seed, and the unit
	// index, so fault schedules are independent across units and
	// deterministic regardless of goroutine interleaving.
	Faults api.Faults
	// Churn, when its rate is positive, enables per-unit platform churn
	// overlays (again with derived per-unit seeds).
	Churn platform.ChurnConfig
	// Query is the aggregate query under estimation.
	Query query.Query
	// Interval is the level-graph interval T (0 = one day).
	Interval model.Tick
	// Walk runs one walker segment. Required.
	Walk WalkFn
	// Budget is the fleet's total API-call budget, partitioned across
	// units by the ledger. Required (a fleet cannot arbitrate an
	// unlimited budget).
	Budget int
	// Seed derives every per-unit seed.
	Seed int64
	// Units is the number of logical walkers the budget is split across
	// (default 8). This is the statistical plan: changing it changes
	// the estimate; changing Parallelism does not.
	Units int
	// Parallelism is the number of worker goroutines executing units
	// (default Units; capped at Units).
	Parallelism int
	// MinUnitBudget is the load-shedding floor (default 250): when the
	// budget cannot give every unit at least this many calls, the fleet
	// deterministically sheds units down to Budget/MinUnitBudget
	// (minimum 1) instead of starving all of them.
	MinUnitBudget int
	// Deadline, when positive, bounds each unit in virtual time
	// (cumulative across its resume segments); a unit past it degrades
	// with api.ErrDeadlineExceeded. Virtual deadlines are deterministic,
	// so deadline hits do not break the parallelism invariance.
	Deadline time.Duration
	// StallWait arms the per-unit stall watchdog (see
	// api.RetryPolicy.StallWait); 0 leaves it off.
	StallWait time.Duration
	// Policy overrides the per-unit retry policy (nil = default).
	Policy *api.RetryPolicy
	// MaxResumes bounds the per-unit degrade→resume loop (default 100).
	MaxResumes int
	// Resume continues a prior fleet run from its checkpoint: finished
	// units keep their results, interrupted units resume from their
	// per-unit checkpoints, and prior spend is carried forward in the
	// ledger so quotas keep binding.
	Resume *Checkpoint
}

func (c Config) withDefaults() Config {
	if c.Preset.Name == "" {
		c.Preset = api.Twitter()
	}
	if c.Interval <= 0 {
		c.Interval = model.Day
	}
	if c.Units <= 0 {
		c.Units = 8
	}
	if c.Parallelism <= 0 {
		c.Parallelism = c.Units
	}
	if c.MinUnitBudget <= 0 {
		c.MinUnitBudget = 250
	}
	if c.MaxResumes <= 0 {
		c.MaxResumes = 100
	}
	return c
}

// UnitResult is one logical walker's final outcome.
type UnitResult struct {
	// Unit is the unit index (0-based; merge order).
	Unit int
	// Seed is the unit's derived walk seed.
	Seed int64
	// Quota is the unit's budget share fixed by the ledger.
	Quota int
	// Estimate is the unit's final estimate (NaN when its quota bought
	// none).
	Estimate float64
	// Cost, Samples, Stats, and Heal are cumulative across the unit's
	// resume segments.
	Cost    int
	Samples int
	Stats   api.Stats
	Heal    core.HealStats
	// Resumes counts checkpoint resumes the unit needed.
	Resumes int
	// WatchdogTrips counts stall-watchdog firings (each one reseeded
	// the walker on a fresh RNG segment via resume).
	WatchdogTrips int
	// Degraded is true when the unit ended in a degraded state;
	// DegradedBy records the final cause. Panicked additionally marks
	// walker panics isolated by the orchestrator.
	Degraded   bool
	DegradedBy error
	Panicked   bool
	// Checkpoint is the unit's resumable state (nil if the unit
	// panicked before its first checkpoint).
	Checkpoint *core.Checkpoint
}

// Result is the merged fleet outcome.
type Result struct {
	// Estimate is the deterministic sample-weighted Hansen–Hurwitz
	// combination of the unit estimates, folded in unit order with
	// compensated summation (NaN when no unit produced an estimate).
	Estimate float64
	// Cost and Samples sum over units; Stats and Heal are field-wise
	// sums.
	Cost    int
	Samples int
	Stats   api.Stats
	Heal    core.HealStats
	// VirtualDuration is the fleet's virtual wall-clock: the maximum
	// over units (concurrent walkers wait concurrently). Deliberately
	// independent of Parallelism so reported numbers stay deterministic.
	VirtualDuration time.Duration
	// Degraded is true when at least one unit ended degraded;
	// DegradedBy is the lowest-indexed degraded unit's cause.
	Degraded   bool
	DegradedBy error
	// WatchdogTrips sums the stall-watchdog firings across units.
	WatchdogTrips int
	// UnitsPlanned/UnitsRun record deterministic load-shedding:
	// UnitsRun = UnitsPlanned - Shed units actually received quotas.
	UnitsPlanned int
	UnitsRun     int
	Shed         int
	// Units holds the per-unit results in unit order.
	Units []UnitResult
	// Ledger is the budget arbiter's final books (conservation is
	// audited: available + reserved + committed == total, committed ==
	// exactly the calls charged).
	Ledger api.LedgerStats
	// Checkpoint resumes the whole fleet mid-flight.
	Checkpoint *Checkpoint
}

// Checkpoint is a resumable fleet snapshot: every unit's final result
// (finished units are kept as-is on resume, interrupted units resume
// from their per-unit core checkpoints).
type Checkpoint struct {
	units []UnitResult
}

// Units returns the number of checkpointed units.
func (c *Checkpoint) Units() int {
	if c == nil {
		return 0
	}
	return len(c.units)
}

// unitSeed derives the walk seed of a unit.
func unitSeed(base int64, unit int) int64 {
	return base + int64(unit+1)*walkSeedStride
}

// virtualOf translates a cumulative accounting snapshot into virtual
// wall-clock under a preset's rate limit (the per-unit analogue of
// api.Client.VirtualDuration, needed because unit stats span several
// clients).
func virtualOf(p api.Preset, st api.Stats) time.Duration {
	if p.RateLimitCalls <= 0 {
		return st.Wait
	}
	windows := (st.Calls + p.RateLimitCalls - 1) / p.RateLimitCalls
	return time.Duration(windows)*p.RateLimitWindow + st.Wait
}

// terminalDegrade reports whether a degrade cause must not be resumed:
// cancellation and deadline exceedance end the unit (resuming would
// fail the same way or overrun the caller's bound), while faults,
// churn overwhelm, and watchdog stalls are ridden out via resume.
func terminalDegrade(err error) bool {
	return errors.Is(err, api.ErrCanceled) || errors.Is(err, api.ErrDeadlineExceeded)
}

// Run executes the fleet and merges the unit results. It returns an
// error only for configuration mistakes (missing Walk, non-positive
// budget, resume shape mismatch); every runtime failure — faults,
// churn, stalls, panics, cancellation — is folded into Degraded unit
// results and a Degraded fleet result instead.
func Run(ctx context.Context, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Walk == nil {
		return Result{}, errors.New("fleet: Config.Walk is required")
	}
	if cfg.Budget <= 0 {
		return Result{}, errors.New("fleet: Config.Budget must be positive (a fleet arbitrates a finite budget)")
	}
	if ctx == nil {
		ctx = context.Background()
	}

	// Deterministic load-shedding: fewer walkers when credits run low.
	// The decision depends only on (Budget, Units, MinUnitBudget) —
	// never on runtime contention — so a shed fleet is still a pure
	// function of its configuration.
	units := cfg.Units
	if m := cfg.Budget / cfg.MinUnitBudget; m < units {
		units = m
		if units < 1 {
			units = 1
		}
	}
	if cfg.Resume != nil && cfg.Resume.Units() != units {
		return Result{}, fmt.Errorf("fleet: resume checkpoint has %d units, config yields %d (budget/units/min-unit-budget must match the original run)",
			cfg.Resume.Units(), units)
	}

	// Quota partition: Budget/units each, the remainder spread over the
	// first units. Fixed before any walker starts — fair admission by
	// construction, and the reason a hot walker cannot starve the rest.
	led := api.NewLedger(cfg.Budget)
	quotas := make([]int, units)
	share, rem := cfg.Budget/units, cfg.Budget%units
	for i := range quotas {
		quotas[i] = share
		if i < rem {
			quotas[i]++
		}
		if err := led.Register(i, quotas[i]); err != nil {
			return Result{}, err
		}
	}

	// Carry a resumed fleet's prior spend onto the books so quotas keep
	// binding across the whole logical run.
	if cfg.Resume != nil {
		for i, prior := range cfg.Resume.units {
			if err := led.CarryForward(i, prior.Cost); err != nil {
				return Result{}, err
			}
		}
	}

	results := make([]UnitResult, units)
	jobs := make(chan int)
	var wg sync.WaitGroup
	par := cfg.Parallelism
	if par > units {
		par = units
	}
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range jobs {
				var prior *UnitResult
				if cfg.Resume != nil {
					prior = &cfg.Resume.units[u]
				}
				if prior != nil && !prior.Degraded {
					// The unit already finished in the prior flight;
					// its result merges unchanged.
					results[u] = *prior
					continue
				}
				results[u] = runUnit(ctx, cfg, led, u, quotas[u], prior)
			}
		}()
	}
	for u := 0; u < units; u++ {
		jobs <- u
	}
	close(jobs)
	wg.Wait()

	return merge(cfg, units, results, led), nil
}

// runUnit drives one logical walker to completion: its own server
// (derived fault/churn seeds), a ledger-bound client per segment, and
// the degrade→checkpoint→resume loop, with panics isolated into a
// Degraded result.
func runUnit(ctx context.Context, cfg Config, led *api.Ledger, unit, quota int, prior *UnitResult) (out UnitResult) {
	out = UnitResult{Unit: unit, Seed: unitSeed(cfg.Seed, unit), Quota: quota}
	// Panic isolation: a crashing walker becomes a Degraded unit
	// result; the fleet and its sibling walkers keep going.
	defer func() {
		if r := recover(); r != nil {
			out.Degraded = true
			out.Panicked = true
			out.DegradedBy = fmt.Errorf("%w: %v", ErrWalkerPanic, r)
		}
	}()

	faults := cfg.Faults
	faults.Seed = faults.Seed + cfg.Seed + int64(unit+1)*faultSeedStride
	srv := api.NewServer(cfg.Platform, cfg.Preset, faults)
	if cfg.Churn.Rate > 0 {
		churn := cfg.Churn
		churn.Seed = churn.Seed + cfg.Seed + int64(unit+1)*churnSeedStride
		srv.EnableChurn(churn)
	}
	policy := api.DefaultRetryPolicy()
	if cfg.Policy != nil {
		policy = *cfg.Policy
	}
	policy.StallWait = cfg.StallWait

	var (
		resume   *core.Checkpoint
		haveRes  bool
		prevCost = -1
		prevSamp = -1
	)
	if prior != nil {
		// Resuming an interrupted unit: continue from its checkpoint
		// (nil checkpoint — a pre-checkpoint panic — restarts fresh on
		// the remaining quota).
		resume = prior.Checkpoint
		out.Resumes = prior.Resumes
		out.WatchdogTrips = prior.WatchdogTrips
		out.Cost, out.Samples = prior.Cost, prior.Samples
		out.Stats, out.Heal = prior.Stats, prior.Heal
		out.Estimate, out.Degraded, out.DegradedBy = prior.Estimate, prior.Degraded, prior.DegradedBy
		out.Checkpoint = prior.Checkpoint
		haveRes = true
	}
	if out.Estimate == 0 && !haveRes {
		out.Estimate = math.NaN()
	}

	for attempt := 0; ; attempt++ {
		client := api.NewClient(srv, 0)
		client.Policy = policy
		if err := client.UseLedger(led, unit); err != nil {
			// Quota spent (or config bug): the unit ends in whatever
			// state the last segment left it.
			return out
		}
		client.WithContext(ctx)
		if cfg.Deadline > 0 {
			already := virtualOf(cfg.Preset, out.Stats)
			left := cfg.Deadline - already
			if left <= 0 {
				out.Degraded = true
				out.DegradedBy = api.ErrDeadlineExceeded
				client.ReleaseLedger()
				return out
			}
			client.Deadline = left
		}
		sess, err := core.NewSession(client, cfg.Query, cfg.Interval)
		if err != nil {
			client.ReleaseLedger()
			// Whatever the failed session setup charged is real spend:
			// fold it in so the unit's books match the ledger's.
			out.Cost += client.Cost()
			out.Stats = out.Stats.Add(client.Stats())
			out.Degraded = true
			out.DegradedBy = err
			return out
		}
		res, err := cfg.Walk(ctx, sess, out.Seed, resume)
		client.ReleaseLedger()
		if err != nil {
			// Pre-walk failure (cancelled, past deadline, or exhausted
			// before any walk state existed): degrade with the prior
			// partial state plus this segment's charges — the ledger
			// committed them, so the unit must report them.
			out.Cost += client.Cost()
			out.Stats = out.Stats.Add(client.Stats())
			out.Degraded = true
			out.DegradedBy = err
			return out
		}
		out.Estimate = res.Estimate
		out.Cost, out.Samples = res.Cost, res.Samples
		out.Stats, out.Heal = res.Stats, res.Heal
		out.Degraded, out.DegradedBy = res.Degraded, res.DegradedBy
		out.Checkpoint = res.Checkpoint
		if errors.Is(res.DegradedBy, api.ErrStalled) {
			out.WatchdogTrips++
		}
		if !res.Degraded || terminalDegrade(res.DegradedBy) {
			return out
		}
		if res.Cost >= quota || attempt >= cfg.MaxResumes {
			return out
		}
		if res.Cost <= prevCost && res.Samples <= prevSamp {
			return out // resuming stopped making progress
		}
		prevCost, prevSamp = res.Cost, res.Samples
		resume = res.Checkpoint
		out.Resumes++
	}
}

// merge folds the unit results, in unit order, into the fleet result.
// The estimate is the sample-weighted mean of the unit Hansen–Hurwitz
// estimates — pooling the fleet's walks as if one walker had taken
// them all — accumulated with compensated summation so the fold is
// exact in practice and, crucially, independent of which goroutine
// finished first.
func merge(cfg Config, units int, results []UnitResult, led *api.Ledger) Result {
	out := Result{
		UnitsPlanned: cfg.Units,
		UnitsRun:     units,
		Shed:         cfg.Units - units,
		Units:        results,
	}
	var weighted, weights []float64
	for i := range results {
		r := &results[i]
		out.Cost += r.Cost
		out.Samples += r.Samples
		out.Stats = out.Stats.Add(r.Stats)
		out.Heal = out.Heal.Add(r.Heal)
		out.WatchdogTrips += r.WatchdogTrips
		if v := virtualOf(cfg.Preset, r.Stats); v > out.VirtualDuration {
			out.VirtualDuration = v
		}
		if r.Degraded && !out.Degraded {
			out.Degraded = true
			out.DegradedBy = r.DegradedBy
		}
		if r.Samples > 0 && !math.IsNaN(r.Estimate) {
			weighted = append(weighted, r.Estimate*float64(r.Samples))
			weights = append(weights, float64(r.Samples))
		}
	}
	out.Estimate = math.NaN()
	if den := stats.KahanSum(weights); den > 0 {
		out.Estimate = stats.KahanSum(weighted) / den
	}
	out.Ledger = led.Snapshot()
	out.Checkpoint = &Checkpoint{units: append([]UnitResult(nil), results...)}
	return out
}
