package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanBasic(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.xs); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestSum(t *testing.T) {
	if got := Sum([]float64{1, 2, 3}); got != 6 {
		t.Errorf("Sum = %v, want 6", got)
	}
	if got := Sum(nil); got != 0 {
		t.Errorf("Sum(nil) = %v, want 0", got)
	}
}

func TestVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Known: population variance 4, sample variance 32/7.
	if got := PopVariance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("PopVariance = %v, want 4", got)
	}
	if got := Variance(xs); !almostEqual(got, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, 32.0/7.0)
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Errorf("Variance single = %v, want 0", got)
	}
}

func TestStdDevAndStdErr(t *testing.T) {
	xs := []float64{1, 1, 1, 1}
	if got := StdDev(xs); got != 0 {
		t.Errorf("StdDev constant = %v, want 0", got)
	}
	xs = []float64{0, 2}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt2, 1e-12) {
		t.Errorf("StdDev = %v, want sqrt2", got)
	}
	if got := StdErr(xs); !almostEqual(got, 1, 1e-12) {
		t.Errorf("StdErr = %v, want 1", got)
	}
	if got := StdErr(nil); got != 0 {
		t.Errorf("StdErr(nil) = %v, want 0", got)
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(95, 100); !almostEqual(got, 0.05, 1e-12) {
		t.Errorf("RelativeError = %v, want 0.05", got)
	}
	if got := RelativeError(0, 0); got != 0 {
		t.Errorf("RelativeError(0,0) = %v, want 0", got)
	}
	if got := RelativeError(1, 0); !math.IsInf(got, 1) {
		t.Errorf("RelativeError(1,0) = %v, want +Inf", got)
	}
	if got := RelativeError(-105, -100); !almostEqual(got, 0.05, 1e-12) {
		t.Errorf("RelativeError negatives = %v, want 0.05", got)
	}
}

func TestMSEDecomposition(t *testing.T) {
	est := []float64{9, 11, 10, 14, 6}
	truth := 10.0
	mse := MSE(est, truth)
	b := Bias(est, truth)
	v := PopVariance(est)
	if !almostEqual(mse, b*b+v, 1e-9) {
		t.Errorf("MSE %v != bias^2+var %v", mse, b*b+v)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4}
	q, err := Quantile(xs, 0.5)
	if err != nil || !almostEqual(q, 2.5, 1e-12) {
		t.Errorf("median = %v err=%v, want 2.5", q, err)
	}
	if q, _ := Quantile(xs, 0); q != 1 {
		t.Errorf("q0 = %v, want 1", q)
	}
	if q, _ := Quantile(xs, 1); q != 4 {
		t.Errorf("q1 = %v, want 4", q)
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("expected error for empty sample")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("expected error for q out of range")
	}
	// Input must not be mutated.
	if xs[0] != 3 {
		t.Error("Quantile mutated input")
	}
}

func TestMedianSingle(t *testing.T) {
	m, err := Median([]float64{7})
	if err != nil || m != 7 {
		t.Errorf("Median single = %v err=%v", m, err)
	}
}

func TestAutocorrelation(t *testing.T) {
	// Perfectly alternating series: lag-1 autocorr close to -1.
	chain := make([]float64, 200)
	for i := range chain {
		chain[i] = float64(i % 2)
	}
	if ac := Autocorrelation(chain, 1); ac > -0.9 {
		t.Errorf("alternating lag-1 autocorr = %v, want near -1", ac)
	}
	if ac := Autocorrelation(chain, 0); !almostEqual(ac, 1, 1e-12) {
		t.Errorf("lag-0 autocorr = %v, want 1", ac)
	}
	if ac := Autocorrelation([]float64{1, 1, 1}, 1); ac != 0 {
		t.Errorf("constant chain autocorr = %v, want 0", ac)
	}
	if ac := Autocorrelation(chain, len(chain)); ac != 0 {
		t.Errorf("lag >= n should be 0, got %v", ac)
	}
}

func TestGewekeZStationary(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	chain := make([]float64, 5000)
	for i := range chain {
		chain[i] = rng.NormFloat64()
	}
	z := GewekeZ(chain, 0.1, 0.5)
	if math.Abs(z) > 3 {
		t.Errorf("stationary chain z = %v, want |z| < 3", z)
	}
}

func TestGewekeZDrifting(t *testing.T) {
	// Strong drift: first part near 0, last part near 10.
	chain := make([]float64, 1000)
	rng := rand.New(rand.NewSource(2))
	for i := range chain {
		chain[i] = float64(i)/100.0 + 0.01*rng.NormFloat64()
	}
	z := GewekeZ(chain, 0.1, 0.5)
	if math.Abs(z) < 5 {
		t.Errorf("drifting chain z = %v, want |z| >> 0", z)
	}
}

func TestGewekeBurnIn(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	chain := make([]float64, 2000)
	for i := range chain {
		if i < 500 {
			chain[i] = 50 - float64(i)/10 + rng.NormFloat64()
		} else {
			chain[i] = rng.NormFloat64()
		}
	}
	cut := GewekeBurnIn(chain, 0.5, 50)
	if cut < 100 || cut > 1200 {
		t.Errorf("burn-in cut = %v, want roughly in [100,1200]", cut)
	}
	// A stationary chain should need essentially no burn-in.
	for i := range chain {
		chain[i] = rng.NormFloat64()
	}
	if cut := GewekeBurnIn(chain, 1.0, 50); cut > 200 {
		t.Errorf("stationary burn-in = %v, want small", cut)
	}
}

func TestGewekeBurnInNeverConverges(t *testing.T) {
	chain := make([]float64, 200)
	for i := range chain {
		chain[i] = float64(i) // pure trend
	}
	if cut := GewekeBurnIn(chain, 0.01, 10); cut != len(chain) {
		t.Errorf("pure trend should never pass, got cut=%v", cut)
	}
}

func TestNormalCI(t *testing.T) {
	xs := []float64{10, 12, 8, 11, 9}
	lo, hi := NormalCI(xs, 0.05)
	m := Mean(xs)
	if lo >= m || hi <= m {
		t.Errorf("CI [%v,%v] does not bracket mean %v", lo, hi, m)
	}
	lo99, hi99 := NormalCI(xs, 0.01)
	if hi99-lo99 <= hi-lo {
		t.Error("99% CI should be wider than 95% CI")
	}
}

func TestRunningMeanMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xs := make([]float64, 333)
	var r RunningMean
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 7
		r.Add(xs[i])
	}
	if r.N() != len(xs) {
		t.Fatalf("N = %d, want %d", r.N(), len(xs))
	}
	if !almostEqual(r.Mean(), Mean(xs), 1e-9) {
		t.Errorf("running mean %v != batch %v", r.Mean(), Mean(xs))
	}
	if !almostEqual(r.Variance(), Variance(xs), 1e-9) {
		t.Errorf("running var %v != batch %v", r.Variance(), Variance(xs))
	}
	if !almostEqual(r.StdDev(), StdDev(xs), 1e-9) {
		t.Errorf("running sd %v != batch %v", r.StdDev(), StdDev(xs))
	}
}

func TestRunningMeanMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var a, b, all RunningMean
	for i := 0; i < 100; i++ {
		x := rng.Float64() * 10
		a.Add(x)
		all.Add(x)
	}
	for i := 0; i < 57; i++ {
		x := rng.Float64()*2 - 5
		b.Add(x)
		all.Add(x)
	}
	a.Merge(b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	if !almostEqual(a.Mean(), all.Mean(), 1e-9) {
		t.Errorf("merged mean %v != %v", a.Mean(), all.Mean())
	}
	if !almostEqual(a.Variance(), all.Variance(), 1e-9) {
		t.Errorf("merged var %v != %v", a.Variance(), all.Variance())
	}
	// Merging into empty and merging empty.
	var empty RunningMean
	empty.Merge(a)
	if empty.N() != a.N() || !almostEqual(empty.Mean(), a.Mean(), 1e-12) {
		t.Error("merge into empty lost data")
	}
	before := a.Mean()
	a.Merge(RunningMean{})
	if a.Mean() != before {
		t.Error("merging empty changed state")
	}
}

// Property: mean is translation-equivariant and scale-equivariant.
func TestMeanAffineProperty(t *testing.T) {
	f := func(raw []int8, shiftRaw int8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		shift := float64(shiftRaw)
		shifted := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = 2*x + shift
		}
		return almostEqual(Mean(shifted), 2*Mean(xs)+shift, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: variance is translation-invariant and nonnegative.
func TestVarianceProperty(t *testing.T) {
	f := func(raw []int8, shiftRaw int8) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		v := Variance(xs)
		if v < 0 {
			return false
		}
		shift := float64(shiftRaw)
		shifted := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + shift
		}
		return almostEqual(Variance(shifted), v, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		q25, _ := Quantile(xs, 0.25)
		q50, _ := Quantile(xs, 0.5)
		q75, _ := Quantile(xs, 0.75)
		mn, _ := Quantile(xs, 0)
		mx, _ := Quantile(xs, 1)
		return mn <= q25 && q25 <= q50 && q50 <= q75 && q75 <= mx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: RunningMean equals batch mean for arbitrary input.
func TestRunningMeanProperty(t *testing.T) {
	f := func(raw []int16) bool {
		var r RunningMean
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			r.Add(xs[i])
		}
		if len(xs) == 0 {
			return r.Mean() == 0
		}
		return almostEqual(r.Mean(), Mean(xs), 1e-6) &&
			almostEqual(r.Variance(), Variance(xs), 1e-4)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
