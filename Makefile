# Tier-1 gate: what CI runs (.github/workflows/ci.yml) and what every
# change must keep green.
.PHONY: ci build vet test race bench chaos

ci: build vet race

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

# Full evaluation regeneration (bench scale; slow).
bench:
	go test -bench=. -benchmem

# Quick chaos sweep at test scale.
chaos:
	go run ./cmd/mba-bench -scale test -trials 1 -budget 8000 -only chaos
