// Package lint implements mba-lint: a suite of domain-invariant static
// analyzers that mechanically enforce the properties the paper's
// accuracy/cost claims rest on — seed-determinism of every random
// draw, single-path budget accounting through api.Client, virtual
// (not wall-clock) time in estimators, checked budget errors,
// deterministic map iteration wherever order can leak into artifacts,
// and compensated float accumulation in estimator hot paths.
//
// Since PR 5 the suite has two layers. The original analyzers are
// AST-local: they inspect one package at a time. On top of them sits a
// whole-program layer (callgraph.go, summary.go): a call graph over
// every analyzed package and per-function summaries computed bottom-up
// with fixpoint iteration over call-graph SCCs. Four analyzers consume
// the summaries — ctxflow (context threading to every charged call),
// errsentinel (sentinel errors wrapped with %w and tested with
// errors.Is only), lockorder (a global mutex-acquisition order, i.e.
// static deadlock freedom), and budgetflow (interprocedural budget
// error propagation and ledger admission).
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer / Pass / Diagnostic) but is built purely on the standard
// library's go/ast and go/types, because this repository vendors no
// third-party dependencies. cmd/mba-lint drives the suite standalone
// and as a `go vet -vettool` backend; internal/lint/linttest runs
// analyzers over `// want "regexp"` fixtures in the analysistest
// style.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// Analyzer is one named invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run inspects a package and reports violations through the pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Prog is the whole-program view (call graph + summaries) shared
	// by every package of the run. Interprocedural analyzers consult
	// it; AST-local analyzers ignore it. Nil only when an analyzer is
	// run outside RunAll/RunAnalyzer (never through the public API).
	Prog *Program

	diags []Diagnostic
}

// Diagnostic is one reported violation, with its position resolved.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Reportf records a violation at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// PkgBase returns the last element of the package import path, the
// unit analyzers scope their package allow/deny lists on.
func (p *Pass) PkgBase(pkgPath string) string {
	if i := strings.LastIndex(pkgPath, "/"); i >= 0 {
		return pkgPath[i+1:]
	}
	return pkgPath
}

// ImportedPkgPath resolves id to the import path of the package it
// names, or "" if id is not a package qualifier.
func (p *Pass) ImportedPkgPath(id *ast.Ident) string {
	return importedPkgPath(p.TypesInfo, id)
}

// namedRecv unwraps pointers and returns the named receiver type of a
// method selection, or nil.
func namedRecv(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// MethodOn reports whether call invokes a method with the given name
// on a named type declared as pkgName.typeName (pointer or value
// receiver). Matching is by package *name*, not path, so analysistest
// fixtures can stand in for the real internal/api package.
func (p *Pass) MethodOn(call *ast.CallExpr, pkgName, typeName string, methods map[string]bool) (string, bool) {
	return methodOnInfo(p.TypesInfo, call, pkgName, typeName, methods)
}

// ignoreDirective matches "lint:ignore <name> <reason>" (and
// "lint:ignore all <reason>") inside a comment. The reason is
// mandatory; a reasonless directive suppresses nothing and is itself
// reported by the lintdirective analyzer.
var ignoreDirective = regexp.MustCompile(`^//\s*lint:ignore\s+(\S+)(?:\s+(.*\S))?\s*$`)

// ignoreRule suppresses one analyzer (or "all") over the line range of
// exactly one statement or declaration.
type ignoreRule struct {
	name       string
	start, end int
}

// badDirective is a rejected lint:ignore directive: missing its reason
// or not attached to a statement.
type badDirective struct {
	pos  token.Pos
	text string
	why  string
}

// anchorSpan is the source-line range of one suppressible node.
type anchorSpan struct{ start, end int }

// ignoreRulesFor parses the lint:ignore directives of one file. A
// directive applies to exactly the immediately following statement or
// declaration (or, as a trailing comment, to the statement on its own
// line) — never to the rest of the file. Directives without a reason
// or without a following statement are returned as badDirectives and
// suppress nothing.
func ignoreRulesFor(fset *token.FileSet, f *ast.File) ([]ignoreRule, []badDirective) {
	line := func(p token.Pos) int { return fset.Position(p).Line }

	// Collect the line spans of every suppressible anchor: statements
	// (except bare blocks) and declarations. A FuncDecl anchors only
	// its signature lines — a directive above a function must not
	// blanket the whole body.
	var anchors []anchorSpan
	ast.Inspect(f, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			end := d.End()
			if d.Body != nil {
				end = d.Body.Lbrace
			}
			anchors = append(anchors, anchorSpan{line(d.Pos()), line(end)})
		case *ast.GenDecl:
			anchors = append(anchors, anchorSpan{line(d.Pos()), line(d.End())})
		case *ast.BlockStmt:
			// A bare block is not an anchor; its statements are.
		case ast.Stmt:
			anchors = append(anchors, anchorSpan{line(n.Pos()), line(n.End())})
		}
		return true
	})

	var rules []ignoreRule
	var bad []badDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := ignoreDirective.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			if m[2] == "" {
				bad = append(bad, badDirective{pos: c.Pos(), text: c.Text,
					why: "missing reason: write //lint:ignore <analyzer> <reason>"})
				continue
			}
			l := line(c.Pos())
			target, ok := anchorAt(anchors, l)
			if !ok {
				target, ok = anchorAt(anchors, l+1)
			}
			if !ok {
				bad = append(bad, badDirective{pos: c.Pos(), text: c.Text,
					why: "does not precede a statement; it suppresses exactly the next statement, never the rest of the file"})
				continue
			}
			rules = append(rules, ignoreRule{name: m[1], start: target.start, end: target.end})
		}
	}
	return rules, bad
}

// anchorAt picks the widest anchor starting on the given line, so a
// directive above a multi-line statement covers that whole statement.
func anchorAt(anchors []anchorSpan, start int) (anchorSpan, bool) {
	best, found := anchorSpan{}, false
	for _, a := range anchors {
		if a.start != start {
			continue
		}
		if !found || a.end > best.end {
			best, found = a, true
		}
	}
	return best, found
}

// suppressed reports whether a rule set silences d.
func suppressed(rules []ignoreRule, d Diagnostic) bool {
	for _, r := range rules {
		if (r.name == d.Analyzer || r.name == "all") && r.start <= d.Pos.Line && d.Pos.Line <= r.end {
			return true
		}
	}
	return false
}

// RunAnalyzer applies a to pkg under the whole-program view prog and
// returns the surviving diagnostics (ignore directives already
// filtered), sorted by position.
func RunAnalyzer(a *Analyzer, pkg *Package, prog *Program) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Prog:      prog,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	rulesByFile := make(map[string][]ignoreRule)
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		rules, _ := ignoreRulesFor(pkg.Fset, f)
		rulesByFile[name] = rules
	}
	var kept []Diagnostic
	for _, d := range pass.diags {
		if suppressed(rulesByFile[d.Pos.Filename], d) {
			continue
		}
		kept = append(kept, d)
	}
	sortDiagnostics(kept)
	return kept, nil
}

// RunAll builds the whole-program view over pkgs and applies every
// analyzer in as to every package.
func RunAll(as []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	return RunAllProgram(as, pkgs, NewProgram(pkgs))
}

// RunAllProgram is RunAll with a caller-supplied Program (so the
// driver can reuse a fact cache).
func RunAllProgram(as []*Analyzer, pkgs []*Package, prog *Program) ([]Diagnostic, error) {
	ds, _, err := RunAllProgramTimed(as, pkgs, prog, nil)
	return ds, err
}

// AnalyzerTiming is one analyzer's cumulative wall clock across every
// package of a run.
type AnalyzerTiming struct {
	Name    string
	Elapsed time.Duration
}

// RunAllProgramTimed runs every (package × analyzer) pass over a
// bounded worker pool. Passes are independent (analyzers only read the
// converged Program), so the order they execute in cannot change the
// result; diagnostics are merged in task order and sorted, keeping
// output byte-identical to the sequential loop. clock supplies
// monotonic readings for the per-analyzer timings (nil: no timings
// collected); the caller injects it so this package stays off the wall
// clock.
func RunAllProgramTimed(as []*Analyzer, pkgs []*Package, prog *Program, clock func() time.Duration) ([]Diagnostic, []AnalyzerTiming, error) {
	type task struct {
		pkg  *Package
		a    *Analyzer
		idx  int
		aIdx int
	}
	var tasks []task
	for _, pkg := range pkgs {
		for j, a := range as {
			tasks = append(tasks, task{pkg: pkg, a: a, idx: len(tasks), aIdx: j})
		}
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers < 1 {
		workers = 1
	}

	var (
		mu      sync.Mutex
		next    int
		results = make([][]Diagnostic, len(tasks))
		errs    = make([]error, len(tasks))
		elapsed = make([]time.Duration, len(as))
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if next >= len(tasks) {
					mu.Unlock()
					return
				}
				t := tasks[next]
				next++
				mu.Unlock()
				var t0 time.Duration
				if clock != nil {
					t0 = clock()
				}
				ds, err := RunAnalyzer(t.a, t.pkg, prog)
				mu.Lock()
				if clock != nil {
					elapsed[t.aIdx] += clock() - t0
				}
				results[t.idx] = ds
				errs[t.idx] = err
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	var all []Diagnostic
	for _, ds := range results {
		all = append(all, ds...)
	}
	sortDiagnostics(all)
	var timings []AnalyzerTiming
	if clock != nil {
		for j, a := range as {
			timings = append(timings, AnalyzerTiming{Name: a.Name, Elapsed: elapsed[j]})
		}
	}
	return all, timings, nil
}

// sortDiagnostics orders diagnostics for byte-identical output across
// runs: path, line, column, analyzer, then message.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].Pos.Filename != ds[j].Pos.Filename {
			return ds[i].Pos.Filename < ds[j].Pos.Filename
		}
		if ds[i].Pos.Line != ds[j].Pos.Line {
			return ds[i].Pos.Line < ds[j].Pos.Line
		}
		if ds[i].Pos.Column != ds[j].Pos.Column {
			return ds[i].Pos.Column < ds[j].Pos.Column
		}
		if ds[i].Analyzer != ds[j].Analyzer {
			return ds[i].Analyzer < ds[j].Analyzer
		}
		return ds[i].Message < ds[j].Message
	})
}

// LintDirective rejects malformed //lint:ignore directives: a
// directive must carry a reason and must immediately precede (or
// trail) the single statement it suppresses. Rejected directives
// suppress nothing, so a typo cannot silently disable an analyzer.
var LintDirective = &Analyzer{
	Name: "lintdirective",
	Doc: "require //lint:ignore directives to carry a reason and to attach to " +
		"exactly one statement",
	Run: runLintDirective,
}

func runLintDirective(pass *Pass) error {
	for _, f := range pass.Files {
		_, bad := ignoreRulesFor(pass.Fset, f)
		for _, b := range bad {
			pass.Reportf(b.pos, "rejected lint:ignore directive (%s): %s", b.why, b.text)
		}
	}
	return nil
}

// All returns the full mba-lint suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		BudgetFlow,
		BudgetPath,
		BudgetSafe,
		ChanLife,
		CheckedCost,
		CtxFlow,
		DetRange,
		DetTaint,
		ErrSentinel,
		FloatSum,
		GoSpawn,
		LintDirective,
		LockOrder,
		NoRawRand,
		NoWallClock,
		SharedGuard,
		UnlockPath,
	}
}

// Interprocedural returns just the summary-driven analyzers added by
// the whole-program layer (PR 5) and the CFG/dataflow layer on top of
// it.
func Interprocedural() []*Analyzer {
	return []*Analyzer{BudgetFlow, BudgetPath, ChanLife, CtxFlow, DetTaint, ErrSentinel, LockOrder, SharedGuard, UnlockPath}
}

// PointsToSuite returns the analyzers built on the points-to + escape
// layer (PR 10).
func PointsToSuite() []*Analyzer {
	return []*Analyzer{ChanLife, SharedGuard}
}

// Dataflow returns the CFG-based flow-sensitive analyzers.
func Dataflow() []*Analyzer {
	return []*Analyzer{BudgetPath, DetTaint, UnlockPath}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
