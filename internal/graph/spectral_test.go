package graph

import (
	"math"
	"math/rand"
	"testing"
)

func cycle(n int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddEdge(int64(i), int64((i+1)%n))
	}
	return g
}

func TestLazySecondEigenvalueComplete(t *testing.T) {
	// K_n: transition eigenvalues are 1 and -1/(n-1); lazy: 1 and
	// (1 - 1/(n-1))/2. For n=6: (1 - 0.2)/2 = 0.4.
	g := complete(6)
	rng := rand.New(rand.NewSource(1))
	l2, err := g.LazySecondEigenvalue(rng, 200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l2-0.4) > 0.02 {
		t.Errorf("K6 lazy lambda2 = %v, want ~0.4", l2)
	}
}

func TestLazySecondEigenvalueCycle(t *testing.T) {
	// C_n: walk eigenvalues cos(2πk/n); lazy second = (1+cos(2π/n))/2.
	n := 20
	g := cycle(n)
	want := (1 + math.Cos(2*math.Pi/float64(n))) / 2
	rng := rand.New(rand.NewSource(2))
	l2, err := g.LazySecondEigenvalue(rng, 600)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l2-want) > 0.01 {
		t.Errorf("C20 lazy lambda2 = %v, want %v", l2, want)
	}
}

func TestSpectralGapOrdersTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// An expander-ish complete graph mixes far faster than a barbell.
	fast, err := complete(12).SpectralGap(rng, 300)
	if err != nil {
		t.Fatal(err)
	}
	slowG := New()
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			slowG.AddEdge(int64(i), int64(j))
			slowG.AddEdge(int64(10+i), int64(10+j))
		}
	}
	slowG.AddEdge(5, 10)
	slow, err := slowG.SpectralGap(rng, 300)
	if err != nil {
		t.Fatal(err)
	}
	if slow >= fast {
		t.Errorf("barbell gap %v should be below complete-graph gap %v", slow, fast)
	}
}

func TestSpectralErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, err := New().LazySecondEigenvalue(rng, 10); err == nil {
		t.Error("empty graph should error")
	}
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(3, 4) // disconnected
	if _, err := g.LazySecondEigenvalue(rng, 10); err == nil {
		t.Error("disconnected graph should error")
	}
	if _, err := g.SweepConductance(rng, 10); err == nil {
		t.Error("disconnected sweep should error")
	}
}

func TestMixingTimeUpper(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tK, err := complete(10).MixingTimeUpper(rng, 200, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	tC, err := cycle(40).MixingTimeUpper(rng, 600, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if tK <= 0 || tC <= 0 {
		t.Fatal("mixing bounds must be positive")
	}
	if tC < 5*tK {
		t.Errorf("cycle should mix much slower: K10=%v C40=%v", tK, tC)
	}
	// Bad eps falls back to 0.25 rather than panicking.
	if _, err := complete(10).MixingTimeUpper(rng, 50, -3); err != nil {
		t.Errorf("bad eps: %v", err)
	}
}

func TestSweepConductanceUpperBoundsExact(t *testing.T) {
	// Two triangles + bridge: exact conductance 1/7; the sweep must
	// find a cut at least that good... no — the sweep upper-bounds the
	// minimum, and on this graph the spectral ordering finds the bridge
	// cut exactly.
	g := New()
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(3, 5)
	g.AddEdge(2, 3)
	rng := rand.New(rand.NewSource(6))
	sweep, err := g.SweepConductance(rng, 300)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := g.ExactConductance(10)
	if err != nil {
		t.Fatal(err)
	}
	if sweep < exact-1e-9 {
		t.Errorf("sweep %v below exact minimum %v (impossible)", sweep, exact)
	}
	if math.Abs(sweep-exact) > 1e-9 {
		t.Errorf("sweep %v should find the bridge cut %v on this graph", sweep, exact)
	}
	// Cheeger: phi^2/2 <= gap <= 2 phi.
	gap, err := g.SpectralGap(rng, 400)
	if err != nil {
		t.Fatal(err)
	}
	if gap < exact*exact/2-0.02 || gap > 2*exact+0.02 {
		t.Errorf("Cheeger violated: gap=%v phi=%v", gap, exact)
	}
}

func TestSweepConductanceOnCommunityGraph(t *testing.T) {
	// Random graph with two planted communities: sweep should find a
	// cut close to the planted one.
	rng := rand.New(rand.NewSource(7))
	g := New()
	for c := 0; c < 2; c++ {
		base := int64(c * 50)
		for i := 0; i < 150; i++ {
			u := base + rng.Int63n(50)
			v := base + rng.Int63n(50)
			if u != v {
				g.AddEdge(u, v)
			}
		}
	}
	for i := 0; i < 5; i++ {
		g.AddEdge(rng.Int63n(50), 50+rng.Int63n(50))
	}
	if len(g.Components()) != 1 {
		t.Skip("random graph disconnected")
	}
	sweep, err := g.SweepConductance(rng, 300)
	if err != nil {
		t.Fatal(err)
	}
	// The planted cut has ~5 crossing edges over volume ~300.
	planted := make(map[int64]bool)
	for _, u := range g.Nodes() {
		if u < 50 {
			planted[u] = true
		}
	}
	phiPlanted := g.CutConductance(planted)
	if sweep > 3*phiPlanted {
		t.Errorf("sweep %v far above planted cut %v", sweep, phiPlanted)
	}
}
