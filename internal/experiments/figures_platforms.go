package experiments

import (
	"mba/internal/api"
	"mba/internal/query"
)

// Figure12 reproduces Figure 12: AVG(display-name length) on Google+.
// The Google+ preset returns at most 20 results per call (vs 200 for
// Twitter's timeline API), which is why the paper observes much higher
// absolute query costs than on Twitter.
func Figure12(opts Options) (Table, error) {
	opts = opts.withDefaults()
	// Paging inflates costs ~4-10x; give the runs headroom.
	opts.Budget *= 4
	return headToHead(opts, "figure12",
		"Google+: AVG(display-name length) — MA-SRW vs MA-TARW",
		api.GPlus(),
		func(kw string) query.Query { return query.AvgQuery(kw, query.DisplayNameLength) })
}

// Figure13 reproduces Figure 13: COUNT of male users who posted
// privacy, on Google+ (gender is generally missing from Twitter
// profiles, which is why the paper runs this condition on Google+).
func Figure13(opts Options) (Table, error) {
	opts = opts.withDefaults()
	opts.Budget *= 4
	q := query.CountQuery("privacy")
	q.Where = []query.Predicate{query.MaleOnly}
	return countComparison(opts, "figure13",
		"Google+: COUNT(male users), privacy — MA-SRW vs MA-TARW vs M&R",
		api.GPlus(), q)
}

// Figure14 reproduces Figure 14: the average number of likes received
// by posts mentioning the keyword, on Tumblr.
func Figure14(opts Options) (Table, error) {
	opts = opts.withDefaults()
	opts.Budget *= 2
	return headToHead(opts, "figure14",
		"Tumblr: AVG(likes per keyword post) — MA-SRW vs MA-TARW",
		api.Tumblr(),
		func(kw string) query.Query { return query.AvgQuery(kw, query.KeywordPostMeanLikes) })
}

// All runs every experiment in paper order and returns the tables.
// Failures abort with the partial results so a long harness run never
// silently drops completed work.
func All(opts Options) ([]Table, error) {
	runners := []struct {
		name string
		fn   func(Options) (Table, error)
	}{
		{"table2", Table2},
		{"table3", Table3},
		{"figure2", Figure2},
		{"figure3", Figure3},
		{"figure4", Figure4},
		{"figure5", Figure5},
		{"figure7", Figure7},
		{"figure8", Figure8},
		{"figure9", Figure9},
		{"figure10", Figure10},
		{"figure11", Figure11},
		{"figure12", Figure12},
		{"figure13", Figure13},
		{"figure14", Figure14},
	}
	var out []Table
	for _, r := range runners {
		opts.logf("=== %s", r.name)
		t, err := r.fn(opts)
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
	return out, nil
}
