package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"mba/internal/api"
	"mba/internal/query"
	"mba/internal/stats"
)

// TARWOptions configures RunTARW (Algorithm 3, MA-TARW).
type TARWOptions struct {
	// Ctx, when non-nil, is bound to the session's client before the
	// walk starts: cancellation propagates to every charged call, and a
	// cancelled walk returns a Degraded partial result (with checkpoint)
	// instead of hanging or erroring.
	Ctx context.Context
	// Seed drives the walker's randomness.
	Seed int64
	// PEstimates is the number of independent ESTIMATE-p runs averaged
	// per node (default 3). The paper uses a single recursive estimate;
	// averaging a few reduces both the chance of an all-zero
	// probability estimate and the reciprocal bias E[1/p̂] > 1/p̄ that
	// a single noisy estimate induces. Extra runs mostly hit
	// already-cached neighborhoods, so the API cost is minimal.
	PEstimates int
	// EmitEvery is the trajectory granularity in completed walks
	// (default 1 — every completed walk).
	EmitEvery int
	// MaxWalks optionally bounds the number of bottom-top-bottom walks
	// (0 = until the client budget runs out).
	MaxWalks int
	// DisableRootCache turns off the probability cache — the
	// generalization of the paper's §5.2 "single cache" that memoizes
	// per-node running-mean ESTIMATE-p values across walks. Disabled,
	// every probability is a single fresh recursive draw (the literal
	// Algorithm 2). On by default; the ablation benchmark flips this.
	DisableRootCache bool
	// SelectInterval enables the pilot-walk time-interval selection of
	// §4.2.3 before the main walks (Algorithm 3, line 1).
	SelectInterval bool
	// PilotSteps is the per-candidate pilot budget when SelectInterval
	// is on (default 50 samples, the paper's choice).
	PilotSteps int
	// MaxLatticeDepth bounds the level count of the interval
	// SelectInterval may pick (default 40); deeper lattices make the
	// recursive probability estimates numerically unstable.
	MaxLatticeDepth int
	// AdjacentOnly restricts the lattice to adjacent-level edges (the
	// topology the paper's §5 analysis assumes; its real subgraphs have
	// under 1–3% cross-level edges, Table 2). On a pure adjacent-level
	// lattice the bottom-top walk conserves probability mass per level,
	// which keeps the visit probabilities — and hence the
	// Hansen–Hurwitz weights — well conditioned. On by default; set
	// AllowCrossLevel to walk cross-level edges too.
	AllowCrossLevel bool
	// Resume continues a run from a prior MA-TARW checkpoint: the
	// per-walk estimates, ESTIMATE-p probability cache, and selected
	// interval are restored, and the checkpoint's cached API responses
	// are imported into the session's client so nothing already paid
	// for is repaid. Interval selection is skipped on resume.
	Resume *Checkpoint
	// Heal governs behaviour when platform churn disrupts walks. The
	// zero value keeps walking: a vanished node is pruned from the
	// lattice structurally (the walk treats it as absent), and a walk
	// instance that yields no usable mass is skipped and counted. With
	// HealAbort the run degrades as soon as churn is first observed.
	// MaxHeals bounds the skipped-walk count per run.
	Heal HealPolicy
	// Autosave, when enabled, persists a cumulative checkpoint every
	// EveryCalls charged API calls so a process crash forfeits at most
	// one autosave window of budget. See AutosavePolicy.
	Autosave AutosavePolicy
	// WeightClip winsorizes the Hansen–Hurwitz weights 1/p̂ at
	// WeightClip × s (s = seed count). Visit probabilities in a real
	// (irregular) level DAG are badly skewed, and an occasional
	// astronomically-weighted node would otherwise dominate the
	// estimate for thousands of walks; clipping trades a small,
	// bounded downward bias for an enormous variance reduction
	// (standard winsorized importance sampling). Default 10; negative
	// disables clipping (the paper's literal estimator).
	WeightClip float64
}

func (o TARWOptions) withDefaults() TARWOptions {
	if o.PEstimates == 0 {
		o.PEstimates = 3
	}
	if o.EmitEvery == 0 {
		o.EmitEvery = 1
	}
	if o.PilotSteps == 0 {
		o.PilotSteps = 50
	}
	if o.MaxWalks == 0 {
		// Safety cap mirroring SRWOptions.MaxSteps: cached walks are
		// free, so a budget-only loop could spin forever.
		o.MaxWalks = 4000
	}
	if o.MaxLatticeDepth == 0 {
		o.MaxLatticeDepth = 40
	}
	if o.WeightClip == 0 {
		o.WeightClip = 10
	}
	return o
}

// pStat accumulates independent ESTIMATE-p draws for one node.
type pStat struct {
	sum float64
	n   int
}

// tarw carries one run's state.
type tarw struct {
	s     *Session
	rng   *rand.Rand
	seeds SeedSet
	opts  TARWOptions
	// pUp/pDown memoize per-node probability estimates as running
	// means of independent recursive draws (capped at PEstimates).
	// This generalizes the paper's §5.2 "single cache" for root nodes
	// to every node: reused means are still unbiased (they average
	// unbiased draws), recursive draws that hit a cached node stop
	// early (so estimate chains shorten as the run progresses), and
	// the averaging shrinks the reciprocal noise of 1/p̂ that a single
	// draw would inject into the Hansen–Hurwitz weights.
	pUp, pDown map[int64]*pStat
	zeroPaths  int
}

// RunTARW estimates the session's query with the topology-aware
// bottom-top-bottom random walk of §5. Each walk instance starts at a
// search seed, climbs to a root following up-edges uniformly, then
// descends to a dead end following down-edges uniformly. For every
// node passed, the visit probability p̄/p̃ is estimated unbiasedly with
// the recursive ESTIMATE-p procedure (Algorithm 2), enabling
// Hansen–Hurwitz estimation of SUM and COUNT without mark-and-recapture
// and without any burn-in.
// Like RunSRW, budget exhaustion and unrecoverable mid-run faults are
// not errors: the former returns the partial result plainly, the
// latter returns it flagged Degraded with a resumable Checkpoint.
func RunTARW(s *Session, opts TARWOptions) (Result, error) {
	opts = opts.withDefaults()
	if opts.Ctx != nil {
		s.Client.WithContext(opts.Ctx)
	}

	heal := opts.Heal.withDefaults()

	var (
		res          Result
		traj         []Point
		priorCost    int
		priorStats   api.Stats
		priorHeal    HealStats
		segHeal      HealStats
		segments     int
		priorDrained int
	)
	// Per-walk estimates of SUM(f·match), COUNT(match), and the
	// calibration control COUNT(seed) whose true total is known.
	var sumEsts, cntEsts, seedEsts []float64

	t := &tarw{
		s:     s,
		opts:  opts,
		pUp:   make(map[int64]*pStat),
		pDown: make(map[int64]*pStat),
	}
	if ck := opts.Resume; ck != nil {
		if ck.algo != algoTARW {
			return res, fmt.Errorf("core: cannot resume a %s checkpoint with RunTARW", ck.algo)
		}
		ck.restore(s)
		sumEsts = append(sumEsts, ck.sumEsts...)
		cntEsts = append(cntEsts, ck.cntEsts...)
		seedEsts = append(seedEsts, ck.seedEsts...)
		traj = append(traj, ck.traj...)
		t.zeroPaths = ck.zeroPaths
		t.pUp = copyPStats(ck.pUp)
		t.pDown = copyPStats(ck.pDown)
		priorCost, priorStats, segments = ck.priorCost, ck.priorStats, ck.segments
		priorHeal = ck.priorHeal
		priorDrained = ck.priorDrained
	}
	baseVanished, basePruned := s.ChurnObserved()
	// Segment-derived RNG: a resumed run continues with fresh draws.
	t.rng = rand.New(rand.NewSource(opts.Seed + int64(segments)*0x9e3779b9))

	// sSize is filled in once the seed directory is fetched; snapshot
	// (the cumulative checkpoint builder shared by finalize and the
	// autosave sink) is declared first so a pre-walk throttle park can
	// still checkpoint truthful cumulative books.
	var sSize float64
	var parkedNow bool
	snapshot := func() *Checkpoint {
		v, p := s.ChurnObserved()
		sh := segHeal
		sh.VanishedUsers = v - baseVanished
		sh.PrunedEdges = p - basePruned
		return &Checkpoint{
			algo:       algoTARW,
			segments:   segments + 1,
			priorCost:  priorCost + s.Client.Cost(),
			priorStats: priorStats.Add(s.Client.Stats()),
			priorHeal:  priorHeal.Add(sh),
			// TARW parks without draining (a per-walk sample is only
			// valid complete), but an SRW-accrued counter carried in via
			// a shared fleet resume must survive the round-trip.
			priorDrained: priorDrained,
			interval:     s.Interval,
			cache:        s.Client.ExportCache(),
			breaker:      s.Client.BreakerState(),
			traj:         append([]Point(nil), traj...),
			sumEsts:      append([]float64(nil), sumEsts...),
			cntEsts:      append([]float64(nil), cntEsts...),
			seedEsts:     append([]float64(nil), seedEsts...),
			zeroPaths:    t.zeroPaths,
			pUp:          copyPStats(t.pUp),
			pDown:        copyPStats(t.pDown),
			parked:       parkedNow,
		}
	}
	finalize := func() Result {
		ck := snapshot()
		res.Cost = ck.priorCost
		res.Stats = ck.priorStats
		res.Heal = ck.priorHeal
		res.Samples = len(sumEsts)
		res.DrainedSteps = ck.priorDrained
		res.ZeroProbPaths = t.zeroPaths
		res.Trajectory = traj
		res.Estimate = math.NaN()
		if est, ok := tarwEstimate(s.Query.Agg, sSize, sumEsts, cntEsts, seedEsts); ok {
			res.Estimate = est
		}
		res.Checkpoint = ck
		return res
	}
	// lastSave tracks the cumulative-cost clock of the last persisted
	// checkpoint (cadence survives resumes).
	lastSave := priorCost

	seeds, err := s.Seeds()
	if err != nil {
		if errors.Is(err, api.ErrThrottled) {
			// Yield-mode throttle during the seed fetch: park with the
			// cumulative books intact (see the SRW twin of this path).
			parkedNow = true
			return degrade(finalize(), err), nil
		}
		return res, err
	}
	t.seeds = seeds

	if opts.SelectInterval && opts.Resume == nil {
		// Interval selection is a pilot optimization, not a correctness
		// requirement: if the pilots die to a fault, fall back to the
		// session's current interval instead of aborting the run.
		//lint:ignore budgetflow pilot failure falls back to the current interval; the main loop re-observes budget exhaustion on its next charged call
		_ = t.selectInterval()
	}
	sSize = float64(seeds.Size())

	for {
		if opts.MaxWalks > 0 && len(sumEsts) >= opts.MaxWalks {
			break
		}
		if s.Client.Exhausted() {
			break
		}
		sumEst, cntEst, seedEst, err := t.oneWalk()
		if errors.Is(err, api.ErrBudgetExhausted) {
			return finalize(), nil
		}
		if heal.Mode == HealAbort {
			// Pre-heal behaviour (kept for ablation): degrade as soon
			// as churn is first observed disrupting the lattice.
			if v, _ := s.ChurnObserved(); v > baseVanished {
				return degrade(finalize(), ErrNodeVanished), nil
			}
		}
		if errors.Is(err, errWalkSkipped) {
			// The walk instance produced no usable probability mass —
			// under churn, typically a seed or path dying mid-walk.
			segHeal.SkippedWalks++
			if heal.MaxHeals > 0 && priorHeal.Events()+segHeal.Events() >= heal.MaxHeals {
				return degrade(finalize(), ErrChurnOverwhelmed), nil
			}
			continue
		}
		if err != nil {
			parkedNow = errors.Is(err, api.ErrThrottled)
			return degrade(finalize(), err), nil
		}
		sumEsts = append(sumEsts, sumEst)
		cntEsts = append(cntEsts, cntEst)
		seedEsts = append(seedEsts, seedEst)

		if len(sumEsts)%opts.EmitEvery == 0 {
			if est, ok := tarwEstimate(s.Query.Agg, sSize, sumEsts, cntEsts, seedEsts); ok {
				traj = append(traj, Point{Cost: priorCost + s.Client.Cost(), Estimate: est})
			}
		}

		if opts.Autosave.enabled() {
			if cum := priorCost + s.Client.Cost(); cum-lastSave >= opts.Autosave.EveryCalls {
				if err := opts.Autosave.Save(snapshot()); err != nil {
					return degrade(finalize(), fmt.Errorf("%w: %w", ErrAutosave, err)), nil
				}
				lastSave = cum
			}
		}
	}
	return finalize(), nil
}

// errWalkSkipped marks a walk that produced no usable probability
// estimates (all zero); the driver just starts another walk.
var errWalkSkipped = errors.New("core: walk skipped")

// oneWalk performs one bottom-top-bottom instance and returns the
// per-walk Hansen–Hurwitz estimates of SUM(f·match), COUNT(match), and
// COUNT(seed) — the calibration control.
func (t *tarw) oneWalk() (sumEst, cntEst, seedEst float64, err error) {
	start, err := t.s.PickSeed(t.seeds, t.rng)
	if err != nil {
		return 0, 0, 0, err
	}

	// Bottom-top phase: Ū.
	up := []int64{start}
	cur := start
	for {
		ups, err := t.up(cur)
		if err != nil {
			return 0, 0, 0, err
		}
		if len(ups) == 0 {
			break
		}
		cur = ups[t.rng.Intn(len(ups))]
		up = append(up, cur)
	}

	// Top-bottom phase: Ũ (nodes strictly below the root).
	var down []int64
	for {
		downs, err := t.down(cur)
		if err != nil {
			return 0, 0, 0, err
		}
		if len(downs) == 0 {
			break
		}
		cur = downs[t.rng.Intn(len(downs))]
		down = append(down, cur)
	}

	// Hansen–Hurwitz estimation. For each phase, E[Σ_{u∈phase} f(u)/p(u)]
	// equals the population total over the phase's support (every node
	// with p > 0 contributes p · f/p), so each phase sum is itself a
	// SUM estimate and the walk's estimate averages the two phases.
	// Note this normalization differs from a literal reading of
	// Algorithm 3 line 7 (which divides by |Ri|, the walk length):
	// dividing an already-unbiased total by the path length would
	// shrink SUM/COUNT by a factor of ~2(h−1). For AVG the
	// normalization cancels, which is why the paper's AVG experiments
	// are insensitive to the distinction.
	//
	// Nodes whose probability estimate comes back zero are skipped and
	// counted in ZeroProbPaths (an unlucky but legitimate draw of the
	// unbiased ESTIMATE-p; 1/p̂ is undefined at zero).
	//
	// Alongside SUM(f·match) and COUNT(match) the walk accumulates
	// COUNT(seed) with the same weights: the true number of seeds is
	// known exactly (the search result), so the final estimates are
	// calibrated ratios in which shared multiplicative errors —
	// winsorization loss, support deficiency, reciprocal bias — cancel
	// (the classic survey-sampling ratio estimator with a known
	// auxiliary total).
	var sumAcc, cntAcc, seedAcc float64
	contributed := false
	maxWeight := -1.0
	if t.opts.WeightClip > 0 {
		maxWeight = t.opts.WeightClip * float64(t.seeds.Size())
	}
	addNode := func(u int64, p float64) error {
		if p <= 0 {
			t.zeroPaths++
			return nil
		}
		match, value, err := t.s.MatchValue(u)
		if err != nil {
			return err
		}
		w := 1 / p
		if maxWeight > 0 && w > maxWeight {
			w = maxWeight
		}
		if match {
			sumAcc += value * w
			cntAcc += w
		}
		if t.seeds.Contains(u) {
			seedAcc += w
		}
		contributed = true
		return nil
	}

	for _, u := range up {
		p, err := t.settledEstimate(t.pUp, u, t.samplePUp)
		if err != nil {
			return 0, 0, 0, err
		}
		if err := addNode(u, p); err != nil {
			return 0, 0, 0, err
		}
	}
	for _, u := range down {
		p, err := t.settledEstimate(t.pDown, u, t.samplePDown)
		if err != nil {
			return 0, 0, 0, err
		}
		if err := addNode(u, p); err != nil {
			return 0, 0, 0, err
		}
	}
	if !contributed {
		return 0, 0, 0, errWalkSkipped
	}
	return sumAcc / 2, cntAcc / 2, seedAcc / 2, nil
}

// cachedEstimate implements the running-mean probability cache: draws
// one fresh sample per call until the node has accumulated PEstimates
// draws, then serves the settled mean. With caching disabled it always
// takes a single fresh draw (the paper's literal Algorithm 2).
func (t *tarw) cachedEstimate(cache map[int64]*pStat, u int64, draw func(int64) (float64, error)) (float64, error) {
	if t.opts.DisableRootCache {
		return draw(u)
	}
	st := cache[u]
	if st == nil {
		st = &pStat{}
		cache[u] = st
	}
	if st.n < t.opts.PEstimates {
		p, err := draw(u)
		if err != nil {
			return 0, err
		}
		st.sum += p
		st.n++
	}
	return st.sum / float64(st.n), nil
}

// settledEstimate tops a node's cache up to the full PEstimates draws
// and returns the settled mean. Walk-path nodes use this: their
// reciprocals 1/p̂ enter the Hansen–Hurwitz estimate, and an unlucky
// single draw frozen in the cache would otherwise contribute a huge
// weight to every future walk through the node.
func (t *tarw) settledEstimate(cache map[int64]*pStat, u int64, draw func(int64) (float64, error)) (float64, error) {
	if t.opts.DisableRootCache {
		var sum float64
		for i := 0; i < t.opts.PEstimates; i++ {
			p, err := draw(u)
			if err != nil {
				return 0, err
			}
			sum += p
		}
		return sum / float64(t.opts.PEstimates), nil
	}
	st := cache[u]
	if st == nil {
		st = &pStat{}
		cache[u] = st
	}
	for st.n < t.opts.PEstimates {
		p, err := draw(u)
		if err != nil {
			return 0, err
		}
		st.sum += p
		st.n++
	}
	return st.sum / float64(st.n), nil
}

// estimatePUp returns the cached-mean ESTIMATE-p estimate of p̄(u),
// the probability the bottom-top phase passes u.
func (t *tarw) estimatePUp(u int64) (float64, error) {
	return t.cachedEstimate(t.pUp, u, t.samplePUp)
}

// samplePUp is Algorithm 2: one recursive unbiased sample of p̄(u).
// The recursion follows a random down-path; levels strictly increase,
// so it terminates within the level count.
//
// Relative to the paper we add the start-probability term 1/s for any
// node in the seed set (not only bottom nodes): the up-phase starts at
// a uniform seed, and a seed can have down-neighbors when search
// returns users above the last level. When seeds are exactly the
// bottom nodes this reduces to the paper's base case.
func (t *tarw) samplePUp(u int64) (float64, error) {
	var base float64
	if t.seeds.Contains(u) {
		base = 1 / float64(t.seeds.Size())
	}
	downs, err := t.down(u)
	if err != nil {
		return 0, err
	}
	if len(downs) == 0 {
		return base, nil
	}
	v := downs[t.rng.Intn(len(downs))]
	upsV, err := t.up(v)
	if err != nil {
		return 0, err
	}
	if len(upsV) == 0 {
		// Cannot happen in a consistent level assignment (u is an
		// up-neighbor of v); guard against cache inconsistencies.
		return base, nil
	}
	// Recurse through the cache: a settled child mean both stops the
	// recursion early and Rao-Blackwellizes the draw.
	pv, err := t.estimatePUp(v)
	if err != nil {
		return 0, err
	}
	return base + float64(len(downs))*pv/float64(len(upsV)), nil
}

// estimatePDown returns the cached-mean estimate of p̃(u), the
// probability the top-bottom phase passes u.
func (t *tarw) estimatePDown(u int64) (float64, error) {
	return t.cachedEstimate(t.pDown, u, t.samplePDown)
}

// samplePDown mirrors Algorithm 2 in the downward direction:
// p̃(u) = Σ_{v∈∇(u)} p̃(v)/|∆(v)|, with p̃ = p̄ at roots (the paper's
// §5.2 root reuse falls out of the shared probability cache).
func (t *tarw) samplePDown(u int64) (float64, error) {
	ups, err := t.up(u)
	if err != nil {
		return 0, err
	}
	if len(ups) == 0 {
		return t.estimatePUp(u)
	}
	v := ups[t.rng.Intn(len(ups))]
	downsV, err := t.down(v)
	if err != nil {
		return 0, err
	}
	if len(downsV) == 0 {
		return 0, nil // inconsistent cache guard; see samplePUp
	}
	pv, err := t.estimatePDown(v)
	if err != nil {
		return 0, err
	}
	return float64(len(ups)) * pv / float64(len(downsV)), nil
}

// tarwEstimate combines per-walk estimates into the final answer. SUM
// and COUNT are calibrated against the known seed total: the raw
// Hansen–Hurwitz means are scaled by s/mean(seedEsts), cancelling the
// multiplicative errors the walk shares between target and control
// (support deficiency, winsorization, reciprocal bias). If the walks
// somehow never weighed a seed, the raw means are used.
func tarwEstimate(agg query.Aggregate, seedTotal float64, sumEsts, cntEsts, seedEsts []float64) (float64, bool) {
	if len(sumEsts) == 0 {
		return 0, false
	}
	mean := func(xs []float64) float64 {
		return stats.KahanSum(xs) / float64(len(xs))
	}
	calib := 1.0
	if sm := mean(seedEsts); sm > 0 && seedTotal > 0 {
		calib = seedTotal / sm
	}
	switch agg {
	case query.Sum:
		return calib * mean(sumEsts), true
	case query.Count:
		return calib * mean(cntEsts), true
	case query.Avg:
		c := mean(cntEsts)
		if c == 0 {
			return 0, false
		}
		return mean(sumEsts) / c, true
	}
	return 0, false
}

// up and down dispatch to the adjacent-only or full lattice oracles
// per the AllowCrossLevel option.
func (t *tarw) up(u int64) ([]int64, error) {
	if t.opts.AllowCrossLevel {
		return t.s.UpNeighbors(u)
	}
	return t.s.UpAdjacent(u)
}

func (t *tarw) down(u int64) ([]int64, error) {
	if t.opts.AllowCrossLevel {
		return t.s.DownNeighbors(u)
	}
	return t.s.DownAdjacent(u)
}
