package core

import (
	"errors"
	"fmt"

	"mba/internal/api"
)

// ErrNodeVanished indicates the walk's current node disappeared from
// the platform (account suspended or deleted mid-walk) and the heal
// policy forbids recovering from it.
var ErrNodeVanished = errors.New("core: current walk node vanished")

// ErrBudgetMidHeal indicates the budget ran out in the middle of a
// heal (a backtrack scan or reseed probe after churn killed the walk's
// current node). Unlike ordinary budget exhaustion — where the walk
// simply stops at a live position — the checkpointed position here is
// a dead node, so the result is flagged Degraded: a resume must first
// repeat the heal before making progress. The error wraps
// api.ErrBudgetExhausted, so budget-aware callers (resume loops
// guarding on res.Cost < budget) still classify it correctly.
var ErrBudgetMidHeal = fmt.Errorf("core: budget exhausted mid-heal, walk stranded on a dead node: %w", api.ErrBudgetExhausted)

// ErrChurnOverwhelmed indicates the walk healed more often than
// HealPolicy.MaxHeals allows — the platform is churning faster than
// the walk can make progress, so the run degrades with a checkpoint
// rather than thrashing the remaining budget on recovery.
var ErrChurnOverwhelmed = errors.New("core: heal limit exceeded, platform churn overwhelms the walk")

// HealMode selects how a walk recovers when its current node dies
// (vanished account, newly protected, or all edges churned away).
type HealMode int

const (
	// HealBacktrack retreats along the walk's own trail to the most
	// recent node that still has live neighbors, falling back to a
	// fresh seed when the whole trail is dead. The default: backtrack
	// targets are already cached, so recovery is (nearly) free, and the
	// walk resumes inside the region it was mixing in.
	HealBacktrack HealMode = iota
	// HealReseed restarts from a fresh search seed on every heal.
	HealReseed
	// HealAbort degrades the run (with a resumable checkpoint) the
	// first time churn kills the current node — the pre-heal behaviour,
	// kept for measuring what self-healing buys.
	HealAbort
)

func (m HealMode) String() string {
	switch m {
	case HealBacktrack:
		return "backtrack"
	case HealReseed:
		return "reseed"
	case HealAbort:
		return "abort"
	default:
		return "HealMode(?)"
	}
}

// HealPolicy configures walk self-healing under platform churn.
// The zero value is the default policy: backtrack up to 32 trail
// entries, unlimited heals.
type HealPolicy struct {
	Mode HealMode
	// MaxBacktrack bounds how many trail entries a single backtrack
	// scans before giving up and re-seeding (default 32).
	MaxBacktrack int
	// MaxHeals bounds the total number of heal events per run segment;
	// 0 means unlimited. Exceeding it degrades the run with
	// ErrChurnOverwhelmed.
	MaxHeals int
}

func (p HealPolicy) withDefaults() HealPolicy {
	if p.MaxBacktrack == 0 {
		p.MaxBacktrack = 32
	}
	return p
}

// HealStats counts the recovery work a run performed, surfaced in
// Result and accumulated across resumed segments in Checkpoint.
type HealStats struct {
	// Backtracks counts heals resolved by retreating along the trail.
	Backtracks int
	// Reseeds counts heals resolved by jumping to a fresh seed.
	Reseeds int
	// SkippedWalks counts TARW walk instances abandoned whole (no
	// usable probability mass, typically a seed dying under churn).
	SkippedWalks int
	// VanishedUsers counts distinct users the session observed
	// vanishing (fresh probe returned ErrUnknownUser).
	VanishedUsers int
	// PrunedEdges counts distinct dangling edges dropped from the
	// partial level graph because one endpoint vanished.
	PrunedEdges int
}

// Add returns the elementwise sum of two stat snapshots.
func (h HealStats) Add(o HealStats) HealStats {
	return HealStats{
		Backtracks:    h.Backtracks + o.Backtracks,
		Reseeds:       h.Reseeds + o.Reseeds,
		SkippedWalks:  h.SkippedWalks + o.SkippedWalks,
		VanishedUsers: h.VanishedUsers + o.VanishedUsers,
		PrunedEdges:   h.PrunedEdges + o.PrunedEdges,
	}
}

// Events returns the number of heal interventions (backtracks,
// reseeds, and skipped walks) — the quantity MaxHeals bounds.
func (h HealStats) Events() int {
	return h.Backtracks + h.Reseeds + h.SkippedWalks
}
