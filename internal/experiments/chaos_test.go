package experiments

import (
	"strconv"
	"strings"
	"testing"

	"mba/internal/workload"
)

// TestChaosSweep runs the full chaos harness at test scale: every
// scenario × algorithm cell must complete without error, stay within
// budget, and the faulty scenarios must show resilience work (retries
// or rate-limit hits) that the baseline does not.
func TestChaosSweep(t *testing.T) {
	opts := Options{
		Scale:  workload.Test,
		Seed:   5,
		Trials: 1,
		Budget: 3000,
	}
	tab, err := Chaos(opts)
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "chaos" {
		t.Errorf("table ID = %q", tab.ID)
	}
	wantRows := len(chaosScenarios(opts.Seed)) * 3 // 3 algorithms per scenario
	if len(tab.Rows) != wantRows {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), wantRows)
	}
	col := map[string]int{}
	for i, c := range tab.Columns {
		col[c] = i
	}
	for _, key := range []string{"Scenario", "Algo", "RelErr", "Cost", "Retries", "RateLimited", "Resumes", "Degraded"} {
		if _, ok := col[key]; !ok {
			t.Fatalf("missing column %q", key)
		}
	}

	cell := func(row []string, name string) string { return row[col[name]] }
	atoi := func(s string) int {
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("non-numeric cell %q", s)
		}
		return n
	}
	faultyWork := 0
	for _, row := range tab.Rows {
		scenario := cell(row, "Scenario")
		if c := atoi(cell(row, "Cost")); c <= 0 || c > opts.Budget {
			t.Errorf("%s/%s: cost %d outside (0, %d]", scenario, cell(row, "Algo"), c, opts.Budget)
		}
		retries, hits := atoi(cell(row, "Retries")), atoi(cell(row, "RateLimited"))
		if scenario == "baseline" {
			if retries != 0 || hits != 0 {
				t.Errorf("baseline shows fault work: retries=%d rateLimited=%d", retries, hits)
			}
			if !strings.HasPrefix(cell(row, "Degraded"), "0/") {
				t.Errorf("baseline degraded: %s", cell(row, "Degraded"))
			}
		} else {
			faultyWork += retries + hits
		}
	}
	if faultyWork == 0 {
		t.Error("no scenario recorded any retries or rate-limit hits")
	}
}
