package api

import (
	"fmt"
	"sort"
	"sync"
)

// Ledger is a goroutine-safe budget arbiter for a fleet of concurrent
// walkers sharing one API-call budget. Credits move through three
// states — available, reserved, committed — under a single mutex:
//
//	Reserve(id, n)  available → reserved   (admission, may grant less)
//	Commit(id, n)   reserved  → committed  (a call was actually charged)
//	Refund(id, n)   reserved  → available  (unused reservation returned)
//
// Fair admission comes from per-account quotas fixed at Register time:
// no account can reserve or commit past its quota, so a hot walker
// cannot starve the rest no matter how fast it burns calls. Because the
// quotas partition the budget deterministically, every account's grant
// sequence depends only on its own call history — never on how the
// goroutines interleave — which is what keeps a fleet's estimates
// seed-deterministic at any parallelism.
//
// The conservation law, checked by audit.CheckLedger at any moment and
// at rest:
//
//	available + reserved + committed == total
//	Σ account.reserved  == reserved
//	Σ account.committed == committed
//
// and after a run, committed must equal exactly the calls the clients
// charged (Client.Cost sums).
type Ledger struct {
	mu        sync.Mutex
	total     int
	reserved  int
	committed int
	accounts  map[int]*ledgerAccount
}

type ledgerAccount struct {
	quota     int
	reserved  int
	committed int
}

// NewLedger creates a ledger holding total call credits.
func NewLedger(total int) *Ledger {
	if total < 0 {
		total = 0
	}
	return &Ledger{total: total, accounts: make(map[int]*ledgerAccount)}
}

// Total returns the ledger's full credit pool.
func (l *Ledger) Total() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Register opens an account with a fixed quota. The quotas of all
// registered accounts may not exceed the total pool; registration is
// the only place quotas are set, so fairness is decided up front, not
// negotiated under contention.
func (l *Ledger) Register(id, quota int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if quota <= 0 {
		return fmt.Errorf("api: ledger account %d: quota must be positive, got %d", id, quota)
	}
	if _, ok := l.accounts[id]; ok {
		return fmt.Errorf("api: ledger account %d already registered", id)
	}
	sum := quota
	for _, a := range l.accounts {
		sum += a.quota
	}
	if sum > l.total {
		return fmt.Errorf("api: ledger quotas (%d) exceed total credits (%d)", sum, l.total)
	}
	l.accounts[id] = &ledgerAccount{quota: quota}
	return nil
}

// Reserve moves up to n credits from available to the account's
// reservation and returns how many were granted — bounded by the
// account's remaining quota and by the global pool. A zero grant means
// the account (or the pool) is spent; it is not an error.
func (l *Ledger) Reserve(id, n int) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	a, ok := l.accounts[id]
	if !ok {
		return 0, fmt.Errorf("api: ledger account %d not registered", id)
	}
	if n < 0 {
		return 0, fmt.Errorf("api: ledger account %d: negative reserve %d", id, n)
	}
	grant := n
	if rem := a.quota - a.committed - a.reserved; grant > rem {
		grant = rem
	}
	if avail := l.total - l.committed - l.reserved; grant > avail {
		grant = avail
	}
	if grant < 0 {
		grant = 0
	}
	a.reserved += grant
	l.reserved += grant
	return grant, nil
}

// Commit converts n credits of the account's reservation into
// committed spend — the record that n API calls were actually charged.
// Committing more than the outstanding reservation is an accounting
// bug and returns an error (the caller must Reserve admission first).
func (l *Ledger) Commit(id, n int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	a, ok := l.accounts[id]
	if !ok {
		return fmt.Errorf("api: ledger account %d not registered", id)
	}
	if n < 0 || n > a.reserved {
		return fmt.Errorf("api: ledger account %d: commit %d exceeds reservation %d", id, n, a.reserved)
	}
	a.reserved -= n
	a.committed += n
	l.reserved -= n
	l.committed += n
	return nil
}

// Refund returns n credits of the account's reservation to the
// available pool.
func (l *Ledger) Refund(id, n int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	a, ok := l.accounts[id]
	if !ok {
		return fmt.Errorf("api: ledger account %d not registered", id)
	}
	if n < 0 || n > a.reserved {
		return fmt.Errorf("api: ledger account %d: refund %d exceeds reservation %d", id, n, a.reserved)
	}
	a.reserved -= n
	l.reserved -= n
	return nil
}

// Release refunds the account's entire outstanding reservation and
// returns how many credits went back — the walker's exit bow, leaving
// the ledger at rest with committed == charged.
func (l *Ledger) Release(id int) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	a, ok := l.accounts[id]
	if !ok {
		return 0
	}
	n := a.reserved
	a.reserved = 0
	l.reserved -= n
	return n
}

// Remaining returns the account's uncommitted, unreserved quota (the
// budget a fresh client resuming this account may still spend), or an
// error for an unknown account.
func (l *Ledger) Remaining(id int) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	a, ok := l.accounts[id]
	if !ok {
		return 0, fmt.Errorf("api: ledger account %d not registered", id)
	}
	return a.quota - a.committed - a.reserved, nil
}

// CarryForward records n credits as committed spend from a previous
// run segment (used when a fleet resumes from a checkpoint: the prior
// segments' charges must stay on the books so quotas keep binding).
func (l *Ledger) CarryForward(id, n int) error {
	if n == 0 {
		return nil
	}
	grant, err := l.Reserve(id, n)
	if err != nil {
		return err
	}
	if grant < n {
		_ = l.Refund(id, grant)
		return fmt.Errorf("api: ledger account %d: cannot carry forward %d spent credits (quota room %d)", id, n, grant)
	}
	return l.Commit(id, n)
}

// LedgerStats is a consistent snapshot of the ledger, for the
// conservation audit and for result reporting.
type LedgerStats struct {
	Total     int
	Reserved  int
	Committed int
	// Available = Total - Reserved - Committed, precomputed for
	// reporting convenience.
	Available int
	// Accounts are the per-walker books, ordered by account ID so the
	// snapshot is deterministic.
	Accounts []LedgerAccountStats
}

// LedgerAccountStats is one account's book entry in a snapshot.
type LedgerAccountStats struct {
	ID        int
	Quota     int
	Reserved  int
	Committed int
}

// Snapshot returns a consistent copy of the ledger's books.
func (l *Ledger) Snapshot() LedgerStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := LedgerStats{
		Total:     l.total,
		Reserved:  l.reserved,
		Committed: l.committed,
		Available: l.total - l.reserved - l.committed,
	}
	ids := make([]int, 0, len(l.accounts))
	for id := range l.accounts {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		a := l.accounts[id]
		st.Accounts = append(st.Accounts, LedgerAccountStats{
			ID: id, Quota: a.quota, Reserved: a.reserved, Committed: a.committed,
		})
	}
	return st
}
