package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Summary is one function's interprocedural fact set, computed
// bottom-up over the call graph with fixpoint iteration inside each
// strongly connected component. All propagated facts are monotone
// booleans or monotone sets, so the fixpoint terminates.
type Summary struct {
	// IncursCost: the function may (transitively) charge an
	// api.Client/api.Server endpoint — the budget-accounted surface.
	IncursCost bool
	// ConsumesCtx: the function declares a context.Context parameter.
	// Not propagated; a signature fact.
	ConsumesCtx bool
	// UsesCtx: the body references at least one of its context
	// parameters. Not propagated.
	UsesCtx bool
	// Spawns: the function may (transitively) start a goroutine.
	Spawns bool
	// DrawsRand: the function may (transitively) draw randomness from
	// math/rand or math/rand/v2.
	DrawsRand bool
	// ReturnsError: the signature's last result is an error. Not
	// propagated.
	ReturnsError bool
	// Unresolved: the body makes a dynamic call the call graph could
	// not bound to any program candidate; facts below that call are
	// unknown. Not propagated (each function owns its own blind spot).
	Unresolved bool
	// Acquires is the set of lock IDs ("pkg.Type.field" or "pkg.var")
	// the function may (transitively) acquire.
	Acquires map[string]bool
	// Releases is the set of lock IDs the function may (transitively)
	// release — unlockpath drops a held-lock obligation when calling a
	// releasing helper instead of reporting a leak the helper discharges.
	Releases map[string]bool
	// Sentinels is the set of sentinel error names ("pkg.ErrX") the
	// function may (transitively) return or wrap into its error result.
	Sentinels map[string]bool

	// Taint facts (taint.go), computed — not merged — in the SCC
	// fixpoint: the caller's transfer function decides how a callee's
	// facts apply at each call site, so merge() must NOT union them.
	//
	// TaintsReturn: some return value may carry nondeterministic
	// ordering (map iteration, select completion) regardless of inputs.
	TaintsReturn bool
	// ParamTaintToReturn: parameter provenance bits (taintParamBit)
	// that may flow into a return value.
	ParamTaintToReturn uint64
	// ParamTaintToSink: parameter provenance bits that may
	// (transitively) reach an artifact sink — Result/Estimate/
	// Checkpoint fields or an external writer.
	ParamTaintToSink uint64
}

func newSummary() *Summary {
	return &Summary{
		Acquires:  map[string]bool{},
		Releases:  map[string]bool{},
		Sentinels: map[string]bool{},
	}
}

// merge unions src's propagated facts into s, reporting change.
func (s *Summary) merge(src *Summary) bool {
	changed := false
	or := func(dst *bool, v bool) {
		if v && !*dst {
			*dst = true
			changed = true
		}
	}
	or(&s.IncursCost, src.IncursCost)
	or(&s.Spawns, src.Spawns)
	or(&s.DrawsRand, src.DrawsRand)
	for k := range src.Acquires {
		if !s.Acquires[k] {
			s.Acquires[k] = true
			changed = true
		}
	}
	for k := range src.Releases {
		if s.Releases == nil {
			s.Releases = map[string]bool{}
		}
		if !s.Releases[k] {
			s.Releases[k] = true
			changed = true
		}
	}
	for k := range src.Sentinels {
		if !s.Sentinels[k] {
			s.Sentinels[k] = true
			changed = true
		}
	}
	return changed
}

// AcquiresSorted returns the acquired lock IDs in stable order.
func (s *Summary) AcquiresSorted() []string { return sortedKeys(s.Acquires) }

// SentinelsSorted returns the sentinel names in stable order.
func (s *Summary) SentinelsSorted() []string { return sortedKeys(s.Sentinels) }

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// methodOnInfo is the free-function core of Pass.MethodOn: does call
// invoke a method named in methods on pkgName.typeName?
func methodOnInfo(info *types.Info, call *ast.CallExpr, pkgName, typeName string, methods map[string]bool) (string, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if !methods[sel.Sel.Name] {
		return "", false
	}
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return "", false
	}
	n := namedRecv(s.Recv())
	if n == nil || n.Obj().Pkg() == nil {
		return "", false
	}
	if n.Obj().Name() != typeName || n.Obj().Pkg().Name() != pkgName {
		return "", false
	}
	return sel.Sel.Name, true
}

// chargedClientCall reports whether call charges an api.Client
// endpoint, returning the method name.
func chargedClientCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	return methodOnInfo(info, call, "api", "Client", chargedEndpoints)
}

// lockMethods classify sync primitive calls.
var (
	lockNames   = map[string]bool{"Lock": true, "RLock": true}
	unlockNames = map[string]bool{"Unlock": true, "RUnlock": true}
)

// syncLockCall reports whether call locks or unlocks a sync.Mutex or
// sync.RWMutex, returning the receiver expression.
func syncLockCall(info *types.Info, call *ast.CallExpr, names map[string]bool) (ast.Expr, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !names[sel.Sel.Name] {
		return nil, false
	}
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return nil, false
	}
	n := namedRecv(s.Recv())
	if n == nil || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync" {
		return nil, false
	}
	if name := n.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		return nil, false
	}
	return sel.X, true
}

// lockID names the mutex a lock/unlock call operates on:
// "pkg.Type.field" for a struct-field mutex reached through a method
// receiver or variable, "pkg.var" for a package-level mutex. Locks
// that cannot be named (locals, map entries) return "".
func lockID(pkg *Package, e ast.Expr) string {
	switch x := unparen(e).(type) {
	case *ast.SelectorExpr:
		if s, ok := pkg.Info.Selections[x]; ok && s.Kind() == types.FieldVal {
			n := namedRecv(s.Recv())
			if n == nil || n.Obj().Pkg() == nil {
				return ""
			}
			return n.Obj().Pkg().Name() + "." + n.Obj().Name() + "." + x.Sel.Name
		}
		// Qualified package-level mutex (otherpkg.mu is unexported and
		// rare; handle the uses case anyway).
		if v, ok := pkg.Info.Uses[x.Sel].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + v.Name()
		}
		return ""
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[x].(*types.Var); ok && v.Pkg() != nil {
			if v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Name() + "." + v.Name()
			}
			// Local mutex: name it by declaration site so must-held
			// analysis sees Lock/Unlock pairs on function-local and
			// closure-captured mutexes (same-named locals in different
			// functions stay distinct).
			p := pkg.Fset.Position(v.Pos())
			return fmt.Sprintf("%s.%s@%s:%d", v.Pkg().Name(), v.Name(), filepath.Base(p.Filename), p.Line)
		}
		return ""
	default:
		return ""
	}
}

// computeSummaries extracts local facts for every function and runs
// bottom-up fixpoint propagation over the call-graph SCC condensation.
// Functions belonging to cache-hit packages take their summaries from
// the cache verbatim and act as fixed constants in the propagation.
func (p *Program) computeSummaries(cache *FactCache) {
	cached := map[string]bool{}
	if cache != nil {
		for _, pkg := range p.Pkgs {
			if sums, ok := cache.lookup(p, pkg); ok {
				cached[pkg.Path] = true
				for id, s := range sums {
					p.Summaries[id] = s
				}
			}
		}
	}
	var dirty []*Func
	for _, f := range p.Funcs {
		if cached[f.Pkg.Path] {
			if _, ok := p.Summaries[f.ID]; ok {
				continue
			}
			// A closure the cache round-trip missed: recompute.
		}
		p.Summaries[f.ID] = p.localFacts(f)
		dirty = append(dirty, f)
	}
	// Wrapped-sentinel extraction is cheap and program-global; always
	// recompute it from source (the cache only memoizes summaries).
	for _, f := range p.Funcs {
		p.collectWraps(f)
	}

	for _, scc := range p.sccs(dirty) {
		for changed := true; changed; {
			changed = false
			for _, f := range scc {
				sum := p.Summaries[f.ID]
				for _, cs := range f.calls {
					for _, g := range cs.callees {
						if gs, ok := p.Summaries[g.ID]; ok {
							if sum.merge(gs) {
								changed = true
							}
						}
					}
				}
				// Taint facts are not unioned by merge: recompute them
				// from the body under the current callee summaries.
				if p.updateTaintSummary(f, sum) {
					changed = true
				}
			}
			if len(scc) == 1 && !p.selfRecursive(scc[0]) {
				break // callees already converged; one round suffices
			}
		}
	}

	if cache != nil {
		for _, pkg := range p.Pkgs {
			cache.store(p, pkg)
		}
	}
}

// localFacts extracts the intraprocedural facts of f.
func (p *Program) localFacts(f *Func) *Summary {
	pkg := f.Pkg
	sum := newSummary()

	// Root fact: the charged api.Client/api.Server endpoints ARE the
	// cost; their bodies define rather than observe it.
	if f.Obj != nil && chargedEndpoints[f.Obj.Name()] {
		if recv := f.Sig.Recv(); recv != nil {
			if n := namedRecv(recv.Type()); n != nil && n.Obj().Pkg() != nil &&
				n.Obj().Pkg().Name() == "api" &&
				(n.Obj().Name() == "Client" || n.Obj().Name() == "Server") {
				sum.IncursCost = true
			}
		}
	}

	// Signature facts.
	var ctxParams []*types.Var
	for i := 0; i < f.Sig.Params().Len(); i++ {
		v := f.Sig.Params().At(i)
		if v.Type().String() == "context.Context" {
			sum.ConsumesCtx = true
			ctxParams = append(ctxParams, v)
		}
	}
	if rs := f.Sig.Results(); rs.Len() > 0 && isErrorType(rs.At(rs.Len()-1).Type()) {
		sum.ReturnsError = true
	}

	if f.Body == nil {
		return sum
	}
	inspectShallow(f.Body, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.GoStmt:
			sum.Spawns = true
		case *ast.Ident:
			for _, v := range ctxParams {
				if pkg.Info.Uses[x] == v {
					sum.UsesCtx = true
				}
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				ast.Inspect(res, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						if name, ok := p.sentinels[pkg.Info.Uses[id]]; ok {
							sum.Sentinels[name] = true
						}
					}
					return true
				})
			}
		case *ast.CallExpr:
			if _, ok := chargedClientCall(pkg.Info, x); ok {
				sum.IncursCost = true
			}
			if _, ok := methodOnInfo(pkg.Info, x, "api", "Server", chargedEndpoints); ok {
				sum.IncursCost = true
			}
			if e, ok := syncLockCall(pkg.Info, x, lockNames); ok {
				if id := lockID(pkg, e); id != "" {
					sum.Acquires[id] = true
				}
			}
			if e, ok := syncLockCall(pkg.Info, x, unlockNames); ok {
				if id := lockID(pkg, e); id != "" {
					sum.Releases[id] = true
				}
			}
			if sel, ok := unparen(x.Fun).(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok {
					if path := importedPkgPath(pkg.Info, id); path == "math/rand" || path == "math/rand/v2" {
						sum.DrawsRand = true
					}
				}
			}
			if format, args, ok := errorfCall(pkg.Info, x); ok {
				verbs := fmtVerbs(format)
				for i, arg := range args {
					if i >= len(verbs) {
						break
					}
					if id, ok := unparen(arg).(*ast.Ident); ok {
						if name, ok := p.sentinels[pkg.Info.Uses[id]]; ok {
							sum.Sentinels[name] = true
						}
					} else if sel, ok := unparen(arg).(*ast.SelectorExpr); ok {
						if name, ok := p.sentinels[pkg.Info.Uses[sel.Sel]]; ok {
							sum.Sentinels[name] = true
						}
					}
				}
			}
		}
	})
	if p.hasUnresolved(f) {
		sum.Unresolved = true
	}
	return sum
}

// selfRecursive reports whether f has a call site that may reach f
// itself — the case where a singleton SCC still needs fixpoint rounds.
func (p *Program) selfRecursive(f *Func) bool {
	for _, cs := range f.calls {
		for _, g := range cs.callees {
			if g == f {
				return true
			}
		}
	}
	return false
}

func (p *Program) hasUnresolved(f *Func) bool {
	for _, cs := range f.calls {
		if cs.unresolved {
			return true
		}
	}
	return false
}

// collectWraps records which sentinels are wrapped with %w anywhere in
// the program — the global fact that makes == against them unsound.
func (p *Program) collectWraps(f *Func) {
	if f.Body == nil {
		return
	}
	pkg := f.Pkg
	inspectShallow(f.Body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		format, args, ok := errorfCall(pkg.Info, call)
		if !ok {
			return
		}
		verbs := fmtVerbs(format)
		for i, arg := range args {
			if i >= len(verbs) || verbs[i] != 'w' {
				continue
			}
			if name, ok := p.sentinelOfExpr(pkg, arg); ok {
				p.wrappedSentinels[name] = true
			}
		}
	})
}

// sentinelOfExpr resolves e to a program sentinel name if it denotes
// one directly (Ident or pkg-qualified selector).
func (p *Program) sentinelOfExpr(pkg *Package, e ast.Expr) (string, bool) {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		name, ok := p.sentinels[pkg.Info.Uses[x]]
		return name, ok
	case *ast.SelectorExpr:
		name, ok := p.sentinels[pkg.Info.Uses[x.Sel]]
		return name, ok
	}
	return "", false
}

// SentinelWrapped reports whether the named sentinel is wrapped with
// %w anywhere in the program.
func (p *Program) SentinelWrapped(name string) bool { return p.wrappedSentinels[name] }

// SentinelName resolves an expression to a program sentinel name.
func (p *Program) SentinelName(pkg *Package, e ast.Expr) (string, bool) {
	return p.sentinelOfExpr(pkg, e)
}

// importedPkgPath is the free-function core of Pass.ImportedPkgPath.
func importedPkgPath(info *types.Info, id *ast.Ident) string {
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// errorfCall matches fmt.Errorf(format, args...) with a constant
// format string.
func errorfCall(info *types.Info, call *ast.CallExpr) (string, []ast.Expr, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return "", nil, false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || importedPkgPath(info, id) != "fmt" {
		return "", nil, false
	}
	if len(call.Args) < 1 {
		return "", nil, false
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Value == nil {
		return "", nil, false
	}
	format, err := strconv.Unquote(tv.Value.ExactString())
	if err != nil {
		return "", nil, false
	}
	return format, call.Args[1:], true
}

// fmtVerbs maps each variadic argument position of a format string to
// its verb letter. Width/precision stars consume an argument (marked
// '*'); indexed verbs (%[n]d) defeat positional mapping and yield nil.
func fmtVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		if format[i] == '[' {
			return nil // indexed argument; give up on positional mapping
		}
		// Flags, width, precision.
		for i < len(format) && strings.IndexByte("+-# 0123456789.", format[i]) >= 0 {
			i++
		}
		for i < len(format) && format[i] == '*' {
			verbs = append(verbs, '*')
			i++
			for i < len(format) && strings.IndexByte("+-# 0123456789.", format[i]) >= 0 {
				i++
			}
		}
		if i < len(format) {
			verbs = append(verbs, format[i])
		}
	}
	return verbs
}

// sccs returns the strongly connected components of the call graph
// restricted to fns, in bottom-up (callees-first) order — Tarjan's
// algorithm emits components in reverse topological order of the
// condensation, exactly the order fixpoint propagation wants.
func (p *Program) sccs(fns []*Func) [][]*Func {
	index := map[*Func]int{}
	low := map[*Func]int{}
	onStack := map[*Func]bool{}
	inScope := map[*Func]bool{}
	for _, f := range fns {
		inScope[f] = true
	}
	var stack []*Func
	var out [][]*Func
	next := 0

	// Iterative Tarjan (explicit work stack) so deep call chains and
	// mutual recursion cannot overflow the goroutine stack.
	type frame struct {
		f  *Func
		ci int // next callee index to visit (flattened)
	}
	calleesOf := func(f *Func) []*Func {
		var out []*Func
		for _, cs := range f.calls {
			for _, g := range cs.callees {
				if inScope[g] {
					out = append(out, g)
				}
			}
		}
		return out
	}
	for _, root := range fns {
		if _, seen := index[root]; seen {
			continue
		}
		work := []frame{{f: root}}
		for len(work) > 0 {
			fr := &work[len(work)-1]
			f := fr.f
			if fr.ci == 0 {
				index[f] = next
				low[f] = next
				next++
				stack = append(stack, f)
				onStack[f] = true
			}
			callees := calleesOf(f)
			advanced := false
			for fr.ci < len(callees) {
				g := callees[fr.ci]
				fr.ci++
				if _, seen := index[g]; !seen {
					work = append(work, frame{f: g})
					advanced = true
					break
				}
				if onStack[g] && index[g] < low[f] {
					low[f] = index[g]
				}
			}
			if advanced {
				continue
			}
			// All callees done: pop.
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := work[len(work)-1].f
				if low[f] < low[parent] {
					low[parent] = low[f]
				}
			}
			if low[f] == index[f] {
				var scc []*Func
				for {
					g := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[g] = false
					scc = append(scc, g)
					if g == f {
						break
					}
				}
				sort.Slice(scc, func(i, j int) bool { return scc[i].ID < scc[j].ID })
				out = append(out, scc)
			}
		}
	}
	return out
}

// computeLockEdges walks every function body tracking the set of held
// locks in statement order, recording a lockEdge for every lock (or
// lock-acquiring call) reached while another lock is held. The walk is
// a conservative may-hold analysis: a lock taken in any branch is
// considered held for the rest of the function unless explicitly
// unlocked.
func (p *Program) computeLockEdges() {
	for _, f := range p.Funcs {
		if f.Body == nil {
			continue
		}
		pkg := f.Pkg
		var held []string
		deferred := map[*ast.CallExpr]bool{}
		inspectShallow(f.Body, func(n ast.Node) {
			switch x := n.(type) {
			case *ast.DeferStmt:
				// A deferred unlock keeps the lock held to function
				// exit; mark the call so the CallExpr visit below does
				// not treat it as a release.
				if _, ok := syncLockCall(pkg.Info, x.Call, unlockNames); ok {
					deferred[x.Call] = true
				}
			case *ast.CallExpr:
				if e, ok := syncLockCall(pkg.Info, x, lockNames); ok {
					id := lockID(pkg, e)
					if id == "" {
						return
					}
					for _, h := range held {
						p.lockEdges = append(p.lockEdges, lockEdge{
							From: h, To: id, Pos: x.Pos(), PkgPath: pkg.Path,
						})
					}
					held = append(held, id)
					return
				}
				if e, ok := syncLockCall(pkg.Info, x, unlockNames); ok {
					if deferred[x] {
						return
					}
					id := lockID(pkg, e)
					for i := len(held) - 1; i >= 0; i-- {
						if held[i] == id {
							held = append(held[:i], held[i+1:]...)
							break
						}
					}
					return
				}
				if len(held) == 0 {
					return
				}
				if cs, ok := p.callees[x]; ok {
					for _, g := range cs.callees {
						gs := p.SummaryOf(g)
						for _, a := range gs.AcquiresSorted() {
							for _, h := range held {
								p.lockEdges = append(p.lockEdges, lockEdge{
									From: h, To: a, Pos: x.Pos(), PkgPath: pkg.Path, Via: g.ID,
								})
							}
						}
					}
				}
			}
		})
	}
	sort.Slice(p.lockEdges, func(i, j int) bool {
		a, b := p.lockEdges[i], p.lockEdges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		if a.PkgPath != b.PkgPath {
			return a.PkgPath < b.PkgPath
		}
		return a.Pos < b.Pos
	})
}
